open Sim_engine
module C = Collectives
module P = Portals

(* Conformance: the host-driven and NIC-offloaded collective engines
   must be observationally identical — byte-identical results on every
   rank, the same barrier release semantics, the same tolerant-barrier
   shutdown behaviour — whatever the domain count or fault regime. One
   functorizable surface ({!Coll_intf.S}, packed as {!Collectives.any})
   runs every check against both. *)

let impls = [ ("host", C.Host); ("nic", C.Nic_offload) ]

(* An order-sensitive fold (non-commutative, non-associative): any
   divergence in the combining order between the two engines — host
   ascending-mask folds vs NIC Triggered_combine chains — shows up as a
   byte difference, where a plain sum could hide it. *)
let mix acc contribution =
  let n = min (Bytes.length acc) (Bytes.length contribution) in
  for i = 0 to n - 1 do
    Bytes.set_uint8 acc i
      (((Bytes.get_uint8 acc i * 31) + Bytes.get_uint8 contribution i)
      land 0xff)
  done

(* Run [f world coll ~rank] on an [n]-rank world under [impl]; returns
   total §4.8 drops across every rank's interface after quiescence (the
   NIC engine must never mis-fire a chain). *)
let run_group ?(n = 4) ?(domains = 1) ?(seed = 0) impl f =
  let world = Runtime.create_world ~nodes:n ~domains ~seed () in
  let nis = Array.make n None in
  Runtime.spawn_ranks world (fun ~rank ->
      let ni =
        P.Ni.create
          (Runtime.transport_of_rank world rank)
          ~id:world.Runtime.ranks.(rank) ()
      in
      nis.(rank) <- Some ni;
      let coll = C.create_impl impl ni ~ranks:world.Runtime.ranks ~rank () in
      f world coll ~rank);
  Runtime.run world;
  Array.fold_left
    (fun acc -> function Some ni -> acc + P.Ni.dropped_total ni | None -> acc)
    0 nis

(* A mixed workload touching every operation, long enough to drive the
   NIC engine's sequence window across several internal syncs; returns
   this rank's concatenated observable bytes. *)
let workload n world coll ~rank =
  ignore world;
  let buf = Buffer.create 256 in
  for round = 1 to 6 do
    let mine =
      C.bytes_of_floats
        [| float_of_int (rank + round) *. 1.5; 0.25 *. float_of_int round |]
    in
    Buffer.add_bytes buf (C.any_allreduce coll ~op:C.sum_floats mine);
    let root = round mod n in
    let payload =
      if rank = root then Bytes.of_string (Printf.sprintf "round-%d" round)
      else Bytes.empty
    in
    Buffer.add_bytes buf (C.any_bcast coll ~root payload);
    C.any_barrier coll;
    (match
       C.any_reduce coll ~root ~op:mix
         (Bytes.make 5 (Char.chr ((rank + round) land 0xff)))
     with
    | Some b -> Buffer.add_bytes buf b
    | None -> ())
  done;
  Buffer.contents buf

let run_workload ?(n = 8) ?domains impl =
  let results = Array.make n "" in
  let drops =
    run_group ~n ?domains impl (fun world coll ~rank ->
        results.(rank) <- workload n world coll ~rank)
  in
  (results, drops)

let equality_tests =
  [
    Alcotest.test_case "nic matches host on a mixed workload" `Quick (fun () ->
        let host, _ = run_workload C.Host in
        let nic, drops = run_workload C.Nic_offload in
        Array.iteri
          (fun rank h ->
            Alcotest.(check string)
              (Printf.sprintf "rank %d bytes" rank)
              h nic.(rank))
          host;
        Alcotest.(check int) "nic runs drop-free" 0 drops);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random payloads agree between engines"
         ~count:10
         QCheck.(
           pair (int_range 2 9)
             (list_of_size Gen.(int_range 1 6) (float_range (-50.) 50.)))
         (fun (n, base) ->
           let base = Array.of_list base in
           let run impl =
             let out = Array.make n ("", "") in
             let _ =
               run_group ~n impl (fun _ coll ~rank ->
                   let mine =
                     Array.map (fun x -> x +. (1.5 *. float_of_int rank)) base
                   in
                   let ar =
                     C.any_allreduce coll ~op:C.sum_floats
                       (C.bytes_of_floats mine)
                   in
                   let rd =
                     match
                       C.any_reduce coll ~root:(n - 1) ~op:mix
                         (Bytes.make 7 (Char.chr (rank + 1)))
                     with
                     | Some b -> Bytes.to_string b
                     | None -> "-"
                   in
                   out.(rank) <- (Bytes.to_string ar, rd))
             in
             out
           in
           run C.Host = run C.Nic_offload));
  ]

let barrier_tests =
  List.map
    (fun (name, impl) ->
      Alcotest.test_case
        (Printf.sprintf "%s barrier releases nobody early" name)
        `Quick
        (fun () ->
          let n = 5 in
          let leave = Array.make n 0 in
          let _ =
            run_group ~n impl (fun world coll ~rank ->
                let sched = Runtime.sched_of_rank world rank in
                Scheduler.delay sched (Time_ns.ms (float_of_int rank));
                C.any_barrier coll;
                leave.(rank) <- Scheduler.now sched)
          in
          let slowest = Time_ns.ms (float_of_int (n - 1)) in
          Array.iteri
            (fun rank t ->
              Alcotest.(check bool)
                (Printf.sprintf "rank %d after slowest" rank)
                true (t >= slowest))
            leave))
    impls

let tolerant_tests =
  List.map
    (fun (name, impl) ->
      Alcotest.test_case
        (Printf.sprintf "%s tolerant barrier survives a crashed rank" name)
        `Quick
        (fun () ->
          let n = 4 in
          let victim = 2 in
          let released = ref 0 in
          let world = Runtime.create_world ~nodes:n () in
          Runtime.spawn_ranks world (fun ~rank ->
              let ni =
                P.Ni.create
                  (Runtime.transport_of_rank world rank)
                  ~id:world.Runtime.ranks.(rank) ()
              in
              let coll =
                C.create_impl impl ni ~ranks:world.Runtime.ranks ~rank ()
              in
              C.any_barrier coll;
              if rank <> victim then begin
                (* Give the crash (at 2 ms) time to land, then run the
                   shutdown barrier among the survivors. *)
                Scheduler.delay
                  (Runtime.sched_of_rank world rank)
                  (Time_ns.ms 5.);
                C.any_barrier ~tolerant:true coll;
                incr released
              end);
          Scheduler.spawn world.Runtime.sched (fun () ->
              Scheduler.delay world.Runtime.sched (Time_ns.ms 2.);
              Simnet.Fabric.crash world.Runtime.fabric
                world.Runtime.ranks.(victim).Simnet.Proc_id.nid);
          Runtime.run world;
          Alcotest.(check int) "survivors released" (n - 1) !released))
    impls

let domain_tests =
  [
    Alcotest.test_case "byte-identical across engines and domain counts"
      `Quick
      (fun () ->
        let reference, _ = run_workload ~domains:1 C.Host in
        List.iter
          (fun (label, impl, domains) ->
            let got, drops = run_workload ~domains impl in
            Array.iteri
              (fun rank r ->
                Alcotest.(check string)
                  (Printf.sprintf "%s rank %d" label rank)
                  r got.(rank))
              reference;
            if impl = C.Nic_offload then
              Alcotest.(check int)
                (Printf.sprintf "%s drop-free" label)
                0 drops)
          [
            ("host@4", C.Host, 4);
            ("nic@1", C.Nic_offload, 1);
            ("nic@4", C.Nic_offload, 4);
          ])
  ]

let chaos_tests =
  [
    Alcotest.test_case "nic chains survive loss, delay and duplication"
      `Quick
      (fun () ->
        (* Same workload, now over a faulty fabric with the reliability
           shim underneath: retransmits and duplicate deliveries must
           not double-fire chains or skew counters — results still match
           the clean-fabric host reference bit for bit. *)
        let reference, _ = run_workload C.Host in
        Fun.protect
          ~finally:(fun () -> Runtime.set_run_env ~loss:0. ~fault:"" ())
          (fun () ->
            Runtime.set_run_env ~fault:"bernoulli:0.03+delay:30:15" ();
            List.iter
              (fun (label, impl) ->
                let got, _ = run_workload impl in
                Array.iteri
                  (fun rank r ->
                    Alcotest.(check string)
                      (Printf.sprintf "%s under faults rank %d" label rank)
                      r got.(rank))
                  reference)
              [ ("host", C.Host); ("nic", C.Nic_offload) ]))
  ]

let () =
  Alcotest.run "coll-conformance"
    [
      ("equality", equality_tests);
      ("barrier", barrier_tests);
      ("tolerant", tolerant_tests);
      ("domains", domain_tests);
      ("chaos", chaos_tests);
    ]
