open Sim_engine

(* Build an [n]-rank collectives world (one Portals NI + Coll endpoint per
   rank) and run [f coll rank] in a fiber per rank. *)
let with_group ?(n = 4) f =
  let world = Runtime.create_world ~nodes:n () in
  let nis =
    Array.map (fun pid -> Portals.Ni.create world.Runtime.transport ~id:pid ())
      world.Runtime.ranks
  in
  let colls =
    Array.mapi
      (fun rank ni -> Collectives.create ni ~ranks:world.Runtime.ranks ~rank ())
      nis
  in
  Array.iteri
    (fun rank coll ->
      Scheduler.spawn world.Runtime.sched ~name:(Printf.sprintf "coll%d" rank)
        (fun () -> f coll rank))
    colls;
  Runtime.run world

let barrier_tests =
  [
    Alcotest.test_case "barrier releases nobody early" `Quick (fun () ->
        let n = 5 in
        let world = Runtime.create_world ~nodes:n () in
        let colls =
          Array.mapi
            (fun rank pid ->
              let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
              Collectives.create ni ~ranks:world.Runtime.ranks ~rank ())
            world.Runtime.ranks
        in
        let leave = Array.make n 0 in
        Array.iteri
          (fun rank coll ->
            Scheduler.spawn world.Runtime.sched (fun () ->
                Scheduler.delay world.Runtime.sched (Time_ns.ms (float_of_int rank));
                Collectives.barrier coll;
                leave.(rank) <- Scheduler.now world.Runtime.sched))
          colls;
        Runtime.run world;
        let slowest = Time_ns.ms (float_of_int (n - 1)) in
        Array.iteri
          (fun rank t ->
            Alcotest.(check bool)
              (Printf.sprintf "rank %d after slowest" rank)
              true (t >= slowest))
          leave);
    Alcotest.test_case "barriers are reusable" `Quick (fun () ->
        let rounds = ref 0 in
        with_group ~n:3 (fun coll rank ->
            for _ = 1 to 5 do
              Collectives.barrier coll
            done;
            if rank = 0 then rounds := 5);
        Alcotest.(check int) "finished" 5 !rounds);
  ]

let data_tests =
  [
    Alcotest.test_case "bcast from every root" `Quick (fun () ->
        let n = 6 in
        for root = 0 to n - 1 do
          let results = Array.make n "" in
          with_group ~n (fun coll rank ->
              let payload =
                if rank = root then Bytes.of_string (Printf.sprintf "root=%d" root)
                else Bytes.empty
              in
              let out = Collectives.bcast coll ~root payload in
              results.(rank) <- Bytes.to_string out);
          Array.iteri
            (fun rank got ->
              Alcotest.(check string)
                (Printf.sprintf "root %d rank %d" root rank)
                (Printf.sprintf "root=%d" root)
                got)
            results
        done);
    Alcotest.test_case "reduce sums floats at the root" `Quick (fun () ->
        let n = 5 in
        let result = ref [||] in
        with_group ~n (fun coll rank ->
            let mine = [| float_of_int rank; 1.0; float_of_int (rank * rank) |] in
            match
              Collectives.reduce coll ~root:2 ~op:Collectives.sum_floats
                (Collectives.bytes_of_floats mine)
            with
            | Some acc ->
              Alcotest.(check int) "only root gets it" 2 rank;
              result := Collectives.floats_of_bytes acc
            | None -> Alcotest.(check bool) "non-root" true (rank <> 2));
        Alcotest.(check (array (float 1e-9)))
          "sums" [| 10.0; 5.0; 30.0 |] !result);
    Alcotest.test_case "allreduce agrees on every rank" `Quick (fun () ->
        let n = 7 in
        let results = Array.make n [||] in
        with_group ~n (fun coll rank ->
            results.(rank) <-
              Collectives.allreduce_float_sum coll [| float_of_int (rank + 1) |]);
        let expect = float_of_int (n * (n + 1) / 2) in
        Array.iteri
          (fun rank got ->
            Alcotest.(check (array (float 1e-9)))
              (Printf.sprintf "rank %d" rank)
              [| expect |] got)
          results);
    Alcotest.test_case "allreduce max" `Quick (fun () ->
        let n = 4 in
        let results = Array.make n [||] in
        with_group ~n (fun coll rank ->
            let acc =
              Collectives.allreduce coll ~op:Collectives.max_floats
                (Collectives.bytes_of_floats [| float_of_int (10 - rank) |])
            in
            results.(rank) <- Collectives.floats_of_bytes acc);
        Array.iter
          (fun got -> Alcotest.(check (array (float 1e-9))) "max" [| 10.0 |] got)
          results);
    Alcotest.test_case "gather collects rank-indexed pieces" `Quick (fun () ->
        let n = 5 in
        let collected = ref [||] in
        with_group ~n (fun coll rank ->
            match
              Collectives.gather coll ~root:0
                (Bytes.of_string (Printf.sprintf "piece-%d" rank))
            with
            | Some pieces -> collected := Array.map Bytes.to_string pieces
            | None -> ());
        Alcotest.(check (array string))
          "indexed by rank"
          (Array.init n (Printf.sprintf "piece-%d"))
          !collected);
    Alcotest.test_case "scatter hands out the right pieces" `Quick (fun () ->
        let n = 4 in
        let got = Array.make n "" in
        with_group ~n (fun coll rank ->
            let pieces =
              if rank = 1 then
                Some (Array.init n (fun i -> Bytes.of_string (Printf.sprintf "p%d" i)))
              else None
            in
            got.(rank) <- Bytes.to_string (Collectives.scatter coll ~root:1 pieces));
        Alcotest.(check (array string))
          "pieces" (Array.init n (Printf.sprintf "p%d")) got);
    Alcotest.test_case "allgather via ring" `Quick (fun () ->
        let n = 6 in
        let results = Array.make n [||] in
        with_group ~n (fun coll rank ->
            let out =
              Collectives.allgather coll
                (Bytes.of_string (Printf.sprintf "<%d>" rank))
            in
            results.(rank) <- Array.map Bytes.to_string out);
        Array.iteri
          (fun rank got ->
            Alcotest.(check (array string))
              (Printf.sprintf "rank %d" rank)
              (Array.init n (Printf.sprintf "<%d>"))
              got)
          results);
    Alcotest.test_case "alltoall personalised exchange" `Quick (fun () ->
        let n = 4 in
        let results = Array.make n [||] in
        with_group ~n (fun coll rank ->
            let input =
              Array.init n (fun dst ->
                  Bytes.of_string (Printf.sprintf "%d->%d" rank dst))
            in
            results.(rank) <- Array.map Bytes.to_string (Collectives.alltoall coll input));
        Array.iteri
          (fun rank got ->
            Alcotest.(check (array string))
              (Printf.sprintf "rank %d" rank)
              (Array.init n (fun src -> Printf.sprintf "%d->%d" src rank))
              got)
          results);
    Alcotest.test_case "collectives back to back do not interfere" `Quick
      (fun () ->
        let n = 4 in
        let ok = ref true in
        with_group ~n (fun coll rank ->
            for round = 1 to 10 do
              let v =
                Collectives.allreduce_float_sum coll [| float_of_int round |]
              in
              if v.(0) <> float_of_int (round * n) then ok := false;
              Collectives.barrier coll;
              let b =
                Collectives.bcast coll ~root:(round mod n)
                  (if rank = round mod n then Bytes.of_string (string_of_int round)
                   else Bytes.empty)
              in
              if Bytes.to_string b <> string_of_int round then ok := false
            done);
        Alcotest.(check bool) "all rounds consistent" true !ok);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"allreduce sum matches sequential fold" ~count:25
         QCheck.(pair (int_range 2 9) (list_of_size Gen.(int_range 1 8) (float_range (-100.) 100.)))
         (fun (n, base) ->
           let base = Array.of_list base in
           let results = Array.make n [||] in
           with_group ~n (fun coll rank ->
               let mine = Array.map (fun x -> x +. float_of_int rank) base in
               results.(rank) <- Collectives.allreduce_float_sum coll mine);
           let expect =
             Array.map
               (fun x ->
                 (x *. float_of_int n) +. float_of_int (n * (n - 1) / 2))
               base
           in
           Array.for_all
             (fun got ->
               Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) got expect)
             results));
  ]

let float_helpers_tests =
  [
    Alcotest.test_case "float serialisation round trip" `Quick (fun () ->
        let a = [| 1.5; -2.25; 0.0; 1e300; Float.min_float |] in
        Alcotest.(check (array (float 0.)))
          "round trip" a
          (Collectives.floats_of_bytes (Collectives.bytes_of_floats a)));
    Alcotest.test_case "sum_floats in place" `Quick (fun () ->
        let acc = Collectives.bytes_of_floats [| 1.0; 2.0 |] in
        Collectives.sum_floats acc (Collectives.bytes_of_floats [| 10.0; 20.0 |]);
        Alcotest.(check (array (float 1e-12)))
          "summed" [| 11.0; 22.0 |]
          (Collectives.floats_of_bytes acc));
  ]

let pool_tests =
  [
    Alcotest.test_case "recv claims by bits; FIFO within a key" `Quick
      (fun () ->
        (* Two senders address rank 0 under distinct match bits; the root
           claims them out of global arrival order. Claims by one key must
           not disturb the other key's queue, and within a key messages
           come out in arrival order — the contract the keyed pending
           table in Pool.take provides. *)
        let world = Runtime.create_world ~nodes:3 () in
        let nis =
          Array.map
            (fun pid -> Portals.Ni.create world.Runtime.transport ~id:pid ())
            world.Runtime.ranks
        in
        let pools =
          Array.map
            (fun ni -> Collectives.Pool.create ni ~portal_index:6 ())
            nis
        in
        let root = world.Runtime.ranks.(0) in
        let send_all rank msgs =
          Scheduler.spawn world.Runtime.sched (fun () ->
              List.iter
                (fun m ->
                  Collectives.Pool.send pools.(rank) ~dst:root
                    ~bits:(Portals.Match_bits.of_int rank)
                    (Bytes.of_string m))
                msgs)
        in
        send_all 1 [ "a1"; "a2"; "a3" ];
        send_all 2 [ "b1"; "b2" ];
        let got = ref [] in
        Scheduler.spawn world.Runtime.sched (fun () ->
            (* Let every message land unclaimed before the first recv, so
               claims really do run against a populated pool. *)
            Scheduler.delay world.Runtime.sched (Time_ns.ms 10.);
            let take key =
              got :=
                Bytes.to_string
                  (Collectives.Pool.recv pools.(0)
                     ~bits:(Portals.Match_bits.of_int key))
                :: !got
            in
            List.iter take [ 2; 1; 2; 1; 1 ]);
        Runtime.run world;
        Alcotest.(check (list string))
          "per-key order" [ "b1"; "a1"; "b2"; "a2"; "a3" ] (List.rev !got);
        Alcotest.(check int) "pool drained" 0
          (Collectives.Pool.pending pools.(0)));
  ]

let () =
  Alcotest.run "collectives"
    [
      ("barrier", barrier_tests);
      ("data", data_tests);
      ("helpers", float_helpers_tests);
      ("pool", pool_tests);
    ]
