(* The reliability subsystem: seq/ACK/retransmit over a faulty fabric.
   The properties under test are the ones Portals assumes of its network
   (section 2): reliable, in-order, exactly-once delivery — here
   manufactured above a wire that drops and duplicates. *)

open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

let mk ?config ?fault ?(nodes = 2) ?(seed = 0) () =
  let sched = Scheduler.create ~seed () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes
  in
  Simnet.Fabric.set_fault_model fabric fault;
  let rel = Reliability.attach ?config fabric in
  (sched, fabric, rel)

let frame_tests =
  [
    Alcotest.test_case "data frame round trip" `Quick (fun () ->
        let f =
          Reliability.Frame.Data { seq = 123; payload = Bytes.of_string "abc" }
        in
        (match Reliability.Frame.decode (Reliability.Frame.encode f) with
        | Ok (Reliability.Frame.Data { seq; payload }) ->
          Alcotest.(check int) "seq" 123 seq;
          Alcotest.(check string) "payload" "abc" (Bytes.to_string payload)
        | _ -> Alcotest.fail "bad decode"));
    Alcotest.test_case "ack frame round trip" `Quick (fun () ->
        let f = Reliability.Frame.Ack { cum_ack = -1; sack = 0b1010L } in
        (match Reliability.Frame.decode (Reliability.Frame.encode f) with
        | Ok (Reliability.Frame.Ack { cum_ack; sack }) ->
          Alcotest.(check int) "cum" (-1) cum_ack;
          Alcotest.(check bool) "bit for seq 1" true
            (Reliability.Frame.sack_mem ~sack ~cum_ack 1);
          Alcotest.(check bool) "no bit for seq 0" false
            (Reliability.Frame.sack_mem ~sack ~cum_ack 0)
        | _ -> Alcotest.fail "bad decode"));
    Alcotest.test_case "decode rejects garbage" `Quick (fun () ->
        Alcotest.(check bool) "short" true
          (Result.is_error (Reliability.Frame.decode (Bytes.create 3)));
        Alcotest.(check bool) "bad magic" true
          (Result.is_error (Reliability.Frame.decode (Bytes.make 20 'x'))));
    Alcotest.test_case "sack_of_seqs respects the 64-entry window" `Quick
      (fun () ->
        let sack = Reliability.Frame.sack_of_seqs ~cum_ack:10 [ 11; 74; 75; 200 ] in
        Alcotest.(check bool) "11 in" true
          (Reliability.Frame.sack_mem ~sack ~cum_ack:10 11);
        Alcotest.(check bool) "74 in (last bit)" true
          (Reliability.Frame.sack_mem ~sack ~cum_ack:10 74);
        Alcotest.(check bool) "75 out" false
          (Reliability.Frame.sack_mem ~sack ~cum_ack:10 75));
  ]

(* Send [n] distinct payloads rank0 -> rank1 through the plain fabric
   API; return them as received. *)
let exchange ?config ?fault ?seed ~n ~len () =
  let sched, fabric, rel = mk ?config ?fault ?seed () in
  let got = ref [] in
  Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ payload ->
      got := Bytes.to_string payload :: !got);
  Simnet.Fabric.register fabric (proc 0 0) (fun ~src:_ _ -> ());
  for i = 0 to n - 1 do
    let payload = Bytes.make len (Char.chr (33 + (i mod 90))) in
    Bytes.set payload 0 (Char.chr (i mod 256));
    Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0) payload
  done;
  Scheduler.run sched;
  (List.rev !got, rel, fabric)

let expected_payloads ~n ~len =
  List.init n (fun i ->
      let payload = Bytes.make len (Char.chr (33 + (i mod 90))) in
      Bytes.set payload 0 (Char.chr (i mod 256));
      Bytes.to_string payload)

let perfect_wire_tests =
  [
    Alcotest.test_case "transparent on a perfect wire" `Quick (fun () ->
        let got, rel, _ = exchange ~n:20 ~len:64 () in
        Alcotest.(check (list string)) "all in order"
          (expected_payloads ~n:20 ~len:64)
          got;
        let st = Reliability.stats rel in
        Alcotest.(check int) "no retransmits" 0 st.Reliability.retransmits;
        Alcotest.(check int) "delivered" 20 st.Reliability.delivered;
        Alcotest.(check int) "acks flowed" 20 st.Reliability.acks_sent);
    Alcotest.test_case "window limits in-flight frames" `Quick (fun () ->
        let config = { Reliability.default_config with Reliability.window = 4 } in
        let sched, fabric, rel = mk ~config () in
        Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ _ -> ());
        Simnet.Fabric.register fabric (proc 0 0) (fun ~src:_ _ -> ());
        let max_seen = ref 0 in
        for _ = 1 to 50 do
          Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
            (Bytes.create 512);
          max_seen := max !max_seen (Reliability.inflight rel)
        done;
        Scheduler.run sched;
        Alcotest.(check bool)
          (Printf.sprintf "inflight peak %d <= 4" !max_seen)
          true (!max_seen <= 4);
        Alcotest.(check int) "all delivered"
          50 (Reliability.stats rel).Reliability.delivered);
    Alcotest.test_case "ack rtt summary is populated" `Quick (fun () ->
        let sched, fabric, _rel = mk () in
        Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ _ -> ());
        Simnet.Fabric.register fabric (proc 0 0) (fun ~src:_ _ -> ());
        Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 100);
        Scheduler.run sched;
        let snap = Metrics.snapshot (Scheduler.metrics sched) in
        match
          Metrics.Snapshot.find
            ~labels:[ ("protocol", "reliability") ]
            snap "rel.ack_rtt_us"
        with
        | Some (Metrics.Snapshot.Summary { count; mean; _ }) ->
          Alcotest.(check int) "one sample" 1 count;
          Alcotest.(check bool) "positive rtt" true (mean > 0.)
        | _ -> Alcotest.fail "rtt summary missing");
  ]

let lossy_wire_tests =
  [
    Alcotest.test_case "bernoulli loss: recovered, in order, exactly once"
      `Quick (fun () ->
        let fault = Simnet.Fault.bernoulli ~seed:11 ~p:0.1 () in
        let got, rel, fabric = exchange ~fault ~n:100 ~len:256 () in
        Alcotest.(check (list string)) "all recovered in order"
          (expected_payloads ~n:100 ~len:256)
          got;
        let st = Reliability.stats rel in
        Alcotest.(check bool)
          (Printf.sprintf "retransmits %d > 0" st.Reliability.retransmits)
          true
          (st.Reliability.retransmits > 0);
        Alcotest.(check bool) "fabric counted injected drops" true
          ((Simnet.Fabric.stats fabric).Simnet.Fabric.drops_injected > 0));
    Alcotest.test_case "burst loss: recovered, in order, exactly once" `Quick
      (fun () ->
        let fault =
          Simnet.Fault.gilbert ~seed:5 ~p_enter:0.05 ~p_exit:0.3 ()
        in
        let got, _, _ = exchange ~fault ~n:100 ~len:256 () in
        Alcotest.(check (list string)) "all recovered in order"
          (expected_payloads ~n:100 ~len:256)
          got);
    Alcotest.test_case "duplication: suppressed, delivered exactly once" `Quick
      (fun () ->
        let fault = Simnet.Fault.duplicator ~seed:3 ~p:0.3 () in
        let got, rel, fabric = exchange ~fault ~n:60 ~len:128 () in
        Alcotest.(check (list string)) "exactly once, in order"
          (expected_payloads ~n:60 ~len:128)
          got;
        Alcotest.(check bool) "wire duplicated something" true
          ((Simnet.Fabric.stats fabric).Simnet.Fabric.dups_injected > 0);
        Alcotest.(check bool) "duplicates suppressed" true
          ((Reliability.stats rel).Reliability.duplicate_drops > 0));
    Alcotest.test_case "link flap: outage repaired by retransmission" `Quick
      (fun () ->
        let fault =
          Simnet.Fault.link_flap ~period:(Time_ns.us 20.)
            ~downtime:(Time_ns.us 10.) ()
        in
        let got, rel, _ = exchange ~fault ~n:80 ~len:512 () in
        Alcotest.(check (list string)) "all recovered in order"
          (expected_payloads ~n:80 ~len:512)
          got;
        Alcotest.(check bool) "retransmits happened" true
          ((Reliability.stats rel).Reliability.retransmits > 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"any seed, any loss rate <= 20%: in-order exactly-once"
         ~count:25
         QCheck.(pair small_nat (int_range 0 20))
         (fun (seed, loss_pct) ->
           let fault =
             Simnet.Fault.bernoulli ~seed ~p:(float_of_int loss_pct /. 100.) ()
           in
           let got, _, _ = exchange ~fault ~seed ~n:40 ~len:64 () in
           got = expected_payloads ~n:40 ~len:64));
  ]

let budget_tests =
  [
    Alcotest.test_case "retry budget exhausts against a dead link" `Quick
      (fun () ->
        (* 100% loss: every frame burns its budget and is abandoned;
           the sender must not retransmit forever. *)
        let config =
          {
            Reliability.default_config with
            Reliability.max_retries = 3;
            window = 8;
          }
        in
        let fault = Simnet.Fault.bernoulli ~seed:0 ~p:1.0 () in
        let gave_up = ref [] in
        let sched, fabric, rel = mk ~config ~fault () in
        Reliability.on_give_up rel (fun ~src:_ ~dst:_ ~seq ->
            gave_up := seq :: !gave_up);
        Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ _ ->
            Alcotest.fail "nothing can arrive");
        for _ = 1 to 5 do
          Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
            (Bytes.create 64)
        done;
        Scheduler.run sched;
        let st = Reliability.stats rel in
        Alcotest.(check int) "all five abandoned" 5
          st.Reliability.retries_exhausted;
        Alcotest.(check int) "give-up callback saw each" 5
          (List.length !gave_up);
        Alcotest.(check int) "3 retries each" 15 st.Reliability.retransmits;
        Alcotest.(check int) "nothing delivered" 0 st.Reliability.delivered;
        Alcotest.(check int) "sender drained" 0 (Reliability.inflight rel));
    Alcotest.test_case "below the budget there is zero visible loss" `Quick
      (fun () ->
        (* Heavy (30%) loss but a deep budget: the application still sees
           every message, in order. *)
        let fault = Simnet.Fault.bernoulli ~seed:42 ~p:0.3 () in
        let got, rel, _ = exchange ~fault ~n:50 ~len:64 () in
        Alcotest.(check (list string)) "no visible loss"
          (expected_payloads ~n:50 ~len:64)
          got;
        Alcotest.(check int) "no exhaustion" 0
          (Reliability.stats rel).Reliability.retries_exhausted);
  ]

let shim_tests =
  [
    Alcotest.test_case "second shim is rejected" `Quick (fun () ->
        let _, fabric, _ = mk () in
        Alcotest.check_raises "double install"
          (Invalid_argument "Fabric.install_shim: a shim is already installed")
          (fun () -> ignore (Reliability.attach fabric)));
    Alcotest.test_case "acks keep flowing after upper unregistration" `Quick
      (fun () ->
        (* The shim lives below registration: a retransmitted frame whose
           destination has unregistered is still acked (stopping the
           retransmit storm) and counted as an unregistered drop above. *)
        let sched, fabric, rel = mk () in
        Simnet.Fabric.register fabric (proc 0 0) (fun ~src:_ _ -> ());
        Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 32);
        Scheduler.run sched;
        Alcotest.(check int) "acked: nothing in flight" 0
          (Reliability.inflight rel);
        Alcotest.(check int) "no exhaustion" 0
          (Reliability.stats rel).Reliability.retries_exhausted;
        Alcotest.(check int) "unregistered drop counted" 1
          (Simnet.Fabric.stats fabric).Simnet.Fabric.drops_unregistered);
  ]

let campaign_tests =
  [
    Alcotest.test_case "grid is losses-major" `Quick (fun () ->
        let g =
          Reliability.Campaign.grid ~losses:[ 0.; 0.1 ] ~seeds:[ 1; 2 ]
        in
        Alcotest.(check (list (pair (float 1e-9) int)))
          "order"
          [ (0., 1); (0., 2); (0.1, 1); (0.1, 2) ]
          (List.map
             (fun p ->
               (p.Reliability.Campaign.loss, p.Reliability.Campaign.seed))
             g));
    Alcotest.test_case "same point replays bit-exactly" `Quick (fun () ->
        let run ~loss ~seed =
          let fault =
            Reliability.Campaign.fault { Reliability.Campaign.loss; seed }
          in
          let _, rel, _ = exchange ?fault ~seed ~n:30 ~len:128 () in
          (Reliability.stats rel).Reliability.retransmits
        in
        let a = run ~loss:0.1 ~seed:9 and b = run ~loss:0.1 ~seed:9 in
        Alcotest.(check int) "deterministic" a b);
    Alcotest.test_case "mean_by_loss collapses seeds" `Quick (fun () ->
        let outcomes =
          Reliability.Campaign.run ~losses:[ 0.; 0.5 ] ~seeds:[ 1; 2 ]
            ~f:(fun ~loss ~seed -> loss +. float_of_int seed)
        in
        Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
          "means"
          [ (0., 1.5); (0.5, 2.0) ]
          (Reliability.Campaign.mean_by_loss (fun v -> v) outcomes));
  ]

let corruption_tests =
  [
    Alcotest.test_case "corruption degrades to loss: recovered byte-clean"
      `Quick (fun () ->
        (* Integrity on: every shim frame carries a CRC, damage is
           detected and retransmitted — never surfaced to the payload. *)
        Simnet.Integrity.with_enabled true (fun () ->
            let fault = Simnet.Fault.corrupt ~seed:13 ~p:0.08 () in
            let got, rel, fabric = exchange ~fault ~n:100 ~len:256 () in
            Alcotest.(check (list string)) "all recovered byte-identical"
              (expected_payloads ~n:100 ~len:256)
              got;
            let st = Reliability.stats rel in
            Alcotest.(check bool) "wire damaged something" true
              ((Simnet.Fabric.stats fabric).Simnet.Fabric.corrupts_injected > 0);
            Alcotest.(check bool)
              (Printf.sprintf "corrupt drops %d > 0" st.Reliability.corrupt_drops)
              true
              (st.Reliability.corrupt_drops > 0);
            Alcotest.(check bool) "recovered by retransmission" true
              (st.Reliability.retransmits > 0)));
    Alcotest.test_case "delayed wire: still in order through the shim" `Quick
      (fun () ->
        let fault =
          Simnet.Fault.delay ~seed:5 ~mean:(Time_ns.us 25.)
            ~jitter:(Time_ns.us 25.) ~reorder:true ()
        in
        let got, _, _ = exchange ~fault ~n:60 ~len:64 () in
        Alcotest.(check (list string)) "in order despite reordering"
          (expected_payloads ~n:60 ~len:64)
          got);
    Alcotest.test_case "partition: cut traffic recovered after the heal"
      `Quick (fun () ->
        let sched, fabric, rel = mk () in
        Simnet.Fabric.apply_partition_schedule fabric
          (Simnet.Fault.partition_schedule
             [
               {
                 Simnet.Fault.group_a = [ 0 ];
                 group_b = [ 1 ];
                 one_way = false;
                 cut_at = Time_ns.us 50.;
                 heal_at = Some (Time_ns.us 400.);
               };
             ]);
        let got = ref [] in
        Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ payload ->
            got := Bytes.to_string payload :: !got);
        Simnet.Fabric.register fabric (proc 0 0) (fun ~src:_ _ -> ());
        for i = 0 to 9 do
          Scheduler.at sched
            (Time_ns.us (float_of_int (i * 30)))
            (fun () ->
              Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
                (Bytes.make 8 (Char.chr (65 + i))))
        done;
        Scheduler.run sched;
        Alcotest.(check (list string)) "all ten, in order, exactly once"
          (List.init 10 (fun i -> String.make 8 (Char.chr (65 + i))))
          (List.rev !got);
        Alcotest.(check bool) "cut actually severed frames" true
          ((Simnet.Fabric.stats fabric).Simnet.Fabric.drops_partitioned > 0);
        Alcotest.(check int) "nothing abandoned" 0
          (Reliability.stats rel).Reliability.retries_exhausted);
  ]

let chaos_grid_tests =
  [
    Alcotest.test_case "cell validation" `Quick (fun () ->
        let bad name f =
          Alcotest.(check bool) name true
            (match f () with
            | _ -> false
            | exception Invalid_argument _ -> true)
        in
        bad "corrupt > 1" (fun () ->
            Reliability.Chaos.cell ~corrupt:1.5 ~seed:0 ());
        bad "negative loss" (fun () ->
            Reliability.Chaos.cell ~loss:(-0.1) ~seed:0 ());
        bad "negative delay" (fun () ->
            Reliability.Chaos.cell ~delay:(-3) ~seed:0 ());
        bad "negative crashes" (fun () ->
            Reliability.Chaos.cell ~crashes:(-1) ~seed:0 ()));
    Alcotest.test_case "grid is the full cartesian product" `Quick (fun () ->
        let cells =
          Reliability.Chaos.grid ~corrupts:[ 0.; 0.02 ]
            ~partitions:[ false; true ] ~seeds:[ 1; 2 ] ()
        in
        Alcotest.(check int) "2 x 2 x 2 cells" 8 (List.length cells);
        Alcotest.(check int) "clean control present" 1
          (List.length
             (List.filter
                (fun c -> not (Reliability.Chaos.faulty c))
                (List.filter (fun c -> c.Reliability.Chaos.seed = 1) cells))));
    Alcotest.test_case "fault_of_cell composes the requested axes" `Quick
      (fun () ->
        Alcotest.(check bool) "clean cell has no model" true
          (Reliability.Chaos.fault_of_cell
             (Reliability.Chaos.cell ~seed:3 ())
          = None);
        match
          Reliability.Chaos.fault_of_cell
            (Reliability.Chaos.cell ~corrupt:0.5 ~loss:0.1 ~seed:3 ())
        with
        | None -> Alcotest.fail "faulty cell without a model"
        | Some fault ->
          Alcotest.(check bool) "composition can corrupt" true
            (Simnet.Fault.can_corrupt fault));
    Alcotest.test_case "partition_of_cell halves the nids, heals" `Quick
      (fun () ->
        match
          Reliability.Chaos.partition_of_cell
            (Reliability.Chaos.cell ~partition:true ~seed:0 ())
            ~nids:[ 0; 1; 2; 3 ] ~horizon:(Time_ns.ms 4.)
        with
        | [ e ] ->
          Alcotest.(check (list int)) "first half" [ 0; 1 ] e.Simnet.Fault.group_a;
          Alcotest.(check (list int)) "second half" [ 2; 3 ] e.Simnet.Fault.group_b;
          Alcotest.(check bool) "cut before heal" true
            (match e.Simnet.Fault.heal_at with
            | Some h -> e.Simnet.Fault.cut_at < h
            | None -> false)
        | cuts -> Alcotest.failf "expected one cut, got %d" (List.length cuts));
  ]

let crash_tests =
  [
    Alcotest.test_case "give-ups emit a rel.give_up trace instant" `Quick
      (fun () ->
        let config =
          { Reliability.default_config with Reliability.max_retries = 1 }
        in
        let fault = Simnet.Fault.bernoulli ~seed:0 ~p:1.0 () in
        let sched, fabric, _rel = mk ~config ~fault () in
        Trace.enable (Scheduler.trace sched);
        Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ _ -> ());
        Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 64);
        Scheduler.run sched;
        let spans = Trace.spans (Scheduler.trace sched) in
        Alcotest.(check bool) "an instant named rel.give_up exists" true
          (List.exists
             (fun s ->
               s.Trace.subsys = "rel"
               && String.length s.Trace.name >= 11
               && String.sub s.Trace.name 0 11 = "rel.give_up")
             spans));
    Alcotest.test_case "node crash resets the pair and counts the loss"
      `Quick (fun () ->
        (* 100% loss toward the victim keeps frames unacked; the crash
           then wipes the pair state and counts what was pending. *)
        let fault = Simnet.Fault.bernoulli ~seed:0 ~p:1.0 () in
        let sched, fabric, rel = mk ~fault () in
        Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ _ -> ());
        Simnet.Fabric.register fabric (proc 0 0) (fun ~src:_ _ -> ());
        for _ = 1 to 4 do
          Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
            (Bytes.create 64)
        done;
        Scheduler.at sched (Time_ns.us 5.) (fun () ->
            Simnet.Fabric.crash fabric 1);
        (* No deadlock, no endless retransmit: the reset cancels the
           victim pair's timers. *)
        Scheduler.run sched;
        let st = Reliability.stats rel in
        Alcotest.(check int) "one peer reset" 1 st.Reliability.peer_resets;
        Alcotest.(check bool) "pending frames counted lost" true
          (st.Reliability.peer_reset_lost > 0);
        Alcotest.(check int) "sender drained" 0 (Reliability.inflight rel));
    Alcotest.test_case "sequence space restarts cleanly after the reset"
      `Quick (fun () ->
        let sched, fabric, rel = mk () in
        let got = ref 0 in
        Simnet.Fabric.register fabric (proc 0 0) (fun ~src:_ _ -> ());
        Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ _ -> incr got);
        (* A healthy exchange first, so both halves hold nonzero seqs. *)
        for _ = 1 to 3 do
          Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
            (Bytes.create 32)
        done;
        Simnet.Fabric.apply_crash_schedule fabric
          (Simnet.Fault.crash_schedule
             [ (1, Time_ns.us 50., Some (Time_ns.us 60.)) ]);
        Scheduler.at sched (Time_ns.us 70.) (fun () ->
            Simnet.Fabric.register fabric (proc 1 0) (fun ~src:_ _ ->
                incr got);
            Simnet.Fabric.send fabric ~src:(proc 0 0) ~dst:(proc 1 0)
              (Bytes.create 32));
        Scheduler.run sched;
        (* The restarted node's empty tables accept the fresh seq-0
           stream: delivery works, nothing stalls. *)
        Alcotest.(check int) "all four delivered" 4 !got;
        Alcotest.(check int) "one peer reset" 1
          (Reliability.stats rel).Reliability.peer_resets);
    Alcotest.test_case "crash_grid is counts-major and schedules replay"
      `Quick (fun () ->
        let g =
          Reliability.Campaign.crash_grid ~crash_counts:[ 0; 2 ]
            ~seeds:[ 1; 2 ]
        in
        Alcotest.(check (list (pair int int)))
          "order"
          [ (0, 1); (0, 2); (2, 1); (2, 2) ]
          (List.map
             (fun p ->
               ( p.Reliability.Campaign.crashes,
                 p.Reliability.Campaign.crash_seed ))
             g);
        let point = { Reliability.Campaign.crashes = 3; crash_seed = 5 } in
        let mk () =
          Reliability.Campaign.crash_schedule_of ~nids:[ 0; 1; 2 ]
            ~horizon:(Time_ns.ms 1.) point
        in
        Alcotest.(check int) "three events" 3 (List.length (mk ()));
        Alcotest.(check bool) "same point replays" true (mk () = mk ());
        Alcotest.(check int) "zero crashes is an empty schedule" 0
          (List.length
             (Reliability.Campaign.crash_schedule_of ~nids:[ 0; 1 ]
                ~horizon:(Time_ns.ms 1.)
                { Reliability.Campaign.crashes = 0; crash_seed = 1 })));
    Alcotest.test_case "mean_by_crashes collapses seeds" `Quick (fun () ->
        let outcomes =
          Reliability.Campaign.run_crashes ~crash_counts:[ 0; 4 ]
            ~seeds:[ 1; 3 ]
            ~f:(fun ~crashes ~seed -> float_of_int (crashes + seed))
        in
        Alcotest.(check (list (pair int (float 1e-9))))
          "means"
          [ (0, 2.); (4, 6.) ]
          (Reliability.Campaign.mean_by_crashes (fun v -> v) outcomes));
  ]

let () =
  Alcotest.run "reliability"
    [
      ("frames", frame_tests);
      ("perfect wire", perfect_wire_tests);
      ("lossy wire", lossy_wire_tests);
      ("retry budget", budget_tests);
      ("shim", shim_tests);
      ("campaign", campaign_tests);
      ("corruption", corruption_tests);
      ("chaos grid", chaos_grid_tests);
      ("crash", crash_tests);
    ]
