open Sim_engine

let world_tests =
  [
    Alcotest.test_case "rank to process id mapping round-robins nodes" `Quick
      (fun () ->
        let world = Runtime.create_world ~nodes:3 ~procs_per_node:2 () in
        Alcotest.(check int) "job size" 6 (Runtime.job_size world);
        let ids =
          Array.to_list (Array.map Simnet.Proc_id.to_string world.Runtime.ranks)
        in
        Alcotest.(check (list string))
          "round robin"
          [ "0:0"; "1:0"; "2:0"; "0:1"; "1:1"; "2:1" ]
          ids);
    Alcotest.test_case "transport kinds choose matching defaults" `Quick
      (fun () ->
        let offload = Runtime.create_world ~nodes:2 () in
        let kernel =
          Runtime.create_world ~transport:Runtime.Kernel_interrupt ~nodes:2 ()
        in
        Alcotest.(check string) "offload profile" "myrinet-mcp"
          (Simnet.Fabric.profile offload.Runtime.fabric).Simnet.Profile.name;
        Alcotest.(check string) "kernel profile" "myrinet-kernel"
          (Simnet.Fabric.profile kernel.Runtime.fabric).Simnet.Profile.name);
    Alcotest.test_case "validation" `Quick (fun () ->
        Alcotest.check_raises "no nodes"
          (Invalid_argument "Runtime.create_world: need at least one node")
          (fun () -> ignore (Runtime.create_world ~nodes:0 ()));
        let world = Runtime.create_world ~nodes:2 () in
        Alcotest.check_raises "bad rank"
          (Invalid_argument "Runtime.host_cpu_of_rank: rank out of range")
          (fun () -> ignore (Runtime.host_cpu_of_rank world 7)));
    Alcotest.test_case "launch runs every rank to completion" `Quick (fun () ->
        let ran = Array.make 5 false in
        let world =
          Runtime.launch ~nodes:5 (fun world ~rank ->
              Scheduler.delay world.Runtime.sched (Time_ns.us 10.0);
              ran.(rank) <- true)
        in
        ignore world;
        Alcotest.(check (array bool)) "all ran" (Array.make 5 true) ran);
    Alcotest.test_case "launch_mpi wires a working job" `Quick (fun () ->
        let total = ref 0 in
        ignore
          (Runtime.launch_mpi ~nodes:4 (fun ep ->
               let rank = Mpi.rank ep in
               if rank <> 0 then
                 Mpi.send ep ~dst:0 ~tag:1 (Bytes.make 1 (Char.chr rank))
               else
                 for _ = 1 to 3 do
                   let b = Bytes.create 1 in
                   let _st = Mpi.recv ep ~tag:1 b in
                   total := !total + Char.code (Bytes.get b 0)
                 done));
        Alcotest.(check int) "sum of ranks" 6 !total);
    Alcotest.test_case "launch_mpi with gm backend" `Quick (fun () ->
        let ok = ref false in
        ignore
          (Runtime.launch_mpi ~backend:`Gm ~nodes:2 (fun ep ->
               if Mpi.rank ep = 0 then Mpi.send ep ~dst:1 ~tag:0 (Bytes.create 8)
               else begin
                 let st = Mpi.recv ep ~source:0 ~tag:0 (Bytes.create 8) in
                 ok := st.Mpi.length = 8
               end));
        Alcotest.(check bool) "delivered" true !ok);
    Alcotest.test_case "lossy run environment shims reliability under MPI"
      `Quick (fun () ->
        Runtime.set_run_env ~loss:0.15 ~seed:11 ();
        Fun.protect
          ~finally:(fun () -> Runtime.set_run_env ~loss:0. ~seed:0 ())
          (fun () ->
            Alcotest.(check (pair (float 1e-9) int))
              "env readable" (0.15, 11) (Runtime.run_env ());
            let total = ref 0 in
            let world =
              Runtime.launch_mpi ~nodes:4 (fun ep ->
                  let rank = Mpi.rank ep in
                  if rank <> 0 then
                    for _ = 1 to 8 do
                      Mpi.send ep ~dst:0 ~tag:1 (Bytes.make 2048 (Char.chr rank))
                    done
                  else
                    for _ = 1 to 24 do
                      let b = Bytes.create 2048 in
                      let _st = Mpi.recv ep ~tag:1 b in
                      total := !total + Char.code (Bytes.get b 0)
                    done)
            in
            Alcotest.(check int) "sum of ranks despite 15% loss" 48 !total;
            (* The wire really was lossy and the shim really repaired it. *)
            Alcotest.(check bool) "drops injected" true
              ((Simnet.Fabric.stats world.Runtime.fabric)
                 .Simnet.Fabric.drops_injected
              > 0);
            Alcotest.(check bool) "shim installed" true
              (Simnet.Fabric.has_shim world.Runtime.fabric)));
    Alcotest.test_case "multiple processes per node share the host cpu" `Quick
      (fun () ->
        let world = Runtime.create_world ~nodes:2 ~procs_per_node:2 () in
        (* Ranks 0 and 2 are both on node 0. *)
        Alcotest.(check bool) "same cpu" true
          (Runtime.host_cpu_of_rank world 0 == Runtime.host_cpu_of_rank world 2);
        Alcotest.(check bool) "different nodes differ" false
          (Runtime.host_cpu_of_rank world 0 == Runtime.host_cpu_of_rank world 1));
    Alcotest.test_case "deadlocked job raises with blocked ranks" `Quick
      (fun () ->
        let world = Runtime.create_world ~nodes:2 () in
        let endpoints =
          Array.init 2 (fun rank ->
              Mpi.create_portals world.Runtime.transport ~ranks:world.Runtime.ranks
                ~rank ())
        in
        Runtime.spawn_ranks world (fun ~rank ->
            if rank = 0 then
              (* Receive that never gets a message. *)
              ignore (Mpi.recv endpoints.(0) ~source:1 ~tag:9 (Bytes.create 4)));
        (match Runtime.run world with
        | () -> Alcotest.fail "expected deadlock"
        | exception Scheduler.Deadlock blocked ->
          Alcotest.(check int) "one blocked fiber" 1 (List.length blocked)));
    Alcotest.test_case "rtscts transport kind carries mpi traffic" `Quick
      (fun () ->
        let ok = ref false in
        ignore
          (Runtime.launch_mpi ~transport:Runtime.Rtscts ~nodes:2 (fun ep ->
               if Mpi.rank ep = 0 then
                 Mpi.send ep ~dst:1 ~tag:0 (Bytes.make 50_000 'r')
               else begin
                 let b = Bytes.create 50_000 in
                 let st = Mpi.recv ep ~source:0 ~tag:0 b in
                 ok := st.Mpi.length = 50_000 && Bytes.get b 49_999 = 'r'
               end));
        Alcotest.(check bool) "large message over kernel path" true !ok);
  ]

let control_tests =
  [
    Alcotest.test_case "yod launches and gathers exit statuses" `Quick
      (fun () ->
        let world = Runtime.create_world ~nodes:5 () in
        let report =
          Runtime.Control.run_job ~job_id:7 world (fun ~rank -> rank * 10)
        in
        Alcotest.(check int) "job id" 7 report.Runtime.Control.job_id;
        Alcotest.(check (array int)) "statuses"
          [| 0; 10; 20; 30; 40 |]
          report.Runtime.Control.statuses;
        Alcotest.(check bool) "took wire time" true
          (report.Runtime.Control.elapsed > 0));
    Alcotest.test_case "mains wait for their start message" `Quick (fun () ->
        (* No main may run at t=0: the start put has to cross the wire. *)
        let world = Runtime.create_world ~nodes:3 () in
        let start_times = Array.make 3 0 in
        ignore
          (Runtime.Control.run_job world (fun ~rank ->
               start_times.(rank) <- Scheduler.now world.Runtime.sched;
               0));
        Array.iteri
          (fun rank t ->
            Alcotest.(check bool)
              (Printf.sprintf "rank %d started after launch traffic" rank)
              true (t > 0))
          start_times);
    Alcotest.test_case "control agents coexist with an MPI job" `Quick
      (fun () ->
        (* The runtime protocol and application traffic share nodes and
           wires but use distinct processes (multiple pids per node). *)
        let world = Runtime.create_world ~nodes:2 () in
        let endpoints =
          Array.init 2 (fun rank ->
              Mpi.create_portals world.Runtime.transport
                ~ranks:world.Runtime.ranks ~rank ())
        in
        let got = ref "" in
        let report =
          Runtime.Control.run_job world (fun ~rank ->
              let ep = endpoints.(rank) in
              if rank = 0 then Mpi.send ep ~dst:1 ~tag:0 (Bytes.of_string "app")
              else begin
                let b = Bytes.create 8 in
                let st = Mpi.recv ep ~source:0 ~tag:0 b in
                got := Bytes.sub_string b 0 st.Mpi.length
              end;
              0)
        in
        Alcotest.(check string) "app message flowed" "app" !got;
        Alcotest.(check (array int)) "both exited cleanly" [| 0; 0 |]
          report.Runtime.Control.statuses);
  ]

(* [set_run_env] is process-global: always clear it again, even on a
   failing assertion, or later tests inherit the degraded environment. *)
let with_clean_env f =
  Fun.protect
    ~finally:(fun () -> Runtime.set_run_env ~loss:0. ~fault:"" ~crashes:"" ())
    f

let env_tests =
  [
    Alcotest.test_case "malformed --fault and --crash specs are rejected"
      `Quick (fun () ->
        let rejects ?fault ?crashes label =
          Alcotest.(check bool) label true
            (try
               Runtime.set_run_env ?fault ?crashes ();
               false
             with Invalid_argument _ -> true)
        in
        with_clean_env (fun () ->
            rejects ~fault:"bogus:0.1" "unknown model";
            rejects ~fault:"bernoulli" "missing parameter";
            rejects ~fault:"bernoulli:1.5" "probability out of range";
            rejects ~fault:"flap:10:20" "downtime exceeds period";
            rejects ~crashes:"1@" "missing crash time";
            rejects ~crashes:"x@10" "non-numeric nid";
            rejects ~crashes:"1@-5" "negative time";
            rejects ~crashes:"1@20:10" "restart before crash";
            (* Valid specs must be accepted (and cleared by the wrapper). *)
            Runtime.set_run_env
              ~fault:"bernoulli:0.05+duplicate:0.01+flap:100:20" ();
            Runtime.set_run_env ~crashes:"1@50:80,0@200" ()));
    Alcotest.test_case "corrupt, delay and partition specs are validated"
      `Quick (fun () ->
        let rejects ~fault label =
          Alcotest.(check bool) label true
            (try
               Runtime.set_run_env ~fault ();
               false
             with Invalid_argument _ -> true)
        in
        with_clean_env (fun () ->
            rejects ~fault:"corrupt" "corrupt without probability";
            rejects ~fault:"corrupt:-0.1" "corrupt probability negative";
            rejects ~fault:"corrupt:2" "corrupt probability above one";
            rejects ~fault:"delay:-5" "negative delay mean";
            rejects ~fault:"delay:10:20" "delay jitter exceeds mean";
            rejects ~fault:"delay:abc" "non-numeric delay";
            rejects ~fault:"partition:0.1|2.3" "partition without '@'";
            rejects ~fault:"partition:0.1@50" "partition without groups";
            rejects ~fault:"partition:0.1|1.2@50" "node on both sides";
            rejects ~fault:"partition:|2@50" "empty partition group";
            rejects ~fault:"partition:0|1@50:20" "heal before cut";
            rejects ~fault:"partition:0|x@50" "non-numeric nid";
            (* Valid compositions of the new forms must be accepted. *)
            Runtime.set_run_env ~fault:"corrupt:0.02+delay:40:10" ();
            Runtime.set_run_env ~fault:"partition:0.1|2.3@100:200" ();
            Runtime.set_run_env ~fault:"partition:0>1@100" ();
            Runtime.set_run_env
              ~fault:"bernoulli:0.01+corrupt:0.01+partition:0|1@80:160" ()));
    Alcotest.test_case "partition nids outside the world are rejected" `Quick
      (fun () ->
        with_clean_env (fun () ->
            Runtime.set_run_env ~fault:"partition:0.1|2.9@100" ();
            Alcotest.(check bool) "create_world rejects nid 9" true
              (try
                 ignore (Runtime.create_world ~nodes:4 ());
                 false
               with Invalid_argument _ -> true)));
    Alcotest.test_case "env fault spec reaches the fabric of new worlds"
      `Quick (fun () ->
        with_clean_env (fun () ->
            Runtime.set_run_env ~fault:"partition:0.1|2.3@100:400" ();
            let world = Runtime.create_world ~nodes:4 () in
            Alcotest.(check bool) "schedule installed" true
              (Simnet.Fabric.has_partitions world.Runtime.fabric);
            (* Scheduled faults switch the whole world to checksummed
               framing, so damage is detectable end to end. *)
            Alcotest.(check bool) "integrity enabled" true
              (Simnet.Integrity.is_enabled ())));
    Alcotest.test_case "env crash schedule is applied to new worlds" `Quick
      (fun () ->
        with_clean_env (fun () ->
            Runtime.set_run_env ~crashes:"1@50:80" ();
            let world = Runtime.create_world ~nodes:2 () in
            let downs = ref [] in
            Simnet.Fabric.on_crash world.Runtime.fabric (fun nid ->
                downs := nid :: !downs);
            Runtime.run world;
            Alcotest.(check (list int)) "node 1 crashed" [ 1 ] !downs;
            Alcotest.(check int) "and restarted, one incarnation later" 1
              (Simnet.Fabric.incarnation world.Runtime.fabric 1)));
  ]

let liveness_tests =
  [
    Alcotest.test_case "monitor suspects a crashed node and sees it recover"
      `Quick (fun () ->
        let world = Runtime.create_world ~nodes:3 () in
        Simnet.Fabric.apply_crash_schedule world.Runtime.fabric
          (Simnet.Fault.crash_schedule
             [ (2, Time_ns.us 500., Some (Time_ns.us 1500.)) ]);
        let lv =
          Runtime.Liveness.start ~period:(Time_ns.us 100.)
            ~timeout:(Time_ns.us 350.) ~until:(Time_ns.us 3000.) world
        in
        let downs = ref [] in
        let ups = ref [] in
        Runtime.Liveness.on_down lv (fun nid -> downs := nid :: !downs);
        Runtime.Liveness.on_up lv (fun nid -> ups := nid :: !ups);
        Runtime.run ~until:(Time_ns.us 3000.) world;
        Alcotest.(check (list int)) "suspected the victim once" [ 2 ] !downs;
        Alcotest.(check (list int)) "saw it come back" [ 2 ] !ups;
        Alcotest.(check (list int)) "nobody suspected at the end" []
          (Runtime.Liveness.suspected lv));
    Alcotest.test_case "a node that never restarts stays suspected" `Quick
      (fun () ->
        let world = Runtime.create_world ~nodes:3 () in
        Simnet.Fabric.apply_crash_schedule world.Runtime.fabric
          (Simnet.Fault.crash_schedule [ (1, Time_ns.us 400., None) ]);
        let lv =
          Runtime.Liveness.start ~period:(Time_ns.us 100.)
            ~timeout:(Time_ns.us 350.) ~until:(Time_ns.us 2000.) world
        in
        Runtime.run ~until:(Time_ns.us 2000.) world;
        Alcotest.(check (list int)) "still suspected" [ 1 ]
          (Runtime.Liveness.suspected lv));
    Alcotest.test_case
      "heal un-suspects partitioned peers on every transport stack" `Quick
      (fun () ->
        (* The PR 8 regression: a partitioned-but-alive peer must be
           reported partitioned (never crashed) while the cut holds, and
           return to Alive after the heal — on all four stacks' wire
           placements. Heartbeats travel as raw datagrams, so this holds
           even where a reliability shim carries the application traffic. *)
        let verdict_t =
          Alcotest.testable Runtime.Liveness.pp_verdict ( = )
        in
        List.iter
          (fun stack ->
            let name = stack.Runtime.Stack.name in
            let world =
              Runtime.create_world ~transport:stack.Runtime.Stack.kind
                ~nodes:4 ()
            in
            Fun.protect
              ~finally:(fun () -> Simnet.Integrity.set_enabled false)
              (fun () ->
                Simnet.Fabric.apply_partition_schedule world.Runtime.fabric
                  (Simnet.Fault.partition_schedule
                     [
                       {
                         Simnet.Fault.group_a = [ 0; 1 ];
                         group_b = [ 2; 3 ];
                         one_way = false;
                         cut_at = Time_ns.us 500.;
                         heal_at = Some (Time_ns.us 2000.);
                       };
                     ]);
                let lv =
                  Runtime.Liveness.start ~period:(Time_ns.us 100.)
                    ~timeout:(Time_ns.us 350.) ~until:(Time_ns.us 4000.)
                    world
                in
                let mid = ref [] in
                Scheduler.at world.Runtime.sched (Time_ns.us 1500.)
                  (fun () ->
                    mid :=
                      List.map
                        (fun nid -> Runtime.Liveness.verdict lv nid)
                        [ 1; 2; 3 ]);
                let final_suspects = ref [ -1 ] in
                Scheduler.at world.Runtime.sched (Time_ns.us 3900.)
                  (fun () -> final_suspects := Runtime.Liveness.suspected lv);
                Runtime.run ~until:(Time_ns.us 4000.) world;
                Alcotest.(check (list verdict_t))
                  (name ^ ": mid-cut verdicts")
                  [
                    Runtime.Liveness.Alive;
                    Runtime.Liveness.Suspected_partitioned;
                    Runtime.Liveness.Suspected_partitioned;
                  ]
                  !mid;
                Alcotest.(check (list int))
                  (name ^ ": nobody suspected after the heal")
                  [] !final_suspects))
          Runtime.Stack.all);
    Alcotest.test_case "liveness validates its arguments" `Quick (fun () ->
        let world = Runtime.create_world ~nodes:2 () in
        let rejects label f =
          Alcotest.(check bool) label true
            (try
               ignore (f ());
               false
             with Invalid_argument _ -> true)
        in
        rejects "timeout below period" (fun () ->
            Runtime.Liveness.start ~period:(Time_ns.us 100.)
              ~timeout:(Time_ns.us 50.) ~until:(Time_ns.us 1000.) world);
        rejects "monitor out of range" (fun () ->
            Runtime.Liveness.start ~monitor:7 ~until:(Time_ns.us 1000.) world));
  ]

(* --- parallel worlds --------------------------------------------------- *)

(* One deterministic messaging pattern over a raw fabric; returns every
   delivery as (dst, arrival_ns, src, len) plus the fabric totals summed
   across shards — the signature that must be invariant in the domain
   count. *)
let par_signature ~domains ~nodes ?topology () =
  let world = Runtime.create_world ~domains ~seed:42 ?topology ~nodes () in
  let proc nid = Simnet.Proc_id.make ~nid ~pid:0 in
  let log = Array.make nodes [] in
  for nid = 0 to nodes - 1 do
    let sched = Runtime.sched_of_nid world nid in
    Simnet.Fabric.register
      (Runtime.fabric_of_nid world nid)
      (proc nid)
      (fun ~src payload ->
        log.(nid) <-
          (Scheduler.now sched, src.Simnet.Proc_id.nid, Bytes.length payload)
          :: log.(nid))
  done;
  (* Bursts from every node to a near and a far peer: the far peer lives
     on another shard under any contiguous split, so remote landings —
     and on a torus, remote hop continuations — are exercised. *)
  for nid = 0 to nodes - 1 do
    let sched = Runtime.sched_of_nid world nid in
    let fabric = Runtime.fabric_of_nid world nid in
    for k = 0 to 3 do
      Scheduler.at sched
        (Time_ns.us (float_of_int (5 * k)))
        (fun () ->
          Simnet.Fabric.send fabric ~src:(proc nid)
            ~dst:(proc ((nid + 1) mod nodes))
            (Bytes.create (48 + (16 * k)));
          Simnet.Fabric.send fabric ~src:(proc nid)
            ~dst:(proc ((nid + (nodes / 2)) mod nodes))
            (Bytes.create 32))
    done
  done;
  Runtime.run world;
  let sum f =
    Array.fold_left
      (fun acc fab -> acc + f (Simnet.Fabric.stats fab))
      0 (Runtime.shard_fabrics world)
  in
  let totals =
    Simnet.Fabric.
      [
        sum (fun s -> s.messages_sent);
        sum (fun s -> s.bytes_sent);
        sum (fun s -> s.messages_delivered);
        sum (fun s -> s.drops_unregistered);
        sum (fun s -> s.drops_injected);
        sum (fun s -> s.drops_congested);
        sum (fun s -> s.drops_crashed);
        sum (fun s -> s.drops_partitioned);
        sum (fun s -> s.dups_injected);
        sum (fun s -> s.corrupts_injected);
        sum (fun s -> s.delays_injected);
      ]
  in
  (Array.to_list (Array.map List.rev log), totals)

let check_par_matches_seq ~nodes ?topology () =
  let seq_log, seq_totals = par_signature ~domains:1 ~nodes ?topology () in
  let par_log, par_totals = par_signature ~domains:4 ~nodes ?topology () in
  Alcotest.(check (list (list (triple int int int))))
    "same per-node delivery history" seq_log par_log;
  Alcotest.(check (list int)) "same fabric totals" seq_totals par_totals

let with_run_env ~fault ~crashes f =
  Runtime.set_run_env ~fault ~crashes ();
  Fun.protect ~finally:(fun () -> Runtime.set_run_env ~fault:"" ~crashes:"" ()) f

let par_tests =
  [
    Alcotest.test_case "same seed, 1 vs 4 domains: clean full fabric" `Quick
      (fun () -> check_par_matches_seq ~nodes:8 ());
    Alcotest.test_case "same seed, 1 vs 4 domains: clean torus" `Quick
      (fun () ->
        check_par_matches_seq ~nodes:16
          ~topology:(Simnet.Topology.of_spec ~nodes:16 "torus2d")
          ());
    Alcotest.test_case "same seed, 1 vs 4 domains: faults and crashes" `Quick
      (fun () ->
        with_run_env ~fault:"corrupt:0.3+delay:3:1" ~crashes:"2@8:80"
          (fun () -> check_par_matches_seq ~nodes:8 ()));
    Alcotest.test_case
      "same seed, 1 vs 4 domains: multi-hop faults on a torus" `Quick
      (fun () ->
        with_run_env ~fault:"bernoulli:0.1+corrupt:0.25" ~crashes:""
          (fun () ->
            check_par_matches_seq ~nodes:16
              ~topology:(Simnet.Topology.of_spec ~nodes:16 "torus2d")
              ()));
    Alcotest.test_case "parallel world exposes shard placement" `Quick
      (fun () ->
        let world = Runtime.create_world ~domains:4 ~nodes:8 () in
        Alcotest.(check int) "domains" 4 (Runtime.domains world);
        Alcotest.(check bool) "lookahead positive" true
          (match Runtime.lookahead world with
          | Some l -> l > 0
          | None -> false);
        (* Contiguous blocks of two nodes per shard. *)
        Alcotest.(check (list int)) "owners"
          [ 0; 0; 1; 1; 2; 2; 3; 3 ]
          (List.init 8 (Runtime.shard_of_nid world));
        for nid = 0 to 7 do
          let shard = Runtime.shard_of_nid world nid in
          Alcotest.(check bool) "sched matches shard" true
            (Runtime.sched_of_nid world nid
            == (Runtime.shard_scheds world).(shard))
        done;
        (* Small worlds fall back to one shard per node. *)
        let tiny = Runtime.create_world ~domains:4 ~nodes:2 () in
        Alcotest.(check int) "capped at nodes" 2 (Runtime.domains tiny));
    Alcotest.test_case "launch_mpi runs a parallel job" `Quick (fun () ->
        let total = Atomic.make 0 in
        let world =
          Runtime.launch_mpi ~nodes:4 ~domains:2 (fun ep ->
              let rank = Mpi.rank ep in
              if rank <> 0 then
                Mpi.send ep ~dst:0 ~tag:1 (Bytes.make 1 (Char.chr rank))
              else
                for _ = 1 to 3 do
                  let b = Bytes.create 1 in
                  let _st = Mpi.recv ep ~tag:1 b in
                  Atomic.set total (Atomic.get total + Char.code (Bytes.get b 0))
                done)
        in
        Alcotest.(check int) "2 domains" 2 (Runtime.domains world);
        Alcotest.(check bool) "windows turned" true
          (Runtime.window_rounds world > 0);
        Alcotest.(check int) "sum of ranks" 6 (Atomic.get total));
  ]

let () =
  Alcotest.run "runtime"
    [
      ("world", world_tests);
      ("control", control_tests);
      ("run env", env_tests);
      ("liveness", liveness_tests);
      ("parallel", par_tests);
    ]
