open Sim_engine
open Simnet

let proc_id_tests =
  [
    Alcotest.test_case "equality and ordering" `Quick (fun () ->
        let a = Proc_id.make ~nid:1 ~pid:2 in
        let b = Proc_id.make ~nid:1 ~pid:2 in
        let c = Proc_id.make ~nid:2 ~pid:0 in
        Alcotest.(check bool) "equal" true (Proc_id.equal a b);
        Alcotest.(check bool) "not equal" false (Proc_id.equal a c);
        Alcotest.(check bool) "nid dominates" true (Proc_id.compare a c < 0);
        Alcotest.(check string) "pp" "1:2" (Proc_id.to_string a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compare consistent with equal" ~count:300
         QCheck.(quad small_nat small_nat small_nat small_nat)
         (fun (n1, p1, n2, p2) ->
           let a = Proc_id.make ~nid:n1 ~pid:p1 in
           let b = Proc_id.make ~nid:n2 ~pid:p2 in
           Proc_id.equal a b = (Proc_id.compare a b = 0)));
  ]

let profile_tests =
  [
    Alcotest.test_case "packet math" `Quick (fun () ->
        let p = Profile.myrinet_mcp in
        Alcotest.(check int) "zero-len still one packet" 1
          (Profile.packets_of_len p 0);
        Alcotest.(check int) "exact fit" 1 (Profile.packets_of_len p p.Profile.mtu);
        Alcotest.(check int) "one over" 2
          (Profile.packets_of_len p (p.Profile.mtu + 1));
        Alcotest.(check int) "wire bytes include headers"
          (50_000 + (13 * p.Profile.packet_header))
          (Profile.wire_bytes_of_len p 50_000));
    Alcotest.test_case "tx_time scales with length" `Quick (fun () ->
        let p = Profile.myrinet_mcp in
        Alcotest.(check bool) "monotone" true
          (Profile.tx_time p 100_000 > Profile.tx_time p 1_000));
    Alcotest.test_case "presets ordered by overhead" `Quick (fun () ->
        Alcotest.(check bool) "kernel interrupt cost visible" true
          (Profile.myrinet_kernel.Profile.host_interrupt_cost
          = Profile.myrinet_mcp.Profile.host_interrupt_cost);
        Alcotest.(check bool) "tcp slowest syscall" true
          (Profile.tcp_reference.Profile.host_syscall_cost
          > Profile.myrinet_mcp.Profile.host_syscall_cost));
  ]

let link_tests =
  [
    Alcotest.test_case "idle link starts now" `Quick (fun () ->
        let sched = Scheduler.create () in
        Scheduler.at sched 100 (fun () ->
            let link = Link.create sched in
            Alcotest.(check int) "completion" 150 (Link.occupy link 50));
        Scheduler.run sched);
    Alcotest.test_case "busy link serialises" `Quick (fun () ->
        let sched = Scheduler.create () in
        let link = Link.create sched in
        Alcotest.(check int) "first" 50 (Link.occupy link 50);
        Alcotest.(check int) "second queues" 80 (Link.occupy link 30);
        Alcotest.(check int) "busy time" 80 (Link.busy_time link));
    Alcotest.test_case "gap is skipped" `Quick (fun () ->
        let sched = Scheduler.create () in
        let link = Link.create sched in
        ignore (Link.occupy link 10);
        Scheduler.at sched 100 (fun () ->
            Alcotest.(check int) "starts at now" 105 (Link.occupy link 5));
        Scheduler.run sched;
        Alcotest.(check int) "busy excludes idle gap" 15 (Link.busy_time link));
  ]

(* In these tests bandwidth is 1e9 B/s so one byte costs one nanosecond:
   transmit times are readable integers. *)
let ns_per_byte = 1e9

let link_contention_tests =
  [
    Alcotest.test_case "saturated shared link serialises two flows" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let link = Link.create ~bandwidth:ns_per_byte ~tracked:true sched in
        (match Link.transmit link ~flow:1 ~bytes:1000 () with
        | `Accepted t -> Alcotest.(check int) "first owns the wire" 1000 t
        | `Dropped -> Alcotest.fail "first transmit dropped");
        (match Link.transmit link ~flow:2 ~bytes:1000 () with
        | `Accepted t -> Alcotest.(check int) "second queues behind" 2000 t
        | `Dropped -> Alcotest.fail "second transmit dropped");
        Alcotest.(check int) "both outstanding" 2 (Link.queue_depth link);
        Alcotest.(check int) "peak depth" 2 (Link.peak_queue_depth link);
        Alcotest.(check int) "two concurrent flows" 2 (Link.peak_flows link);
        Scheduler.run sched;
        Alcotest.(check int) "drained" 0 (Link.queue_depth link);
        Alcotest.(check int) "busy covers both" 2000 (Link.busy_time link));
    Alcotest.test_case "per-hop latency lands after serialisation" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let link =
          Link.create ~bandwidth:ns_per_byte ~latency:500 ~tracked:true sched
        in
        (match Link.transmit link ~bytes:1000 () with
        | `Accepted t -> Alcotest.(check int) "tx + latency" 1500 t
        | `Dropped -> Alcotest.fail "dropped");
        Scheduler.run sched);
    Alcotest.test_case "queue limit turns overload into drops" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let link =
          Link.create ~bandwidth:ns_per_byte ~queue_limit:2 ~tracked:true sched
        in
        let seen = ref None in
        Link.on_congestion link (fun c -> seen := Some c);
        let accepted = ref 0 and dropped = ref 0 in
        for _ = 1 to 3 do
          match Link.transmit link ~bytes:100 () with
          | `Accepted _ -> incr accepted
          | `Dropped -> incr dropped
        done;
        Alcotest.(check int) "two fit" 2 !accepted;
        Alcotest.(check int) "third dropped" 1 !dropped;
        Alcotest.(check int) "counted" 1 (Link.congestion_drops link);
        (match !seen with
        | Some c ->
          Alcotest.(check int) "hook saw the full queue" 2 c.Link.cong_depth;
          Alcotest.(check int) "hook saw the bytes" 100 c.Link.cong_bytes
        | None -> Alcotest.fail "congestion hook not called");
        Scheduler.run sched;
        (* Once the queue drains the link accepts again. *)
        match Link.transmit link ~bytes:100 () with
        | `Accepted _ -> ()
        | `Dropped -> Alcotest.fail "drained link still dropping");
    Alcotest.test_case "queue limit enforced without tracking" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let link = Link.create ~bandwidth:ns_per_byte ~queue_limit:1 sched in
        (match Link.transmit link ~bytes:10 () with
        | `Accepted _ -> ()
        | `Dropped -> Alcotest.fail "first dropped");
        (match Link.transmit link ~bytes:10 () with
        | `Accepted _ -> Alcotest.fail "limit ignored"
        | `Dropped -> ());
        Scheduler.run sched);
  ]

let topology_tests =
  let rejects name f =
    Alcotest.(check bool) name true
      (match f () with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  [
    Alcotest.test_case "spec parsing round-trips through describe" `Quick
      (fun () ->
        let check spec nodes expect =
          Alcotest.(check string) spec expect
            (Topology.describe (Topology.of_spec ~nodes spec))
        in
        check "full" 16 "full";
        check "ring" 5 "ring";
        check "torus2d" 16 "torus2d:4x4";
        check "torus2d:2x8" 16 "torus2d:2x8";
        check "torus3d" 8 "torus3d:2x2x2";
        check "fattree" 16 "fattree:4";
        check "fattree:4" 16 "fattree:4");
    Alcotest.test_case "bad specs rejected" `Quick (fun () ->
        rejects "dims must match nodes" (fun () ->
            Topology.of_spec ~nodes:8 "torus2d:4x4");
        rejects "fat-tree needs k^3/4 hosts" (fun () ->
            Topology.of_spec ~nodes:6 "fattree");
        rejects "unknown shape" (fun () -> Topology.of_spec ~nodes:8 "mesh");
        rejects "ring of one" (fun () -> Topology.build Ring ~nodes:1));
    Alcotest.test_case "full keeps the seed's empty hop graph" `Quick
      (fun () ->
        let t = Topology.build Full ~nodes:8 in
        Alcotest.(check int) "no switches" 8 (Topology.vertex_count t);
        Alcotest.(check int) "no shared links" 0 (Topology.link_count t);
        Alcotest.(check int) "all nodes adjacent" 7
          (List.length (Topology.neighbors t 0)));
    Alcotest.test_case "4x4 torus structure" `Quick (fun () ->
        let t = Topology.build (Torus2d (4, 4)) ~nodes:16 in
        Alcotest.(check int) "hosts only" 16 (Topology.vertex_count t);
        Alcotest.(check int) "4 directed links per node" 64
          (Topology.link_count t);
        for v = 0 to 15 do
          Alcotest.(check int) "degree 4" 4
            (List.length (Topology.neighbors t v))
        done;
        (* Every link id agrees with the adjacency index. *)
        for l = 0 to Topology.link_count t - 1 do
          let { Topology.link_id; src_v; dst_v } = Topology.link t l in
          Alcotest.(check int) "dense ids" l link_id;
          Alcotest.(check (option int)) "find_link inverts" (Some l)
            (Topology.find_link t ~src_v ~dst_v)
        done);
    Alcotest.test_case "size-2 dimensions do not double links" `Quick
      (fun () ->
        let t = Topology.build (Torus2d (2, 2)) ~nodes:4 in
        Alcotest.(check int) "degree 2" 2 (List.length (Topology.neighbors t 0));
        Alcotest.(check int) "8 directed links" 8 (Topology.link_count t));
    Alcotest.test_case "coords round-trip" `Quick (fun () ->
        let t = Topology.build (Torus3d (2, 3, 4)) ~nodes:24 in
        Alcotest.(check (list int)) "dims" [ 2; 3; 4 ] (Topology.dims t);
        for v = 0 to 23 do
          Alcotest.(check int) "of_coords inverts coords" v
            (Topology.of_coords t (Topology.coords t v))
        done);
    Alcotest.test_case "4-ary fat-tree structure" `Quick (fun () ->
        let t = Topology.build (Fat_tree 4) ~nodes:16 in
        Alcotest.(check int) "hosts" 16 (Topology.nodes t);
        (* 16 hosts + 8 edge + 8 agg + 4 core switches. *)
        Alcotest.(check int) "vertices" 36 (Topology.vertex_count t);
        for h = 0 to 15 do
          match Topology.neighbors t h with
          | [ sw ] ->
            Alcotest.(check bool) "host hangs off one edge switch" true
              (sw >= 16)
          | l ->
            Alcotest.failf "host %d has %d neighbours" h (List.length l)
        done);
  ]

(* The changed coordinate between two adjacent torus path vertices; the
   step must move exactly one dimension by one (with wraparound). *)
let changed_dim topo a b =
  let ca = Topology.coords topo a and cb = Topology.coords topo b in
  let ds = Topology.dims topo in
  let changed =
    List.filteri (fun i _ -> List.nth ca i <> List.nth cb i) ds
    |> List.length
  in
  if changed <> 1 then None
  else
    let rec find i = function
      | [] -> assert false
      | (x, y) :: rest -> if x <> y then i else find (i + 1) rest
    in
    Some (find 0 (List.combine ca cb))

let router_tests =
  let torus = Topology.build (Torus2d (4, 4)) ~nodes:16 in
  let torus3 = Topology.build (Torus3d (2, 3, 4)) ~nodes:24 in
  let check_dimension_order topo (src, dst) =
    let path = Router.path_vertices topo ~src ~dst in
    let hops = Router.hop_count topo ~src ~dst in
    (* Minimal: matches the analytic shortest distance. *)
    hops = Router.min_torus_hops topo ~src ~dst
    (* Simple: no vertex visited twice (so no cycle, no livelock). *)
    && List.length (List.sort_uniq compare path) = List.length path
    (* Dimension-ordered: corrected dimensions never decrease, the
       acyclic-channel-dependency argument for deadlock freedom. *)
    &&
    let rec dims_of = function
      | a :: (b :: _ as rest) -> (
        match changed_dim topo a b with
        | Some d -> d :: dims_of rest
        | None -> [ max_int ] (* illegal step: fails the sorted check *))
      | _ -> []
    in
    let ds = dims_of path in
    List.sort compare ds = ds
  in
  let pair n =
    QCheck.(pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500
         ~name:"2-D torus routing is minimal, simple and dimension-ordered"
         (pair 16)
         (check_dimension_order torus));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500
         ~name:"3-D torus routing is minimal, simple and dimension-ordered"
         (pair 24)
         (check_dimension_order torus3));
    Alcotest.test_case "ring takes the shorter way, ties positive" `Quick
      (fun () ->
        let ring = Topology.build Ring ~nodes:8 in
        Alcotest.(check int) "forward" 3 (Router.hop_count ring ~src:0 ~dst:3);
        Alcotest.(check int) "backward" 3 (Router.hop_count ring ~src:0 ~dst:5);
        Alcotest.(check (list int)) "tie breaks positive" [ 0; 1; 2; 3; 4 ]
          (Router.path_vertices ring ~src:0 ~dst:4));
    Alcotest.test_case "full topology routes have no hops" `Quick (fun () ->
        let full = Topology.build Full ~nodes:8 in
        Alcotest.(check int) "direct" 0 (Array.length (Router.route full ~src:0 ~dst:5));
        Alcotest.(check (list int)) "private wire, no shared hops" [ 0; 5 ]
          (Router.path_vertices full ~src:0 ~dst:5));
    Alcotest.test_case "fat-tree routes are valid and deterministic" `Quick
      (fun () ->
        let ft = Topology.build (Fat_tree 4) ~nodes:16 in
        for src = 0 to 15 do
          for dst = 0 to 15 do
            if src <> dst then begin
              let links = Router.route ft ~src ~dst in
              let verts = Router.path_vertices ft ~src ~dst in
              Alcotest.(check int) "one more vertex than hop"
                (Array.length links + 1)
                (List.length verts);
              Alcotest.(check int) "starts at src" src (List.hd verts);
              Alcotest.(check int) "ends at dst" dst
                (List.nth verts (List.length verts - 1));
              (* Each link really wires its two path vertices. *)
              Array.iteri
                (fun i l ->
                  let lk = Topology.link ft l in
                  Alcotest.(check int) "hop src" (List.nth verts i)
                    lk.Topology.src_v;
                  Alcotest.(check int) "hop dst"
                    (List.nth verts (i + 1))
                    lk.Topology.dst_v)
                links;
              Alcotest.(check bool) "at most host-edge-agg-core-agg-edge-host"
                true
                (Array.length links <= 6);
              Alcotest.(check bool) "same pair, same path" true
                (Router.route ft ~src ~dst = links)
            end
          done
        done);
  ]

let mk_fabric ?(nodes = 4) ?(profile = Profile.myrinet_mcp) () =
  let sched = Scheduler.create () in
  (sched, Fabric.create sched ~profile ~nodes)

let pid nid p = Proc_id.make ~nid ~pid:p

let fabric_tests =
  [
    Alcotest.test_case "delivers payload to registered handler" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        let got = ref None in
        Fabric.register fabric (pid 1 0) (fun ~src payload ->
            got := Some (src, Bytes.to_string payload));
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.of_string "hello");
        Scheduler.run sched;
        Alcotest.(check (option (pair string string)))
          "delivered"
          (Some ("0:0", "hello"))
          (Option.map (fun (s, d) -> (Proc_id.to_string s, d)) !got));
    Alcotest.test_case "delivery takes wire latency plus serialisation" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        let profile = Fabric.profile fabric in
        let arrival = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ ->
            arrival := Scheduler.now sched);
        let payload = Bytes.create 4096 in
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) payload;
        Scheduler.run sched;
        let expect =
          Time_ns.add (Profile.tx_time profile 4096) profile.Profile.wire_latency
        in
        Alcotest.(check int) "arrival" expect !arrival);
    Alcotest.test_case "per-sender messages stay ordered" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        let got = ref [] in
        Fabric.register fabric (pid 1 0) (fun ~src:_ payload ->
            got := Bytes.to_string payload :: !got);
        (* Mix of sizes: a big message then small ones; serialisation on the
           sender link must preserve order. *)
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.make 100_000 'a');
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.of_string "b");
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.of_string "c");
        Scheduler.run sched;
        Alcotest.(check (list string)) "order"
          [ String.make 100_000 'a'; "b"; "c" ]
          (List.rev !got));
    Alcotest.test_case "unregistered destination counts a drop" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 3 7) (Bytes.of_string "x");
        Scheduler.run sched;
        let s = Fabric.stats fabric in
        Alcotest.(check int) "sent" 1 s.Fabric.messages_sent;
        Alcotest.(check int) "dropped" 1 s.Fabric.drops_unregistered;
        Alcotest.(check int) "delivered" 0 s.Fabric.messages_delivered);
    Alcotest.test_case "fault injector drops selected messages" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        let seen = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen);
        Fabric.set_fault_injector fabric
          (Some (fun ~src:_ ~dst:_ ~len -> len > 10));
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.make 100 'x');
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.of_string "ok");
        Scheduler.run sched;
        Alcotest.(check int) "one survived" 1 !seen;
        Alcotest.(check int) "one dropped" 1 (Fabric.stats fabric).Fabric.drops_injected);
    Alcotest.test_case "duplicate registration rejected" `Quick (fun () ->
        let _sched, fabric = mk_fabric () in
        Fabric.register fabric (pid 0 0) (fun ~src:_ _ -> ());
        Alcotest.check_raises "dup"
          (Invalid_argument "Fabric.register: already registered: 0:0")
          (fun () -> Fabric.register fabric (pid 0 0) (fun ~src:_ _ -> ())));
    Alcotest.test_case "unregister then send drops" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> Alcotest.fail "gone");
        Fabric.unregister fabric (pid 1 0);
        Alcotest.(check bool) "unregistered" false
          (Fabric.is_registered fabric (pid 1 0));
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.of_string "x");
        Scheduler.run sched;
        Alcotest.(check int) "drop" 1 (Fabric.stats fabric).Fabric.drops_unregistered);
    Alcotest.test_case "out of range node rejected" `Quick (fun () ->
        let _sched, fabric = mk_fabric ~nodes:2 () in
        Alcotest.check_raises "range"
          (Invalid_argument "Fabric.node: nid 5 out of range") (fun () ->
            ignore (Fabric.node fabric 5)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"all sent messages accounted for" ~count:100
         QCheck.(list_of_size Gen.(int_range 0 30) (int_range 0 5_000))
         (fun sizes ->
           let sched, fabric = mk_fabric () in
           let delivered = ref 0 in
           Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr delivered);
           let send len =
             Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create len)
           in
           List.iter send sizes;
           Scheduler.run sched;
           let s = Fabric.stats fabric in
           !delivered = List.length sizes
           && s.Fabric.messages_sent = List.length sizes
           && s.Fabric.bytes_sent = List.fold_left ( + ) 0 sizes));
  ]

let fabric_topology_tests =
  [
    Alcotest.test_case "explicit Full matches the seed fabric exactly" `Quick
      (fun () ->
        let arrival_on topology =
          let sched = Scheduler.create () in
          let fabric =
            match topology with
            | None -> Fabric.create sched ~profile:Profile.myrinet_mcp ~nodes:4
            | Some k ->
              Fabric.create ~topology:k sched ~profile:Profile.myrinet_mcp
                ~nodes:4
          in
          let arrival = ref 0 in
          Fabric.register fabric (pid 2 0) (fun ~src:_ _ ->
              arrival := Scheduler.now sched);
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 2 0) (Bytes.create 4096);
          Scheduler.run sched;
          (!arrival, Fabric.peak_link_queue_depth fabric)
        in
        let seed = arrival_on None in
        let full = arrival_on (Some Topology.Full) in
        Alcotest.(check (pair int int)) "same timing, no hop links" seed full);
    Alcotest.test_case "multi-hop delivery pays store-and-forward per hop"
      `Quick (fun () ->
        let profile = Profile.myrinet_mcp in
        let arrival_on topology dst =
          let sched = Scheduler.create () in
          let fabric =
            Fabric.create ~topology sched ~profile ~nodes:8
          in
          let arrival = ref 0 in
          Fabric.register fabric (pid dst 0) (fun ~src:_ _ ->
              arrival := Scheduler.now sched);
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid dst 0)
            (Bytes.create 4096);
          Scheduler.run sched;
          !arrival
        in
        let direct = arrival_on Topology.Full 2 in
        let one_hop = arrival_on Topology.Ring 1 in
        let two_hops = arrival_on Topology.Ring 2 in
        Alcotest.(check bool) "one ring hop = private wire" true
          (one_hop = direct);
        (* An uncontended store-and-forward path costs exactly one extra
           (serialisation + latency) per extra hop. *)
        Alcotest.(check int) "second hop repeats the cost" (2 * one_hop)
          two_hops);
    Alcotest.test_case "per-pair order survives shared contended hops" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let fabric =
          Fabric.create
            ~topology:(Topology.Torus2d (4, 4))
            sched ~profile:Profile.myrinet_mcp ~nodes:16
        in
        let got = ref [] in
        Fabric.register fabric (pid 3 0) (fun ~src payload ->
            if Proc_id.equal src (pid 0 0) then
              got := Bytes.get payload 0 :: !got);
        (* Cross traffic fighting for the same row links. *)
        Fabric.register fabric (pid 0 0) (fun ~src:_ _ -> ());
        for nid = 1 to 15 do
          if nid <> 3 then Fabric.register fabric (pid nid 0) (fun ~src:_ _ -> ());
          Fabric.send fabric ~src:(pid nid 0) ~dst:(pid ((nid + 1) mod 16) 0)
            (Bytes.create 2000)
        done;
        for i = 0 to 9 do
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 3 0)
            (Bytes.make 100 (Char.chr i))
        done;
        Scheduler.run sched;
        Alcotest.(check (list char)) "in order"
          (List.init 10 Char.chr)
          (List.rev !got);
        Alcotest.(check bool) "hops actually contended" true
          (Fabric.peak_link_queue_depth fabric > 1));
    Alcotest.test_case "queue limit surfaces as congestion drops" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let fabric =
          Fabric.create ~topology:Topology.Ring ~queue_limit:2 sched
            ~profile:Profile.myrinet_mcp ~nodes:4
        in
        let delivered = ref 0 in
        Fabric.register fabric (pid 2 0) (fun ~src:_ _ -> incr delivered);
        for _ = 1 to 20 do
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 2 0) (Bytes.create 4096)
        done;
        Scheduler.run sched;
        let s = Fabric.stats fabric in
        Alcotest.(check int) "sent" 20 s.Fabric.messages_sent;
        Alcotest.(check bool) "overload dropped" true
          (s.Fabric.drops_congested > 0);
        Alcotest.(check int) "the rest got through"
          (20 - s.Fabric.drops_congested)
          !delivered;
        Alcotest.(check bool) "queue hit its bound" true
          (Fabric.peak_link_queue_depth fabric >= 2));
  ]

let transport_tests =
  [
    Alcotest.test_case "offload rx never touches host cpu" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        let transport = Transport.offload fabric in
        let handled = ref false in
        transport.Transport.register (pid 1 0) (fun ~src:_ _ ->
            transport.Transport.charge_rx 1 (Time_ns.us 5.0);
            handled := true);
        transport.Transport.send ~src:(pid 0 0) ~dst:(pid 1 0)
          (Bytes.of_string "msg");
        Scheduler.run sched;
        Alcotest.(check bool) "handled" true !handled;
        let cpu = transport.Transport.host_cpu 1 in
        Alcotest.(check int) "no host cycles" 0 (Cpu.stolen_total cpu));
    Alcotest.test_case "kernel rx interrupts the host cpu" `Quick (fun () ->
        let sched, fabric = mk_fabric ~profile:Profile.myrinet_kernel () in
        let transport = Transport.kernel_interrupt fabric in
        let handled = ref false in
        transport.Transport.register (pid 1 0) (fun ~src:_ _ ->
            transport.Transport.charge_rx 1 (Time_ns.us 5.0);
            handled := true);
        transport.Transport.send ~src:(pid 0 0) ~dst:(pid 1 0)
          (Bytes.of_string "msg");
        Scheduler.run sched;
        Alcotest.(check bool) "handled" true !handled;
        let cpu = transport.Transport.host_cpu 1 in
        let expected =
          Time_ns.add Profile.myrinet_kernel.Profile.host_interrupt_cost
            (Time_ns.add (Profile.copy_time Profile.myrinet_kernel 3) (Time_ns.us 5.0))
        in
        Alcotest.(check int) "interrupt + copy + charged cycles stolen" expected
          (Cpu.stolen_total cpu));
    Alcotest.test_case "kernel rx perturbs an in-flight compute" `Quick (fun () ->
        let sched, fabric = mk_fabric ~profile:Profile.myrinet_kernel () in
        let transport = Transport.kernel_interrupt fabric in
        transport.Transport.register (pid 1 0) (fun ~src:_ _ -> ());
        let cpu = transport.Transport.host_cpu 1 in
        let finished = ref 0 in
        Scheduler.spawn sched (fun () ->
            Cpu.compute cpu (Time_ns.ms 1.0);
            finished := Scheduler.now sched);
        transport.Transport.send ~src:(pid 0 0) ~dst:(pid 1 0)
          (Bytes.of_string "interrupting");
        Scheduler.run sched;
        Alcotest.(check bool) "compute extended past 1ms" true
          (!finished > Time_ns.ms 1.0));
    Alcotest.test_case "offload vs kernel cost parameters" `Quick (fun () ->
        let _, fabric_mcp = mk_fabric () in
        let _, fabric_k = mk_fabric ~profile:Profile.myrinet_kernel () in
        let off = Transport.offload fabric_mcp in
        let ker = Transport.kernel_interrupt fabric_k in
        Alcotest.(check bool) "kernel rx fixed cost higher" true
          (ker.Transport.rx_fixed_cost > off.Transport.rx_fixed_cost);
        Alcotest.(check bool) "kernel data path slower" true
          (ker.Transport.data_in_time 100_000 > off.Transport.data_in_time 100_000));
    Alcotest.test_case "small message cannot overtake a large one" `Quick
      (fun () ->
        (* The landing stage (DMA/copy) must serialise per node: a tiny
           message arriving right behind a large one stays behind it. *)
        let check kind profile =
          let sched, fabric = mk_fabric ~profile () in
          let transport =
            match kind with
            | `Offload -> Transport.offload fabric
            | `Kernel -> Transport.kernel_interrupt fabric
          in
          let order = ref [] in
          transport.Transport.register (pid 1 0) (fun ~src:_ payload ->
              order := Bytes.length payload :: !order);
          transport.Transport.send ~src:(pid 0 0) ~dst:(pid 1 0)
            (Bytes.create 100_000);
          transport.Transport.send ~src:(pid 0 0) ~dst:(pid 1 0)
            (Bytes.create 8);
          Scheduler.run sched;
          Alcotest.(check (list int)) "delivery order" [ 100_000; 8 ]
            (List.rev !order)
        in
        check `Offload Profile.myrinet_mcp;
        check `Kernel Profile.myrinet_kernel);
    Alcotest.test_case "offload delivery preserves payload bytes" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        let transport = Transport.offload fabric in
        let payload = Bytes.init 257 (fun i -> Char.chr (i mod 256)) in
        let got = ref Bytes.empty in
        transport.Transport.register (pid 2 1) (fun ~src:_ b -> got := b);
        transport.Transport.send ~src:(pid 0 0) ~dst:(pid 2 1) payload;
        Scheduler.run sched;
        Alcotest.(check bytes) "payload intact" payload !got);
  ]

let fault_model_tests =
  [
    Alcotest.test_case "bernoulli drops roughly its rate" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.set_fault_model fabric (Some (Fault.bernoulli ~seed:1 ~p:0.2 ()));
        let seen = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen);
        for _ = 1 to 500 do
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 8)
        done;
        Scheduler.run sched;
        let dropped = (Fabric.stats fabric).Fabric.drops_injected in
        Alcotest.(check int) "conservation" 500 (!seen + dropped);
        Alcotest.(check bool)
          (Printf.sprintf "dropped %d within [50, 150]" dropped)
          true
          (dropped >= 50 && dropped <= 150));
    Alcotest.test_case "bernoulli replays bit-exactly from its seed" `Quick
      (fun () ->
        let run () =
          let sched, fabric = mk_fabric () in
          Fabric.set_fault_model fabric
            (Some (Fault.bernoulli ~seed:7 ~p:0.3 ()));
          let survivors = ref [] in
          Fabric.register fabric (pid 1 0) (fun ~src:_ b ->
              survivors := Bytes.get b 0 :: !survivors);
          for i = 0 to 99 do
            Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0)
              (Bytes.make 4 (Char.chr i))
          done;
          Scheduler.run sched;
          List.rev !survivors
        in
        Alcotest.(check (list char)) "identical survivor set" (run ()) (run ()));
    Alcotest.test_case "gilbert produces burstier losses than bernoulli"
      `Quick (fun () ->
        (* Same long-run loss rate; the Gilbert chain must concentrate its
           drops into longer consecutive runs. *)
        let max_run fault =
          let sched, fabric = mk_fabric () in
          Fabric.set_fault_model fabric (Some fault);
          let n = 2000 in
          let arrived = Array.make n false in
          Fabric.register fabric (pid 1 0) (fun ~src:_ b ->
              arrived.(Bytes.get_uint16_le b 0) <- true);
          for i = 0 to n - 1 do
            let b = Bytes.create 8 in
            Bytes.set_uint16_le b 0 i;
            Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) b
          done;
          Scheduler.run sched;
          let best = ref 0 and cur = ref 0 in
          Array.iter
            (fun ok ->
              if ok then cur := 0
              else begin
                incr cur;
                best := max !best !cur
              end)
            arrived;
          !best
        in
        let bernoulli_run = max_run (Fault.bernoulli ~seed:3 ~p:0.1 ()) in
        let gilbert_run =
          (* p_enter/(p_enter+p_exit) = 0.0217/(0.0217+0.2) ~ 0.098 steady
             state in Bad, ~5-message mean bursts. *)
          max_run (Fault.gilbert ~seed:3 ~p_enter:0.0217 ~p_exit:0.2 ())
        in
        Alcotest.(check bool)
          (Printf.sprintf "gilbert %d > bernoulli %d" gilbert_run bernoulli_run)
          true
          (gilbert_run > bernoulli_run));
    Alcotest.test_case "duplicator delivers extra copies" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.set_fault_model fabric (Some (Fault.duplicator ~seed:2 ~p:0.5 ()));
        let seen = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen);
        for _ = 1 to 100 do
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 8)
        done;
        Scheduler.run sched;
        let dups = (Fabric.stats fabric).Fabric.dups_injected in
        Alcotest.(check bool) "some duplicated" true (dups > 0);
        Alcotest.(check int) "each duplicate adds one arrival" (100 + dups)
          !seen);
    Alcotest.test_case "link flap drops exactly during downtime" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        (* 100 us period, last 40 us down. *)
        Fabric.set_fault_model fabric
          (Some
             (Fault.link_flap ~period:(Time_ns.us 100.)
                ~downtime:(Time_ns.us 40.) ()));
        let seen = ref [] in
        Fabric.register fabric (pid 1 0) (fun ~src:_ b ->
            seen := Bytes.get b 0 :: !seen);
        (* One tiny message every 25 us: phases 0, 25, 50 are up;
           75 is down; repeating. *)
        for i = 0 to 7 do
          Scheduler.after sched
            (Time_ns.us (25. *. float_of_int i))
            (fun () ->
              Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0)
                (Bytes.make 1 (Char.chr i)))
        done;
        Scheduler.run sched;
        Alcotest.(check (list int))
          "only the down-phase sends are lost"
          [ 0; 1; 2; 4; 5; 6 ]
          (List.rev_map Char.code !seen));
    Alcotest.test_case "flap validates downtime <= period" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Fault.link_flap: downtime must lie within the period")
          (fun () ->
            ignore
              (Fault.link_flap ~period:(Time_ns.us 10.)
                 ~downtime:(Time_ns.us 20.) ())));
    Alcotest.test_case "compose: any drop wins over duplicate" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.set_fault_model fabric
          (Some
             (Fault.compose
                [ Fault.duplicator ~seed:4 ~p:1.0 (); Fault.bernoulli ~seed:5 ~p:1.0 () ]));
        let seen = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen);
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 8);
        Scheduler.run sched;
        Alcotest.(check int) "dropped, not duplicated" 0 !seen;
        Alcotest.(check int) "counted as drop" 1
          (Fabric.stats fabric).Fabric.drops_injected);
    Alcotest.test_case "injected drops are counted per (src, dst) pair"
      `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.set_fault_model fabric (Some (Fault.bernoulli ~seed:1 ~p:1.0 ()));
        for _ = 1 to 3 do
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 8)
        done;
        Fabric.send fabric ~src:(pid 2 0) ~dst:(pid 1 0) (Bytes.create 8);
        Scheduler.run sched;
        let snap = Metrics.snapshot (Scheduler.metrics sched) in
        let count ~src ~dst =
          match
            Metrics.Snapshot.find snap
              ~labels:[ ("src", src); ("dst", dst) ]
              "fabric.drops_injected"
          with
          | Some (Metrics.Snapshot.Counter n) -> n
          | _ -> Alcotest.fail "per-pair counter missing"
        in
        Alcotest.(check int) "pair 0:0 -> 1:0" 3 (count ~src:"0:0" ~dst:"1:0");
        Alcotest.(check int) "pair 2:0 -> 1:0" 1 (count ~src:"2:0" ~dst:"1:0");
        (* The legacy total is derived from the labelled counters. *)
        Alcotest.(check int) "derived total" 4
          (Fabric.stats fabric).Fabric.drops_injected);
  ]

let corruption_delay_tests =
  [
    Alcotest.test_case "corrupt mutates roughly its rate, never loses" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.set_fault_model fabric (Some (Fault.corrupt ~seed:1 ~p:0.2 ()));
        let clean = ref 0 and damaged = ref 0 in
        let original = Bytes.make 32 'a' in
        Fabric.register fabric (pid 1 0) (fun ~src:_ b ->
            if Bytes.equal b original then incr clean else incr damaged);
        for _ = 1 to 500 do
          Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0)
            (Bytes.copy original)
        done;
        Scheduler.run sched;
        Alcotest.(check int) "every frame still arrives" 500
          (!clean + !damaged);
        let injected = (Fabric.stats fabric).Fabric.corrupts_injected in
        Alcotest.(check bool)
          (Printf.sprintf "injected %d within [50, 150]" injected)
          true
          (injected >= 50 && injected <= 150);
        (* A truncation that keeps the whole frame is still counted as an
           injection, so damaged <= injected, and most injections show. *)
        Alcotest.(check bool) "damage observed" true (!damaged > 0);
        Alcotest.(check bool) "damaged <= injected" true
          (!damaged <= injected));
    Alcotest.test_case "mutate: flip wraps, truncate clamps, fresh buffer"
      `Quick (fun () ->
        let frame = Bytes.make 4 '\x00' in
        let flipped = Fault.mutate (Fault.Flip { bit = 32 }) frame in
        Alcotest.(check bool) "original untouched" true
          (Bytes.equal frame (Bytes.make 4 '\x00'));
        Alcotest.(check int) "bit 32 wraps to bit 0" 1
          (Bytes.get_uint8 flipped 0);
        let cut = Fault.mutate (Fault.Truncate { keep = 2 }) frame in
        Alcotest.(check int) "truncated" 2 (Bytes.length cut);
        let over = Fault.mutate (Fault.Truncate { keep = 9 }) frame in
        Alcotest.(check int) "overlong keep clamps" 4 (Bytes.length over));
    Alcotest.test_case "delay adds latency but keeps per-pair FIFO" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.set_fault_model fabric
          (Some
             (Fault.delay ~seed:3 ~mean:(Time_ns.us 30.)
                ~jitter:(Time_ns.us 30.) ()));
        let seen = ref [] in
        Fabric.register fabric (pid 1 0) (fun ~src:_ b ->
            seen := Bytes.get_uint8 b 0 :: !seen);
        for i = 0 to 49 do
          Scheduler.at sched
            (Time_ns.us (float_of_int i))
            (fun () ->
              Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0)
                (Bytes.make 1 (Char.chr i)))
        done;
        Scheduler.run sched;
        Alcotest.(check (list int)) "all arrive in send order"
          (List.init 50 Fun.id) (List.rev !seen);
        Alcotest.(check int) "every message counted delayed" 50
          (Fabric.stats fabric).Fabric.delays_injected);
    Alcotest.test_case "delay validates mean and jitter" `Quick (fun () ->
        Alcotest.check_raises "negative mean"
          (Invalid_argument "Fault.delay: mean must be >= 0") (fun () ->
            ignore (Fault.delay ~mean:(-5) ()));
        Alcotest.check_raises "jitter exceeds mean"
          (Invalid_argument
             "Fault.delay: jitter must not exceed the mean") (fun () ->
            ignore
              (Fault.delay ~mean:(Time_ns.us 10.) ~jitter:(Time_ns.us 20.) ())));
    Alcotest.test_case "compose: corrupt wins over delay, drop over both"
      `Quick (fun () ->
        let corrupt_always =
          Fault.custom (fun ~now:_ ~src:_ ~dst:_ ~len:_ ->
              Fault.Corrupt (Fault.Flip { bit = 0 }))
        in
        let delay_always =
          Fault.custom (fun ~now:_ ~src:_ ~dst:_ ~len:_ ->
              Fault.Delay { by = Time_ns.us 10.; reorder = false })
        in
        let pick models =
          Fault.decide (Fault.compose models) ~now:0 ~src:(pid 0 0)
            ~dst:(pid 1 0) ~len:8
        in
        (match pick [ delay_always; corrupt_always ] with
        | Fault.Corrupt _ -> ()
        | _ -> Alcotest.fail "corrupt should win over delay");
        match pick [ corrupt_always; Fault.bernoulli ~p:1.0 () ] with
        | Fault.Drop -> ()
        | _ -> Alcotest.fail "drop should win over corrupt");
    Alcotest.test_case "corrupting compose reports can_corrupt" `Quick
      (fun () ->
        Alcotest.(check bool) "corrupt alone" true
          (Fault.can_corrupt (Fault.corrupt ~p:0.5 ()));
        Alcotest.(check bool) "buried in a compose" true
          (Fault.can_corrupt
             (Fault.compose
                [ Fault.bernoulli ~p:0.1 (); Fault.corrupt ~p:0.5 () ]));
        Alcotest.(check bool) "loss-only compose" false
          (Fault.can_corrupt
             (Fault.compose
                [ Fault.bernoulli ~p:0.1 (); Fault.duplicator ~p:0.1 () ])));
  ]

let partition_tests =
  let cut ?(one_way = false) ?(heal_at = Some (Time_ns.us 100.)) () =
    Fault.partition_schedule
      [
        {
          Fault.group_a = [ 0; 1 ];
          group_b = [ 2; 3 ];
          one_way;
          cut_at = Time_ns.us 10.;
          heal_at;
        };
      ]
  in
  [
    Alcotest.test_case "cut severs cross-group traffic until the heal"
      `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.apply_partition_schedule fabric (cut ());
        let seen = ref [] in
        Fabric.register fabric (pid 2 0) (fun ~src:_ b ->
            seen := Bytes.get_uint8 b 0 :: !seen);
        List.iter
          (fun (t, tag) ->
            Scheduler.at sched (Time_ns.us t) (fun () ->
                Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 2 0)
                  (Bytes.make 1 (Char.chr tag))))
          [ (0., 0); (50., 1); (120., 2) ];
        Scheduler.run sched;
        Alcotest.(check (list int)) "mid-cut send lost" [ 0; 2 ]
          (List.rev !seen);
        Alcotest.(check int) "counted partitioned" 1
          (Fabric.stats fabric).Fabric.drops_partitioned);
    Alcotest.test_case "intra-group traffic rides through the cut" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.apply_partition_schedule fabric (cut ());
        let seen = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen);
        Scheduler.at sched (Time_ns.us 50.) (fun () ->
            Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 4));
        Scheduler.run sched;
        Alcotest.(check int) "delivered" 1 !seen);
    Alcotest.test_case "one-way cut severs only group_a -> group_b" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.apply_partition_schedule fabric (cut ~one_way:true ());
        let fwd = ref 0 and back = ref 0 in
        Fabric.register fabric (pid 2 0) (fun ~src:_ _ -> incr fwd);
        Fabric.register fabric (pid 0 0) (fun ~src:_ _ -> incr back);
        Scheduler.at sched (Time_ns.us 50.) (fun () ->
            Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 2 0) (Bytes.create 4);
            Fabric.send fabric ~src:(pid 2 0) ~dst:(pid 0 0) (Bytes.create 4));
        Scheduler.run sched;
        Alcotest.(check int) "a -> b severed" 0 !fwd;
        Alcotest.(check int) "b -> a delivered" 1 !back);
    Alcotest.test_case "partitioned_now tracks the window; has_partitions \
                        is static"
      `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Fabric.apply_partition_schedule fabric (cut ());
        Alcotest.(check bool) "schedule visible" true
          (Fabric.has_partitions fabric);
        Alcotest.(check bool) "before the cut" false
          (Fabric.partitioned_now fabric ~src:0 ~dst:2);
        Scheduler.at sched (Time_ns.us 50.) (fun () ->
            Alcotest.(check bool) "mid-cut" true
              (Fabric.partitioned_now fabric ~src:0 ~dst:2);
            Alcotest.(check bool) "intra-group never" false
              (Fabric.partitioned_now fabric ~src:0 ~dst:1));
        Scheduler.at sched (Time_ns.us 150.) (fun () ->
            Alcotest.(check bool) "healed" false
              (Fabric.partitioned_now fabric ~src:0 ~dst:2));
        Scheduler.run sched);
    Alcotest.test_case "schedule validation" `Quick (fun () ->
        let event =
          {
            Fault.group_a = [ 0 ];
            group_b = [ 1 ];
            one_way = false;
            cut_at = Time_ns.us 10.;
            heal_at = None;
          }
        in
        Alcotest.check_raises "empty group"
          (Invalid_argument "Fault.partition_schedule: both groups must be non-empty")
          (fun () ->
            ignore (Fault.partition_schedule [ { event with Fault.group_a = [] } ]));
        Alcotest.check_raises "overlapping groups"
          (Invalid_argument
             "Fault.partition_schedule: node 1 appears on both sides of the cut")
          (fun () ->
            ignore
              (Fault.partition_schedule
                 [ { event with Fault.group_a = [ 1 ] } ]));
        Alcotest.check_raises "heal not after cut"
          (Invalid_argument
             "Fault.partition_schedule: heal_at must be after cut_at")
          (fun () ->
            ignore
              (Fault.partition_schedule
                 [ { event with Fault.heal_at = Some (Time_ns.us 10.) } ])));
    Alcotest.test_case "fabric rejects out-of-range nids" `Quick (fun () ->
        let _, fabric = mk_fabric ~nodes:2 () in
        Alcotest.check_raises "nid 3 on a 2-node fabric"
          (Invalid_argument
             "Fabric.apply_partition_schedule: unknown nid 3")
          (fun () ->
            Fabric.apply_partition_schedule fabric
              (Fault.partition_schedule
                 [
                   {
                     Fault.group_a = [ 0 ];
                     group_b = [ 3 ];
                     one_way = false;
                     cut_at = 0;
                     heal_at = None;
                   };
                 ])));
  ]

let crash_tests =
  [
    Alcotest.test_case "crash fences delivery and deregisters procs" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        let seen = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen);
        Scheduler.at sched (Time_ns.us 10.) (fun () -> Fabric.crash fabric 1);
        Scheduler.at sched (Time_ns.us 20.) (fun () ->
            Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 8));
        Scheduler.run sched;
        Alcotest.(check int) "nothing delivered" 0 !seen;
        Alcotest.(check bool) "node down" false (Fabric.is_node_up fabric 1);
        Alcotest.(check bool) "proc deregistered" false
          (Fabric.is_registered fabric (pid 1 0));
        Alcotest.(check int) "counted as crash drop" 1
          (Fabric.stats fabric).Fabric.drops_crashed);
    Alcotest.test_case "in-flight traffic dies with the node" `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        let seen = ref 0 in
        Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen);
        (* The message is on the wire when the victim dies: sent at t=0,
           crash well before any profile's wire latency has elapsed. *)
        Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 64);
        Scheduler.at sched (Time_ns.ns 1) (fun () -> Fabric.crash fabric 1);
        Scheduler.run sched;
        Alcotest.(check int) "in-flight message lost" 0 !seen;
        Alcotest.(check int) "counted as crash drop" 1
          (Fabric.stats fabric).Fabric.drops_crashed);
    Alcotest.test_case "restart bumps the incarnation and reopens the node"
      `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        let seen = ref 0 in
        Alcotest.(check int) "first incarnation" 0 (Fabric.incarnation fabric 1);
        Fabric.apply_crash_schedule fabric
          (Fault.crash_schedule [ (1, Time_ns.us 10., Some (Time_ns.us 20.)) ]);
        (* A rebooted node must re-register its endpoints by hand. *)
        Scheduler.at sched (Time_ns.us 30.) (fun () ->
            Fabric.register fabric (pid 1 0) (fun ~src:_ _ -> incr seen));
        Scheduler.at sched (Time_ns.us 40.) (fun () ->
            Fabric.send fabric ~src:(pid 0 0) ~dst:(pid 1 0) (Bytes.create 8));
        Scheduler.run sched;
        Alcotest.(check bool) "node back up" true (Fabric.is_node_up fabric 1);
        Alcotest.(check int) "second incarnation" 1 (Fabric.incarnation fabric 1);
        Alcotest.(check int) "post-restart delivery works" 1 !seen);
    Alcotest.test_case "crash kills the node's resident fibers" `Quick
      (fun () ->
        let sched, fabric = mk_fabric () in
        let victim_done = ref false in
        let survivor_done = ref false in
        Scheduler.spawn sched ~name:"victim" ~domain:1 (fun () ->
            Scheduler.delay sched (Time_ns.us 100.);
            victim_done := true);
        Scheduler.spawn sched ~name:"survivor" ~domain:0 (fun () ->
            Scheduler.delay sched (Time_ns.us 100.);
            survivor_done := true);
        Scheduler.at sched (Time_ns.us 10.) (fun () -> Fabric.crash fabric 1);
        Scheduler.run sched;
        Alcotest.(check bool) "victim fiber killed" false !victim_done;
        Alcotest.(check bool) "survivor fiber unaffected" true !survivor_done);
    Alcotest.test_case "crash/restart state machine rejects bad transitions"
      `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        Scheduler.at sched Time_ns.zero (fun () ->
            let raises f =
              try
                f ();
                false
              with Invalid_argument _ -> true
            in
            Alcotest.(check bool) "restart while up" true
              (raises (fun () -> Fabric.restart fabric 1));
            Fabric.crash fabric 1;
            Alcotest.(check bool) "double crash" true
              (raises (fun () -> Fabric.crash fabric 1));
            Fabric.restart fabric 1);
        Scheduler.run sched);
    Alcotest.test_case "crash_schedule validates the script" `Quick (fun () ->
        let rejects events =
          try
            ignore (Fault.crash_schedule events);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "restart not after its crash" true
          (rejects [ (1, Time_ns.us 10., Some (Time_ns.us 10.)) ]);
        Alcotest.(check bool) "re-crash while still down" true
          (rejects
             [ (1, Time_ns.us 10., None); (1, Time_ns.us 20., Some (Time_ns.us 30.)) ]);
        Alcotest.(check bool) "valid script accepted" false
          (rejects
             [
               (1, Time_ns.us 10., Some (Time_ns.us 20.));
               (1, Time_ns.us 30., None);
               (2, Time_ns.us 5., Some (Time_ns.us 50.));
             ]));
    Alcotest.test_case "random_crash_schedule is deterministic and valid"
      `Quick (fun () ->
        let mk seed =
          Fault.random_crash_schedule ~seed ~nids:[ 0; 1; 2; 3 ] ~crashes:5
            ~horizon:(Time_ns.ms 10.) ()
        in
        Alcotest.(check int) "five events" 5 (List.length (mk 7));
        Alcotest.(check bool) "same seed replays" true (mk 7 = mk 7);
        List.iter
          (fun (e : Fault.crash_event) ->
            Alcotest.(check bool) "victim in range" true
              (e.Fault.victim >= 0 && e.Fault.victim < 4);
            match e.Fault.up_at with
            | None -> ()
            | Some up ->
              Alcotest.(check bool) "restart after crash" true
                (Time_ns.compare up e.Fault.down_at > 0))
          (mk 7));
    Alcotest.test_case "apply_crash_schedule fires kills, revives and hooks"
      `Quick (fun () ->
        let sched, fabric = mk_fabric () in
        let log = ref [] in
        Fabric.on_crash fabric (fun nid ->
            log := `Down (nid, Scheduler.now sched) :: !log);
        Fabric.on_restart fabric (fun nid ->
            log := `Up (nid, Scheduler.now sched) :: !log);
        Fabric.apply_crash_schedule fabric
          (Fault.crash_schedule [ (2, Time_ns.us 5., Some (Time_ns.us 9.)) ]);
        Scheduler.run sched;
        Alcotest.(check bool) "down then up, at schedule times" true
          (List.rev !log
          = [ `Down (2, Time_ns.us 5.); `Up (2, Time_ns.us 9.) ]);
        Alcotest.(check int) "incarnation bumped" 1 (Fabric.incarnation fabric 2));
  ]

(* --- shard map --------------------------------------------------------- *)

let shard_map_tests =
  let profile = Profile.myrinet_mcp in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"every node owned by exactly one shard, in contiguous blocks"
         ~count:200
         QCheck.(pair (int_range 1 64) (int_range 1 16))
         (fun (nodes, shards) ->
           let shards = min shards nodes in
           let owners =
             List.init nodes (Shard_map.node_owner ~nodes ~shards)
           in
           (* In range, uses every shard, non-decreasing (= contiguous
              blocks), and balanced to within one node. *)
           let counts = Array.make shards 0 in
           List.iter
             (fun o -> counts.(o) <- counts.(o) + 1)
             owners;
           List.for_all (fun o -> o >= 0 && o < shards) owners
           && Array.for_all (fun c -> c > 0) counts
           && List.sort compare owners = owners
           && Array.for_all
                (fun c -> abs (c - (nodes / shards)) <= 1)
                counts));
    Alcotest.test_case "torus stripes: cut links cross shards only" `Quick
      (fun () ->
        let topo = Topology.build (Topology.of_spec ~nodes:16 "torus2d") ~nodes:16 in
        let map = Shard_map.build topo ~profile ~shards:4 in
        Alcotest.(check int) "shards" 4 (Shard_map.shards map);
        (* Exactly one owner per node: shard node lists partition 0..15. *)
        let all =
          List.concat_map (Shard_map.nodes_of map) [ 0; 1; 2; 3 ]
        in
        Alcotest.(check (list int))
          "partition" (List.init 16 Fun.id) (List.sort compare all);
        let cuts = Shard_map.cut_links map topo in
        Alcotest.(check bool) "some cut links" true (cuts <> []);
        List.iter
          (fun id ->
            let l = Topology.link topo id in
            Alcotest.(check bool) "endpoints on different shards" true
              (Shard_map.owner map l.Topology.src_v
              <> Shard_map.owner map l.Topology.dst_v))
          cuts;
        (* Non-cut links stay inside one shard by definition; lookahead
           is the minimum cut-link latency — with uniform links, the
           profile wire latency. *)
        Alcotest.(check int)
          "lookahead = min cut-link latency" profile.Profile.wire_latency
          (Shard_map.lookahead map));
    Alcotest.test_case "full topology lookahead is the wire latency" `Quick
      (fun () ->
        let topo = Topology.build Topology.Full ~nodes:8 in
        let map = Shard_map.build topo ~profile ~shards:2 in
        Alcotest.(check int) "lookahead" profile.Profile.wire_latency
          (Shard_map.lookahead map);
        Alcotest.(check (list int)) "no shared links to cut" []
          (Shard_map.cut_links map topo));
    Alcotest.test_case "validation" `Quick (fun () ->
        let topo = Topology.build Topology.Full ~nodes:4 in
        Alcotest.(check bool) "more shards than nodes" true
          (match Shard_map.build topo ~profile ~shards:5 with
          | _ -> false
          | exception Invalid_argument _ -> true);
        Alcotest.(check bool) "zero shards" true
          (match Shard_map.build topo ~profile ~shards:0 with
          | _ -> false
          | exception Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "simnet"
    [
      ("proc_id", proc_id_tests);
      ("profile", profile_tests);
      ("link", link_tests);
      ("link_contention", link_contention_tests);
      ("topology", topology_tests);
      ("router", router_tests);
      ("fabric", fabric_tests);
      ("fabric_topology", fabric_topology_tests);
      ("fault_models", fault_model_tests);
      ("corruption_delay", corruption_delay_tests);
      ("partitions", partition_tests);
      ("crash", crash_tests);
      ("shard_map", shard_map_tests);
      ("transport", transport_tests);
    ]
