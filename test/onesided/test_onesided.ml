open Sim_engine

(* [n] PEs, each with regions of the given sizes allocated up front (the
   symmetric-heap discipline); [f os syms rank] runs per PE. Returns the
   per-PE endpoints for post-run inspection. *)
let with_pes ?(n = 2) ~regions f =
  let world = Runtime.create_world ~nodes:n () in
  let pes =
    Array.mapi
      (fun rank pid ->
        let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
        let os = Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank () in
        let syms = List.map (fun size -> Onesided.alloc os size) regions in
        (os, syms))
      world.Runtime.ranks
  in
  Array.iteri
    (fun rank (os, syms) ->
      Scheduler.spawn world.Runtime.sched ~name:(Printf.sprintf "pe%d" rank)
        (fun () -> f os syms rank))
    pes;
  Runtime.run world;
  pes

let sym1 = function [ s ] -> s | _ -> Alcotest.fail "expected one region"

let put_get_tests =
  [
    Alcotest.test_case "put lands in the remote region" `Quick (fun () ->
        let pes =
          with_pes ~regions:[ 64 ] (fun os syms rank ->
              if rank = 0 then begin
                Onesided.put os (sym1 syms) ~pe:1 ~offset:8
                  (Bytes.of_string "one-sided");
                Onesided.quiet os
              end)
        in
        let os1, syms = pes.(1) in
        Alcotest.(check string) "remote bytes" "one-sided"
          (Bytes.sub_string (Onesided.region_bytes os1 (sym1 syms)) 8 9));
    Alcotest.test_case "get reads remote memory" `Quick (fun () ->
        let fetched = ref "" in
        let world = Runtime.create_world ~nodes:2 () in
        let mk rank =
          let ni =
            Portals.Ni.create world.Runtime.transport
              ~id:world.Runtime.ranks.(rank) ()
          in
          Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank ()
        in
        let os0 = mk 0 and os1 = mk 1 in
        let _s0 = Onesided.alloc os0 32 in
        let s1 = Onesided.alloc os1 32 in
        Bytes.blit_string "remote-payload!" 0 (Onesided.region_bytes os1 s1) 0 15;
        Scheduler.spawn world.Runtime.sched (fun () ->
            fetched :=
              Bytes.to_string (Onesided.get os0 s1 ~pe:1 ~offset:7 ~len:8));
        Runtime.run world;
        Alcotest.(check string) "read across" "payload!" !fetched);
    Alcotest.test_case "quiet waits for every acknowledgment" `Quick (fun () ->
        let outstanding_before = ref (-1) in
        let outstanding_after = ref (-1) in
        ignore
          (with_pes ~regions:[ 4096 ] (fun os syms rank ->
               if rank = 0 then begin
                 for i = 0 to 9 do
                   Onesided.put os (sym1 syms) ~pe:1 ~offset:(i * 16)
                     (Bytes.make 16 (Char.chr (48 + i)))
                 done;
                 outstanding_before := Onesided.outstanding_puts os;
                 Onesided.quiet os;
                 outstanding_after := Onesided.outstanding_puts os
               end));
        Alcotest.(check bool) "some were in flight" true (!outstanding_before > 0);
        Alcotest.(check int) "none after quiet" 0 !outstanding_after);
    Alcotest.test_case "wait_until observes a remote flag write" `Quick
      (fun () ->
        (* The shmem producer/consumer idiom: PE0 puts data then sets
           PE1's flag; PE1 blocks on the flag, then reads the data. *)
        let seen = ref "" in
        ignore
          (with_pes ~regions:[ 1; 64 ] (fun os syms rank ->
               match syms with
               | [ flag; data ] ->
                 if rank = 0 then begin
                   Onesided.put os data ~pe:1 ~offset:0
                     (Bytes.of_string "flag-protected");
                   Onesided.quiet os;
                   Onesided.put os flag ~pe:1 ~offset:0
                     (Bytes.make 1 Onesided.barrier_value);
                   Onesided.quiet os
                 end
                 else begin
                   Onesided.wait_until os flag ~offset:0
                     ~value:Onesided.barrier_value;
                   seen := Bytes.sub_string (Onesided.region_bytes os data) 0 14
                 end
               | _ -> Alcotest.fail "two regions expected"));
        Alcotest.(check string) "consumer saw producer's data" "flag-protected"
          !seen);
    Alcotest.test_case "puts to distinct offsets do not clobber" `Quick
      (fun () ->
        let pes =
          with_pes ~n:3 ~regions:[ 300 ] (fun os syms rank ->
              if rank > 0 then begin
                Onesided.put os (sym1 syms) ~pe:0 ~offset:(rank * 100)
                  (Bytes.make 100 (Char.chr (48 + rank)));
                Onesided.quiet os
              end)
        in
        let os0, syms = pes.(0) in
        let region = Onesided.region_bytes os0 (sym1 syms) in
        Alcotest.(check char) "pe1's bytes" '1' (Bytes.get region 150);
        Alcotest.(check char) "pe2's bytes" '2' (Bytes.get region 250));
    Alcotest.test_case "bounds are enforced locally" `Quick (fun () ->
        ignore
          (with_pes ~regions:[ 8 ] (fun os syms rank ->
               if rank = 0 then begin
                 Alcotest.check_raises "put overrun"
                   (Invalid_argument "Onesided.put: outside the region")
                   (fun () ->
                     Onesided.put os (sym1 syms) ~pe:1 ~offset:4 (Bytes.create 8));
                 Alcotest.check_raises "get overrun"
                   (Invalid_argument "Onesided.get: outside the region")
                   (fun () ->
                     ignore (Onesided.get os (sym1 syms) ~pe:1 ~offset:0 ~len:9))
               end)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random puts then region matches mirror" ~count:25
         QCheck.(
           list_of_size
             Gen.(int_range 1 10)
             (pair (int_range 0 15) (int_range 1 16)))
         (fun writes ->
           let region_size = 256 in
           let mirror = Bytes.make region_size '\x00' in
           let pes =
             with_pes ~regions:[ region_size ] (fun os syms rank ->
                 if rank = 0 then begin
                   List.iteri
                     (fun i (slot, len) ->
                       let offset = slot * 16 in
                       let payload = Bytes.make len (Char.chr (33 + (i mod 90))) in
                       Bytes.blit payload 0 mirror offset len;
                       Onesided.put os (sym1 syms) ~pe:1 ~offset payload)
                     writes;
                   Onesided.quiet os
                 end)
           in
           let os1, syms = pes.(1) in
           Bytes.equal mirror (Onesided.region_bytes os1 (sym1 syms))));
  ]

(* Like [with_pes], but every PE gets an MPI-3-style window of [size]
   data bytes instead of raw regions. *)
let with_wins ?(n = 2) ~size f =
  let world = Runtime.create_world ~nodes:n () in
  let pes =
    Array.mapi
      (fun rank pid ->
        let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
        let os = Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank () in
        (os, Onesided.win_create os ~size))
      world.Runtime.ranks
  in
  Array.iteri
    (fun rank (_, w) ->
      Scheduler.spawn world.Runtime.sched ~name:(Printf.sprintf "pe%d" rank)
        (fun () -> f w rank))
    pes;
  Runtime.run world;
  pes

let word_of b = Bytes.get_int64_le b 0

let put_word w ~rank ~offset v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Onesided.Win.put w ~rank ~offset b

let get_word w ~rank ~offset =
  word_of (Onesided.Win.get w ~rank ~offset ~len:8)

let i64 = Alcotest.int64

let win_tests =
  [
    Alcotest.test_case "put/flush/get round-trip through a window" `Quick
      (fun () ->
        let seen = ref "" in
        let pes =
          with_wins ~size:64 (fun w rank ->
              if rank = 0 then begin
                Onesided.Win.put w ~rank:1 ~offset:8
                  (Bytes.of_string "windowed");
                Onesided.Win.flush w ~rank:1;
                (* flush means remotely complete: a get issued after it
                   must observe the put's bytes. *)
                seen :=
                  Bytes.to_string (Onesided.Win.get w ~rank:1 ~offset:8 ~len:8)
              end)
        in
        Alcotest.(check string) "get after flush sees the put" "windowed" !seen;
        let _, w1 = pes.(1) in
        Alcotest.(check string) "target data area" "windowed"
          (Bytes.sub_string (Onesided.Win.local_data w1) 8 8));
    Alcotest.test_case "exclusive lock serializes read-modify-write" `Quick
      (fun () ->
        (* Two ranks each do k unlocked-unsafe increments (get, then
           put) on rank 0's word, guarded by MPI_Win_lock(EXCLUSIVE).
           The network round-trip between the get and the put is a wide
           race window; only mutual exclusion preserves every update. *)
        let k = 5 in
        let pes =
          with_wins ~n:3 ~size:8 (fun w rank ->
              if rank > 0 then
                for _ = 1 to k do
                  Onesided.Win.lock w ~rank:0 Onesided.Exclusive;
                  let v = get_word w ~rank:0 ~offset:0 in
                  put_word w ~rank:0 ~offset:0 (Int64.add v 1L);
                  Onesided.Win.flush w ~rank:0;
                  Onesided.Win.unlock w ~rank:0
                done)
        in
        let _, w0 = pes.(0) in
        Alcotest.check i64 "no update lost"
          (Int64.of_int (2 * k))
          (word_of (Onesided.Win.local_data w0)));
    Alcotest.test_case "shared locks admit concurrent holders" `Quick
      (fun () ->
        (* Each contender raises a flag in rank 0's window while holding
           the shared lock, and only releases once it has seen the other
           contender's flag. This can only terminate if both hold the
           lock at the same time — exclusive semantics would deadlock. *)
        ignore
          (with_wins ~n:3 ~size:8 (fun w rank ->
               if rank > 0 then begin
                 let mine = rank - 1 and theirs = 2 - rank in
                 Onesided.Win.lock w ~rank:0 Onesided.Shared;
                 Onesided.Win.put w ~rank:0 ~offset:mine (Bytes.make 1 '\x01');
                 Onesided.Win.flush w ~rank:0;
                 let rec poll () =
                   let b =
                     Onesided.Win.get w ~rank:0 ~offset:theirs ~len:1
                   in
                   if Bytes.get b 0 <> '\x01' then poll ()
                 in
                 poll ();
                 Onesided.Win.unlock w ~rank:0
               end)));
    Alcotest.test_case "accumulate, fetch_and_add and cas on a window word"
      `Quick (fun () ->
        let old_fa = ref (-1L) in
        let cas_hit = ref (-1L) in
        let cas_miss = ref (-1L) in
        let final = ref (-1L) in
        ignore
          (with_wins ~size:16 (fun w rank ->
               if rank = 0 then begin
                 Onesided.Win.accumulate w ~rank:1 ~offset:8 5L;
                 Onesided.Win.accumulate w ~rank:1 ~offset:8 7L;
                 Onesided.Win.flush w ~rank:1;
                 old_fa := Onesided.Win.fetch_and_add w ~rank:1 ~offset:8 0L;
                 cas_hit :=
                   Onesided.Win.compare_and_swap w ~rank:1 ~offset:8
                     ~expected:12L ~desired:100L;
                 cas_miss :=
                   Onesided.Win.compare_and_swap w ~rank:1 ~offset:8
                     ~expected:12L ~desired:200L;
                 final := get_word w ~rank:1 ~offset:8
               end));
        Alcotest.check i64 "accumulates summed" 12L !old_fa;
        Alcotest.check i64 "cas hit fetched the expected value" 12L !cas_hit;
        Alcotest.check i64 "cas miss fetched the current value" 100L !cas_miss;
        Alcotest.check i64 "miss left the word alone" 100L !final);
    Alcotest.test_case "window bounds and alignment are enforced" `Quick
      (fun () ->
        ignore
          (with_wins ~size:16 (fun w rank ->
               if rank = 0 then begin
                 Alcotest.check_raises "put overrun"
                   (Invalid_argument "Onesided.Win.put: outside the window")
                   (fun () ->
                     Onesided.Win.put w ~rank:1 ~offset:12 (Bytes.create 8));
                 Alcotest.check_raises "get overrun"
                   (Invalid_argument "Onesided.Win.get: outside the window")
                   (fun () ->
                     ignore (Onesided.Win.get w ~rank:1 ~offset:0 ~len:17));
                 Alcotest.check_raises "misaligned accumulate"
                   (Invalid_argument
                      "Onesided.Win.accumulate: offset not 8-byte aligned")
                   (fun () -> Onesided.Win.accumulate w ~rank:1 ~offset:4 1L);
                 Alcotest.check_raises "fetch_and_add overrun"
                   (Invalid_argument
                      "Onesided.Win.fetch_and_add: outside the window")
                   (fun () ->
                     ignore (Onesided.Win.fetch_and_add w ~rank:1 ~offset:16 1L))
               end));
        (* Region-level atomics share the §4.8 bounds discipline. *)
        ignore
          (with_pes ~regions:[ 8 ] (fun os syms rank ->
               if rank = 0 then
                 Alcotest.check_raises "atomic straddling the region end"
                   (Invalid_argument "Onesided.atomic: outside the region")
                   (fun () ->
                     ignore
                       (Onesided.fetch_and_add os (sym1 syms) ~pe:1 ~offset:4
                          1L)))));
  ]

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else String.sub s i n = sub || go (i + 1)
  in
  go 0

let failure_tests =
  [
    Alcotest.test_case "eq allocation failure is a typed error" `Quick
      (fun () ->
        let world = Runtime.create_world ~nodes:2 () in
        let ni =
          Portals.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(0)
            ()
        in
        (match
           Onesided.create ni ~ranks:world.Runtime.ranks ~rank:0
             ~eq_capacity:0 ()
         with
        | Ok _ -> Alcotest.fail "zero-capacity queue accepted"
        | Error (Onesided.Eq_alloc_failed { capacity; cause; _ } as e) ->
          Alcotest.(check int) "capacity reported" 0 capacity;
          Alcotest.(check string) "cause" "PTL_INV_ARG"
            (Portals.Errors.to_string cause);
          Alcotest.(check bool) "pp_error says why" true
            (contains (Format.asprintf "%a" Onesided.pp_error e) "event queue")
        | Error e ->
          Alcotest.failf "wrong error: %a" Onesided.pp_error e);
        (* The _exn variant wraps the same error. *)
        match
          Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank:0
            ~eq_capacity:0 ()
        with
        | _ -> Alcotest.fail "create_exn did not raise"
        | exception Onesided.Error (Onesided.Eq_alloc_failed _) -> ());
    Alcotest.test_case "a crashed exclusive holder is fenced and recovered"
      `Quick (fun () ->
        (* Rank 1 takes the exclusive lock on rank 2's window and then
           its node crash-stops without unlocking. A survivor's lock
           attempt finds the stale holder tag, fences it (the dead set /
           incarnation check) and wins the lock instead of spinning
           forever — the §3 argument that incarnations make crashed
           processes recoverable without connection state. *)
        let world = Runtime.create_world ~nodes:3 () in
        Simnet.Fabric.apply_crash_schedule world.Runtime.fabric
          (Simnet.Fault.crash_schedule [ (1, Time_ns.us 100., None) ]);
        let pes =
          Array.mapi
            (fun rank pid ->
              let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
              let os =
                Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank ()
              in
              (os, Onesided.win_create os ~size:8))
            world.Runtime.ranks
        in
        let recovered = ref false in
        Array.iteri
          (fun rank (_, w) ->
            Scheduler.spawn world.Runtime.sched
              ~name:(Printf.sprintf "pe%d" rank)
              (fun () ->
                if rank = 1 then
                  (* Take the lock and die holding it. *)
                  Onesided.Win.lock w ~rank:2 Onesided.Exclusive
                else if rank = 0 then begin
                  Scheduler.delay world.Runtime.sched (Time_ns.us 300.);
                  Onesided.Win.lock w ~rank:2 Onesided.Exclusive;
                  put_word w ~rank:2 ~offset:0 77L;
                  Onesided.Win.flush w ~rank:2;
                  Onesided.Win.unlock w ~rank:2;
                  recovered := true
                end))
          pes;
        Runtime.run world;
        Alcotest.(check bool) "survivor acquired the stale lock" true
          !recovered;
        let _, w2 = pes.(2) in
        Alcotest.check i64 "and used it" 77L
          (word_of (Onesided.Win.local_data w2)));
    Alcotest.test_case "a shared waiter fences a crashed exclusive holder"
      `Quick (fun () ->
        (* Same crash as above, but the survivor asks for the lock in
           Shared mode. After the waiter withdraws its optimistic +1 the
           word's shared count is back to the pre-increment fetch, so
           that is what the fence CAS must expect — getting it wrong by
           one leaves a lone shared waiter spinning on the dead holder's
           tag forever. *)
        let world = Runtime.create_world ~nodes:3 () in
        Simnet.Fabric.apply_crash_schedule world.Runtime.fabric
          (Simnet.Fault.crash_schedule [ (1, Time_ns.us 100., None) ]);
        let pes =
          Array.mapi
            (fun rank pid ->
              let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
              let os =
                Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank ()
              in
              (os, Onesided.win_create os ~size:8))
            world.Runtime.ranks
        in
        let recovered = ref false in
        Array.iteri
          (fun rank (_, w) ->
            Scheduler.spawn world.Runtime.sched
              ~name:(Printf.sprintf "pe%d" rank)
              (fun () ->
                if rank = 1 then
                  Onesided.Win.lock w ~rank:2 Onesided.Exclusive
                else if rank = 0 then begin
                  Scheduler.delay world.Runtime.sched (Time_ns.us 300.);
                  Onesided.Win.lock w ~rank:2 Onesided.Shared;
                  ignore (Onesided.Win.get w ~rank:2 ~offset:0 ~len:8);
                  Onesided.Win.unlock w ~rank:2;
                  recovered := true
                end))
          pes;
        (* Time-bounded: a broken fence spins forever on the dead
           holder's tag, and the bound turns that into a check failure
           rather than a hung test. *)
        Runtime.run ~until:(Time_ns.s 1.) world;
        Alcotest.(check bool) "shared waiter recovered the stale lock" true
          !recovered);
    Alcotest.test_case "exclusive unlock survives a shared waiter's probe"
      `Quick (fun () ->
        (* A shared waiter's optimistic +1 is in flight across a full
           RTT, so an exclusive unlock that CASes against (tag,
           shared=0) can land on (tag, 1), fail silently and leave the
           word tagged by a live process forever. Hammering the two
           paths against each other makes that interleaving all but
           certain; the time-bounded run turns the resulting livelock
           into a clean assertion failure. *)
        let k = 8 in
        let done_ex = ref false and done_sh = ref false in
        let world = Runtime.create_world ~nodes:3 () in
        let pes =
          Array.mapi
            (fun rank pid ->
              let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
              let os =
                Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank ()
              in
              (os, Onesided.win_create os ~size:8))
            world.Runtime.ranks
        in
        Array.iteri
          (fun rank (_, w) ->
            Scheduler.spawn world.Runtime.sched
              ~name:(Printf.sprintf "pe%d" rank)
              (fun () ->
                if rank = 1 then begin
                  for _ = 1 to k do
                    Onesided.Win.lock w ~rank:0 Onesided.Exclusive;
                    Onesided.Win.unlock w ~rank:0
                  done;
                  done_ex := true
                end
                else if rank = 2 then begin
                  for _ = 1 to k do
                    Onesided.Win.lock w ~rank:0 Onesided.Shared;
                    Onesided.Win.unlock w ~rank:0
                  done;
                  done_sh := true
                end))
          pes;
        Runtime.run ~until:(Time_ns.s 5.) world;
        ignore pes;
        Alcotest.(check bool) "exclusive locker finished" true !done_ex;
        Alcotest.(check bool) "shared locker finished" true !done_sh);
    Alcotest.test_case "a wait_until nobody satisfies names its fiber" `Quick
      (fun () ->
        (* The raw-Portals wait path must surface as a deadlock report
           carrying the blocked fiber, not as a hang. *)
        match
          with_pes ~regions:[ 1 ] (fun os syms rank ->
              if rank = 0 then
                Onesided.wait_until os (sym1 syms) ~offset:0
                  ~value:Onesided.barrier_value)
        with
        | _ -> Alcotest.fail "expected a deadlock"
        | exception Scheduler.Deadlock entries ->
          Alcotest.(check bool) "report names pe0" true
            (List.exists (fun e -> contains e "pe0") entries));
  ]

(* Linearizability of the target-side atomics under Bernoulli wire loss:
   with the reliability shim attached, every fetch-add executes exactly
   once, so n ranks doing k increments of 1 must observe a permutation
   of 0..n*k-1 as fetched values, the counter must end at n*k, and n
   contenders CAS-claiming 8 slots must win each slot exactly once.
   The same seed must reproduce the same history bit-for-bit. *)
let lossy_atomics_run ~seed ~n ~k =
  Runtime.set_run_env ~loss:0.08 ~seed ();
  let traces = Array.make n [] in
  let wins = Array.make n 0 in
  let pes =
    with_pes ~n ~regions:[ 8; 64 ] (fun os syms rank ->
        match syms with
        | [ counter; slots ] ->
          for _ = 1 to k do
            let old = Onesided.fetch_and_add os counter ~pe:0 ~offset:0 1L in
            traces.(rank) <- old :: traces.(rank)
          done;
          for s = 0 to 7 do
            let old =
              Onesided.compare_and_swap os slots ~pe:0 ~offset:(s * 8)
                ~expected:0L
                ~desired:(Int64.of_int (rank + 1))
            in
            if Int64.equal old 0L then wins.(rank) <- wins.(rank) + 1
          done
        | _ -> Alcotest.fail "two regions expected")
  in
  let os0, syms = pes.(0) in
  let counter, slots =
    match syms with [ c; s ] -> (c, s) | _ -> Alcotest.fail "two regions"
  in
  let final = word_of (Onesided.region_bytes os0 counter) in
  let slot_bytes = Onesided.region_bytes os0 slots in
  let owners = List.init 8 (fun s -> Bytes.get_int64_le slot_bytes (s * 8)) in
  (final, Array.to_list (Array.map List.rev traces), Array.to_list wins, owners)

let lossy_linearizability =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"atomics linearize under loss, deterministically"
       ~count:4
       QCheck.(int_range 0 999)
       (fun seed ->
         Fun.protect
           ~finally:(fun () -> Runtime.set_run_env ~loss:0. ~seed:0 ())
           (fun () ->
             let n = 3 and k = 6 in
             let final, traces, wins, owners = lossy_atomics_run ~seed ~n ~k in
             let fetched = List.sort compare (List.concat traces) in
             let expect = List.init (n * k) Int64.of_int in
             if final <> Int64.of_int (n * k) then
               QCheck.Test.fail_reportf "counter %Ld, expected %d" final (n * k);
             if fetched <> expect then
               QCheck.Test.fail_reportf
                 "fetched values are not a permutation of 0..%d" ((n * k) - 1);
             if List.fold_left ( + ) 0 wins <> 8 then
               QCheck.Test.fail_reportf "claimed %d slots, expected 8"
                 (List.fold_left ( + ) 0 wins);
             List.iter
               (fun o ->
                 if o < 1L || o > Int64.of_int n then
                   QCheck.Test.fail_reportf "slot owner %Ld out of range" o)
               owners;
             (* Same seed, same machine: the whole history replays. *)
             let final', traces', wins', owners' =
               lossy_atomics_run ~seed ~n ~k
             in
             (final, traces, wins, owners) = (final', traces', wins', owners'))))

let () =
  Alcotest.run "onesided"
    [
      ("put_get", put_get_tests);
      ("windows", win_tests);
      ("failures", failure_tests);
      ("linearizability", [ lossy_linearizability ]);
    ]
