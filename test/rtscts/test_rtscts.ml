open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

let setup ?config ?(profile = Simnet.Profile.myrinet_kernel) () =
  let sched = Scheduler.create () in
  let fabric = Simnet.Fabric.create sched ~profile ~nodes:4 in
  let m = Rtscts.create ?config fabric in
  (sched, fabric, m, Rtscts.transport m)

let frame_tests =
  [
    Alcotest.test_case "frame round trip" `Quick (fun () ->
        let f =
          {
            Rtscts.Frame.kind = Rtscts.Frame.Data;
            msg_id = 42;
            total_len = 100_000;
            offset = 8192;
            payload = Bytes.of_string "chunk-bytes";
          }
        in
        (match Rtscts.Frame.decode (Rtscts.Frame.encode f) with
        | Ok d ->
          Alcotest.(check string) "kind" "DATA" (Rtscts.Frame.kind_to_string d.Rtscts.Frame.kind);
          Alcotest.(check int) "msg_id" 42 d.Rtscts.Frame.msg_id;
          Alcotest.(check int) "total" 100_000 d.Rtscts.Frame.total_len;
          Alcotest.(check int) "offset" 8192 d.Rtscts.Frame.offset;
          Alcotest.(check bytes) "payload" f.Rtscts.Frame.payload d.Rtscts.Frame.payload
        | Error e -> Alcotest.fail e));
    Alcotest.test_case "decode rejects garbage" `Quick (fun () ->
        Alcotest.(check bool) "short" true
          (Result.is_error (Rtscts.Frame.decode (Bytes.create 3)));
        let b = Bytes.make 40 '\x00' in
        Alcotest.(check bool) "bad magic" true (Result.is_error (Rtscts.Frame.decode b)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frame encode/decode identity" ~count:300
         QCheck.(quad (int_range 0 3) (int_range 0 10_000)
                   (int_range 0 (1 lsl 20))
                   (string_of_size Gen.(int_range 0 200)))
         (fun (k, id, off, s) ->
           let kind =
             match k with 0 -> Rtscts.Frame.Eager | 1 -> Rtscts.Frame.Rts | 2 -> Rtscts.Frame.Cts | _ -> Rtscts.Frame.Data
           in
           let f =
             { Rtscts.Frame.kind; msg_id = id; total_len = off + String.length s;
               offset = off; payload = Bytes.of_string s }
           in
           match Rtscts.Frame.decode (Rtscts.Frame.encode f) with
           | Ok d -> d = f
           | Error _ -> false));
  ]

let delivery_tests =
  [
    Alcotest.test_case "small message goes eager" `Quick (fun () ->
        let sched, _, m, tp = setup () in
        let got = ref None in
        tp.Simnet.Transport.register (proc 1 0) (fun ~src payload ->
            got := Some (src, Bytes.to_string payload));
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.of_string "tiny");
        Scheduler.run sched;
        Alcotest.(check (option (pair string string))) "delivered"
          (Some ("0:0", "tiny"))
          (Option.map (fun (s, p) -> (Simnet.Proc_id.to_string s, p)) !got);
        let st = Rtscts.stats m in
        Alcotest.(check int) "eager" 1 st.Rtscts.eager_messages;
        Alcotest.(check int) "no handshake" 0 st.Rtscts.rts_sent);
    Alcotest.test_case "large message uses RTS/CTS and reassembles" `Quick
      (fun () ->
        let sched, _, m, tp = setup () in
        let payload = Bytes.init 50_000 (fun i -> Char.chr (i mod 251)) in
        let got = ref None in
        tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ p -> got := Some p);
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0) payload;
        Scheduler.run sched;
        (match !got with
        | Some p -> Alcotest.(check bool) "bytes identical" true (Bytes.equal p payload)
        | None -> Alcotest.fail "not delivered");
        let st = Rtscts.stats m in
        Alcotest.(check int) "one rendezvous" 1 st.Rtscts.rendezvous_messages;
        Alcotest.(check int) "one rts" 1 st.Rtscts.rts_sent;
        Alcotest.(check int) "one cts" 1 st.Rtscts.cts_sent;
        let expected_packets =
          (50_000 + Rtscts.chunk_payload m - 1) / Rtscts.chunk_payload m
        in
        Alcotest.(check int) "packet count" expected_packets st.Rtscts.data_packets);
    Alcotest.test_case "mixed sizes stay ordered per pair" `Quick (fun () ->
        let sched, _, _, tp = setup () in
        let got = ref [] in
        tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ p ->
            got := Bytes.length p :: !got);
        let send len =
          tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0) (Bytes.create len)
        in
        (* eager, big, eager, big, eager: the handshake of each big one
           must stall the rest. *)
        send 10;
        send 40_000;
        send 20;
        send 60_000;
        send 30;
        Scheduler.run sched;
        Alcotest.(check (list int)) "arrival order"
          [ 10; 40_000; 20; 60_000; 30 ]
          (List.rev !got));
    Alcotest.test_case "concurrent pairs do not interfere" `Quick (fun () ->
        let sched, _, _, tp = setup () in
        let got1 = ref [] and got2 = ref [] in
        tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.register (proc 3 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ p ->
            got1 := Bytes.length p :: !got1);
        tp.Simnet.Transport.register (proc 2 0) (fun ~src:_ p ->
            got2 := Bytes.length p :: !got2);
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0) (Bytes.create 30_000);
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 2 0) (Bytes.create 100);
        tp.Simnet.Transport.send ~src:(proc 3 0) ~dst:(proc 1 0) (Bytes.create 200);
        Scheduler.run sched;
        Alcotest.(check (list int)) "pair (0,1) and (3,1)" [ 200; 30_000 ]
          (List.sort compare !got1);
        Alcotest.(check (list int)) "pair (0,2)" [ 100 ] !got2);
    Alcotest.test_case "receive path charges the host cpu" `Quick (fun () ->
        let sched, fabric, _, tp = setup () in
        tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 50_000);
        Scheduler.run sched;
        let cpu = Simnet.Node.host_cpu (Simnet.Fabric.node fabric 1) in
        Alcotest.(check bool) "stolen cycles" true (Cpu.stolen_total cpu > 0));
    Alcotest.test_case "per-packet interrupts are an ablation knob" `Quick
      (fun () ->
        let run per_packet =
          let sched, fabric, _, tp =
            setup
              ~config:{ Rtscts.eager_threshold = 4096; per_packet_interrupt = per_packet }
              ()
          in
          tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
          tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ _ -> ());
          tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0)
            (Bytes.create 200_000);
          Scheduler.run sched;
          Cpu.stolen_total (Simnet.Node.host_cpu (Simnet.Fabric.node fabric 1))
        in
        Alcotest.(check bool) "coalescing steals less" true (run false < run true));
    Alcotest.test_case "pipelining beats serial copy+wire" `Quick (fun () ->
        (* Completion must be far closer to len/min(bw) than to
           len/copy_bw + len/wire_bw + len/copy_bw. *)
        let sched, _, _, tp = setup () in
        let len = 1_000_000 in
        let done_at = ref 0 in
        tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ _ ->
            done_at := Scheduler.now sched);
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0) (Bytes.create len);
        Scheduler.run sched;
        let profile = Simnet.Profile.myrinet_kernel in
        let wire = Simnet.Profile.tx_time profile len in
        let copy = Simnet.Profile.copy_time profile len in
        let serial = copy + wire + copy in
        let bottleneck = max wire copy in
        Alcotest.(check bool) "finished" true (!done_at > 0);
        Alcotest.(check bool) "overlapped"
          true
          (* generous 1.5x slack over the single bottleneck stage, but
             clearly below the fully serial sum *)
          (!done_at < bottleneck * 3 / 2 && !done_at < serial));
  ]

let void_sender_tests =
  [
    Alcotest.test_case "rendezvous to an unregistered peer fails the sender"
      `Quick (fun () ->
        let sched, _, m, tp = setup () in
        let errors = ref [] in
        Rtscts.on_send_error m (fun ~src ~dst ~len ->
            errors := (src, dst, len) :: !errors);
        tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
        (* proc 1 0 never registers: its RTS would vanish. *)
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 50_000);
        Scheduler.run sched;
        let st = Rtscts.stats m in
        Alcotest.(check int) "counted" 1 st.Rtscts.failed_handshakes;
        Alcotest.(check int) "no rts wasted" 0 st.Rtscts.rts_sent;
        (match !errors with
        | [ (src, dst, len) ] ->
          Alcotest.(check string) "src" "0:0" (Simnet.Proc_id.to_string src);
          Alcotest.(check string) "dst" "1:0" (Simnet.Proc_id.to_string dst);
          Alcotest.(check int) "len" 50_000 len
        | l ->
          Alcotest.fail
            (Printf.sprintf "expected one error callback, got %d"
               (List.length l))));
    Alcotest.test_case "unregistered sender cannot receive the CTS" `Quick
      (fun () ->
        let sched, _, m, tp = setup () in
        (* The destination is live but the sender is not: the CTS would be
           answered into the void, so the send must fail immediately. *)
        tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ _ ->
            Alcotest.fail "nothing can complete");
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 50_000);
        Scheduler.run sched;
        Alcotest.(check int) "counted" 1
          (Rtscts.stats m).Rtscts.failed_handshakes);
    Alcotest.test_case "a failed handshake does not stall the pipeline" `Quick
      (fun () ->
        let sched, fabric, m, tp = setup () in
        let got = ref [] in
        tp.Simnet.Transport.register (proc 0 0) (fun ~src:_ _ -> ());
        tp.Simnet.Transport.register (proc 1 0) (fun ~src:_ p ->
            got := Bytes.length p :: !got);
        (* Big transfer to a dead peer, then traffic to a live one on the
           same source: before the fix the first send parked forever in
           awaiting_cts and leaked its payload. *)
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 2 0)
          (Bytes.create 40_000);
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 60_000);
        tp.Simnet.Transport.send ~src:(proc 0 0) ~dst:(proc 1 0)
          (Bytes.create 16);
        Scheduler.run sched;
        Alcotest.(check (list int)) "live traffic unaffected" [ 60_000; 16 ]
          (List.rev !got);
        Alcotest.(check int) "one failure" 1
          (Rtscts.stats m).Rtscts.failed_handshakes;
        ignore fabric);
  ]

let portals_over_rtscts_tests =
  [
    Alcotest.test_case "portals put runs unchanged over the kernel path" `Quick
      (fun () ->
        let sched, _, _, tp = setup () in
        let ni0 = Portals.Ni.create tp ~id:(proc 0 0) () in
        let ni1 = Portals.Ni.create tp ~id:(proc 1 0) () in
        let target_buf = Bytes.make 65536 '.' in
        let eqh =
          match Portals.Ni.eq_alloc ni1 ~capacity:8 with
          | Ok h -> h
          | Error _ -> Alcotest.fail "eq"
        in
        let meh =
          match
            Portals.Ni.me_attach ni1 ~portal_index:0 ~match_id:Portals.Match_id.any
              ~match_bits:Portals.Match_bits.zero
              ~ignore_bits:Portals.Match_bits.all_ones ()
          with
          | Ok h -> h
          | Error _ -> Alcotest.fail "me"
        in
        (match
           Portals.Ni.md_attach ni1 ~me:meh
             (Portals.Ni.md_spec ~eq:eqh target_buf)
         with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "md");
        let payload = Bytes.init 50_000 (fun i -> Char.chr (i mod 253)) in
        let imd =
          match Portals.Ni.md_bind ni0 (Portals.Ni.md_spec payload) with
          | Ok h -> h
          | Error _ -> Alcotest.fail "bind"
        in
        (match
           Portals.Ni.put ni0 ~md:imd ~ack:false
             (Portals.Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ())
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "put");
        Scheduler.run sched;
        Alcotest.(check bool) "payload landed via kernel path" true
          (Bytes.equal payload (Bytes.sub target_buf 0 50_000));
        match Portals.Ni.eq ni1 eqh with
        | Ok q ->
          (match Portals.Event.Queue.get q with
          | Some ev -> Alcotest.(check int) "mlength" 50_000 ev.Portals.Event.mlength
          | None -> Alcotest.fail "no PUT event")
        | Error _ -> Alcotest.fail "eq resolve");
  ]

let () =
  Alcotest.run "rtscts"
    [
      ("frame", frame_tests);
      ("delivery", delivery_tests);
      ("void_sender", void_sender_tests);
      ("portals_over_rtscts", portals_over_rtscts_tests);
    ]
