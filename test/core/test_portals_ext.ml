(* Tests for the API extensions: gather/scatter (iovec) memory
   descriptors — the efficiency extension §7 of the paper plans — and
   PtlMDUpdate, the conditional atomic descriptor swap. *)

open Portals
open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

let ok ~what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Errors.to_string e)

type env = {
  sched : Scheduler.t;
  ni0 : Ni.t;
  ni1 : Ni.t;
}

let setup () =
  let sched = Scheduler.create () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
  in
  let tp = Simnet.Transport.offload fabric in
  let ni0 = Ni.create tp ~id:(proc 0 0) () in
  let ni1 = Ni.create tp ~id:(proc 1 0) () in
  { sched; ni0; ni1 }

let catch_all ?(options = Md.default_options) ?spec env =
  let eqh = ok ~what:"eq" (Ni.eq_alloc env.ni1 ~capacity:32) in
  let meh =
    ok ~what:"me"
      (Ni.me_attach env.ni1 ~portal_index:0 ~match_id:Match_id.any
         ~match_bits:Match_bits.zero ~ignore_bits:Match_bits.all_ones ())
  in
  let spec =
    match spec with
    | Some f -> f eqh
    | None -> Ni.md_spec ~options ~eq:eqh (Bytes.create 256)
  in
  let mdh = ok ~what:"md" (Ni.md_attach env.ni1 ~me:meh spec) in
  (eqh, meh, mdh)

let put env ?(md_payload = Bytes.of_string "payload") ?spec () =
  let spec =
    match spec with
    | Some s -> s
    | None ->
      Ni.md_spec
        ~options:{ Md.default_options with Md.ack_disable = true }
        ~threshold:(Md.Count 1) ~unlink:Md.Unlink md_payload
  in
  let mdh = ok ~what:"bind" (Ni.md_bind env.ni0 spec) in
  ok ~what:"put"
    (Ni.put env.ni0 ~md:mdh ~ack:false
       (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()))

let md_unit_tests =
  [
    Alcotest.test_case "iovec validation" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Md.create_iovec: empty vector")
          (fun () -> ignore (Md.create_iovec []));
        Alcotest.check_raises "out of range"
          (Invalid_argument "Md.create_iovec: segment outside its buffer")
          (fun () -> ignore (Md.create_iovec [ (Bytes.create 4, 2, 4) ])));
    Alcotest.test_case "length is the sum of segments" `Quick (fun () ->
        let md =
          Md.create_iovec
            [ (Bytes.create 10, 0, 10); (Bytes.create 20, 5, 7); (Bytes.create 3, 0, 3) ]
        in
        Alcotest.(check int) "total" 20 (Md.length md);
        Alcotest.(check int) "segments" 3 (Md.segment_count md));
    Alcotest.test_case "write scatters across segment boundaries" `Quick
      (fun () ->
        let a = Bytes.make 4 '.' and b = Bytes.make 8 '.' and c = Bytes.make 4 '.' in
        (* Logical region: a[0..4) ++ b[2..6) ++ c[0..4) = 12 bytes. *)
        let md = Md.create_iovec [ (a, 0, 4); (b, 2, 4); (c, 0, 4) ] in
        Md.write md ~offset:2 ~src:(Bytes.of_string "01234567") ~src_off:0 ~len:8;
        Alcotest.(check string) "a" "..01" (Bytes.to_string a);
        Alcotest.(check string) "b" "..2345.." (Bytes.to_string b);
        Alcotest.(check string) "c" "67.." (Bytes.to_string c));
    Alcotest.test_case "read gathers across segment boundaries" `Quick
      (fun () ->
        let md =
          Md.create_iovec
            [
              (Bytes.of_string "AAAA", 0, 4);
              (Bytes.of_string "xxBBBByy", 2, 4);
              (Bytes.of_string "CCCC", 0, 4);
            ]
        in
        Alcotest.(check string) "whole" "AAAABBBBCCCC"
          (Bytes.to_string (Md.read md ~offset:0 ~len:12));
        Alcotest.(check string) "middle" "ABBBBC"
          (Bytes.to_string (Md.read md ~offset:3 ~len:6)));
    Alcotest.test_case "buffer accessor rejects iovec descriptors" `Quick
      (fun () ->
        let md = Md.create_iovec [ (Bytes.create 4, 0, 4); (Bytes.create 4, 0, 4) ] in
        Alcotest.check_raises "buffer"
          (Invalid_argument "Md.buffer: gather/scatter descriptor (use read)")
          (fun () -> ignore (Md.buffer md)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"iovec read/write equals flat equivalent"
         ~count:300
         QCheck.(
           pair
             (list_of_size Gen.(int_range 1 5) (int_range 1 16))
             (pair small_nat small_nat))
         (fun (seg_lens, (off_seed, len_seed)) ->
           let total = List.fold_left ( + ) 0 seg_lens in
           let offset = off_seed mod total in
           let len = len_seed mod (total - offset + 1) in
           let segments = List.map (fun l -> (Bytes.make l '.', 0, l)) seg_lens in
           let iov_md = Md.create_iovec segments in
           let flat = Bytes.make total '.' in
           let flat_md = Md.create flat in
           let payload =
             Bytes.init len (fun i -> Char.chr (33 + ((i * 7) mod 90)))
           in
           Md.write iov_md ~offset ~src:payload ~src_off:0 ~len;
           Md.write flat_md ~offset ~src:payload ~src_off:0 ~len;
           Bytes.equal
             (Md.read iov_md ~offset:0 ~len:total)
             (Md.read flat_md ~offset:0 ~len:total)));
  ]

let iovec_e2e_tests =
  [
    Alcotest.test_case "incoming put scatters into three buffers" `Quick
      (fun () ->
        let env = setup () in
        let head = Bytes.make 4 '.' and body = Bytes.make 8 '.' and tail = Bytes.make 4 '.' in
        let _ =
          catch_all env
            ~spec:(fun eqh ->
              Ni.md_spec_iovec ~eq:eqh
                [ (head, 0, 4); (body, 0, 8); (tail, 0, 4) ])
        in
        put env ~md_payload:(Bytes.of_string "HDRbodybodyTLR!!") ();
        Scheduler.run env.sched;
        Alcotest.(check string) "head" "HDRb" (Bytes.to_string head);
        Alcotest.(check string) "body" "odybodyT" (Bytes.to_string body);
        Alcotest.(check string) "tail" "LR!!" (Bytes.to_string tail));
    Alcotest.test_case "outgoing put gathers from segments" `Quick (fun () ->
        let env = setup () in
        let sink = Bytes.make 32 '.' in
        let teq, _, _ =
          (let eqh = ok ~what:"eq" (Ni.eq_alloc env.ni1 ~capacity:8) in
           let meh =
             ok ~what:"me"
               (Ni.me_attach env.ni1 ~portal_index:0 ~match_id:Match_id.any
                  ~match_bits:Match_bits.zero ~ignore_bits:Match_bits.all_ones ())
           in
           let mdh =
             ok ~what:"md" (Ni.md_attach env.ni1 ~me:meh (Ni.md_spec ~eq:eqh sink))
           in
           (eqh, meh, mdh))
        in
        let spec =
          Ni.md_spec_iovec
            ~options:{ Md.default_options with Md.ack_disable = true }
            ~threshold:(Md.Count 1) ~unlink:Md.Unlink
            [
              (Bytes.of_string "scatter", 0, 7);
              (Bytes.of_string "**gather**", 2, 6);
            ]
        in
        put env ~spec ();
        Scheduler.run env.sched;
        Alcotest.(check string) "concatenated on the wire" "scattergather"
          (Bytes.sub_string sink 0 13);
        let q = ok ~what:"eq" (Ni.eq env.ni1 teq) in
        match Event.Queue.get q with
        | Some ev -> Alcotest.(check int) "mlength" 13 ev.Event.mlength
        | None -> Alcotest.fail "no event");
    Alcotest.test_case "get gathers the reply from segments" `Quick (fun () ->
        let env = setup () in
        (* Target exposes a two-piece region. *)
        let _ =
          catch_all env
            ~spec:(fun eqh ->
              Ni.md_spec_iovec ~eq:eqh
                [ (Bytes.of_string "first|", 0, 6); (Bytes.of_string "second", 0, 6) ])
        in
        let dest = Bytes.make 12 '.' in
        let ieqh = ok ~what:"eq" (Ni.eq_alloc env.ni0 ~capacity:8) in
        let mdh =
          ok ~what:"bind"
            (Ni.md_bind env.ni0
               (Ni.md_spec ~threshold:(Md.Count 1) ~unlink:Md.Unlink ~eq:ieqh dest))
        in
        ok ~what:"get"
          (Ni.get env.ni0 ~md:mdh
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check string) "gathered" "first|second" (Bytes.to_string dest));
  ]

let md_update_tests =
  [
    Alcotest.test_case "update succeeds while the test queue is empty" `Quick
      (fun () ->
        let env = setup () in
        let old_buf = Bytes.make 16 'o' and new_buf = Bytes.make 16 '.' in
        let eqh, _, mdh =
          catch_all env ~spec:(fun eqh -> Ni.md_spec ~eq:eqh old_buf)
        in
        let swapped =
          ok ~what:"md_update"
            (Ni.md_update env.ni1 mdh (Ni.md_spec ~eq:eqh new_buf) ~test_eq:eqh)
        in
        Alcotest.(check bool) "swapped" true swapped;
        put env ~md_payload:(Bytes.of_string "landed") ();
        Scheduler.run env.sched;
        Alcotest.(check string) "new buffer used" "landed"
          (Bytes.sub_string new_buf 0 6);
        Alcotest.(check string) "old untouched" "oooooo"
          (Bytes.sub_string old_buf 0 6));
    Alcotest.test_case "update refuses when events are pending" `Quick
      (fun () ->
        let env = setup () in
        let old_buf = Bytes.make 16 '.' and new_buf = Bytes.make 16 '.' in
        let eqh, _, mdh =
          catch_all env ~spec:(fun eqh -> Ni.md_spec ~eq:eqh old_buf)
        in
        (* An arrival logs an event; the conditional update must now fail,
           telling the library to look at the queue first. *)
        put env ~md_payload:(Bytes.of_string "first!") ();
        Scheduler.run env.sched;
        let swapped =
          ok ~what:"md_update"
            (Ni.md_update env.ni1 mdh (Ni.md_spec ~eq:eqh new_buf) ~test_eq:eqh)
        in
        Alcotest.(check bool) "not swapped" false swapped;
        (* The old descriptor keeps receiving. *)
        put env ~md_payload:(Bytes.of_string "second") ();
        Scheduler.run env.sched;
        Alcotest.(check string) "old buffer still live" "second"
          (Bytes.sub_string old_buf 0 6));
    Alcotest.test_case "update validates its handles" `Quick (fun () ->
        let env = setup () in
        let eqh, _, mdh = catch_all env in
        (* Only *forged* handles of the right kind can reach the runtime
           checks now. Passing a handle of the wrong kind — what this test
           also used to probe, e.g.

             Ni.md_update env.ni1 mdh spec ~test_eq:mdh   (* MD as EQ *)
             Ni.md_update env.ni1 eqh spec ~test_eq:eqh   (* EQ as MD *)

           — is rejected by the compiler since the phantom-typed handles:
           [Handle.md] does not unify with [Handle.eq]. *)
        (match
           Ni.md_update env.ni1 mdh (Ni.md_spec (Bytes.create 4))
             ~test_eq:(Handle.of_wire 0x999L)
         with
        | Error Errors.Invalid_eq -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Invalid_eq");
        match
          Ni.md_update env.ni1 (Handle.of_wire 0x888L)
            (Ni.md_spec (Bytes.create 4)) ~test_eq:eqh
        with
        | Error Errors.Invalid_md -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Invalid_md");
  ]

let () =
  Alcotest.run "portals_ext"
    [
      ("md_iovec", md_unit_tests);
      ("iovec_e2e", iovec_e2e_tests);
      ("md_update", md_update_tests);
    ]
