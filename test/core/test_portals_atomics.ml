(* End-to-end tests of the Portals atomic extension: fetch-add, swap and
   compare-and-swap executed on the target interface at ME-match time
   (the §5.1 bypass path extended to read-modify-write), the ATOMIC and
   REPLY event pair, the wire-format roundtrips for the atomic request
   and fetched-value reply, and the §4.8 drop table as grown for
   atomics (misalignment, no-match, stray-reply, full-queue). *)

open Portals
open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

type env = {
  sched : Scheduler.t;
  tp : Simnet.Transport.t;
  ni0 : Ni.t;
  ni1 : Ni.t;
}

let setup ?(profile = Simnet.Profile.myrinet_mcp) () =
  let sched = Scheduler.create () in
  let fabric = Simnet.Fabric.create sched ~profile ~nodes:4 in
  let tp = Simnet.Transport.offload fabric in
  let ni0 = Ni.create tp ~id:(proc 0 0) () in
  let ni1 = Ni.create tp ~id:(proc 1 0) () in
  { sched; tp; ni0; ni1 }

let ok ~what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Errors.to_string e)

let expect_err expected ~what = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what
  | Error e ->
    Alcotest.(check string) what (Errors.to_string expected) (Errors.to_string e)

(* Target-side helper: one EQ, one catch-all ME on portal 0 with an MD
   over [buffer]. The default descriptor options enable both put and
   get, which is exactly what an atomic target requires. *)
let attach_target ?(options = Md.default_options) ?(eq_capacity = 32) ni buffer
    =
  let eqh = ok ~what:"eq_alloc" (Ni.eq_alloc ni ~capacity:eq_capacity) in
  let meh =
    ok ~what:"me_attach"
      (Ni.me_attach ni ~portal_index:0 ~match_id:Match_id.any
         ~match_bits:Match_bits.zero ~ignore_bits:Match_bits.all_ones
         ~unlink:Md.Retain ())
  in
  let mdh =
    ok ~what:"md_attach"
      (Ni.md_attach ni ~me:meh
         (Ni.md_spec ~options ~threshold:Md.Infinite ~unlink:Md.Retain ~eq:eqh
            buffer))
  in
  (eqh, meh, mdh)

let bind_initiator ?(eq_capacity = 32) ni buffer =
  let eqh = ok ~what:"eq_alloc" (Ni.eq_alloc ni ~capacity:eq_capacity) in
  let mdh =
    ok ~what:"md_bind"
      (Ni.md_bind ni
         (Ni.md_spec ~threshold:Md.Infinite ~unlink:Md.Retain ~eq:eqh buffer))
  in
  (eqh, mdh)

let drain_events ni eqh =
  let q = ok ~what:"eq" (Ni.eq ni eqh) in
  let rec go acc =
    match Event.Queue.get q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let kinds evs = List.map (fun e -> Event.kind_to_string e.Event.kind) evs
let word buf off = Bytes.get_int64_le buf off
let set_word buf off v = Bytes.set_int64_le buf off v
let i64 = Alcotest.int64

let atomic_op ?(offset = 0) () =
  Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ~offset ()

let semantics_tests =
  [
    Alcotest.test_case "fetch_add adds and fetches the old value" `Quick
      (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 64 '\000' in
        set_word tbuf 0 40L;
        let teq, _, _ = attach_target env.ni1 tbuf in
        let ibuf = Bytes.make 16 '\xff' in
        let ieq, imd = bind_initiator env.ni0 ibuf in
        ok ~what:"atomic"
          (Ni.atomic env.ni0 ~md:imd ~aop:Wire.Fetch_add ~operand:2L
             (atomic_op ()));
        Scheduler.run env.sched;
        Alcotest.check i64 "target word incremented" 42L (word tbuf 0);
        Alcotest.check i64 "old value fetched into md" 40L (word ibuf 0);
        (* The execute-at-match-time path posts exactly one ATOMIC event
           on the target and one REPLY on the initiator — no SENT, no
           target host fiber. *)
        let tevs = drain_events env.ni1 teq in
        Alcotest.(check (list string)) "target events" [ "ATOMIC" ] (kinds tevs);
        (match tevs with
        | [ ev ] ->
          Alcotest.(check int) "atomic mlength" Wire.atomic_word_size
            ev.Event.mlength;
          Alcotest.(check string) "initiator id" "0:0"
            (Simnet.Proc_id.to_string ev.Event.initiator)
        | _ -> Alcotest.fail "one event");
        Alcotest.(check (list string)) "initiator events (no SENT)" [ "REPLY" ]
          (kinds (drain_events env.ni0 ieq));
        Alcotest.(check int) "atomics_initiated" 1
          (Ni.counters env.ni0).Ni.atomics_initiated;
        Alcotest.(check int) "atomics_executed" 1
          (Ni.counters env.ni1).Ni.atomics_executed);
    Alcotest.test_case "swap deposits the operand and fetches the old" `Quick
      (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 8 '\000' in
        set_word tbuf 0 7L;
        let _ = attach_target env.ni1 tbuf in
        let ibuf = Bytes.make 8 '\000' in
        let _, imd = bind_initiator env.ni0 ibuf in
        ok ~what:"swap"
          (Ni.atomic env.ni0 ~md:imd ~aop:Wire.Swap ~operand:99L
             (atomic_op ()));
        Scheduler.run env.sched;
        Alcotest.check i64 "word swapped" 99L (word tbuf 0);
        Alcotest.check i64 "old value fetched" 7L (word ibuf 0));
    Alcotest.test_case "cas succeeds on match, fails on mismatch" `Quick
      (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 8 '\000' in
        set_word tbuf 0 5L;
        let _ = attach_target env.ni1 tbuf in
        let buf_hit = Bytes.make 8 '\000' and buf_miss = Bytes.make 8 '\000' in
        let _, md_hit = bind_initiator env.ni0 buf_hit in
        let _, md_miss = bind_initiator env.ni0 buf_miss in
        ok ~what:"cas hit"
          (Ni.atomic env.ni0 ~md:md_hit ~aop:Wire.Cas ~operand:6L ~compare:5L
             (atomic_op ()));
        Scheduler.run env.sched;
        Alcotest.check i64 "cas hit installed" 6L (word tbuf 0);
        Alcotest.check i64 "cas hit fetched compare" 5L (word buf_hit 0);
        ok ~what:"cas miss"
          (Ni.atomic env.ni0 ~md:md_miss ~aop:Wire.Cas ~operand:7L ~compare:5L
             (atomic_op ()));
        Scheduler.run env.sched;
        Alcotest.check i64 "cas miss left word alone" 6L (word tbuf 0);
        (* Failure is observable: fetched <> compare. *)
        Alcotest.check i64 "cas miss fetched current" 6L (word buf_miss 0));
    Alcotest.test_case "back-to-back fetch_adds serialize at the target"
      `Quick (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 8 '\000' in
        let _ = attach_target env.ni1 tbuf in
        let n = 5 and delta = 3L in
        let bufs = Array.init n (fun _ -> Bytes.make 8 '\000') in
        let mds =
          Array.map (fun b -> snd (bind_initiator env.ni0 b)) bufs
        in
        Array.iter
          (fun md ->
            ok ~what:"atomic"
              (Ni.atomic env.ni0 ~md ~aop:Wire.Fetch_add ~operand:delta
                 (atomic_op ())))
          mds;
        Scheduler.run env.sched;
        Alcotest.check i64 "sum of increments"
          (Int64.mul delta (Int64.of_int n))
          (word tbuf 0);
        (* In-order delivery: each op fetched the running total so far. *)
        Array.iteri
          (fun i b ->
            Alcotest.check i64
              (Printf.sprintf "fetched value %d" i)
              (Int64.mul delta (Int64.of_int i))
              (word b 0))
          bufs);
    Alcotest.test_case "offset addresses a word inside the region" `Quick
      (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 24 '\000' in
        set_word tbuf 0 1L;
        set_word tbuf 8 10L;
        set_word tbuf 16 3L;
        let _ = attach_target env.ni1 tbuf in
        let ibuf = Bytes.make 8 '\000' in
        let _, imd = bind_initiator env.ni0 ibuf in
        ok ~what:"atomic"
          (Ni.atomic env.ni0 ~md:imd ~aop:Wire.Fetch_add ~operand:100L
             (atomic_op ~offset:8 ()));
        Scheduler.run env.sched;
        Alcotest.check i64 "neighbour word untouched (left)" 1L (word tbuf 0);
        Alcotest.check i64 "addressed word updated" 110L (word tbuf 8);
        Alcotest.check i64 "neighbour word untouched (right)" 3L (word tbuf 16);
        Alcotest.check i64 "fetched" 10L (word ibuf 0));
  ]

let sample_request ?(aop = Wire.Fetch_add) ?(operand = 11L) ?(compare = 0L) ()
    =
  Wire.atomic_request ~aop ~operand ~compare ~initiator:(proc 0 0)
    ~target:(proc 1 0) ~portal_index:4 ~cookie:2
    ~match_bits:(Match_bits.of_int 0xBEEF)
    ~offset:16 ~md_handle:Handle.none ()

let wire_tests =
  [
    Alcotest.test_case "atomic request roundtrips for every opcode" `Quick
      (fun () ->
        List.iter
          (fun aop ->
            let msg = sample_request ~aop ~operand:11L ~compare:22L () in
            let enc = Wire.encode msg in
            Alcotest.(check int)
              (Wire.aop_to_string aop ^ " encoded size")
              (Wire.header_size + Wire.atomic_block_size)
              (Bytes.length enc);
            match Wire.decode enc with
            | Error e ->
              Alcotest.failf "decode failed: %a" Wire.pp_decode_error e
            | Ok dec -> (
              Alcotest.(check bool) "is atomic request" true
                (dec.Wire.op = Wire.Atomic_request);
              Alcotest.(check int) "length is the word size"
                Wire.atomic_word_size dec.Wire.length;
              match dec.Wire.atomic with
              | None -> Alcotest.fail "missing atomic block"
              | Some a ->
                Alcotest.(check string) "opcode" (Wire.aop_to_string aop)
                  (Wire.aop_to_string a.Wire.aop);
                Alcotest.check i64 "operand" 11L a.Wire.operand;
                Alcotest.check i64 "compare" 22L a.Wire.compare))
          Wire.all_aops);
    Alcotest.test_case "atomic reply echoes the request with the pair swapped"
      `Quick (fun () ->
        let req = sample_request () in
        let reply = Wire.atomic_reply_of_request req ~fetched:41L in
        (match Wire.decode (Wire.encode reply) with
        | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_decode_error e
        | Ok dec ->
          Alcotest.(check bool) "is atomic reply" true
            (dec.Wire.op = Wire.Atomic_reply);
          Alcotest.(check string) "routed back to the initiator" "0:0"
            (Simnet.Proc_id.to_string dec.Wire.target);
          Alcotest.(check (option i64)) "fetched value" (Some 41L)
            (Wire.fetched_value dec));
        (* fetched_value is reply-only; a request has no fetched value. *)
        Alcotest.(check (option i64)) "request has no fetched value" None
          (Wire.fetched_value req));
    Alcotest.test_case "unknown atomic opcode byte is rejected" `Quick
      (fun () ->
        let enc = Wire.encode (sample_request ()) in
        (* The opcode is the first byte of the extension block. *)
        Bytes.set_uint8 enc Wire.header_size 0xEE;
        match Wire.decode enc with
        | Error (Wire.Bad_atomic_op 0xEE) -> ()
        | Error e ->
          Alcotest.failf "wrong error: %a" Wire.pp_decode_error e
        | Ok _ -> Alcotest.fail "decoded a corrupt opcode");
    Alcotest.test_case "truncated extension block is rejected" `Quick
      (fun () ->
        let enc = Wire.encode (sample_request ()) in
        let cut = Bytes.sub enc 0 (Wire.header_size + 4) in
        match Wire.decode cut with
        | Error (Wire.Truncated _) -> ()
        | Error e ->
          Alcotest.failf "wrong error: %a" Wire.pp_decode_error e
        | Ok _ -> Alcotest.fail "decoded a truncated message");
    Alcotest.test_case "encode rejects op/atomic-block mismatches both ways"
      `Quick (fun () ->
        (* An atomic op without its block has nothing to serialize; a
           non-atomic op with a block would write 17 bytes into the
           payload area. Both malformed records must be refused rather
           than silently corrupting the frame. *)
        Alcotest.check_raises "atomic op, missing block"
          (Invalid_argument
             "Wire.encode: atomic operation without an atomic block")
          (fun () ->
            ignore
              (Wire.encode { (sample_request ()) with Wire.atomic = None }));
        Alcotest.check_raises "non-atomic op, stray block"
          (Invalid_argument
             "Wire.encode: atomic block on a non-atomic operation")
          (fun () ->
            ignore
              (Wire.encode
                 { (sample_request ()) with Wire.op = Wire.Put_request })));
  ]

let drop_tests =
  [
    Alcotest.test_case "misaligned offset is dropped, word untouched" `Quick
      (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 16 '\000' in
        set_word tbuf 0 123L;
        let teq, _, _ = attach_target env.ni1 tbuf in
        let _, imd = bind_initiator env.ni0 (Bytes.make 8 '\000') in
        ok ~what:"atomic"
          (Ni.atomic env.ni0 ~md:imd ~aop:Wire.Fetch_add ~operand:1L
             (atomic_op ~offset:4 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped per section 4.8" 1
          (Ni.dropped env.ni1 Ni.Atomic_misaligned);
        Alcotest.check i64 "word untouched" 123L (word tbuf 0);
        Alcotest.(check (list string)) "no target event" []
          (kinds (drain_events env.ni1 teq));
        Alcotest.(check int) "nothing executed" 0
          (Ni.counters env.ni1).Ni.atomics_executed);
    Alcotest.test_case "descriptor without put+get does not match" `Quick
      (fun () ->
        let env = setup () in
        (* An atomic both reads and writes, so a put-only target MD must
           fall through the match list like any op-disabled entry. *)
        let options = { Md.default_options with op_get = false } in
        let _ = attach_target ~options env.ni1 (Bytes.make 8 '\000') in
        let _, imd = bind_initiator env.ni0 (Bytes.make 8 '\000') in
        ok ~what:"atomic"
          (Ni.atomic env.ni0 ~md:imd ~aop:Wire.Swap ~operand:1L
             (atomic_op ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped as no-match" 1
          (Ni.dropped env.ni1 Ni.No_match));
    Alcotest.test_case "stray atomic reply with unknown descriptor" `Quick
      (fun () ->
        let env = setup () in
        let req =
          Wire.atomic_request ~aop:Wire.Fetch_add ~operand:1L
            ~initiator:(proc 0 0) ~target:(proc 1 0) ~portal_index:0 ~cookie:1
            ~match_bits:Match_bits.zero ~offset:0
            ~md_handle:(Handle.of_wire 0x1234L) ()
        in
        let stray = Wire.atomic_reply_of_request req ~fetched:0L in
        env.tp.Simnet.Transport.send ~src:(proc 1 0) ~dst:(proc 0 0)
          (Wire.encode stray);
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1
          (Ni.dropped env.ni0 Ni.Atomic_reply_no_md));
    Alcotest.test_case "atomic reply to a full event queue is dropped" `Quick
      (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.make 8 '\000') in
        let eqh, imd = bind_initiator ~eq_capacity:1 env.ni0 (Bytes.make 8 '\000') in
        let q = ok ~what:"eq" (Ni.eq env.ni0 eqh) in
        ok ~what:"atomic"
          (Ni.atomic env.ni0 ~md:imd ~aop:Wire.Fetch_add ~operand:1L
             (atomic_op ()));
        ignore
          (Event.Queue.post q
             {
               Event.kind = Event.Put;
               initiator = proc 9 9;
               portal_index = 0;
               match_bits = Match_bits.zero;
               rlength = 0;
               mlength = 0;
               offset = 0;
               md_handle = Handle.none;
               md_user_ptr = 0;
               time = 0;
             });
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped per section 4.8" 1
          (Ni.dropped env.ni0 Ni.Atomic_reply_eq_full);
        (* The loss must also tick the queue's PTL_EQ_DROPPED counter:
           completion waiters poll it to turn the lost reply into a
           typed overflow error instead of a silent hang. *)
        Alcotest.(check int) "queue records the loss" 1
          (Event.Queue.dropped q));
    Alcotest.test_case "local validation: bad handle, short descriptor" `Quick
      (fun () ->
        let env = setup () in
        expect_err Errors.Invalid_md ~what:"stale md"
          (Ni.atomic env.ni0 ~md:(Handle.of_wire 0xDEADL) ~aop:Wire.Fetch_add
             ~operand:1L (atomic_op ()));
        (* The fetched value needs a full word of landing space. *)
        let _, small = bind_initiator env.ni0 (Bytes.make 4 '\000') in
        expect_err Errors.Invalid_arg ~what:"md shorter than the word"
          (Ni.atomic env.ni0 ~md:small ~aop:Wire.Fetch_add ~operand:1L
             (atomic_op ()));
        Alcotest.(check int) "nothing initiated" 0
          (Ni.counters env.ni0).Ni.atomics_initiated);
    Alcotest.test_case "atomic drop reasons are in the stable inventory"
      `Quick (fun () ->
        List.iter
          (fun (r, slug) ->
            Alcotest.(check bool)
              (slug ^ " listed")
              true
              (List.mem r Ni.all_drop_reasons);
            Alcotest.(check string) "slug" slug (Ni.drop_reason_slug r))
          [
            (Ni.Atomic_misaligned, "atomic_misaligned");
            (Ni.Atomic_reply_no_md, "atomic_reply_no_md");
            (Ni.Atomic_reply_eq_full, "atomic_reply_eq_full");
          ]);
  ]

let () =
  Alcotest.run "portals_atomics"
    [
      ("semantics", semantics_tests);
      ("wire", wire_tests);
      ("drops", drop_tests);
    ]
