(* Frame integrity: CRC-32C trailers (version 0x31) and the decode
   hardening they buy. The fuzz corpus drives random bit-flips and
   truncations through [Wire.decode] twice — once checksummed, once in
   the legacy encoding — to pin both that the CRC rejects every damaged
   frame and that the legacy format demonstrably cannot (the gap the
   integrity layer exists to close). *)

open Portals

let pid nid = Simnet.Proc_id.make ~nid ~pid:0

let put_frame ~payload_len ~seed =
  let data = Bytes.init payload_len (fun i -> Char.chr ((seed + (i * 7)) land 0xFF)) in
  Wire.put_request ~incarnation:1 ~initiator:(pid 0) ~target:(pid 1)
    ~portal_index:3 ~cookie:seed ~match_bits:(Match_bits.of_int64 42L)
    ~offset:0 ~md_handle:Handle.none ~eq_handle:Handle.none ~data ()

let frame_corpus ~seed =
  (* One of each operation, plus puts of several payload sizes. *)
  let put = put_frame ~payload_len:(seed mod 64) ~seed in
  let get =
    Wire.get_request ~incarnation:1 ~initiator:(pid 0) ~target:(pid 1)
      ~portal_index:3 ~cookie:seed ~match_bits:Match_bits.zero ~offset:8
      ~md_handle:Handle.none ~rlength:64 ()
  in
  let atomic =
    Wire.atomic_request ~incarnation:1 ~aop:Wire.Fetch_add
      ~operand:(Int64.of_int seed) ~initiator:(pid 0) ~target:(pid 1)
      ~portal_index:3 ~cookie:seed ~match_bits:Match_bits.zero ~offset:0
      ~md_handle:Handle.none ()
  in
  [
    Wire.encode put;
    Wire.encode (Wire.ack_of_put put ~mlength:(seed mod 64));
    Wire.encode get;
    Wire.encode (Wire.reply_of_get get ~mlength:16 ~data:(Bytes.make 16 'r'));
    Wire.encode atomic;
    Wire.encode (Wire.atomic_reply_of_request atomic ~fetched:7L);
  ]

let corruption_of ~frame_len k =
  if k mod 4 = 3 then Simnet.Fault.Truncate { keep = k mod frame_len }
  else Simnet.Fault.Flip { bit = k mod (frame_len * 8) }

let roundtrip_tests =
  [
    Alcotest.test_case "checksummed roundtrip for every operation" `Quick
      (fun () ->
        Simnet.Integrity.with_enabled true (fun () ->
            List.iter
              (fun frame ->
                Alcotest.(check int) "version byte" 0x31
                  (Bytes.get_uint8 frame 1);
                match Wire.decode frame with
                | Ok msg ->
                  Alcotest.(check bytes) "re-encode is byte-identical" frame
                    (Wire.encode msg)
                | Error e ->
                  Alcotest.failf "clean frame rejected: %a" Wire.pp_decode_error
                    e)
              (frame_corpus ~seed:5)));
    Alcotest.test_case "legacy frames rejected while integrity is on" `Quick
      (fun () ->
        let legacy = List.hd (frame_corpus ~seed:1) in
        Simnet.Integrity.with_enabled true (fun () ->
            match Wire.decode legacy with
            | Error (Wire.Bad_version 0x30) -> ()
            | Ok _ -> Alcotest.fail "unprotected frame accepted"
            | Error e ->
              Alcotest.failf "wrong error: %a" Wire.pp_decode_error e));
    Alcotest.test_case "checksummed frames still decode with integrity off"
      `Quick (fun () ->
        (* Self-describing: the receiver may race the campaign toggle. *)
        let protected_frame =
          Simnet.Integrity.with_enabled true (fun () ->
              List.hd (frame_corpus ~seed:2))
        in
        match Wire.decode protected_frame with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "rejected: %a" Wire.pp_decode_error e);
  ]

(* The fuzz property: under the checksummed encoding, a damaged frame
   NEVER decodes into a different message — every corruption either
   leaves the bytes identical (e.g. a full-length truncation) or decodes
   to [Error]. *)
let fuzz_checksummed =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"corrupted checksummed frames never mis-parse" ~count:500
       QCheck.(pair small_nat small_nat)
       (fun (seed, k) ->
         Simnet.Integrity.with_enabled true (fun () ->
             List.for_all
               (fun frame ->
                 let damaged =
                   Simnet.Fault.mutate
                     (corruption_of ~frame_len:(Bytes.length frame) k)
                     frame
                 in
                 Bytes.equal damaged frame
                 ||
                 match Wire.decode damaged with
                 | Error _ -> true
                 | Ok _ -> false)
               (frame_corpus ~seed))))

let legacy_gap_tests =
  [
    Alcotest.test_case "legacy encoding demonstrably mis-parses" `Quick
      (fun () ->
        (* Same corruptions, no CRC: some damaged frame must decode Ok
           with different contents — the silent-damage gap. Fixed seeds,
           so the count is deterministic and must stay non-zero. *)
        let misparses = ref 0 in
        for seed = 0 to 40 do
          List.iter
            (fun frame ->
              match Wire.decode frame with
              | Error _ -> ()
              | Ok original ->
                for k = 0 to 63 do
                  let damaged =
                    Simnet.Fault.mutate
                      (corruption_of ~frame_len:(Bytes.length frame) k)
                      frame
                  in
                  if not (Bytes.equal damaged frame) then
                    match Wire.decode damaged with
                    | Error _ -> ()
                    | Ok seen -> if seen <> original then incr misparses
                done)
            (frame_corpus ~seed)
        done;
        Alcotest.(check bool)
          (Printf.sprintf "saw %d silent mis-parses" !misparses)
          true (!misparses > 0));
  ]

let ni_drop_tests =
  [
    Alcotest.test_case "NI drops a damaged frame as Checksum_failed" `Quick
      (fun () ->
        Simnet.Integrity.with_enabled true (fun () ->
            let sched = Sim_engine.Scheduler.create ~seed:0 () in
            let fabric =
              Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp
                ~nodes:2
            in
            let tp = Simnet.Transport.offload fabric in
            let ni = Ni.create tp ~id:(pid 1) () in
            let frame = Wire.encode (put_frame ~payload_len:8 ~seed:3) in
            Bytes.set_uint8 frame 30 (Bytes.get_uint8 frame 30 lxor 0x10);
            tp.Simnet.Transport.send ~src:(pid 0) ~dst:(pid 1) frame;
            Sim_engine.Scheduler.run sched;
            Alcotest.(check int) "counted" 1 (Ni.dropped ni Ni.Checksum_failed)));
  ]

let () =
  Alcotest.run "wire_integrity"
    [
      ("roundtrip", roundtrip_tests);
      ("fuzz", [ fuzz_checksummed ]);
      ("legacy_gap", legacy_gap_tests);
      ("ni_drop", ni_drop_tests);
    ]
