(* Counting events and triggered-operation chains (the Portals-4-style
   extension backing the NIC-offloaded collectives): match-time counter
   bumps, arm-time firing, chain actions (put / combine / counter
   cascade), the TRIGGERED event's wire provenance, and the three §4.8
   drop reasons for mis-armed chains. *)

open Portals
open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

type env = {
  sched : Scheduler.t;
  ni0 : Ni.t;
  ni1 : Ni.t;
  ni2 : Ni.t;
}

let setup () =
  let sched = Scheduler.create () in
  let fabric = Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:4 in
  let tp = Simnet.Transport.offload fabric in
  {
    sched;
    ni0 = Ni.create tp ~id:(proc 0 0) ();
    ni1 = Ni.create tp ~id:(proc 1 0) ();
    ni2 = Ni.create tp ~id:(proc 2 0) ();
  }

let ok ~what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Errors.to_string e)

(* Catch-all counted target on portal 0: ME + put-enabled MD + attached
   counter; returns (eq, me, md, ct). *)
let counted_target ?(eq_capacity = 32) ni buffer =
  let eqh = ok ~what:"eq_alloc" (Ni.eq_alloc ni ~capacity:eq_capacity) in
  let meh =
    ok ~what:"me_attach"
      (Ni.me_attach ni ~portal_index:0 ~match_id:Match_id.any
         ~match_bits:Match_bits.zero ~ignore_bits:Match_bits.all_ones
         ~unlink:Md.Retain ())
  in
  let mdh =
    ok ~what:"md_attach"
      (Ni.md_attach ni ~me:meh
         (Ni.md_spec ~threshold:Md.Infinite ~unlink:Md.Retain ~eq:eqh buffer))
  in
  let ct = ok ~what:"ct_alloc" (Ni.ct_alloc ni) in
  ok ~what:"me_set_ct" (Ni.me_set_ct ni ~me:meh ~ct);
  (eqh, meh, mdh, ct)

let sender_md ni buffer =
  ok ~what:"md_bind"
    (Ni.md_bind ni
       (Ni.md_spec
          ~options:{ Md.default_options with Md.ack_disable = true }
          ~threshold:Md.Infinite ~unlink:Md.Retain buffer))

let put_to ni md ~target =
  ok ~what:"put"
    (Ni.put ni ~md ~ack:false (Ni.op ~target ~portal_index:0 ()))

let drain ni eqh =
  let q = ok ~what:"eq" (Ni.eq ni eqh) in
  let rec go acc =
    match Event.Queue.get q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let kinds evs = List.map (fun e -> Event.kind_to_string e.Event.kind) evs
let ct_val ni ct = ok ~what:"ct_get" (Ni.ct_get ni ct)

let counter_tests =
  [
    Alcotest.test_case "alloc, inc, get, wait, free" `Quick (fun () ->
        let env = setup () in
        let ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        Alcotest.(check int) "starts at zero" 0 (ct_val env.ni0 ct);
        ok ~what:"inc" (Ni.ct_inc env.ni0 ct 3);
        Alcotest.(check int) "incremented" 3 (ct_val env.ni0 ct);
        (* Threshold already met: wait returns without blocking. *)
        Alcotest.(check int) "wait returns value" 3
          (ok ~what:"wait" (Ni.ct_wait env.ni0 ct ~threshold:2));
        ok ~what:"free" (Ni.ct_free env.ni0 ct);
        (match Ni.ct_get env.ni0 ct with
        | Error Errors.Invalid_ct -> ()
        | Ok _ | Error _ -> Alcotest.fail "freed counter still resolves"));
    Alcotest.test_case "non-positive inc and negative threshold rejected"
      `Quick (fun () ->
        let env = setup () in
        let ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        (match Ni.ct_inc env.ni0 ct 0 with
        | Error Errors.Invalid_arg -> ()
        | Ok _ | Error _ -> Alcotest.fail "inc 0 accepted");
        match
          Ni.ct_arm env.ni0 ~ct ~threshold:(-1)
            [ Ni.Triggered_ct_inc { ct; amount = 1 } ]
        with
        | Error Errors.Invalid_arg -> ()
        | Ok _ | Error _ -> Alcotest.fail "negative threshold accepted");
    Alcotest.test_case "deposit bumps the entry's counter after events"
      `Quick (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 64 '\000' in
        let teq, _, _, ct = counted_target env.ni1 tbuf in
        let payload = Bytes.of_string "counted" in
        let md = sender_md env.ni0 payload in
        put_to env.ni0 md ~target:(proc 1 0);
        put_to env.ni0 md ~target:(proc 1 0);
        Scheduler.run env.sched;
        Alcotest.(check int) "two deposits, two bumps" 2 (ct_val env.ni1 ct);
        Alcotest.(check (list string)) "ordinary PUT events" [ "PUT"; "PUT" ]
          (kinds (drain env.ni1 teq)));
  ]

let chain_tests =
  [
    Alcotest.test_case "arming at or below the current value fires now"
      `Quick (fun () ->
        let env = setup () in
        let ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        let flag = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        ok ~what:"inc" (Ni.ct_inc env.ni0 ct 2);
        ok ~what:"arm"
          (Ni.ct_arm env.ni0 ~ct ~threshold:2
             [ Ni.Triggered_ct_inc { ct = flag; amount = 5 } ]);
        Alcotest.(check int) "fired synchronously at arm" 5
          (ct_val env.ni0 flag));
    Alcotest.test_case "triggered put carries wire provenance" `Quick
      (fun () ->
        (* ni0 deposits on ni1; ni1's chain forwards to ni2. The first
           hop logs PUT, the chain-fired hop logs TRIGGERED — same data
           landing, distinguishable provenance (the wire flag bit). *)
        let env = setup () in
        let relay_buf = Bytes.make 64 '\000' in
        let r_eq, _, relay_md, relay_ct = counted_target env.ni1 relay_buf in
        let sink_buf = Bytes.make 64 '\000' in
        let s_eq, _, _, _ = counted_target env.ni2 sink_buf in
        ok ~what:"arm"
          (Ni.ct_arm env.ni1 ~ct:relay_ct ~threshold:1
             [
               Ni.Triggered_put
                 {
                   md = relay_md;
                   ack = false;
                   length = Some 5;
                   op = Ni.op ~target:(proc 2 0) ~portal_index:0 ();
                 };
             ]);
        let md = sender_md env.ni0 (Bytes.of_string "relay") in
        put_to env.ni0 md ~target:(proc 1 0);
        Scheduler.run env.sched;
        (* The relay's slab MD has an EQ, so the chain-fired put also
           logs its local SENT there, after the PUT that triggered it. *)
        Alcotest.(check (list string)) "relay saw PUT then its chain's SENT"
          [ "PUT"; "SENT" ]
          (kinds (drain env.ni1 r_eq));
        let sink = drain env.ni2 s_eq in
        Alcotest.(check (list string)) "sink saw TRIGGERED" [ "TRIGGERED" ]
          (kinds sink);
        Alcotest.(check string) "forwarded bytes" "relay"
          (Bytes.sub_string sink_buf 0 5);
        (match sink with
        | [ ev ] ->
          Alcotest.(check string) "initiator is the relay" "1:0"
            (Simnet.Proc_id.to_string ev.Event.initiator)
        | _ -> Alcotest.fail "one sink event");
        Alcotest.(check int) "relay counted one fired chain" 1
          (Ni.counters env.ni1).Ni.triggered_fired);
    Alcotest.test_case "combine folds locally; cascade bumps fire chains"
      `Quick (fun () ->
        let env = setup () in
        let acc = Bytes.of_string "\x01\x02\x03\x04" in
        let src = Bytes.of_string "\x10\x20\x30\x40" in
        let acc_md = sender_md env.ni0 acc in
        let src_md = sender_md env.ni0 src in
        let gate = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        let done_ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        let flag = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        (* Second-stage chain armed on done_ct: the first chain's
           Triggered_ct_inc must cascade into it. *)
        ok ~what:"arm2"
          (Ni.ct_arm env.ni0 ~ct:done_ct ~threshold:1
             [ Ni.Triggered_ct_inc { ct = flag; amount = 1 } ]);
        ok ~what:"arm1"
          (Ni.ct_arm env.ni0 ~ct:gate ~threshold:1
             [
               Ni.Triggered_combine
                 {
                   dst = acc_md;
                   src = src_md;
                   f =
                     (fun d s ->
                       Bytes.iteri
                         (fun i c ->
                           Bytes.set_uint8 d i
                             (Bytes.get_uint8 d i + Char.code c))
                         s);
                 };
               Ni.Triggered_ct_inc { ct = done_ct; amount = 1 };
             ]);
        ok ~what:"inc" (Ni.ct_inc env.ni0 gate 1);
        Alcotest.(check string) "combined in place" "\x11\x22\x33\x44"
          (Bytes.to_string acc);
        Alcotest.(check int) "cascaded chain fired" 1 (ct_val env.ni0 flag));
    Alcotest.test_case "chain completion event posts to the armed eq"
      `Quick (fun () ->
        let env = setup () in
        let eqh = ok ~what:"eq_alloc" (Ni.eq_alloc env.ni0 ~capacity:4) in
        let ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        let other = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        ok ~what:"arm"
          (Ni.ct_arm env.ni0 ~ct ~eq:eqh ~user_ptr:77 ~threshold:2
             [
               Ni.Triggered_ct_inc { ct = other; amount = 1 };
               Ni.Triggered_ct_inc { ct = other; amount = 1 };
             ]);
        ok ~what:"inc" (Ni.ct_inc env.ni0 ct 2);
        match drain env.ni0 eqh with
        | [ ev ] ->
          Alcotest.(check string) "kind" "TRIGGERED"
            (Event.kind_to_string ev.Event.kind);
          Alcotest.(check int) "user_ptr tags the chain" 77 ev.Event.md_user_ptr;
          Alcotest.(check int) "offset carries threshold" 2 ev.Event.offset;
          Alcotest.(check int) "rlength carries action count" 2
            ev.Event.rlength
        | evs -> Alcotest.failf "expected one event, got %d" (List.length evs));
  ]

let drop_tests =
  [
    Alcotest.test_case "vanished handles drop as triggered_target_gone"
      `Quick (fun () ->
        let env = setup () in
        let ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        let victim = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        ok ~what:"arm"
          (Ni.ct_arm env.ni0 ~ct ~threshold:1
             [ Ni.Triggered_ct_inc { ct = victim; amount = 1 } ]);
        ok ~what:"free victim" (Ni.ct_free env.ni0 victim);
        ok ~what:"inc" (Ni.ct_inc env.ni0 ct 1);
        Alcotest.(check int) "dropped" 1
          (Ni.dropped env.ni0 Ni.Triggered_target_gone));
    Alcotest.test_case "freed match counter drops the bump, keeps the data"
      `Quick (fun () ->
        let env = setup () in
        let tbuf = Bytes.make 64 '\000' in
        let _, _, _, ct = counted_target env.ni1 tbuf in
        ok ~what:"free" (Ni.ct_free env.ni1 ct);
        let md = sender_md env.ni0 (Bytes.of_string "still lands") in
        put_to env.ni0 md ~target:(proc 1 0);
        Scheduler.run env.sched;
        Alcotest.(check string) "deposit committed" "still lands"
          (Bytes.sub_string tbuf 0 11);
        Alcotest.(check int) "stale counter drop" 1
          (Ni.dropped env.ni1 Ni.Triggered_target_gone));
    Alcotest.test_case "inactive descriptor drops as triggered_md_inactive"
      `Quick (fun () ->
        let env = setup () in
        (* Threshold 0 exhausts immediately: active=false at fire time. *)
        let dead_md =
          ok ~what:"md_bind"
            (Ni.md_bind env.ni0
               (Ni.md_spec ~threshold:(Md.Count 0) ~unlink:Md.Retain
                  (Bytes.make 8 '\000')))
        in
        let ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        ok ~what:"arm"
          (Ni.ct_arm env.ni0 ~ct ~threshold:1
             [
               Ni.Triggered_put
                 {
                   md = dead_md;
                   ack = false;
                   length = None;
                   op = Ni.op ~target:(proc 1 0) ~portal_index:0 ();
                 };
             ]);
        ok ~what:"inc" (Ni.ct_inc env.ni0 ct 1);
        Alcotest.(check int) "dropped" 1
          (Ni.dropped env.ni0 Ni.Triggered_md_inactive));
    Alcotest.test_case "full completion queue drops as triggered_eq_full"
      `Quick (fun () ->
        let env = setup () in
        let eqh = ok ~what:"eq_alloc" (Ni.eq_alloc env.ni0 ~capacity:1) in
        let ct = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        let other = ok ~what:"alloc" (Ni.ct_alloc env.ni0) in
        let inc = [ Ni.Triggered_ct_inc { ct = other; amount = 1 } ] in
        ok ~what:"arm1" (Ni.ct_arm env.ni0 ~ct ~eq:eqh ~threshold:1 inc);
        ok ~what:"arm2" (Ni.ct_arm env.ni0 ~ct ~eq:eqh ~threshold:1 inc);
        (* Both chains fire on one bump; the second completion event finds
           the 1-deep queue already full. *)
        ok ~what:"inc" (Ni.ct_inc env.ni0 ct 1);
        Alcotest.(check int) "both chains ran" 2 (ct_val env.ni0 other);
        Alcotest.(check int) "dropped" 1
          (Ni.dropped env.ni0 Ni.Triggered_eq_full));
  ]

let () =
  Alcotest.run "portals-triggered"
    [
      ("counters", counter_tests);
      ("chains", chain_tests);
      ("drops", drop_tests);
    ]
