(* End-to-end tests of the Portals network interface: two (or more)
   processes on a simulated fabric exchanging puts and gets, exercising
   address translation (Fig. 4), the receive-side rules of section 4.8
   (every drop reason), threshold/unlink cascades, and application
   bypass. *)

open Portals
open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

type env = {
  sched : Scheduler.t;
  fabric : Simnet.Fabric.t;
  tp : Simnet.Transport.t;
  ni0 : Ni.t;
  ni1 : Ni.t;
}

let setup ?(profile = Simnet.Profile.myrinet_mcp) ?(kind = `Offload) () =
  let sched = Scheduler.create () in
  let fabric = Simnet.Fabric.create sched ~profile ~nodes:4 in
  let tp =
    match kind with
    | `Offload -> Simnet.Transport.offload fabric
    | `Kernel -> Simnet.Transport.kernel_interrupt fabric
  in
  let ni0 = Ni.create tp ~id:(proc 0 0) () in
  let ni1 = Ni.create tp ~id:(proc 1 0) () in
  { sched; fabric; tp; ni0; ni1 }

let ok ~what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Errors.to_string e)

let expect_err expected ~what = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what
  | Error e ->
    Alcotest.(check string) what (Errors.to_string expected) (Errors.to_string e)

(* Target-side helper: one EQ, one catch-all ME on portal [pt] with an MD
   over [buffer]. Returns (eq_handle, me_handle, md_handle). *)
let attach_target ?(pt = 0) ?(match_bits = Match_bits.zero)
    ?(ignore_bits = Match_bits.all_ones) ?(match_id = Match_id.any)
    ?(options = Md.default_options) ?(threshold = Md.Infinite)
    ?(unlink = Md.Retain) ?(me_unlink = Md.Retain) ?(eq_capacity = 32) ni buffer =
  let eqh = ok ~what:"eq_alloc" (Ni.eq_alloc ni ~capacity:eq_capacity) in
  let meh =
    ok ~what:"me_attach"
      (Ni.me_attach ni ~portal_index:pt ~match_id ~match_bits ~ignore_bits
         ~unlink:me_unlink ())
  in
  let mdh =
    ok ~what:"md_attach"
      (Ni.md_attach ni ~me:meh
         (Ni.md_spec ~options ~threshold ~unlink ~eq:eqh buffer))
  in
  (eqh, meh, mdh)

(* Initiator-side helper: EQ + bound MD over [buffer]. *)
let bind_initiator ?(threshold = Md.Infinite) ?(unlink = Md.Retain)
    ?(eq_capacity = 32) ni buffer =
  let eqh = ok ~what:"eq_alloc" (Ni.eq_alloc ni ~capacity:eq_capacity) in
  let mdh =
    ok ~what:"md_bind" (Ni.md_bind ni (Ni.md_spec ~threshold ~unlink ~eq:eqh buffer))
  in
  (eqh, mdh)

let drain_events ni eqh =
  let q = ok ~what:"eq" (Ni.eq ni eqh) in
  let rec go acc =
    match Event.Queue.get q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let kinds evs = List.map (fun e -> Event.kind_to_string e.Event.kind) evs

let put_get_tests =
  [
    Alcotest.test_case "put delivers data with SENT/PUT/ACK events" `Quick
      (fun () ->
        let env = setup () in
        let target_buf = Bytes.make 64 '.' in
        let teq, _, _ = attach_target env.ni1 target_buf in
        let payload = Bytes.of_string "hello portals" in
        let ieq, imd = bind_initiator env.ni0 payload in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check string) "data landed" "hello portals"
          (Bytes.sub_string target_buf 0 13);
        let tevs = drain_events env.ni1 teq in
        Alcotest.(check (list string)) "target events" [ "PUT" ] (kinds tevs);
        (match tevs with
        | [ ev ] ->
          Alcotest.(check int) "rlength" 13 ev.Event.rlength;
          Alcotest.(check int) "mlength" 13 ev.Event.mlength;
          Alcotest.(check string) "initiator" "0:0"
            (Simnet.Proc_id.to_string ev.Event.initiator)
        | _ -> Alcotest.fail "one event");
        let ievs = drain_events env.ni0 ieq in
        Alcotest.(check (list string)) "initiator events" [ "SENT"; "ACK" ]
          (kinds ievs);
        (match ievs with
        | [ _; ack ] -> Alcotest.(check int) "ack mlength" 13 ack.Event.mlength
        | _ -> Alcotest.fail "two events"));
    Alcotest.test_case "put without ack yields only SENT" `Quick (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.create 64) in
        let ieq, imd = bind_initiator env.ni0 (Bytes.of_string "quiet") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check (list string)) "only SENT" [ "SENT" ]
          (kinds (drain_events env.ni0 ieq)));
    Alcotest.test_case "zero-length put completes" `Quick (fun () ->
        let env = setup () in
        let teq, _, _ = attach_target env.ni1 (Bytes.create 8) in
        let ieq, imd = bind_initiator env.ni0 Bytes.empty in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        (match drain_events env.ni1 teq with
        | [ ev ] -> Alcotest.(check int) "mlength 0" 0 ev.Event.mlength
        | _ -> Alcotest.fail "one PUT event");
        Alcotest.(check (list string)) "SENT+ACK" [ "SENT"; "ACK" ]
          (kinds (drain_events env.ni0 ieq)));
    Alcotest.test_case "get fetches remote data with REPLY event" `Quick
      (fun () ->
        let env = setup () in
        let remote = Bytes.of_string "0123456789abcdef" in
        let teq, _, _ = attach_target env.ni1 remote in
        let local = Bytes.make 8 '.' in
        let ieq, imd = bind_initiator env.ni0 local in
        ok ~what:"get"
          (Ni.get env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ~offset:4 ()));
        Scheduler.run env.sched;
        Alcotest.(check string) "fetched from offset 4" "456789ab"
          (Bytes.to_string local);
        Alcotest.(check (list string)) "target GET" [ "GET" ]
          (kinds (drain_events env.ni1 teq));
        (match drain_events env.ni0 ieq with
        | [ ev ] ->
          Alcotest.(check string) "REPLY" "REPLY" (Event.kind_to_string ev.Event.kind);
          Alcotest.(check int) "mlength" 8 ev.Event.mlength
        | _ -> Alcotest.fail "one REPLY event"));
    Alcotest.test_case "put at an offset lands in the middle" `Quick (fun () ->
        let env = setup () in
        let target_buf = Bytes.make 16 '.' in
        let _ = attach_target env.ni1 target_buf in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "XY") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ~offset:7 ()));
        Scheduler.run env.sched;
        Alcotest.(check string) "middle" ".......XY......."
          (Bytes.to_string target_buf));
    Alcotest.test_case "truncating descriptor reports manipulated length" `Quick
      (fun () ->
        let env = setup () in
        let small = Bytes.make 5 '.' in
        let options = { Md.default_options with Md.truncate = true } in
        let teq, _, _ = attach_target ~options env.ni1 small in
        let ieq, imd = bind_initiator env.ni0 (Bytes.of_string "0123456789") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check string) "first five bytes" "01234" (Bytes.to_string small);
        (match drain_events env.ni1 teq with
        | [ ev ] ->
          Alcotest.(check int) "rlength" 10 ev.Event.rlength;
          Alcotest.(check int) "mlength" 5 ev.Event.mlength
        | _ -> Alcotest.fail "one event");
        (match drain_events env.ni0 ieq with
        | [ _sent; ack ] -> Alcotest.(check int) "ack mlength" 5 ack.Event.mlength
        | _ -> Alcotest.fail "SENT+ACK"));
  ]

let matching_tests =
  [
    Alcotest.test_case "match bits select among entries" `Quick (fun () ->
        let env = setup () in
        let buf_a = Bytes.make 8 '.' and buf_b = Bytes.make 8 '.' in
        let eq_a, _, _ =
          attach_target ~match_bits:(Match_bits.of_int 10)
            ~ignore_bits:Match_bits.zero env.ni1 buf_a
        in
        let eq_b, _, _ =
          attach_target ~match_bits:(Match_bits.of_int 20)
            ~ignore_bits:Match_bits.zero env.ni1 buf_b
        in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "to-b") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1
                ~match_bits:(Match_bits.of_int 20) ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "a untouched" 0 (List.length (drain_events env.ni1 eq_a));
        Alcotest.(check int) "b hit" 1 (List.length (drain_events env.ni1 eq_b));
        Alcotest.(check string) "data in b" "to-b" (Bytes.sub_string buf_b 0 4);
        (* The walk examined entry a (mismatch) then accepted entry b. *)
        Alcotest.(check int) "entries walked" 2 (Ni.counters env.ni1).Ni.entries_walked);
    Alcotest.test_case "source restriction falls through to next entry" `Quick
      (fun () ->
        let env = setup () in
        let priv = Bytes.make 8 '.' and open_buf = Bytes.make 8 '.' in
        let eq_priv, _, _ =
          attach_target ~match_id:(Match_id.of_proc (proc 3 0)) env.ni1 priv
        in
        let eq_open, _, _ = attach_target env.ni1 open_buf in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "data") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "private skipped" 0
          (List.length (drain_events env.ni1 eq_priv));
        Alcotest.(check int) "open entry took it" 1
          (List.length (drain_events env.ni1 eq_open)));
    Alcotest.test_case "me_insert Before takes priority" `Quick (fun () ->
        let env = setup () in
        let late = Bytes.make 8 '.' in
        let eq_late, me_late, _ = attach_target env.ni1 late in
        (* Insert a second catch-all before the existing one. *)
        let early = Bytes.make 8 '.' in
        let eqh = ok ~what:"eq" (Ni.eq_alloc env.ni1 ~capacity:8) in
        let me_early =
          ok ~what:"insert"
            (Ni.me_insert env.ni1 ~base:me_late ~match_id:Match_id.any
               ~match_bits:Match_bits.zero ~ignore_bits:Match_bits.all_ones
               ~pos:`Before ())
        in
        let _ =
          ok ~what:"md_attach"
            (Ni.md_attach env.ni1 ~me:me_early (Ni.md_spec ~eq:eqh early))
        in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "first") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "early entry hit" 1
          (List.length (drain_events env.ni1 eqh));
        Alcotest.(check int) "late entry idle" 0
          (List.length (drain_events env.ni1 eq_late)));
    Alcotest.test_case "rejecting first descriptor moves to next entry" `Quick
      (fun () ->
        (* Entry 1 matches but its MD only allows gets; the put must fall
           through to entry 2 (Fig. 4: md reject -> next match entry). *)
        let env = setup () in
        let get_only = { Md.default_options with Md.op_put = false } in
        let eq1, _, _ = attach_target ~options:get_only env.ni1 (Bytes.create 8) in
        let buf2 = Bytes.make 8 '.' in
        let eq2, _, _ = attach_target env.ni1 buf2 in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "fall") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "entry1 skipped" 0 (List.length (drain_events env.ni1 eq1));
        Alcotest.(check int) "entry2 accepted" 1 (List.length (drain_events env.ni1 eq2));
        Alcotest.(check string) "data" "fall" (Bytes.sub_string buf2 0 4));
    Alcotest.test_case "locally managed offsets pack a slab" `Quick (fun () ->
        let env = setup () in
        let slab = Bytes.make 32 '.' in
        let options = { Md.default_options with Md.manage_remote = false } in
        let teq, _, mdh = attach_target ~options env.ni1 slab in
        let send s =
          let _, imd = bind_initiator env.ni0 (Bytes.of_string s) in
          ok ~what:"put"
            (Ni.put env.ni0 ~md:imd
               (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ~offset:999 ()))
          (* remote offset must be ignored *)
        in
        send "aaaa";
        send "bb";
        send "cccccc";
        Scheduler.run env.sched;
        Alcotest.(check string) "packed back-to-back" "aaaabbcccccc"
          (Bytes.sub_string slab 0 12);
        let offsets = List.map (fun e -> e.Event.offset) (drain_events env.ni1 teq) in
        Alcotest.(check (list int)) "event offsets" [ 0; 4; 6 ] offsets;
        Alcotest.(check int) "local offset" 12
          (ok ~what:"local_offset" (Ni.md_local_offset env.ni1 mdh)));
  ]

let unlink_tests =
  [
    Alcotest.test_case "threshold unlink cascades to the match entry" `Quick
      (fun () ->
        let env = setup () in
        let buf = Bytes.make 8 '.' in
        let _, meh, mdh =
          attach_target ~threshold:(Md.Count 1) ~unlink:Md.Unlink
            ~me_unlink:Md.Unlink env.ni1 buf
        in
        let send s =
          let _, imd = bind_initiator env.ni0 (Bytes.of_string s) in
          ok ~what:"put"
            (Ni.put env.ni0 ~md:imd ~ack:false
               (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()))
        in
        send "one!";
        Scheduler.run env.sched;
        Alcotest.(check string) "first delivered" "one!" (Bytes.sub_string buf 0 4);
        (* MD and ME are gone now. *)
        expect_err Errors.Invalid_md ~what:"md gone" (Ni.md_active env.ni1 mdh);
        expect_err Errors.Invalid_me ~what:"me gone" (Ni.me_md_count env.ni1 meh);
        send "two!";
        Scheduler.run env.sched;
        Alcotest.(check string) "second not delivered" "one!"
          (Bytes.sub_string buf 0 4);
        Alcotest.(check int) "dropped as no-match" 1
          (Ni.dropped env.ni1 Ni.No_match));
    Alcotest.test_case "retained descriptor stays linked but inactive" `Quick
      (fun () ->
        let env = setup () in
        let _, meh, mdh =
          attach_target ~threshold:(Md.Count 1) ~unlink:Md.Retain env.ni1
            (Bytes.create 8)
        in
        let send () =
          let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
          ok ~what:"put"
            (Ni.put env.ni0 ~md:imd ~ack:false
               (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()))
        in
        send ();
        Scheduler.run env.sched;
        Alcotest.(check bool) "inactive" false
          (ok ~what:"active" (Ni.md_active env.ni1 mdh));
        Alcotest.(check int) "still attached" 1
          (ok ~what:"count" (Ni.me_md_count env.ni1 meh));
        send ();
        Scheduler.run env.sched;
        Alcotest.(check int) "second dropped" 1 (Ni.dropped env.ni1 Ni.No_match));
    Alcotest.test_case "md_unlink refuses while a reply is pending" `Quick
      (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.of_string "remote-data-here") in
        let _, imd = bind_initiator env.ni0 (Bytes.create 4) in
        ok ~what:"get"
          (Ni.get env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        (* Before running the simulation the reply is outstanding. *)
        expect_err Errors.Md_in_use ~what:"unlink pending" (Ni.md_unlink env.ni0 imd);
        Scheduler.run env.sched;
        ok ~what:"unlink after reply" (Ni.md_unlink env.ni0 imd));
    Alcotest.test_case "initiator md with threshold 2 self-cleans after ack"
      `Quick (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.create 16) in
        let _, imd =
          bind_initiator ~threshold:(Md.Count 2) ~unlink:Md.Unlink env.ni0
            (Bytes.of_string "self-cleaning")
        in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        (* SENT consumed one unit, ACK the second: the MD is gone. *)
        expect_err Errors.Invalid_md ~what:"auto-unlinked" (Ni.md_active env.ni0 imd));
    Alcotest.test_case "me_unlink frees entry and descriptors" `Quick (fun () ->
        let env = setup () in
        let _, meh, mdh = attach_target env.ni1 (Bytes.create 8) in
        ok ~what:"me_unlink" (Ni.me_unlink env.ni1 meh);
        expect_err Errors.Invalid_me ~what:"me gone" (Ni.me_md_count env.ni1 meh);
        expect_err Errors.Invalid_md ~what:"md gone" (Ni.md_active env.ni1 mdh);
        (* Messages now drop at translation. *)
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "no match" 1 (Ni.dropped env.ni1 Ni.No_match));
  ]

let drop_tests =
  [
    Alcotest.test_case "invalid portal index" `Quick (fun () ->
        let env = setup () in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:4999 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni1 Ni.Invalid_portal_index));
    Alcotest.test_case "unset access control cookie" `Quick (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.create 8) in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:9 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni1 Ni.Acl_bad_cookie));
    Alcotest.test_case "access control id mismatch" `Quick (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.create 8) in
        (match
           Acl.set (Ni.acl env.ni1) 2
             { Acl.allowed_id = Match_id.of_proc (proc 3 3); allowed_portal = None }
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "acl set");
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:2 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni1 Ni.Acl_id_mismatch));
    Alcotest.test_case "access control portal mismatch" `Quick (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.create 8) in
        (match
           Acl.set (Ni.acl env.ni1) 3
             { Acl.allowed_id = Match_id.any; allowed_portal = Some 7 }
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "acl set");
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:3 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni1 Ni.Acl_portal_mismatch));
    Alcotest.test_case "no matching entry" `Quick (fun () ->
        let env = setup () in
        (* An entry that requires different bits. *)
        let _ =
          attach_target ~match_bits:(Match_bits.of_int 5)
            ~ignore_bits:Match_bits.zero env.ni1 (Bytes.create 8)
        in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1
                ~match_bits:(Match_bits.of_int 6) ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni1 Ni.No_match));
    Alcotest.test_case "too-long message without truncate is rejected" `Quick
      (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.create 4) in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "way too long") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni1 Ni.No_match));
    Alcotest.test_case "stray ack with unknown event queue" `Quick (fun () ->
        let env = setup () in
        let put =
          Wire.put_request ~initiator:(proc 1 0) ~target:(proc 0 0)
            ~portal_index:0 ~cookie:1 ~match_bits:Match_bits.zero ~offset:0
            ~md_handle:Handle.none
            ~eq_handle:(Handle.of_wire 0x7777L) ~data:Bytes.empty ()
        in
        let stray = Wire.ack_of_put put ~mlength:0 in
        env.tp.Simnet.Transport.send ~src:(proc 1 0) ~dst:(proc 0 0)
          (Wire.encode stray);
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni0 Ni.Ack_no_eq));
    Alcotest.test_case "stray reply with unknown descriptor" `Quick (fun () ->
        let env = setup () in
        let get =
          Wire.get_request ~initiator:(proc 1 0) ~target:(proc 0 0)
            ~portal_index:0 ~cookie:1 ~match_bits:Match_bits.zero ~offset:0
            ~md_handle:(Handle.of_wire 0x1234L) ~rlength:3 ()
        in
        let stray = Wire.reply_of_get get ~mlength:3 ~data:(Bytes.of_string "xyz") in
        env.tp.Simnet.Transport.send ~src:(proc 1 0) ~dst:(proc 0 0)
          (Wire.encode stray);
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni0 Ni.Reply_no_md));
    Alcotest.test_case "reply to a full event queue is dropped" `Quick (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.of_string "abcdefgh") in
        (* Initiator MD with a capacity-1 EQ; stuff the EQ before the reply
           arrives so the reply finds it full. *)
        let eqh, imd = bind_initiator ~eq_capacity:1 env.ni0 (Bytes.create 4) in
        let q = ok ~what:"eq" (Ni.eq env.ni0 eqh) in
        ok ~what:"get"
          (Ni.get env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        ignore
          (Event.Queue.post q
             {
               Event.kind = Event.Put;
               initiator = proc 9 9;
               portal_index = 0;
               match_bits = Match_bits.zero;
               rlength = 0;
               mlength = 0;
               offset = 0;
               md_handle = Handle.none;
               md_user_ptr = 0;
               time = 0;
             });
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped per section 4.8" 1
          (Ni.dropped env.ni0 Ni.Reply_eq_full));
    Alcotest.test_case "malformed bytes are counted" `Quick (fun () ->
        let env = setup () in
        env.tp.Simnet.Transport.send ~src:(proc 1 0) ~dst:(proc 0 0)
          (Bytes.of_string "garbage!");
        Scheduler.run env.sched;
        Alcotest.(check int) "dropped" 1 (Ni.dropped env.ni0 Ni.Malformed));
    Alcotest.test_case "shutdown unregisters from the fabric" `Quick (fun () ->
        let env = setup () in
        Ni.shutdown env.ni1;
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "x") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd ~ack:false
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check int) "fabric drop" 1
          (Simnet.Fabric.stats env.fabric).Simnet.Fabric.drops_unregistered;
        Alcotest.(check int) "ni saw nothing" 0 (Ni.dropped_total env.ni1));
  ]

let bypass_tests =
  [
    Alcotest.test_case "target application never runs (offload)" `Quick
      (fun () ->
        (* No fiber is ever spawned for the target process; delivery is
           driven entirely by arrival events — application bypass. *)
        let env = setup () in
        let buf = Bytes.make 16 '.' in
        let teq, _, _ = attach_target env.ni1 buf in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "bypassed") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        Alcotest.(check string) "delivered with no target activity" "bypassed"
          (Bytes.sub_string buf 0 8);
        Alcotest.(check int) "event logged" 1 (List.length (drain_events env.ni1 teq));
        let cpu = env.tp.Simnet.Transport.host_cpu 1 in
        Alcotest.(check int) "host cpu untouched" 0 (Cpu.stolen_total cpu));
    Alcotest.test_case "kernel transport charges the target host" `Quick
      (fun () ->
        let env = setup ~profile:Simnet.Profile.myrinet_kernel ~kind:`Kernel () in
        let _ = attach_target env.ni1 (Bytes.make 16 '.') in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "interrupting") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        let cpu = env.tp.Simnet.Transport.host_cpu 1 in
        Alcotest.(check bool) "host cycles stolen" true (Cpu.stolen_total cpu > 0));
    Alcotest.test_case "events are delayed by processing costs" `Quick (fun () ->
        let env = setup () in
        let teq, _, _ = attach_target env.ni1 (Bytes.make 65536 '.') in
        let _, imd = bind_initiator env.ni0 (Bytes.make 50_000 'x') in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        match drain_events env.ni1 teq with
        | [ ev ] ->
          let profile = Simnet.Profile.myrinet_mcp in
          let min_time = Simnet.Profile.tx_time profile 50_000 in
          Alcotest.(check bool) "after serialisation at least" true
            (ev.Event.time > min_time)
        | _ -> Alcotest.fail "one event");
  ]

let ordering_tests =
  [
    Alcotest.test_case "many puts preserve order end to end" `Quick (fun () ->
        let env = setup () in
        let slab = Bytes.make 4096 '.' in
        let options = { Md.default_options with Md.manage_remote = false } in
        let teq, _, _ = attach_target ~options ~eq_capacity:256 env.ni1 slab in
        let expect = Buffer.create 256 in
        for i = 0 to 25 do
          let s = Printf.sprintf "<%02d>" i in
          Buffer.add_string expect s;
          let _, imd = bind_initiator env.ni0 (Bytes.of_string s) in
          ok ~what:"put"
            (Ni.put env.ni0 ~md:imd ~ack:false
               (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()))
        done;
        Scheduler.run env.sched;
        let total = Buffer.length expect in
        Alcotest.(check string) "concatenated in order" (Buffer.contents expect)
          (Bytes.sub_string slab 0 total);
        let evs = drain_events env.ni1 teq in
        Alcotest.(check int) "all events" 26 (List.length evs);
        let offsets = List.map (fun e -> e.Event.offset) evs in
        let sorted = List.sort compare offsets in
        Alcotest.(check (list int)) "monotone offsets" sorted offsets);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random puts land contiguously" ~count:60
         QCheck.(list_of_size Gen.(int_range 0 20) (int_range 0 200))
         (fun sizes ->
           let env = setup () in
           let slab = Bytes.make 8192 '.' in
           let options =
             { Md.default_options with Md.manage_remote = false; truncate = true }
           in
           let teq, _, _ = attach_target ~options ~eq_capacity:64 env.ni1 slab in
           List.iteri
             (fun i len ->
               let payload = Bytes.make len (Char.chr (65 + (i mod 26))) in
               let _, imd = bind_initiator env.ni0 payload in
               ok ~what:"put"
                 (Ni.put env.ni0 ~md:imd ~ack:false
                    (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ())))
             sizes;
           Scheduler.run env.sched;
           let evs = drain_events env.ni1 teq in
           let total = List.fold_left ( + ) 0 sizes in
           List.length evs = List.length sizes
           && List.fold_left (fun acc e -> acc + e.Event.mlength) 0 evs = total));
  ]

let eq_overflow_tests =
  [
    Alcotest.test_case "event overflow loses events, not data" `Quick (fun () ->
        let env = setup () in
        let slab = Bytes.make 64 '.' in
        let options = { Md.default_options with Md.manage_remote = false } in
        let teq, _, _ = attach_target ~options ~eq_capacity:2 env.ni1 slab in
        for _ = 1 to 4 do
          let _, imd = bind_initiator env.ni0 (Bytes.of_string "zz") in
          ok ~what:"put"
            (Ni.put env.ni0 ~md:imd ~ack:false
               (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()))
        done;
        Scheduler.run env.sched;
        Alcotest.(check string) "all data landed" "zzzzzzzz"
          (Bytes.sub_string slab 0 8);
        let q = ok ~what:"eq" (Ni.eq env.ni1 teq) in
        Alcotest.(check int) "two events kept" 2 (Event.Queue.count q);
        Alcotest.(check int) "two dropped" 2 (Event.Queue.dropped q);
        Alcotest.(check int) "no message drops" 0 (Ni.dropped_total env.ni1));
  ]

let counter_tests =
  [
    Alcotest.test_case "interface counters tally activity" `Quick (fun () ->
        let env = setup () in
        let _ = attach_target env.ni1 (Bytes.of_string "0123456789") in
        let _, imd = bind_initiator env.ni0 (Bytes.of_string "abc") in
        ok ~what:"put"
          (Ni.put env.ni0 ~md:imd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        let _, gmd = bind_initiator env.ni0 (Bytes.create 4) in
        ok ~what:"get"
          (Ni.get env.ni0 ~md:gmd
             (Ni.op ~target:(proc 1 0) ~portal_index:0 ~cookie:1 ()));
        Scheduler.run env.sched;
        let c0 = Ni.counters env.ni0 and c1 = Ni.counters env.ni1 in
        Alcotest.(check int) "puts" 1 c0.Ni.puts_initiated;
        Alcotest.(check int) "gets" 1 c0.Ni.gets_initiated;
        Alcotest.(check int) "acks" 1 c1.Ni.acks_sent;
        Alcotest.(check int) "replies" 1 c1.Ni.replies_sent;
        Alcotest.(check int) "received put+get" 2 c1.Ni.messages_received;
        Alcotest.(check int) "received ack+reply" 2 c0.Ni.messages_received;
        Alcotest.(check int) "translations" 2 c1.Ni.translations;
        Alcotest.(check bool) "entries walked" true (c1.Ni.entries_walked >= 2));
  ]

let () =
  Alcotest.run "portals_ni"
    [
      ("put_get", put_get_tests);
      ("matching", matching_tests);
      ("unlink", unlink_tests);
      ("drops", drop_tests);
      ("bypass", bypass_tests);
      ("ordering", ordering_tests);
      ("eq_overflow", eq_overflow_tests);
      ("counters", counter_tests);
    ]
