(* Unit and property tests for the Portals data structures: handles,
   match bits, access control, memory descriptors, match entries, event
   queues and the wire format of Tables 1-4. *)

open Portals

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

let handle_tests =
  [
    Alcotest.test_case "alloc/find/free lifecycle" `Quick (fun () ->
        let table = Handle.Table.create () in
        let h = Handle.Table.alloc table "v" in
        Alcotest.(check (option string)) "find" (Some "v")
          (Handle.Table.find table h);
        Alcotest.(check int) "live" 1 (Handle.Table.live_count table);
        Alcotest.(check bool) "free" true (Handle.Table.free table h);
        Alcotest.(check (option string)) "stale" None (Handle.Table.find table h);
        Alcotest.(check bool) "double free" false (Handle.Table.free table h));
    Alcotest.test_case "generation protects reused slots" `Quick (fun () ->
        let table = Handle.Table.create () in
        let h1 = Handle.Table.alloc table 1 in
        ignore (Handle.Table.free table h1);
        let h2 = Handle.Table.alloc table 2 in
        (* Slot is reused, but the stale handle must not resolve. *)
        Alcotest.(check (option int)) "old handle dead" None
          (Handle.Table.find table h1);
        Alcotest.(check (option int)) "new handle live" (Some 2)
          (Handle.Table.find table h2);
        Alcotest.(check bool) "handles differ" false (Handle.equal h1 h2));
    Alcotest.test_case "none never resolves" `Quick (fun () ->
        let table = Handle.Table.create () in
        ignore (Handle.Table.alloc table ());
        Alcotest.(check bool) "is_none" true (Handle.is_none Handle.none);
        Alcotest.(check (option unit)) "find none" None
          (Handle.Table.find table Handle.none));
    Alcotest.test_case "wire round trip" `Quick (fun () ->
        let table = Handle.Table.create () in
        let h = Handle.Table.alloc table () in
        Alcotest.(check bool) "round trip" true
          (Handle.equal h (Handle.of_wire (Handle.to_wire h)));
        Alcotest.(check bool) "none round trip" true
          (Handle.is_none (Handle.of_wire (Handle.to_wire Handle.none))));
    Alcotest.test_case "iter visits exactly the live entries" `Quick (fun () ->
        let table = Handle.Table.create () in
        let h1 = Handle.Table.alloc table 1 in
        let _h2 = Handle.Table.alloc table 2 in
        let h3 = Handle.Table.alloc table 3 in
        ignore (Handle.Table.free table h1);
        ignore h3;
        let seen = ref [] in
        Handle.Table.iter table (fun _ v -> seen := v :: !seen);
        Alcotest.(check (list int)) "live values" [ 2; 3 ]
          (List.sort compare !seen));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"many alloc/free cycles stay consistent" ~count:100
         QCheck.(list (int_range 0 20))
         (fun sizes ->
           let table = Handle.Table.create () in
           let all = ref [] in
           List.iter
             (fun n ->
               let hs = List.init (max n 0) (fun i -> Handle.Table.alloc table i) in
               all := hs @ !all;
               (* free half *)
               List.iteri
                 (fun i h -> if i mod 2 = 0 then ignore (Handle.Table.free table h))
                 hs)
             sizes;
           let live = ref 0 in
           Handle.Table.iter table (fun _ _ -> incr live);
           !live = Handle.Table.live_count table));
  ]

let match_bits_tests =
  [
    Alcotest.test_case "exact match without ignore bits" `Quick (fun () ->
        let bits = Match_bits.of_int 0xCAFE in
        Alcotest.(check bool) "same" true
          (Match_bits.matches ~mbits:bits ~match_bits:bits
             ~ignore_bits:Match_bits.zero);
        Alcotest.(check bool) "different" false
          (Match_bits.matches ~mbits:(Match_bits.of_int 0xBEEF) ~match_bits:bits
             ~ignore_bits:Match_bits.zero));
    Alcotest.test_case "ignore bits are don't-cares" `Quick (fun () ->
        (* Low 16 bits ignored: anything in them matches. *)
        let ignore_bits = Match_bits.mask ~shift:0 ~width:16 in
        Alcotest.(check bool) "low bits ignored" true
          (Match_bits.matches ~mbits:(Match_bits.of_int 0x12340FFF)
             ~match_bits:(Match_bits.of_int 0x12340000) ~ignore_bits);
        Alcotest.(check bool) "high bits still matter" false
          (Match_bits.matches ~mbits:(Match_bits.of_int 0x99990FFF)
             ~match_bits:(Match_bits.of_int 0x12340000) ~ignore_bits));
    Alcotest.test_case "all ones ignores everything" `Quick (fun () ->
        Alcotest.(check bool) "wildcard" true
          (Match_bits.matches ~mbits:(Match_bits.of_int64 0x123456789ABCDEFL)
             ~match_bits:Match_bits.zero ~ignore_bits:Match_bits.all_ones));
    Alcotest.test_case "field packing rejects overflow" `Quick (fun () ->
        Alcotest.(check bool) "fits" true
          (Match_bits.equal
             (Match_bits.field ~shift:8 ~width:8 0xFF)
             (Match_bits.of_int 0xFF00));
        Alcotest.check_raises "overflow"
          (Invalid_argument "Match_bits.field: 256 does not fit in 8 bits")
          (fun () -> ignore (Match_bits.field ~shift:8 ~width:8 256)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"field/extract round trip" ~count:500
         QCheck.(triple (int_range 0 48) (int_range 1 16) (int_range 0 65535))
         (fun (shift, width, v) ->
           QCheck.assume (shift + width <= 64);
           let v = v land ((1 lsl width) - 1) in
           let packed = Match_bits.field ~shift ~width v in
           Match_bits.extract ~shift ~width packed = v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"matches is reflexive under any mask" ~count:500
         QCheck.(pair int int)
         (fun (bits, mask) ->
           let b = Match_bits.of_int64 (Int64.of_int bits) in
           Match_bits.matches ~mbits:b ~match_bits:b
             ~ignore_bits:(Match_bits.of_int64 (Int64.of_int mask))));
  ]

let match_id_tests =
  [
    Alcotest.test_case "exact id" `Quick (fun () ->
        let mid = Match_id.of_proc (proc 3 1) in
        Alcotest.(check bool) "same" true (Match_id.matches mid (proc 3 1));
        Alcotest.(check bool) "other pid" false (Match_id.matches mid (proc 3 2));
        Alcotest.(check bool) "other nid" false (Match_id.matches mid (proc 4 1)));
    Alcotest.test_case "wildcards" `Quick (fun () ->
        Alcotest.(check bool) "any" true (Match_id.matches Match_id.any (proc 9 9));
        let nid_only = Match_id.make ~nid:(Match_id.Id 5) ~pid:Match_id.Any in
        Alcotest.(check bool) "pid wildcard" true
          (Match_id.matches nid_only (proc 5 77));
        Alcotest.(check bool) "nid fixed" false
          (Match_id.matches nid_only (proc 6 77)));
  ]

let acl_tests =
  [
    Alcotest.test_case "defaults per paper section 4.5" `Quick (fun () ->
        let acl = Acl.create ~size:4 in
        Acl.install_defaults acl ~job_id:(Match_id.make ~nid:Match_id.Any ~pid:(Match_id.Id 7));
        (* Entry 0: the job (here: any process with pid 7). *)
        Alcotest.(check bool) "job member passes" true
          (Result.is_ok (Acl.check acl ~cookie:0 ~src:(proc 1 7) ~portal_index:3));
        Alcotest.(check bool) "outsider rejected" false
          (Result.is_ok (Acl.check acl ~cookie:0 ~src:(proc 1 8) ~portal_index:3));
        (* Entry 1: system processes — any. *)
        Alcotest.(check bool) "system passes" true
          (Result.is_ok (Acl.check acl ~cookie:1 ~src:(proc 1 8) ~portal_index:0));
        (* Remaining entries deny. *)
        Alcotest.(check bool) "unset denies" false
          (Result.is_ok (Acl.check acl ~cookie:2 ~src:(proc 1 7) ~portal_index:0)));
    Alcotest.test_case "portal index restriction" `Quick (fun () ->
        let acl = Acl.create ~size:4 in
        (match
           Acl.set acl 2 { Acl.allowed_id = Match_id.any; allowed_portal = Some 5 }
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "set");
        Alcotest.(check bool) "right portal" true
          (Result.is_ok (Acl.check acl ~cookie:2 ~src:(proc 0 0) ~portal_index:5));
        (match Acl.check acl ~cookie:2 ~src:(proc 0 0) ~portal_index:6 with
        | Error Acl.Portal_mismatch -> ()
        | Ok () | Error _ -> Alcotest.fail "expected portal mismatch"));
    Alcotest.test_case "cookie out of range" `Quick (fun () ->
        let acl = Acl.create ~size:2 in
        (match Acl.check acl ~cookie:9 ~src:(proc 0 0) ~portal_index:0 with
        | Error Acl.Bad_cookie -> ()
        | Ok () | Error _ -> Alcotest.fail "expected bad cookie");
        (match Acl.set acl 9 { Acl.allowed_id = Match_id.any; allowed_portal = None } with
        | Error Errors.Invalid_ac_index -> ()
        | Ok () | Error _ -> Alcotest.fail "expected invalid index"));
  ]

let md_tests =
  [
    Alcotest.test_case "accept within bounds" `Quick (fun () ->
        let md = Md.create (Bytes.create 100) in
        (match Md.accepts md ~op:Md.Op_put ~rlength:60 ~roffset:40 with
        | Ok { Md.offset; mlength } ->
          Alcotest.(check int) "offset" 40 offset;
          Alcotest.(check int) "mlength" 60 mlength
        | Error r -> Alcotest.failf "rejected: %s" (Format.asprintf "%a" Md.pp_reject r)));
    Alcotest.test_case "reject too long without truncate" `Quick (fun () ->
        let md = Md.create (Bytes.create 100) in
        (match Md.accepts md ~op:Md.Op_put ~rlength:61 ~roffset:40 with
        | Error Md.Too_long -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Too_long"));
    Alcotest.test_case "truncate caps the length" `Quick (fun () ->
        let options = { Md.default_options with Md.truncate = true } in
        let md = Md.create ~options (Bytes.create 100) in
        (match Md.accepts md ~op:Md.Op_put ~rlength:500 ~roffset:40 with
        | Ok { Md.offset; mlength } ->
          Alcotest.(check int) "offset" 40 offset;
          Alcotest.(check int) "manipulated length" 60 mlength
        | Error _ -> Alcotest.fail "expected truncation"));
    Alcotest.test_case "operation enables" `Quick (fun () ->
        let options = { Md.default_options with Md.op_get = false } in
        let md = Md.create ~options (Bytes.create 10) in
        (match Md.accepts md ~op:Md.Op_get ~rlength:1 ~roffset:0 with
        | Error Md.Op_disabled -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Op_disabled");
        Alcotest.(check bool) "put still allowed" true
          (Result.is_ok (Md.accepts md ~op:Md.Op_put ~rlength:1 ~roffset:0)));
    Alcotest.test_case "threshold exhaustion deactivates" `Quick (fun () ->
        let md = Md.create ~threshold:(Md.Count 2) (Bytes.create 10) in
        let accept () =
          match Md.accepts md ~op:Md.Op_put ~rlength:1 ~roffset:0 with
          | Ok acc -> Md.consume md acc
          | Error r -> Alcotest.failf "%s" (Format.asprintf "%a" Md.pp_reject r)
        in
        accept ();
        accept ();
        Alcotest.(check bool) "inactive" false (Md.active md);
        (match Md.accepts md ~op:Md.Op_put ~rlength:1 ~roffset:0 with
        | Error Md.Inactive -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Inactive"));
    Alcotest.test_case "locally managed offset advances" `Quick (fun () ->
        let options = { Md.default_options with Md.manage_remote = false } in
        let md = Md.create ~options (Bytes.create 100) in
        let push len =
          match Md.accepts md ~op:Md.Op_put ~rlength:len ~roffset:9999 with
          | Ok acc ->
            Md.consume md acc;
            acc
          | Error r -> Alcotest.failf "%s" (Format.asprintf "%a" Md.pp_reject r)
        in
        let a1 = push 30 in
        let a2 = push 30 in
        Alcotest.(check int) "first at 0 (remote offset ignored)" 0 a1.Md.offset;
        Alcotest.(check int) "second right after" 30 a2.Md.offset;
        Alcotest.(check int) "local offset" 60 (Md.local_offset md);
        (match Md.accepts md ~op:Md.Op_put ~rlength:50 ~roffset:0 with
        | Error Md.Too_long -> ()
        | Ok _ | Error _ -> Alcotest.fail "slab exhausted"));
    Alcotest.test_case "consume_threshold leaves local offset alone" `Quick
      (fun () ->
        let options = { Md.default_options with Md.manage_remote = false } in
        let md = Md.create ~options ~threshold:(Md.Count 5) (Bytes.create 10) in
        (match Md.accepts md ~op:Md.Op_put ~rlength:4 ~roffset:0 with
        | Ok acc -> Md.consume md acc
        | Error _ -> Alcotest.fail "accept");
        Md.consume_threshold md;
        Alcotest.(check int) "offset preserved" 4 (Md.local_offset md);
        Alcotest.(check bool) "still active" true (Md.active md));
    Alcotest.test_case "write/read round trip" `Quick (fun () ->
        let md = Md.create (Bytes.make 16 '.') in
        Md.write md ~offset:4 ~src:(Bytes.of_string "abcd") ~src_off:0 ~len:4;
        Alcotest.(check string) "read back" "abcd"
          (Bytes.to_string (Md.read md ~offset:4 ~len:4));
        Alcotest.(check string) "rest untouched" "...."
          (Bytes.to_string (Md.read md ~offset:0 ~len:4)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"accepts never exceeds buffer" ~count:500
         QCheck.(triple (int_range 1 200) (int_range 0 400) (int_range 0 400))
         (fun (size, rlength, roffset) ->
           let options = { Md.default_options with Md.truncate = true } in
           let md = Md.create ~options (Bytes.create size) in
           match Md.accepts md ~op:Md.Op_put ~rlength ~roffset with
           | Ok { Md.offset; mlength } ->
             mlength >= 0 && offset + mlength <= size
           | Error _ -> true));
  ]

let me_tests =
  [
    Alcotest.test_case "criteria combine source and bits" `Quick (fun () ->
        let me =
          Me.create
            ~match_id:(Match_id.of_proc (proc 1 0))
            ~match_bits:(Match_bits.of_int 42) ~ignore_bits:Match_bits.zero ()
        in
        Alcotest.(check bool) "both match" true
          (Me.criteria_match me ~src:(proc 1 0) ~mbits:(Match_bits.of_int 42));
        Alcotest.(check bool) "wrong bits" false
          (Me.criteria_match me ~src:(proc 1 0) ~mbits:(Match_bits.of_int 43));
        Alcotest.(check bool) "wrong source" false
          (Me.criteria_match me ~src:(proc 2 0) ~mbits:(Match_bits.of_int 42)));
    Alcotest.test_case "md list order and removal" `Quick (fun () ->
        let me =
          Me.create ~match_id:Match_id.any ~match_bits:Match_bits.zero
            ~ignore_bits:Match_bits.all_ones ()
        in
        let table = Handle.Table.create () in
        let h1 = Handle.Table.alloc table 1 in
        let h2 = Handle.Table.alloc table 2 in
        Alcotest.(check bool) "empty" true (Me.is_empty me);
        Me.attach_md me h1;
        Me.attach_md me h2;
        Alcotest.(check int) "count" 2 (Me.md_count me);
        Alcotest.(check (option bool)) "first is h1" (Some true)
          (Option.map (Handle.equal h1) (Me.first_md me));
        Alcotest.(check bool) "remove" true (Me.remove_md me h1);
        Alcotest.(check (option bool)) "now h2 first" (Some true)
          (Option.map (Handle.equal h2) (Me.first_md me));
        Alcotest.(check bool) "remove absent" false (Me.remove_md me h1));
  ]

let sched_eq () = Sim_engine.Scheduler.create ()

let dummy_event kind =
  {
    Event.kind;
    initiator = proc 0 0;
    portal_index = 0;
    match_bits = Match_bits.zero;
    rlength = 0;
    mlength = 0;
    offset = 0;
    md_handle = Handle.none;
    md_user_ptr = 0;
    time = 0;
  }

let event_queue_tests =
  [
    Alcotest.test_case "fifo order" `Quick (fun () ->
        let q = Event.Queue.create (sched_eq ()) ~capacity:4 in
        Alcotest.(check bool) "post put" true (Event.Queue.post q (dummy_event Event.Put));
        Alcotest.(check bool) "post ack" true (Event.Queue.post q (dummy_event Event.Ack));
        (match (Event.Queue.get q, Event.Queue.get q, Event.Queue.get q) with
        | Some e1, Some e2, None ->
          Alcotest.(check string) "first" "PUT" (Event.kind_to_string e1.Event.kind);
          Alcotest.(check string) "second" "ACK" (Event.kind_to_string e2.Event.kind)
        | _ -> Alcotest.fail "expected two events"));
    Alcotest.test_case "overflow drops and counts" `Quick (fun () ->
        let q = Event.Queue.create (sched_eq ()) ~capacity:2 in
        Alcotest.(check bool) "1" true (Event.Queue.post q (dummy_event Event.Put));
        Alcotest.(check bool) "2" true (Event.Queue.post q (dummy_event Event.Put));
        Alcotest.(check bool) "full" false (Event.Queue.post q (dummy_event Event.Put));
        Alcotest.(check int) "dropped" 1 (Event.Queue.dropped q);
        Alcotest.(check int) "posted" 2 (Event.Queue.posted q);
        ignore (Event.Queue.get q);
        Alcotest.(check bool) "space again" true
          (Event.Queue.post q (dummy_event Event.Put)));
    Alcotest.test_case "circular reuse across many wraps" `Quick (fun () ->
        let q = Event.Queue.create (sched_eq ()) ~capacity:3 in
        for _ = 1 to 50 do
          Alcotest.(check bool) "post" true (Event.Queue.post q (dummy_event Event.Put));
          Alcotest.(check bool) "get" true (Event.Queue.get q <> None)
        done;
        Alcotest.(check int) "no drops" 0 (Event.Queue.dropped q));
    Alcotest.test_case "wait blocks a fiber until a post" `Quick (fun () ->
        let sched = sched_eq () in
        let q = Event.Queue.create sched ~capacity:4 in
        let woke_at = ref (-1) in
        Sim_engine.Scheduler.spawn sched (fun () ->
            let _ev = Event.Queue.wait q in
            woke_at := Sim_engine.Scheduler.now sched);
        Sim_engine.Scheduler.at sched 500 (fun () ->
            ignore (Event.Queue.post q (dummy_event Event.Reply)));
        Sim_engine.Scheduler.run sched;
        Alcotest.(check int) "woke when posted" 500 !woke_at);
    Alcotest.test_case "capacity validation" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Event.Queue.create: capacity must be positive")
          (fun () -> ignore (Event.Queue.create (sched_eq ()) ~capacity:0)));
  ]

let wire_gen =
  let open QCheck.Gen in
  let op =
    oneofl
      [
        Wire.Put_request; Wire.Ack; Wire.Get_request; Wire.Reply;
        Wire.Atomic_request; Wire.Atomic_reply;
      ]
  in
  let pid = map2 (fun nid pid -> proc nid pid) (int_range 0 4095) (int_range 0 255) in
  let data_len = int_range 0 300 in
  map (fun (op, (ini, tgt), (pt, ck), bits, (off, len), ackf) ->
      let data =
        match op with
        | Wire.Put_request | Wire.Reply -> Bytes.make len 'd'
        | Wire.Ack | Wire.Get_request | Wire.Atomic_request
        | Wire.Atomic_reply -> Bytes.empty
      in
      let atomic =
        match op with
        | Wire.Atomic_request | Wire.Atomic_reply ->
          Some
            {
              Wire.aop = List.nth Wire.all_aops (abs bits mod 3);
              operand = Int64.of_int bits;
              compare = Int64.of_int (bits / 3);
            }
        | _ -> None
      in
      {
        Wire.op;
        ack_requested = (op = Wire.Put_request && ackf);
        triggered = (op = Wire.Put_request && not ackf);
        initiator = ini;
        target = tgt;
        portal_index = pt;
        cookie = ck;
        match_bits = Match_bits.of_int64 (Int64.of_int bits);
        offset = off;
        md_handle = Handle.none;
        eq_handle = Handle.none;
        incarnation = abs bits mod 16;
        length = (match op with
                  | Wire.Put_request | Wire.Reply -> Bytes.length data
                  | Wire.Ack | Wire.Get_request -> len
                  | Wire.Atomic_request | Wire.Atomic_reply ->
                    Wire.atomic_word_size);
        data;
        atomic;
      })
    (tup6 op (pair pid pid) (pair (int_range 0 63) (int_range 0 15)) int
       (pair (int_range 0 1_000_000) data_len) bool)

let wire_arb = QCheck.make wire_gen

let wire_tests =
  [
    Alcotest.test_case "put request carries table 1 fields" `Quick (fun () ->
        let data = Bytes.of_string "payload" in
        let msg =
          Wire.put_request ~initiator:(proc 0 1) ~target:(proc 2 3)
            ~portal_index:4 ~cookie:0 ~match_bits:(Match_bits.of_int 77)
            ~offset:16 ~md_handle:Handle.none ~eq_handle:Handle.none ~data ()
        in
        (match Wire.decode (Wire.encode msg) with
        | Ok d ->
          Alcotest.(check bool) "op" true (d.Wire.op = Wire.Put_request);
          Alcotest.(check bool) "ack default" true d.Wire.ack_requested;
          Alcotest.(check int) "portal" 4 d.Wire.portal_index;
          Alcotest.(check int) "offset" 16 d.Wire.offset;
          Alcotest.(check int) "length" 7 d.Wire.length;
          Alcotest.(check bytes) "data" data d.Wire.data
        | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Wire.pp_decode_error e)));
    Alcotest.test_case "ack swaps initiator and target (table 2)" `Quick
      (fun () ->
        let msg =
          Wire.put_request ~initiator:(proc 0 1) ~target:(proc 2 3)
            ~portal_index:4 ~cookie:0 ~match_bits:(Match_bits.of_int 77)
            ~offset:0 ~md_handle:Handle.none ~eq_handle:Handle.none
            ~data:(Bytes.create 100) ()
        in
        let ack = Wire.ack_of_put msg ~mlength:60 in
        Alcotest.(check bool) "op" true (ack.Wire.op = Wire.Ack);
        Alcotest.(check string) "initiator is old target" "2:3"
          (Simnet.Proc_id.to_string ack.Wire.initiator);
        Alcotest.(check string) "target is old initiator" "0:1"
          (Simnet.Proc_id.to_string ack.Wire.target);
        Alcotest.(check int) "manipulated length" 60 ack.Wire.length;
        Alcotest.(check int) "no data" 0 (Bytes.length ack.Wire.data));
    Alcotest.test_case "get request has no event queue handle (table 3)" `Quick
      (fun () ->
        let msg =
          Wire.get_request ~initiator:(proc 0 1) ~target:(proc 2 3)
            ~portal_index:4 ~cookie:1 ~match_bits:Match_bits.zero ~offset:8
            ~md_handle:Handle.none ~rlength:512 ()
        in
        Alcotest.(check bool) "no eq" true (Handle.is_none msg.Wire.eq_handle);
        Alcotest.(check int) "rlength" 512 msg.Wire.length);
    Alcotest.test_case "reply echoes and carries data (table 4)" `Quick (fun () ->
        let get =
          Wire.get_request ~initiator:(proc 0 1) ~target:(proc 2 3)
            ~portal_index:4 ~cookie:1 ~match_bits:Match_bits.zero ~offset:8
            ~md_handle:Handle.none ~rlength:512 ()
        in
        let reply = Wire.reply_of_get get ~mlength:4 ~data:(Bytes.of_string "abcd") in
        Alcotest.(check bool) "op" true (reply.Wire.op = Wire.Reply);
        Alcotest.(check string) "swapped" "2:3"
          (Simnet.Proc_id.to_string reply.Wire.initiator);
        Alcotest.(check int) "mlength" 4 reply.Wire.length;
        Alcotest.check_raises "length mismatch rejected"
          (Invalid_argument "Wire.reply_of_get: data length disagrees with mlength")
          (fun () -> ignore (Wire.reply_of_get get ~mlength:5 ~data:Bytes.empty)));
    Alcotest.test_case "builder type errors" `Quick (fun () ->
        let get =
          Wire.get_request ~initiator:(proc 0 1) ~target:(proc 2 3)
            ~portal_index:4 ~cookie:1 ~match_bits:Match_bits.zero ~offset:8
            ~md_handle:Handle.none ~rlength:0 ()
        in
        Alcotest.check_raises "ack of get"
          (Invalid_argument "Wire.ack_of_put: not a put request") (fun () ->
            ignore (Wire.ack_of_put get ~mlength:0)));
    Alcotest.test_case "decode rejects corruption" `Quick (fun () ->
        (match Wire.decode (Bytes.create 4) with
        | Error (Wire.Truncated _) -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Truncated");
        let msg =
          Wire.get_request ~initiator:(proc 0 1) ~target:(proc 2 3)
            ~portal_index:0 ~cookie:0 ~match_bits:Match_bits.zero ~offset:0
            ~md_handle:Handle.none ~rlength:0 ()
        in
        let buf = Wire.encode msg in
        let corrupt pos v expect_name check =
          let b = Bytes.copy buf in
          Bytes.set_uint8 b pos v;
          match Wire.decode b with
          | Error e when check e -> ()
          | Ok _ | Error _ -> Alcotest.failf "expected %s" expect_name
        in
        corrupt 0 0x00 "Bad_magic" (function Wire.Bad_magic -> true | _ -> false);
        corrupt 1 0x99 "Bad_version" (function Wire.Bad_version 0x99 -> true | _ -> false);
        corrupt 2 9 "Bad_operation" (function Wire.Bad_operation 9 -> true | _ -> false));
    Alcotest.test_case "field inventories match the paper's tables" `Quick
      (fun () ->
        let names op = List.map fst (Wire.field_inventory op) in
        Alcotest.(check bool) "put lists data" true
          (List.mem "data" (names Wire.Put_request));
        Alcotest.(check bool) "put lists md for ack" true
          (List.mem "memory desc" (names Wire.Put_request));
        Alcotest.(check bool) "ack lists manipulated length" true
          (List.mem "manipulated length" (names Wire.Ack));
        Alcotest.(check bool) "get omits event queue" true
          (not (List.mem "event queue" (names Wire.Get_request)));
        Alcotest.(check bool) "reply carries data" true
          (List.mem "data" (names Wire.Reply)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"encode/decode round trip" ~count:500 wire_arb
         (fun msg ->
           match Wire.decode (Wire.encode msg) with
           | Error _ -> false
           | Ok d ->
             d.Wire.op = msg.Wire.op
             && d.Wire.ack_requested = msg.Wire.ack_requested
             && Simnet.Proc_id.equal d.Wire.initiator msg.Wire.initiator
             && Simnet.Proc_id.equal d.Wire.target msg.Wire.target
             && d.Wire.portal_index = msg.Wire.portal_index
             && d.Wire.cookie = msg.Wire.cookie
             && Match_bits.equal d.Wire.match_bits msg.Wire.match_bits
             && d.Wire.offset = msg.Wire.offset
             && d.Wire.incarnation = msg.Wire.incarnation
             && d.Wire.length = msg.Wire.length
             && Bytes.equal d.Wire.data msg.Wire.data));
  ]

let () =
  Alcotest.run "portals_types"
    [
      ("handle", handle_tests);
      ("match_bits", match_bits_tests);
      ("match_id", match_id_tests);
      ("acl", acl_tests);
      ("md", md_tests);
      ("me", me_tests);
      ("event_queue", event_queue_tests);
      ("wire", wire_tests);
    ]
