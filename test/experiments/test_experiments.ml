(* Reproduction assertions: each experiment must exhibit the *shape* the
   paper reports — who wins, by roughly what factor, where the crossover
   falls. These are the tests that say "the reproduction reproduces". *)

let tables_tests =
  [
    Alcotest.test_case "six tables with the paper's distinguishing fields"
      `Quick (fun () ->
        let tables = Experiments.Tables.run () in
        Alcotest.(check int) "count" 6 (List.length tables);
        let by_number n = List.nth tables (n - 1) in
        (* Put and reply carry payload; ack and get do not. *)
        Alcotest.(check int) "put payload" 1_024 (by_number 1).Experiments.Tables.payload_bytes;
        Alcotest.(check int) "ack payload" 0 (by_number 2).Experiments.Tables.payload_bytes;
        Alcotest.(check int) "get payload" 0 (by_number 3).Experiments.Tables.payload_bytes;
        Alcotest.(check int) "reply payload" 1_024 (by_number 4).Experiments.Tables.payload_bytes;
        let has t name = List.mem_assoc name t.Experiments.Tables.fields in
        Alcotest.(check bool) "put carries md for the ack" true (has (by_number 1) "memory desc");
        Alcotest.(check bool) "ack has manipulated length" true
          (has (by_number 2) "manipulated length");
        Alcotest.(check bool) "get has no event queue" false
          (has (by_number 3) "event queue");
        Alcotest.(check bool) "reply carries data" true (has (by_number 4) "data");
        (* The atomic extension: request carries opcode/operand/compare,
           the reply the fetched value; neither carries payload. *)
        Alcotest.(check int) "atomic request payload" 0
          (by_number 5).Experiments.Tables.payload_bytes;
        Alcotest.(check bool) "request has opcode" true
          (has (by_number 5) "atomic opcode");
        Alcotest.(check bool) "request has compare" true
          (has (by_number 5) "compare");
        Alcotest.(check bool) "reply has fetched value" true
          (has (by_number 6) "fetched value"));
  ]

let protocol_tests =
  [
    Alcotest.test_case "figure 1: SENT then PUT then ACK" `Quick (fun () ->
        let t = Experiments.Protocols.run_put () in
        let kinds =
          List.map (fun e -> e.Experiments.Protocols.kind)
            t.Experiments.Protocols.entries
        in
        Alcotest.(check (list string)) "order" [ "SENT"; "PUT"; "ACK" ] kinds;
        let times =
          List.map (fun e -> e.Experiments.Protocols.time_us)
            t.Experiments.Protocols.entries
        in
        Alcotest.(check bool) "strictly increasing" true
          (List.sort compare times = times));
    Alcotest.test_case "figure 2: GET then REPLY" `Quick (fun () ->
        let t = Experiments.Protocols.run_get () in
        let kinds =
          List.map (fun e -> e.Experiments.Protocols.kind)
            t.Experiments.Protocols.entries
        in
        Alcotest.(check (list string)) "order" [ "GET"; "REPLY" ] kinds);
  ]

let translation_tests =
  [
    Alcotest.test_case "walk visits exactly depth+1 entries" `Quick (fun () ->
        let rows = Experiments.Translation.run ~depths:[ 0; 5; 40 ] () in
        List.iter
          (fun r ->
            Alcotest.(check int)
              (Printf.sprintf "depth %d" r.Experiments.Translation.depth)
              (r.Experiments.Translation.depth + 1)
              r.Experiments.Translation.entries_walked)
          rows);
    Alcotest.test_case "host cycles grow with list depth (kernel placement)"
      `Quick (fun () ->
        match Experiments.Translation.run ~depths:[ 0; 256 ] () with
        | [ shallow; deep ] ->
          Alcotest.(check bool) "deeper steals more" true
            (deep.Experiments.Translation.host_stolen_us
            > shallow.Experiments.Translation.host_stolen_us +. 10.0)
        | _ -> Alcotest.fail "two rows expected");
  ]

let latency_tests =
  [
    Alcotest.test_case "MCP zero-length ping-pong beats 20us (section 3)"
      `Quick (fun () ->
        let row = Experiments.Latency.run_one ~iterations:20 Runtime.Offload in
        Alcotest.(check bool)
          (Printf.sprintf "rtt %.2fus < 20us" row.Experiments.Latency.rtt_us)
          true
          (row.Experiments.Latency.rtt_us < 20.0));
    Alcotest.test_case "offload is the fastest placement" `Quick (fun () ->
        match Experiments.Latency.run ~iterations:10 () with
        | fastest :: _ ->
          Alcotest.(check string) "offload first" "offload"
            fastest.Experiments.Latency.placement
        | [] -> Alcotest.fail "no rows");
  ]

let bandwidth_tests =
  [
    Alcotest.test_case "pipelining keeps the kernel path near the wire" `Quick
      (fun () ->
        let sizes = [ 262_144; 1_048_576 ] in
        let find p =
          Experiments.Bandwidth.run_one ~sizes ~count:8 p
        in
        let offload = find Runtime.Offload and rtscts = find Runtime.Rtscts in
        List.iteri
          (fun i size ->
            let o = (List.nth offload.Experiments.Bandwidth.rows i).Experiments.Bandwidth.mb_per_s in
            let k = (List.nth rtscts.Experiments.Bandwidth.rows i).Experiments.Bandwidth.mb_per_s in
            Alcotest.(check bool)
              (Printf.sprintf "size %d: rtscts %.0f within 25%% of offload %.0f"
                 size k o)
              true
              (k > o *. 0.75))
          sizes);
    Alcotest.test_case "bandwidth grows with message size" `Quick (fun () ->
        let t =
          Experiments.Bandwidth.run_one ~sizes:[ 1_024; 262_144 ] ~count:8
            Runtime.Offload
        in
        match t.Experiments.Bandwidth.rows with
        | [ small; big ] ->
          Alcotest.(check bool) "monotone" true
            (big.Experiments.Bandwidth.mb_per_s
            >= small.Experiments.Bandwidth.mb_per_s)
        | _ -> Alcotest.fail "two rows");
  ]

let fig6_tests =
  [
    Alcotest.test_case "figure 6 reproduces the paper's shape" `Quick (fun () ->
        let t =
          Experiments.Fig6.run ~iterations:2 ~work_ms:[ 0.; 10.; 30. ] ()
        in
        let series label =
          match
            List.find_opt (fun s -> s.Experiments.Fig6.label = label)
              t.Experiments.Fig6.series
          with
          | Some s -> List.map snd s.Experiments.Fig6.points
          | None -> Alcotest.failf "missing series %s" label
        in
        (match series "MPICH/GM" with
        | [ _; at10; at30 ] ->
          (* Flat: no progress during work regardless of interval. *)
          Alcotest.(check bool) "gm flat" true
            (Float.abs (at30 -. at10) < 0.2 *. at10);
          Alcotest.(check bool) "gm pays full transfer" true (at30 > 1.0)
        | _ -> Alcotest.fail "three points");
        (match series "MPICH/Portals3.0" with
        | [ _; at10; at30 ] ->
          (* Declining to (near) zero: full application bypass. *)
          Alcotest.(check bool) "portals near zero at 10ms" true (at10 < 0.1);
          Alcotest.(check bool) "portals near zero at 30ms" true (at30 < 0.1)
        | _ -> Alcotest.fail "three points");
        let gm30 = List.nth (series "MPICH/GM") 2 in
        let tests30 = List.nth (series "MPICH/GM+3tests") 2 in
        Alcotest.(check bool) "sprinkled tests recover most progress" true
          (tests30 < gm30 /. 2.));
    Alcotest.test_case "registry series match the legacy points" `Quick
      (fun () ->
        (* The figure must be readable straight out of the metrics
           snapshot: the ["fig6.wait_ms"] series per configuration is the
           same curve as the Stats.Series-backed [points] field. *)
        let t = Experiments.Fig6.run ~iterations:1 ~work_ms:[ 0.; 10. ] () in
        List.iter
          (fun s ->
            match
              Sim_engine.Metrics.Snapshot.find t.Experiments.Fig6.metrics
                ~labels:[ ("config", s.Experiments.Fig6.label) ]
                "fig6.wait_ms"
            with
            | Some (Sim_engine.Metrics.Snapshot.Series pts) ->
              Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
                s.Experiments.Fig6.label s.Experiments.Fig6.points pts
            | _ ->
              Alcotest.failf "no registry series for %s"
                s.Experiments.Fig6.label)
          t.Experiments.Fig6.series);
    Alcotest.test_case "aggregate snapshot and traces cover both backends"
      `Quick (fun () ->
        let t =
          Experiments.Fig6.run ~iterations:1 ~work_ms:[ 0.; 5. ]
            ~capture_trace:true ()
        in
        let has_labelled name config =
          List.exists
            (fun (e : Sim_engine.Metrics.Snapshot.entry) ->
              e.Sim_engine.Metrics.Snapshot.name = name
              && List.mem ("config", config) e.Sim_engine.Metrics.Snapshot.labels)
            t.Experiments.Fig6.metrics
        in
        (* Drop counters, occupancy, link utilisation and EQ depth for a GM
           and a Portals configuration, as absorbed from the world runs.
           The GM backend has no Portals NI, so its drop accounting comes
           from the port's token counter instead. *)
        List.iter
          (fun config ->
            List.iter
              (fun name ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s for %s" name config)
                  true (has_labelled name config))
              [ "cpu.occupancy"; "link.utilization"; "eq.depth" ])
          [ "MPICH/GM"; "MPICH/Portals3.0" ];
        Alcotest.(check bool) "ni drop counters for the Portals config" true
          (has_labelled "ni.drops" "MPICH/Portals3.0");
        Alcotest.(check bool) "gm drop counter for the GM config" true
          (has_labelled "gm.drops_no_token" "MPICH/GM");
        (* One span group per configuration, none empty. *)
        Alcotest.(check int) "trace groups" 4
          (List.length t.Experiments.Fig6.traces);
        List.iter
          (fun (label, spans) ->
            Alcotest.(check bool)
              (Printf.sprintf "spans for %s" label)
              true (spans <> []))
          t.Experiments.Fig6.traces;
        (* The offload configurations carry NIC-track spans; the Chrome
           export of the whole set is one JSON document. *)
        let mcp_spans = List.assoc "Portals3.0-MCP" t.Experiments.Fig6.traces in
        Alcotest.(check bool) "nic-side spans in the MCP config" true
          (List.exists
             (fun (s : Sim_engine.Trace.span) ->
               match s.Sim_engine.Trace.proc with
               | Some p -> String.length p >= 3 && String.sub p 0 3 = "nic"
               | None -> false)
             mcp_spans);
        let json =
          String.trim (Sim_engine.Trace.Chrome.to_string t.Experiments.Fig6.traces)
        in
        Alcotest.(check bool) "chrome export non-trivial" true
          (String.length json > 2
          && json.[0] = '{'
          && json.[String.length json - 1] = '}'));
  ]

let scaling_tests =
  [
    Alcotest.test_case
      "portals reservation is job-size independent; via-like grows" `Quick
      (fun () ->
        let rows = Experiments.Scaling.run_memory ~job_sizes:[ 4; 16; 64 ] () in
        (match rows with
        | [ a; b; c ] ->
          Alcotest.(check int) "reserved constant ab"
            a.Experiments.Scaling.portals_reserved
            b.Experiments.Scaling.portals_reserved;
          Alcotest.(check int) "reserved constant bc"
            b.Experiments.Scaling.portals_reserved
            c.Experiments.Scaling.portals_reserved;
          Alcotest.(check bool) "via-like grows linearly" true
            (c.Experiments.Scaling.via_like_bytes
             > 10 * a.Experiments.Scaling.via_like_bytes);
          Alcotest.(check bool) "highwater within reservation" true
            (c.Experiments.Scaling.portals_highwater
            <= c.Experiments.Scaling.portals_reserved)
        | _ -> Alcotest.fail "three rows"));
    Alcotest.test_case "collectives scale logarithmically" `Quick (fun () ->
        let rows =
          Experiments.Scaling.run_collectives ~node_counts:[ 2; 64 ] ()
        in
        match rows with
        | [ small; big ] ->
          (* 64 nodes = 6 dissemination rounds vs 1: about 6x, far from
             the 32x a linear scheme would cost. *)
          let ratio =
            big.Experiments.Scaling.barrier_us
            /. small.Experiments.Scaling.barrier_us
          in
          Alcotest.(check bool)
            (Printf.sprintf "barrier ratio %.1f in [3,12]" ratio)
            true
            (ratio >= 3.0 && ratio <= 12.0)
        | _ -> Alcotest.fail "two rows");
  ]

let drops_tests =
  [
    Alcotest.test_case "every documented drop reason fires exactly once"
      `Quick (fun () ->
        let rows = Experiments.Drops.run () in
        Alcotest.(check int) "seventeen reasons" 17 (List.length rows);
        List.iter
          (fun r ->
            Alcotest.(check int) r.Experiments.Drops.reason 1
              r.Experiments.Drops.count)
          rows);
  ]

let ablation_tests =
  [
    Alcotest.test_case "eager/rendezvous crossover at the threshold" `Quick
      (fun () ->
        let rows =
          Experiments.Ablation.run_threshold ~sizes:[ 32_768; 131_072 ] ()
        in
        match rows with
        | [ eager; rdvz ] ->
          Alcotest.(check bool) "below threshold" true
            eager.Experiments.Ablation.eager;
          Alcotest.(check bool) "eager bypasses" true
            (eager.Experiments.Ablation.wait_ms < 0.1);
          Alcotest.(check bool) "rendezvous pays at wait" true
            (rdvz.Experiments.Ablation.wait_ms > 1.0)
        | _ -> Alcotest.fail "two rows");
    Alcotest.test_case "interrupt coalescing reduces work inflation" `Quick
      (fun () ->
        match Experiments.Ablation.run_interrupts () with
        | [ per_packet; coalesced ] ->
          Alcotest.(check bool) "per-packet first" true
            per_packet.Experiments.Ablation.per_packet_interrupt;
          Alcotest.(check bool) "coalescing steals less" true
            (coalesced.Experiments.Ablation.host_stolen_ms
            < per_packet.Experiments.Ablation.host_stolen_ms);
          Alcotest.(check bool) "work inflated beyond nominal either way" true
            (coalesced.Experiments.Ablation.work_elapsed_ms > 20.0)
        | _ -> Alcotest.fail "two rows");
  ]

let rel_loss_sweep_tests =
  [
    Alcotest.test_case
      "reliable goodput degrades monotonically, zero visible loss" `Quick
      (fun () ->
        let rows =
          Experiments.Rel_loss_sweep.run ~seeds:[ 1; 2 ] ~msgs:120 ()
        in
        Alcotest.(check int) "one row per loss rate"
          (List.length Experiments.Rel_loss_sweep.default_losses)
          (List.length rows);
        let rec pairwise = function
          | a :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "goodput %.1f at %.2f >= %.1f at %.2f"
                 a.Experiments.Rel_loss_sweep.reliable
                   .Experiments.Rel_loss_sweep.goodput_mbps
                 a.Experiments.Rel_loss_sweep.loss
                 b.Experiments.Rel_loss_sweep.reliable
                   .Experiments.Rel_loss_sweep.goodput_mbps
                 b.Experiments.Rel_loss_sweep.loss)
              true
              (a.Experiments.Rel_loss_sweep.reliable
                 .Experiments.Rel_loss_sweep.goodput_mbps
              >= b.Experiments.Rel_loss_sweep.reliable
                   .Experiments.Rel_loss_sweep.goodput_mbps);
            pairwise rest
          | _ -> ()
        in
        pairwise rows;
        List.iter
          (fun r ->
            (* Below the retry budget, the application sees every message. *)
            Alcotest.(check int)
              (Printf.sprintf "all delivered at loss %.2f"
                 r.Experiments.Rel_loss_sweep.loss)
              120
              r.Experiments.Rel_loss_sweep.reliable
                .Experiments.Rel_loss_sweep.delivered;
            Alcotest.(check int) "no budget exhaustion" 0
              r.Experiments.Rel_loss_sweep.reliable
                .Experiments.Rel_loss_sweep.retries_exhausted;
            (* The raw fabric pays for its speed with silent loss. *)
            if r.Experiments.Rel_loss_sweep.loss > 0.02 then
              Alcotest.(check bool) "raw fabric loses messages" true
                (r.Experiments.Rel_loss_sweep.raw
                   .Experiments.Rel_loss_sweep.delivered
                < 120))
          rows);
  ]

let crash_restart_tests =
  [
    Alcotest.test_case "both backends survive the restart schedule" `Quick
      (fun () ->
        (* The whole point of the subsystem: a mid-run crash + restart
           must terminate cleanly (no Scheduler.Deadlock escaping run)
           and show the §3 asymmetry between the backends. *)
        let rows = Experiments.Crash_restart.run () in
        let find b =
          List.find
            (fun r -> r.Experiments.Crash_restart.backend = b)
            rows
        in
        let p = find "portals" and g = find "gm" in
        (* Portals: the survivor acted zero times — no send errors, no
           reconnects — and the fabric absorbed the downtime traffic. *)
        Alcotest.(check int) "portals: no send errors" 0
          p.Experiments.Crash_restart.send_errors;
        Alcotest.(check int) "portals: no reconnects" 0
          p.Experiments.Crash_restart.reconnects;
        Alcotest.(check bool) "portals: downtime loss is the fabric's" true
          (p.Experiments.Crash_restart.drops_crashed > 0);
        (* GM: the survivor's connection state died with the peer. *)
        Alcotest.(check bool) "gm: sends failed at the survivor" true
          (g.Experiments.Crash_restart.send_errors > 0);
        Alcotest.(check bool) "gm: needed at least one reconnect" true
          (g.Experiments.Crash_restart.reconnects >= 1);
        (* Both resumed: traffic reached the restarted incarnation. *)
        Alcotest.(check bool) "portals: post-restart delivery" true
          (p.Experiments.Crash_restart.recovery_us >= 0.);
        Alcotest.(check bool) "gm: post-restart delivery" true
          (g.Experiments.Crash_restart.recovery_us >= 0.);
        Alcotest.(check bool) "portals delivered at least as much" true
          (p.Experiments.Crash_restart.delivered
          >= g.Experiments.Crash_restart.delivered);
        List.iter
          (fun r ->
            Alcotest.(check int) "accounting: sent = delivered + lost"
              r.Experiments.Crash_restart.sent
              (r.Experiments.Crash_restart.delivered
              + r.Experiments.Crash_restart.lost))
          rows);
    Alcotest.test_case "same seed replays the same outcome" `Quick (fun () ->
        let strip rows =
          List.map
            (fun r ->
              ( r.Experiments.Crash_restart.backend,
                r.Experiments.Crash_restart.delivered,
                r.Experiments.Crash_restart.send_errors,
                r.Experiments.Crash_restart.recovery_us ))
            rows
        in
        Alcotest.(check bool) "bit-exact replay" true
          (strip (Experiments.Crash_restart.run ~seed:3 ())
          = strip (Experiments.Crash_restart.run ~seed:3 ())));
  ]

let perf_tests =
  let open Experiments.Perf in
  (* Synthetic records use values exactly representable at the JSON
     writer's printed precision, so round trips compare cleanly. *)
  let mk ?(events = 5000) id eps =
    {
      id;
      wall_s = 0.125;
      sim_events = events;
      fibers = 3;
      sim_time_us = 250.125;
      events_per_sec = eps;
      peak_heap_words = 4096;
    }
  in
  [
    Alcotest.test_case "json round trip preserves every field" `Quick
      (fun () ->
        let records = [ mk "T1" 40_000.0; mk ~events:20_656 "S3" 1.65e6 ] in
        match of_json_string (to_json records) with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok back ->
          Alcotest.(check int) "count" 2 (List.length back);
          List.iter2
            (fun a b ->
              Alcotest.(check string) "id" a.id b.id;
              Alcotest.(check int) "sim_events" a.sim_events b.sim_events;
              Alcotest.(check int) "fibers" a.fibers b.fibers;
              Alcotest.(check (float 1e-9)) "sim_time_us" a.sim_time_us
                b.sim_time_us;
              Alcotest.(check (float 1e-9)) "wall_s" a.wall_s b.wall_s;
              Alcotest.(check (float 0.11)) "events_per_sec" a.events_per_sec
                b.events_per_sec;
              Alcotest.(check int) "peak_heap_words" a.peak_heap_words
                b.peak_heap_words)
            records back);
    Alcotest.test_case "parser rejects malformed input" `Quick (fun () ->
        List.iter
          (fun s ->
            match of_json_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ ""; "{"; "{\"records\": [}"; "[1,2,3]"; "{\"schema\": 42}" ]);
    Alcotest.test_case "gate flags drops beyond tolerance only" `Quick
      (fun () ->
        let baseline = [ mk "T1" 100_000.0; mk "F5" 200_000.0 ] in
        let current = [ mk "T1" 80_000.0; mk "F5" 195_000.0 ] in
        (* T1 dropped 20%: inside a 25% tolerance, outside a 10% one. *)
        Alcotest.(check int) "25% passes" 0
          (List.length (compare_baseline ~baseline ~current ~tolerance_pct:25.));
        (match compare_baseline ~baseline ~current ~tolerance_pct:10. with
        | [ r ] ->
          Alcotest.(check string) "flagged id" "T1" r.r_id;
          Alcotest.(check (float 1e-6)) "ratio" 0.8 r.r_ratio
        | rs -> Alcotest.failf "expected one regression, got %d" (List.length rs)));
    Alcotest.test_case "gate skips tiny runs and unmatched ids" `Quick
      (fun () ->
        (* 500 events finish in microseconds; their events/sec is timer
           noise, so even a 10x drop must not trip the gate. Ids present
           on only one side are ignored rather than failed. *)
        let baseline = [ mk ~events:500 "F1" 1e6; mk "OLD" 100_000.0 ] in
        let current = [ mk ~events:500 "F1" 1e5; mk "NEW" 50.0 ] in
        Alcotest.(check int) "nothing flagged" 0
          (List.length (compare_baseline ~baseline ~current ~tolerance_pct:25.)));
    Alcotest.test_case "same-seed runs agree on sim-side fields" `Slow
      (fun () ->
        let a = all ~quick:true () in
        let b = all ~quick:true () in
        Alcotest.(check (list string)) "same ids"
          (List.map (fun r -> r.id) a)
          (List.map (fun r -> r.id) b);
        List.iter2
          (fun ra rb ->
            Alcotest.(check int) (ra.id ^ " sim_events") ra.sim_events
              rb.sim_events;
            Alcotest.(check int) (ra.id ^ " fibers") ra.fibers rb.fibers;
            Alcotest.(check (float 1e-6)) (ra.id ^ " sim_time_us")
              ra.sim_time_us rb.sim_time_us)
          a b);
    Alcotest.test_case "scaling sweep rows are well-formed" `Quick (fun () ->
        let rows =
          Experiments.Scaling.run_perf ~node_counts:[ 16; 32 ] ~rounds:2 ()
        in
        match rows with
        | [ small; big ] ->
          Alcotest.(check int) "nodes" 16 small.Experiments.Scaling.p_nodes;
          Alcotest.(check bool) "events grow with nodes" true
            (big.Experiments.Scaling.p_sim_events
            > small.Experiments.Scaling.p_sim_events);
          List.iter
            (fun r ->
              Alcotest.(check bool) "positive throughput" true
                (r.Experiments.Scaling.p_events_per_sec > 0.))
            rows
        | _ -> Alcotest.fail "two rows");
  ]

let chaos_tests =
  let open Experiments.Chaos in
  [
    Alcotest.test_case "quick campaign holds every invariant" `Quick (fun () ->
        let t = run ~quick:true ~seed:0 () in
        Alcotest.(check int) "one report per axis cell"
          (List.length (axis_cells ~seed:0))
          (List.length t.reports);
        List.iter
          (fun r ->
            Alcotest.(check (list string))
              (Reliability.Chaos.describe r.cell ^ ": no violations")
              [] r.violations;
            Alcotest.(check bool) "streams delivered" true (r.delivered > 0))
          t.reports;
        Alcotest.(check bool) "campaign verdict" true (zero_violations t);
        Alcotest.(check int) "violation count agrees" 0 (total_violations t));
    Alcotest.test_case "fault axes really injected their faults" `Quick
      (fun () ->
        let by_name = axis_cells ~seed:0 in
        let report name =
          run_cell ~quick:true (List.assoc name by_name)
        in
        let corrupt = report "corrupt" in
        Alcotest.(check bool) "corruption hit the wire" true
          (corrupt.corrupts_injected > 0);
        Alcotest.(check bool) "damage was caught, not absorbed" true
          (corrupt.rel_corrupt_drops + corrupt.checksum_drops > 0);
        let part = report "partition" in
        Alcotest.(check bool) "the cut severed frames" true
          (part.drops_partitioned > 0);
        let delayed = report "delay" in
        Alcotest.(check bool) "jitter was applied" true
          (delayed.delays_injected > 0));
    Alcotest.test_case "clean control cell stays on the legacy encoding"
      `Quick (fun () ->
        (* The control run must not silently switch the wire format:
           fig5/fig6 byte-identity depends on it. *)
        let clean = List.assoc "clean" (axis_cells ~seed:0) in
        Alcotest.(check bool) "cell is clean" false
          (Reliability.Chaos.faulty clean);
        let r = run_cell ~quick:true clean in
        Alcotest.(check (list string)) "no violations" [] r.violations;
        Alcotest.(check int) "no checksum drops possible" 0 r.checksum_drops);
    Alcotest.test_case "campaign is deterministic per seed" `Quick (fun () ->
        let digest t =
          List.map
            (fun r ->
              (Reliability.Chaos.describe r.cell, r.delivered,
               r.corrupts_injected, r.drops_partitioned))
            t.reports
        in
        let a = run ~quick:true ~seed:3 () and b = run ~quick:true ~seed:3 () in
        Alcotest.(check bool) "bit-exact replay" true (digest a = digest b));
  ]

let congestion_tests =
  let open Experiments.Congestion in
  [
    Alcotest.test_case "sweep rows are well-formed and deterministic" `Quick
      (fun () ->
        let go () =
          run ~nodes:16 ~topologies:[ "full"; "torus2d" ] ~msgs_per_peer:2 ()
        in
        let rows = go () in
        Alcotest.(check int) "2 topologies x 2 patterns" 4 (List.length rows);
        List.iter
          (fun r ->
            Alcotest.(check bool) "goodput positive" true (r.c_goodput_mbs > 0.);
            Alcotest.(check bool) "something delivered" true (r.c_messages > 0);
            Alcotest.(check int) "no drops without a queue limit" 0 r.c_drops)
          rows;
        (* All-to-all on 16 nodes delivers 16*15 messages per round; the
           4x4 torus halo delivers 16*4. *)
        let find topo pat =
          List.find (fun r -> r.c_topology = topo && r.c_pattern = pat) rows
        in
        Alcotest.(check int) "all-to-all count" (16 * 15 * 2)
          (find "torus2d:4x4" "all-to-all").c_messages;
        Alcotest.(check int) "halo count" (16 * 4 * 2)
          (find "torus2d:4x4" "nearest-neighbor").c_messages;
        Alcotest.(check bool) "same seed, same rows" true (go () = rows));
    Alcotest.test_case
      "4x4 torus: all-to-all congests below nearest-neighbor" `Quick
      (fun () ->
        let registry = Sim_engine.Metrics.create () in
        let rows = run ~nodes:16 ~topologies:[ "torus2d:4x4" ] ~registry () in
        let find pat = List.find (fun r -> r.c_pattern = pat) rows in
        let a2a = find "all-to-all" and nn = find "nearest-neighbor" in
        Alcotest.(check bool) "goodput strictly below" true
          (a2a.c_goodput_mbs < nn.c_goodput_mbs);
        Alcotest.(check bool) "shared links queued" true (a2a.c_peak_queue > 0);
        (* The per-link instruments land in the registry under the
           sweep's labels. *)
        let snap = Sim_engine.Metrics.snapshot registry in
        Alcotest.(check bool) "nonzero link.queue_depth recorded" true
          (List.exists
             (fun e ->
               e.Sim_engine.Metrics.Snapshot.name = "link.queue_depth"
               && List.mem ("pattern", "all-to-all")
                    e.Sim_engine.Metrics.Snapshot.labels
               &&
               match e.Sim_engine.Metrics.Snapshot.value with
               | Sim_engine.Metrics.Snapshot.Gauge g -> g > 0.
               | _ -> false)
             snap));
    Alcotest.test_case "full topology leaves every pattern uncontended" `Quick
      (fun () ->
        let rows = run ~nodes:16 ~topologies:[ "full" ] () in
        List.iter
          (fun r ->
            Alcotest.(check int) (r.c_pattern ^ " no queueing") 0
              r.c_peak_queue)
          rows);
    Alcotest.test_case "explicit full topology reproduces seed fig5/fig6"
      `Slow (fun () ->
        let fig5 () = Experiments.Fig5.run Experiments.Fig5.default_params in
        let fig6 () =
          let t = Experiments.Fig6.run ~iterations:1 ~work_ms:[ 0.; 10. ] () in
          List.map
            (fun s -> (s.Experiments.Fig6.label, s.Experiments.Fig6.points))
            t.Experiments.Fig6.series
        in
        let seed5 = fig5 () and seed6 = fig6 () in
        Runtime.set_run_env ~topology:"full" ();
        let full5 = fig5 () and full6 = fig6 () in
        Runtime.set_run_env ~topology:"" ();
        Alcotest.(check bool) "fig5 identical" true (seed5 = full5);
        Alcotest.(check bool) "fig6 identical" true (seed6 = full6));
  ]

let () =
  Alcotest.run "experiments"
    [
      ("perf", perf_tests);
      ("tables", tables_tests);
      ("protocols", protocol_tests);
      ("translation", translation_tests);
      ("latency", latency_tests);
      ("bandwidth", bandwidth_tests);
      ("fig6", fig6_tests);
      ("scaling", scaling_tests);
      ("drops", drops_tests);
      ("ablation", ablation_tests);
      ("rel_loss_sweep", rel_loss_sweep_tests);
      ("crash_restart", crash_restart_tests);
      ("congestion", congestion_tests);
      ("chaos", chaos_tests);
    ]
