(* MPI layer tests, run against both backends (Portals and GM) through the
   same scenarios, plus backend-specific progress-semantics tests — the
   behavioural split that Figure 6 of the paper measures. *)

open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

type backend = Portals_b | Gm_b



(* Build an [n]-rank world and run [f ep rank] in one fiber per rank. *)
let with_world ?(n = 2) ?(profile = Simnet.Profile.myrinet_mcp) ~backend f =
  let sched = Scheduler.create () in
  let fabric = Simnet.Fabric.create sched ~profile ~nodes:n in
  let tp = Simnet.Transport.offload fabric in
  let ranks = Array.init n (fun r -> proc r 0) in
  let endpoints =
    Array.init n (fun rank ->
        match backend with
        | Portals_b -> Mpi.create_portals tp ~ranks ~rank ()
        | Gm_b -> Mpi.create_gm tp ~ranks ~rank ())
  in
  Array.iteri
    (fun rank ep ->
      Scheduler.spawn sched ~name:(Printf.sprintf "rank%d" rank) (fun () ->
          f ep rank))
    endpoints;
  Scheduler.run sched;
  (sched, endpoints)

let bytes_of_string = Bytes.of_string

(* One test case per backend. *)
let per_backend name speed body =
  [
    Alcotest.test_case (name ^ " [portals]") speed (fun () -> body Portals_b);
    Alcotest.test_case (name ^ " [gm]") speed (fun () -> body Gm_b);
  ]

let basic_tests =
  per_backend "blocking send/recv round trip" `Quick (fun backend ->
      let got = ref None in
      ignore
        (with_world ~backend (fun ep rank ->
             if rank = 0 then Mpi.send ep ~dst:1 ~tag:7 (bytes_of_string "hello mpi")
             else begin
               let buffer = Bytes.create 64 in
               let st = Mpi.recv ep ~source:0 ~tag:7 buffer in
               got := Some (st, Bytes.sub_string buffer 0 st.Mpi.length)
             end));
      match !got with
      | Some (st, data) ->
        Alcotest.(check int) "source" 0 st.Mpi.source;
        Alcotest.(check int) "tag" 7 st.Mpi.tag;
        Alcotest.(check string) "data" "hello mpi" data
      | None -> Alcotest.fail "no message")
  @ per_backend "isend/irecv with waitall" `Quick (fun backend ->
        let results = ref [] in
        ignore
          (with_world ~backend (fun ep rank ->
               if rank = 0 then begin
                 let reqs =
                   List.init 5 (fun i ->
                       Mpi.isend ep ~dst:1 ~tag:i
                         (bytes_of_string (Printf.sprintf "msg%d" i)))
                 in
                 ignore (Mpi.waitall ep reqs)
               end
               else begin
                 let bufs = List.init 5 (fun _ -> Bytes.create 16) in
                 let reqs =
                   List.mapi (fun i b -> Mpi.irecv ep ~source:0 ~tag:i b) bufs
                 in
                 let sts = Mpi.waitall ep reqs in
                 results :=
                   List.map2
                     (fun st b -> (st.Mpi.tag, Bytes.sub_string b 0 st.Mpi.length))
                     sts bufs
               end));
        Alcotest.(check (list (pair int string)))
          "all five in tag order"
          [ (0, "msg0"); (1, "msg1"); (2, "msg2"); (3, "msg3"); (4, "msg4") ]
          !results)
  @ per_backend "zero-length message" `Quick (fun backend ->
        let st = ref None in
        ignore
          (with_world ~backend (fun ep rank ->
               if rank = 0 then Mpi.send ep ~dst:1 ~tag:3 Bytes.empty
               else st := Some (Mpi.recv ep ~source:0 ~tag:3 (Bytes.create 0))));
        match !st with
        | Some s ->
          Alcotest.(check int) "length" 0 s.Mpi.length;
          Alcotest.(check int) "tag" 3 s.Mpi.tag
        | None -> Alcotest.fail "no status")
  @ per_backend "large message uses rendezvous and is intact" `Quick
      (fun backend ->
        (* Above both backends' eager thresholds. *)
        let len = 200_000 in
        let payload = Bytes.init len (fun i -> Char.chr (i * 7 mod 256)) in
        let ok = ref false in
        ignore
          (with_world ~backend (fun ep rank ->
               if rank = 0 then Mpi.send ep ~dst:1 ~tag:1 payload
               else begin
                 let buffer = Bytes.create len in
                 let st = Mpi.recv ep ~source:0 ~tag:1 buffer in
                 ok := st.Mpi.length = len && Bytes.equal buffer payload
               end));
        Alcotest.(check bool) "intact" true !ok)

let matching_tests =
  per_backend "tags select among out-of-order receives" `Quick (fun backend ->
      let a = ref "" and b = ref "" in
      ignore
        (with_world ~backend (fun ep rank ->
             if rank = 0 then begin
               Mpi.send ep ~dst:1 ~tag:10 (bytes_of_string "for-ten");
               Mpi.send ep ~dst:1 ~tag:20 (bytes_of_string "for-twenty")
             end
             else begin
               (* Post in the opposite order of sending. *)
               let buf20 = Bytes.create 32 and buf10 = Bytes.create 32 in
               let r20 = Mpi.irecv ep ~source:0 ~tag:20 buf20 in
               let r10 = Mpi.irecv ep ~source:0 ~tag:10 buf10 in
               let st20 = Mpi.wait ep r20 and st10 = Mpi.wait ep r10 in
               a := Bytes.sub_string buf10 0 st10.Mpi.length;
               b := Bytes.sub_string buf20 0 st20.Mpi.length
             end));
      Alcotest.(check string) "tag 10" "for-ten" !a;
      Alcotest.(check string) "tag 20" "for-twenty" !b)
  @ per_backend "any_source and any_tag wildcards" `Quick (fun backend ->
        let seen = ref [] in
        ignore
          (with_world ~n:3 ~backend (fun ep rank ->
               if rank = 1 || rank = 2 then
                 Mpi.send ep ~dst:0 ~tag:(100 + rank)
                   (bytes_of_string (Printf.sprintf "from%d" rank))
               else
                 for _ = 1 to 2 do
                   let buffer = Bytes.create 16 in
                   let st = Mpi.recv ep buffer in
                   seen := (st.Mpi.source, st.Mpi.tag) :: !seen
                 done));
        let sorted = List.sort compare !seen in
        Alcotest.(check (list (pair int int)))
          "both arrived with real source/tag"
          [ (1, 101); (2, 102) ]
          sorted)
  @ per_backend "same-envelope messages match receives in order" `Quick
      (fun backend ->
        let got = ref [] in
        ignore
          (with_world ~backend (fun ep rank ->
               if rank = 0 then
                 for i = 1 to 4 do
                   Mpi.send ep ~dst:1 ~tag:5
                     (bytes_of_string (Printf.sprintf "m%d" i))
                 done
               else
                 for _ = 1 to 4 do
                   let buffer = Bytes.create 8 in
                   let st = Mpi.recv ep ~source:0 ~tag:5 buffer in
                   got := Bytes.sub_string buffer 0 st.Mpi.length :: !got
                 done));
        Alcotest.(check (list string)) "order preserved"
          [ "m1"; "m2"; "m3"; "m4" ]
          (List.rev !got))
let matching_tests =
  matching_tests
  @ per_backend "unexpected messages are buffered and claimed" `Quick
      (fun backend ->
        let got = ref [] in
        let sched = Scheduler.create () in
        let fabric =
          Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
        in
        let tp = Simnet.Transport.offload fabric in
        let ranks = [| proc 0 0; proc 1 0 |] in
        let mk rank =
          match backend with
          | Portals_b -> Mpi.create_portals tp ~ranks ~rank ()
          | Gm_b -> Mpi.create_gm tp ~ranks ~rank ()
        in
        let ep0 = mk 0 and ep1 = mk 1 in
        Scheduler.spawn sched (fun () ->
            Mpi.send ep0 ~dst:1 ~tag:1 (bytes_of_string "early-bird");
            Mpi.send ep0 ~dst:1 ~tag:2 (bytes_of_string "second"));
        Scheduler.spawn sched (fun () ->
            (* Post receives long after arrival: both were unexpected. *)
            Scheduler.delay sched (Time_ns.ms 10.0);
            let b2 = Bytes.create 32 and b1 = Bytes.create 32 in
            let st2 = Mpi.recv ep1 ~source:0 ~tag:2 b2 in
            let st1 = Mpi.recv ep1 ~source:0 ~tag:1 b1 in
            got :=
              [
                Bytes.sub_string b1 0 st1.Mpi.length;
                Bytes.sub_string b2 0 st2.Mpi.length;
              ]);
        Scheduler.run sched;
        Alcotest.(check (list string)) "claimed out of order"
          [ "early-bird"; "second" ] !got)
  @ per_backend "receive truncates an over-long message" `Quick (fun backend ->
        let st = ref None in
        ignore
          (with_world ~backend (fun ep rank ->
               if rank = 0 then
                 Mpi.send ep ~dst:1 ~tag:0 (bytes_of_string "0123456789")
               else begin
                 let buffer = Bytes.create 4 in
                 let s = Mpi.recv ep ~source:0 ~tag:0 buffer in
                 st := Some (s, Bytes.to_string buffer)
               end));
        match !st with
        | Some (s, data) ->
          Alcotest.(check int) "length capped" 4 s.Mpi.length;
          Alcotest.(check string) "prefix" "0123" data
        | None -> Alcotest.fail "no status")

let collective_tests =
  per_backend "barrier synchronises all ranks" `Quick (fun backend ->
      let sched = Scheduler.create () in
      let fabric =
        Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:4
      in
      let tp = Simnet.Transport.offload fabric in
      let ranks = Array.init 4 (fun r -> proc r 0) in
      let mk rank =
        match backend with
        | Portals_b -> Mpi.create_portals tp ~ranks ~rank ()
        | Gm_b -> Mpi.create_gm tp ~ranks ~rank ()
      in
      let eps = Array.init 4 mk in
      let leave = Array.make 4 0 in
      Array.iteri
        (fun rank ep ->
          Scheduler.spawn sched (fun () ->
              Scheduler.delay sched (Time_ns.ms (float_of_int rank));
              Mpi.barrier ep;
              leave.(rank) <- Scheduler.now sched))
        eps;
      Scheduler.run sched;
      let slowest_arrival = Time_ns.ms 3.0 in
      Array.iteri
        (fun rank t ->
          Alcotest.(check bool)
            (Printf.sprintf "rank %d left after slowest arrival" rank)
            true (t >= slowest_arrival))
        leave)
  @ per_backend "ring exchange across eight ranks" `Quick (fun backend ->
        let n = 8 in
        let sums = Array.make n (-1) in
        ignore
          (with_world ~n ~backend (fun ep rank ->
               let next = (rank + 1) mod n and prev = (rank - 1 + n) mod n in
               let payload = Bytes.make 1 (Char.chr rank) in
               let r = Mpi.irecv ep ~source:prev ~tag:0 (Bytes.create 1) in
               let s = Mpi.isend ep ~dst:next ~tag:0 payload in
               let _st = Mpi.wait ep r in
               ignore (Mpi.wait ep s);
               sums.(rank) <- prev));
        Array.iteri
          (fun rank v ->
            Alcotest.(check int)
              (Printf.sprintf "rank %d heard from prev" rank)
              ((rank - 1 + n) mod n)
              v)
          sums)

(* The heart of the reproduction: progress during a compute interval. *)
let progress_tests =
  [
    Alcotest.test_case "portals backend progresses during compute" `Quick
      (fun () ->
        (* 10 x 50KB messages pre-posted; receiver computes 50 ms with NO
           library calls. Under Portals the transfers complete during the
           compute, so the trailing waitall is nearly instant. *)
        let wait_time = ref 0 in
        let sched = Scheduler.create () in
        let fabric =
          Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
        in
        let tp = Simnet.Transport.offload fabric in
        let ranks = [| proc 0 0; proc 1 0 |] in
        let ep0 = Mpi.create_portals tp ~ranks ~rank:0 () in
        let ep1 = Mpi.create_portals tp ~ranks ~rank:1 () in
        Scheduler.spawn sched (fun () ->
            for i = 0 to 9 do
              Mpi.send ep0 ~dst:1 ~tag:i (Bytes.create 50_000)
            done);
        Scheduler.spawn sched (fun () ->
            let reqs =
              List.init 10 (fun i ->
                  Mpi.irecv ep1 ~source:0 ~tag:i (Bytes.create 50_000))
            in
            let cpu = Simnet.Node.host_cpu (Simnet.Fabric.node fabric 1) in
            Cpu.compute cpu (Time_ns.ms 50.0);
            let before = Scheduler.now sched in
            ignore (Mpi.waitall ep1 reqs);
            wait_time := Time_ns.sub (Scheduler.now sched) before);
        Scheduler.run sched;
        (* All data moved during the work interval: the wait is bounded by
           library bookkeeping, far below one message's transfer time. *)
        Alcotest.(check bool)
          (Printf.sprintf "wait %s is tiny" (Time_ns.to_string !wait_time))
          true
          (!wait_time < Time_ns.us 200.0));
    Alcotest.test_case "gm backend makes no rendezvous progress during compute"
      `Quick (fun () ->
        (* Same shape, GM backend, 50KB > its eager threshold: the RTS
           sits unanswered until the receiver's waitall. *)
        let wait_time = ref 0 in
        let sched = Scheduler.create () in
        let fabric =
          Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
        in
        let tp = Simnet.Transport.offload fabric in
        let ranks = [| proc 0 0; proc 1 0 |] in
        let ep0 = Mpi.create_gm tp ~ranks ~rank:0 () in
        let ep1 = Mpi.create_gm tp ~ranks ~rank:1 () in
        Scheduler.spawn sched (fun () ->
            let reqs =
              List.init 10 (fun i -> Mpi.isend ep0 ~dst:1 ~tag:i (Bytes.create 50_000))
            in
            ignore (Mpi.waitall ep0 reqs));
        Scheduler.spawn sched (fun () ->
            let reqs =
              List.init 10 (fun i ->
                  Mpi.irecv ep1 ~source:0 ~tag:i (Bytes.create 50_000))
            in
            let cpu = Simnet.Node.host_cpu (Simnet.Fabric.node fabric 1) in
            Cpu.compute cpu (Time_ns.ms 50.0);
            let before = Scheduler.now sched in
            ignore (Mpi.waitall ep1 reqs);
            wait_time := Time_ns.sub (Scheduler.now sched) before);
        Scheduler.run sched;
        (* The whole 500KB crosses the wire inside the wait. *)
        let min_transfer = Simnet.Profile.tx_time Simnet.Profile.myrinet_mcp 500_000 in
        Alcotest.(check bool)
          (Printf.sprintf "wait %s covers the transfers" (Time_ns.to_string !wait_time))
          true
          (!wait_time > min_transfer));
    Alcotest.test_case "test calls during work let GM progress" `Quick (fun () ->
        (* The paper's side experiment: three MPI calls inside the work
           interval let MPICH/GM make significant progress. *)
        let run with_tests =
          let wait_time = ref 0 in
          let sched = Scheduler.create () in
          let fabric =
            Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp
              ~nodes:2
          in
          let tp = Simnet.Transport.offload fabric in
          let ranks = [| proc 0 0; proc 1 0 |] in
          let ep0 = Mpi.create_gm tp ~ranks ~rank:0 () in
          let ep1 = Mpi.create_gm tp ~ranks ~rank:1 () in
          Scheduler.spawn sched (fun () ->
              let reqs =
                List.init 10 (fun i ->
                    Mpi.isend ep0 ~dst:1 ~tag:i (Bytes.create 50_000))
              in
              ignore (Mpi.waitall ep0 reqs));
          Scheduler.spawn sched (fun () ->
              let reqs =
                List.init 10 (fun i ->
                    Mpi.irecv ep1 ~source:0 ~tag:i (Bytes.create 50_000))
              in
              let cpu = Simnet.Node.host_cpu (Simnet.Fabric.node fabric 1) in
              let slice = Time_ns.ms 12.5 in
              if with_tests then
                for _ = 1 to 4 do
                  Cpu.compute cpu slice;
                  Mpi.progress ep1
                done
              else Cpu.compute cpu (Time_ns.ms 50.0);
              let before = Scheduler.now sched in
              ignore (Mpi.waitall ep1 reqs);
              wait_time := Time_ns.sub (Scheduler.now sched) before);
          Scheduler.run sched;
          !wait_time
        in
        let plain = run false and sprinkled = run true in
        Alcotest.(check bool)
          (Printf.sprintf "sprinkled %s < plain %s" (Time_ns.to_string sprinkled)
             (Time_ns.to_string plain))
          true
          (sprinkled < plain / 2));
    Alcotest.test_case "portals slabs recycle across many unexpected" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let fabric =
          Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
        in
        let tp = Simnet.Transport.offload fabric in
        let ranks = [| proc 0 0; proc 1 0 |] in
        let ep0 = Mpi.create_portals tp ~ranks ~rank:0 () in
        let ep1 = Mpi.create_portals tp ~ranks ~rank:1 () in
        let rounds = 6 and per_round = 40 and len = 10_000 in
        (* 6 x 40 x 10KB = 2.4MB through 8 x 256KB of slab: recycling is
           required for this to survive. *)
        let all_ok = ref true in
        Scheduler.spawn sched (fun () ->
            for r = 0 to rounds - 1 do
              for i = 0 to per_round - 1 do
                let payload = Bytes.make len (Char.chr (65 + ((r + i) mod 26))) in
                Mpi.send ep0 ~dst:1 ~tag:((r * per_round) + i) payload
              done;
              (* Let the receiver drain before the next burst. *)
              Mpi.recv ep0 ~source:1 ~tag:999_999 (Bytes.create 1) |> ignore
            done);
        Scheduler.spawn sched (fun () ->
            for r = 0 to rounds - 1 do
              Scheduler.delay sched (Time_ns.ms 5.0);
              for i = 0 to per_round - 1 do
                let buffer = Bytes.create len in
                let st =
                  Mpi.recv ep1 ~source:0 ~tag:((r * per_round) + i) buffer
                in
                let expect = Char.chr (65 + ((r + i) mod 26)) in
                if st.Mpi.length <> len || Bytes.get buffer 0 <> expect
                   || Bytes.get buffer (len - 1) <> expect
                then all_ok := false
              done;
              Mpi.send ep1 ~dst:0 ~tag:999_999 (Bytes.create 1)
            done);
        Scheduler.run sched;
        Alcotest.(check bool) "all rounds intact" true !all_ok);
  ]

(* Differential testing: the two backends implement the same MPI
   semantics over radically different substrates (network-level matching
   vs library matching, different eager thresholds, receiver-pull vs
   CTS-data rendezvous). Any divergence in delivered data or statuses is
   a bug in one of them. *)
let run_schedule ?lossy backend ~sizes ~recv_order =
  let sched = Scheduler.create () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
  in
  (* Lossy mode: a Bernoulli wire with the reliability protocol shimmed
     underneath; MPI (either backend) must neither notice nor diverge. *)
  (match lossy with
  | None -> ()
  | Some (loss, seed) ->
    Simnet.Fabric.set_fault_model fabric
      (Some (Simnet.Fault.bernoulli ~seed ~p:loss ()));
    ignore (Reliability.attach fabric));
  let tp = Simnet.Transport.offload fabric in
  let ranks = [| proc 0 0; proc 1 0 |] in
  let mk rank =
    match backend with
    | Portals_b -> Mpi.create_portals tp ~ranks ~rank ()
    | Gm_b -> Mpi.create_gm tp ~ranks ~rank ()
  in
  let ep0 = mk 0 and ep1 = mk 1 in
  let n = List.length sizes in
  let outcomes = Array.make n (0, 0, "") in
  Scheduler.spawn sched (fun () ->
      let reqs =
        List.mapi
          (fun i len ->
            let payload = Bytes.make len (Char.chr (65 + (i mod 26))) in
            Mpi.isend ep0 ~dst:1 ~tag:(i mod 3) payload)
          sizes
      in
      (* An MPI program must complete its requests — under GM, rendezvous
         grants are only serviced inside these library calls. *)
      ignore (Mpi.waitall ep0 reqs);
      Mpi.send ep0 ~dst:1 ~tag:7 Bytes.empty);
  Scheduler.spawn sched (fun () ->
      (* Post receives in the permuted order; sizes are generous. *)
      let reqs =
        List.map
          (fun i ->
            let buffer = Bytes.create 200_000 in
            (i, buffer, Mpi.irecv ep1 ~source:0 ~tag:(i mod 3) buffer))
          recv_order
      in
      List.iter
        (fun (slot, buffer, req) ->
          let st = Mpi.wait ep1 req in
          outcomes.(slot) <-
            ( st.Mpi.source,
              st.Mpi.length,
              if st.Mpi.length = 0 then ""
              else Printf.sprintf "%c%c" (Bytes.get buffer 0)
                  (Bytes.get buffer (st.Mpi.length - 1)) ))
        reqs;
      ignore (Mpi.recv ep1 ~source:0 ~tag:7 (Bytes.create 1)));
  Scheduler.run sched;
  Array.to_list outcomes

let differential_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"portals and gm backends agree on any schedule"
         ~count:30
         QCheck.(
           pair
             (list_of_size Gen.(int_range 1 8) (int_range 0 120_000))
             small_int)
         (fun (sizes, shuffle_seed) ->
           let n = List.length sizes in
           let order = Array.init n (fun i -> i) in
           let prng = Prng.create ~seed:shuffle_seed in
           Prng.shuffle_in_place prng order;
           let recv_order = Array.to_list order in
           let a = run_schedule Portals_b ~sizes ~recv_order in
           let b = run_schedule Gm_b ~sizes ~recv_order in
           a = b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"backends agree on any schedule over a lossy fabric"
         ~count:12
         QCheck.(
           triple
             (list_of_size Gen.(int_range 1 5) (int_range 0 60_000))
             small_nat (int_range 0 2))
         (fun (sizes, seed, loss_idx) ->
           let loss = List.nth [ 0.01; 0.05; 0.1 ] loss_idx in
           let n = List.length sizes in
           let order = Array.init n (fun i -> i) in
           let prng = Prng.create ~seed in
           Prng.shuffle_in_place prng order;
           let recv_order = Array.to_list order in
           let reference = run_schedule Portals_b ~sizes ~recv_order in
           let a =
             run_schedule ~lossy:(loss, seed) Portals_b ~sizes ~recv_order
           in
           let b = run_schedule ~lossy:(loss, seed) Gm_b ~sizes ~recv_order in
           (* Both backends must survive the loss, agree with each other,
              and match the lossless outcome bit for bit. *)
           a = b && a = reference));
  ]

let fault_tests =
  [
    Alcotest.test_case "a lost message is a diagnosable deadlock" `Quick
      (fun () ->
        (* Portals assumes reliable delivery below it (section 2); inject
           a loss and the job hangs — but deterministically, with the
           blocked rank named and the drop counted at the fabric. *)
        let sched = Scheduler.create () in
        let fabric =
          Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp
            ~nodes:2
        in
        let tp = Simnet.Transport.offload fabric in
        let ranks = [| proc 0 0; proc 1 0 |] in
        let ep0 = Mpi.create_portals tp ~ranks ~rank:0 () in
        let ep1 = Mpi.create_portals tp ~ranks ~rank:1 () in
        (* Drop exactly the first sizeable message (the MPI payload put;
           barrier-less direct send keeps the schedule simple). *)
        let dropped_one = ref false in
        Simnet.Fabric.set_fault_injector fabric
          (Some
             (fun ~src:_ ~dst:_ ~len ->
               if (not !dropped_one) && len > 1_000 then begin
                 dropped_one := true;
                 true
               end
               else false));
        Scheduler.spawn sched (fun () ->
            ignore (Mpi.isend ep0 ~dst:1 ~tag:0 (Bytes.create 10_000)));
        Scheduler.spawn sched ~name:"victim" (fun () ->
            ignore (Mpi.recv ep1 ~source:0 ~tag:0 (Bytes.create 10_000)));
        (match Scheduler.run sched with
        | () -> Alcotest.fail "expected a deadlock"
        | exception Scheduler.Deadlock blocked ->
          Alcotest.(check int) "one blocked rank" 1 (List.length blocked));
        Alcotest.(check int) "fabric counted the loss" 1
          (Simnet.Fabric.stats fabric).Simnet.Fabric.drops_injected);
    Alcotest.test_case "losses before recovery do not corrupt later traffic"
      `Quick (fun () ->
        let sched = Scheduler.create () in
        let fabric =
          Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp
            ~nodes:2
        in
        let tp = Simnet.Transport.offload fabric in
        let ranks = [| proc 0 0; proc 1 0 |] in
        let ep0 = Mpi.create_portals tp ~ranks ~rank:0 () in
        let ep1 = Mpi.create_portals tp ~ranks ~rank:1 () in
        (* Lose an un-waited-for message, then heal the network; fresh
           traffic must flow normally. *)
        let failing = ref true in
        Simnet.Fabric.set_fault_injector fabric
          (Some (fun ~src:_ ~dst:_ ~len -> !failing && len > 1_000));
        let got = ref "" in
        Scheduler.spawn sched (fun () ->
            ignore (Mpi.isend ep0 ~dst:1 ~tag:0 (Bytes.create 5_000));
            Scheduler.delay sched (Time_ns.ms 1.0);
            failing := false;
            Mpi.send ep0 ~dst:1 ~tag:1 (Bytes.of_string "after the storm"));
        Scheduler.spawn sched (fun () ->
            let b = Bytes.create 32 in
            let st = Mpi.recv ep1 ~source:0 ~tag:1 b in
            got := Bytes.sub_string b 0 st.Mpi.length);
        Scheduler.run ~allow_blocked:true sched;
        Alcotest.(check string) "later message intact" "after the storm" !got);
  ]

(* A world whose rank fibers live on their own fault domains, so a node
   crash kills its resident rank. Unlike [with_world], nothing is spawned
   here — crash tests need full control over who runs where and when. *)
let crash_world ?(n = 2) ~backend () =
  let sched = Scheduler.create () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:n
  in
  let tp = Simnet.Transport.offload fabric in
  let ranks = Array.init n (fun r -> proc r 0) in
  let mk rank =
    match backend with
    | Portals_b -> Mpi.create_portals tp ~ranks ~rank ()
    | Gm_b -> Mpi.create_gm tp ~ranks ~rank ()
  in
  (sched, fabric, mk)

let crash_tests =
  per_backend "peer death fails a blocked recv instead of deadlocking" `Quick
    (fun backend ->
      let sched, fabric, mk = crash_world ~backend () in
      let ep0 = mk 0 in
      let _ep1 = mk 1 in
      let outcome = ref `Pending in
      Scheduler.spawn sched ~name:"rank0" ~domain:0 (fun () ->
          match Mpi.recv ep0 ~source:1 ~tag:0 (Bytes.create 64) with
          | _ -> outcome := `Returned
          | exception Mpi.Peer_failed r -> outcome := `Failed r);
      Scheduler.at sched (Time_ns.us 50.) (fun () ->
          Simnet.Fabric.crash fabric 1);
      (* Crucially: plain [run], no [~until] — the blocked recv must be
         woken and failed, not left to deadlock. *)
      Scheduler.run sched;
      Alcotest.(check bool) "recv raised Peer_failed 1" true
        (!outcome = `Failed 1))
  @ per_backend "on_peer_failure fires and failed_ranks reports" `Quick
      (fun backend ->
        let sched, fabric, mk = crash_world ~n:3 ~backend () in
        let ep0 = mk 0 in
        let _ep1 = mk 1 in
        let _ep2 = mk 2 in
        let seen = ref [] in
        Mpi.on_peer_failure ep0 (fun ~rank -> seen := rank :: !seen);
        Scheduler.at sched (Time_ns.us 10.) (fun () ->
            Simnet.Fabric.crash fabric 2);
        Scheduler.run sched;
        Alcotest.(check (list int)) "callback saw rank 2" [ 2 ] !seen;
        Alcotest.(check (list int)) "failed_ranks" [ 2 ]
          (Mpi.failed_ranks ep0))
  @ per_backend "tolerant barrier completes with a dead rank" `Quick
      (fun backend ->
        let sched, fabric, mk = crash_world ~n:3 ~backend () in
        let eps = Array.init 3 mk in
        let finished = ref 0 in
        for r = 0 to 1 do
          Scheduler.spawn sched
            ~name:(Printf.sprintf "rank%d" r)
            ~domain:r
            (fun () ->
              Mpi.barrier ~tolerant:true eps.(r);
              incr finished)
        done;
        (* Rank 2 enters the barrier too and dies inside it. *)
        Scheduler.spawn sched ~name:"rank2" ~domain:2 (fun () ->
            Mpi.barrier ~tolerant:true eps.(2));
        Scheduler.at sched (Time_ns.us 10.) (fun () ->
            Simnet.Fabric.crash fabric 2);
        Scheduler.run sched;
        Alcotest.(check int) "both survivors synchronised" 2 !finished)
  @ [
      Alcotest.test_case "dead-peer sends: portals completes, gm raises"
        `Quick (fun () ->
          (* The §3 asymmetry at the API surface. The connectionless
             Portals sender fire-and-forgets an eager put — the loss is
             the fabric's to account. The connection-oriented GM sender
             holds per-peer state that died with the peer, so the send
             itself fails. *)
          let attempt backend =
            let sched, fabric, mk = crash_world ~backend () in
            let ep0 = mk 0 in
            let _ep1 = mk 1 in
            let result = ref `None in
            Scheduler.spawn sched ~name:"rank0" ~domain:0 (fun () ->
                Scheduler.delay sched (Time_ns.us 50.);
                match Mpi.send ep0 ~dst:1 ~tag:0 (Bytes.create 16) with
                | () -> result := `Sent
                | exception Mpi.Peer_failed r -> result := `Failed r);
            Scheduler.at sched (Time_ns.us 10.) (fun () ->
                Simnet.Fabric.crash fabric 1);
            Scheduler.run ~until:(Time_ns.ms 1.) sched;
            (!result, (Simnet.Fabric.stats fabric).Simnet.Fabric.drops_crashed)
          in
          let p, pdrops = attempt Portals_b in
          Alcotest.(check bool) "portals eager send completes locally" true
            (p = `Sent);
          Alcotest.(check bool) "the fabric absorbed it as a crash drop" true
            (pdrops > 0);
          let g, _ = attempt Gm_b in
          Alcotest.(check bool) "gm send raises Peer_failed 1" true
            (g = `Failed 1));
      Alcotest.test_case "restart: portals resumes with zero survivor action"
        `Quick (fun () ->
          let sched, fabric, mk = crash_world ~backend:Portals_b () in
          let ep0 = mk 0 in
          let ep1 = mk 1 in
          let got = ref "" in
          Scheduler.spawn sched ~name:"rank1" ~domain:1 (fun () ->
              try ignore (Mpi.recv ep1 ~source:0 ~tag:0 (Bytes.create 64))
              with Mpi.Peer_failed _ -> ());
          Simnet.Fabric.apply_crash_schedule fabric
            (Simnet.Fault.crash_schedule
               [ (1, Time_ns.us 20., Some (Time_ns.us 40.)) ]);
          Scheduler.at sched (Time_ns.us 41.) (fun () ->
              let ep1' = mk 1 in
              Scheduler.spawn sched ~name:"rank1-restarted" ~domain:1
                (fun () ->
                  let b = Bytes.create 64 in
                  let st = Mpi.recv ep1' ~source:0 ~tag:1 b in
                  got := Bytes.sub_string b 0 st.Mpi.length));
          Scheduler.spawn sched ~name:"rank0" ~domain:0 (fun () ->
              Scheduler.delay sched (Time_ns.us 60.);
              (* No reconnect, no re-registration: the survivor just
                 sends. *)
              Mpi.send ep0 ~dst:1 ~tag:1 (Bytes.of_string "hello again"));
          Scheduler.run sched;
          Alcotest.(check string) "post-restart delivery" "hello again" !got;
          Alcotest.(check (list int)) "no rank still marked failed" []
            (Mpi.failed_ranks ep0));
      Alcotest.test_case "restart: gm stays fenced until reconnect" `Quick
        (fun () ->
          let sched, fabric, mk = crash_world ~backend:Gm_b () in
          let ep0 = mk 0 in
          let ep1 = mk 1 in
          let got = ref "" in
          Scheduler.spawn sched ~name:"rank1" ~domain:1 (fun () ->
              try ignore (Mpi.recv ep1 ~source:0 ~tag:0 (Bytes.create 64))
              with Mpi.Peer_failed _ -> ());
          Simnet.Fabric.apply_crash_schedule fabric
            (Simnet.Fault.crash_schedule
               [ (1, Time_ns.us 20., Some (Time_ns.us 40.)) ]);
          Scheduler.at sched (Time_ns.us 41.) (fun () ->
              let ep1' = mk 1 in
              Scheduler.spawn sched ~name:"rank1-restarted" ~domain:1
                (fun () ->
                  let b = Bytes.create 64 in
                  let st = Mpi.recv ep1' ~source:0 ~tag:1 b in
                  got := Bytes.sub_string b 0 st.Mpi.length));
          Scheduler.spawn sched ~name:"rank0" ~domain:0 (fun () ->
              Scheduler.delay sched (Time_ns.us 60.);
              (* The peer is back up, but the survivor's connection state
                 for it died: sends keep failing until reconnect. *)
              (match Mpi.send ep0 ~dst:1 ~tag:1 (Bytes.of_string "x") with
              | () -> Alcotest.fail "send must fail before reconnect"
              | exception Mpi.Peer_failed _ -> ());
              Alcotest.(check (list int)) "still marked failed" [ 1 ]
                (Mpi.failed_ranks ep0);
              Mpi.reconnect ep0 ~rank:1;
              Mpi.send ep0 ~dst:1 ~tag:1 (Bytes.of_string "hello again"));
          Scheduler.run sched;
          Alcotest.(check string) "post-reconnect delivery" "hello again" !got);
    ]

let nx_world n f =
  let sched = Scheduler.create () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:n
  in
  let tp = Simnet.Transport.offload fabric in
  let ranks = Array.init n (fun r -> proc r 0) in
  let eps = Array.init n (fun rank -> Mpi.Nx.create tp ~ranks ~rank ()) in
  Array.iteri
    (fun rank ep -> Scheduler.spawn sched (fun () -> f ep rank))
    eps;
  Scheduler.run sched

let nx_tests =
  [
    Alcotest.test_case "csend/crecv typed exchange" `Quick (fun () ->
        let len = ref 0 and typ = ref 0 and node = ref 0 in
        nx_world 2 (fun ep rank ->
            if rank = 0 then
              Mpi.Nx.csend ep ~typ:42 ~node:1 (Bytes.of_string "paragon")
            else begin
              let b = Bytes.create 32 in
              len := Mpi.Nx.crecv ep ~typesel:42 b;
              typ := Mpi.Nx.infotype ep;
              node := Mpi.Nx.infonode ep
            end);
        Alcotest.(check int) "count" 7 !len;
        Alcotest.(check int) "type" 42 !typ;
        Alcotest.(check int) "node" 0 !node);
    Alcotest.test_case "typesel -1 accepts any type" `Quick (fun () ->
        let types = ref [] in
        nx_world 2 (fun ep rank ->
            if rank = 0 then begin
              Mpi.Nx.csend ep ~typ:5 ~node:1 (Bytes.of_string "a");
              Mpi.Nx.csend ep ~typ:9 ~node:1 (Bytes.of_string "b")
            end
            else
              for _ = 1 to 2 do
                ignore (Mpi.Nx.crecv ep ~typesel:Mpi.Nx.any_type (Bytes.create 8));
                types := Mpi.Nx.infotype ep :: !types
              done);
        Alcotest.(check (list int)) "types in order" [ 5; 9 ] (List.rev !types));
  ]

let nx_tests =
  nx_tests
  @ [
      Alcotest.test_case "msgdone polls and msgwait completes" `Quick
        (fun () ->
          let sched = Scheduler.create () in
          let fabric =
            Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp
              ~nodes:2
          in
          let tp = Simnet.Transport.offload fabric in
          let ranks = [| proc 0 0; proc 1 0 |] in
          let ep0 = Mpi.Nx.create tp ~ranks ~rank:0 () in
          let ep1 = Mpi.Nx.create tp ~ranks ~rank:1 () in
          let polled_incomplete = ref false in
          Scheduler.spawn sched (fun () ->
              let buffer = Bytes.create 16 in
              let id = Mpi.Nx.irecv ep1 ~typesel:3 buffer in
              (* Nothing has been sent yet: must not be done. *)
              if not (Mpi.Nx.msgdone ep1 id) then polled_incomplete := true;
              Mpi.Nx.msgwait ep1 id;
              Alcotest.(check int) "count" 4 (Mpi.Nx.infocount ep1));
          Scheduler.spawn sched (fun () ->
              Scheduler.delay sched (Time_ns.ms 1.0);
              Mpi.Nx.csend ep0 ~typ:3 ~node:1 (Bytes.of_string "late"));
          Scheduler.run sched;
          Alcotest.(check bool) "was pending at first poll" true
            !polled_incomplete);
      Alcotest.test_case "types must be non-negative" `Quick (fun () ->
          let sched = Scheduler.create () in
          let fabric =
            Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp
              ~nodes:2
          in
          let tp = Simnet.Transport.offload fabric in
          let ranks = [| proc 0 0; proc 1 0 |] in
          let ep = Mpi.Nx.create tp ~ranks ~rank:0 () in
          Scheduler.spawn sched (fun () ->
              Alcotest.check_raises "negative type"
                (Invalid_argument "Nx: message types must be non-negative")
                (fun () -> ignore (Mpi.Nx.isend ep ~typ:(-3) ~node:1 Bytes.empty)));
          Scheduler.run sched);
    ]

let context_tests =
  per_backend "contexts isolate identical envelopes" `Quick (fun backend ->
      (* Same source, same tag, two contexts: each receive must get the
         message from its own context — communicator isolation. *)
      let a = ref "" and b = ref "" in
      ignore
        (with_world ~backend (fun ep rank ->
             if rank = 0 then begin
               Mpi.send ep ~context:1 ~dst:1 ~tag:5 (bytes_of_string "ctx-one");
               Mpi.send ep ~context:2 ~dst:1 ~tag:5 (bytes_of_string "ctx-two")
             end
             else begin
               (* Post the context-2 receive first: it must NOT take the
                  context-1 message even though it arrives first. *)
               let b2 = Bytes.create 16 and b1 = Bytes.create 16 in
               let r2 = Mpi.irecv ep ~context:2 ~source:0 ~tag:5 b2 in
               let r1 = Mpi.irecv ep ~context:1 ~source:0 ~tag:5 b1 in
               let st2 = Mpi.wait ep r2 and st1 = Mpi.wait ep r1 in
               a := Bytes.sub_string b1 0 st1.Mpi.length;
               b := Bytes.sub_string b2 0 st2.Mpi.length
             end));
      Alcotest.(check string) "context 1" "ctx-one" !a;
      Alcotest.(check string) "context 2" "ctx-two" !b)
  @ per_backend "wildcards stay inside their context" `Quick (fun backend ->
        let got = ref (-1, -1) in
        ignore
          (with_world ~backend (fun ep rank ->
               if rank = 0 then begin
                 Mpi.send ep ~context:3 ~dst:1 ~tag:8 (bytes_of_string "x");
                 Mpi.send ep ~context:4 ~dst:1 ~tag:9 (bytes_of_string "y")
               end
               else begin
                 (* any-source any-tag inside context 4 only. *)
                 let buf = Bytes.create 4 in
                 let st = Mpi.recv ep ~context:4 buf in
                 got := (st.Mpi.tag, st.Mpi.length);
                 (* Drain the other context so the world quiesces. *)
                 ignore (Mpi.recv ep ~context:3 (Bytes.create 4))
               end));
        Alcotest.(check (pair int int)) "matched only context 4" (9, 1) !got)
  @ [
      Alcotest.test_case "unexpected messages keep their context [portals]"
        `Quick (fun () ->
          let sched = Scheduler.create () in
          let fabric =
            Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp
              ~nodes:2
          in
          let tp = Simnet.Transport.offload fabric in
          let ranks = [| proc 0 0; proc 1 0 |] in
          let ep0 = Mpi.create_portals tp ~ranks ~rank:0 () in
          let ep1 = Mpi.create_portals tp ~ranks ~rank:1 () in
          let got = ref "" in
          Scheduler.spawn sched (fun () ->
              Mpi.send ep0 ~context:6 ~dst:1 ~tag:1 (Bytes.of_string "six");
              Mpi.send ep0 ~context:7 ~dst:1 ~tag:1 (Bytes.of_string "seven"));
          Scheduler.spawn sched (fun () ->
              (* Both arrive unexpected; claim context 7 first. *)
              Scheduler.delay sched (Time_ns.ms 5.0);
              let b = Bytes.create 8 in
              let st = Mpi.recv ep1 ~context:7 ~source:0 ~tag:1 b in
              got := Bytes.sub_string b 0 st.Mpi.length;
              ignore (Mpi.recv ep1 ~context:6 ~source:0 ~tag:1 (Bytes.create 8)));
          Scheduler.run sched;
          Alcotest.(check string) "claimed by context" "seven" !got);
    ]

let () =
  Alcotest.run "mpi"
    [
      ("basic", basic_tests);
      ("matching", matching_tests);
      ("collective", collective_tests);
      ("progress", progress_tests);
      ("differential", differential_tests);
      ("faults", fault_tests);
      ("crash", crash_tests);
      ("nx", nx_tests);
      ("contexts", context_tests);
    ]
