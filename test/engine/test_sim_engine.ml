open Sim_engine

let time_tests =
  let open Time_ns in
  [
    Alcotest.test_case "unit constructors" `Quick (fun () ->
        Alcotest.(check int) "ns" 5 (ns 5);
        Alcotest.(check int) "us" 5_000 (us 5.0);
        Alcotest.(check int) "ms" 5_000_000 (ms 5.0);
        Alcotest.(check int) "s" 5_000_000_000 (s 5.0));
    Alcotest.test_case "round trips" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "us" 2.5 (to_us (us 2.5));
        Alcotest.(check (float 1e-9)) "ms" 0.25 (to_ms (ms 0.25));
        Alcotest.(check (float 1e-9)) "s" 1.5 (to_s (s 1.5)));
    Alcotest.test_case "of_rate" `Quick (fun () ->
        (* 1000 bytes at 1 GB/s = 1 microsecond *)
        Alcotest.(check int) "1us" 1_000 (of_rate ~bytes_per_s:1e9 1000);
        Alcotest.(check int) "zero bytes" 0 (of_rate ~bytes_per_s:1e9 0));
    Alcotest.test_case "pretty printing picks units" `Quick (fun () ->
        Alcotest.(check string) "ns" "17ns" (to_string (ns 17));
        Alcotest.(check string) "us" "2.000us" (to_string (us 2.0));
        Alcotest.(check string) "ms" "3.500ms" (to_string (ms 3.5));
        Alcotest.(check string) "s" "1.000s" (to_string (s 1.0)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        Alcotest.(check int) "add" 30 (add (ns 10) (ns 20));
        Alcotest.(check int) "sub" 5 (sub (ns 15) (ns 10));
        Alcotest.(check bool) "compare" true (compare (ns 1) (ns 2) < 0));
  ]

let prng_tests =
  [
    Alcotest.test_case "determinism" `Quick (fun () ->
        let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
        Alcotest.(check bool) "diverge" true (Prng.bits64 a <> Prng.bits64 b));
    Alcotest.test_case "split streams are independent" `Quick (fun () ->
        let root = Prng.create ~seed:7 in
        let a = Prng.split root in
        let b = Prng.split root in
        Alcotest.(check bool) "children diverge" true
          (Prng.bits64 a <> Prng.bits64 b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int within bound" ~count:500
         QCheck.(pair small_int (int_range 1 1_000_000))
         (fun (seed, bound) ->
           let p = Prng.create ~seed in
           let v = Prng.int p bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"float within bound" ~count:500
         QCheck.(pair small_int (float_range 0.001 1000.))
         (fun (seed, bound) ->
           let p = Prng.create ~seed in
           let v = Prng.float p bound in
           v >= 0. && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
         QCheck.(pair small_int (list small_int))
         (fun (seed, l) ->
           let p = Prng.create ~seed in
           let a = Array.of_list l in
           Prng.shuffle_in_place p a;
           List.sort compare (Array.to_list a) = List.sort compare l));
    Alcotest.test_case "exponential is positive with sane mean" `Quick (fun () ->
        let p = Prng.create ~seed:3 in
        let n = 20_000 in
        let total = ref 0. in
        for _ = 1 to n do
          let x = Prng.exponential p ~mean:5.0 in
          assert (x >= 0.);
          total := !total +. x
        done;
        let mean = !total /. float_of_int n in
        Alcotest.(check bool) "mean near 5" true (mean > 4.5 && mean < 5.5));
  ]

let heap_tests =
  [
    Alcotest.test_case "pop order" `Quick (fun () ->
        let h = Event_heap.create () in
        Event_heap.add h ~time:30 "c";
        Event_heap.add h ~time:10 "a";
        Event_heap.add h ~time:20 "b";
        let order = ref [] in
        Event_heap.drain h (fun _ v -> order := v :: !order);
        Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (List.rev !order));
    Alcotest.test_case "FIFO tie-break at equal times" `Quick (fun () ->
        let h = Event_heap.create () in
        List.iter (fun v -> Event_heap.add h ~time:5 v) [ "1"; "2"; "3"; "4" ];
        let order = ref [] in
        Event_heap.drain h (fun _ v -> order := v :: !order);
        Alcotest.(check (list string)) "insertion order" [ "1"; "2"; "3"; "4" ]
          (List.rev !order));
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Event_heap.create () in
        Event_heap.add h ~time:9 ();
        Alcotest.(check (option int)) "peek" (Some 9) (Event_heap.peek_time h);
        Alcotest.(check int) "length" 1 (Event_heap.length h));
    Alcotest.test_case "empty heap" `Quick (fun () ->
        let h : unit Event_heap.t = Event_heap.create () in
        Alcotest.(check bool) "is_empty" true (Event_heap.is_empty h);
        Alcotest.(check (option int)) "peek" None (Event_heap.peek_time h);
        Alcotest.(check bool) "pop" true (Event_heap.pop h = None));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"heap sorts like List.sort" ~count:300
         QCheck.(list (int_range 0 1000))
         (fun times ->
           let h = Event_heap.create () in
           List.iter (fun time -> Event_heap.add h ~time time) times;
           let out = ref [] in
           Event_heap.drain h (fun _ v -> out := v :: !out);
           List.rev !out = List.sort compare times));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"stable for equal keys" ~count:100
         QCheck.(list_of_size (Gen.int_range 0 50) (int_range 0 5))
         (fun times ->
           (* Tag each event with its insertion index; at equal times the
              indices must come out ascending. *)
           let h = Event_heap.create () in
           List.iteri (fun i time -> Event_heap.add h ~time (time, i)) times;
           let out = ref [] in
           Event_heap.drain h (fun _ v -> out := v :: !out);
           let sorted = List.rev !out in
           let rec check = function
             | (t1, i1) :: ((t2, i2) :: _ as rest) ->
               (t1 < t2 || (t1 = t2 && i1 < i2)) && check rest
             | [ _ ] | [] -> true
           in
           check sorted));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pop order under interleaved add/pop" ~count:300
         (* Negative = pop, otherwise add at that time. Interleaving
            exercises the sift paths against a part-drained heap, which
            add-all-then-drain never does. *)
         QCheck.(list (int_range (-3) 40))
         (fun ops ->
           let h = Event_heap.create () in
           let pending = ref [] in
           let idx = ref 0 in
           let ok = ref true in
           let pop_and_check () =
             match !pending with
             | [] -> ()
             | p0 :: ps ->
               let expected = List.fold_left min p0 ps in
               let t = Event_heap.min_time h in
               let got = Event_heap.pop_min h in
               if got <> expected || t <> fst expected then ok := false;
               pending := List.filter (fun e -> e <> expected) !pending
           in
           List.iter
             (fun op ->
               if op < 0 then pop_and_check ()
               else begin
                 Event_heap.add h ~time:op (op, !idx);
                 pending := (op, !idx) :: !pending;
                 incr idx
               end)
             ops;
           while !pending <> [] do
             pop_and_check ()
           done;
           !ok && Event_heap.is_empty h));
  ]

let scheduler_tests =
  [
    Alcotest.test_case "callbacks run in time order" `Quick (fun () ->
        let sched = Scheduler.create () in
        let order = ref [] in
        Scheduler.at sched 30 (fun () -> order := 30 :: !order);
        Scheduler.at sched 10 (fun () -> order := 10 :: !order);
        Scheduler.at sched 20 (fun () -> order := 20 :: !order);
        Scheduler.run sched;
        Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !order));
    Alcotest.test_case "now advances to event times" `Quick (fun () ->
        let sched = Scheduler.create () in
        Scheduler.at sched 500 (fun () ->
            Alcotest.(check int) "now" 500 (Scheduler.now sched));
        Scheduler.run sched;
        Alcotest.(check int) "final" 500 (Scheduler.now sched));
    Alcotest.test_case "scheduling in the past is rejected" `Quick (fun () ->
        let sched = Scheduler.create () in
        Scheduler.at sched 100 (fun () ->
            Alcotest.check_raises "past"
              (Invalid_argument "Scheduler.at: time 50ns is before now 100ns")
              (fun () -> Scheduler.at sched 50 ignore));
        Scheduler.run sched);
    Alcotest.test_case "fiber delay accumulates" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = ref [] in
        Scheduler.spawn sched (fun () ->
            Scheduler.delay sched 10;
            trace := Scheduler.now sched :: !trace;
            Scheduler.delay sched 15;
            trace := Scheduler.now sched :: !trace);
        Scheduler.run sched;
        Alcotest.(check (list int)) "times" [ 10; 25 ] (List.rev !trace));
    Alcotest.test_case "two fibers interleave by time" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = ref [] in
        let fiber tag dt =
          Scheduler.spawn sched (fun () ->
              for _ = 1 to 3 do
                Scheduler.delay sched dt;
                trace := (tag, Scheduler.now sched) :: !trace
              done)
        in
        fiber "a" 10;
        fiber "b" 15;
        Scheduler.run sched;
        Alcotest.(check (list (pair string int)))
          "interleaving"
          (* At t=30 both wake; b's timer was armed earlier (t=15 vs t=20),
             so FIFO tie-break runs b first. *)
          [ ("a", 10); ("b", 15); ("a", 20); ("b", 30); ("a", 30); ("b", 45) ]
          (List.rev !trace));
    Alcotest.test_case "deadlock is detected and named" `Quick (fun () ->
        let sched = Scheduler.create () in
        Scheduler.spawn sched (fun () ->
            Scheduler.suspend sched ~name:"never" (fun _waker -> ()));
        (match Scheduler.run sched with
        | () -> Alcotest.fail "expected Deadlock"
        | exception Scheduler.Deadlock names ->
          Alcotest.(check int) "one blocked" 1 (List.length names);
          Alcotest.(check bool) "mentions reason" true
            (String.length (List.hd names) > 0
            && String.ends_with ~suffix:"never" (List.hd names))));
    Alcotest.test_case "allow_blocked suppresses deadlock" `Quick (fun () ->
        let sched = Scheduler.create () in
        Scheduler.spawn sched (fun () ->
            Scheduler.suspend sched ~name:"forever" (fun _ -> ()));
        Scheduler.run ~allow_blocked:true sched;
        Alcotest.(check int) "still live" 1 (Scheduler.live_fibers sched));
    Alcotest.test_case "run ~until leaves later events queued" `Quick (fun () ->
        let sched = Scheduler.create () in
        let fired = ref [] in
        Scheduler.at sched 10 (fun () -> fired := 10 :: !fired);
        Scheduler.at sched 100 (fun () -> fired := 100 :: !fired);
        Scheduler.run ~until:50 sched;
        Alcotest.(check (list int)) "only first" [ 10 ] (List.rev !fired);
        Scheduler.run sched;
        Alcotest.(check (list int)) "rest later" [ 10; 100 ] (List.rev !fired));
    Alcotest.test_case "stop aborts processing" `Quick (fun () ->
        let sched = Scheduler.create () in
        let fired = ref 0 in
        Scheduler.at sched 10 (fun () ->
            incr fired;
            Scheduler.stop sched);
        Scheduler.at sched 20 (fun () -> incr fired);
        Scheduler.run sched;
        Alcotest.(check int) "one event" 1 !fired);
    Alcotest.test_case "yield lets same-instant events run first" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = ref [] in
        Scheduler.spawn sched (fun () ->
            trace := "f1-a" :: !trace;
            Scheduler.yield sched;
            trace := "f1-b" :: !trace);
        Scheduler.spawn sched (fun () -> trace := "f2" :: !trace);
        Scheduler.run sched;
        Alcotest.(check (list string)) "order" [ "f1-a"; "f2"; "f1-b" ]
          (List.rev !trace));
    Alcotest.test_case "fiber exception propagates out of run" `Quick (fun () ->
        let sched = Scheduler.create () in
        Scheduler.spawn sched (fun () -> failwith "boom");
        Alcotest.check_raises "escapes" (Failure "boom") (fun () ->
            Scheduler.run sched));
    Alcotest.test_case "deadlock report carries sim time and blocked-since"
      `Quick (fun () ->
        let sched = Scheduler.create () in
        Scheduler.spawn sched ~name:"stuck-rank" (fun () ->
            Scheduler.delay sched 4;
            Scheduler.suspend sched ~name:"mpi.recv" (fun _waker -> ()));
        Scheduler.at sched 10 (fun () -> ());
        (match Scheduler.run sched with
        | () -> Alcotest.fail "expected Deadlock"
        | exception Scheduler.Deadlock [ entry ] ->
          let has needle =
            Alcotest.(check bool)
              (Printf.sprintf "report %S mentions %s" entry needle)
              true
              (let nl = String.length needle and el = String.length entry in
               let rec scan i =
                 i + nl <= el && (String.sub entry i nl = needle || scan (i + 1))
               in
               scan 0)
          in
          (* Deadlock time, fiber name, block time, and — last — the wait
             reason. *)
          has "t=10";
          has "stuck-rank";
          has "t=4";
          Alcotest.(check bool) "reason is the suffix" true
            (String.ends_with ~suffix:"mpi.recv" entry)
        | exception Scheduler.Deadlock names ->
          Alcotest.fail
            (Printf.sprintf "expected one entry, got %d" (List.length names))));
    Alcotest.test_case "kill_domain discontinues blocked fibers" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let cleanup = ref false in
        let finished = ref false in
        Scheduler.spawn sched ~name:"resident" ~domain:3 (fun () ->
            (try Scheduler.delay sched 1000
             with Scheduler.Killed as e ->
               cleanup := true;
               raise e);
            finished := true);
        Scheduler.at sched 10 (fun () ->
            Alcotest.(check int) "one fiber killed" 1
              (Scheduler.kill_domain sched 3));
        Scheduler.run sched;
        Alcotest.(check bool) "Killed reached the fiber" true !cleanup;
        Alcotest.(check bool) "body after the block never ran" false !finished;
        Alcotest.(check int) "no fibers left" 0 (Scheduler.live_fibers sched));
    Alcotest.test_case "counters track processed events and spawns" `Quick
      (fun () ->
        let before = Scheduler.global_totals () in
        let sched = Scheduler.create () in
        for i = 1 to 5 do
          Scheduler.at sched (i * 10) ignore
        done;
        Scheduler.spawn sched (fun () -> Scheduler.delay sched 7);
        Scheduler.run sched;
        let local = Scheduler.events_processed sched in
        Alcotest.(check bool) "at least the five timers" true (local >= 5);
        let after = Scheduler.global_totals () in
        Alcotest.(check int) "global event delta matches the run" local
          (after.Scheduler.t_events - before.Scheduler.t_events);
        Alcotest.(check int) "global fiber delta" 1
          (after.Scheduler.t_fibers - before.Scheduler.t_fibers);
        Alcotest.(check bool) "sim time advanced" true
          (after.Scheduler.t_sim_time - before.Scheduler.t_sim_time >= 50));
    Alcotest.test_case "batched run keeps same-instant FIFO" `Quick (fun () ->
        (* The run loop drains same-timestamp events in one batch; an event
           scheduled for the current instant from inside the batch must
           still run after the already-queued ones (seq order). *)
        let sched = Scheduler.create () in
        let order = ref [] in
        let record tag () = order := tag :: !order in
        Scheduler.at sched 10 (fun () ->
            record "a" ();
            Scheduler.at sched 10 (record "d"));
        Scheduler.at sched 10 (record "b");
        Scheduler.at sched 10 (record "c");
        Scheduler.run sched;
        Alcotest.(check (list string)) "order" [ "a"; "b"; "c"; "d" ]
          (List.rev !order));
    Alcotest.test_case "kill_domain spares the next incarnation" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let first_done = ref false in
        let second_done = ref false in
        Scheduler.spawn sched ~name:"life1" ~domain:1 (fun () ->
            Scheduler.delay sched 1000;
            first_done := true);
        Scheduler.at sched 10 (fun () ->
            ignore (Scheduler.kill_domain sched 1);
            (* The node "reboots": a fresh fiber in the same domain must
               not be touched by the kill that just happened. *)
            Scheduler.spawn sched ~name:"life2" ~domain:1 (fun () ->
                Scheduler.delay sched 50;
                second_done := true));
        Scheduler.run sched;
        Alcotest.(check bool) "first life killed" false !first_done;
        Alcotest.(check bool) "second life survives" true !second_done);
    Alcotest.test_case "double wake is rejected" `Quick (fun () ->
        let sched = Scheduler.create () in
        let stash = ref None in
        Scheduler.spawn sched (fun () ->
            Scheduler.suspend sched ~name:"w" (fun waker -> stash := Some waker));
        Scheduler.spawn sched (fun () ->
            Scheduler.delay sched 5;
            match !stash with
            | None -> Alcotest.fail "no waker"
            | Some waker ->
              waker ();
              Alcotest.check_raises "second wake"
                (Invalid_argument "Scheduler: waker invoked more than once")
                waker);
        Scheduler.run sched);
  ]

let sync_tests =
  let open Sync in
  [
    Alcotest.test_case "ivar read blocks until fill" `Quick (fun () ->
        let sched = Scheduler.create () in
        let iv = Ivar.create sched in
        let got = ref None in
        Scheduler.spawn sched (fun () -> got := Some (Ivar.read iv));
        Scheduler.spawn sched (fun () ->
            Scheduler.delay sched 100;
            Ivar.fill iv 42);
        Scheduler.run sched;
        Alcotest.(check (option int)) "value" (Some 42) !got);
    Alcotest.test_case "ivar read after fill is immediate" `Quick (fun () ->
        let sched = Scheduler.create () in
        let iv = Ivar.create sched in
        Ivar.fill iv "x";
        Alcotest.(check bool) "filled" true (Ivar.is_filled iv);
        Alcotest.(check (option string)) "peek" (Some "x") (Ivar.peek iv);
        Scheduler.spawn sched (fun () ->
            Alcotest.(check string) "read" "x" (Ivar.read iv));
        Scheduler.run sched);
    Alcotest.test_case "ivar double fill rejected" `Quick (fun () ->
        let sched = Scheduler.create () in
        let iv = Ivar.create sched in
        Ivar.fill iv 1;
        Alcotest.check_raises "refilled"
          (Invalid_argument "Ivar.fill: already filled") (fun () -> Ivar.fill iv 2));
    Alcotest.test_case "mailbox delivers in FIFO order" `Quick (fun () ->
        let sched = Scheduler.create () in
        let mb = Mailbox.create sched in
        let got = ref [] in
        Scheduler.spawn sched (fun () ->
            for _ = 1 to 3 do
              got := Mailbox.recv mb :: !got
            done);
        Scheduler.spawn sched (fun () ->
            Scheduler.delay sched 1;
            Mailbox.send mb "a";
            Mailbox.send mb "b";
            Scheduler.delay sched 1;
            Mailbox.send mb "c");
        Scheduler.run sched;
        Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !got));
    Alcotest.test_case "mailbox try_recv" `Quick (fun () ->
        let sched = Scheduler.create () in
        let mb = Mailbox.create sched in
        Alcotest.(check (option int)) "empty" None (Mailbox.try_recv mb);
        Mailbox.send mb 9;
        Alcotest.(check int) "length" 1 (Mailbox.length mb);
        Alcotest.(check (option int)) "ready" (Some 9) (Mailbox.try_recv mb));
    Alcotest.test_case "semaphore serialises critical sections" `Quick (fun () ->
        let sched = Scheduler.create () in
        let sem = Semaphore.create sched 1 in
        let inside = ref 0 and max_inside = ref 0 in
        for _ = 1 to 5 do
          Scheduler.spawn sched (fun () ->
              Semaphore.acquire sem;
              incr inside;
              if !inside > !max_inside then max_inside := !inside;
              Scheduler.delay sched 10;
              decr inside;
              Semaphore.release sem)
        done;
        Scheduler.run sched;
        Alcotest.(check int) "mutual exclusion" 1 !max_inside);
    Alcotest.test_case "semaphore counts available units" `Quick (fun () ->
        let sched = Scheduler.create () in
        let sem = Semaphore.create sched 3 in
        Scheduler.spawn sched (fun () ->
            Semaphore.acquire sem;
            Semaphore.acquire sem;
            Alcotest.(check int) "left" 1 (Semaphore.available sem);
            Semaphore.release sem;
            Semaphore.release sem;
            Alcotest.(check int) "restored" 3 (Semaphore.available sem));
        Scheduler.run sched);
    Alcotest.test_case "barrier releases all parties together" `Quick (fun () ->
        let sched = Scheduler.create () in
        let barrier = Barrier.create sched 3 in
        let release_times = ref [] in
        for i = 1 to 3 do
          Scheduler.spawn sched (fun () ->
              Scheduler.delay sched (i * 10);
              Barrier.await barrier;
              release_times := Scheduler.now sched :: !release_times)
        done;
        Scheduler.run sched;
        Alcotest.(check (list int)) "all at slowest arrival" [ 30; 30; 30 ]
          !release_times);
    Alcotest.test_case "barrier is reusable across generations" `Quick (fun () ->
        let sched = Scheduler.create () in
        let barrier = Barrier.create sched 2 in
        let hits = ref 0 in
        for _ = 1 to 2 do
          Scheduler.spawn sched (fun () ->
              Barrier.await barrier;
              incr hits;
              Scheduler.delay sched 5;
              Barrier.await barrier;
              incr hits)
        done;
        Scheduler.run sched;
        Alcotest.(check int) "two rounds, two fibers" 4 !hits);
    Alcotest.test_case "waitq broadcast wakes current waiters only" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let wq = Waitq.create sched in
        let woken = ref 0 in
        for _ = 1 to 3 do
          Scheduler.spawn sched (fun () ->
              Waitq.wait wq;
              incr woken)
        done;
        Scheduler.spawn sched (fun () ->
            Scheduler.delay sched 10;
            Alcotest.(check int) "three waiting" 3 (Waitq.waiters wq);
            Waitq.broadcast wq);
        Scheduler.run sched;
        Alcotest.(check int) "all woken" 3 !woken);
  ]

let cpu_tests =
  [
    Alcotest.test_case "compute occupies simulated time" `Quick (fun () ->
        let sched = Scheduler.create () in
        let cpu = Cpu.create sched in
        Scheduler.spawn sched (fun () ->
            Cpu.compute cpu 1_000;
            Alcotest.(check int) "elapsed" 1_000 (Scheduler.now sched));
        Scheduler.run sched);
    Alcotest.test_case "steal extends in-flight compute" `Quick (fun () ->
        let sched = Scheduler.create () in
        let cpu = Cpu.create sched in
        Scheduler.spawn sched (fun () ->
            Cpu.compute cpu 1_000;
            Alcotest.(check int) "extended by interrupt" 1_200
              (Scheduler.now sched));
        (* An "interrupt" 300ns in, stealing 200ns of host CPU. *)
        Scheduler.at sched 300 (fun () -> Cpu.steal cpu 200);
        Scheduler.run sched;
        Alcotest.(check int) "stolen accounted" 200 (Cpu.stolen_total cpu);
        Alcotest.(check int) "compute accounted" 1_000 (Cpu.compute_total cpu));
    Alcotest.test_case "steal while idle only accumulates" `Quick (fun () ->
        let sched = Scheduler.create () in
        let cpu = Cpu.create sched in
        Scheduler.at sched 10 (fun () -> Cpu.steal cpu 500);
        Scheduler.run sched;
        Alcotest.(check int) "stolen" 500 (Cpu.stolen_total cpu);
        Alcotest.(check bool) "idle" false (Cpu.busy cpu));
    Alcotest.test_case "computes on one cpu serialise" `Quick (fun () ->
        let sched = Scheduler.create () in
        let cpu = Cpu.create sched in
        let finish = ref [] in
        for _ = 1 to 3 do
          Scheduler.spawn sched (fun () ->
              Cpu.compute cpu 100;
              finish := Scheduler.now sched :: !finish)
        done;
        Scheduler.run sched;
        Alcotest.(check (list int)) "back-to-back" [ 100; 200; 300 ]
          (List.rev !finish));
    Alcotest.test_case "multiple steals accumulate into one compute" `Quick
      (fun () ->
        let sched = Scheduler.create () in
        let cpu = Cpu.create sched in
        Scheduler.spawn sched (fun () ->
            Cpu.compute cpu 1_000;
            Alcotest.(check int) "sum of extensions" 1_300 (Scheduler.now sched));
        Scheduler.at sched 100 (fun () -> Cpu.steal cpu 100);
        Scheduler.at sched 500 (fun () -> Cpu.steal cpu 200);
        Scheduler.run sched);
  ]

let stats_tests =
  let open Stats in
  [
    Alcotest.test_case "counter" `Quick (fun () ->
        let c = Counter.create ~name:"drops" () in
        Counter.incr c;
        Counter.add c 4;
        Alcotest.(check int) "value" 5 (Counter.value c);
        Counter.reset c;
        Alcotest.(check int) "reset" 0 (Counter.value c);
        Alcotest.(check string) "name" "drops" (Counter.name c));
    Alcotest.test_case "summary statistics" `Quick (fun () ->
        let s = Summary.create () in
        List.iter (Summary.observe s) [ 1.; 2.; 3.; 4. ];
        Alcotest.(check int) "count" 4 (Summary.count s);
        Alcotest.(check (float 1e-9)) "mean" 2.5 (Summary.mean s);
        Alcotest.(check (float 1e-9)) "min" 1. (Summary.min s);
        Alcotest.(check (float 1e-9)) "max" 4. (Summary.max s);
        Alcotest.(check (float 1e-6)) "stddev" 1.118034 (Summary.stddev s);
        Alcotest.(check (float 1e-9)) "total" 10. (Summary.total s));
    Alcotest.test_case "summary of empty/singleton" `Quick (fun () ->
        let s = Summary.create () in
        Alcotest.(check (float 0.)) "empty mean" 0. (Summary.mean s);
        Alcotest.(check (float 0.)) "empty sd" 0. (Summary.stddev s);
        Summary.observe s 7.;
        Alcotest.(check (float 0.)) "single sd" 0. (Summary.stddev s));
    Alcotest.test_case "series keeps insertion order" `Quick (fun () ->
        let s = Series.create ~name:"curve" () in
        Series.push s ~x:1. ~y:10.;
        Series.push s ~x:2. ~y:20.;
        Alcotest.(check int) "len" 2 (Series.length s);
        Alcotest.(check (list (pair (float 0.) (float 0.))))
          "points"
          [ (1., 10.); (2., 20.) ]
          (Series.points s));
    Alcotest.test_case "histogram buckets and quantile" `Quick (fun () ->
        let h = Histogram.create ~buckets:[| 10.; 20.; 30. |] () in
        List.iter (Histogram.observe h) [ 5.; 15.; 15.; 25.; 100. ];
        Alcotest.(check int) "count" 5 (Histogram.count h);
        (match Histogram.counts h with
        | [ (Some 10., 1); (Some 20., 2); (Some 30., 1); (None, 1) ] -> ()
        | other ->
          Alcotest.failf "unexpected buckets: %d entries" (List.length other));
        let q50 = Histogram.quantile h 0.5 in
        Alcotest.(check bool) "median in second bucket" true
          (q50 > 10. && q50 <= 20.));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"summary mean within [min,max]" ~count:300
         QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
         (fun xs ->
           let s = Summary.create () in
           List.iter (Summary.observe s) xs;
           let m = Summary.mean s in
           m >= Summary.min s -. 1e-9 && m <= Summary.max s +. 1e-9));
  ]

let trace_tests =
  [
    Alcotest.test_case "disabled trace records nothing" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = Scheduler.trace sched in
        Trace.emit trace "ignored";
        Alcotest.(check int) "empty" 0 (List.length (Trace.events trace)));
    Alcotest.test_case "records time-stamped events" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = Scheduler.trace sched in
        Trace.enable trace;
        Scheduler.at sched 100 (fun () -> Trace.emit trace ~subsys:"nic" "rx");
        Scheduler.at sched 200 (fun () -> Trace.emitf trace "count=%d" 3);
        Scheduler.run sched;
        match Trace.events trace with
        | [ (100, "nic", "rx"); (200, "", "count=3") ] -> ()
        | events -> Alcotest.failf "unexpected events: %d" (List.length events));
    Alcotest.test_case "ring keeps most recent events" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = Trace.create ~capacity:4 ~now:(fun () -> Scheduler.now sched) () in
        Trace.enable trace;
        for i = 1 to 10 do
          Trace.emitf trace "e%d" i
        done;
        let messages = List.map (fun (_, _, m) -> m) (Trace.events trace) in
        Alcotest.(check (list string)) "last four" [ "e7"; "e8"; "e9"; "e10" ]
          messages);
    Alcotest.test_case "span phases and wraparound" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = Trace.create ~capacity:3 ~now:(fun () -> Scheduler.now sched) () in
        Trace.enable trace;
        Trace.instant trace ~subsys:"x" "evicted";
        Trace.begin_span trace ~subsys:"cpu" ~proc:"cpu0" "work";
        Trace.end_span trace ~subsys:"cpu" ~proc:"cpu0" "work";
        Trace.complete trace ~subsys:"ni" ~proc:"nic0" ~msg_id:7
          ~start:(Time_ns.ns 10) ~finish:(Time_ns.ns 25) "match";
        (match Trace.spans trace with
        | [ b; e; c ] ->
          Alcotest.(check bool) "begin" true (b.Trace.phase = Trace.Begin);
          Alcotest.(check bool) "end" true (e.Trace.phase = Trace.End);
          Alcotest.(check bool) "complete duration" true
            (c.Trace.phase = Trace.Complete (Time_ns.ns 15));
          Alcotest.(check (option int)) "msg id" (Some 7) c.Trace.msg_id;
          Alcotest.(check (option string)) "proc" (Some "nic0") c.Trace.proc
        | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans));
        Alcotest.(check int) "first span evicted by wraparound" 3
          (List.length (Trace.spans trace)));
    Alcotest.test_case "nested spans survive in order" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = Scheduler.trace sched in
        Trace.enable trace;
        Trace.begin_span trace ~proc:"cpu0" "outer";
        Trace.begin_span trace ~proc:"cpu0" "inner";
        Trace.end_span trace ~proc:"cpu0" "inner";
        Trace.end_span trace ~proc:"cpu0" "outer";
        let names = List.map (fun s -> s.Trace.name) (Trace.spans trace) in
        Alcotest.(check (list string)) "stack order"
          [ "outer"; "inner"; "inner"; "outer" ]
          names);
    Alcotest.test_case "chrome export is structurally sound" `Quick (fun () ->
        let sched = Scheduler.create () in
        let trace = Scheduler.trace sched in
        Trace.enable trace;
        Trace.complete trace ~subsys:"ni" ~proc:"nic0" ~start:Time_ns.zero
          ~finish:(Time_ns.us 2.) "match";
        Trace.instant trace ~subsys:"eq" ~proc:"cpu0" "post";
        let json = Trace.export_chrome ~name:"test" trace in
        let has needle =
          let rec go i =
            i + String.length needle <= String.length json
            && (String.sub json i (String.length needle) = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "traceEvents" true (has "\"traceEvents\"");
        Alcotest.(check bool) "complete phase" true (has "\"ph\":\"X\"");
        Alcotest.(check bool) "instant phase" true (has "\"ph\":\"i\"");
        Alcotest.(check bool) "thread name metadata" true (has "\"thread_name\"");
        Alcotest.(check bool) "process name metadata" true (has "\"test\"");
        Alcotest.(check bool) "balanced braces" true
          (String.fold_left (fun n c ->
               if c = '{' then n + 1 else if c = '}' then n - 1 else n)
             0 json
          = 0));
  ]

let metrics_tests =
  [
    Alcotest.test_case "registration is idempotent" `Quick (fun () ->
        let m = Metrics.create () in
        let c1 = Metrics.counter m "requests" in
        let c2 = Metrics.counter m "requests" in
        Metrics.incr c1;
        Metrics.incr c2;
        Alcotest.(check int) "same instrument" 2 (Metrics.counter_value c1);
        let c3 = Metrics.counter m ~labels:[ ("proc", "0:0") ] "requests" in
        Metrics.incr c3;
        Alcotest.(check int) "labels distinguish" 1 (Metrics.counter_value c3));
    Alcotest.test_case "disabled registry mutates nothing" `Quick (fun () ->
        let m = Metrics.create ~enabled:false () in
        let c = Metrics.counter m "n" in
        let s = Metrics.summary m "lat" in
        Metrics.incr c;
        Metrics.observe s 5.0;
        Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
        let snap = Metrics.snapshot m in
        match Metrics.Snapshot.find snap "lat" with
        | Some (Metrics.Snapshot.Summary { count; _ }) ->
          Alcotest.(check int) "summary untouched" 0 count
        | _ -> Alcotest.fail "summary entry missing");
    Alcotest.test_case "snapshot reads counters, gauges, probes" `Quick (fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m ~labels:[ ("proc", "0:0") ] "ni.puts" in
        Metrics.add c 3;
        Metrics.set (Metrics.gauge m "depth") 4.5;
        Metrics.probe m "cpu.occupancy" (fun () -> 0.25);
        let snap = Metrics.snapshot m in
        (match Metrics.Snapshot.find snap ~labels:[ ("proc", "0:0") ] "ni.puts" with
        | Some (Metrics.Snapshot.Counter n) -> Alcotest.(check int) "counter" 3 n
        | _ -> Alcotest.fail "counter missing");
        (match Metrics.Snapshot.find snap "depth" with
        | Some (Metrics.Snapshot.Gauge g) ->
          Alcotest.(check (float 1e-9)) "gauge" 4.5 g
        | _ -> Alcotest.fail "gauge missing");
        match Metrics.Snapshot.find snap "cpu.occupancy" with
        | Some (Metrics.Snapshot.Gauge g) ->
          Alcotest.(check (float 1e-9)) "probe" 0.25 g
        | _ -> Alcotest.fail "probe missing");
    Alcotest.test_case "summary moments" `Quick (fun () ->
        let m = Metrics.create () in
        let s = Metrics.summary m "rtt" in
        List.iter (Metrics.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
        match Metrics.Snapshot.find (Metrics.snapshot m) "rtt" with
        | Some (Metrics.Snapshot.Summary { count; mean; min; max; total; _ }) ->
          Alcotest.(check int) "count" 4 count;
          Alcotest.(check (float 1e-9)) "mean" 2.5 mean;
          Alcotest.(check (float 1e-9)) "min" 1.0 min;
          Alcotest.(check (float 1e-9)) "max" 4.0 max;
          Alcotest.(check (float 1e-9)) "total" 10.0 total
        | _ -> Alcotest.fail "summary missing");
    Alcotest.test_case "series keeps ordered points" `Quick (fun () ->
        let m = Metrics.create ~detail:true () in
        let s = Metrics.series m ~labels:[ ("eq", "0:0#0") ] "eq.depth" in
        Metrics.push s ~x:1.0 ~y:1.0;
        Metrics.push s ~x:2.0 ~y:2.0;
        Metrics.push s ~x:3.0 ~y:1.0;
        Alcotest.(check int) "length" 3 (Metrics.series_length s);
        match
          Metrics.Snapshot.find (Metrics.snapshot m)
            ~labels:[ ("eq", "0:0#0") ]
            "eq.depth"
        with
        | Some (Metrics.Snapshot.Series pts) ->
          Alcotest.(check (list (pair (float 0.) (float 0.))))
            "points"
            [ (1.0, 1.0); (2.0, 2.0); (3.0, 1.0) ]
            pts
        | _ -> Alcotest.fail "series missing");
    Alcotest.test_case "reset zeroes in place" `Quick (fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m "n" in
        let s = Metrics.series m "pts" in
        Metrics.add c 9;
        Metrics.push s ~x:0.0 ~y:1.0;
        Metrics.reset m;
        Alcotest.(check int) "counter" 0 (Metrics.counter_value c);
        Alcotest.(check int) "series" 0 (Metrics.series_length s));
    Alcotest.test_case "absorb merges with label prefix" `Quick (fun () ->
        let world = Metrics.create () in
        Metrics.add (Metrics.counter world "ni.puts") 2;
        Metrics.observe (Metrics.summary world "rtt") 10.0;
        let agg = Metrics.create () in
        Metrics.absorb agg ~labels:[ ("config", "portals") ] (Metrics.snapshot world);
        Metrics.absorb agg ~labels:[ ("config", "portals") ] (Metrics.snapshot world);
        let snap = Metrics.snapshot agg in
        (match
           Metrics.Snapshot.find snap ~labels:[ ("config", "portals") ] "ni.puts"
         with
        | Some (Metrics.Snapshot.Counter n) ->
          Alcotest.(check int) "counters add" 4 n
        | _ -> Alcotest.fail "absorbed counter missing");
        match
          Metrics.Snapshot.find snap ~labels:[ ("config", "portals") ] "rtt"
        with
        | Some (Metrics.Snapshot.Summary { count; mean; _ }) ->
          Alcotest.(check int) "summary counts add" 2 count;
          Alcotest.(check (float 1e-9)) "summary mean" 10.0 mean
        | _ -> Alcotest.fail "absorbed summary missing");
    Alcotest.test_case "report renders table and json" `Quick (fun () ->
        let contains hay needle =
          let rec go i =
            i + String.length needle <= String.length hay
            && (String.sub hay i (String.length needle) = needle || go (i + 1))
          in
          go 0
        in
        let m = Metrics.create () in
        Metrics.add (Metrics.counter m ~labels:[ ("proc", "0:0") ] "ni.puts") 5;
        Metrics.set (Metrics.gauge m "link.utilization") 0.5;
        let snap = Metrics.snapshot m in
        let table = Format.asprintf "%a" (Report.pp_table ?series_points:None) snap in
        Alcotest.(check bool) "table mentions metric" true
          (contains table "ni.puts");
        let json = Report.to_json snap in
        Alcotest.(check bool) "json mentions metric" true
          (contains json "\"ni.puts\"");
        Alcotest.(check bool) "json balanced" true
          (String.fold_left (fun n c ->
               if c = '{' then n + 1 else if c = '}' then n - 1 else n)
             0 json
          = 0));
  ]

(* --- parallel shard runtime ------------------------------------------- *)

let shard_tests =
  let lookahead = Time_ns.ns 1000 in
  let make_pair () =
    [| Scheduler.create ~seed:1 (); Scheduler.create ~seed:2 () |]
  in
  [
    Alcotest.test_case "two shards ping-pong across window boundaries" `Quick
      (fun () ->
        let scheds = make_pair () in
        let t = Shard.create ~scheds ~lookahead () in
        let hops = ref [] in
        (* Each delivery re-posts to the peer one lookahead later, so
           the message must cross a window boundary every time. *)
        let bounce shard v =
          hops := (shard, Scheduler.now scheds.(shard), v) :: !hops;
          if v < 20 then
            Shard.post t ~src:shard ~dst:(1 - shard)
              ~time:(Time_ns.add (Scheduler.now scheds.(shard)) lookahead)
              (v + 1)
        in
        Scheduler.at scheds.(0) Time_ns.zero (fun () -> bounce 0 0);
        Shard.run t ~deliver:(fun ~shard ~time v ->
            Scheduler.at scheds.(shard) time (fun () -> bounce shard v));
        let hops = List.rev !hops in
        Alcotest.(check int) "hop count" 21 (List.length hops);
        List.iteri
          (fun v (shard, time, v') ->
            Alcotest.(check int) "value in order" v v';
            Alcotest.(check int) "alternating shard" (v mod 2) shard;
            Alcotest.(check int) "arithmetic arrival" (v * 1000) time)
          hops;
        Alcotest.(check bool) "needed at least one round per hop" true
          (Shard.rounds t >= 20));
    Alcotest.test_case "posts inside the current window are rejected" `Quick
      (fun () ->
        let scheds = make_pair () in
        let t = Shard.create ~scheds ~lookahead () in
        Scheduler.at scheds.(0) Time_ns.zero (fun () ->
            (* time = now violates the lookahead bound. *)
            Shard.post t ~src:0 ~dst:1 ~time:Time_ns.zero 0);
        Alcotest.(check bool) "raises" true
          (match Shard.run t ~deliver:(fun ~shard:_ ~time:_ _ -> ()) with
          | () -> false
          | exception Invalid_argument _ -> true));
    Alcotest.test_case "a shard failure aborts the whole run" `Quick (fun () ->
        let scheds = make_pair () in
        let t = Shard.create ~scheds ~lookahead () in
        Scheduler.at scheds.(1) (Time_ns.ns 5) (fun () -> failwith "boom");
        (* Keep shard 0 busy far past the failure point. *)
        for k = 0 to 99 do
          Scheduler.at scheds.(0) (Time_ns.ns (10 * k)) ignore
        done;
        Alcotest.(check bool) "re-raised" true
          (match Shard.run t ~deliver:(fun ~shard:_ ~time:_ _ -> ()) with
          | () -> false
          | exception Failure msg -> msg = "boom"));
    Alcotest.test_case "deadlock detection aggregates across shards" `Quick
      (fun () ->
        let scheds = make_pair () in
        let t = Shard.create ~scheds ~lookahead () in
        Scheduler.spawn scheds.(1) ~name:"stuck" (fun () ->
            ignore (Sync.Ivar.read (Sync.Ivar.create scheds.(1))));
        Alcotest.(check bool) "deadlock" true
          (match Shard.run t ~deliver:(fun ~shard:_ ~time:_ _ -> ()) with
          | () -> false
          | exception Scheduler.Deadlock _ -> true);
        (* allow_blocked downgrades it, as in the sequential runner. *)
        let scheds = make_pair () in
        let t = Shard.create ~scheds ~lookahead () in
        Scheduler.spawn scheds.(1) ~name:"stuck" (fun () ->
            ignore (Sync.Ivar.read (Sync.Ivar.create scheds.(1))));
        Shard.run ~allow_blocked:true t ~deliver:(fun ~shard:_ ~time:_ _ -> ()));
    Alcotest.test_case "window width validation" `Quick (fun () ->
        Alcotest.(check bool) "zero lookahead rejected" true
          (match Shard.create ~scheds:(make_pair ()) ~lookahead:0 () with
          | _ -> false
          | exception Invalid_argument _ -> true));
    Alcotest.test_case "derive matches derived_seed" `Quick (fun () ->
        let a = Prng.derive ~seed:42 ~index:3 in
        let b = Prng.create ~seed:(Prng.derived_seed ~seed:42 ~index:3) in
        for _ = 1 to 50 do
          Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
        done);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"derived shard streams never correlate with the root" ~count:100
         QCheck.(pair small_int (int_range 1 8))
         (fun (seed, shards) ->
           (* Collect a prefix of the sequential stream and of every
              derived per-shard stream; any shared value would betray a
              coincident or shifted stream (64-bit collisions between
              genuinely distinct splitmix streams are negligible). *)
           let prefix p = List.init 32 (fun _ -> Prng.bits64 p) in
           let root = prefix (Prng.create ~seed) in
           let streams =
             List.init shards (fun k -> prefix (Prng.derive ~seed ~index:(k + 1)))
           in
           List.for_all
             (fun s -> List.for_all (fun v -> not (List.mem v root)) s)
             streams
           && (* …and the derived streams are pairwise disjoint too. *)
           List.for_all
             (fun (a, b) -> List.for_all (fun v -> not (List.mem v b)) a)
             (List.concat_map
                (fun (i, a) ->
                  List.filter_map
                    (fun (j, b) -> if i < j then Some (a, b) else None)
                    (List.mapi (fun j b -> (j, b)) streams))
                (List.mapi (fun i a -> (i, a)) streams))));
  ]

let () =
  Alcotest.run "sim_engine"
    [
      ("time", time_tests);
      ("prng", prng_tests);
      ("event_heap", heap_tests);
      ("scheduler", scheduler_tests);
      ("sync", sync_tests);
      ("cpu", cpu_tests);
      ("stats", stats_tests);
      ("trace", trace_tests);
      ("metrics", metrics_tests);
      ("shard", shard_tests);
    ]
