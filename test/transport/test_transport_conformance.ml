(* The transport conformance suite: one functor over Transport.S applied
   to all four stacks (portals, gm, rtscts, ibverbs), so a new backend is
   correct-by-construction — implement the signature, add one line here,
   and it inherits the whole behavioural contract:

     - per-pair in-order delivery, across the eager/rendezvous boundary
       (qcheck over random message ladders);
     - exactly-once delivery over a faulty fabric (Bernoulli loss +
       duplication under the reliability shim);
     - uniform peer-failure surfacing on node crash: wait raises
       Peer_failed, the callback fires, failed_ranks reports, and
       restart + reconnect clears the mark;
     - counters monotone non-decreasing over the endpoint's life.

   Plus one ibverbs-specific test: the RDMA-write fast path beats the
   same stack's own rendezvous on small messages (Liu et al.'s
   crossover, reproduced qualitatively). *)

open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

(* What the functor needs beyond Transport.S: how to build the wire this
   stack runs over (the NIC placement of the paper's taxonomy). *)
module type STACK = sig
  include Transport.S

  val wire : Simnet.Fabric.t -> Simnet.Transport.t
  val profile : Simnet.Profile.t
end

module Conformance (T : STACK) = struct
  (* Build an [n]-rank world over [T]'s wire and run [body fabric ep rank]
     in one fiber per rank. *)
  let with_world ?(n = 2) ?fault ?(reliability = false) ?seed body =
    let sched = Scheduler.create ?seed () in
    let fabric = Simnet.Fabric.create sched ~profile:T.profile ~nodes:n in
    (match fault with
    | None -> ()
    | Some f -> Simnet.Fabric.set_fault_model fabric (Some f));
    if reliability then ignore (Reliability.attach fabric);
    let tp = T.wire fabric in
    let ranks = Array.init n (fun r -> proc r 0) in
    let eps = Array.init n (fun rank -> T.create tp ~ranks ~rank) in
    Array.iteri
      (fun rank ep ->
        Scheduler.spawn sched ~name:(Printf.sprintf "%s.r%d" T.name rank)
          (fun () -> body sched fabric ep rank))
      eps;
    Scheduler.run sched;
    eps

  (* Payload [i] of a ladder: first byte is the sequence number, the rest
     a size-dependent fill — enough to detect both reordering and
     corruption. *)
  let payload ~seq ~size =
    Bytes.init (max 1 size) (fun j ->
        if j = 0 then Char.chr (seq land 0xff)
        else Char.chr ((seq + (j * 31)) land 0xff))

  let seq_of b = Char.code (Bytes.get b 0)

  (* 1. Per-pair in-order delivery, sizes straddling every stack's
     eager/rendezvous threshold. qcheck generates the ladder. *)
  let inorder_prop sizes =
    let n = List.length sizes in
    let got = ref [] in
    ignore
      (with_world (fun _sched _fabric ep rank ->
           if rank = 0 then begin
             let reqs =
               List.mapi
                 (fun i size ->
                   T.isend ep ~dst:1 ~tag:0 (payload ~seq:i ~size))
                 sizes
             in
             List.iter (fun r -> ignore (T.wait ep r)) reqs
           end
           else
             (* Post everything up front with full wildcards: matching
                order must equal per-pair arrival order. *)
             let bufs = List.map (fun size -> Bytes.create (max 1 size)) sizes in
             let reqs = List.map (fun b -> T.irecv ep b) bufs in
             got :=
               List.map2
                 (fun r b ->
                   let st = T.wait ep r in
                   (seq_of b, st.Transport.length))
                 reqs bufs));
    List.length !got = n
    && List.for_all2
         (fun i size -> List.nth !got i = (i, max 1 size))
         (List.init n (fun i -> i))
         sizes

  let inorder_qcheck =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:(T.name ^ ": per-pair in-order delivery (random ladders)")
         ~count:12
         QCheck.(list_of_size Gen.(1 -- 8) (int_range 0 20_000))
         (fun sizes -> match sizes with [] -> true | _ -> inorder_prop sizes))

  (* 2. Exactly-once delivery over a faulty fabric: 5% Bernoulli loss
     composed with 5% duplication, reliability shim underneath. A lost
     message would stall the ladder; a duplicate leaking through would
     steal a posted receive and break the sequence. *)
  let faulty_fabric () =
    let msgs = 30 in
    let fault =
      Simnet.Fault.compose
        [
          Simnet.Fault.bernoulli ~seed:11 ~p:0.05 ();
          Simnet.Fault.duplicator ~seed:12 ~p:0.05 ();
        ]
    in
    let got = ref [] in
    ignore
      (with_world ~fault ~reliability:true ~seed:7
         (fun _sched _fabric ep rank ->
           if rank = 0 then
             List.init msgs (fun i ->
                 T.isend ep ~dst:1 ~tag:i (payload ~seq:i ~size:512))
             |> List.iter (fun r -> ignore (T.wait ep r))
           else
             let bufs = List.init msgs (fun _ -> Bytes.create 512) in
             let reqs = List.map (fun b -> T.irecv ep ~source:0 b) bufs in
             got := List.map2 (fun r b ->
                 ignore (T.wait ep r);
                 seq_of b) reqs bufs));
    Alcotest.(check (list int))
      "every message exactly once, in order"
      (List.init msgs (fun i -> i land 0xff))
      !got

  (* 3. Peer death surfaces uniformly: the blocked wait raises
     Peer_failed, the registered callback fires, failed_ranks reports
     the peer — and restart + reconnect clears the mark on every stack
     (pure bookkeeping on connectionless ones). *)
  let peer_failure () =
    let cb_ranks = ref [] in
    let observed = ref None in
    let after_reconnect = ref None in
    ignore
      (with_world (fun sched fabric ep rank ->
           if rank = 0 then begin
             T.on_peer_failure ep (fun ~rank -> cb_ranks := rank :: !cb_ranks);
             Scheduler.after sched (Time_ns.us 50.) (fun () ->
                 Simnet.Fabric.crash fabric 1);
             (match T.wait ep (T.irecv ep ~source:1 (Bytes.create 64)) with
             | _ -> observed := Some `Completed
             | exception Transport.Peer_failed r ->
               observed := Some (`Failed (r, T.failed_ranks ep)));
             Simnet.Fabric.restart fabric 1;
             T.reconnect ep ~rank:1;
             after_reconnect := Some (T.failed_ranks ep)
           end));
    (match !observed with
    | Some (`Failed (r, failed)) ->
      Alcotest.(check int) "Peer_failed carries the rank" 1 r;
      Alcotest.(check (list int)) "failed_ranks reports it" [ 1 ] failed
    | Some `Completed -> Alcotest.fail "recv completed against a dead peer"
    | None -> Alcotest.fail "wait never returned");
    Alcotest.(check (list int)) "callback fired once" [ 1 ] !cb_ranks;
    Alcotest.(check (option (list int)))
      "restart + reconnect clears the mark" (Some []) !after_reconnect

  (* 4. Counters are monotone non-decreasing: sample after every
     operation of a mixed eager/rendezvous ping stream. *)
  let counters_monotone () =
    let violations = ref [] in
    ignore
      (with_world (fun _sched _fabric ep rank ->
           if rank = 0 then begin
             let prev = ref (T.counters ep) in
             let step () =
               let now = T.counters ep in
               List.iter
                 (fun (k, v) ->
                   match List.assoc_opt k !prev with
                   | Some v0 when v < v0 -> violations := (k, v0, v) :: !violations
                   | _ -> ())
                 now;
               prev := now
             in
             List.iter
               (fun size ->
                 ignore (T.wait ep (T.isend ep ~dst:1 ~tag:0 (payload ~seq:0 ~size)));
                 step ();
                 ignore (T.wait ep (T.irecv ep ~source:1 (Bytes.create 4)));
                 step ())
               [ 16; 256; 20_000; 16 ]
           end
           else
             List.iter
               (fun size ->
                 ignore (T.wait ep (T.irecv ep ~source:0 (Bytes.create (max 1 size))));
                 ignore (T.wait ep (T.isend ep ~dst:0 ~tag:0 (Bytes.create 4))))
               [ 16; 256; 20_000; 16 ]));
    List.iter
      (fun (k, v0, v) ->
        Alcotest.failf "counter %s decreased: %d -> %d" k v0 v)
      !violations

  let tests =
    [
      inorder_qcheck;
      Alcotest.test_case
        (T.name ^ ": exactly-once over lossy+duplicating fabric")
        `Quick faulty_fabric;
      Alcotest.test_case (T.name ^ ": peer failure surfaces uniformly")
        `Quick peer_failure;
      Alcotest.test_case (T.name ^ ": counters monotone") `Quick
        counters_monotone;
    ]
end

module Portals_c = Conformance (struct
  include Mpi.Mpi_portals.Tx

  let wire = Simnet.Transport.offload
  let profile = Simnet.Profile.myrinet_mcp
end)

module Gm_c = Conformance (struct
  include Mpi.Mpi_gm.Tx

  let wire = Simnet.Transport.offload
  let profile = Simnet.Profile.myrinet_mcp
end)

module Rtscts_c = Conformance (struct
  include Mpi.Mpi_rtscts.Tx

  let wire fabric = Rtscts.transport (Rtscts.create fabric)
  let profile = Simnet.Profile.myrinet_kernel
end)

module Ibverbs_c = Conformance (struct
  include Mpi.Mpi_ibverbs.Tx

  let wire = Simnet.Transport.offload
  let profile = Simnet.Profile.myrinet_mcp
end)

(* Liu et al.'s crossover: the same 64-byte ping-pong is faster through
   the ring fast path (default config) than when forced through
   rendezvous (eager_threshold = 0) — the reason the fast path exists. *)
let ibverbs_crossover () =
  let run config =
    let sched = Scheduler.create () in
    let fabric =
      Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
    in
    let tp = Simnet.Transport.offload fabric in
    let ranks = Array.init 2 (fun r -> proc r 0) in
    let eps =
      Array.init 2 (fun rank ->
          Mpi.Mpi_ibverbs.create tp ~ranks ~rank ~config ())
    in
    let finish = ref Time_ns.zero in
    Array.iteri
      (fun rank ep ->
        Scheduler.spawn sched ~name:(Printf.sprintf "xover.r%d" rank)
          (fun () ->
            let module I = Mpi.Mpi_ibverbs in
            let buf = Bytes.create 64 in
            for _ = 1 to 20 do
              if rank = 0 then begin
                ignore (I.wait ep (I.isend ep ~dst:1 ~tag:0 (Bytes.create 64)));
                ignore (I.wait ep (I.irecv ep ~source:1 buf))
              end
              else begin
                ignore (I.wait ep (I.irecv ep ~source:0 buf));
                ignore (I.wait ep (I.isend ep ~dst:0 ~tag:0 (Bytes.create 64)))
              end
            done;
            if rank = 0 then finish := Scheduler.now sched))
      eps;
    Scheduler.run sched;
    Time_ns.to_us !finish
  in
  let fast = run Mpi.Mpi_ibverbs.default_config in
  let rendezvous =
    run { Mpi.Mpi_ibverbs.default_config with eager_threshold = 0 }
  in
  if not (fast < rendezvous) then
    Alcotest.failf "fast path (%.1f us) not faster than rendezvous (%.1f us)"
      fast rendezvous

let () =
  Alcotest.run "transport conformance"
    [
      ("portals", Portals_c.tests);
      ("gm", Gm_c.tests);
      ("rtscts", Rtscts_c.tests);
      ("ibverbs", Ibverbs_c.tests);
      ( "ibverbs-crossover",
        [ Alcotest.test_case "fast path beats rendezvous at 64B" `Quick
            ibverbs_crossover ] );
    ]
