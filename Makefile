# Convenience entry points; CI runs `make ci`.

.PHONY: all build test fmt bench ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting is advisory when ocamlformat is not installed locally.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe

ci: build test fmt
	dune exec bin/portals_repro.exe -- \
		--experiment fig6 --metrics=json --trace-out _build/fig6.trace.json
	dune exec bin/portals_repro.exe -- \
		--experiment rel_loss_sweep --metrics=json --seed 42 > /dev/null

clean:
	dune clean
