# Convenience entry points; CI runs `make ci` plus the perf gate.

.PHONY: all build test fmt doc bench bench-json perf-gate smoke ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting is advisory when ocamlformat is not installed locally.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# API reference from the .mli doc comments; advisory when odoc is not
# installed locally. CI always runs `dune build @doc`.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc; \
		echo "HTML: _build/default/_doc/_html/index.html"; \
	else \
		echo "odoc not installed; skipping doc build (CI runs it)"; \
	fi

bench:
	dune exec bench/main.exe

# Machine-readable performance records (see EXPERIMENTS.md).
bench-json:
	dune exec bench/main.exe -- --json BENCH.json

# Fail if any experiment's events/sec regressed more than 25% against
# the committed baseline. Refresh with: make bench-json && cp BENCH.json
# bench/baseline.json (on a quiet machine; see README).
perf-gate:
	dune exec bench/main.exe -- \
		--json BENCH.json --baseline bench/baseline.json --tolerance 25

# Seeded acceptance smoke, shared with CI (scripts/smoke.sh).
smoke: build
	bash scripts/smoke.sh

ci: build test fmt smoke

clean:
	dune clean
