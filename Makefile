# Convenience entry points; CI runs `make ci` plus the perf gate.

# The one opam package list every CI job installs (kept here so the
# workflow jobs cannot drift apart; see .github/workflows/ci.yml).
CI_DEPS = dune alcotest qcheck qcheck-alcotest bechamel bechamel-notty \
	fmt logs cmdliner ocamlformat odoc

.PHONY: all build test fmt doc bench bench-json perf-gate smoke ci \
	ci-deps baseline-refresh clean

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting is advisory when ocamlformat is not installed locally.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# API reference from the .mli doc comments; advisory when odoc is not
# installed locally. CI always runs `dune build @doc`.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc; \
		echo "HTML: _build/default/_doc/_html/index.html"; \
	else \
		echo "odoc not installed; skipping doc build (CI runs it)"; \
	fi

bench:
	dune exec bench/main.exe

# Machine-readable performance records (see EXPERIMENTS.md).
bench-json:
	dune exec bench/main.exe -- --json BENCH.json

# Fail if any experiment's events/sec regressed more than 25% against
# the committed baseline. Refresh with `make baseline-refresh` on a
# quiet machine; see README.
perf-gate:
	dune exec bench/main.exe -- \
		--json BENCH.json --baseline bench/baseline.json --tolerance 25

# Install exactly what CI installs (shared by every workflow job).
ci-deps:
	opam install --yes $(CI_DEPS)

# Rebuild bench/baseline.json as the best-of-3 events/sec per record.
# Three full passes smooth out scheduler noise; taking the max per id
# keeps the gate honest (a regression must beat the machine's best day,
# not an unlucky run). Run on a quiet machine, then commit the file.
baseline-refresh:
	for i in 1 2 3; do \
		dune exec bench/main.exe -- --json BENCH.$$i.json || exit 1; \
	done
	python3 scripts/merge_baselines.py \
		BENCH.1.json BENCH.2.json BENCH.3.json > bench/baseline.json
	rm -f BENCH.1.json BENCH.2.json BENCH.3.json
	@echo "wrote bench/baseline.json (best of 3); review and commit it"

# Seeded acceptance smoke, shared with CI (scripts/smoke.sh).
smoke: build
	bash scripts/smoke.sh

ci: build test fmt smoke

clean:
	dune clean
