#!/usr/bin/env python3
"""Merge several BENCH.json passes into one baseline (best pass per id).

Usage: merge_baselines.py BENCH.1.json [BENCH.2.json ...] > baseline.json

For every record id, keep the record from the pass with the highest
events_per_sec (ties: first pass wins). The perf gate compares against
the machine's best observed rate, so a regression has to be real, not a
one-off scheduler hiccup. Record ids present in only some passes are
kept from whichever passes have them.
"""

import json
import sys


def main(paths):
    if not paths:
        sys.exit("usage: merge_baselines.py BENCH.json [BENCH.json ...]")
    schema = None
    best = {}
    order = []
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if schema is None:
            schema = doc.get("schema", "portals-bench/1")
        elif doc.get("schema", schema) != schema:
            sys.exit(f"{path}: schema {doc.get('schema')!r} != {schema!r}")
        for rec in doc.get("records", []):
            rid = rec["id"]
            if rid not in best:
                order.append(rid)
                best[rid] = rec
            elif rec.get("events_per_sec", 0.0) > best[rid].get(
                "events_per_sec", 0.0
            ):
                best[rid] = rec
    out = {"schema": schema, "records": [best[rid] for rid in order]}
    json.dump(out, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main(sys.argv[1:])
