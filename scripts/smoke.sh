#!/usr/bin/env bash
# Acceptance smoke tests, shared by `make smoke` and CI. Each block must
# stay cheap (seconds): these guard observable behaviour at fixed seeds,
# not performance. Set DUNE to wrap dune (CI uses "opam exec -- dune").
set -euo pipefail

DUNE=${DUNE:-dune}
OUT=${SMOKE_OUT:-_build/smoke}
mkdir -p "$OUT"

echo "== smoke: fig6 metrics + trace =="
$DUNE exec bin/portals_repro.exe -- \
  --experiment fig6 --metrics=json --trace-out "$OUT/fig6.trace.json"
python3 -c "import json; json.load(open('$OUT/fig6.trace.json'))"

echo "== smoke: rel_loss_sweep at a fixed seed =="
$DUNE exec bin/portals_repro.exe -- \
  --experiment rel_loss_sweep --metrics=json --seed 42 \
  | tee "$OUT/rel_loss_sweep.out"
grep -q 'rel.retransmits' "$OUT/rel_loss_sweep.out"
grep -q 'fabric.drops_injected' "$OUT/rel_loss_sweep.out"

echo "== smoke: crash campaign (one mid-run restart, fixed seed) =="
# Both backends through the identical crash + restart schedule; the run
# must terminate (no deadlock) and print one row each.
$DUNE exec bin/portals_repro.exe -- \
  crash-restart --run-seed 42 | tee "$OUT/crash_restart.out"
grep -q '^portals ' "$OUT/crash_restart.out"
grep -q '^gm ' "$OUT/crash_restart.out"
# The same schedule on a lossy, flapping wire: crash recovery must
# compose with the wire fault models.
$DUNE exec bin/portals_repro.exe -- \
  crash-restart --run-seed 42 --fault "bernoulli:0.02+flap:400:40"

echo "== smoke: topology congestion sweep (4x4 torus, fixed seed) =="
# Both traffic patterns over the shared-link torus; the per-link
# queue-depth instruments must reach the metrics registry.
$DUNE exec bin/portals_repro.exe -- \
  congestion --nodes 16 --topologies torus2d:4x4 --run-seed 7 --metrics \
  | tee "$OUT/congestion.out"
grep -q '^torus2d:4x4 *nearest-neighbor' "$OUT/congestion.out"
grep -q '^torus2d:4x4 *all-to-all' "$OUT/congestion.out"
grep -q 'link.queue_depth' "$OUT/congestion.out"
# Multi-hop routing composes with wire loss, the reliability shim and a
# bounded hop queue: the fig6 sweep must still terminate and report.
$DUNE exec bin/portals_repro.exe -- \
  --experiment fig6 --topology ring --queue-limit 4 --loss 0.02 --seed 42 \
  | tee "$OUT/fig6_ring_lossy.out"
grep -q 'Portals3.0-MCP' "$OUT/fig6_ring_lossy.out"

echo "== smoke: cross-stack benchmark matrix (2 transports x 2 axes) =="
# One host-progress stack and one offload stack through the same two
# axes at a fixed seed; rows must appear for both.
$DUNE exec bin/portals_repro.exe -- \
  matrix --quick --run-seed 42 --transports portals,ibverbs \
  --axes latency,overlap | tee "$OUT/matrix.out"
grep -q '^portals ' "$OUT/matrix.out"
grep -q '^ibverbs ' "$OUT/matrix.out"
# A malformed --transports list must die with a clean usage error.
if $DUNE exec bin/portals_repro.exe -- matrix --transports bogus \
    2>"$OUT/matrix.err"; then
  echo "matrix accepted a bogus transport list" >&2
  exit 1
fi
grep -q 'unknown transport' "$OUT/matrix.err"

echo "== smoke: one-sided RMA workloads (4x4 torus + lossy wire) =="
# The 16-rank window workloads pinned onto a shared-link torus at a
# fixed seed: the halo result must be byte-identical to the send/recv
# variant and the hash table's occupancy counter must agree with its
# filled slots.
$DUNE exec bin/portals_repro.exe -- \
  rma --quick --run-seed 7 --workloads halo,hashtable \
  --topology torus2d:4x4 | tee "$OUT/rma.out"
grep -q 'byte-identical' "$OUT/rma.out"
grep -q 'occupancy' "$OUT/rma.out"
# The atomics must stay exactly-once over a lossy wire with the
# reliability shim attached.
$DUNE exec bin/portals_repro.exe -- \
  rma --quick --run-seed 42 --workloads latency,passive --loss 0.05 \
  | tee "$OUT/rma_lossy.out"
grep -q '^passive ' "$OUT/rma_lossy.out"
# A malformed --workloads list must die with a clean usage error.
if $DUNE exec bin/portals_repro.exe -- rma --workloads bogus \
    2>"$OUT/rma.err"; then
  echo "rma accepted a bogus workload list" >&2
  exit 1
fi
grep -q 'unknown workload' "$OUT/rma.err"

echo "== smoke: chaos campaign (fixed seed, zero violations) =="
# One cell per fault axis plus the mixed cell, invariants checked after
# every cell; the report artifact is what CI uploads.
$DUNE exec bin/portals_repro.exe -- \
  chaos --quick --run-seed 0 --json "$OUT/chaos.json" | tee "$OUT/chaos.out"
grep -q 'total violations: 0' "$OUT/chaos.out"
python3 -c "import json; json.load(open('$OUT/chaos.json'))"
# Corruption + a scheduled cut + a crash composed on a routed 4x4 torus:
# per-hop corruption under the checksummed encoding, a mid-run
# partition, and a node restart must still leave both traffic patterns
# reporting (the reliability shim recovers everything recoverable).
$DUNE exec bin/portals_repro.exe -- \
  congestion --nodes 16 --topologies torus2d:4x4 --run-seed 7 \
  --fault "corrupt:0.01+partition:0.1|2.3@400:900" --crash "5@300:700" \
  | tee "$OUT/chaos_torus.out"
grep -q '^torus2d:4x4 *nearest-neighbor' "$OUT/chaos_torus.out"
grep -q '^torus2d:4x4 *all-to-all' "$OUT/chaos_torus.out"
# A malformed fault spec must die with a clean usage error naming the
# offending component, never be clamped into something runnable.
for bad in "corrupt:2" "delay:10:20" "partition:0|1@50:20"; do
  if $DUNE exec bin/portals_repro.exe -- congestion --fault "$bad" \
      2>"$OUT/chaos_spec.err"; then
    echo "accepted malformed fault spec: $bad" >&2
    exit 1
  fi
  grep -q 'bad fault spec' "$OUT/chaos_spec.err"
done

echo "== smoke: NIC-offloaded collectives (4x4 torus, fixed seed) =="
# The triggered-chain engine must agree with the host-driven reference
# byte for byte on a routed torus, and the quick latency table — busy
# host cells included — must terminate and show both engines.
$DUNE exec bin/portals_repro.exe -- \
  coll --check --run-seed 7 | tee "$OUT/coll_check.out"
grep -q 'host and nic agree' "$OUT/coll_check.out"
$DUNE exec bin/portals_repro.exe -- \
  coll --quick --run-seed 7 | tee "$OUT/coll.out"
grep -q '^torus2d .* busy  nic' "$OUT/coll.out"
grep -q '^torus2d .* busy  host' "$OUT/coll.out"
# The S2 scaling sweep must run under either engine; a bogus engine name
# must die with a clean usage error.
$DUNE exec bin/portals_repro.exe -- \
  collectives --collectives nic --nodes 2,4,8 | tee "$OUT/coll_s2.out"
grep -q '^8 ' "$OUT/coll_s2.out"
if $DUNE exec bin/portals_repro.exe -- coll --collectives bogus \
    2>"$OUT/coll.err"; then
  echo "coll accepted a bogus collectives engine" >&2
  exit 1
fi
grep -q 'unknown collectives engine' "$OUT/coll.err"

echo "== smoke: parallel determinism (--domains 1 vs 4, fixed seeds) =="
# The parallel engine's contract: same seed, same world => byte-identical
# output at any domain count. The headline figure, the chaos quick grid
# (faults, partitions, crashes and RMA included) and the PAR delivery
# digest must all match the sequential reference exactly.
$DUNE exec bin/portals_repro.exe -- fig6 --seed 42 > "$OUT/fig6.d1.out"
$DUNE exec bin/portals_repro.exe -- fig6 --seed 42 --domains 4 \
  > "$OUT/fig6.d4.out"
diff "$OUT/fig6.d1.out" "$OUT/fig6.d4.out"
$DUNE exec bin/portals_repro.exe -- chaos --quick --run-seed 0 \
  > "$OUT/chaos.d1.out"
$DUNE exec bin/portals_repro.exe -- chaos --quick --run-seed 0 --domains 4 \
  > "$OUT/chaos.d4.out"
diff "$OUT/chaos.d1.out" "$OUT/chaos.d4.out"
$DUNE exec bin/portals_repro.exe -- par --check --domains 4 --run-seed 7 \
  | tee "$OUT/par.out"
grep -q 'domains=1 and domains=4 agree' "$OUT/par.out"

echo "== smoke: ok =="
