#!/usr/bin/env bash
# Acceptance smoke tests, shared by `make smoke` and CI. Each block must
# stay cheap (seconds): these guard observable behaviour at fixed seeds,
# not performance. Set DUNE to wrap dune (CI uses "opam exec -- dune").
set -euo pipefail

DUNE=${DUNE:-dune}
OUT=${SMOKE_OUT:-_build/smoke}
mkdir -p "$OUT"

echo "== smoke: fig6 metrics + trace =="
$DUNE exec bin/portals_repro.exe -- \
  --experiment fig6 --metrics=json --trace-out "$OUT/fig6.trace.json"
python3 -c "import json; json.load(open('$OUT/fig6.trace.json'))"

echo "== smoke: rel_loss_sweep at a fixed seed =="
$DUNE exec bin/portals_repro.exe -- \
  --experiment rel_loss_sweep --metrics=json --seed 42 \
  | tee "$OUT/rel_loss_sweep.out"
grep -q 'rel.retransmits' "$OUT/rel_loss_sweep.out"
grep -q 'fabric.drops_injected' "$OUT/rel_loss_sweep.out"

echo "== smoke: crash campaign (one mid-run restart, fixed seed) =="
# Both backends through the identical crash + restart schedule; the run
# must terminate (no deadlock) and print one row each.
$DUNE exec bin/portals_repro.exe -- \
  crash-restart --run-seed 42 | tee "$OUT/crash_restart.out"
grep -q '^portals ' "$OUT/crash_restart.out"
grep -q '^gm ' "$OUT/crash_restart.out"
# The same schedule on a lossy, flapping wire: crash recovery must
# compose with the wire fault models.
$DUNE exec bin/portals_repro.exe -- \
  crash-restart --run-seed 42 --fault "bernoulli:0.02+flap:400:40"

echo "== smoke: ok =="
