(* Command-line driver for the reproduction: run any experiment (table or
   figure) on demand with tweakable parameters.

     dune exec bin/portals_repro.exe -- --help
     dune exec bin/portals_repro.exe -- fig6 --sizes 50000 --work 0,10,20
     dune exec bin/portals_repro.exe -- latency --size 1024 *)

open Cmdliner

let ppf = Format.std_formatter

(* --- shared arguments -------------------------------------------------- *)

let transport_conv =
  let parse s =
    match Runtime.Cli.transport_kind_of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  let print fmt t = Format.fprintf fmt "%s" (Runtime.transport_kind_name t) in
  Arg.conv (parse, print)

let backend_conv =
  let parse = function
    | "portals" -> Ok `Portals
    | "gm" -> Ok `Gm
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  let print fmt = function
    | `Portals -> Format.fprintf fmt "portals"
    | `Gm -> Format.fprintf fmt "gm"
  in
  Arg.conv (parse, print)

let floats_conv = Arg.list ~sep:',' Arg.float
let ints_conv = Arg.list ~sep:',' Arg.int

(* Comma-separated name lists ("--transports gm,ibverbs") validated
   against a closed set through the shared Runtime.Cli plumbing, so this
   CLI and bench/main reject a malformed list with the same message. *)
let names_conv ~what ~valid =
  let parse s =
    match Runtime.Cli.pick_list ~what ~valid s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  let print fmt l = Format.fprintf fmt "%s" (String.concat "," l) in
  Arg.conv (parse, print)

(* Every command takes [--loss] / [--seed] / [--fault] / [--crash]: they
   set the process-wide run environment (Runtime.set_run_env) before the
   experiment builds its worlds, so any experiment replays
   deterministically on a degraded fabric — lossy/bursty/flapping wires,
   scheduled node crash-restarts — with the reliability protocol shimmed
   underneath. *)
let env_term =
  let loss =
    Arg.(
      value
      & opt (some float) None
      & info [ "loss" ] ~docv:"RATE"
          ~doc:
            "Run on a lossy fabric: drop each wire message with \
             probability $(docv) (in [0, 1)) and shim the reliability \
             protocol underneath the transport.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Default scheduler/fault PRNG seed, for deterministic replay \
             (default 0).")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"MODEL"
          ~doc:
            "Run every world under fault model $(docv): \
             $(b,bernoulli:P), $(b,gilbert:PE:PX), $(b,duplicate:P), \
             $(b,corrupt:P) (seeded bit-flips/truncations), \
             $(b,delay:MEAN_US\\[:JITTER_US\\]) (extra seeded latency), \
             $(b,flap:PERIOD_US:DOWN_US), \
             $(b,partition:A.B|C.D\\@CUT_US\\[:HEAL_US\\]) (scheduled \
             group cut; $(b,>) instead of $(b,|) cuts one way only) or \
             $(b,none); combine with $(b,+) (a drop by any component \
             wins, corruption over delay). Implies the reliability shim, \
             like $(b,--loss), and switches on CRC-32C frame \
             checksums.")
  in
  let crash =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash" ] ~docv:"SPEC"
          ~doc:
            "Crash-stop nodes mid-run: $(docv) is a comma-separated list \
             of $(b,NID\\@DOWN_US) (crash forever) or \
             $(b,NID\\@DOWN_US:UP_US) (restart with a fresh incarnation \
             at UP_US). Applied to every world the experiment builds.")
  in
  let topology =
    Arg.(
      value
      & opt (some string) None
      & info [ "topology" ] ~docv:"NAME[:DIMS]"
          ~doc:
            "Interconnect topology for every world the experiment \
             builds: $(b,full) (default; private wires, the seed \
             model), $(b,ring), $(b,torus2d\\[:AxB\\]), \
             $(b,torus3d\\[:AxBxC\\]) or $(b,fattree\\[:K\\]). Without \
             explicit dimensions the shape is fitted to each world's \
             node count; with them, the product must match. Messages \
             then hop across shared links (dimension-order or up/down \
             routed) and contend.")
  in
  let queue_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Bound each shared hop link's queue at $(docv) outstanding \
             transmissions; overload beyond it is congestion-dropped \
             (and re-sent by the reliability shim when one is \
             attached). Only meaningful with a non-full $(b,--topology).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard every world the experiment builds across $(docv) \
             OCaml domains (default 1 = the sequential reference \
             scheduler). Nodes are split into contiguous blocks, each \
             shard runs its own event heap, and a conservative window \
             barrier synchronizes them; same seed gives the same \
             simulated history at any $(docv). Worlds with fewer nodes \
             than $(docv) use one shard per node.")
  in
  let collectives =
    Arg.(
      value
      & opt (some string) None
      & info [ "collectives" ] ~docv:"ENGINE"
          ~doc:
            "Collective engine for every workload the experiment builds: \
             $(b,host) (default; host-driven trees, every hop a host \
             fiber) or $(b,nic) (NIC-resident triggered chains — tree \
             hops fire inside the interface with no host involvement). \
             Results are byte-identical; only busy-host timing differs.")
  in
  let perf =
    Arg.(
      value & flag
      & info [ "perf" ]
          ~doc:
            "After the experiment, print the run's totals: scheduler \
             events processed, fibers spawned, simulated time, wall time \
             and sim-events/sec.")
  in
  let set loss seed fault crashes topology queue_limit domains collectives perf =
    if perf then begin
      let t0 = Unix.gettimeofday () in
      at_exit (fun () ->
          let totals = Sim_engine.Scheduler.global_totals () in
          let wall = Unix.gettimeofday () -. t0 in
          let events = totals.Sim_engine.Scheduler.t_events in
          Format.printf
            "perf: %d sim-events, %d fibers, %.1f ms simulated | %.2f s \
             wall, %.0f sim-events/sec@."
            events totals.Sim_engine.Scheduler.t_fibers
            (Sim_engine.Time_ns.to_us totals.Sim_engine.Scheduler.t_sim_time
            /. 1e3)
            wall
            (if wall > 0. then float_of_int events /. wall else 0.))
    end;
    match
      Runtime.set_run_env ?loss ?seed ?fault ?crashes ?topology ?queue_limit
        ?domains ?collectives ()
    with
    | () -> `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  Term.(
    ret
      (const set $ loss $ seed $ fault $ crash $ topology $ queue_limit
     $ domains $ collectives $ perf))

(* --- observability flags ------------------------------------------------ *)

let report_format_conv =
  let parse s =
    match Sim_engine.Report.format_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown metrics format %S (table|json)" s))
  in
  let print fmt = function
    | Sim_engine.Report.Table -> Format.fprintf fmt "table"
    | Sim_engine.Report.Json -> Format.fprintf fmt "json"
  in
  Arg.conv (parse, print)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some Sim_engine.Report.Table) (some report_format_conv) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Print the run's metrics registry snapshot after the experiment \
           output; FORMAT is $(b,table) (default) or $(b,json).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable structured tracing and write the spans to FILE as Chrome \
           trace_event JSON (open in chrome://tracing or Perfetto).")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let emit_observability ~metrics ~trace_out ~snapshot ~traces =
  (match metrics with
  | None -> ()
  | Some format ->
    Sim_engine.Report.print ~format ppf snapshot;
    Format.pp_print_flush ppf ());
  match trace_out with
  | None -> ()
  | Some path -> (
    match write_file path (Sim_engine.Trace.Chrome.to_string traces) with
    | () -> Format.fprintf ppf "trace written to %s@." path
    | exception Sys_error msg ->
      Format.eprintf "portals_repro: cannot write trace: %s@." msg;
      exit 1)

(* --- commands ----------------------------------------------------------- *)

let tables_cmd =
  let run () = Experiments.Tables.pp ppf (Experiments.Tables.run ()) in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate Tables 1-6 (wire formats)")
    Term.(const run $ env_term)

let protocols_cmd =
  let run () transport =
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_put ~transport ());
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_get ~transport ())
  in
  let transport =
    Arg.(value & opt transport_conv Runtime.Offload
         & info [ "transport" ] ~doc:"offload | kernel | rtscts")
  in
  Cmd.v
    (Cmd.info "protocols" ~doc:"Regenerate Figures 1-2 (put/get timelines)")
    Term.(const run $ env_term $ transport)

let translation_cmd =
  let run () depths =
    Experiments.Translation.pp ppf (Experiments.Translation.run ~depths ())
  in
  let depths =
    Arg.(value & opt ints_conv Experiments.Translation.default_depths
         & info [ "depths" ] ~doc:"Match-list depths to sweep")
  in
  Cmd.v
    (Cmd.info "translation" ~doc:"Regenerate Figures 3-4 (address translation)")
    Term.(const run $ env_term $ depths)

let latency_cmd =
  let run () size iterations =
    Experiments.Latency.pp ppf
      (Experiments.Latency.run ~message_size:size ~iterations ())
  in
  let size =
    Arg.(value & opt int 0 & info [ "size" ] ~doc:"Message size in bytes")
  in
  let iterations =
    Arg.(value & opt int 50 & info [ "iterations" ] ~doc:"Ping-pong rounds")
  in
  Cmd.v (Cmd.info "latency" ~doc:"Ping-pong latency across placements (L1)")
    Term.(const run $ env_term $ size $ iterations)

let bandwidth_cmd =
  let run () sizes count =
    Experiments.Bandwidth.pp ppf (Experiments.Bandwidth.run ~sizes ~count ())
  in
  let sizes =
    Arg.(value & opt ints_conv Experiments.Bandwidth.default_sizes
         & info [ "sizes" ] ~doc:"Message sizes in bytes")
  in
  let count =
    Arg.(value & opt int 16 & info [ "count" ] ~doc:"Messages per size")
  in
  Cmd.v (Cmd.info "bandwidth" ~doc:"Streaming bandwidth vs size (B1)")
    Term.(const run $ env_term $ sizes $ count)

let fig5_cmd =
  let run () backend transport size batch work tests metrics trace_out =
    let backend_name = match backend with `Portals -> "portals" | `Gm -> "gm" in
    let r =
      Experiments.Fig5.run
        ~capture_trace:(trace_out <> None)
        {
          Experiments.Fig5.backend;
          transport;
          message_size = size;
          batch;
          iterations = 4;
          work = Sim_engine.Time_ns.ms work;
          tests_during_work = tests;
        }
    in
    Format.fprintf ppf
      "fig5: backend=%s work=%.1fms -> mean wait %.3f ms (max %.3f), work took %.3f ms@."
      backend_name work
      (r.Experiments.Fig5.mean_wait /. 1000.)
      (r.Experiments.Fig5.max_wait /. 1000.)
      (r.Experiments.Fig5.mean_work_elapsed /. 1000.);
    emit_observability ~metrics ~trace_out ~snapshot:r.Experiments.Fig5.metrics
      ~traces:[ (backend_name, r.Experiments.Fig5.spans) ]
  in
  let backend =
    Arg.(value & opt backend_conv `Portals & info [ "backend" ] ~doc:"portals | gm")
  in
  let transport =
    Arg.(value & opt transport_conv Runtime.Rtscts
         & info [ "transport" ] ~doc:"offload | kernel | rtscts")
  in
  let size = Arg.(value & opt int 50_000 & info [ "size" ] ~doc:"Message size") in
  let batch = Arg.(value & opt int 10 & info [ "batch" ] ~doc:"Messages per batch") in
  let work = Arg.(value & opt float 10.0 & info [ "work" ] ~doc:"Work interval, ms") in
  let tests =
    Arg.(value & opt int 0 & info [ "tests" ] ~doc:"MPI test calls during work")
  in
  Cmd.v (Cmd.info "fig5" ~doc:"One application-bypass measurement (Table 5)")
    Term.(
      const run $ env_term $ backend $ transport $ size $ batch $ work $ tests
      $ metrics_arg $ trace_out_arg)

let run_fig6 ?message_size ?work_ms ?iterations ~metrics ~trace_out () =
  let t =
    Experiments.Fig6.run ?message_size ?work_ms ?iterations
      ~capture_trace:(trace_out <> None) ()
  in
  Experiments.Fig6.pp ppf t;
  emit_observability ~metrics ~trace_out ~snapshot:t.Experiments.Fig6.metrics
    ~traces:t.Experiments.Fig6.traces

let fig6_cmd =
  let run () size work_ms iterations metrics trace_out =
    run_fig6 ~message_size:size ~work_ms ~iterations ~metrics ~trace_out ()
  in
  let size = Arg.(value & opt int 50_000 & info [ "size" ] ~doc:"Message size") in
  let work =
    Arg.(value & opt floats_conv Experiments.Fig6.work_intervals_ms
         & info [ "work" ] ~doc:"Work intervals (ms), comma separated")
  in
  let iterations =
    Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"Averaging repetitions")
  in
  Cmd.v (Cmd.info "fig6" ~doc:"Regenerate Figure 6 (application bypass)")
    Term.(
      const run $ env_term $ size $ work $ iterations $ metrics_arg
      $ trace_out_arg)

let memory_cmd =
  let run () jobs =
    Experiments.Scaling.pp_memory ppf
      (Experiments.Scaling.run_memory ~job_sizes:jobs ())
  in
  let jobs =
    Arg.(value & opt ints_conv [ 4; 8; 16; 32; 64 ]
         & info [ "jobs" ] ~doc:"Job sizes to sweep")
  in
  Cmd.v (Cmd.info "memory" ~doc:"Unexpected-buffer memory vs job size (S1)")
    Term.(const run $ env_term $ jobs)

let collectives_cmd =
  let run () nodes =
    Experiments.Scaling.pp_collectives ppf
      (Experiments.Scaling.run_collectives ~node_counts:nodes ())
  in
  let nodes =
    Arg.(value & opt ints_conv [ 2; 4; 8; 16; 32; 64; 128; 256 ]
         & info [ "nodes" ] ~doc:"Node counts to sweep")
  in
  Cmd.v (Cmd.info "collectives" ~doc:"Collective scaling (S2)")
    Term.(const run $ env_term $ nodes)

let drops_cmd =
  let run () = Experiments.Drops.pp ppf (Experiments.Drops.run ()) in
  Cmd.v (Cmd.info "drops" ~doc:"Trigger and count every drop reason (A1)")
    Term.(const run $ env_term)

let ablation_cmd =
  let run () =
    Experiments.Ablation.pp_threshold ppf (Experiments.Ablation.run_threshold ());
    Experiments.Ablation.pp_interrupts ppf (Experiments.Ablation.run_interrupts ())
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablations (A2)")
    Term.(const run $ env_term)

let run_rel_loss_sweep ?losses ?seeds ?msgs ?size ~metrics () =
  let registry = Sim_engine.Metrics.create () in
  let rows =
    Experiments.Rel_loss_sweep.run ?losses ?seeds ?msgs ?size ~registry ()
  in
  Experiments.Rel_loss_sweep.pp ppf rows;
  match metrics with
  | None -> ()
  | Some format ->
    Sim_engine.Report.print ~format ppf (Sim_engine.Metrics.snapshot registry);
    Format.pp_print_flush ppf ()

let rel_loss_sweep_cmd =
  let run () losses seeds msgs size metrics =
    run_rel_loss_sweep ~losses ~seeds ~msgs ~size ~metrics ()
  in
  let losses =
    Arg.(value & opt floats_conv Experiments.Rel_loss_sweep.default_losses
         & info [ "losses" ] ~doc:"Wire loss rates to sweep")
  in
  let seeds =
    Arg.(value & opt ints_conv [ 1; 2; 3 ]
         & info [ "seeds" ] ~doc:"PRNG seeds averaged per loss rate")
  in
  let msgs =
    Arg.(value & opt int 200 & info [ "msgs" ] ~doc:"Messages per stream")
  in
  let size =
    Arg.(value & opt int 1024 & info [ "size" ] ~doc:"Message size in bytes")
  in
  Cmd.v
    (Cmd.info "rel-loss-sweep"
       ~doc:"Goodput/completion vs wire loss, reliable vs raw fabric (R1)")
    Term.(const run $ env_term $ losses $ seeds $ msgs $ size $ metrics_arg)

let crash_restart_cmd =
  let run () msgs size down_at up_at horizon seed =
    let d = Experiments.Crash_restart.default_config in
    let config =
      {
        d with
        Experiments.Crash_restart.msgs;
        size;
        down_at = Sim_engine.Time_ns.us down_at;
        up_at = Sim_engine.Time_ns.us up_at;
        horizon = Sim_engine.Time_ns.us horizon;
      }
    in
    Format.fprintf ppf "%a@." Experiments.Crash_restart.pp_config config;
    Experiments.Crash_restart.pp ppf
      (Experiments.Crash_restart.run ~config ~seed ())
  in
  let d = Experiments.Crash_restart.default_config in
  let msgs =
    Arg.(value & opt int d.Experiments.Crash_restart.msgs
         & info [ "msgs" ] ~doc:"Messages streamed by the survivor")
  in
  let size =
    Arg.(value & opt int d.Experiments.Crash_restart.size
         & info [ "size" ] ~doc:"Message size in bytes")
  in
  let down_at =
    Arg.(value
         & opt float (Sim_engine.Time_ns.to_us d.Experiments.Crash_restart.down_at)
         & info [ "down-at" ] ~doc:"Victim crash time, us")
  in
  let up_at =
    Arg.(value
         & opt float (Sim_engine.Time_ns.to_us d.Experiments.Crash_restart.up_at)
         & info [ "up-at" ] ~doc:"Victim restart time, us")
  in
  let horizon =
    Arg.(value
         & opt float (Sim_engine.Time_ns.to_us d.Experiments.Crash_restart.horizon)
         & info [ "horizon" ] ~doc:"Simulation horizon, us")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "run-seed" ] ~doc:"World PRNG seed")
  in
  Cmd.v
    (Cmd.info "crash-restart"
       ~doc:
         "Mid-run node crash + restart: recovery time and messages lost, \
          Portals vs GM (C1)")
    Term.(const run $ env_term $ msgs $ size $ down_at $ up_at $ horizon $ seed)

let run_congestion ?nodes ?topologies ?msgs_per_peer ?size ?queue_limit ?seed
    ~metrics () =
  let registry = Sim_engine.Metrics.create () in
  let rows =
    Experiments.Congestion.run ?nodes ?topologies ?msgs_per_peer ?size
      ?queue_limit ?seed ~registry ()
  in
  Experiments.Congestion.pp ppf rows;
  match metrics with
  | None -> ()
  | Some format ->
    Sim_engine.Report.print ~format ppf (Sim_engine.Metrics.snapshot registry);
    Format.pp_print_flush ppf ()

let congestion_cmd =
  let run () nodes topologies msgs size queue_limit seed metrics =
    run_congestion ~nodes ~topologies ~msgs_per_peer:msgs ~size ?queue_limit
      ~seed ~metrics ()
  in
  let nodes =
    Arg.(value & opt int 16 & info [ "nodes" ] ~doc:"Nodes per world")
  in
  let topologies =
    Arg.(
      value
      & opt (list ~sep:',' string) Experiments.Congestion.default_topologies
      & info [ "topologies" ]
          ~doc:"Topology specs to sweep (comma separated; see --topology)")
  in
  let msgs =
    Arg.(value & opt int 8 & info [ "msgs" ] ~doc:"Messages per (src, peer) pair")
  in
  let size =
    Arg.(value & opt int 4096 & info [ "size" ] ~doc:"Message size in bytes")
  in
  let queue_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~doc:"Hop-link queue limit (congestion drops beyond it)")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "run-seed" ] ~doc:"World PRNG seed")
  in
  Cmd.v
    (Cmd.info "congestion"
       ~doc:
         "All-to-all vs nearest-neighbor goodput across interconnect \
          topologies (N1)")
    Term.(
      const run $ env_term $ nodes $ topologies $ msgs $ size $ queue_limit
      $ seed $ metrics_arg)

let run_matrix ?(transports = Experiments.Matrix.transport_names)
    ?(axes = Experiments.Matrix.axis_names) ?(quick = false) ?(seed = 0)
    ?json () =
  let t = Experiments.Matrix.run ~transports ~axes ~quick ~seed () in
  Experiments.Matrix.pp ppf t;
  match json with
  | None -> ()
  | Some out ->
    let records =
      Experiments.Matrix.perf_records ~transports ~axes ~quick ~seed ()
    in
    Experiments.Perf.write_json ~path:out records;
    Format.fprintf ppf "matrix: wrote %s@." out

let matrix_cmd =
  let run () transports axes quick seed json =
    run_matrix ~transports ~axes ~quick ~seed ?json ()
  in
  let transports =
    Arg.(
      value
      & opt
          (names_conv ~what:"transport" ~valid:Experiments.Matrix.transport_names)
          Experiments.Matrix.transport_names
      & info [ "transports" ] ~docv:"LIST"
          ~doc:
            "Comma-separated stacks to run ($(b,portals), $(b,gm), \
             $(b,rtscts), $(b,ibverbs); $(b,all) for every stack).")
  in
  let axes =
    Arg.(
      value
      & opt (names_conv ~what:"axis" ~valid:Experiments.Matrix.axis_names)
          Experiments.Matrix.axis_names
      & info [ "axes" ] ~docv:"LIST"
          ~doc:
            "Comma-separated axes to run ($(b,latency), $(b,bandwidth), \
             $(b,overlap), $(b,loss-goodput), $(b,congestion-goodput); \
             $(b,all) for every axis).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smoke-test sized workloads.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "run-seed" ] ~doc:"World PRNG seed")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Also meter every cell as a portals-bench/1 record \
             (id $(b,MX.<transport>.<axis>)) and write the report to \
             $(docv) — the file the CI perf gate consumes.")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Cross-stack benchmark matrix: every transport x \
          {latency, bandwidth, overlap, loss-goodput, congestion-goodput} \
          (MX)")
    Term.(const run $ env_term $ transports $ axes $ quick $ seed $ json)

let run_rma ?(workloads = Experiments.Rma.workload_names) ?(quick = false)
    ?(seed = 0) ?json () =
  let t = Experiments.Rma.run ~workloads ~quick ~seed () in
  Experiments.Rma.pp ppf t;
  match json with
  | None -> ()
  | Some out ->
    let records = Experiments.Rma.perf_records ~workloads ~quick ~seed () in
    Experiments.Perf.write_json ~path:out records;
    Format.fprintf ppf "rma: wrote %s@." out

let rma_cmd =
  let run () workloads quick seed json = run_rma ~workloads ~quick ~seed ?json () in
  let workloads =
    Arg.(
      value
      & opt
          (names_conv ~what:"workload" ~valid:Experiments.Rma.workload_names)
          Experiments.Rma.workload_names
      & info [ "workloads" ] ~docv:"LIST"
          ~doc:
            "Comma-separated workloads to run ($(b,latency), $(b,passive), \
             $(b,halo), $(b,hashtable); $(b,all) for every workload).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smoke-test sized workloads.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "run-seed" ] ~doc:"World PRNG seed")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Also meter every workload as a portals-bench/1 record \
             (id $(b,RMA.<workload>)) and write the report to $(docv) — \
             the file the CI perf gate consumes.")
  in
  Cmd.v
    (Cmd.info "rma"
       ~doc:
         "One-sided RMA: window put/atomic latency, passive-target \
          progress, RMA vs send/recv halo, CAS hash table (RMA)")
    Term.(const run $ env_term $ workloads $ quick $ seed $ json)

let run_chaos ?(quick = false) ?(seed = 0) ?json () =
  let t = Experiments.Chaos.run ~quick ~seed () in
  Experiments.Chaos.pp ppf t;
  (match json with
  | None -> ()
  | Some out ->
    let records = Experiments.Chaos.perf_records ~quick ~seed () in
    Experiments.Perf.write_json ~path:out records;
    Format.fprintf ppf "chaos: wrote %s@." out);
  if not (Experiments.Chaos.zero_violations t) then
    failwith
      (Printf.sprintf "chaos: %d invariant violations"
         (Experiments.Chaos.total_violations t))

let chaos_cmd =
  let run () quick seed json =
    match run_chaos ~quick ~seed ?json () with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "One cell per fault axis plus a mixed cell, instead of the \
             full corruption x delay x partition x crash x loss grid.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "run-seed" ] ~doc:"Campaign PRNG seed")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Also meter each fault axis as a portals-bench/1 record \
             (id $(b,CH.<axis>)) and write the report to $(docv).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Invariant-checked chaos campaign: corruption x delay x \
          partition x crash x loss cells, asserting exactly-once \
          delivery, byte integrity, RMA linearizability and \
          partition-aware liveness (exit 1 on any violation)")
    Term.(ret (const run $ env_term $ quick $ seed $ json))

let run_par ?(nodes = 256) ?(steps = 8) ?(check = false) ?(seed = 0) ?json () =
  (if check then begin
     (* --check always compares against a genuinely parallel run, even
        when the session default is sequential. *)
     let domains =
       let d = Runtime.run_domains_env () in
       if d > 1 then d else 4
     in
     match Experiments.Par.selfcheck ~nodes ~steps ~domains ~seed () with
     | Ok (seq, par) ->
       Experiments.Par.pp ppf seq;
       Experiments.Par.pp ppf par;
       Format.fprintf ppf "par: domains=1 and domains=%d agree@."
         par.Experiments.Par.domains
     | Error msg -> failwith ("par: " ^ msg)
   end
   else begin
     let r = Experiments.Par.run ~nodes ~steps ~seed () in
     Experiments.Par.pp ppf r;
     if not (Experiments.Par.ok r) then
       failwith
         (Printf.sprintf "par: %d/%d payloads delivered, %d damaged"
            r.Experiments.Par.delivered r.Experiments.Par.expected
            r.Experiments.Par.errors)
   end);
  match json with
  | None -> ()
  | Some out ->
    let records = Experiments.Par.perf_records ~seed () in
    Experiments.Perf.write_json ~path:out records;
    (match Experiments.Par.speedup records with
    | Some s -> Format.fprintf ppf "par: par4/seq events/sec ratio %.2fx@." s
    | None -> ());
    Format.fprintf ppf "par: wrote %s@." out

let par_cmd =
  let run () nodes steps check seed json =
    match run_par ~nodes ~steps ~check ~seed ?json () with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let nodes =
    Arg.(
      value & opt int 256
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Torus size (>= 9; fitted to the nearest 2-D shape). The \
             10000-node run is the completion scenario the multicore CI \
             lane drives.")
  in
  let steps =
    Arg.(
      value & opt int 8
      & info [ "steps" ] ~docv:"N" ~doc:"Halo-exchange rounds per neighbour.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run the identical world at $(b,--domains 1) and at the \
             session's domain count (4 when sequential) and fail unless \
             the canonical lines agree byte-for-byte.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "run-seed" ] ~doc:"World PRNG seed")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Also meter the workload sequentially and at 4 domains as \
             portals-bench/1 records ($(b,PAR.seq), $(b,PAR.par4)) and \
             write them to $(docv) — the records the multicore speedup \
             gate consumes.")
  in
  Cmd.v
    (Cmd.info "par"
       ~doc:
         "Parallel engine: halo exchange on a 2-D torus sharded across \
          OCaml domains, with an order-insensitive delivery digest that \
          must match the sequential reference bit-for-bit")
    Term.(ret (const run $ env_term $ nodes $ steps $ check $ seed $ json))

let run_coll ?(quick = false) ?(check = false) ?(iters = 8) ?(seed = 0) ?json
    () =
  if check then begin
    if Experiments.Coll.check ~seed () then
      Format.fprintf ppf "coll: host and nic agree (torus2d:4x4)@."
    else failwith "coll: host and nic engines disagree"
  end
  else begin
    let t = Experiments.Coll.run ~iters ~quick ~seed () in
    Experiments.Coll.pp ppf t
  end;
  match json with
  | None -> ()
  | Some out ->
    let records = Experiments.Coll.perf_records ~quick ~seed () in
    Experiments.Perf.write_json ~path:out records;
    Format.fprintf ppf "coll: wrote %s@." out

let coll_cmd =
  let run () quick check iters seed json =
    match run_coll ~quick ~check ~iters ~seed ?json () with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Two cells' worth of topologies/node counts.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Instead of the latency table, run a mixed \
             allreduce/bcast/barrier/reduce workload on a 4x4 torus under \
             both engines and fail unless every rank's bytes agree.")
  in
  let iters =
    Arg.(
      value & opt int 8
      & info [ "iters" ] ~docv:"N" ~doc:"Averaged calls per cell.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "run-seed" ] ~doc:"World PRNG seed")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Also meter busy-host barrier/allreduce under each engine as \
             portals-bench/1 records (id $(b,COLL.<engine>.<op>)) and \
             write the report to $(docv) — gated against \
             bench/baseline.json by the CI perf gate.")
  in
  Cmd.v
    (Cmd.info "coll"
       ~doc:
         "NIC-offloaded vs host-driven collectives: barrier/bcast/allreduce \
          latency across topologies and node counts, host CPUs idle vs \
          busy (COLL)")
    Term.(ret (const run $ env_term $ quick $ check $ iters $ seed $ json))

let all_cmd =
  let run () =
    Experiments.Tables.pp ppf (Experiments.Tables.run ());
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_put ());
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_get ());
    Experiments.Translation.pp ppf (Experiments.Translation.run ());
    Experiments.Latency.pp ppf (Experiments.Latency.run ());
    Experiments.Bandwidth.pp ppf (Experiments.Bandwidth.run ());
    Experiments.Fig6.pp ppf (Experiments.Fig6.run ());
    Experiments.Scaling.pp_memory ppf (Experiments.Scaling.run_memory ());
    Experiments.Scaling.pp_collectives ppf (Experiments.Scaling.run_collectives ());
    Experiments.Drops.pp ppf (Experiments.Drops.run ());
    Experiments.Ablation.pp_threshold ppf (Experiments.Ablation.run_threshold ());
    Experiments.Ablation.pp_interrupts ppf (Experiments.Ablation.run_interrupts ());
    Experiments.Rel_loss_sweep.pp ppf (Experiments.Rel_loss_sweep.run ());
    Experiments.Crash_restart.pp ppf (Experiments.Crash_restart.run ());
    Experiments.Congestion.pp ppf (Experiments.Congestion.run ());
    Experiments.Rma.pp ppf (Experiments.Rma.run ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure")
    Term.(const run $ env_term)

(* Flag-style entry point: [--experiment NAME --metrics[=json] --trace-out F]
   without naming a subcommand. *)
let default_term =
  let experiment =
    Arg.(
      value
      & opt (some string) None
      & info [ "experiment" ] ~docv:"NAME"
          ~doc:
            "Run experiment $(docv) with default parameters (equivalent to \
             the $(docv) subcommand). $(b,--metrics) and $(b,--trace-out) \
             apply to fig5, fig6 and rel_loss_sweep.")
  in
  let run () experiment metrics trace_out =
    let plain name f =
      if metrics <> None || trace_out <> None then
        `Error
          ( false,
            Printf.sprintf
              "--metrics/--trace-out are only supported with --experiment \
               fig5|fig6 (got %s)"
              name )
      else begin
        f ();
        `Ok ()
      end
    in
    match experiment with
    | None -> `Help (`Pager, None)
    | Some "fig6" ->
      run_fig6 ~metrics ~trace_out ();
      `Ok ()
    | Some "fig5" ->
      let r =
        Experiments.Fig5.run
          ~capture_trace:(trace_out <> None)
          Experiments.Fig5.default_params
      in
      Format.fprintf ppf "fig5: mean wait %.3f ms (max %.3f)@."
        (r.Experiments.Fig5.mean_wait /. 1000.)
        (r.Experiments.Fig5.max_wait /. 1000.);
      emit_observability ~metrics ~trace_out ~snapshot:r.Experiments.Fig5.metrics
        ~traces:[ ("portals", r.Experiments.Fig5.spans) ];
      `Ok ()
    | Some ("tables" as n) ->
      plain n (fun () -> Experiments.Tables.pp ppf (Experiments.Tables.run ()))
    | Some ("latency" as n) ->
      plain n (fun () -> Experiments.Latency.pp ppf (Experiments.Latency.run ()))
    | Some ("bandwidth" as n) ->
      plain n (fun () ->
          Experiments.Bandwidth.pp ppf (Experiments.Bandwidth.run ()))
    | Some ("drops" as n) ->
      plain n (fun () -> Experiments.Drops.pp ppf (Experiments.Drops.run ()))
    | Some ("translation" as n) ->
      plain n (fun () ->
          Experiments.Translation.pp ppf (Experiments.Translation.run ()))
    | Some ("rel_loss_sweep" | "rel-loss-sweep") when trace_out = None ->
      run_rel_loss_sweep ~metrics ();
      `Ok ()
    | Some (("crash_restart" | "crash-restart") as n) ->
      plain n (fun () ->
          Experiments.Crash_restart.pp ppf (Experiments.Crash_restart.run ()))
    | Some "congestion" when trace_out = None ->
      run_congestion ~metrics ();
      `Ok ()
    | Some ("matrix" as n) -> plain n (fun () -> run_matrix ())
    | Some ("rma" as n) -> plain n (fun () -> run_rma ())
    | Some ("chaos" as n) -> plain n (fun () -> run_chaos ~quick:true ())
    | Some other ->
      `Error
        ( false,
          Printf.sprintf
            "unknown experiment %S (try a subcommand; see --help)" other )
  in
  Term.(ret (const run $ env_term $ experiment $ metrics_arg $ trace_out_arg))

let () =
  let doc = "Reproduction harness for Portals 3.0 (IPPS 2002)" in
  let info = Cmd.info "portals_repro" ~version:"1.0" ~doc in
  (* Domain validation that only triggers inside an experiment body —
     e.g. a topology spec whose dimensions cannot host that
     experiment's world size — surfaces as [Invalid_argument]; render
     it like any other usage error instead of a crash. *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group ~default:default_term info
            [
              tables_cmd; protocols_cmd; translation_cmd; latency_cmd;
              bandwidth_cmd; fig5_cmd; fig6_cmd; memory_cmd; collectives_cmd;
              drops_cmd; ablation_cmd; rel_loss_sweep_cmd; crash_restart_cmd;
              congestion_cmd; matrix_cmd; rma_cmd; chaos_cmd; par_cmd;
              coll_cmd; all_cmd;
            ])
     with Invalid_argument msg ->
       Format.eprintf "portals_repro: %s@." msg;
       1)
