(* The benchmark harness: regenerates every table and figure of the paper
   (printed below, recorded in EXPERIMENTS.md) and registers one Bechamel
   test per experiment measuring the harness's own cost of regenerating
   it.

   Experiment ids follow DESIGN.md:
     T1-T4  wire-format tables          F1/F2  put/get protocols
     F3/F4  address translation         F5/F6  application bypass
     L1     ping-pong latency           B1     streaming bandwidth
     S1/S2  scalability                 A1/A2  drop accounting, ablations
     R1     reliability under loss      C1     crash-restart recovery
     N1     topology congestion sweep *)

open Bechamel
open Toolkit

let line ppf = Format.fprintf ppf "%s@." (String.make 78 '-')

type opts = {
  mutable metrics : Sim_engine.Report.format option;
  mutable trace_out : string option;
  mutable json_out : string option;
  mutable baseline : string option;
  mutable tolerance_pct : float;
  mutable quick : bool;
  mutable matrix : bool;
  mutable transports : string list;
  mutable axes : string list;
  mutable rma : bool;
  mutable workloads : string list;
  mutable chaos : bool;
  mutable par : bool;
  mutable min_speedup : float option;
  mutable coll : bool;
}

let usage ppf =
  Format.fprintf ppf
    "usage: bench [OPTIONS]@.@.\
     Regenerates every table and figure of the paper, then benchmarks the@.\
     harness itself. Every value option also accepts --flag=VALUE.@.@.\
     \  --metrics[=table|json]  print the F6 metrics registry snapshot@.\
     \  --trace-out FILE        write the F6 runs as Chrome trace JSON@.\
     \  --loss RATE             run every world on a lossy fabric (with@.\
     \                          the reliability shim underneath)@.\
     \  --seed N                default PRNG seed, for deterministic replay@.\
     \  --fault MODEL           wire fault-model spec (bernoulli:P,@.\
     \                          gilbert:.., duplicate:P, corrupt:P,@.\
     \                          delay:MEAN_US[:JITTER_US], flap:..,@.\
     \                          partition:A.B|C.D@@CUT_US[:HEAL_US],@.\
     \                          none; join with +; any model switches@.\
     \                          on CRC-32C frame checksums)@.\
     \  --crash SPEC            node crash schedule, NID@@DOWN_US[:UP_US],@.\
     \                          comma separated@.\
     \  --topology SPEC         interconnect shape for every world: full,@.\
     \                          ring, torus2d[:AxB], torus3d[:AxBxC] or@.\
     \                          fattree[:K] (default full, the seed fabric)@.\
     \  --queue-limit N         bound each shared hop link's queue; beyond@.\
     \                          it messages become congestion drops@.\
     \  --domains N             shard every world across N OCaml domains@.\
     \                          (default 1, the sequential reference;@.\
     \                          same seed => same simulated history)@.\
     \  --collectives ENGINE    collective engine for every workload:@.\
     \                          host (host-driven trees, the default) or@.\
     \                          nic (NIC-resident triggered chains);@.\
     \                          results are byte-identical either way@.\
     \  --json OUT              performance mode: run every experiment@.\
     \                          metered, write records to OUT, skip the@.\
     \                          report and Bechamel (see EXPERIMENTS.md)@.\
     \  --baseline FILE         with --json: compare against FILE and@.\
     \                          exit 1 on events/sec regression@.\
     \  --tolerance PCT         allowed events/sec drop before the@.\
     \                          baseline gate fails (default 25)@.\
     \  --quick                 with --json/--matrix: smoke-test sizes@.\
     \  --matrix                print the cross-stack benchmark matrix@.\
     \                          (transports x axes) and skip the rest@.\
     \  --transports LIST       matrix stacks: portals,gm,rtscts,ibverbs@.\
     \                          (comma separated; default all)@.\
     \  --axes LIST             matrix axes: latency,bandwidth,overlap,@.\
     \                          loss-goodput,congestion-goodput@.\
     \                          (comma separated; default all)@.\
     \  --rma                   print the one-sided RMA workloads@.\
     \                          (latency, passive, halo, hashtable) and@.\
     \                          skip the rest@.\
     \  --workloads LIST        RMA workloads: latency,passive,halo,@.\
     \                          hashtable (comma separated; default all)@.\
     \  --chaos                 run the invariant-checked chaos campaign@.\
     \                          (corruption x delay x partition x crash x@.\
     \                          loss; --quick for one cell per axis) and@.\
     \                          skip the rest; exit 1 on any violation@.\
     \  --par                   run the parallel-engine workload only:@.\
     \                          same-seed sequential-vs-4-domain digest@.\
     \                          check, then the PAR.seq/PAR.par4 records@.\
     \                          (written with --json); skip the rest@.\
     \  --min-speedup X         fail unless PAR.par4 events/sec is at@.\
     \                          least X times PAR.seq (the multicore CI@.\
     \                          lane gates X=2; meaningless on one core)@.\
     \  --coll                  run the NIC-vs-host collectives experiment@.\
     \                          only: cross-engine byte-identity check,@.\
     \                          then the latency table (--quick shrinks@.\
     \                          it) and, with --json, the COLL.* records@.\
     \  --help                  this message@."

(* Stdlib-only parsing; every value option accepts both "--flag VALUE"
   and "--flag=VALUE". *)
let parse_opts () =
  let o =
    {
      metrics = None;
      trace_out = None;
      json_out = None;
      baseline = None;
      tolerance_pct = 25.;
      quick = false;
      matrix = false;
      transports = Experiments.Matrix.transport_names;
      axes = Experiments.Matrix.axis_names;
      rma = false;
      workloads = Experiments.Rma.workload_names;
      chaos = false;
      par = false;
      min_speedup = None;
      coll = false;
    }
  in
  let bad what =
    Format.eprintf "bench: %s (try --help)@." what;
    exit 2
  in
  let run_env_set f =
    match f () with
    | () -> ()
    | exception Invalid_argument msg ->
      Format.eprintf "bench: %s@." msg;
      exit 2
  in
  let rec go = function
    | [] -> o
    | arg :: rest ->
      let flag, inline =
        if String.length arg > 2 && arg.[0] = '-' && arg.[1] = '-' then
          match String.index_opt arg '=' with
          | Some i ->
            ( String.sub arg 0 i,
              Some (String.sub arg (i + 1) (String.length arg - i - 1)) )
          | None -> (arg, None)
        else (arg, None)
      in
      let value ~what rest k =
        match (inline, rest) with
        | Some v, _ -> k v rest
        | None, v :: rest -> k v rest
        | None, [] -> bad (flag ^ " needs " ^ what)
      in
      (match flag with
      | "--help" | "-h" ->
        usage Format.std_formatter;
        exit 0
      | "--metrics" -> (
        match inline with
        | None ->
          o.metrics <- Some Sim_engine.Report.Table;
          go rest
        | Some v -> (
          match Sim_engine.Report.format_of_string v with
          | Some f ->
            o.metrics <- Some f;
            go rest
          | None -> bad ("unknown metrics format " ^ v)))
      | "--trace-out" ->
        value ~what:"FILE" rest (fun v rest ->
            o.trace_out <- Some v;
            go rest)
      | "--json" ->
        value ~what:"OUT" rest (fun v rest ->
            o.json_out <- Some v;
            go rest)
      | "--baseline" ->
        value ~what:"FILE" rest (fun v rest ->
            o.baseline <- Some v;
            go rest)
      | "--tolerance" ->
        value ~what:"PCT" rest (fun v rest ->
            match float_of_string_opt v with
            | Some p when p >= 0. ->
              o.tolerance_pct <- p;
              go rest
            | _ -> bad ("bad tolerance " ^ v))
      | "--quick" ->
        o.quick <- true;
        go rest
      | "--matrix" ->
        o.matrix <- true;
        go rest
      | "--rma" ->
        o.rma <- true;
        go rest
      | "--chaos" ->
        o.chaos <- true;
        go rest
      | "--par" ->
        o.par <- true;
        go rest
      | "--coll" ->
        o.coll <- true;
        go rest
      | "--collectives" ->
        value ~what:"ENGINE" rest (fun v rest ->
            run_env_set (fun () -> Runtime.set_run_env ~collectives:v ());
            go rest)
      | "--min-speedup" ->
        value ~what:"X" rest (fun v rest ->
            match float_of_string_opt v with
            | Some x when x > 0. ->
              o.min_speedup <- Some x;
              go rest
            | _ -> bad ("bad speedup floor " ^ v))
      | "--workloads" ->
        value ~what:"LIST" rest (fun v rest ->
            match
              Runtime.Cli.pick_list ~what:"workload"
                ~valid:Experiments.Rma.workload_names v
            with
            | Ok l ->
              o.workloads <- l;
              go rest
            | Error msg -> bad msg)
      | "--transports" ->
        value ~what:"LIST" rest (fun v rest ->
            match
              Runtime.Cli.pick_list ~what:"transport"
                ~valid:Experiments.Matrix.transport_names v
            with
            | Ok l ->
              o.transports <- l;
              go rest
            | Error msg -> bad msg)
      | "--axes" ->
        value ~what:"LIST" rest (fun v rest ->
            match
              Runtime.Cli.pick_list ~what:"axis"
                ~valid:Experiments.Matrix.axis_names v
            with
            | Ok l ->
              o.axes <- l;
              go rest
            | Error msg -> bad msg)
      | "--loss" ->
        value ~what:"RATE" rest (fun v rest ->
            match float_of_string_opt v with
            | Some l when l >= 0. && l < 1. ->
              Runtime.set_run_env ~loss:l ();
              go rest
            | _ -> bad ("bad loss rate " ^ v))
      | "--seed" ->
        value ~what:"N" rest (fun v rest ->
            match int_of_string_opt v with
            | Some s ->
              Runtime.set_run_env ~seed:s ();
              go rest
            | None -> bad ("bad seed " ^ v))
      | "--fault" ->
        value ~what:"MODEL" rest (fun v rest ->
            run_env_set (fun () -> Runtime.set_run_env ~fault:v ());
            go rest)
      | "--crash" ->
        value ~what:"SPEC" rest (fun v rest ->
            run_env_set (fun () -> Runtime.set_run_env ~crashes:v ());
            go rest)
      | "--topology" ->
        value ~what:"SPEC" rest (fun v rest ->
            run_env_set (fun () -> Runtime.set_run_env ~topology:v ());
            go rest)
      | "--queue-limit" ->
        value ~what:"N" rest (fun v rest ->
            match int_of_string_opt v with
            | Some n when n > 0 ->
              Runtime.set_run_env ~queue_limit:n ();
              go rest
            | _ -> bad ("bad queue limit " ^ v))
      | "--domains" ->
        value ~what:"N" rest (fun v rest ->
            match int_of_string_opt v with
            | Some d when d >= 1 ->
              Runtime.set_run_env ~domains:d ();
              go rest
            | _ -> bad ("bad domain count " ^ v))
      | _ -> bad ("unknown argument " ^ arg))
  in
  go (List.tl (Array.to_list Sys.argv))

let print_all opts =
  let ppf = Format.std_formatter in
  line ppf;
  Format.fprintf ppf "T1-T4: wire formats@.";
  line ppf;
  Experiments.Tables.pp ppf (Experiments.Tables.run ());
  line ppf;
  Format.fprintf ppf "F1/F2: data movement protocols@.";
  line ppf;
  Experiments.Protocols.pp ppf (Experiments.Protocols.run_put ());
  Experiments.Protocols.pp ppf (Experiments.Protocols.run_get ());
  line ppf;
  Format.fprintf ppf "F3/F4: address translation@.";
  line ppf;
  Experiments.Translation.pp ppf (Experiments.Translation.run ());
  line ppf;
  Format.fprintf ppf "L1: zero-length ping-pong latency (section 3: MCP < 20us)@.";
  line ppf;
  Experiments.Latency.pp ppf (Experiments.Latency.run ());
  line ppf;
  Format.fprintf ppf "B1: streaming bandwidth (section 3: packet pipelining)@.";
  line ppf;
  Experiments.Bandwidth.pp ppf (Experiments.Bandwidth.run ());
  line ppf;
  Format.fprintf ppf "F5/F6: application bypass (the paper's headline result)@.";
  line ppf;
  let fig6 =
    Experiments.Fig6.run ~capture_trace:(opts.trace_out <> None) ()
  in
  Experiments.Fig6.pp ppf fig6;
  (match opts.metrics with
  | None -> ()
  | Some format ->
    Sim_engine.Report.print ~format ppf fig6.Experiments.Fig6.metrics);
  (match opts.trace_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Sim_engine.Trace.Chrome.to_string fig6.Experiments.Fig6.traces);
    close_out oc;
    Format.fprintf ppf "trace written to %s@." path);
  line ppf;
  Format.fprintf ppf "S1: unexpected-buffer memory vs job size (section 4.1)@.";
  line ppf;
  Experiments.Scaling.pp_memory ppf (Experiments.Scaling.run_memory ());
  line ppf;
  Format.fprintf ppf "S2: collective scaling on connectionless Portals@.";
  line ppf;
  Experiments.Scaling.pp_collectives ppf (Experiments.Scaling.run_collectives ());
  line ppf;
  Format.fprintf ppf "A1: dropped-message accounting (section 4.8)@.";
  line ppf;
  Experiments.Drops.pp ppf (Experiments.Drops.run ());
  line ppf;
  Format.fprintf ppf "A2: ablations@.";
  line ppf;
  Experiments.Ablation.pp_threshold ppf (Experiments.Ablation.run_threshold ());
  Experiments.Ablation.pp_interrupts ppf (Experiments.Ablation.run_interrupts ());
  line ppf;
  Format.fprintf ppf
    "R1: reliability under wire loss (section 2: reliable in-order delivery)@.";
  line ppf;
  Experiments.Rel_loss_sweep.pp ppf (Experiments.Rel_loss_sweep.run ());
  line ppf;
  Format.fprintf ppf
    "C1: crash-restart recovery (section 3: connectionless peers)@.";
  line ppf;
  Experiments.Crash_restart.pp ppf (Experiments.Crash_restart.run ());
  line ppf;
  Format.fprintf ppf
    "N1: traffic patterns vs interconnect topology (section 2: Cplant scale)@.";
  line ppf;
  Experiments.Congestion.pp ppf (Experiments.Congestion.run ());
  line ppf;
  Format.fprintf ppf
    "RMA: one-sided windows over Portals atomics (section 4.4, MPI-2 heritage)@.";
  line ppf;
  Experiments.Rma.pp ppf (Experiments.Rma.run ());
  line ppf;
  Format.fprintf ppf
    "COLL: NIC-offloaded vs host-driven collectives (sections 2/5.1 bypass; \
     quick cells — `bench --coll` for the full sweep)@.";
  line ppf;
  Experiments.Coll.pp ppf (Experiments.Coll.run ~quick:true ());
  line ppf

(* One Bechamel test per experiment: how long the harness takes to
   regenerate each artifact (real wall time of the simulation run). *)
let tests =
  [
    Test.make ~name:"table1_put_request"
      (Staged.stage (fun () -> ignore (Experiments.Tables.run ())));
    Test.make ~name:"table2_ack"
      (Staged.stage (fun () ->
           let tables = Experiments.Tables.run () in
           ignore (List.nth tables 1)));
    Test.make ~name:"table3_get_request"
      (Staged.stage (fun () ->
           let tables = Experiments.Tables.run () in
           ignore (List.nth tables 2)));
    Test.make ~name:"table4_reply"
      (Staged.stage (fun () ->
           let tables = Experiments.Tables.run () in
           ignore (List.nth tables 3)));
    Test.make ~name:"fig1_put_protocol"
      (Staged.stage (fun () -> ignore (Experiments.Protocols.run_put ())));
    Test.make ~name:"fig2_get_protocol"
      (Staged.stage (fun () -> ignore (Experiments.Protocols.run_get ())));
    Test.make ~name:"fig34_translation"
      (Staged.stage (fun () ->
           ignore (Experiments.Translation.run ~depths:[ 0; 64 ] ())));
    Test.make ~name:"fig5_harness"
      (Staged.stage (fun () ->
           ignore (Experiments.Fig5.run Experiments.Fig5.default_params)));
    Test.make ~name:"fig6_app_bypass"
      (Staged.stage (fun () ->
           ignore (Experiments.Fig6.run ~iterations:1 ~work_ms:[ 0.; 20. ] ())));
    Test.make ~name:"lat_pingpong"
      (Staged.stage (fun () ->
           ignore (Experiments.Latency.run_one ~iterations:10 Runtime.Offload)));
    Test.make ~name:"bw_msgsize"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Bandwidth.run_one ~sizes:[ 65_536 ] ~count:8
                Runtime.Offload)));
    Test.make ~name:"mem_scaling"
      (Staged.stage (fun () ->
           ignore (Experiments.Scaling.run_memory ~job_sizes:[ 8 ] ())));
    Test.make ~name:"coll_scaling"
      (Staged.stage (fun () ->
           ignore (Experiments.Scaling.run_collectives ~node_counts:[ 16 ] ())));
    Test.make ~name:"drop_reasons"
      (Staged.stage (fun () -> ignore (Experiments.Drops.run ())));
    Test.make ~name:"rel_loss_sweep"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Rel_loss_sweep.run ~losses:[ 0.; 0.05 ]
                ~seeds:[ 1 ] ~msgs:50 ())));
    Test.make ~name:"progress_ablation"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Ablation.run_threshold ~sizes:[ 32_768; 131_072 ] ())));
    Test.make ~name:"congestion_sweep"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Congestion.run ~topologies:[ "torus2d" ]
                ~msgs_per_peer:2 ())));
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  Format.printf "Bechamel: wall time per regeneration (monotonic clock)@.";
  Format.printf "%-24s %s@." "bench" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun _name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) ->
            Format.printf "%-24s %.3f ms@." (Test.name test) (t /. 1e6)
          | Some [] | None ->
            Format.printf "%-24s (no estimate)@." (Test.name test))
        analysis)
    tests

(* The multicore lane's gate: PAR.par4 must beat PAR.seq by the given
   aggregate events/sec factor. Advisory everywhere else — on a single
   hardware core the window barrier only adds overhead. *)
let speedup_gate opts records =
  match opts.min_speedup with
  | None -> ()
  | Some floor -> (
    match Experiments.Par.speedup records with
    | None ->
      Format.eprintf
        "bench: --min-speedup needs the PAR.seq/PAR.par4 records@.";
      exit 2
    | Some s when s < floor ->
      Format.eprintf
        "bench: parallel speedup %.2fx below the %.2fx floor (PAR.par4 vs \
         PAR.seq)@."
        s floor;
      exit 1
    | Some s ->
      Format.printf "bench: parallel speedup %.2fx (floor %.2fx)@." s floor)

(* Performance mode (--json): meter every experiment, write the records,
   optionally gate against a baseline. Replaces the report + Bechamel. *)
let perf_mode opts out =
  let records =
    Experiments.Perf.all ~quick:opts.quick ()
    @ Experiments.Matrix.perf_records ~transports:opts.transports
        ~axes:opts.axes ~quick:opts.quick ()
    @ Experiments.Rma.perf_records ~workloads:opts.workloads ~quick:opts.quick
        ()
    @ Experiments.Chaos.perf_records ~quick:true ()
    @ Experiments.Par.perf_records ~quick:opts.quick ()
    @ Experiments.Coll.perf_records ~quick:opts.quick ()
  in
  Experiments.Perf.pp Format.std_formatter records;
  Experiments.Perf.write_json ~path:out records;
  Format.printf "bench: wrote %s@." out;
  speedup_gate opts records;
  match opts.baseline with
  | None -> ()
  | Some path -> (
    match Experiments.Perf.read_json ~path with
    | Error msg ->
      Format.eprintf "bench: cannot read baseline %s: %s@." path msg;
      exit 2
    | Ok baseline -> (
      match
        Experiments.Perf.compare_baseline ~baseline ~current:records
          ~tolerance_pct:opts.tolerance_pct
      with
      | [] ->
        Format.printf "bench: baseline gate passed (tolerance %.0f%%)@."
          opts.tolerance_pct
      | regressions ->
        Experiments.Perf.pp_regressions Format.err_formatter regressions;
        exit 1))

let footer ~wall_s =
  let totals = Sim_engine.Scheduler.global_totals () in
  let events = totals.Sim_engine.Scheduler.t_events in
  Format.printf
    "@.run totals: %d sim-events, %d fibers, %.1f ms simulated | %.2f s \
     wall, %.0f sim-events/sec@."
    events totals.Sim_engine.Scheduler.t_fibers
    (Sim_engine.Time_ns.to_us totals.Sim_engine.Scheduler.t_sim_time /. 1e3)
    wall_s
    (if wall_s > 0. then float_of_int events /. wall_s else 0.)

let () =
  let t0 = Unix.gettimeofday () in
  let opts = parse_opts () in
  (* Env specs that are only validated against a concrete world — e.g.
     a fixed-dimension topology that cannot host some experiment's node
     count — raise [Invalid_argument] mid-run; report them as usage
     errors. *)
  try
    if opts.chaos then begin
      let t = Experiments.Chaos.run ~quick:opts.quick () in
      Experiments.Chaos.pp Format.std_formatter t;
      (match opts.json_out with
      | None -> ()
      | Some out ->
        let records = Experiments.Chaos.perf_records ~quick:opts.quick () in
        Experiments.Perf.write_json ~path:out records;
        Format.printf "bench: wrote %s@." out);
      footer ~wall_s:(Unix.gettimeofday () -. t0);
      if not (Experiments.Chaos.zero_violations t) then begin
        Format.eprintf "bench: chaos campaign found %d invariant violations@."
          (Experiments.Chaos.total_violations t);
        exit 1
      end
    end
    else if opts.par then begin
      (* Determinism first — a fast parallel engine that disagrees with
         the sequential reference is worthless — then the speed records. *)
      (match Experiments.Par.selfcheck ~seed:(snd (Runtime.run_env ())) () with
      | Ok (seq, par) ->
        Experiments.Par.pp Format.std_formatter seq;
        Experiments.Par.pp Format.std_formatter par
      | Error msg ->
        Format.eprintf "bench: %s@." msg;
        exit 1);
      let records = Experiments.Par.perf_records ~quick:opts.quick () in
      Experiments.Perf.pp Format.std_formatter records;
      (match opts.json_out with
      | None -> ()
      | Some out ->
        Experiments.Perf.write_json ~path:out records;
        Format.printf "bench: wrote %s@." out);
      speedup_gate opts records;
      footer ~wall_s:(Unix.gettimeofday () -. t0)
    end
    else if opts.coll then begin
      (* Equivalence first — a fast NIC engine that disagrees with the
         host reference is worthless — then the latency contrast. *)
      if not (Experiments.Coll.check ()) then begin
        Format.eprintf "bench: coll engines disagree on the 4x4 torus@.";
        exit 1
      end;
      Format.printf "coll: host and nic agree (torus2d:4x4)@.";
      let t = Experiments.Coll.run ~quick:opts.quick () in
      Experiments.Coll.pp Format.std_formatter t;
      (match opts.json_out with
      | None -> ()
      | Some out ->
        let records = Experiments.Coll.perf_records ~quick:opts.quick () in
        Experiments.Perf.pp Format.std_formatter records;
        Experiments.Perf.write_json ~path:out records;
        Format.printf "bench: wrote %s@." out);
      footer ~wall_s:(Unix.gettimeofday () -. t0)
    end
    else
    match (opts.matrix, opts.rma, opts.json_out) with
    | _, true, json ->
      let t =
        Experiments.Rma.run ~workloads:opts.workloads ~quick:opts.quick ()
      in
      Experiments.Rma.pp Format.std_formatter t;
      (match json with
      | None -> ()
      | Some out ->
        let records =
          Experiments.Rma.perf_records ~workloads:opts.workloads
            ~quick:opts.quick ()
        in
        Experiments.Perf.write_json ~path:out records;
        Format.printf "bench: wrote %s@." out);
      footer ~wall_s:(Unix.gettimeofday () -. t0)
    | true, false, json ->
      let t =
        Experiments.Matrix.run ~transports:opts.transports ~axes:opts.axes
          ~quick:opts.quick ()
      in
      Experiments.Matrix.pp Format.std_formatter t;
      (match json with
      | None -> ()
      | Some out ->
        let records =
          Experiments.Matrix.perf_records ~transports:opts.transports
            ~axes:opts.axes ~quick:opts.quick ()
        in
        Experiments.Perf.write_json ~path:out records;
        Format.printf "bench: wrote %s@." out);
      footer ~wall_s:(Unix.gettimeofday () -. t0)
    | false, false, Some out -> perf_mode opts out
    | false, false, None ->
      print_all opts;
      benchmark ();
      footer ~wall_s:(Unix.gettimeofday () -. t0);
      Format.printf "@.bench: done@."
  with Invalid_argument msg ->
    Format.eprintf "bench: %s@." msg;
    exit 2
