(** Fault-injection campaign runner.

    A campaign sweeps a grid of loss rates and PRNG seeds, building one
    fresh simulated world per point so runs are independent and each
    point [(loss, seed)] replays bit-exactly. The reliability experiments
    ([rel_loss_sweep]) and the robustness tests drive their sweeps through
    this module so the grid construction, seeding discipline and
    per-point fault models stay uniform. *)

type point = { loss : float; seed : int }

type 'a outcome = { point : point; value : 'a }

val grid : losses:float list -> seeds:int list -> point list
(** Cartesian product, losses-major (all seeds of the first loss, then
    the next loss, ...). *)

val fault : point -> Simnet.Fault.t option
(** The Bernoulli model for a point; [None] at loss 0 (a perfect wire
    needs no model). *)

val burst_fault : ?p_exit:float -> point -> Simnet.Fault.t option
(** A Gilbert burst model whose steady-state loss matches [point.loss]:
    [p_exit] (default 0.25) fixes the mean burst length at
    [1/p_exit] messages and [p_enter] is solved from the target rate. *)

val run :
  losses:float list ->
  seeds:int list ->
  f:(loss:float -> seed:int -> 'a) ->
  'a outcome list
(** Evaluate [f] at every grid point, in grid order. *)

val mean_by_loss : ('a -> float) -> 'a outcome list -> (float * float) list
(** Collapse the seed axis: mean of [measure value] per loss rate, in
    first-appearance order of the losses. *)

(** {1 Crash campaigns}

    The same discipline over the node-failure axis: a grid of (number of
    crash/restart events) × (schedule seed), one fresh world per point,
    each point replaying bit-exactly. *)

type crash_point = { crashes : int; crash_seed : int }

type 'a crash_outcome = { crash_point : crash_point; crash_value : 'a }

val crash_grid : crash_counts:int list -> seeds:int list -> crash_point list
(** Cartesian product, counts-major. *)

val crash_schedule_of :
  nids:Simnet.Proc_id.nid list ->
  horizon:Sim_engine.Time_ns.t ->
  crash_point ->
  Simnet.Fault.crash_schedule
(** The point's randomized kill/revive schedule
    ({!Simnet.Fault.random_crash_schedule}); empty at zero crashes. *)

val run_crashes :
  crash_counts:int list ->
  seeds:int list ->
  f:(crashes:int -> seed:int -> 'a) ->
  'a crash_outcome list
(** Evaluate [f] at every grid point, in grid order. *)

val mean_by_crashes :
  ('a -> float) -> 'a crash_outcome list -> (int * float) list
(** Collapse the seed axis: mean of [measure value] per crash count, in
    first-appearance order. *)
