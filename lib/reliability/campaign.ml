type point = { loss : float; seed : int }
type 'a outcome = { point : point; value : 'a }

let grid ~losses ~seeds =
  List.concat_map (fun loss -> List.map (fun seed -> { loss; seed }) seeds) losses

let fault point =
  if point.loss <= 0. then None
  else Some (Simnet.Fault.bernoulli ~seed:point.seed ~p:point.loss ())

let burst_fault ?(p_exit = 0.25) point =
  if point.loss <= 0. then None
  else begin
    (* Steady-state Bad occupancy of the two-state chain is
       p_enter / (p_enter + p_exit); solve for the target loss. *)
    let p = min point.loss 0.99 in
    let p_enter = p *. p_exit /. (1. -. p) in
    Some (Simnet.Fault.gilbert ~seed:point.seed ~p_enter ~p_exit ())
  end

let run ~losses ~seeds ~f =
  List.map
    (fun point -> { point; value = f ~loss:point.loss ~seed:point.seed })
    (grid ~losses ~seeds)

(* --- crash campaigns --------------------------------------------------- *)

type crash_point = { crashes : int; crash_seed : int }
type 'a crash_outcome = { crash_point : crash_point; crash_value : 'a }

let crash_grid ~crash_counts ~seeds =
  List.concat_map
    (fun crashes ->
      List.map (fun crash_seed -> { crashes; crash_seed }) seeds)
    crash_counts

let crash_schedule_of ~nids ~horizon point =
  if point.crashes <= 0 then []
  else
    Simnet.Fault.random_crash_schedule ~seed:point.crash_seed ~nids
      ~crashes:point.crashes ~horizon ()

let run_crashes ~crash_counts ~seeds ~f =
  List.map
    (fun point ->
      {
        crash_point = point;
        crash_value = f ~crashes:point.crashes ~seed:point.crash_seed;
      })
    (crash_grid ~crash_counts ~seeds)

let mean_by_crashes measure outcomes =
  let order = ref [] in
  let table : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun o ->
      match Hashtbl.find_opt table o.crash_point.crashes with
      | Some cell -> cell := measure o.crash_value :: !cell
      | None ->
        order := o.crash_point.crashes :: !order;
        Hashtbl.replace table o.crash_point.crashes
          (ref [ measure o.crash_value ]))
    outcomes;
  List.rev_map
    (fun crashes ->
      let samples = !(Hashtbl.find table crashes) in
      let n = List.length samples in
      (crashes, List.fold_left ( +. ) 0. samples /. float_of_int (max 1 n)))
    !order

let mean_by_loss measure outcomes =
  let order = ref [] in
  let table : (float, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun o ->
      match Hashtbl.find_opt table o.point.loss with
      | Some cell -> cell := measure o.value :: !cell
      | None ->
        order := o.point.loss :: !order;
        Hashtbl.replace table o.point.loss (ref [ measure o.value ]))
    outcomes;
  List.rev_map
    (fun loss ->
      let samples = !(Hashtbl.find table loss) in
      let n = List.length samples in
      (loss, List.fold_left ( +. ) 0. samples /. float_of_int (max 1 n)))
    !order
