type point = { loss : float; seed : int }
type 'a outcome = { point : point; value : 'a }

let grid ~losses ~seeds =
  List.concat_map (fun loss -> List.map (fun seed -> { loss; seed }) seeds) losses

let fault point =
  if point.loss <= 0. then None
  else Some (Simnet.Fault.bernoulli ~seed:point.seed ~p:point.loss ())

let burst_fault ?(p_exit = 0.25) point =
  if point.loss <= 0. then None
  else begin
    (* Steady-state Bad occupancy of the two-state chain is
       p_enter / (p_enter + p_exit); solve for the target loss. *)
    let p = min point.loss 0.99 in
    let p_enter = p *. p_exit /. (1. -. p) in
    Some (Simnet.Fault.gilbert ~seed:point.seed ~p_enter ~p_exit ())
  end

let run ~losses ~seeds ~f =
  List.map
    (fun point -> { point; value = f ~loss:point.loss ~seed:point.seed })
    (grid ~losses ~seeds)

let mean_by_loss measure outcomes =
  let order = ref [] in
  let table : (float, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun o ->
      match Hashtbl.find_opt table o.point.loss with
      | Some cell -> cell := measure o.value :: !cell
      | None ->
        order := o.point.loss :: !order;
        Hashtbl.replace table o.point.loss (ref [ measure o.value ]))
    outcomes;
  List.rev_map
    (fun loss ->
      let samples = !(Hashtbl.find table loss) in
      let n = List.length samples in
      (loss, List.fold_left ( +. ) 0. samples /. float_of_int (max 1 n)))
    !order
