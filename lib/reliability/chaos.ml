open Sim_engine

type cell = {
  corrupt : float;
  delay : Time_ns.t;
  partition : bool;
  crashes : int;
  loss : float;
  seed : int;
}

type 'a outcome = { cell : cell; value : 'a }

(* Seeds of the independent fault generators inside one cell are derived
   from the cell seed with fixed offsets, so turning one axis on or off
   never perturbs another axis's random stream. *)
let seed_corrupt cell = (cell.seed * 4) + 1
let seed_delay cell = (cell.seed * 4) + 2
let seed_loss cell = (cell.seed * 4) + 3
let seed_crash cell = (cell.seed * 4) + 4

let cell ?(corrupt = 0.) ?(delay = 0) ?(partition = false) ?(crashes = 0)
    ?(loss = 0.) ~seed () =
  if corrupt < 0. || corrupt > 1. then
    invalid_arg "Chaos.cell: corrupt probability outside [0, 1]";
  if loss < 0. || loss > 1. then
    invalid_arg "Chaos.cell: loss probability outside [0, 1]";
  if delay < 0 then invalid_arg "Chaos.cell: negative delay";
  if crashes < 0 then invalid_arg "Chaos.cell: negative crash count";
  { corrupt; delay; partition; crashes; loss; seed }

let grid ?(corrupts = [ 0. ]) ?(delays = [ 0 ]) ?(partitions = [ false ])
    ?(crash_counts = [ 0 ]) ?(losses = [ 0. ]) ~seeds () =
  List.concat_map
    (fun corrupt ->
      List.concat_map
        (fun delay ->
          List.concat_map
            (fun partition ->
              List.concat_map
                (fun crashes ->
                  List.concat_map
                    (fun loss ->
                      List.map
                        (fun seed ->
                          cell ~corrupt ~delay ~partition ~crashes ~loss ~seed
                            ())
                        seeds)
                    losses)
                crash_counts)
            partitions)
        delays)
    corrupts

let faulty cell =
  cell.corrupt > 0. || cell.delay > 0 || cell.partition || cell.crashes > 0
  || cell.loss > 0.

let fault_of_cell cell =
  let models =
    List.concat
      [
        (if cell.corrupt > 0. then
           [ Simnet.Fault.corrupt ~seed:(seed_corrupt cell) ~p:cell.corrupt () ]
         else []);
        (if cell.delay > 0 then
           [ Simnet.Fault.delay ~seed:(seed_delay cell) ~mean:cell.delay () ]
         else []);
        (if cell.loss > 0. then
           [ Simnet.Fault.bernoulli ~seed:(seed_loss cell) ~p:cell.loss () ]
         else []);
      ]
  in
  match models with
  | [] -> None
  | [ m ] -> Some m
  | ms -> Some (Simnet.Fault.compose ms)

(* One symmetric cut across the middle of the node range for the middle
   half of the horizon: late enough that liveness has formed a full
   picture of the job, healed early enough that convergence after the
   heal is observable before the run ends. *)
let partition_of_cell cell ~nids ~horizon =
  if not cell.partition then []
  else
    match List.sort_uniq compare nids with
    | [] | [ _ ] -> []
    | nids ->
      let n = List.length nids in
      let group_a = List.filteri (fun i _ -> i < n / 2) nids in
      let group_b = List.filteri (fun i _ -> i >= n / 2) nids in
      Simnet.Fault.partition_schedule
        [
          {
            Simnet.Fault.group_a;
            group_b;
            one_way = false;
            cut_at = horizon / 4;
            heal_at = Some (horizon * 3 / 4);
          };
        ]

let crash_schedule_of cell ~nids ~horizon =
  if cell.crashes <= 0 then []
  else
    Simnet.Fault.random_crash_schedule ~seed:(seed_crash cell) ~nids
      ~crashes:cell.crashes ~horizon ()

let describe cell =
  let axes =
    List.concat
      [
        (if cell.corrupt > 0. then [ Printf.sprintf "corrupt=%g" cell.corrupt ]
         else []);
        (if cell.delay > 0 then
           [ Printf.sprintf "delay=%.0fus" (Time_ns.to_us cell.delay) ]
         else []);
        (if cell.partition then [ "partition" ] else []);
        (if cell.crashes > 0 then [ Printf.sprintf "crashes=%d" cell.crashes ]
         else []);
        (if cell.loss > 0. then [ Printf.sprintf "loss=%g" cell.loss ] else []);
      ]
  in
  let axes = if axes = [] then [ "clean" ] else axes in
  String.concat " " axes ^ Printf.sprintf " seed=%d" cell.seed

let run ~cells ~f = List.map (fun cell -> { cell; value = f cell }) cells
