(** Chaos campaign grids: composing corruption, delay, partition, crash
    and loss faults into cells ({!Campaign}'s sibling for the full fault
    domain).

    A {!cell} names one point of the fault space plus a seed; {!grid}
    builds the cartesian product of per-axis levels. The translation to
    concrete machinery is split exactly as the fabric consumes it:
    {!fault_of_cell} yields the composed per-message fault model,
    {!partition_of_cell} and {!crash_schedule_of} yield the scheduled
    events. Inside a cell each axis draws from its own seeded stream, so
    enabling one axis never perturbs another's randomness — cells differ
    only where their parameters differ.

    Invariant checking over worlds lives upstream in
    [Experiments.Chaos]; this module has no scheduler dependency. *)

type cell = {
  corrupt : float;  (** Per-message corruption probability. *)
  delay : Sim_engine.Time_ns.t;  (** Mean extra latency; 0 = none. *)
  partition : bool;  (** Schedule a mid-run symmetric cut + heal. *)
  crashes : int;  (** Crash/restart pairs to schedule. *)
  loss : float;  (** Per-message drop probability. *)
  seed : int;
}

type 'a outcome = { cell : cell; value : 'a }

val cell :
  ?corrupt:float ->
  ?delay:Sim_engine.Time_ns.t ->
  ?partition:bool ->
  ?crashes:int ->
  ?loss:float ->
  seed:int ->
  unit ->
  cell
(** All axes default to off. Raises [Invalid_argument] on a probability
    outside [0, 1], a negative delay, or a negative crash count. *)

val grid :
  ?corrupts:float list ->
  ?delays:Sim_engine.Time_ns.t list ->
  ?partitions:bool list ->
  ?crash_counts:int list ->
  ?losses:float list ->
  seeds:int list ->
  unit ->
  cell list
(** Cartesian product of the given axis levels (each defaulting to the
    single "off" level) with each seed. *)

val faulty : cell -> bool
(** Whether any axis is active — a [false] cell is a clean control run. *)

val fault_of_cell : cell -> Simnet.Fault.t option
(** The composed per-message fault model (corruption, delay, loss), or
    [None] when all three axes are off. *)

val partition_of_cell :
  cell ->
  nids:Simnet.Proc_id.nid list ->
  horizon:Sim_engine.Time_ns.t ->
  Simnet.Fault.partition_schedule
(** When the cell's partition axis is on: one symmetric cut splitting
    [nids] in half at [horizon/4], healing at [3*horizon/4]. Empty
    schedule otherwise (or with fewer than two nodes). *)

val crash_schedule_of :
  cell ->
  nids:Simnet.Proc_id.nid list ->
  horizon:Sim_engine.Time_ns.t ->
  Simnet.Fault.crash_schedule
(** [cell.crashes] seeded crash/restart pairs over [\[0, horizon)]. *)

val describe : cell -> string
(** One-line cell label, e.g. ["corrupt=0.01 partition seed=7"]. *)

val run : cells:cell list -> f:(cell -> 'a) -> 'a outcome list
