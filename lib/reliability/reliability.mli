(** Reliable, in-order, exactly-once delivery over a lossy fabric.

    Portals 3.0 assumes "reliable, in-order delivery" from the network
    (§2) — on Cplant that guarantee was {e manufactured} by a reliability
    protocol running below the Portals modules. This library reproduces
    that layer: {!attach} installs a shim at the fabric's wire boundary
    ({!Simnet.Fabric.install_shim}), so every transport built over the
    fabric — RTS/CTS, NIC offload, kernel-interrupt, and everything above
    them (Portals [Ni], GM, MPI, collectives, one-sided) — keeps its
    reliable in-order service even when a {!Simnet.Fault} model is
    dropping or duplicating wire messages.

    The protocol, per (src, dst) direction:
    {ul
    {- every payload is wrapped in a sequence-numbered [Data] frame;}
    {- a sliding window of at most [window] unacknowledged frames may be
       in flight; further sends queue FIFO behind it;}
    {- the receiver delivers strictly in sequence order, buffers
       out-of-order arrivals, suppresses duplicates, and answers every
       [Data] frame with a cumulative + selective acknowledgment;}
    {- unacknowledged frames are retransmitted on an adaptive timeout
       (smoothed-RTT based, exponential backoff, capped), each frame up to
       [max_retries] times; beyond that the retry budget is exhausted and
       the frame is abandoned — counted, surfaced through
       {!on_give_up}, and visible to the application only as the silence
       §4.8's drop accounting exists to diagnose.}}

    Acknowledgments are never retransmitted; a lost ack is repaired by the
    cumulative ack of any later frame or by a (duplicate-suppressed)
    retransmission.

    The protocol also understands {e peer reset}: when a node crash-stops
    ([Simnet.Fabric.crash]), every per-pair sequence space and retransmit
    queue touching that node is discarded — the restarted peer comes back
    with empty tables, so both directions restart from sequence 0 instead
    of deadlocking on an un-ackable window. Frames discarded this way are
    counted ([rel.peer_reset_lost]); surfacing the loss to the
    application is the upper layer's job (see [Mpi.Peer_failed]).

    Metrics (registered in the scheduler's registry, labelled
    [("protocol", "reliability")]): [rel.data_sent], [rel.acks_sent],
    [rel.retransmits], [rel.duplicate_drops], [rel.corrupt_drops],
    [rel.retries_exhausted],
    [rel.delivered], [rel.peer_resets], [rel.peer_reset_lost],
    [rel.ack_rtt_us] (summary), [rel.window_inflight]
    (series of total in-flight frames over time). *)

module Frame = Rel_frame
(** Wire format of the protocol's [Data] and [Ack] frames. *)

module Campaign = Campaign
(** Fault-injection campaign runner (loss-rate × seed grids). *)

module Chaos = Chaos
(** Chaos campaign grids: corruption × delay × partition × crash × loss
    cells over seeds, for invariant-checked fault sweeps
    ([Experiments.Chaos] runs the checkers). *)

type config = {
  window : int;  (** Max unacknowledged frames in flight per pair. *)
  base_rto : Sim_engine.Time_ns.t;
      (** Initial retransmission timeout, and the floor of the adaptive
          one. *)
  max_rto : Sim_engine.Time_ns.t;  (** Backoff ceiling. *)
  max_retries : int;
      (** Retransmissions allowed per frame before giving up. *)
}

val default_config : config
(** window 32, base RTO 150 us, max RTO 5 ms, 20 retries. *)

type stats = {
  data_sent : int;  (** First transmissions (not retransmits). *)
  acks_sent : int;
  retransmits : int;
  duplicate_drops : int;  (** Received frames suppressed as duplicates. *)
  corrupt_drops : int;
      (** Received frames discarded as corrupt ({!Rel_frame.error.Corrupt})
          — treated exactly like loss, so the retransmission machinery
          recovers them transparently. *)
  retries_exhausted : int;  (** Frames abandoned past the retry budget. *)
  delivered : int;  (** Payloads handed up, in order, exactly once. *)
  peer_resets : int;  (** Node failures that wiped per-pair state. *)
  peer_reset_lost : int;
      (** Queued/unacked frames discarded by those resets. *)
}

type t

val attach : ?config:config -> Simnet.Fabric.t -> t
(** Install the protocol on a fabric. Raises [Invalid_argument] if the
    fabric already has a shim. Must be installed before traffic flows
    (frames sent earlier would be indistinguishable from corruption). *)

val config : t -> config
val stats : t -> stats

val on_give_up :
  t -> (src:Simnet.Proc_id.t -> dst:Simnet.Proc_id.t -> seq:int -> unit) -> unit
(** Called when a frame exhausts its retry budget. Default: nothing (the
    loss is still counted in [retries_exhausted]). Whatever the callback,
    each give-up also emits a labelled ["rel.give_up"] instant into the
    scheduler trace when tracing is enabled, so exhausted budgets are
    visible in [--trace-out] Chrome traces. *)

val inflight : t -> int
(** Total unacknowledged frames across all pairs, now. *)
