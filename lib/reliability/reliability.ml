open Sim_engine
module Frame = Rel_frame
module Campaign = Campaign
module Chaos = Chaos

type config = {
  window : int;
  base_rto : Time_ns.t;
  max_rto : Time_ns.t;
  max_retries : int;
}

let default_config =
  {
    window = 32;
    base_rto = Time_ns.us 150.;
    max_rto = Time_ns.ms 5.;
    max_retries = 20;
  }

type stats = {
  data_sent : int;
  acks_sent : int;
  retransmits : int;
  duplicate_drops : int;
  corrupt_drops : int;
  retries_exhausted : int;
  delivered : int;
  peer_resets : int;
  peer_reset_lost : int;
}

type tx_entry = {
  e_seq : int;
  e_payload : bytes;
  mutable e_sends : int;
  e_first_sent : Time_ns.t;
}

(* Sender half of one (src, dst) direction. *)
type tx = {
  tx_src : Simnet.Proc_id.t;
  tx_dst : Simnet.Proc_id.t;
  mutable next_seq : int;
  unacked : (int, tx_entry) Hashtbl.t;
  pending : bytes Queue.t;
  mutable rto : Time_ns.t;
  mutable srtt_us : float;  (* 0 until the first sample *)
  mutable timer_gen : int;
}

(* Receiver half of one (src, dst) direction. *)
type rx = { mutable expected : int; ooo : (int, bytes) Hashtbl.t }

type t = {
  fabric : Simnet.Fabric.t;
  cfg : config;
  sched : Scheduler.t;
  txs : (Simnet.Proc_id.t * Simnet.Proc_id.t, tx) Hashtbl.t;
  rxs : (Simnet.Proc_id.t * Simnet.Proc_id.t, rx) Hashtbl.t;
  mutable inflight_total : int;
  mutable give_up :
    src:Simnet.Proc_id.t -> dst:Simnet.Proc_id.t -> seq:int -> unit;
  m_data : Metrics.counter;
  m_acks : Metrics.counter;
  m_retransmits : Metrics.counter;
  m_dup_drops : Metrics.counter;
  m_corrupt_drops : Metrics.counter;
  m_exhausted : Metrics.counter;
  m_delivered : Metrics.counter;
  m_peer_resets : Metrics.counter;
  m_peer_reset_lost : Metrics.counter;
  m_rtt : Metrics.summary;
  m_window : Metrics.series;
}

let config t = t.cfg
let inflight t = t.inflight_total

let stats t =
  {
    data_sent = Metrics.counter_value t.m_data;
    acks_sent = Metrics.counter_value t.m_acks;
    retransmits = Metrics.counter_value t.m_retransmits;
    duplicate_drops = Metrics.counter_value t.m_dup_drops;
    corrupt_drops = Metrics.counter_value t.m_corrupt_drops;
    retries_exhausted = Metrics.counter_value t.m_exhausted;
    delivered = Metrics.counter_value t.m_delivered;
    peer_resets = Metrics.counter_value t.m_peer_resets;
    peer_reset_lost = Metrics.counter_value t.m_peer_reset_lost;
  }

let on_give_up t f = t.give_up <- f

let sample_window t =
  Metrics.push t.m_window
    ~x:(Time_ns.to_us (Scheduler.now t.sched))
    ~y:(float_of_int t.inflight_total)

let tx_of t ~src ~dst =
  match Hashtbl.find_opt t.txs (src, dst) with
  | Some tx -> tx
  | None ->
    let tx =
      {
        tx_src = src;
        tx_dst = dst;
        next_seq = 0;
        unacked = Hashtbl.create 64;
        pending = Queue.create ();
        rto = t.cfg.base_rto;
        srtt_us = 0.;
        timer_gen = 0;
      }
    in
    Hashtbl.replace t.txs (src, dst) tx;
    tx

let rx_of t ~src ~dst =
  match Hashtbl.find_opt t.rxs (src, dst) with
  | Some rx -> rx
  | None ->
    let rx = { expected = 0; ooo = Hashtbl.create 64 } in
    Hashtbl.replace t.rxs (src, dst) rx;
    rx

let send_data_frame t tx entry =
  Simnet.Fabric.send_raw t.fabric ~src:tx.tx_src ~dst:tx.tx_dst
    (Frame.encode (Frame.Data { seq = entry.e_seq; payload = entry.e_payload }))

(* --- retransmission timer --------------------------------------------- *)

(* Timers cannot be cancelled in the event queue, so each (re)arm bumps a
   generation; stale firings see a newer generation and do nothing. *)
let rec arm_timer t tx =
  tx.timer_gen <- tx.timer_gen + 1;
  let gen = tx.timer_gen in
  Scheduler.after t.sched tx.rto (fun () ->
      if gen = tx.timer_gen && Hashtbl.length tx.unacked > 0 then
        on_timeout t tx)

and cancel_timer tx = tx.timer_gen <- tx.timer_gen + 1

and on_timeout t tx =
  (* Retransmit every unacked frame in sequence order; frames past their
     retry budget are abandoned. *)
  let entries =
    List.sort
      (fun a b -> compare a.e_seq b.e_seq)
      (Hashtbl.fold (fun _ e acc -> e :: acc) tx.unacked [])
  in
  List.iter
    (fun e ->
      if e.e_sends > t.cfg.max_retries then begin
        Hashtbl.remove tx.unacked e.e_seq;
        t.inflight_total <- t.inflight_total - 1;
        Metrics.incr t.m_exhausted;
        (* Exhausted retry budgets must be visible in Chrome traces, not
           only counters, whatever the give_up callback does. *)
        let tr = Scheduler.trace t.sched in
        if Trace.enabled tr then
          Trace.instant tr ~subsys:"rel"
            ~proc:(Printf.sprintf "cpu%d" tx.tx_src.Simnet.Proc_id.nid)
            ~msg_id:e.e_seq
            (Format.asprintf "rel.give_up seq=%d %a->%a" e.e_seq
               Simnet.Proc_id.pp tx.tx_src Simnet.Proc_id.pp tx.tx_dst);
        t.give_up ~src:tx.tx_src ~dst:tx.tx_dst ~seq:e.e_seq
      end
      else begin
        e.e_sends <- e.e_sends + 1;
        Metrics.incr t.m_retransmits;
        send_data_frame t tx e
      end)
    entries;
  (* Exponential backoff, capped. *)
  tx.rto <- Time_ns.min (Time_ns.add tx.rto tx.rto) t.cfg.max_rto;
  sample_window t;
  pump t tx;
  if Hashtbl.length tx.unacked > 0 then arm_timer t tx else cancel_timer tx

(* --- sender ------------------------------------------------------------ *)

and transmit t tx payload =
  let entry =
    {
      e_seq = tx.next_seq;
      e_payload = payload;
      e_sends = 1;
      e_first_sent = Scheduler.now t.sched;
    }
  in
  tx.next_seq <- tx.next_seq + 1;
  Hashtbl.replace tx.unacked entry.e_seq entry;
  t.inflight_total <- t.inflight_total + 1;
  Metrics.incr t.m_data;
  sample_window t;
  send_data_frame t tx entry;
  if Hashtbl.length tx.unacked = 1 then arm_timer t tx

and pump t tx =
  while
    Hashtbl.length tx.unacked < t.cfg.window
    && not (Queue.is_empty tx.pending)
  do
    transmit t tx (Queue.pop tx.pending)
  done

let on_send t ~src ~dst payload =
  let tx = tx_of t ~src ~dst in
  if
    Hashtbl.length tx.unacked < t.cfg.window && Queue.is_empty tx.pending
  then transmit t tx payload
  else Queue.add payload tx.pending

(* --- acknowledgment handling ------------------------------------------ *)

let update_rtt t tx entry =
  (* Karn's rule: only first-transmission acks give an unambiguous RTT. *)
  if entry.e_sends = 1 then begin
    let rtt_us =
      Time_ns.to_us (Time_ns.sub (Scheduler.now t.sched) entry.e_first_sent)
    in
    Metrics.observe t.m_rtt rtt_us;
    tx.srtt_us <-
      (if tx.srtt_us = 0. then rtt_us
       else (0.875 *. tx.srtt_us) +. (0.125 *. rtt_us));
    tx.rto <-
      Time_ns.max t.cfg.base_rto
        (Time_ns.min t.cfg.max_rto (Time_ns.us (2. *. tx.srtt_us)))
  end

let on_ack t ~src ~dst ~cum_ack ~sack =
  (* The ack travels receiver -> sender, so the data direction it acks is
     (dst, src). *)
  let tx = tx_of t ~src:dst ~dst:src in
  let acked =
    Hashtbl.fold
      (fun seq e acc ->
        if seq <= cum_ack || Frame.sack_mem ~sack ~cum_ack seq then e :: acc
        else acc)
      tx.unacked []
  in
  List.iter
    (fun e ->
      update_rtt t tx e;
      Hashtbl.remove tx.unacked e.e_seq;
      t.inflight_total <- t.inflight_total - 1)
    acked;
  if acked <> [] then begin
    sample_window t;
    if Hashtbl.length tx.unacked = 0 then cancel_timer tx
    else arm_timer t tx (* restart: progress was made *)
  end;
  pump t tx

(* --- receiver ---------------------------------------------------------- *)

let send_ack t ~me ~peer rx =
  Metrics.incr t.m_acks;
  let cum_ack = rx.expected - 1 in
  let seqs = Hashtbl.fold (fun seq _ acc -> seq :: acc) rx.ooo [] in
  let sack = Frame.sack_of_seqs ~cum_ack seqs in
  Simnet.Fabric.send_raw t.fabric ~src:me ~dst:peer
    (Frame.encode (Frame.Ack { cum_ack; sack }))

let deliver_up t ~src ~dst payload =
  Metrics.incr t.m_delivered;
  Simnet.Fabric.deliver t.fabric ~src ~dst payload

let on_data t ~src ~dst ~seq payload =
  let rx = rx_of t ~src ~dst in
  if seq < rx.expected || Hashtbl.mem rx.ooo seq then
    (* Duplicate (a retransmission that crossed our ack): suppress, but
       re-ack so the sender stops resending. *)
    Metrics.incr t.m_dup_drops
  else if seq = rx.expected then begin
    deliver_up t ~src ~dst payload;
    rx.expected <- rx.expected + 1;
    (* Drain any buffered successors that are now in order. *)
    let rec drain () =
      match Hashtbl.find_opt rx.ooo rx.expected with
      | None -> ()
      | Some p ->
        Hashtbl.remove rx.ooo rx.expected;
        deliver_up t ~src ~dst p;
        rx.expected <- rx.expected + 1;
        drain ()
    in
    drain ()
  end
  else Hashtbl.replace rx.ooo seq payload;
  send_ack t ~me:dst ~peer:src rx

let on_wire t ~src ~dst payload =
  match Frame.decode payload with
  | Ok (Frame.Data { seq; payload }) -> on_data t ~src ~dst ~seq payload
  | Ok (Frame.Ack { cum_ack; sack }) -> on_ack t ~src ~dst ~cum_ack ~sack
  | Error Frame.Not_ours ->
    (* Not ours — a message injected below the shim (e.g. directly via
       send_raw in a test). Pass it through untouched. *)
    Simnet.Fabric.deliver t.fabric ~src ~dst payload
  | Error (Frame.Corrupt _) ->
    (* A reliability frame damaged in flight. Treat exactly like loss:
       no delivery, no acknowledgment — the sender's timer retransmits
       (data) or the next data frame re-elicits the ack (acks), so
       corruption degrades to loss and recovery is transparent. *)
    Metrics.incr t.m_corrupt_drops;
    let tr = Scheduler.trace t.sched in
    if Trace.enabled tr then
      Trace.instant tr ~subsys:"rel"
        ~proc:(Printf.sprintf "cpu%d" dst.Simnet.Proc_id.nid)
        (Format.asprintf "rel.corrupt_drop %a->%a len=%d" Simnet.Proc_id.pp src
           Simnet.Proc_id.pp dst (Bytes.length payload))

(* --- peer reset -------------------------------------------------------- *)

(* Crash-stop of node [nid] invalidates every per-pair state touching it:
   the node's own halves died with it, and surviving peers must restart
   the pair's sequence space from 0 — the restarted node comes back with
   empty tables, so retransmitting into the old numbering would deadlock
   both directions. Unsent/unacked frames toward the dead node are
   counted lost; redelivery is the caller's business (MPI surfaces it as
   [Peer_failed]). State is recreated lazily at seq 0 on next use. *)
let forget_node t nid =
  let involved (a, b) =
    a.Simnet.Proc_id.nid = nid || b.Simnet.Proc_id.nid = nid
  in
  let tx_victims =
    Hashtbl.fold
      (fun k tx acc -> if involved k then (k, tx) :: acc else acc)
      t.txs []
  in
  let rx_victims =
    Hashtbl.fold (fun k _ acc -> if involved k then k :: acc else acc) t.rxs []
  in
  List.iter
    (fun (k, tx) ->
      cancel_timer tx;
      let lost = Hashtbl.length tx.unacked + Queue.length tx.pending in
      t.inflight_total <- t.inflight_total - Hashtbl.length tx.unacked;
      if lost > 0 then Metrics.add t.m_peer_reset_lost lost;
      Hashtbl.remove t.txs k)
    tx_victims;
  List.iter (Hashtbl.remove t.rxs) rx_victims;
  if tx_victims <> [] || rx_victims <> [] then begin
    Metrics.incr t.m_peer_resets;
    sample_window t
  end

(* --- construction ------------------------------------------------------ *)

let attach ?(config = default_config) fabric =
  if config.window <= 0 then
    invalid_arg "Reliability.attach: window must be positive";
  if config.max_retries < 0 then
    invalid_arg "Reliability.attach: max_retries must be non-negative";
  let sched = Simnet.Fabric.sched fabric in
  let m = Scheduler.metrics sched in
  let labels = [ ("protocol", "reliability") ] in
  let t =
    {
      fabric;
      cfg = config;
      sched;
      txs = Hashtbl.create 64;
      rxs = Hashtbl.create 64;
      inflight_total = 0;
      give_up = (fun ~src:_ ~dst:_ ~seq:_ -> ());
      m_data = Metrics.counter m ~labels "rel.data_sent";
      m_acks = Metrics.counter m ~labels "rel.acks_sent";
      m_retransmits = Metrics.counter m ~labels "rel.retransmits";
      m_dup_drops = Metrics.counter m ~labels "rel.duplicate_drops";
      m_corrupt_drops = Metrics.counter m ~labels "rel.corrupt_drops";
      m_exhausted = Metrics.counter m ~labels "rel.retries_exhausted";
      m_delivered = Metrics.counter m ~labels "rel.delivered";
      m_peer_resets = Metrics.counter m ~labels "rel.peer_resets";
      m_peer_reset_lost = Metrics.counter m ~labels "rel.peer_reset_lost";
      m_rtt = Metrics.summary m ~labels "rel.ack_rtt_us";
      m_window = Metrics.series m ~labels "rel.window_inflight";
    }
  in
  Simnet.Fabric.install_shim fabric
    {
      Simnet.Fabric.shim_tx = (fun ~src ~dst payload -> on_send t ~src ~dst payload);
      shim_rx = (fun ~src ~dst payload -> on_wire t ~src ~dst payload);
    };
  Simnet.Fabric.on_crash fabric (fun nid -> forget_node t nid);
  t
