type t =
  | Data of { seq : int; payload : bytes }
  | Ack of { cum_ack : int; sack : int64 }

type error = Not_ours | Corrupt of string

let magic = 0xA7
let header_size = 10 (* magic + kind + seq *)
let checksum_size = 4

(* Kinds 0/1 are the unprotected (legacy) Data/Ack encodings; kinds 2/3
   are the same images plus a CRC-32C trailer over everything before it.
   Like [Wire], the frame is self-describing but the process-wide
   [Simnet.Integrity] switch decides what encoders emit — and while it is
   on, unprotected frames are rejected so corruption of the kind byte
   cannot downgrade a frame out of coverage. *)
let kind_data = 0
let kind_ack = 1
let kind_data_crc = 2
let kind_ack_crc = 3

let seal buf =
  let body = Bytes.length buf - checksum_size in
  Bytes.set_int32_le buf body
    (Int32.of_int (Simnet.Crc32c.digest ~pos:0 ~len:body buf))

let encode frame =
  let ck = if Simnet.Integrity.is_enabled () then checksum_size else 0 in
  let buf =
    match frame with
    | Data { seq; payload } ->
      let buf = Bytes.create (header_size + Bytes.length payload + ck) in
      Bytes.set_uint8 buf 0 magic;
      Bytes.set_uint8 buf 1 (if ck > 0 then kind_data_crc else kind_data);
      Bytes.set_int64_le buf 2 (Int64.of_int seq);
      Bytes.blit payload 0 buf header_size (Bytes.length payload);
      buf
    | Ack { cum_ack; sack } ->
      let buf = Bytes.create (18 + ck) in
      Bytes.set_uint8 buf 0 magic;
      Bytes.set_uint8 buf 1 (if ck > 0 then kind_ack_crc else kind_ack);
      Bytes.set_int64_le buf 2 (Int64.of_int cum_ack);
      Bytes.set_int64_le buf 10 sack;
      buf
  in
  if ck > 0 then seal buf;
  buf

let check_crc buf =
  let body = Bytes.length buf - checksum_size in
  let stored = Int32.to_int (Bytes.get_int32_le buf body) land 0xFFFFFFFF in
  if Simnet.Crc32c.digest ~pos:0 ~len:body buf = stored then Ok ()
  else Error (Corrupt "rel frame: checksum mismatch")

let decode buf =
  let len = Bytes.length buf in
  if len < 1 || Bytes.get_uint8 buf 0 <> magic then Error Not_ours
  else if len < 2 then Error (Corrupt "rel frame: truncated header")
  else
    let kind = Bytes.get_uint8 buf 1 in
    let protected_ = kind = kind_data_crc || kind = kind_ack_crc in
    if (not protected_) && (kind = kind_data || kind = kind_ack)
       && Simnet.Integrity.is_enabled ()
    then Error (Corrupt "rel frame: unprotected frame while integrity enabled")
    else if protected_ && len < header_size + checksum_size then
      Error (Corrupt "rel frame: truncated checksum trailer")
    else
      let crc = if protected_ then check_crc buf else Ok () in
      match crc with
      | Error e -> Error e
      | Ok () ->
        if kind = kind_data || kind = kind_data_crc then
          if len < header_size then Error (Corrupt "rel frame: truncated header")
          else
            let tail = if protected_ then checksum_size else 0 in
            Ok
              (Data
                 {
                   seq = Int64.to_int (Bytes.get_int64_le buf 2);
                   payload = Bytes.sub buf header_size (len - header_size - tail);
                 })
        else if kind = kind_ack || kind = kind_ack_crc then
          if len < 18 + (if protected_ then checksum_size else 0) then
            Error (Corrupt "rel frame: truncated ack")
          else
            Ok
              (Ack
                 {
                   cum_ack = Int64.to_int (Bytes.get_int64_le buf 2);
                   sack = Bytes.get_int64_le buf 10;
                 })
        else Error (Corrupt "rel frame: unknown kind")

let sack_mem ~sack ~cum_ack seq =
  let i = seq - cum_ack - 1 in
  i >= 0 && i < 64 && Int64.logand sack (Int64.shift_left 1L i) <> 0L

let sack_of_seqs ~cum_ack seqs =
  List.fold_left
    (fun acc seq ->
      let i = seq - cum_ack - 1 in
      if i >= 0 && i < 64 then Int64.logor acc (Int64.shift_left 1L i) else acc)
    0L seqs

let pp ppf = function
  | Data { seq; payload } ->
    Format.fprintf ppf "DATA seq=%d len=%d" seq (Bytes.length payload)
  | Ack { cum_ack; sack } ->
    Format.fprintf ppf "ACK cum=%d sack=%Lx" cum_ack sack

let pp_error ppf = function
  | Not_ours -> Format.pp_print_string ppf "not a rel frame"
  | Corrupt msg -> Format.pp_print_string ppf msg
