type t =
  | Data of { seq : int; payload : bytes }
  | Ack of { cum_ack : int; sack : int64 }

let magic = 0xA7
let header_size = 10 (* magic + kind + seq *)

let encode = function
  | Data { seq; payload } ->
    let buf = Bytes.create (header_size + Bytes.length payload) in
    Bytes.set_uint8 buf 0 magic;
    Bytes.set_uint8 buf 1 0;
    Bytes.set_int64_le buf 2 (Int64.of_int seq);
    Bytes.blit payload 0 buf header_size (Bytes.length payload);
    buf
  | Ack { cum_ack; sack } ->
    let buf = Bytes.create 18 in
    Bytes.set_uint8 buf 0 magic;
    Bytes.set_uint8 buf 1 1;
    Bytes.set_int64_le buf 2 (Int64.of_int cum_ack);
    Bytes.set_int64_le buf 10 sack;
    buf

let decode buf =
  if Bytes.length buf < header_size then Error "rel frame: truncated header"
  else if Bytes.get_uint8 buf 0 <> magic then Error "rel frame: bad magic"
  else
    match Bytes.get_uint8 buf 1 with
    | 0 ->
      Ok
        (Data
           {
             seq = Int64.to_int (Bytes.get_int64_le buf 2);
             payload = Bytes.sub buf header_size (Bytes.length buf - header_size);
           })
    | 1 ->
      if Bytes.length buf < 18 then Error "rel frame: truncated ack"
      else
        Ok
          (Ack
             {
               cum_ack = Int64.to_int (Bytes.get_int64_le buf 2);
               sack = Bytes.get_int64_le buf 10;
             })
    | _ -> Error "rel frame: unknown kind"

let sack_mem ~sack ~cum_ack seq =
  let i = seq - cum_ack - 1 in
  i >= 0 && i < 64 && Int64.logand sack (Int64.shift_left 1L i) <> 0L

let sack_of_seqs ~cum_ack seqs =
  List.fold_left
    (fun acc seq ->
      let i = seq - cum_ack - 1 in
      if i >= 0 && i < 64 then Int64.logor acc (Int64.shift_left 1L i) else acc)
    0L seqs

let pp ppf = function
  | Data { seq; payload } ->
    Format.fprintf ppf "DATA seq=%d len=%d" seq (Bytes.length payload)
  | Ack { cum_ack; sack } ->
    Format.fprintf ppf "ACK cum=%d sack=%Lx" cum_ack sack
