open Sim_engine
module P = Portals

(* Portal table assignments for the MPI device. *)
let pt_mpi = 4
let pt_rdvz = 5
let acl_cookie = 0
let context_world = 0
let max_context = Envelope.max_context

type config = {
  eager_threshold : int;
  slab_size : int;
  slab_count : int;
  eq_capacity : int;
  call_cost : Time_ns.t;
}

let default_config =
  {
    eager_threshold = 65536;
    slab_size = 262144;
    slab_count = 8;
    eq_capacity = 8192;
    call_cost = Time_ns.ns 300;
  }

(* Envelope <-> Portals match-bits codec. Lives here, not in Envelope:
   the match-bits layout is this adapter's private wire contract with
   the Portals NI, and no other stack sees it. *)
(* Field layout within the 64 match bits. *)
let proto_shift = 62
let proto_width = 2
let ctx_shift = 48
let ctx_width = 14
let src_shift = 32
let src_width = 16
let tag_shift = 0
let tag_width = 32

let check_ranges ~context ~src_rank ~tag =
  if context < 0 || context > max_context then invalid_arg "Mpi: bad context";
  if src_rank < 0 || src_rank > Envelope.max_rank then invalid_arg "Mpi: bad rank";
  if tag < 0 || tag > Envelope.max_tag then invalid_arg "Mpi: bad tag"

let to_match_bits t =
  check_ranges ~context:t.Envelope.context ~src_rank:t.src_rank ~tag:t.tag;
  let open P.Match_bits in
  let proto = match t.Envelope.protocol with Envelope.Eager -> 0 | Envelope.Rendezvous -> 1 in
  logor
    (field ~shift:proto_shift ~width:proto_width proto)
    (logor
       (field ~shift:ctx_shift ~width:ctx_width t.context)
       (logor
          (field ~shift:src_shift ~width:src_width t.src_rank)
          (field ~shift:tag_shift ~width:tag_width t.tag)))

let of_match_bits bits =
  let open P.Match_bits in
  let proto = extract ~shift:proto_shift ~width:proto_width bits in
  {
    Envelope.protocol = (if proto = 0 then Envelope.Eager else Envelope.Rendezvous);
    context = extract ~shift:ctx_shift ~width:ctx_width bits;
    src_rank = extract ~shift:src_shift ~width:src_width bits;
    tag = extract ~shift:tag_shift ~width:tag_width bits;
  }

let recv_match_bits ~context ~source ~tag =
  let open P.Match_bits in
  let mbits =
    logor
      (field ~shift:ctx_shift ~width:ctx_width context)
      (logor
         (field ~shift:src_shift ~width:src_width
            (if source = Envelope.any_source then 0 else source))
         (field ~shift:tag_shift ~width:tag_width (if tag = Envelope.any_tag then 0 else tag)))
  in
  let ignore_bits =
    (* Protocol bits always ignored; wildcards widen the mask. *)
    let acc = mask ~shift:proto_shift ~width:proto_width in
    let acc =
      if source = Envelope.any_source then logor acc (mask ~shift:src_shift ~width:src_width)
      else acc
    in
    if tag = Envelope.any_tag then logor acc (mask ~shift:tag_shift ~width:tag_width) else acc
  in
  (mbits, ignore_bits)

type status = Transport.status = { source : int; tag : int; length : int }

type req_kind = Send_eager | Send_rdvz | Recv

type request = {
  id : int;
  kind : req_kind;
  buffer : bytes;
  want_source : int;
  want_tag : int;
  mutable state : [ `Pending | `Complete of status | `Failed of int ];
  mutable rdvz_source : int; (* envelope of the matched rendezvous header *)
  mutable rdvz_tag : int;
}

type slab = {
  s_idx : int;
  s_buffer : bytes;
  mutable s_meh : P.Handle.me;
  mutable s_mdh : P.Handle.md;
  mutable s_outstanding : int; (* unexpected chunks not yet copied out *)
}

type unexpected =
  | Ux_eager of {
      ux_env : Envelope.t;
      ux_slab : slab;
      ux_off : int;
      ux_mlen : int;
    }
  | Ux_rdvz of {
      ux_env : Envelope.t;
      ux_cookie : int64;
      ux_total : int;
      ux_src : Simnet.Proc_id.t;
    }

type t = {
  ni : P.Ni.t;
  cfg : config;
  ranks : Simnet.Proc_id.t array;
  my_rank : int;
  sched : Scheduler.t;
  tp : Simnet.Transport.t;
  eqh : P.Handle.eq;
  eqq : P.Event.Queue.t;
  reqs : (int, request) Hashtbl.t;
  mutable next_id : int;
  mutable next_cookie : int;
  unexpected : unexpected Queue.t;
  slabs : slab array;
  mutable slab_order : int list; (* match-list order, front = searched first *)
  mutable ux_bytes : int;
  mutable ux_highwater : int;
  mutable eager_sends : int;
  mutable rdvz_sends : int;
  mutable completions : int;
  mutable decode_errors : int; (* corrupt rendezvous headers discarded *)
  failed : (int, unit) Hashtbl.t; (* ranks whose node is down *)
  mutable peer_cbs : (rank:int -> unit) list;
}

let rank t = t.my_rank
let size t = Array.length t.ranks
let ni t = t.ni
let unexpected_bytes_highwater t = t.ux_highwater

let ok_exn = P.Errors.ok_exn

let slab_md_options =
  {
    P.Md.op_put = true;
    op_get = false;
    manage_remote = false;
    truncate = false;
    ack_disable = true;
  }

let attach_slab t (slab : slab) =
  let meh =
    ok_exn ~op:"slab me_attach"
      (P.Ni.me_attach t.ni ~portal_index:pt_mpi ~match_id:P.Match_id.any
         ~match_bits:P.Match_bits.zero ~ignore_bits:P.Match_bits.all_ones
         ~unlink:P.Md.Retain ~pos:`Tail ())
  in
  let mdh =
    ok_exn ~op:"slab md_attach"
      (P.Ni.md_attach t.ni ~me:meh
         (P.Ni.md_spec ~options:slab_md_options ~threshold:P.Md.Infinite
            ~unlink:P.Md.Retain ~eq:t.eqh
            ~user_ptr:(-(slab.s_idx + 1))
            slab.s_buffer))
  in
  slab.s_meh <- meh;
  slab.s_mdh <- mdh

let fail_req t req rank =
  match req.state with
  | `Pending ->
    req.state <- `Failed rank;
    Hashtbl.remove t.reqs req.id
  | `Complete _ | `Failed _ -> ()

(* A peer's node crashed. Requests that need that peer's cooperation —
   rendezvous sends awaiting its pull, receives pinned to it — fail;
   blocked waiters are woken to observe it. Eager sends complete locally
   either way (fire-and-forget: the loss shows up at the receiver's
   accounting, not the sender's). *)
let on_peer_crash t nid =
  let hit = ref false in
  Array.iteri
    (fun r pid ->
      if r <> t.my_rank && pid.Simnet.Proc_id.nid = nid then begin
        hit := true;
        Hashtbl.replace t.failed r ();
        let victims =
          Hashtbl.fold
            (fun _ req acc ->
              let dead =
                match req.kind with
                | Send_rdvz -> req.want_source = r
                | Recv -> req.want_source = r || req.rdvz_source = r
                | Send_eager -> false
              in
              if dead then req :: acc else acc)
            t.reqs []
        in
        List.iter (fun req -> fail_req t req r) victims;
        List.iter (fun cb -> cb ~rank:r) t.peer_cbs
      end)
    t.ranks;
  if !hit then P.Event.Queue.wake t.eqq

(* Portals is connectionless (§3): a restarted peer needs no
   reconnection handshake, so its failed mark clears as soon as the node
   is back up. Requests failed by the crash stay failed — their traffic
   is gone — but new traffic flows with zero re-registration. *)
let on_node_restart t nid =
  Array.iteri
    (fun r pid -> if pid.Simnet.Proc_id.nid = nid then Hashtbl.remove t.failed r)
    t.ranks

let create tp ~ranks ~rank:my_rank ?(config = default_config) () =
  if my_rank < 0 || my_rank >= Array.length ranks then
    invalid_arg "Mpi_portals.create: rank out of range";
  let ni = P.Ni.create tp ~id:ranks.(my_rank) () in
  let eqh = ok_exn ~op:"eq_alloc" (P.Ni.eq_alloc ni ~capacity:config.eq_capacity) in
  let eqq = ok_exn ~op:"eq" (P.Ni.eq ni eqh) in
  let t =
    {
      ni;
      cfg = config;
      ranks;
      my_rank;
      sched = P.Ni.sched ni;
      tp;
      eqh;
      eqq;
      reqs = Hashtbl.create 64;
      next_id = 1;
      next_cookie = 0;
      unexpected = Queue.create ();
      slabs =
        Array.init config.slab_count (fun s_idx ->
            {
              s_idx;
              s_buffer = Bytes.create config.slab_size;
              s_meh = P.Handle.none;
              s_mdh = P.Handle.none;
              s_outstanding = 0;
            });
      slab_order = List.init config.slab_count (fun i -> i);
      ux_bytes = 0;
      ux_highwater = 0;
      eager_sends = 0;
      rdvz_sends = 0;
      completions = 0;
      decode_errors = 0;
      failed = Hashtbl.create 4;
      peer_cbs = [];
    }
  in
  Array.iter (fun slab -> attach_slab t slab) t.slabs;
  let m = Scheduler.metrics t.sched in
  let labels = [ ("rank", string_of_int my_rank) ] in
  let probe name f = Metrics.probe m ~labels name (fun () -> float_of_int (f ())) in
  probe "mpi.eager_sends" (fun () -> t.eager_sends);
  probe "mpi.rdvz_sends" (fun () -> t.rdvz_sends);
  probe "mpi.unexpected_bytes" (fun () -> t.ux_bytes);
  probe "mpi.unexpected_highwater" (fun () -> t.ux_highwater);
  probe "mpi.decode_errors" (fun () -> t.decode_errors);
  tp.Simnet.Transport.on_crash (fun nid -> on_peer_crash t nid);
  tp.Simnet.Transport.on_restart (fun nid -> on_node_restart t nid);
  t

let finalize t = P.Ni.shutdown t.ni

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let fresh_cookie t =
  let seq = t.next_cookie in
  t.next_cookie <- seq + 1;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.my_rank) 32)
    (Int64.of_int (seq land 0xFFFFFFFF))

let find_req t id = Hashtbl.find_opt t.reqs id

let complete t req status =
  match req.state with
  | `Pending ->
    req.state <- `Complete status;
    t.completions <- t.completions + 1;
    Hashtbl.remove t.reqs req.id
  | `Complete _ | `Failed _ -> ()

let on_peer_failure t cb = t.peer_cbs <- t.peer_cbs @ [ cb ]

let failed_ranks t =
  List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) t.failed [])

let reconnect t ~rank:r =
  if r < 0 || r >= Array.length t.ranks then
    invalid_arg "Mpi_portals.reconnect: rank out of range";
  (* Nothing to rebuild: Portals keeps no per-peer connection state. The
     mark (if the node is still down) clears here as it would on
     restart. *)
  Hashtbl.remove t.failed r

(* Rotate a slab to the tail of the match list once its contents have all
   been claimed and it is too full to be useful. *)
let maybe_rearm_slab t (slab : slab) =
  if slab.s_outstanding = 0 then begin
    match P.Ni.md_local_offset t.ni slab.s_mdh with
    | Error _ -> ()
    | Ok used ->
      let headroom = t.cfg.eager_threshold + Envelope.rdvz_header_size in
      if used > 0 && used > t.cfg.slab_size - headroom then begin
        ok_exn ~op:"slab rearm unlink" (P.Ni.me_unlink t.ni slab.s_meh);
        attach_slab t slab;
        t.slab_order <-
          List.filter (fun i -> i <> slab.s_idx) t.slab_order @ [ slab.s_idx ]
      end
  end

let maybe_rearm_all t = Array.iter (fun slab -> maybe_rearm_slab t slab) t.slabs

let first_slab_me t =
  match t.slab_order with
  | [] -> invalid_arg "Mpi_portals: no slabs configured"
  | idx :: _ -> t.slabs.(idx).s_meh

(* Receiver pull of a rendezvous payload: expose the user buffer as an MD
   and get from the sender's per-message entry. *)
let issue_get t req ~cookie ~total_len ~src =
  let len = min total_len (Bytes.length req.buffer) in
  let mdh =
    ok_exn ~op:"rdvz md_bind"
      (P.Ni.md_bind t.ni
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink ~eq:t.eqh
            ~user_ptr:req.id ~length:len req.buffer))
  in
  ok_exn ~op:"rdvz get"
    (P.Ni.get t.ni ~md:mdh
       (P.Ni.op ~target:src ~portal_index:pt_rdvz ~cookie:acl_cookie
          ~match_bits:(P.Match_bits.of_int64 cookie) ()))

let handle_event t (ev : P.Event.t) =
  let up = ev.P.Event.md_user_ptr in
  (* A rendezvous header that fails to decode means in-flight corruption
     reached the MPI layer (only possible with integrity off); the
     message is lost either way, but losing it {e silently} made such
     runs undebuggable — count it and leave a trace breadcrumb. *)
  let decode_error t ~ctx =
    t.decode_errors <- t.decode_errors + 1;
    Trace.instant (Scheduler.trace t.sched) ~subsys:"mpi"
      ~proc:(Printf.sprintf "cpu%d" (P.Ni.id t.ni).Simnet.Proc_id.nid)
      (Printf.sprintf "mpi.decode_error rank=%d %s" t.my_rank ctx)
  in
  match ev.P.Event.kind with
  | P.Event.Put when up < 0 ->
    (* Unexpected: landed in a slab. *)
    let slab = t.slabs.(-up - 1) in
    let env = of_match_bits ev.P.Event.match_bits in
    (match env.Envelope.protocol with
    | Envelope.Eager ->
      slab.s_outstanding <- slab.s_outstanding + 1;
      t.ux_bytes <- t.ux_bytes + ev.P.Event.mlength;
      if t.ux_bytes > t.ux_highwater then t.ux_highwater <- t.ux_bytes;
      Queue.add
        (Ux_eager
           {
             ux_env = env;
             ux_slab = slab;
             ux_off = ev.P.Event.offset;
             ux_mlen = ev.P.Event.mlength;
           })
        t.unexpected
    | Envelope.Rendezvous ->
      (match Envelope.decode_rdvz_header slab.s_buffer ~off:ev.P.Event.offset with
      | Error _ -> decode_error t ~ctx:"unexpected rendezvous header"
      | Ok (cookie, total_len) ->
        Queue.add
          (Ux_rdvz
             {
               ux_env = env;
               ux_cookie = cookie;
               ux_total = total_len;
               ux_src = ev.P.Event.initiator;
             })
          t.unexpected))
  | P.Event.Put -> (
    (* A posted receive matched. *)
    match find_req t up with
    | None -> ()
    | Some req ->
      let env = of_match_bits ev.P.Event.match_bits in
      (match env.Envelope.protocol with
      | Envelope.Eager ->
        complete t req
          {
            source = env.Envelope.src_rank;
            tag = env.Envelope.tag;
            length = ev.P.Event.mlength;
          }
      | Envelope.Rendezvous ->
        (match Envelope.decode_rdvz_header req.buffer ~off:ev.P.Event.offset with
        | Error _ -> decode_error t ~ctx:"posted rendezvous header"
        | Ok (cookie, total_len) ->
          req.rdvz_source <- env.Envelope.src_rank;
          req.rdvz_tag <- env.Envelope.tag;
          issue_get t req ~cookie ~total_len ~src:ev.P.Event.initiator)))
  | P.Event.Sent -> (
    match find_req t up with
    | Some ({ kind = Send_eager; _ } as req) ->
      complete t req
        {
          source = t.my_rank;
          tag = req.want_tag;
          length = Bytes.length req.buffer;
        }
    | Some { kind = Send_rdvz | Recv; _ } | None -> ())
  | P.Event.Get -> (
    (* The receiver pulled our rendezvous payload. *)
    match find_req t up with
    | Some ({ kind = Send_rdvz; _ } as req) ->
      complete t req
        { source = t.my_rank; tag = req.want_tag; length = ev.P.Event.mlength }
    | Some { kind = Send_eager | Recv; _ } | None -> ())
  | P.Event.Reply -> (
    (* Our rendezvous pull completed. *)
    match find_req t up with
    | Some ({ kind = Recv; _ } as req) ->
      complete t req
        {
          source = req.rdvz_source;
          tag = req.rdvz_tag;
          length = ev.P.Event.mlength;
        }
    | Some { kind = Send_eager | Send_rdvz; _ } | None -> ())
  | P.Event.Ack | P.Event.Atomic | P.Event.Triggered -> ()

let progress_raw t =
  let rec drain () =
    match P.Event.Queue.get t.eqq with
    | None -> ()
    | Some ev ->
      handle_event t ev;
      drain ()
  in
  drain ();
  maybe_rearm_all t

let lib_entry t =
  Scheduler.delay t.sched t.cfg.call_cost;
  progress_raw t

let progress t = lib_entry t

let take_unexpected t ~context ~source ~tag =
  let n = Queue.length t.unexpected in
  let found = ref None in
  for _ = 1 to n do
    let u = Queue.pop t.unexpected in
    let env = match u with Ux_eager { ux_env; _ } | Ux_rdvz { ux_env; _ } -> ux_env in
    if !found = None && Envelope.matches ~context env ~source ~tag then
      found := Some u
    else Queue.add u t.unexpected
  done;
  !found

let mk_request t ~kind ~buffer ~want_source ~want_tag =
  let req =
    {
      id = fresh_id t;
      kind;
      buffer;
      want_source;
      want_tag;
      state = `Pending;
      rdvz_source = Envelope.any_source;
      rdvz_tag = Envelope.any_tag;
    }
  in
  Hashtbl.replace t.reqs req.id req;
  req

let check_peer t peer name =
  if peer < 0 || peer >= Array.length t.ranks then
    invalid_arg (Printf.sprintf "Mpi_portals.%s: rank %d out of range" name peer)

let check_context context =
  if context < 0 || context > max_context then
    invalid_arg "Mpi_portals: context out of range"

let isend t ?(context = context_world) ~dst ~tag data =
  check_context context;
  check_peer t dst "isend";
  lib_entry t;
  let len = Bytes.length data in
  let eager = len <= t.cfg.eager_threshold in
  let req =
    mk_request t
      ~kind:(if eager then Send_eager else Send_rdvz)
      ~buffer:data ~want_source:dst ~want_tag:tag
  in
  let target = t.ranks.(dst) in
  if eager then begin
    t.eager_sends <- t.eager_sends + 1;
    let env =
      { Envelope.protocol = Envelope.Eager; context; src_rank = t.my_rank; tag }
    in
    let mdh =
      ok_exn ~op:"eager md_bind"
        (P.Ni.md_bind t.ni
           (P.Ni.md_spec
              ~options:{ P.Md.default_options with P.Md.ack_disable = true }
              ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink ~eq:t.eqh
              ~user_ptr:req.id data))
    in
    ok_exn ~op:"eager put"
      (P.Ni.put t.ni ~md:mdh ~ack:false
         (P.Ni.op ~target ~portal_index:pt_mpi ~cookie:acl_cookie
            ~match_bits:(to_match_bits env) ()))
  end
  else if Hashtbl.mem t.failed dst then
    (* A rendezvous needs the peer to pull; a down peer never will. Fail
       the request now instead of parking it forever. *)
    fail_req t req dst
  else begin
    t.rdvz_sends <- t.rdvz_sends + 1;
    (* Expose the payload for the receiver's pull, keyed by a cookie and
       restricted to the destination process. *)
    let cookie = fresh_cookie t in
    let meh =
      ok_exn ~op:"rdvz me_attach"
        (P.Ni.me_attach t.ni ~portal_index:pt_rdvz
           ~match_id:(P.Match_id.of_proc target)
           ~match_bits:(P.Match_bits.of_int64 cookie)
           ~ignore_bits:P.Match_bits.zero ~unlink:P.Md.Unlink ~pos:`Tail ())
    in
    let data_options =
      {
        P.Md.op_put = false;
        op_get = true;
        manage_remote = true;
        truncate = false;
        ack_disable = true;
      }
    in
    let _data_mdh =
      ok_exn ~op:"rdvz data md"
        (P.Ni.md_attach t.ni ~me:meh
           (P.Ni.md_spec ~options:data_options ~threshold:(P.Md.Count 1)
              ~unlink:P.Md.Unlink ~eq:t.eqh ~user_ptr:req.id data))
    in
    let env =
      {
        Envelope.protocol = Envelope.Rendezvous;
        context;
        src_rank = t.my_rank;
        tag;
      }
    in
    let header = Envelope.encode_rdvz_header ~cookie ~total_len:len in
    (* No EQ on the header descriptor: its SENT is not a completion
       signal (the GET is); threshold 1 still self-cleans it. *)
    let hmd =
      ok_exn ~op:"rdvz header md"
        (P.Ni.md_bind t.ni
           (P.Ni.md_spec
              ~options:{ P.Md.default_options with P.Md.ack_disable = true }
              ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink header))
    in
    ok_exn ~op:"rdvz header put"
      (P.Ni.put t.ni ~md:hmd ~ack:false
         (P.Ni.op ~target ~portal_index:pt_mpi ~cookie:acl_cookie
            ~match_bits:(to_match_bits env) ()))
  end;
  req

let irecv t ?(context = context_world) ?(source = Envelope.any_source)
    ?(tag = Envelope.any_tag) buffer =
  check_context context;
  if source <> Envelope.any_source then check_peer t source "irecv";
  lib_entry t;
  let req = mk_request t ~kind:Recv ~buffer ~want_source:source ~want_tag:tag in
  (match take_unexpected t ~context ~source ~tag with
  | Some (Ux_eager { ux_env; ux_slab; ux_off; ux_mlen }) ->
    (* Claim buffered unexpected data: one host copy, slab reference
       released. *)
    let n = min ux_mlen (Bytes.length buffer) in
    Scheduler.delay t.sched (t.tp.Simnet.Transport.host_copy_time n);
    Bytes.blit ux_slab.s_buffer ux_off buffer 0 n;
    ux_slab.s_outstanding <- ux_slab.s_outstanding - 1;
    t.ux_bytes <- t.ux_bytes - ux_mlen;
    maybe_rearm_slab t ux_slab;
    complete t req
      { source = ux_env.Envelope.src_rank; tag = ux_env.Envelope.tag; length = n }
  | Some (Ux_rdvz { ux_env; ux_cookie; ux_total; ux_src }) ->
    req.rdvz_source <- ux_env.Envelope.src_rank;
    req.rdvz_tag <- ux_env.Envelope.tag;
    issue_get t req ~cookie:ux_cookie ~total_len:ux_total ~src:ux_src
  | None when source <> Envelope.any_source && Hashtbl.mem t.failed source ->
    (* Nothing buffered from the peer and its node is down: the receive
       can never match. *)
    fail_req t req source
  | None ->
    (* Post to the match list: after every earlier posted receive, before
       the unexpected slabs (Fig. 3's ordering). *)
    let mbits, ibits = recv_match_bits ~context ~source ~tag in
    let meh =
      ok_exn ~op:"recv me_insert"
        (P.Ni.me_insert t.ni ~base:(first_slab_me t) ~match_id:P.Match_id.any
           ~match_bits:mbits ~ignore_bits:ibits ~unlink:P.Md.Unlink ~pos:`Before ())
    in
    let recv_options =
      {
        P.Md.op_put = true;
        op_get = false;
        manage_remote = true;
        truncate = true;
        ack_disable = true;
      }
    in
    let _mdh =
      ok_exn ~op:"recv md_attach"
        (P.Ni.md_attach t.ni ~me:meh
           (P.Ni.md_spec ~options:recv_options ~threshold:(P.Md.Count 1)
              ~unlink:P.Md.Unlink ~eq:t.eqh ~user_ptr:req.id buffer))
    in
    ());
  req

let test t req =
  lib_entry t;
  match req.state with
  | `Complete st -> Some st
  | `Pending -> None
  | `Failed r -> raise (Envelope.Peer_failed r)

let wait t req =
  lib_entry t;
  let rec loop () =
    match req.state with
    | `Complete st -> st
    | `Failed r -> raise (Envelope.Peer_failed r)
    | `Pending ->
      (match P.Event.Queue.wait_opt t.eqq with
      | Some ev ->
        handle_event t ev;
        progress_raw t
      | None -> () (* woken out of band: re-check the request state *));
      loop ()
  in
  loop ()

let counters t =
  [
    ("eager_sends", t.eager_sends);
    ("rdvz_sends", t.rdvz_sends);
    ("completions", t.completions);
    ("unexpected_highwater", t.ux_highwater);
  ]

(* The Transport.S instance: what Mpi.Make and the conformance suite
   consume. Only the create arity differs from the toplevel API (the
   signature fixes the config-free form). *)
module Tx = struct
  let name = "portals"

  type nonrec t = t
  type nonrec request = request

  let create tp ~ranks ~rank = create tp ~ranks ~rank ()
  let finalize = finalize
  let rank = rank
  let size = size
  let isend = isend
  let irecv = irecv
  let test = test
  let wait = wait
  let progress = progress
  let on_peer_failure = on_peer_failure
  let failed_ranks = failed_ranks
  let reconnect = reconnect
  let counters = counters
end
