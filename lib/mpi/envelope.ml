exception Peer_failed of int

let any_source = -1
let any_tag = -1
let max_tag = (1 lsl 31) - 1
let max_rank = (1 lsl 16) - 1
let max_context = (1 lsl 14) - 1

type protocol = Eager | Rendezvous

type t = { protocol : protocol; context : int; src_rank : int; tag : int }

let pp ppf t =
  Format.fprintf ppf "%s ctx=%d src=%d tag=%d"
    (match t.protocol with Eager -> "eager" | Rendezvous -> "rdvz")
    t.context t.src_rank t.tag

let matches ?(context = 0) t ~source ~tag =
  t.context = context
  && (source = any_source || source = t.src_rank)
  && (tag = any_tag || tag = t.tag)

(* Field layout within the 64 match bits. *)
let proto_shift = 62
let proto_width = 2
let ctx_shift = 48
let ctx_width = 14
let src_shift = 32
let src_width = 16
let tag_shift = 0
let tag_width = 32

let check_ranges ~context ~src_rank ~tag =
  if context < 0 || context > max_context then invalid_arg "Envelope: bad context";
  if src_rank < 0 || src_rank > max_rank then invalid_arg "Envelope: bad rank";
  if tag < 0 || tag > max_tag then invalid_arg "Envelope: bad tag"

let to_match_bits t =
  check_ranges ~context:t.context ~src_rank:t.src_rank ~tag:t.tag;
  let open Portals.Match_bits in
  let proto = match t.protocol with Eager -> 0 | Rendezvous -> 1 in
  logor
    (field ~shift:proto_shift ~width:proto_width proto)
    (logor
       (field ~shift:ctx_shift ~width:ctx_width t.context)
       (logor
          (field ~shift:src_shift ~width:src_width t.src_rank)
          (field ~shift:tag_shift ~width:tag_width t.tag)))

let of_match_bits bits =
  let open Portals.Match_bits in
  let proto = extract ~shift:proto_shift ~width:proto_width bits in
  {
    protocol = (if proto = 0 then Eager else Rendezvous);
    context = extract ~shift:ctx_shift ~width:ctx_width bits;
    src_rank = extract ~shift:src_shift ~width:src_width bits;
    tag = extract ~shift:tag_shift ~width:tag_width bits;
  }

let recv_match_bits ~context ~source ~tag =
  let open Portals.Match_bits in
  let mbits =
    logor
      (field ~shift:ctx_shift ~width:ctx_width context)
      (logor
         (field ~shift:src_shift ~width:src_width
            (if source = any_source then 0 else source))
         (field ~shift:tag_shift ~width:tag_width (if tag = any_tag then 0 else tag)))
  in
  let ignore_bits =
    (* Protocol bits always ignored; wildcards widen the mask. *)
    let acc = mask ~shift:proto_shift ~width:proto_width in
    let acc =
      if source = any_source then logor acc (mask ~shift:src_shift ~width:src_width)
      else acc
    in
    if tag = any_tag then logor acc (mask ~shift:tag_shift ~width:tag_width) else acc
  in
  (mbits, ignore_bits)

let rdvz_header_size = 16

let encode_rdvz_header ~cookie ~total_len =
  let buf = Bytes.create rdvz_header_size in
  Bytes.set_int64_le buf 0 cookie;
  Bytes.set_int64_le buf 8 (Int64.of_int total_len);
  buf

let decode_rdvz_header buf ~off =
  if Bytes.length buf - off < rdvz_header_size then
    Error "rendezvous header: truncated"
  else
    Ok (Bytes.get_int64_le buf off, Int64.to_int (Bytes.get_int64_le buf (off + 8)))

(* --- GM framing -------------------------------------------------------- *)

type gm_message =
  | Gm_eager of { env : t; payload : bytes }
  | Gm_rts of { env : t; cookie : int; total_len : int }
  | Gm_cts of { cookie : int }
  | Gm_data of { cookie : int; payload : bytes }

let gm_header_size = 33

let gm_magic = 0x6D

let encode_env buf off env =
  Bytes.set_uint8 buf off (match env.protocol with Eager -> 0 | Rendezvous -> 1);
  Bytes.set_int32_le buf (off + 1) (Int32.of_int env.context);
  Bytes.set_int32_le buf (off + 5) (Int32.of_int env.src_rank);
  Bytes.set_int32_le buf (off + 9) (Int32.of_int env.tag)

let decode_env buf off =
  {
    protocol = (if Bytes.get_uint8 buf off = 0 then Eager else Rendezvous);
    context = Int32.to_int (Bytes.get_int32_le buf (off + 1));
    src_rank = Int32.to_int (Bytes.get_int32_le buf (off + 5));
    tag = Int32.to_int (Bytes.get_int32_le buf (off + 9));
  }

let encode_gm msg =
  let payload =
    match msg with
    | Gm_eager { payload; _ } | Gm_data { payload; _ } -> payload
    | Gm_rts _ | Gm_cts _ -> Bytes.empty
  in
  let buf = Bytes.make (gm_header_size + Bytes.length payload) '\x00' in
  Bytes.set_uint8 buf 0 gm_magic;
  (match msg with
  | Gm_eager { env; payload } ->
    Bytes.set_uint8 buf 1 0;
    encode_env buf 2 env;
    Bytes.set_int64_le buf 15 (Int64.of_int (Bytes.length payload))
  | Gm_rts { env; cookie; total_len } ->
    Bytes.set_uint8 buf 1 1;
    encode_env buf 2 env;
    Bytes.set_int64_le buf 15 (Int64.of_int total_len);
    Bytes.set_int64_le buf 23 (Int64.of_int cookie)
  | Gm_cts { cookie } ->
    Bytes.set_uint8 buf 1 2;
    Bytes.set_int64_le buf 23 (Int64.of_int cookie)
  | Gm_data { cookie; payload } ->
    Bytes.set_uint8 buf 1 3;
    Bytes.set_int64_le buf 15 (Int64.of_int (Bytes.length payload));
    Bytes.set_int64_le buf 23 (Int64.of_int cookie));
  Bytes.blit payload 0 buf gm_header_size (Bytes.length payload);
  buf

let decode_gm buf =
  if Bytes.length buf < gm_header_size then Error "gm message: truncated"
  else if Bytes.get_uint8 buf 0 <> gm_magic then Error "gm message: bad magic"
  else begin
    let payload () = Bytes.sub buf gm_header_size (Bytes.length buf - gm_header_size) in
    let cookie () = Int64.to_int (Bytes.get_int64_le buf 23) in
    match Bytes.get_uint8 buf 1 with
    | 0 -> Ok (Gm_eager { env = decode_env buf 2; payload = payload () })
    | 1 ->
      Ok
        (Gm_rts
           {
             env = decode_env buf 2;
             total_len = Int64.to_int (Bytes.get_int64_le buf 15);
             cookie = cookie ();
           })
    | 2 -> Ok (Gm_cts { cookie = cookie () })
    | 3 -> Ok (Gm_data { cookie = cookie (); payload = payload () })
    | k -> Error (Printf.sprintf "gm message: unknown kind %d" k)
  end
