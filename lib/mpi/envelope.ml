exception Peer_failed = Transport.Peer_failed

let any_source = Transport.any_source
let any_tag = Transport.any_tag
let max_tag = (1 lsl 31) - 1
let max_rank = (1 lsl 16) - 1
let max_context = (1 lsl 14) - 1

type protocol = Eager | Rendezvous

type t = { protocol : protocol; context : int; src_rank : int; tag : int }

let pp ppf t =
  Format.fprintf ppf "%s ctx=%d src=%d tag=%d"
    (match t.protocol with Eager -> "eager" | Rendezvous -> "rdvz")
    t.context t.src_rank t.tag

let matches ?(context = 0) t ~source ~tag =
  t.context = context
  && (source = any_source || source = t.src_rank)
  && (tag = any_tag || tag = t.tag)

let rdvz_header_size = 16

let encode_rdvz_header ~cookie ~total_len =
  let buf = Bytes.create rdvz_header_size in
  Bytes.set_int64_le buf 0 cookie;
  Bytes.set_int64_le buf 8 (Int64.of_int total_len);
  buf

let decode_rdvz_header buf ~off =
  if Bytes.length buf - off < rdvz_header_size then
    Error "rendezvous header: truncated"
  else
    Ok (Bytes.get_int64_le buf off, Int64.to_int (Bytes.get_int64_le buf (off + 8)))

(* --- GM framing -------------------------------------------------------- *)

type gm_message =
  | Gm_eager of { env : t; payload : bytes }
  | Gm_rts of { env : t; cookie : int; total_len : int }
  | Gm_cts of { cookie : int }
  | Gm_data of { cookie : int; payload : bytes }

let gm_header_size = 33

let gm_magic = 0x6D

let encode_env buf off env =
  Bytes.set_uint8 buf off (match env.protocol with Eager -> 0 | Rendezvous -> 1);
  Bytes.set_int32_le buf (off + 1) (Int32.of_int env.context);
  Bytes.set_int32_le buf (off + 5) (Int32.of_int env.src_rank);
  Bytes.set_int32_le buf (off + 9) (Int32.of_int env.tag)

let decode_env buf off =
  {
    protocol = (if Bytes.get_uint8 buf off = 0 then Eager else Rendezvous);
    context = Int32.to_int (Bytes.get_int32_le buf (off + 1));
    src_rank = Int32.to_int (Bytes.get_int32_le buf (off + 5));
    tag = Int32.to_int (Bytes.get_int32_le buf (off + 9));
  }

let encode_gm msg =
  let payload =
    match msg with
    | Gm_eager { payload; _ } | Gm_data { payload; _ } -> payload
    | Gm_rts _ | Gm_cts _ -> Bytes.empty
  in
  let buf = Bytes.make (gm_header_size + Bytes.length payload) '\x00' in
  Bytes.set_uint8 buf 0 gm_magic;
  (match msg with
  | Gm_eager { env; payload } ->
    Bytes.set_uint8 buf 1 0;
    encode_env buf 2 env;
    Bytes.set_int64_le buf 15 (Int64.of_int (Bytes.length payload))
  | Gm_rts { env; cookie; total_len } ->
    Bytes.set_uint8 buf 1 1;
    encode_env buf 2 env;
    Bytes.set_int64_le buf 15 (Int64.of_int total_len);
    Bytes.set_int64_le buf 23 (Int64.of_int cookie)
  | Gm_cts { cookie } ->
    Bytes.set_uint8 buf 1 2;
    Bytes.set_int64_le buf 23 (Int64.of_int cookie)
  | Gm_data { cookie; payload } ->
    Bytes.set_uint8 buf 1 3;
    Bytes.set_int64_le buf 15 (Int64.of_int (Bytes.length payload));
    Bytes.set_int64_le buf 23 (Int64.of_int cookie));
  Bytes.blit payload 0 buf gm_header_size (Bytes.length payload);
  buf

let decode_gm buf =
  if Bytes.length buf < gm_header_size then Error "gm message: truncated"
  else if Bytes.get_uint8 buf 0 <> gm_magic then Error "gm message: bad magic"
  else begin
    let payload () = Bytes.sub buf gm_header_size (Bytes.length buf - gm_header_size) in
    let cookie () = Int64.to_int (Bytes.get_int64_le buf 23) in
    match Bytes.get_uint8 buf 1 with
    | 0 -> Ok (Gm_eager { env = decode_env buf 2; payload = payload () })
    | 1 ->
      Ok
        (Gm_rts
           {
             env = decode_env buf 2;
             total_len = Int64.to_int (Bytes.get_int64_le buf 15);
             cookie = cookie ();
           })
    | 2 -> Ok (Gm_cts { cookie = cookie () })
    | 3 -> Ok (Gm_data { cookie = cookie (); payload = payload () })
    | k -> Error (Printf.sprintf "gm message: unknown kind %d" k)
  end

(* --- ibverbs channel framing ------------------------------------------- *)

type iv_view =
  | Iv_eager of { env : t; pay_off : int; pay_len : int }
  | Iv_rts of { env : t; cookie : int; total_len : int }
  | Iv_cts of { cookie : int; rkey : int; len : int }
  | Iv_fin of { cookie : int; length : int }

let iv_header_size = 39

let iv_magic = 0x76 (* 'v' *)

let encode_iv_eager buf ~off ~env ~payload ~pay_off ~pay_len =
  Bytes.set_uint8 buf off iv_magic;
  Bytes.set_uint8 buf (off + 1) 0;
  encode_env buf (off + 2) env;
  Bytes.set_int64_le buf (off + 15) (Int64.of_int pay_len);
  Bytes.blit payload pay_off buf (off + iv_header_size) pay_len;
  iv_header_size + pay_len

let encode_iv_rts buf ~off ~env ~cookie ~total_len =
  Bytes.set_uint8 buf off iv_magic;
  Bytes.set_uint8 buf (off + 1) 1;
  encode_env buf (off + 2) env;
  Bytes.set_int64_le buf (off + 15) (Int64.of_int total_len);
  Bytes.set_int64_le buf (off + 23) (Int64.of_int cookie);
  iv_header_size

let encode_iv_cts buf ~off ~cookie ~rkey ~len =
  Bytes.set_uint8 buf off iv_magic;
  Bytes.set_uint8 buf (off + 1) 2;
  Bytes.set_int64_le buf (off + 15) (Int64.of_int len);
  Bytes.set_int64_le buf (off + 23) (Int64.of_int cookie);
  Bytes.set_int64_le buf (off + 31) (Int64.of_int rkey);
  iv_header_size

let encode_iv_fin buf ~off ~cookie ~length =
  Bytes.set_uint8 buf off iv_magic;
  Bytes.set_uint8 buf (off + 1) 3;
  Bytes.set_int64_le buf (off + 15) (Int64.of_int length);
  Bytes.set_int64_le buf (off + 23) (Int64.of_int cookie);
  iv_header_size

let decode_iv buf ~off ~len =
  if len < iv_header_size then Error "iv message: truncated"
  else if Bytes.get_uint8 buf off <> iv_magic then Error "iv message: bad magic"
  else begin
    let f15 () = Int64.to_int (Bytes.get_int64_le buf (off + 15)) in
    let cookie () = Int64.to_int (Bytes.get_int64_le buf (off + 23)) in
    let rkey () = Int64.to_int (Bytes.get_int64_le buf (off + 31)) in
    match Bytes.get_uint8 buf (off + 1) with
    | 0 ->
      let pay_len = f15 () in
      if iv_header_size + pay_len > len then Error "iv eager: truncated payload"
      else
        Ok
          (Iv_eager
             { env = decode_env buf (off + 2); pay_off = off + iv_header_size; pay_len })
    | 1 -> Ok (Iv_rts { env = decode_env buf (off + 2); cookie = cookie (); total_len = f15 () })
    | 2 -> Ok (Iv_cts { cookie = cookie (); rkey = rkey (); len = f15 () })
    | 3 -> Ok (Iv_fin { cookie = cookie (); length = f15 () })
    | k -> Error (Printf.sprintf "iv message: unknown kind %d" k)
  end
