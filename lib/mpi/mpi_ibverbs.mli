(** MPI over the ibverbs-style RDMA transport — the two protocols of
    Liu et al. (MVAPICH over InfiniBand), the paper's natural modern
    comparison point.

    Small messages ride the {e RDMA-write fast path}: the sender
    composes the envelope and payload into one RDMA write into a
    per-peer ring at the receiver ({!Ibverbs.Ring}); the receiver's
    library polls the ring and does all matching on the host. Large
    messages use {e RDMA-write rendezvous}: RTS through the ring, CTS
    back carrying an rkey for the posted receive buffer, one RDMA write
    straight into user memory (zero-copy), FIN to finish.

    Both protocols progress {e only} inside library calls — the NIC
    lands bytes, but matching, unexpected-message buffering and the
    rendezvous state machine all run on the host. In the taxonomy of
    §5.2 this stack sits with MPICH/GM on the application-bypass axis
    (none below the library) while beating it on per-message receive
    cost — the benchmark matrix quantifies the trade against Portals'
    full independent progress.

    Crash semantics are connection-oriented, as on GM: a peer's rings
    and rendezvous state die with its node, so traffic toward a failed
    rank raises {!Envelope.Peer_failed} until {!reconnect}, which
    rebuilds the pair's rings from scratch. *)

type config = {
  eager_threshold : int;
      (** Largest payload sent through the ring fast path; larger
          messages go rendezvous. Default 8 KiB. *)
  ring_slots : int;
      (** Slots per (sender, receiver) ring — the credit window.
          Default 64. *)
  call_cost : Sim_engine.Time_ns.t;
      (** Host CPU burned entering any MPI call. Default 300 ns. *)
}

val default_config : config

type status = Transport.status = { source : int; tag : int; length : int }
type t
type request

val create :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:config ->
  unit ->
  t
(** Bring up the endpoint: opens the HCA and registers the all-to-all
    ring and credit buffers under their well-known rkeys. *)

val finalize : t -> unit
val rank : t -> int
val size : t -> int

val hca : t -> Ibverbs.t
(** The underlying HCA (stats, direct verbs access in tests). *)

val isend : t -> ?context:int -> dst:int -> tag:int -> bytes -> request
val irecv : t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> request
val test : t -> request -> status option
val wait : t -> request -> status
val progress : t -> unit
val on_peer_failure : t -> (rank:int -> unit) -> unit
val failed_ranks : t -> int list
val reconnect : t -> rank:int -> unit
val counters : t -> (string * int) list

module Tx : Transport.S with type t = t and type request = request
(** The {!Transport.S} instance ([name = "ibverbs"]). *)
