(** MPI point-to-point over the GM-like layer — the paper's baseline.

    GM deposits arriving messages into receive tokens autonomously
    (OS bypass), but everything MPI-shaped — tag matching, unexpected
    queues, the rendezvous handshake for long messages — runs in the
    library, and the library only runs when the application calls it.
    During a compute loop, an incoming request-to-send just sits in the
    token queue; the clear-to-send goes out at the next MPI call. This is
    the "MPICH/GM makes very little progress" behaviour of Figure 6, and
    the reason §5.2 argues such implementations break the MPI progress
    rule.

    All calls must run inside a simulation fiber. *)

type config = {
  eager_threshold : int;  (** Bytes; default 16384 (GM-era MPICH). *)
  recv_tokens : int;  (** Pre-provisioned small tokens; default 64. *)
  call_cost : Sim_engine.Time_ns.t;  (** Per-call host overhead; default 300 ns. *)
}

val default_config : config

type status = { source : int; tag : int; length : int }

type request

type t

val create :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:config ->
  unit ->
  t

val finalize : t -> unit
val rank : t -> int
val size : t -> int
val port : t -> Gm.t
(** The underlying GM port (for introspection in tests). *)

val isend : t -> ?context:int -> dst:int -> tag:int -> bytes -> request
(** [context] (default 0) isolates communication spaces, matching the
    Portals backend's communicator contexts. Raises
    [Envelope.Peer_failed] if [dst]'s node has crashed and has not been
    {!reconnect}ed — GM's per-peer connection state makes failure
    sticky. *)

val irecv : t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> request
val test : t -> request -> status option
val wait : t -> request -> status
(** Both raise [Envelope.Peer_failed] when the request can no longer
    complete because the peer's node crashed (the blocked fiber is woken
    rather than left to deadlock). *)

val progress : t -> unit
(** One library entry: drain the port and run the protocol. This is what
    the "+3 MPI_Test calls in the work loop" variant of the paper's
    experiment adds. *)

(** {1 Peer liveness} *)

val on_peer_failure : t -> (rank:int -> unit) -> unit
(** Register a callback fired when a peer rank's node crashes. *)

val failed_ranks : t -> int list
(** Ranks currently marked failed, ascending. *)

val reconnect : t -> rank:int -> unit
(** Clear the failed mark for [rank] — the explicit reconnection GM
    demands before traffic with a restarted peer can resume (its token
    and handshake state did not survive the crash). *)

val counters : t -> (string * int) list
(** Monotone backend counters: eager/rendezvous sends, completions and
    the underlying port's send/receive totals. *)

module Tx : Transport.S with type t = t and type request = request
(** The {!Transport.S} instance of this backend (config defaults). *)
