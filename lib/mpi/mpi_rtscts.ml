(* The production Cplant kernel stack: MPI over Portals over the RTS/CTS
   packetization modules. The MPI <-> Portals glue is identical to the
   NIC-offload stack (that is the paper's point: the API is placement
   agnostic), so this adapter is the Portals glue under its kernel-stack
   name; Runtime.Stack pairs it with the [Rtscts] wire. *)

type config = Mpi_portals.config

let default_config = Mpi_portals.default_config

type status = Transport.status = { source : int; tag : int; length : int }
type t = Mpi_portals.t
type request = Mpi_portals.request

let create = Mpi_portals.create

module Tx = struct
  include Mpi_portals.Tx

  let name = "rtscts"
end
