open Sim_engine

(* MPI over the ibverbs-style RDMA transport — the two protocols of Liu
   et al. (MVAPICH): small messages go through sender-written per-peer
   rings the receiver polls (one RDMA write per message, no matching on
   the NIC and none below the MPI library on the host); large messages
   negotiate a rendezvous (RTS -> CTS carrying an rkey -> one RDMA
   write straight into the user buffer -> FIN). Everything above the
   verbs surface — matching, unexpected messages, rendezvous state — is
   the library's problem, which is exactly where the paper's §5.2
   progress argument bites: nothing here advances unless the
   application is inside an MPI call. *)

type config = {
  eager_threshold : int;
      (* largest payload through the ring fast path; bigger goes
         rendezvous *)
  ring_slots : int; (* slots per (sender, receiver) ring *)
  call_cost : Time_ns.t; (* host CPU burned entering any MPI call *)
}

let default_config =
  { eager_threshold = 8192; ring_slots = 64; call_cost = Time_ns.ns 300 }

type status = Transport.status = { source : int; tag : int; length : int }

type req_kind = Send | Recv

type request = {
  id : int;
  kind : req_kind;
  buffer : bytes;
  want_context : int;
  want_source : int;
  want_tag : int;
  mutable state : [ `Pending | `Complete of status | `Failed of int ];
}

type unexpected =
  | Ux_eager of { ux_env : Envelope.t; ux_payload : bytes }
  | Ux_rts of { ux_env : Envelope.t; ux_cookie : int; ux_total : int }

(* A ring message that could not be written for lack of credit: the
   composed wire image waits here, in per-peer FIFO order, until the
   receiver's tail update restores credit. *)
type backlogged = { bk_img : bytes; bk_len : int; bk_action : (unit -> unit) option }

type t = {
  hca : Ibverbs.t;
  cfg : config;
  ranks : Simnet.Proc_id.t array;
  my_rank : int;
  sched : Scheduler.t;
  tp : Simnet.Transport.t;
  mutable next_id : int;
  mutable next_cookie : int;
  mutable next_wr : int;
  posted : request Queue.t; (* receive posting order *)
  unexpected : unexpected Queue.t;
  send_rings : Ibverbs.Ring.send option array; (* None at my_rank *)
  recv_rings : Ibverbs.Ring.recv option array;
  backlog : backlogged Queue.t array; (* per destination rank *)
  wr_actions : (int, unit -> unit) Hashtbl.t; (* wr_id -> on local completion *)
  awaiting_cts : (int, request * bytes) Hashtbl.t; (* cookie -> send *)
  awaiting_fin : (int, request * int * Envelope.t) Hashtbl.t;
      (* cookie -> recv, its landing rkey, the RTS envelope *)
  failed : (int, unit) Hashtbl.t;
  mutable peer_cbs : (rank:int -> unit) list;
  mutable eager_sends : int;
  mutable rdvz_sends : int;
  mutable completions : int;
}

let rank t = t.my_rank
let size t = Array.length t.ranks
let hca t = t.hca

let fail_req req rank =
  match req.state with
  | `Pending -> req.state <- `Failed rank
  | `Complete _ | `Failed _ -> ()

let complete t req status =
  match req.state with
  | `Pending ->
    req.state <- `Complete status;
    t.completions <- t.completions + 1
  | `Complete _ | `Failed _ -> ()

(* A peer's node crashed: its rings, credits and rendezvous state died
   with it. Connection-oriented semantics, as on GM: everything that
   needs the peer's cooperation fails, and new traffic toward it raises
   [Envelope.Peer_failed] until [reconnect]. *)
let on_peer_crash t nid =
  let hit = ref false in
  Array.iteri
    (fun r pid ->
      if r <> t.my_rank && pid.Simnet.Proc_id.nid = nid then begin
        hit := true;
        Hashtbl.replace t.failed r ();
        let n = Queue.length t.posted in
        for _ = 1 to n do
          let req = Queue.pop t.posted in
          if req.want_source = r then fail_req req r else Queue.add req t.posted
        done;
        (* Ring messages still waiting for the dead peer's credit. *)
        Queue.iter
          (fun bk -> match bk.bk_action with None -> () | Some f -> f ())
          t.backlog.(r);
        Queue.clear t.backlog.(r);
        let dead_cts =
          Hashtbl.fold
            (fun cookie (req, _) acc ->
              if req.want_source = r then (cookie, req) :: acc else acc)
            t.awaiting_cts []
        in
        List.iter
          (fun (cookie, req) ->
            Hashtbl.remove t.awaiting_cts cookie;
            fail_req req r)
          dead_cts;
        let dead_fin =
          Hashtbl.fold
            (fun cookie (req, rkey, env) acc ->
              if env.Envelope.src_rank = r then (cookie, req, rkey) :: acc
              else acc)
            t.awaiting_fin []
        in
        List.iter
          (fun (cookie, req, rkey) ->
            Hashtbl.remove t.awaiting_fin cookie;
            Ibverbs.dereg_mr t.hca rkey;
            fail_req req r)
          dead_fin;
        List.iter (fun cb -> cb ~rank:r) t.peer_cbs
      end)
    t.ranks;
  if !hit then Ibverbs.wake t.hca

let create tp ~ranks ~rank:my_rank ?(config = default_config) () =
  if my_rank < 0 || my_rank >= Array.length ranks then
    invalid_arg "Mpi_ibverbs.create: rank out of range";
  let hca = Ibverbs.create tp ~id:ranks.(my_rank) in
  let n = Array.length ranks in
  let spay = Envelope.iv_header_size + config.eager_threshold in
  let t =
    {
      hca;
      cfg = config;
      ranks;
      my_rank;
      sched = tp.Simnet.Transport.sched;
      tp;
      next_id = 1;
      next_cookie = 0;
      next_wr = 1;
      posted = Queue.create ();
      unexpected = Queue.create ();
      send_rings =
        Array.init n (fun r ->
            if r = my_rank then None
            else
              Some
                (Ibverbs.Ring.create_send hca ~dst:ranks.(r) ~dst_rank:r
                   ~my_rank ~slots:config.ring_slots ~slot_payload:spay));
      recv_rings =
        Array.init n (fun r ->
            if r = my_rank then None
            else
              Some
                (Ibverbs.Ring.create_recv hca ~peer:ranks.(r) ~peer_rank:r
                   ~my_rank ~slots:config.ring_slots ~slot_payload:spay));
      backlog = Array.init n (fun _ -> Queue.create ());
      wr_actions = Hashtbl.create 32;
      awaiting_cts = Hashtbl.create 16;
      awaiting_fin = Hashtbl.create 16;
      failed = Hashtbl.create 4;
      peer_cbs = [];
      eager_sends = 0;
      rdvz_sends = 0;
      completions = 0;
    }
  in
  tp.Simnet.Transport.on_crash (fun nid -> on_peer_crash t nid);
  t

let finalize t = Ibverbs.close t.hca

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let fresh_cookie t =
  let c = t.next_cookie in
  t.next_cookie <- c + 1;
  (t.my_rank * 1_000_003) + c

let fresh_wr t =
  let w = t.next_wr in
  t.next_wr <- w + 1;
  w

let on_peer_failure t cb = t.peer_cbs <- t.peer_cbs @ [ cb ]

let failed_ranks t =
  List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) t.failed [])

(* Re-admit a restarted peer: beyond the bookkeeping, the pair's rings
   are re-established from scratch — head, tail and credits to zero on
   both buffers we own (the peer's own reconnect resets its side). *)
let reconnect t ~rank:r =
  if r < 0 || r >= Array.length t.ranks then
    invalid_arg "Mpi_ibverbs.reconnect: rank out of range";
  if Hashtbl.mem t.failed r then begin
    Hashtbl.remove t.failed r;
    Option.iter Ibverbs.Ring.reset_send t.send_rings.(r);
    Option.iter Ibverbs.Ring.reset_recv t.recv_rings.(r)
  end

let check_alive t peer =
  if Hashtbl.mem t.failed peer then raise (Envelope.Peer_failed peer)

let send_ring t dst =
  match t.send_rings.(dst) with
  | Some sv -> sv
  | None -> invalid_arg "Mpi_ibverbs: send to self rank"

let issue_write t sv img len action =
  let wr_id = fresh_wr t in
  (match action with
  | None -> ()
  | Some f -> Hashtbl.replace t.wr_actions wr_id f);
  Ibverbs.Ring.try_write sv ~wr_id
    ~fill:(fun buf off -> Bytes.blit img 0 buf off len)
    ~len

(* Send one composed channel message to [dst], in order: if earlier
   messages are still waiting for credit, or the write itself finds the
   ring full, the image joins the per-peer backlog. [action] runs when
   the write completes locally. *)
let ring_send t ~dst img len action =
  let sv = send_ring t dst in
  if not (Queue.is_empty t.backlog.(dst)) then
    Queue.add { bk_img = img; bk_len = len; bk_action = action } t.backlog.(dst)
  else if not (issue_write t sv img len action) then
    Queue.add { bk_img = img; bk_len = len; bk_action = action } t.backlog.(dst)

let drain_backlog t dst =
  match t.send_rings.(dst) with
  | None -> ()
  | Some sv ->
    let rec go () =
      match Queue.peek_opt t.backlog.(dst) with
      | Some bk when issue_write t sv bk.bk_img bk.bk_len bk.bk_action ->
        ignore (Queue.pop t.backlog.(dst));
        go ()
      | Some _ | None -> ()
    in
    go ()

(* Find and remove the first posted receive matching the envelope. *)
let match_posted t (env : Envelope.t) =
  let n = Queue.length t.posted in
  let found = ref None in
  for _ = 1 to n do
    let req = Queue.pop t.posted in
    if
      !found = None
      && req.state = `Pending
      && Envelope.matches ~context:req.want_context env ~source:req.want_source
           ~tag:req.want_tag
    then found := Some req
    else Queue.add req t.posted
  done;
  !found

let copy_in t req payload off length =
  let n = min length (Bytes.length req.buffer) in
  Scheduler.delay t.sched (t.tp.Simnet.Transport.host_copy_time n);
  Bytes.blit payload off req.buffer 0 n;
  n

(* Grant a matched rendezvous: register the receive buffer itself as
   the landing region and tell the sender where to write — the data
   will arrive without another copy (and without the host). *)
let grant_rts t ~env ~cookie ~total req =
  let rkey = Ibverbs.alloc_rkey t.hca in
  Ibverbs.reg_mr t.hca ~rkey req.buffer;
  Hashtbl.replace t.awaiting_fin cookie (req, rkey, env);
  let len = min total (Bytes.length req.buffer) in
  let img = Bytes.create Envelope.iv_header_size in
  let n = Envelope.encode_iv_cts img ~off:0 ~cookie ~rkey ~len in
  ring_send t ~dst:env.Envelope.src_rank img n None

let take_unexpected t ~context ~source ~tag =
  let n = Queue.length t.unexpected in
  let found = ref None in
  for _ = 1 to n do
    let u = Queue.pop t.unexpected in
    let env = match u with Ux_eager { ux_env; _ } | Ux_rts { ux_env; _ } -> ux_env in
    if !found = None && Envelope.matches ~context env ~source ~tag then
      found := Some u
    else Queue.add u t.unexpected
  done;
  !found

let handle_iv t buf view =
  match view with
  | Envelope.Iv_eager { env; pay_off; pay_len } -> (
    match match_posted t env with
    | Some req ->
      let n = copy_in t req buf pay_off pay_len in
      complete t req
        { source = env.Envelope.src_rank; tag = env.Envelope.tag; length = n }
    | None ->
      Queue.add
        (Ux_eager { ux_env = env; ux_payload = Bytes.sub buf pay_off pay_len })
        t.unexpected)
  | Envelope.Iv_rts { env; cookie; total_len } -> (
    match match_posted t env with
    | Some req -> grant_rts t ~env ~cookie ~total:total_len req
    | None ->
      Queue.add
        (Ux_rts { ux_env = env; ux_cookie = cookie; ux_total = total_len })
        t.unexpected)
  | Envelope.Iv_cts { cookie; rkey; len } -> (
    match Hashtbl.find_opt t.awaiting_cts cookie with
    | None -> ()
    | Some (req, data) ->
      Hashtbl.remove t.awaiting_cts cookie;
      let dst = req.want_source in
      let n = min len (Bytes.length data) in
      (* The payload write goes straight from the user buffer; the FIN
         chases it down the same FIFO pair, so it lands after the
         data. The send completes on the write's local completion. *)
      let wr_id = fresh_wr t in
      Hashtbl.replace t.wr_actions wr_id (fun () ->
          complete t req
            { source = t.my_rank; tag = req.want_tag; length = Bytes.length data });
      Ibverbs.rdma_write t.hca ~dst:t.ranks.(dst) ~rkey ~offset:0 ~src:data
        ~src_off:0 ~len:n ~wr_id;
      let img = Bytes.create Envelope.iv_header_size in
      let m = Envelope.encode_iv_fin img ~off:0 ~cookie ~length:n in
      ring_send t ~dst img m None)
  | Envelope.Iv_fin { cookie; length } -> (
    match Hashtbl.find_opt t.awaiting_fin cookie with
    | None -> ()
    | Some (req, rkey, env) ->
      Hashtbl.remove t.awaiting_fin cookie;
      Ibverbs.dereg_mr t.hca rkey;
      complete t req
        {
          source = env.Envelope.src_rank;
          tag = env.Envelope.tag;
          length = min length (Bytes.length req.buffer);
        })

(* The library progress engine — the only place anything advances:
   retire local write completions, poll every peer ring for landed
   messages, and retry credit-starved sends. *)
let progress_raw t =
  let rec drain_cq () =
    match Ibverbs.poll_cq t.hca with
    | None -> ()
    | Some (Ibverbs.Write_complete { wr_id }) ->
      (if wr_id <> Ibverbs.Ring.credit_wr_id then
         match Hashtbl.find_opt t.wr_actions wr_id with
         | None -> ()
         | Some f ->
           Hashtbl.remove t.wr_actions wr_id;
           f ());
      drain_cq ()
  in
  drain_cq ();
  Array.iter
    (function
      | None -> ()
      | Some rv ->
        let rec drain_ring () =
          match Ibverbs.Ring.poll rv with
          | None -> ()
          | Some (buf, off, len) ->
            (match Envelope.decode_iv buf ~off ~len with
            | Error _ -> () (* stale or torn slot; drop *)
            | Ok view -> handle_iv t buf view);
            Ibverbs.Ring.consume rv;
            drain_ring ()
        in
        drain_ring ())
    t.recv_rings;
  for r = 0 to Array.length t.ranks - 1 do
    if not (Queue.is_empty t.backlog.(r)) then drain_backlog t r
  done

let lib_entry t =
  Scheduler.delay t.sched t.cfg.call_cost;
  progress_raw t

let progress t = lib_entry t

let check_peer t peer name =
  if peer < 0 || peer >= Array.length t.ranks then
    invalid_arg (Printf.sprintf "Mpi_ibverbs.%s: rank %d out of range" name peer)

let isend t ?(context = 0) ~dst ~tag data =
  check_peer t dst "isend";
  check_alive t dst;
  if dst = t.my_rank then invalid_arg "Mpi_ibverbs.isend: self sends unsupported";
  lib_entry t;
  let req =
    {
      id = fresh_id t;
      kind = Send;
      buffer = data;
      want_context = context;
      want_source = dst;
      want_tag = tag;
      state = `Pending;
    }
  in
  let env =
    {
      Envelope.protocol =
        (if Bytes.length data <= t.cfg.eager_threshold then Envelope.Eager
         else Envelope.Rendezvous);
      context;
      src_rank = t.my_rank;
      tag;
    }
  in
  (match env.Envelope.protocol with
  | Envelope.Eager ->
    t.eager_sends <- t.eager_sends + 1;
    let len = Bytes.length data in
    let img = Bytes.create (Envelope.iv_header_size + len) in
    let n =
      Envelope.encode_iv_eager img ~off:0 ~env ~payload:data ~pay_off:0
        ~pay_len:len
    in
    ring_send t ~dst img n
      (Some
         (fun () ->
           complete t req { source = t.my_rank; tag; length = len }))
  | Envelope.Rendezvous ->
    t.rdvz_sends <- t.rdvz_sends + 1;
    let cookie = fresh_cookie t in
    Hashtbl.replace t.awaiting_cts cookie (req, data);
    let img = Bytes.create Envelope.iv_header_size in
    let n =
      Envelope.encode_iv_rts img ~off:0 ~env ~cookie
        ~total_len:(Bytes.length data)
    in
    ring_send t ~dst img n None);
  req

let irecv t ?(context = 0) ?(source = Envelope.any_source)
    ?(tag = Envelope.any_tag) buffer =
  if source <> Envelope.any_source then begin
    check_peer t source "irecv";
    check_alive t source
  end;
  lib_entry t;
  let req =
    {
      id = fresh_id t;
      kind = Recv;
      buffer;
      want_context = context;
      want_source = source;
      want_tag = tag;
      state = `Pending;
    }
  in
  (match take_unexpected t ~context ~source ~tag with
  | Some (Ux_eager { ux_env; ux_payload }) ->
    let n = copy_in t req ux_payload 0 (Bytes.length ux_payload) in
    complete t req
      { source = ux_env.Envelope.src_rank; tag = ux_env.Envelope.tag; length = n }
  | Some (Ux_rts { ux_env; ux_cookie; ux_total }) ->
    grant_rts t ~env:ux_env ~cookie:ux_cookie ~total:ux_total req
  | None -> Queue.add req t.posted);
  req

let test t req =
  lib_entry t;
  match req.state with
  | `Complete st -> Some st
  | `Pending -> None
  | `Failed r -> raise (Envelope.Peer_failed r)

let wait t req =
  lib_entry t;
  let rec loop () =
    match req.state with
    | `Complete st -> st
    | `Failed r -> raise (Envelope.Peer_failed r)
    | `Pending ->
      (* Poll-block: sleep until a write lands somewhere, a completion
         surfaces or a failure wake fires, then run the protocol. *)
      Ibverbs.wait_activity t.hca;
      progress_raw t;
      loop ()
  in
  loop ()

let counters t =
  let s = Ibverbs.stats t.hca in
  [
    ("eager_sends", t.eager_sends);
    ("rdvz_sends", t.rdvz_sends);
    ("completions", t.completions);
    ("hca_writes", s.Ibverbs.writes);
    ("hca_remote_writes", s.Ibverbs.remote_writes);
  ]

(* The Transport.S instance: what Mpi.Make and the conformance suite
   consume. *)
module Tx = struct
  let name = "ibverbs"

  type nonrec t = t
  type nonrec request = request

  let create tp ~ranks ~rank = create tp ~ranks ~rank ()
  let finalize = finalize
  let rank = rank
  let size = size
  let isend = isend
  let irecv = irecv
  let test = test
  let wait = wait
  let progress = progress
  let on_peer_failure = on_peer_failure
  let failed_ranks = failed_ranks
  let reconnect = reconnect
  let counters = counters
end
