(** MPI point-to-point over Portals 3.0 — the implementation whose
    progress behaviour Figure 6 demonstrates.

    Design (the classic Cplant MPICH device):
    {ul
    {- Tag matching is delegated to Portals match lists: posted receives
       are match entries on the MPI portal, inserted after earlier posted
       receives and {e before} the unexpected-message slabs, so the
       translation of Figure 4 performs MPI matching — on the NIC or in
       the kernel, never in the application ({e application bypass}).}
    {- Messages at or below the eager threshold carry their data in the
       put. A pre-posted receive therefore completes entirely without the
       application: the experiment of Table 5 overlaps fully.}
    {- Unexpected eager messages land in slab MDs with locally managed
       offsets; the library copies them out when the receive is posted.
       Slab memory scales with application behaviour, not job size
       (§4.1).}
    {- Messages above the threshold send a 16-byte rendezvous header; the
       {e receiver} pulls the payload with a Portals get from a
       per-message match entry the sender exposed. The pull is issued from
       the library, so oversized transfers need a library call at the
       receiver — an inherent protocol trade-off the benches ablate.}}

    All calls must run inside a simulation fiber (they charge call
    overhead as simulated time and may block). *)

type config = {
  eager_threshold : int;  (** Bytes; default 65536 (50 KB messages are eager). *)
  slab_size : int;  (** Bytes per unexpected slab; default 262144. *)
  slab_count : int;  (** Number of slabs; default 8. *)
  eq_capacity : int;  (** Event queue depth; default 8192. *)
  call_cost : Sim_engine.Time_ns.t;
      (** Host overhead charged per MPI library call; default 300 ns. *)
}

val default_config : config

type status = { source : int; tag : int; length : int }

type request

type t

val create :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:config ->
  unit ->
  t
(** Bring up the endpoint for [rank]: creates the Portals NI, allocates
    the event queue and attaches the unexpected-message slabs. *)

val finalize : t -> unit
val rank : t -> int
val size : t -> int
val ni : t -> Portals.Ni.t
(** The underlying Portals interface (for introspection in tests). *)

val isend : t -> ?context:int -> dst:int -> tag:int -> bytes -> request
(** [context] (default 0, the world) isolates communication spaces —
    the communicator-context field packed into the match bits. *)

val irecv : t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> request

val test : t -> request -> status option
(** Non-blocking: drives the library progress engine, then reports. *)

val wait : t -> request -> status
(** Blocks the calling fiber until the request completes. Both [test]
    and [wait] raise [Envelope.Peer_failed] when the request can no
    longer complete because the peer's node crashed: receives pinned to
    the dead rank and rendezvous sends awaiting its pull fail rather
    than deadlock. Eager sends still complete locally (fire-and-forget —
    Portals keeps no per-peer connection state, §3). *)

val progress : t -> unit
(** One library entry with no request: drain completions (what a bare
    [MPI_Iprobe]-ish call would do). Exposed for the Figure 6 variant
    that sprinkles test calls into the work loop. *)

val unexpected_bytes_highwater : t -> int
(** Peak bytes of slab memory holding not-yet-claimed unexpected
    messages — the §4.1 memory-scaling measurement. *)

(** {1 Peer liveness} *)

val on_peer_failure : t -> (rank:int -> unit) -> unit
(** Register a callback fired when a peer rank's node crashes. *)

val failed_ranks : t -> int list
(** Ranks currently marked down, ascending. The mark clears
    automatically when the node restarts: Portals needs no reconnection
    handshake. *)

val reconnect : t -> rank:int -> unit
(** Provided for API parity with the GM backend; Portals has no per-peer
    connection state, so this merely clears a still-down peer's mark. *)

val counters : t -> (string * int) list
(** Monotone backend counters: eager/rendezvous sends, completions and
    the unexpected-buffer highwater. *)

module Tx : Transport.S with type t = t and type request = request
(** The {!Transport.S} instance of this backend (config defaults). *)
