(** A small MPI: nonblocking two-sided point-to-point with tag matching,
    wildcards and a barrier, derived {e once} from the transport
    signature and instantiated for every stack the paper compares:

    {ul
    {- {!create_portals} — MPICH-over-Portals-style: matching and delivery
       progress without the application (§5.2, the declining curve of
       Figure 6);}
    {- {!create_gm} — MPICH/GM-style: progress only inside library calls
       (the flat curve of Figure 6);}
    {- {!create_rtscts} — the same Portals glue named for the kernel
       RTS/CTS wire it runs over (the production Cplant stack);}
    {- {!create_ibverbs} — an ibverbs-style RDMA stack (Liu et al.):
       sender-written per-peer rings plus RDMA-write rendezvous.}}

    {!Make} is the only MPI {^ } transport binding: give it a
    {!Transport.S} and it returns the full endpoint surface. The
    dynamic [t] below packs any such instantiation so experiments swap
    backends without touching application code. All calls must run
    inside a simulation fiber. *)

module Envelope = Envelope
module Mpi_portals = Mpi_portals
module Mpi_gm = Mpi_gm
module Mpi_rtscts = Mpi_rtscts
module Mpi_ibverbs = Mpi_ibverbs

module Nx = Nx
(** The Intel NX interface of §2, over the same Portals matching
    engine. *)

module type TRANSPORT = Transport.S
(** What a backend implements (re-exported from {!Transport.S}). *)

(** The full per-backend MPI surface {!Make} derives: the transport
    contract plus blocking calls, [waitall] and the dissemination
    barrier. *)
module type ENDPOINT = sig
  include Transport.S

  val waitall : t -> request list -> Transport.status list
  val send : t -> ?context:int -> dst:int -> tag:int -> bytes -> unit

  val recv :
    t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> Transport.status

  val barrier : ?tolerant:bool -> t -> unit
  (** Dissemination barrier over point-to-point messages on a reserved
      tag. With [tolerant] (default false), exchanges with failed ranks
      are skipped instead of raising [Peer_failed]. *)
end

module Make (T : Transport.S) :
  ENDPOINT with type t = T.t and type request = T.request
(** Derive the MPI device layer for one transport. *)

type t
type request

type status = Transport.status = { source : int; tag : int; length : int }

exception Peer_failed of int
(** Raised (with the peer's rank) when an operation cannot complete
    because the peer's node crashed: {!wait}/{!test} on a receive from
    the failed rank or a rendezvous send it never pulled, and —
    connection-oriented backends (GM, ibverbs) — new traffic toward a
    peer not yet {!reconnect}ed. Blocked fibers are woken to raise this
    instead of deadlocking. *)

val any_source : int
val any_tag : int

val create_portals :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:Mpi_portals.config ->
  unit ->
  t

val create_gm :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:Mpi_gm.config ->
  unit ->
  t

val create_rtscts :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:Mpi_rtscts.config ->
  unit ->
  t
(** The given wire should be an RTS/CTS kernel transport (see
    {!Mpi_rtscts}). *)

val create_ibverbs :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:Mpi_ibverbs.config ->
  unit ->
  t
(** The ibverbs-style RDMA stack: ring fast path + RDMA-write
    rendezvous (see {!Mpi_ibverbs}). *)

val of_endpoint :
  (module ENDPOINT with type t = 'e and type request = 'r) -> 'e -> t
(** Pack any {!Make} instantiation (e.g. one over a custom-config
    backend) into the dynamic endpoint. *)

val finalize : t -> unit
val rank : t -> int
val size : t -> int

val backend_name : t -> string
(** ["portals"], ["gm"], ["rtscts"] or ["ibverbs"]. *)

val counters : t -> (string * int) list
(** The backend's monotone counters (see {!Transport.S.counters}). *)

val isend : t -> ?context:int -> dst:int -> tag:int -> bytes -> request
(** Nonblocking send ([MPI_Isend]). The data is captured at call time.
    [context] (default 0, the world) selects the communicator context:
    messages only match receives posted with the same context — the
    communicator-isolation mechanism MPI builds on the match bits
    (§4.4's flexibility argument). *)

val irecv : t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> request
(** Nonblocking receive ([MPI_Irecv]); [source]/[tag] default to the
    wildcards, [context] to the world. *)

val test : t -> request -> status option
(** [MPI_Test]: nonblocking; drives the library's progress engine. *)

val wait : t -> request -> status
(** [MPI_Wait]: blocks the calling fiber. *)

val waitall : t -> request list -> status list
(** [MPI_Waitall], statuses in request order. *)

val progress : t -> unit
(** A bare library call with no request ("sprinkled MPI calls", §5.3). *)

val send : t -> ?context:int -> dst:int -> tag:int -> bytes -> unit
(** Blocking send: [isend] then [wait]. *)

val recv : t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> status
(** Blocking receive: [irecv] then [wait]. *)

val on_peer_failure : t -> (rank:int -> unit) -> unit
(** Register a callback fired from the endpoint when a peer rank's node
    crashes — the graceful-degradation hook: applications learn about
    dead peers instead of discovering them as simulation deadlocks. *)

val failed_ranks : t -> int list
(** Ranks currently considered failed, ascending. Portals clears a
    rank's mark automatically when its node restarts (connectionless,
    §3); connection-oriented backends keep it until {!reconnect}. *)

val reconnect : t -> rank:int -> unit
(** Re-admit a restarted peer. A no-op beyond bookkeeping on Portals;
    required on GM and ibverbs, whose per-peer connection state died
    with the peer. *)

val barrier : ?tolerant:bool -> t -> unit
(** Dissemination barrier over point-to-point messages on a reserved tag
    ([MPI_Barrier] on the world communicator). With [tolerant] (default
    false), exchanges with failed ranks are skipped instead of raising
    {!Peer_failed}, so surviving ranks still synchronise — what a
    shutdown barrier needs after a crash. *)

val barrier_tag_base : int
(** Reserved tag space used by {!barrier}; user tags must stay below. *)
