(** MPI message envelopes for both backends.

    {b Portals backend} — the envelope is packed into the 64 match bits
    (§4.4's flexibility argument: "the Portals API provides the
    flexibility needed for an efficient implementation of the send/receive
    operations in MPI"):

    {v
    bits 63..62  protocol (0 = eager, 1 = rendezvous header)
    bits 61..48  context id (communicator)
    bits 47..32  source rank
    bits 31..0   tag
    v}

    Wildcard receives ([MPI_ANY_SOURCE]/[MPI_ANY_TAG]) become ignore-bit
    masks over the corresponding fields. The match-bits codec itself
    lives in [Mpi_portals] — it is that adapter's private contract with
    the Portals NI; this module only defines the envelope and the
    stack-neutral framings.

    {b GM backend} — GM has no matching, so the same envelope travels as
    an explicit header in front of the payload, and matching happens in
    the MPI library (the very fact Figure 6 measures). *)

exception Peer_failed of int
(** Raised (with the peer's rank) by any backend when an operation
    cannot complete because the peer's node crashed: a blocked wait on a
    receive from the failed rank, a rendezvous send whose partner died
    mid-handshake, or (connection-oriented backends only) new traffic
    toward a peer that has not been {!Mpi.reconnect}ed. An alias of
    {!Transport.Peer_failed} — the exception is defined once in the
    transport signature so every stack and the dispatching {!Mpi} layer
    raise the same one. *)

val any_source : int
(** -1: matches any sender. *)

val any_tag : int
(** -1: matches any tag. *)

val max_tag : int
val max_rank : int
val max_context : int

type protocol = Eager | Rendezvous

type t = { protocol : protocol; context : int; src_rank : int; tag : int }

val pp : Format.formatter -> t -> unit

val matches : ?context:int -> t -> source:int -> tag:int -> bool
(** Library-side matching (GM backend, unexpected lists): [source]/[tag]
    may be wildcards, the context (default 0, the world) must agree; the
    protocol field is not part of MPI matching. *)

(** {1 Rendezvous header payload (Portals backend)} *)

val rdvz_header_size : int
(** 16: cookie and total length. *)

val encode_rdvz_header : cookie:int64 -> total_len:int -> bytes
val decode_rdvz_header : bytes -> off:int -> (int64 * int, string) result

(** {1 GM framing} *)

type gm_message =
  | Gm_eager of { env : t; payload : bytes }
  | Gm_rts of { env : t; cookie : int; total_len : int }
      (** "I have [total_len] bytes for this envelope; pull when matched." *)
  | Gm_cts of { cookie : int }
      (** "Matched; send the data for [cookie]." *)
  | Gm_data of { cookie : int; payload : bytes }

val gm_header_size : int
val encode_gm : gm_message -> bytes
val decode_gm : bytes -> (gm_message, string) result

(** {1 ibverbs channel framing}

    Control and eager messages travelling inside ring-buffer slots of
    the ibverbs-style backend (Liu et al.'s channel design): eager data,
    the RTS/CTS-with-buffer-address rendezvous handshake and the FIN
    that completes an RDMA-write rendezvous. Encoders write in place
    into the sender's staging buffer (which is then RDMA-written as one
    unit); the decoder returns a {e view} into the ring slot so eager
    payloads are blitted at most once. *)

type iv_view =
  | Iv_eager of { env : t; pay_off : int; pay_len : int }
      (** Payload bytes live at [pay_off..pay_off+pay_len-1] of the
          decoded buffer. *)
  | Iv_rts of { env : t; cookie : int; total_len : int }
      (** "I have [total_len] bytes; reply with a landing address." *)
  | Iv_cts of { cookie : int; rkey : int; len : int }
      (** "RDMA-write up to [len] bytes into my region [rkey]." *)
  | Iv_fin of { cookie : int; length : int }
      (** "The write for [cookie] is on the wire; [length] bytes." *)

val iv_header_size : int

val encode_iv_eager :
  bytes -> off:int -> env:t -> payload:bytes -> pay_off:int -> pay_len:int -> int
(** Writes header and payload at [off]; returns bytes written. *)

val encode_iv_rts : bytes -> off:int -> env:t -> cookie:int -> total_len:int -> int
val encode_iv_cts : bytes -> off:int -> cookie:int -> rkey:int -> len:int -> int
val encode_iv_fin : bytes -> off:int -> cookie:int -> length:int -> int

val decode_iv : bytes -> off:int -> len:int -> (iv_view, string) result
(** Decode the message occupying [len] bytes at [off]. *)
