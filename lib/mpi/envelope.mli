(** MPI message envelopes for both backends.

    {b Portals backend} — the envelope is packed into the 64 match bits
    (§4.4's flexibility argument: "the Portals API provides the
    flexibility needed for an efficient implementation of the send/receive
    operations in MPI"):

    {v
    bits 63..62  protocol (0 = eager, 1 = rendezvous header)
    bits 61..48  context id (communicator)
    bits 47..32  source rank
    bits 31..0   tag
    v}

    Wildcard receives ([MPI_ANY_SOURCE]/[MPI_ANY_TAG]) become ignore-bit
    masks over the corresponding fields.

    {b GM backend} — GM has no matching, so the same envelope travels as
    an explicit header in front of the payload, and matching happens in
    the MPI library (the very fact Figure 6 measures). *)

exception Peer_failed of int
(** Raised (with the peer's rank) by either backend when an operation
    cannot complete because the peer's node crashed: a blocked wait on a
    receive from the failed rank, a rendezvous send whose partner died
    mid-handshake, or (GM only) new traffic toward a peer that has not
    been {!Mpi.reconnect}ed. Lives here so both backends and the
    dispatching {!Mpi} layer share one exception. *)

val any_source : int
(** -1: matches any sender. *)

val any_tag : int
(** -1: matches any tag. *)

val max_tag : int
val max_rank : int
val max_context : int

type protocol = Eager | Rendezvous

type t = { protocol : protocol; context : int; src_rank : int; tag : int }

val pp : Format.formatter -> t -> unit

val matches : ?context:int -> t -> source:int -> tag:int -> bool
(** Library-side matching (GM backend, unexpected lists): [source]/[tag]
    may be wildcards, the context (default 0, the world) must agree; the
    protocol field is not part of MPI matching. *)

(** {1 Portals encoding} *)

val to_match_bits : t -> Portals.Match_bits.t

val of_match_bits : Portals.Match_bits.t -> t

val recv_match_bits :
  context:int -> source:int -> tag:int -> Portals.Match_bits.t * Portals.Match_bits.t
(** [(match_bits, ignore_bits)] for posting a receive: protocol bits are
    always ignored (a posted receive matches both eager data and
    rendezvous headers); wildcard source/tag widen the mask. *)

(** {1 Rendezvous header payload (Portals backend)} *)

val rdvz_header_size : int
(** 16: cookie and total length. *)

val encode_rdvz_header : cookie:int64 -> total_len:int -> bytes
val decode_rdvz_header : bytes -> off:int -> (int64 * int, string) result

(** {1 GM framing} *)

type gm_message =
  | Gm_eager of { env : t; payload : bytes }
  | Gm_rts of { env : t; cookie : int; total_len : int }
      (** "I have [total_len] bytes for this envelope; pull when matched." *)
  | Gm_cts of { cookie : int }
      (** "Matched; send the data for [cookie]." *)
  | Gm_data of { cookie : int; payload : bytes }

val gm_header_size : int
val encode_gm : gm_message -> bytes
val decode_gm : bytes -> (gm_message, string) result
