module Envelope = Envelope
module Mpi_portals = Mpi_portals
module Mpi_gm = Mpi_gm
module Mpi_rtscts = Mpi_rtscts
module Mpi_ibverbs = Mpi_ibverbs
module Nx = Nx

module type TRANSPORT = Transport.S

type status = Transport.status = { source : int; tag : int; length : int }

exception Peer_failed = Envelope.Peer_failed

let any_source = Envelope.any_source
let any_tag = Envelope.any_tag

(* Reserve the top of the tag space for the barrier rounds. *)
let barrier_tag_base = Envelope.max_tag - 64

module type ENDPOINT = sig
  include Transport.S

  val waitall : t -> request list -> Transport.status list
  val send : t -> ?context:int -> dst:int -> tag:int -> bytes -> unit

  val recv :
    t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> Transport.status
  val barrier : ?tolerant:bool -> t -> unit
end

(* The one MPI <-> transport binding: everything above the Transport.S
   surface (blocking calls, waitall, the barrier) is derived here, once,
   for every backend. *)
module Make (T : Transport.S) :
  ENDPOINT with type t = T.t and type request = T.request = struct
  include T

  let waitall t reqs = List.map (fun r -> wait t r) reqs

  let send t ?context ~dst ~tag data =
    ignore (wait t (isend t ?context ~dst ~tag data))

  let recv t ?context ?source ?tag buffer =
    wait t (irecv t ?context ?source ?tag buffer)

  let barrier ?(tolerant = false) t =
    let n = size t in
    let me = rank t in
    if n > 1 then begin
      (* Dissemination: in round k, send to (me + 2^k) mod n and receive
         from (me - 2^k) mod n; ceil(log2 n) rounds synchronise everyone.
         With [tolerant], exchanges with crashed ranks are skipped instead
         of raising — the surviving ranks still synchronise among
         themselves (enough for a shutdown barrier). *)
      let guard f =
        if tolerant then (try f () with Transport.Peer_failed _ -> ())
        else f ()
      in
      let rec round k step =
        if step < n then begin
          let tag = barrier_tag_base + k in
          let to_peer = (me + step) mod n in
          let from_peer = (me - step + n) mod n in
          guard (fun () -> ignore (wait t (isend t ~dst:to_peer ~tag Bytes.empty)));
          guard (fun () ->
              ignore (wait t (irecv t ~source:from_peer ~tag (Bytes.create 0))));
          round (k + 1) (step * 2)
        end
      in
      round 0 1
    end
end

module Over_portals = Make (Mpi_portals.Tx)
module Over_gm = Make (Mpi_gm.Tx)
module Over_rtscts = Make (Mpi_rtscts.Tx)
module Over_ibverbs = Make (Mpi_ibverbs.Tx)

(* Run-time backend selection: an endpoint packs the derived module with
   its state; a request carries its endpoint, so every operation reaches
   the backend that issued it. *)
type t = Ep : (module ENDPOINT with type t = 'e and type request = 'r) * 'e -> t

type request =
  | Req :
      (module ENDPOINT with type t = 'e and type request = 'r) * 'e * 'r
      -> request

let of_endpoint m ep = Ep (m, ep)

let create_portals tp ~ranks ~rank ?config () =
  Ep ((module Over_portals), Mpi_portals.create tp ~ranks ~rank ?config ())

let create_gm tp ~ranks ~rank ?config () =
  Ep ((module Over_gm), Mpi_gm.create tp ~ranks ~rank ?config ())

let create_rtscts tp ~ranks ~rank ?config () =
  Ep ((module Over_rtscts), Mpi_rtscts.create tp ~ranks ~rank ?config ())

let create_ibverbs tp ~ranks ~rank ?config () =
  Ep ((module Over_ibverbs), Mpi_ibverbs.create tp ~ranks ~rank ?config ())

let finalize (Ep ((module M), ep)) = M.finalize ep
let rank (Ep ((module M), ep)) = M.rank ep
let size (Ep ((module M), ep)) = M.size ep
let backend_name (Ep ((module M), _)) = M.name
let counters (Ep ((module M), ep)) = M.counters ep

let isend t ?context ~dst ~tag data =
  match t with
  | Ep ((module M), ep) -> Req ((module M), ep, M.isend ep ?context ~dst ~tag data)

let irecv t ?context ?source ?tag buffer =
  match t with
  | Ep ((module M), ep) ->
    Req ((module M), ep, M.irecv ep ?context ?source ?tag buffer)

let test (_ : t) (Req ((module M), ep, r)) = M.test ep r
let wait (_ : t) (Req ((module M), ep, r)) = M.wait ep r
let waitall t reqs = List.map (fun r -> wait t r) reqs
let progress (Ep ((module M), ep)) = M.progress ep

let send t ?context ~dst ~tag data =
  ignore (wait t (isend t ?context ~dst ~tag data))

let recv t ?context ?source ?tag buffer =
  wait t (irecv t ?context ?source ?tag buffer)

let on_peer_failure (Ep ((module M), ep)) cb = M.on_peer_failure ep cb
let failed_ranks (Ep ((module M), ep)) = M.failed_ranks ep
let reconnect (Ep ((module M), ep)) ~rank = M.reconnect ep ~rank
let barrier ?tolerant (Ep ((module M), ep)) = M.barrier ?tolerant ep
