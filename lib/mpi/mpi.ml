module Envelope = Envelope
module Mpi_portals = Mpi_portals
module Mpi_gm = Mpi_gm
module Nx = Nx

type t = Portals_ep of Mpi_portals.t | Gm_ep of Mpi_gm.t
type request = Portals_req of Mpi_portals.request | Gm_req of Mpi_gm.request

type status = { source : int; tag : int; length : int }

exception Peer_failed = Envelope.Peer_failed

let any_source = Envelope.any_source
let any_tag = Envelope.any_tag

let create_portals tp ~ranks ~rank ?config () =
  Portals_ep (Mpi_portals.create tp ~ranks ~rank ?config ())

let create_gm tp ~ranks ~rank ?config () =
  Gm_ep (Mpi_gm.create tp ~ranks ~rank ?config ())

let finalize = function
  | Portals_ep ep -> Mpi_portals.finalize ep
  | Gm_ep ep -> Mpi_gm.finalize ep

let rank = function
  | Portals_ep ep -> Mpi_portals.rank ep
  | Gm_ep ep -> Mpi_gm.rank ep

let size = function
  | Portals_ep ep -> Mpi_portals.size ep
  | Gm_ep ep -> Mpi_gm.size ep

let backend_name = function Portals_ep _ -> "portals" | Gm_ep _ -> "gm"

let of_pstatus (st : Mpi_portals.status) =
  { source = st.Mpi_portals.source; tag = st.Mpi_portals.tag; length = st.Mpi_portals.length }

let of_gstatus (st : Mpi_gm.status) =
  { source = st.Mpi_gm.source; tag = st.Mpi_gm.tag; length = st.Mpi_gm.length }

let mismatch () = invalid_arg "Mpi: request does not belong to this endpoint"

let isend t ?context ~dst ~tag data =
  match t with
  | Portals_ep ep -> Portals_req (Mpi_portals.isend ep ?context ~dst ~tag data)
  | Gm_ep ep -> Gm_req (Mpi_gm.isend ep ?context ~dst ~tag data)

let irecv t ?context ?source ?tag buffer =
  match t with
  | Portals_ep ep ->
    Portals_req (Mpi_portals.irecv ep ?context ?source ?tag buffer)
  | Gm_ep ep -> Gm_req (Mpi_gm.irecv ep ?context ?source ?tag buffer)

let test t req =
  match (t, req) with
  | Portals_ep ep, Portals_req r -> Option.map of_pstatus (Mpi_portals.test ep r)
  | Gm_ep ep, Gm_req r -> Option.map of_gstatus (Mpi_gm.test ep r)
  | Portals_ep _, Gm_req _ | Gm_ep _, Portals_req _ -> mismatch ()

let wait t req =
  match (t, req) with
  | Portals_ep ep, Portals_req r -> of_pstatus (Mpi_portals.wait ep r)
  | Gm_ep ep, Gm_req r -> of_gstatus (Mpi_gm.wait ep r)
  | Portals_ep _, Gm_req _ | Gm_ep _, Portals_req _ -> mismatch ()

let waitall t reqs = List.map (fun r -> wait t r) reqs

let progress = function
  | Portals_ep ep -> Mpi_portals.progress ep
  | Gm_ep ep -> Mpi_gm.progress ep

let send t ?context ~dst ~tag data =
  ignore (wait t (isend t ?context ~dst ~tag data))

let recv t ?context ?source ?tag buffer =
  wait t (irecv t ?context ?source ?tag buffer)

let on_peer_failure t cb =
  match t with
  | Portals_ep ep -> Mpi_portals.on_peer_failure ep cb
  | Gm_ep ep -> Mpi_gm.on_peer_failure ep cb

let failed_ranks = function
  | Portals_ep ep -> Mpi_portals.failed_ranks ep
  | Gm_ep ep -> Mpi_gm.failed_ranks ep

let reconnect t ~rank =
  match t with
  | Portals_ep ep -> Mpi_portals.reconnect ep ~rank
  | Gm_ep ep -> Mpi_gm.reconnect ep ~rank

(* Reserve the top of the tag space for the barrier rounds. *)
let barrier_tag_base = Envelope.max_tag - 64

let barrier ?(tolerant = false) t =
  let n = size t in
  let me = rank t in
  if n > 1 then begin
    (* Dissemination: in round k, send to (me + 2^k) mod n and receive
       from (me - 2^k) mod n; ceil(log2 n) rounds synchronise everyone.
       With [tolerant], exchanges with crashed ranks are skipped instead
       of raising — the surviving ranks still synchronise among
       themselves (enough for a shutdown barrier). *)
    let guard f = if tolerant then (try f () with Peer_failed _ -> ()) else f () in
    let rec round k step =
      if step < n then begin
        let tag = barrier_tag_base + k in
        let to_peer = (me + step) mod n in
        let from_peer = (me - step + n) mod n in
        guard (fun () -> ignore (wait t (isend t ~dst:to_peer ~tag Bytes.empty)));
        guard (fun () ->
            ignore (wait t (irecv t ~source:from_peer ~tag (Bytes.create 0))));
        round (k + 1) (step * 2)
      end
    in
    round 0 1
  end
