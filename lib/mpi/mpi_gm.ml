open Sim_engine

type config = { eager_threshold : int; recv_tokens : int; call_cost : Time_ns.t }

let default_config =
  { eager_threshold = 16384; recv_tokens = 64; call_cost = Time_ns.ns 300 }

type status = Transport.status = { source : int; tag : int; length : int }

type req_kind = Send | Recv

type request = {
  id : int;
  kind : req_kind;
  buffer : bytes;
  want_context : int;
  want_source : int;
  want_tag : int;
  mutable state : [ `Pending | `Complete of status | `Failed of int ];
}

(* What each GM send's completion event means, FIFO with Send_complete. *)
type sent_kind = Sk_eager of request | Sk_data of request | Sk_control

type unexpected =
  | Ux_eager of { ux_env : Envelope.t; ux_payload : bytes }
  | Ux_rts of { ux_env : Envelope.t; ux_cookie : int; ux_total : int }

type t = {
  gm_port : Gm.t;
  cfg : config;
  ranks : Simnet.Proc_id.t array;
  my_rank : int;
  sched : Scheduler.t;
  tp : Simnet.Transport.t;
  mutable next_id : int;
  mutable next_cookie : int;
  posted : request Queue.t; (* receive posting order *)
  unexpected : unexpected Queue.t;
  sent_fifo : sent_kind Queue.t;
  awaiting_cts : (int, request * bytes) Hashtbl.t; (* cookie -> send *)
  awaiting_data : (int, request * Envelope.t) Hashtbl.t; (* cookie -> recv *)
  failed : (int, unit) Hashtbl.t; (* ranks whose node crashed *)
  mutable peer_cbs : (rank:int -> unit) list;
  mutable eager_sends : int;
  mutable rdvz_sends : int;
  mutable completions : int;
}

let rank t = t.my_rank
let size t = Array.length t.ranks
let port t = t.gm_port

let token_size t = t.cfg.eager_threshold + Envelope.gm_header_size

let fail_req req rank =
  match req.state with
  | `Pending -> req.state <- `Failed rank
  | `Complete _ | `Failed _ -> ()

(* A peer's node crashed: GM's connection state (the tokens the peer held
   for us, our rendezvous handshakes with it) is gone. Every request that
   can only complete with that peer's cooperation fails; blocked waiters
   are woken to observe it. New traffic toward the peer raises
   [Envelope.Peer_failed] until [reconnect]. *)
let on_peer_crash t nid =
  let hit = ref false in
  Array.iteri
    (fun r pid ->
      if r <> t.my_rank && pid.Simnet.Proc_id.nid = nid then begin
        hit := true;
        Hashtbl.replace t.failed r ();
        (* Posted receives pinned to the dead source. *)
        let n = Queue.length t.posted in
        for _ = 1 to n do
          let req = Queue.pop t.posted in
          if req.want_source = r then fail_req req r else Queue.add req t.posted
        done;
        (* Rendezvous sends stuck waiting for the dead peer's CTS. *)
        let dead_cts =
          Hashtbl.fold
            (fun cookie (req, _) acc ->
              if req.want_source = r then (cookie, req) :: acc else acc)
            t.awaiting_cts []
        in
        List.iter
          (fun (cookie, req) ->
            Hashtbl.remove t.awaiting_cts cookie;
            fail_req req r)
          dead_cts;
        (* Rendezvous receives waiting for the dead peer's data. *)
        let dead_data =
          Hashtbl.fold
            (fun cookie (req, env) acc ->
              if env.Envelope.src_rank = r then (cookie, req) :: acc else acc)
            t.awaiting_data []
        in
        List.iter
          (fun (cookie, req) ->
            Hashtbl.remove t.awaiting_data cookie;
            fail_req req r)
          dead_data;
        List.iter (fun cb -> cb ~rank:r) t.peer_cbs
      end)
    t.ranks;
  if !hit then Gm.wake t.gm_port

let create tp ~ranks ~rank:my_rank ?(config = default_config) () =
  if my_rank < 0 || my_rank >= Array.length ranks then
    invalid_arg "Mpi_gm.create: rank out of range";
  let gm_port = Gm.open_port tp ~id:ranks.(my_rank) in
  let t =
    {
      gm_port;
      cfg = config;
      ranks;
      my_rank;
      sched = tp.Simnet.Transport.sched;
      tp;
      next_id = 1;
      next_cookie = 0;
      posted = Queue.create ();
      unexpected = Queue.create ();
      sent_fifo = Queue.create ();
      awaiting_cts = Hashtbl.create 16;
      awaiting_data = Hashtbl.create 16;
      failed = Hashtbl.create 4;
      peer_cbs = [];
      eager_sends = 0;
      rdvz_sends = 0;
      completions = 0;
    }
  in
  for _ = 1 to config.recv_tokens do
    Gm.provide_receive_token gm_port (Bytes.create (token_size t))
  done;
  tp.Simnet.Transport.on_crash (fun nid -> on_peer_crash t nid);
  t

let finalize t = Gm.close t.gm_port

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let fresh_cookie t =
  let c = t.next_cookie in
  t.next_cookie <- c + 1;
  (t.my_rank * 1_000_003) + c

let complete t req status =
  match req.state with
  | `Pending ->
    req.state <- `Complete status;
    t.completions <- t.completions + 1
  | `Complete _ | `Failed _ -> ()

let on_peer_failure t cb = t.peer_cbs <- t.peer_cbs @ [ cb ]

let failed_ranks t =
  List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) t.failed [])

let reconnect t ~rank:r =
  if r < 0 || r >= Array.length t.ranks then
    invalid_arg "Mpi_gm.reconnect: rank out of range";
  Hashtbl.remove t.failed r

let check_alive t peer =
  if Hashtbl.mem t.failed peer then raise (Envelope.Peer_failed peer)

let gm_send t ~dst msg kind =
  Queue.add kind t.sent_fifo;
  Gm.send t.gm_port ~dst:t.ranks.(dst) (Envelope.encode_gm msg)

(* Find and remove the first posted receive matching the envelope. *)
let match_posted t (env : Envelope.t) =
  let n = Queue.length t.posted in
  let found = ref None in
  for _ = 1 to n do
    let req = Queue.pop t.posted in
    if
      !found = None
      && req.state = `Pending
      && Envelope.matches ~context:req.want_context env ~source:req.want_source
           ~tag:req.want_tag
    then found := Some req
    else Queue.add req t.posted
  done;
  !found

let copy_in t req payload length =
  let n = min length (Bytes.length req.buffer) in
  Scheduler.delay t.sched (t.tp.Simnet.Transport.host_copy_time n);
  Bytes.blit payload 0 req.buffer 0 n;
  n

(* Grant a matched rendezvous: provision a token big enough for the data
   message, then tell the sender to go. *)
let grant_rts t ~env ~cookie ~total req =
  Hashtbl.replace t.awaiting_data cookie (req, env);
  Gm.provide_receive_token t.gm_port
    (Bytes.create (total + Envelope.gm_header_size));
  gm_send t ~dst:env.Envelope.src_rank (Envelope.Gm_cts { cookie }) Sk_control

let handle_recv t ~src payload length =
  let data = Bytes.sub payload 0 length in
  match Envelope.decode_gm data with
  | Error _ -> () (* not an MPI message; ignore *)
  | Ok (Envelope.Gm_eager { env; payload }) ->
    (match match_posted t env with
    | Some req ->
      let n = copy_in t req payload (Bytes.length payload) in
      complete t req
        { source = env.Envelope.src_rank; tag = env.Envelope.tag; length = n }
    | None ->
      Queue.add (Ux_eager { ux_env = env; ux_payload = payload }) t.unexpected)
  | Ok (Envelope.Gm_rts { env; cookie; total_len }) ->
    (match match_posted t env with
    | Some req -> grant_rts t ~env ~cookie ~total:total_len req
    | None ->
      Queue.add
        (Ux_rts { ux_env = env; ux_cookie = cookie; ux_total = total_len })
        t.unexpected)
  | Ok (Envelope.Gm_cts { cookie }) ->
    (match Hashtbl.find_opt t.awaiting_cts cookie with
    | None -> ()
    | Some (req, data) ->
      Hashtbl.remove t.awaiting_cts cookie;
      let dst = req.want_source in
      gm_send t ~dst (Envelope.Gm_data { cookie; payload = data }) (Sk_data req))
  | Ok (Envelope.Gm_data { cookie; payload }) ->
    (match Hashtbl.find_opt t.awaiting_data cookie with
    | None -> ()
    | Some (req, env) ->
      Hashtbl.remove t.awaiting_data cookie;
      let n = copy_in t req payload (Bytes.length payload) in
      complete t req
        { source = env.Envelope.src_rank; tag = env.Envelope.tag; length = n });
  ignore src

let handle_sent t =
  match Queue.take_opt t.sent_fifo with
  | None -> ()
  | Some (Sk_eager req) ->
    complete t req
      {
        source = t.my_rank;
        tag = req.want_tag;
        length = Bytes.length req.buffer;
      }
  | Some (Sk_data req) ->
    complete t req
      {
        source = t.my_rank;
        tag = req.want_tag;
        length = Bytes.length req.buffer;
      }
  | Some Sk_control -> ()

(* The library progress engine: runs ONLY here — no application bypass. *)
let progress_raw t =
  let rec drain () =
    match Gm.poll t.gm_port with
    | None -> ()
    | Some (Gm.Recv_complete { src; buffer; length }) ->
      handle_recv t ~src buffer length;
      (* Recycle the token (unexpected eagers were copied out of it by
         Bytes.sub, so the buffer is free either way). *)
      if Bytes.length buffer = token_size t then
        Gm.provide_receive_token t.gm_port buffer;
      drain ()
    | Some (Gm.Send_complete _) ->
      handle_sent t;
      drain ()
  in
  drain ()

let lib_entry t =
  Scheduler.delay t.sched t.cfg.call_cost;
  progress_raw t

let progress t = lib_entry t

let check_peer t peer name =
  if peer < 0 || peer >= Array.length t.ranks then
    invalid_arg (Printf.sprintf "Mpi_gm.%s: rank %d out of range" name peer)

let isend t ?(context = 0) ~dst ~tag data =
  check_peer t dst "isend";
  check_alive t dst;
  lib_entry t;
  let req =
    {
      id = fresh_id t;
      kind = Send;
      buffer = data;
      want_context = context;
      want_source = dst;
      want_tag = tag;
      state = `Pending;
    }
  in
  let env =
    {
      Envelope.protocol =
        (if Bytes.length data <= t.cfg.eager_threshold then Envelope.Eager
         else Envelope.Rendezvous);
      context;
      src_rank = t.my_rank;
      tag;
    }
  in
  (match env.Envelope.protocol with
  | Envelope.Eager ->
    t.eager_sends <- t.eager_sends + 1;
    gm_send t ~dst (Envelope.Gm_eager { env; payload = data }) (Sk_eager req)
  | Envelope.Rendezvous ->
    t.rdvz_sends <- t.rdvz_sends + 1;
    let cookie = fresh_cookie t in
    Hashtbl.replace t.awaiting_cts cookie (req, data);
    gm_send t ~dst
      (Envelope.Gm_rts { env; cookie; total_len = Bytes.length data })
      Sk_control);
  req

let take_unexpected t ~context ~source ~tag =
  let n = Queue.length t.unexpected in
  let found = ref None in
  for _ = 1 to n do
    let u = Queue.pop t.unexpected in
    let env = match u with Ux_eager { ux_env; _ } | Ux_rts { ux_env; _ } -> ux_env in
    if !found = None && Envelope.matches ~context env ~source ~tag then
      found := Some u
    else Queue.add u t.unexpected
  done;
  !found

let irecv t ?(context = 0) ?(source = Envelope.any_source)
    ?(tag = Envelope.any_tag) buffer =
  if source <> Envelope.any_source then begin
    check_peer t source "irecv";
    check_alive t source
  end;
  lib_entry t;
  let req =
    {
      id = fresh_id t;
      kind = Recv;
      buffer;
      want_context = context;
      want_source = source;
      want_tag = tag;
      state = `Pending;
    }
  in
  (match take_unexpected t ~context ~source ~tag with
  | Some (Ux_eager { ux_env; ux_payload }) ->
    let n = copy_in t req ux_payload (Bytes.length ux_payload) in
    complete t req
      { source = ux_env.Envelope.src_rank; tag = ux_env.Envelope.tag; length = n }
  | Some (Ux_rts { ux_env; ux_cookie; ux_total }) ->
    grant_rts t ~env:ux_env ~cookie:ux_cookie ~total:ux_total req
  | None -> Queue.add req t.posted);
  req

let test t req =
  lib_entry t;
  match req.state with
  | `Complete st -> Some st
  | `Pending -> None
  | `Failed r -> raise (Envelope.Peer_failed r)

let wait t req =
  lib_entry t;
  let rec loop () =
    match req.state with
    | `Complete st -> st
    | `Failed r -> raise (Envelope.Peer_failed r)
    | `Pending ->
      (* Blocking gm_receive: sleep until the port has an event (or a
         peer-failure wake), then run the library protocol over it. *)
      Gm.wait_event t.gm_port;
      progress_raw t;
      loop ()
  in
  loop ()

let counters t =
  let s = Gm.stats t.gm_port in
  [
    ("eager_sends", t.eager_sends);
    ("rdvz_sends", t.rdvz_sends);
    ("completions", t.completions);
    ("port_sends", s.Gm.sends);
    ("port_receives", s.Gm.receives);
  ]

(* The Transport.S instance: what Mpi.Make and the conformance suite
   consume. *)
module Tx = struct
  let name = "gm"

  type nonrec t = t
  type nonrec request = request

  let create tp ~ranks ~rank = create tp ~ranks ~rank ()
  let finalize = finalize
  let rank = rank
  let size = size
  let isend = isend
  let irecv = irecv
  let test = test
  let wait = wait
  let progress = progress
  let on_peer_failure = on_peer_failure
  let failed_ranks = failed_ranks
  let reconnect = reconnect
  let counters = counters
end
