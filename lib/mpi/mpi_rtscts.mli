(** MPI over Portals over the kernel RTS/CTS modules — the production
    Cplant stack §3 describes ("MPICH/Portals3.0" in Figure 6).

    The MPI glue is {!Mpi_portals} unchanged: the whole point of the
    Portals placement argument is that the library above the API cannot
    tell whether matching runs on the NIC or in the kernel. What makes
    this a distinct stack is the wire underneath — {!Rtscts.transport},
    supplied by the world builder ([Runtime.Stack] pairs the two) — so
    the {!Transport.S} instance here exists to give the stack its own
    name in benchmark-matrix rows and CLI [--transports] lists. *)

type config = Mpi_portals.config

val default_config : config

type status = Transport.status = { source : int; tag : int; length : int }
type t = Mpi_portals.t
type request = Mpi_portals.request

val create :
  Simnet.Transport.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?config:config ->
  unit ->
  t
(** Bring up the endpoint; the given wire should be an RTS/CTS kernel
    transport for the stack to match its name. *)

module Tx : Transport.S with type t = t and type request = request
(** The {!Transport.S} instance: {!Mpi_portals.Tx} renamed
    ["rtscts"]. *)
