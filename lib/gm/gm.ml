type event =
  | Recv_complete of { src : Simnet.Proc_id.t; buffer : bytes; length : int }
  | Send_complete of { dst : Simnet.Proc_id.t; length : int }

let pp_event ppf = function
  | Recv_complete { src; length; _ } ->
    Format.fprintf ppf "recv %d bytes from %a" length Simnet.Proc_id.pp src
  | Send_complete { dst; length } ->
    Format.fprintf ppf "sent %d bytes to %a" length Simnet.Proc_id.pp dst

type stats = {
  sends : int;
  receives : int;
  drops_no_token : int;
  polls : int;
  tokens_available : int;
}

type t = {
  tp : Simnet.Transport.t;
  self : Simnet.Proc_id.t;
  tokens : bytes Queue.t;
  events : event Queue.t;
  nonempty : Sim_engine.Sync.Waitq.t;
  depth_series : Sim_engine.Metrics.series;
  mutable s_sends : int;
  mutable s_receives : int;
  mutable s_drops : int;
  mutable s_polls : int;
  mutable live : bool;
  mutable interrupts : int;
}

(* The port's event queue is GM's analogue of a Portals event queue, so it
   publishes the same "eq.depth" series the Fig. 6 comparison reads. *)
let record_depth t =
  let sched = t.tp.Simnet.Transport.sched in
  Sim_engine.Metrics.push t.depth_series
    ~x:(Sim_engine.Time_ns.to_us (Sim_engine.Scheduler.now sched))
    ~y:(float_of_int (Queue.length t.events))

(* Take the first token that can hold [len] bytes, preserving the FIFO
   order of the rest. *)
let take_token t len =
  let n = Queue.length t.tokens in
  let rec rotate i found =
    if i >= n then found
    else begin
      let tok = Queue.pop t.tokens in
      match found with
      | None when Bytes.length tok >= len -> rotate (i + 1) (Some tok)
      | None | Some _ ->
        Queue.add tok t.tokens;
        rotate (i + 1) found
    end
  in
  rotate 0 None

let on_arrival t ~src payload =
  if t.live then begin
    let len = Bytes.length payload in
    match take_token t len with
    | None -> t.s_drops <- t.s_drops + 1
    | Some buffer ->
      (* NIC DMA into the token buffer: no host CPU, no application. *)
      Bytes.blit payload 0 buffer 0 len;
      t.s_receives <- t.s_receives + 1;
      Queue.add (Recv_complete { src; buffer; length = len }) t.events;
      record_depth t;
      Sim_engine.Sync.Waitq.broadcast t.nonempty
  end

let open_port tp ~id:self =
  let sched = tp.Simnet.Transport.sched in
  let m = Sim_engine.Scheduler.metrics sched in
  let pname = Format.asprintf "%a" Simnet.Proc_id.pp self in
  let t =
    {
      tp;
      self;
      tokens = Queue.create ();
      events = Queue.create ();
      nonempty = Sim_engine.Sync.Waitq.create ~name:"gm-port" sched;
      depth_series =
        Sim_engine.Metrics.series m ~labels:[ ("eq", "gm:" ^ pname) ] "eq.depth";
      s_sends = 0;
      s_receives = 0;
      s_drops = 0;
      s_polls = 0;
      live = true;
      interrupts = 0;
    }
  in
  let labels = [ ("port", pname) ] in
  let probe name f =
    Sim_engine.Metrics.probe m ~labels name (fun () -> float_of_int (f ()))
  in
  probe "gm.sends" (fun () -> t.s_sends);
  probe "gm.receives" (fun () -> t.s_receives);
  probe "gm.drops_no_token" (fun () -> t.s_drops);
  probe "gm.polls" (fun () -> t.s_polls);
  tp.Simnet.Transport.register self (fun ~src payload -> on_arrival t ~src payload);
  t

let close t =
  if t.live then begin
    t.live <- false;
    t.tp.Simnet.Transport.unregister t.self
  end

let id t = t.self
let provide_receive_token t buffer = Queue.add buffer t.tokens

let send t ~dst payload =
  t.s_sends <- t.s_sends + 1;
  let length = Bytes.length payload in
  t.tp.Simnet.Transport.send ~src:t.self ~dst (Bytes.copy payload);
  Sim_engine.Scheduler.after t.tp.Simnet.Transport.sched
    t.tp.Simnet.Transport.send_overhead (fun () ->
      if t.live then begin
        Queue.add (Send_complete { dst; length }) t.events;
        Sim_engine.Sync.Waitq.broadcast t.nonempty
      end)

let poll t =
  t.s_polls <- t.s_polls + 1;
  let ev = Queue.take_opt t.events in
  if ev <> None then record_depth t;
  ev

let pending_events t = Queue.length t.events

let wake t =
  t.interrupts <- t.interrupts + 1;
  Sim_engine.Sync.Waitq.broadcast t.nonempty

let wait_event t =
  let mark = t.interrupts in
  let rec loop () =
    if Queue.is_empty t.events && t.interrupts = mark then begin
      Sim_engine.Sync.Waitq.wait t.nonempty;
      loop ()
    end
  in
  loop ()

let stats t =
  {
    sends = t.s_sends;
    receives = t.s_receives;
    drops_no_token = t.s_drops;
    polls = t.s_polls;
    tokens_available = Queue.length t.tokens;
  }
