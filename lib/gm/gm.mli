(** A GM-like message layer: the paper's baseline (§5.3).

    GM (Myricom's interface for Myrinet) achieves {e OS bypass}: the NIC
    deposits incoming messages directly into pre-registered receive-token
    buffers with no kernel or application involvement. But it offers no
    {e application bypass}: the library learns what arrived — and can run
    any higher-level protocol such as MPI matching or a rendezvous
    response — only when the application calls {!poll}. That distinction
    is exactly what Figure 6 of the paper measures.

    Model: a port owns a FIFO of receive tokens (buffers). An arriving
    message consumes the first token large enough to hold it; with no
    usable token the message is dropped and counted (GM requires the
    receiver to provision tokens ahead of traffic). Completion events
    accumulate in a port-internal queue that only {!poll} drains. *)

type event =
  | Recv_complete of { src : Simnet.Proc_id.t; buffer : bytes; length : int }
      (** A message landed in [buffer] (a formerly provided token; the
          first [length] bytes are valid). *)
  | Send_complete of { dst : Simnet.Proc_id.t; length : int }
      (** A send's data left the local NIC; the send buffer is reusable. *)

val pp_event : Format.formatter -> event -> unit

type stats = {
  sends : int;
  receives : int;
  drops_no_token : int;  (** Arrivals with no token large enough. *)
  polls : int;
  tokens_available : int;
}

type t

val open_port : Simnet.Transport.t -> id:Simnet.Proc_id.t -> t
(** Open the process's port. GM semantics presume a NIC-offload transport
    ({!Simnet.Transport.offload}); the port works over any transport, the
    receive path simply inherits its costs. *)

val close : t -> unit

val id : t -> Simnet.Proc_id.t

val provide_receive_token : t -> bytes -> unit
(** Append a receive buffer to the token FIFO. *)

val send : t -> dst:Simnet.Proc_id.t -> bytes -> unit
(** Asynchronous send; a [Send_complete] event is queued once the data
    has left. The buffer must not be reused before then. *)

val poll : t -> event option
(** Drain one completion event, oldest first — the {e only} way the
    application observes the network. Returns [None] when nothing has
    completed. *)

val wait_event : t -> unit
(** Fiber-only: block until the port has at least one completion event —
    the analogue of a blocking [gm_receive] — or until a {!wake} issued
    after this call began. The caller still has to {!poll}; nothing is
    processed on its behalf (no application bypass). *)

val wake : t -> unit
(** Interrupt every fiber blocked in {!wait_event} even though no event
    was posted (the analogue of [gm_wake]). Used to surface out-of-band
    conditions — a peer crash — to blocked waiters, which must re-check
    their own predicates. *)

val pending_events : t -> int
(** Events a {!poll} would find right now (for tests; a real application
    cannot see this without polling). *)

val stats : t -> stats
