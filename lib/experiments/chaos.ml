open Sim_engine
module P = Portals
module C = Reliability.Chaos

(* Invariant-checked chaos campaigns: every cell of a corruption x delay
   x partition x crash x loss grid runs two worlds and asserts what must
   survive the abuse.

     stream     seeded per-pair message streams over the reliability
                shim — delivered exactly once, in order, byte-identical
                (corruption must degrade to loss, never to silent
                damage), with a liveness monitor asserting that a
                partitioned-but-alive peer is reported partitioned, not
                crashed, and that suspicion converges after the heal
     rma        the PR-7 linearizability harness promoted from the test
                suite: concurrent fetch_adds must fetch each pre-value
                exactly once, CAS slot claims must be exclusive — under
                the same faults (crash axis excluded: atomics to a dead
                node have no completion to wait on)

   A cell passes when its violation list is empty; the campaign passes
   when every cell does ([zero_violations]). Deterministic per seed. *)

type report = {
  cell : C.cell;
  violations : string list;
  delivered : int;  (** Stream payloads accepted exactly once. *)
  corrupts_injected : int;
  delays_injected : int;
  drops_partitioned : int;
  rel_corrupt_drops : int;  (** Shim frames discarded on bad CRC. *)
  checksum_drops : int;  (** NI-level [Checksum_failed] drops (§4.8). *)
  sim_time_us : float;
}

type t = { reports : report list }

(* --- campaign parameters ----------------------------------------------- *)

let horizon = Time_ns.ms 8.
let liveness_period = Time_ns.us 100.
let liveness_timeout = Time_ns.us 500.
let stream_msgs ~quick = if quick then 24 else 60
let rma_ops ~quick = if quick then 4 else 8

(* --- the stream + liveness world --------------------------------------- *)

type stream_stat = {
  mutable expected : int;  (** Next in-order sequence number. *)
  mutable accepted : int;
  mutable seq_violations : int;
  mutable byte_violations : int;
}

let payload_byte ~src ~dst ~seq j =
  ((src * 31) + (dst * 17) + (seq * 7) + j) land 0xFF

let stream_payload ~src ~dst ~seq =
  let len = 16 + (seq mod 48) in
  let b = Bytes.create len in
  Bytes.set_int32_le b 0 (Int32.of_int seq);
  for j = 4 to len - 1 do
    Bytes.set_uint8 b j (payload_byte ~src ~dst ~seq j)
  done;
  b

let check_payload ~src ~dst ~seq buf =
  let ok = ref (Bytes.length buf = 16 + (seq mod 48)) in
  if !ok then
    for j = 4 to Bytes.length buf - 1 do
      if Bytes.get_uint8 buf j <> payload_byte ~src ~dst ~seq j then ok := false
    done;
  !ok

(* Each cell scripts its own faults, replicated onto every shard fabric
   (fresh model instances per replica — same cell, same seed, identical
   per-pair streams — with the partition and crash schedules applied to
   all replicas so shadow crash state stays in lockstep). *)
let inject_cell_faults cell ~partitions ~crashes fabrics =
  Array.map
    (fun fabric ->
      Simnet.Fabric.set_fault_model fabric (C.fault_of_cell cell);
      if partitions <> [] then
        Simnet.Fabric.apply_partition_schedule fabric partitions;
      if crashes <> [] then Simnet.Fabric.apply_crash_schedule fabric crashes;
      Reliability.attach fabric)
    fabrics

let run_stream_world ~quick cell =
  let nodes = 6 in
  let nids = List.init nodes Fun.id in
  let msgs = stream_msgs ~quick in
  let world =
    Runtime.create_world ~seed:cell.C.seed ~topology:Simnet.Topology.Full
      ~env_faults:false ~nodes ()
  in
  (* Crash victims live outside every stream pair and the monitor, so
     the exactly-once obligation stays well-defined: nobody streams to a
     node that ceases to exist. *)
  let victims = [ nodes - 2; nodes - 1 ] in
  let partitions = C.partition_of_cell cell ~nids ~horizon in
  let shims =
    inject_cell_faults cell ~partitions
      ~crashes:(C.crash_schedule_of cell ~nids:victims ~horizon)
      (Runtime.shard_fabrics world)
  in
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Streams: one pair crossing the partition cut each way, one pair
     inside the first half each way. *)
  let pairs = [ (0, nodes / 2); (nodes / 2, 0); (1, 2); (2, 1) ] in
  let stats = List.map (fun pair -> (pair, {
      expected = 0; accepted = 0; seq_violations = 0; byte_violations = 0;
    })) pairs
  in
  let proc nid = world.Runtime.ranks.(nid) in
  (* No two pairs share a destination, so each dst registers exactly one
     handler (the monitor's beat handler lives on a different pid) — on
     the dst's owner-shard fabric, where its frames are delivered. *)
  List.iter
    (fun ((src, dst), st) ->
      Simnet.Fabric.register (Runtime.fabric_of_nid world dst) (proc dst)
        (fun ~src:from buf ->
          if from.Simnet.Proc_id.nid = src then begin
            let seq = Int32.to_int (Bytes.get_int32_le buf 0) in
            if seq <> st.expected then st.seq_violations <- st.seq_violations + 1
            else begin
              st.expected <- st.expected + 1;
              st.accepted <- st.accepted + 1
            end;
            if not (check_payload ~src ~dst ~seq buf) then
              st.byte_violations <- st.byte_violations + 1
          end))
    stats;
  (* Sends spread over the first 80% of the horizon, so some land inside
     the cut window and must ride retransmission out of it. *)
  let spacing = horizon * 4 / (5 * msgs) in
  List.iter
    (fun ((src, dst), _) ->
      (* Sends are scheduled on the src's owner shard and injected into
         its fabric replica, exactly as a resident fiber would. *)
      let src_sched = Runtime.sched_of_nid world src in
      let src_fabric = Runtime.fabric_of_nid world src in
      for seq = 0 to msgs - 1 do
        Scheduler.at src_sched
          (spacing * (seq + 1))
          (fun () ->
            Simnet.Fabric.send src_fabric ~src:(proc src) ~dst:(proc dst)
              (stream_payload ~src ~dst ~seq))
      done)
    stats;
  (* The liveness monitor on node 0, and its two scheduled audits. *)
  let liveness =
    Runtime.Liveness.start ~period:liveness_period ~timeout:liveness_timeout
      ~until:horizon world
  in
  (* Both audits run on the monitor's shard: verdicts are monitor-local
     state, and crash flags are replicated on every fabric. *)
  let mon_sched = Runtime.sched_of_nid world 0 in
  let mon_fabric = Runtime.fabric_of_nid world 0 in
  (match partitions with
  | [] -> ()
  | event :: _ ->
    let cut = event.Simnet.Fault.cut_at in
    let heal = Option.value event.Simnet.Fault.heal_at ~default:horizon in
    let mid = (cut + heal) / 2 in
    Scheduler.at mon_sched mid (fun () ->
        (* Mid-cut: every unreachable-but-up peer must be reported
           partitioned, never crashed; cross-cut peers must actually be
           suspected by now (the cut is many timeouts old). *)
        List.iter
          (fun nid ->
            match Runtime.Liveness.verdict liveness nid with
            | Runtime.Liveness.Suspected_crashed
              when Simnet.Fabric.is_node_up mon_fabric nid ->
              violation "mid-cut: up node %d reported crashed" nid
            | _ -> ())
          (List.tl nids);
        List.iter
          (fun nid ->
            if
              (not (List.mem nid victims))
              && nid >= nodes / 2
              && Runtime.Liveness.verdict liveness nid
                 <> Runtime.Liveness.Suspected_partitioned
            then violation "mid-cut: cross-cut node %d not suspected" nid)
          nids));
  Scheduler.at mon_sched (Time_ns.sub horizon (Time_ns.us 10.)) (fun () ->
      (* End of run: for healing partitions, suspicion must have
         converged back to clean on every non-victim node. *)
      if partitions <> [] then
        List.iter
          (fun nid ->
            if
              (not (List.mem nid victims))
              && nid <> 0
              && Runtime.Liveness.verdict liveness nid <> Runtime.Liveness.Alive
            then violation "post-heal: node %d still suspected" nid)
          nids);
  Runtime.run world;
  List.iter
    (fun ((src, dst), st) ->
      if st.accepted <> msgs then
        violation "stream %d->%d: %d/%d delivered" src dst st.accepted msgs;
      if st.seq_violations > 0 then
        violation "stream %d->%d: %d out-of-order/duplicate arrivals" src dst
          st.seq_violations;
      if st.byte_violations > 0 then
        violation "stream %d->%d: %d corrupted payloads surfaced" src dst
          st.byte_violations)
    stats;
  (* Injection counters accumulate where each stochastic decision was
     made (the src shard), CRC drops where the frame was received — sum
     over replicas to recover the sequential totals. *)
  let sum f arr = Array.fold_left (fun a x -> a + f x) 0 arr in
  let fabrics = Runtime.shard_fabrics world in
  let corrupts =
    sum (fun f -> (Simnet.Fabric.stats f).Simnet.Fabric.corrupts_injected) fabrics
  in
  let delays =
    sum (fun f -> (Simnet.Fabric.stats f).Simnet.Fabric.delays_injected) fabrics
  in
  let parted =
    sum (fun f -> (Simnet.Fabric.stats f).Simnet.Fabric.drops_partitioned) fabrics
  in
  let rel_corrupt =
    sum (fun s -> (Reliability.stats s).Reliability.corrupt_drops) shims
  in
  let now_us =
    Array.fold_left
      (fun a s -> Float.max a (Time_ns.to_us (Scheduler.now s)))
      0. (Runtime.shard_scheds world)
  in
  let delivered = List.fold_left (fun a (_, st) -> a + st.accepted) 0 stats in
  (!violations, delivered, (corrupts, delays, parted), rel_corrupt, now_us)

(* --- the RMA linearizability world ------------------------------------- *)

let run_rma_world ~quick cell =
  let nodes = 6 and ranks = 4 in
  let ops = rma_ops ~quick in
  let world =
    Runtime.create_world ~seed:(cell.C.seed + 1) ~topology:Simnet.Topology.Full
      ~env_faults:false ~nodes ()
  in
  ignore
    (inject_cell_faults cell
       ~partitions:(C.partition_of_cell cell ~nids:(List.init nodes Fun.id) ~horizon)
       ~crashes:[] (Runtime.shard_fabrics world));
  (* Ranks straddle the cut (nids 0, 1, n/2, n/2+1) so atomics must
     survive the partition, not merely avoid it. *)
  let rank_nids = [| 0; 1; nodes / 2; (nodes / 2) + 1 |] in
  let procs = Array.map (fun nid -> Simnet.Proc_id.make ~nid ~pid:0) rank_nids in
  (* Each NI lives over its node's owner-shard transport. *)
  let nis =
    Array.map
      (fun pid ->
        P.Ni.create
          (Runtime.transport_of_rank world pid.Simnet.Proc_id.nid)
          ~id:pid ())
      procs
  in
  let oss =
    Array.mapi (fun rank ni -> Onesided.create_exn ni ~ranks:procs ~rank ()) nis
  in
  let slots = ranks * ops in
  let wins =
    Array.map (fun os -> Onesided.win_create os ~size:(8 + (slots * 8))) oss
  in
  let fetched = Array.make ranks [] in
  let claimed = Array.make ranks [] in
  Array.iteri
    (fun rank pid ->
      Scheduler.spawn
        (Runtime.sched_of_nid world pid.Simnet.Proc_id.nid)
        ~name:(Printf.sprintf "chaos-rma%d" rank)
        ~domain:pid.Simnet.Proc_id.nid
        (fun () ->
          let w = wins.(rank) in
          for i = 0 to ops - 1 do
            (* The shared counter on rank 0: every increment must fetch
               a distinct pre-value. *)
            let old = Onesided.Win.fetch_and_add w ~rank:0 ~offset:0 1L in
            fetched.(rank) <- old :: fetched.(rank);
            (* A CAS slot claim: key (rank, i) targets slot
               rank*ops + i on its owner — plus a contended claim on
               slot 0 that exactly one rank can win. *)
            let slot = (rank * ops) + i in
            let owner = slot mod ranks and off = 8 + (slot / ranks * 8) in
            let key = Int64.of_int ((rank * ops) + i + 1) in
            let prev =
              Onesided.Win.compare_and_swap w ~rank:owner ~offset:off
                ~expected:0L ~desired:key
            in
            if prev = 0L then claimed.(rank) <- slot :: claimed.(rank)
          done))
    procs;
  Runtime.run world;
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let total = ranks * ops in
  let counter = Bytes.get_int64_le (Onesided.Win.local_data wins.(0)) 0 in
  if counter <> Int64.of_int total then
    violation "rma: counter %Ld after %d fetch_adds" counter total;
  let all_fetched =
    List.sort compare (Array.to_list fetched |> List.concat)
  in
  if all_fetched <> List.init total Int64.of_int then
    violation "rma: fetch_add pre-values not a permutation of 0..%d"
      (total - 1);
  let all_claims = Array.to_list claimed |> List.concat in
  if List.length all_claims <> List.length (List.sort_uniq compare all_claims)
  then violation "rma: a CAS slot claimed twice";
  if List.length all_claims <> total then
    violation "rma: %d/%d CAS claims succeeded" (List.length all_claims) total;
  let checksum_drops =
    Array.fold_left
      (fun acc ni -> acc + P.Ni.dropped ni P.Ni.Checksum_failed)
      0 nis
  in
  let now_us =
    Array.fold_left
      (fun a s -> Float.max a (Time_ns.to_us (Scheduler.now s)))
      0. (Runtime.shard_scheds world)
  in
  (!violations, checksum_drops, now_us)

(* --- per-cell driver ---------------------------------------------------- *)

let run_cell ?(quick = false) cell =
  (* Frames travel checksummed exactly when the cell is faulty — the
     clean control cell doubles as a check that the byte-identical
     legacy encoding still satisfies every invariant. *)
  Simnet.Integrity.with_enabled (C.faulty cell) (fun () ->
      let sviol, delivered, (corrupts, delays, parted), rel_corrupt_drops, t1 =
        run_stream_world ~quick cell
      in
      let rviol, checksum_drops, t2 = run_rma_world ~quick cell in
      {
        cell;
        violations = List.rev sviol @ List.rev rviol;
        delivered;
        corrupts_injected = corrupts;
        delays_injected = delays;
        drops_partitioned = parted;
        rel_corrupt_drops;
        checksum_drops;
        sim_time_us = t1 +. t2;
      })

(* --- campaign grids ----------------------------------------------------- *)

let axis_cells ~seed =
  [
    ("clean", C.cell ~seed ());
    ("corrupt", C.cell ~corrupt:0.02 ~seed ());
    ("delay", C.cell ~delay:(Time_ns.us 40.) ~seed ());
    ("partition", C.cell ~partition:true ~seed ());
    ("crash", C.cell ~crashes:1 ~seed ());
    ("loss", C.cell ~loss:0.02 ~seed ());
    ( "mix",
      C.cell ~corrupt:0.01 ~delay:(Time_ns.us 20.) ~partition:true ~loss:0.01
        ~seed () );
  ]

let default_cells ?(quick = false) ~seed () =
  if quick then List.map snd (axis_cells ~seed)
  else
    C.grid ~corrupts:[ 0.; 0.02 ]
      ~delays:[ 0; Time_ns.us 40. ]
      ~partitions:[ false; true ] ~crash_counts:[ 0; 1 ] ~losses:[ 0.; 0.02 ]
      ~seeds:[ seed + 1 ] ()

let run ?(cells = []) ?(quick = false) ?(seed = 0) () =
  let cells =
    match cells with [] -> default_cells ~quick ~seed () | cells -> cells
  in
  { reports = List.map (run_cell ~quick) cells }

let zero_violations t =
  List.for_all (fun r -> r.violations = []) t.reports

let total_violations t =
  List.fold_left (fun a r -> a + List.length r.violations) 0 t.reports

let pp ppf t =
  Format.fprintf ppf
    "chaos campaign: %d cells (invariants: exactly-once, in-order, \
     byte-clean, RMA linearizable, liveness partition-aware)@."
    (List.length t.reports);
  Format.fprintf ppf "%-44s %-9s %9s %8s %8s %6s@." "cell" "verdict"
    "delivered" "corrupts" "cksum" "part";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-44s %-9s %9d %8d %8d %6d@." (C.describe r.cell)
        (if r.violations = [] then "ok" else "VIOLATED")
        r.delivered r.corrupts_injected
        (r.rel_corrupt_drops + r.checksum_drops)
        r.drops_partitioned;
      List.iter (fun v -> Format.fprintf ppf "    violation: %s@." v) r.violations)
    t.reports;
  Format.fprintf ppf "total violations: %d@." (total_violations t)

(* --- perf records ------------------------------------------------------- *)

let record_id name = "CH." ^ name

let perf_records ?(quick = true) ?(seed = 0) () =
  List.map
    (fun (name, cell) ->
      Perf.meter ~id:(record_id name) (fun () ->
          let r = run_cell ~quick cell in
          if r.violations <> [] then
            failwith
              (Printf.sprintf "chaos invariant violated in %s: %s" name
                 (String.concat "; " r.violations))))
    (axis_cells ~seed)
