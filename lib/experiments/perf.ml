open Sim_engine

type record = {
  id : string;
  wall_s : float;
  sim_events : int;
  fibers : int;
  sim_time_us : float;
  events_per_sec : float;
  peak_heap_words : int;
}

(* Each runner is metered as a delta of the process-wide scheduler totals
   around its run, so a record reflects exactly the simulation work the
   experiment caused (every world it built included). [peak_heap_words]
   is the GC's top_heap_words after the run — monotone across the
   process, so it reads as "peak heap so far", not a per-experiment
   figure. Wall time and heap words vary run to run; the sim-side fields
   (sim_events, fibers, sim_time_us) are deterministic for a fixed seed. *)
let meter_once ~id f =
  (* Compact first so one experiment's garbage cannot charge the next
     one's wall clock with a major collection. *)
  Gc.compact ();
  let e0 = Scheduler.global_totals () in
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  let t1 = Unix.gettimeofday () in
  let e1 = Scheduler.global_totals () in
  let wall = t1 -. t0 in
  let events = e1.Scheduler.t_events - e0.Scheduler.t_events in
  {
    id;
    wall_s = wall;
    sim_events = events;
    fibers = e1.Scheduler.t_fibers - e0.Scheduler.t_fibers;
    sim_time_us =
      Time_ns.to_us (Time_ns.sub e1.Scheduler.t_sim_time e0.Scheduler.t_sim_time);
    events_per_sec = (if wall > 0. then float_of_int events /. wall else 0.);
    peak_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
  }

(* Best of three: the sim-side fields are deterministic, so repeats agree
   on them exactly and only the host-side fields differ; keeping the
   fastest repeat filters out wall-clock interference (GC pauses, a busy
   host), which a regression gate would otherwise misread. *)
let meter ~id f =
  let rec best n acc =
    if n = 0 then acc
    else begin
      let r = meter_once ~id f in
      best (n - 1) (if r.events_per_sec > acc.events_per_sec then r else acc)
    end
  in
  best 2 (meter_once ~id f)

let runners ~quick =
  let nth_table n () = List.nth (Tables.run ()) n in
  [
    ("T1", fun () -> meter ~id:"T1" (nth_table 0));
    ("T2", fun () -> meter ~id:"T2" (nth_table 1));
    ("T3", fun () -> meter ~id:"T3" (nth_table 2));
    ("T4", fun () -> meter ~id:"T4" (nth_table 3));
    ("F1", fun () -> meter ~id:"F1" (fun () -> Protocols.run_put ()));
    ("F2", fun () -> meter ~id:"F2" (fun () -> Protocols.run_get ()));
    ( "F3",
      fun () ->
        meter ~id:"F3" (fun () -> Translation.run ~depths:[ 0; 16; 64 ] ()) );
    ( "F4",
      fun () ->
        meter ~id:"F4" (fun () ->
            Translation.run ~depths:(if quick then [ 128 ] else [ 128; 256 ]) ())
    );
    ("F5", fun () -> meter ~id:"F5" (fun () -> Fig5.run Fig5.default_params));
    ( "F6",
      fun () ->
        meter ~id:"F6" (fun () ->
            if quick then Fig6.run ~iterations:1 ~work_ms:[ 0.; 20. ] ()
            else Fig6.run ()) );
    ( "L1",
      fun () ->
        meter ~id:"L1" (fun () ->
            if quick then Latency.run_one ~iterations:10 Runtime.Offload
            else List.hd (Latency.run ())) );
    ( "B1",
      fun () ->
        meter ~id:"B1" (fun () ->
            if quick then
              Bandwidth.run_one ~sizes:[ 65_536 ] ~count:8 Runtime.Offload
            else List.hd (Bandwidth.run ())) );
    ( "S1",
      fun () ->
        meter ~id:"S1" (fun () ->
            if quick then Scaling.run_memory ~job_sizes:[ 8 ] ()
            else Scaling.run_memory ()) );
    ( "S2",
      fun () ->
        meter ~id:"S2" (fun () ->
            if quick then Scaling.run_collectives ~node_counts:[ 16; 64 ] ()
            else Scaling.run_collectives ()) );
    ( "S3",
      fun () ->
        meter ~id:"S3" (fun () ->
            if quick then Scaling.run_perf ~node_counts:[ 64; 256 ] ()
            else Scaling.run_perf ()) );
    ("A1", fun () -> meter ~id:"A1" (fun () -> Drops.run ()));
    ( "A2",
      fun () ->
        meter ~id:"A2" (fun () ->
            if quick then Ablation.run_threshold ~sizes:[ 32_768; 131_072 ] ()
            else Ablation.run_threshold ()) );
    ( "R1",
      fun () ->
        meter ~id:"R1" (fun () ->
            if quick then
              Rel_loss_sweep.run ~losses:[ 0.; 0.05 ] ~seeds:[ 1 ] ~msgs:50 ()
            else Rel_loss_sweep.run ()) );
    ("C1", fun () -> meter ~id:"C1" (fun () -> Crash_restart.run ()));
  ]

let all ?(quick = false) () = List.map (fun (_, f) -> f ()) (runners ~quick)
let ids = List.map fst (runners ~quick:true)

let pp ppf records =
  Format.fprintf ppf "%-6s %-10s %-12s %-8s %-14s %-14s %-14s@." "id"
    "wall(s)" "sim-events" "fibers" "sim-time(us)" "events/sec" "peak-heap(w)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-6s %-10.4f %-12d %-8d %-14.1f %-14.0f %-14d@."
        r.id r.wall_s r.sim_events r.fibers r.sim_time_us r.events_per_sec
        r.peak_heap_words)
    records

(* {2 JSON} — hand-rolled both ways; the format is the fixed shape below,
   and the reader is a small recursive-descent parser that accepts any
   JSON but only extracts that shape. No dependency needed. *)

let to_json records =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"portals-bench/1\",\n  \"records\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"id\": %S, \"wall_s\": %.6f, \"sim_events\": %d, \"fibers\": \
            %d, \"sim_time_us\": %.3f, \"events_per_sec\": %.1f, \
            \"peak_heap_words\": %d}%s\n"
           r.id r.wall_s r.sim_events r.fibers r.sim_time_us r.events_per_sec
           r.peak_heap_words
           (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | c -> fail (Printf.sprintf "unsupported escape \\%C" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or }"
        in
        J_obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        J_list (elements [])
      end
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_json_string text =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | json -> (
    let field name = function
      | J_obj kvs -> List.assoc_opt name kvs
      | _ -> None
    in
    let num name obj =
      match field name obj with Some (J_num f) -> Some f | _ -> None
    in
    let record_of = function
      | J_obj _ as obj -> (
        match (field "id" obj, num "wall_s" obj, num "sim_events" obj) with
        | Some (J_str id), Some wall_s, Some ev ->
          Some
            {
              id;
              wall_s;
              sim_events = int_of_float ev;
              fibers =
                int_of_float (Option.value ~default:0. (num "fibers" obj));
              sim_time_us = Option.value ~default:0. (num "sim_time_us" obj);
              events_per_sec =
                Option.value ~default:0. (num "events_per_sec" obj);
              peak_heap_words =
                int_of_float
                  (Option.value ~default:0. (num "peak_heap_words" obj));
            }
        | _ -> None)
      | _ -> None
    in
    match field "records" json with
    | Some (J_list items) -> (
      let records = List.filter_map record_of items in
      match records with
      | [] -> Error "no valid records"
      | records -> Ok records)
    | _ -> Error "missing \"records\" array")

let write_json ~path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json records))

let read_json ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_json_string text

type regression = {
  r_id : string;
  r_baseline : float;
  r_current : float;
  r_ratio : float;
}

(* The gate compares events/sec only: it is the one throughput field that
   is meaningful across code versions (wall time alone moves with the
   event count, and the sim-side fields are not performance). Records
   whose runs process no events (the wire-format tables) have no
   throughput, and runs under [min_gated_events] finish in microseconds —
   their events/sec is timer noise; both are skipped, as are ids missing
   from either side. *)
let min_gated_events = 1000

let compare_baseline ~baseline ~current ~tolerance_pct =
  let floor_frac = 1. -. (tolerance_pct /. 100.) in
  List.filter_map
    (fun cur ->
      match List.find_opt (fun b -> b.id = cur.id) baseline with
      | None -> None
      | Some base ->
        if
          base.events_per_sec <= 0.
          || cur.events_per_sec <= 0.
          || base.sim_events < min_gated_events
          || cur.sim_events < min_gated_events
        then None
        else begin
          let ratio = cur.events_per_sec /. base.events_per_sec in
          if ratio < floor_frac then
            Some
              {
                r_id = cur.id;
                r_baseline = base.events_per_sec;
                r_current = cur.events_per_sec;
                r_ratio = ratio;
              }
          else None
        end)
    current

let pp_regressions ppf regs =
  List.iter
    (fun r ->
      Format.fprintf ppf
        "PERF REGRESSION %s: %.0f events/sec vs baseline %.0f (%.0f%%)@."
        r.r_id r.r_current r.r_baseline (100. *. r.r_ratio))
    regs
