(** Regeneration code for every table and figure of the paper, plus the
    ablations DESIGN.md calls out. One module per experiment; the bench
    harness ([bench/main.ml]) and the CLI ([bin/]) drive these. *)

module Fig5 = Fig5
module Fig6 = Fig6
module Latency = Latency
module Bandwidth = Bandwidth
module Tables = Tables
module Protocols = Protocols
module Translation = Translation
module Scaling = Scaling
module Drops = Drops
module Ablation = Ablation
module Rel_loss_sweep = Rel_loss_sweep
module Crash_restart = Crash_restart
module Perf = Perf
module Congestion = Congestion
module Matrix = Matrix
module Rma = Rma
module Chaos = Chaos
module Par = Par
module Coll = Coll
