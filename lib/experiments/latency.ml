open Sim_engine
module P = Portals

type row = { placement : string; rtt_us : float; one_way_us : float }

let pt_bench = 8

(* Catch-all target structures: every incoming put lands in [buffer] and
   logs to a fresh EQ. *)
let attach_echo ni buffer =
  let eqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni ~capacity:128) in
  let eqq = P.Errors.ok_exn ~op:"eq" (P.Ni.eq ni eqh) in
  let meh =
    P.Errors.ok_exn ~op:"me"
      (P.Ni.me_attach ni ~portal_index:pt_bench ~match_id:P.Match_id.any
         ~match_bits:P.Match_bits.zero ~ignore_bits:P.Match_bits.all_ones ())
  in
  let options =
    { P.Md.default_options with P.Md.truncate = true; ack_disable = true }
  in
  let _mdh =
    P.Errors.ok_exn ~op:"md"
      (P.Ni.md_attach ni ~me:meh
         (P.Ni.md_spec ~options ~threshold:P.Md.Infinite ~eq:eqh buffer))
  in
  eqq

let send ni ~target payload =
  let mdh =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink payload))
  in
  P.Errors.ok_exn ~op:"put"
    (P.Ni.put ni ~md:mdh ~ack:false (P.Ni.op ~target ~portal_index:pt_bench ()))

let run_one ?profile ?label ?(message_size = 0) ?(iterations = 50) transport =
  let world = Runtime.create_world ?profile ~transport ~nodes:2 () in
  let ni0 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(0) () in
  let ni1 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(1) () in
  let eq0 = attach_echo ni0 (Bytes.create (max message_size 8)) in
  let eq1 = attach_echo ni1 (Bytes.create (max message_size 8)) in
  let payload = Bytes.create message_size in
  (* The measurement lives in the world's registry next to the fabric's
     own instruments; the row is read back out of the snapshot. *)
  let registry = Scheduler.metrics world.Runtime.sched in
  let rtt = Metrics.summary registry "latency.rtt_us" in
  Scheduler.spawn world.Runtime.sched ~name:"pinger" (fun () ->
      (* One warmup round trip, then the measured ones. *)
      for i = 0 to iterations do
        let start = Scheduler.now world.Runtime.sched in
        send ni0 ~target:world.Runtime.ranks.(1) payload;
        let _ev = P.Event.Queue.wait eq0 in
        if i > 0 then
          Metrics.observe rtt
            (Time_ns.to_us (Time_ns.sub (Scheduler.now world.Runtime.sched) start))
      done);
  Scheduler.spawn world.Runtime.sched ~name:"ponger" (fun () ->
      for _ = 0 to iterations do
        let _ev = P.Event.Queue.wait eq1 in
        send ni1 ~target:world.Runtime.ranks.(0) payload
      done);
  Runtime.run world;
  let mean =
    match Metrics.Snapshot.find (Metrics.snapshot registry) "latency.rtt_us" with
    | Some (Metrics.Snapshot.Summary { mean; _ }) -> mean
    | _ -> 0.
  in
  {
    placement =
      (match label with
      | Some l -> l
      | None -> Runtime.transport_kind_name transport);
    rtt_us = mean;
    one_way_us = mean /. 2.;
  }

let run ?message_size ?iterations () =
  let rows =
    List.map
      (fun transport -> run_one ?message_size ?iterations transport)
      [ Runtime.Offload; Runtime.Kernel_interrupt; Runtime.Rtscts ]
    @ [
        run_one ?message_size ?iterations
          ~profile:Simnet.Profile.asci_red_puma ~label:"puma/asci-red"
          Runtime.Kernel_interrupt;
        run_one ?message_size ?iterations
          ~profile:Simnet.Profile.tcp_reference ~label:"tcp-reference"
          Runtime.Rtscts;
      ]
  in
  List.sort (fun a b -> compare a.rtt_us b.rtt_us) rows

let pp ppf rows =
  Format.fprintf ppf "Zero-length ping-pong latency:@.";
  Format.fprintf ppf "%-20s %-12s %-12s@." "placement" "rtt(us)" "half-rtt(us)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-20s %-12.2f %-12.2f@." r.placement r.rtt_us
        r.one_way_us)
    rows
