open Sim_engine

type params = {
  backend : [ `Portals | `Gm ];
  transport : Runtime.transport_kind;
  message_size : int;
  batch : int;
  iterations : int;
  work : Time_ns.t;
  tests_during_work : int;
}

let default_params =
  {
    backend = `Portals;
    transport = Runtime.Rtscts;
    message_size = 50_000;
    batch = 10;
    iterations = 4;
    work = Time_ns.zero;
    tests_during_work = 0;
  }

type result = {
  mean_wait : float;
  max_wait : float;
  mean_work_elapsed : float;
  metrics : Metrics.Snapshot.t;
  spans : Trace.span list;
}

let run ?(capture_trace = false) p =
  let world = Runtime.create_world ~transport:p.transport ~nodes:2 () in
  let sched = world.Runtime.sched in
  let registry = Scheduler.metrics sched in
  (* This world's snapshot is the figure's data: record the EQ-depth and
     protocol time-series, not just the counters (every shard's registry
     in a parallel world; there is exactly one sequentially). *)
  Array.iter
    (fun s -> Metrics.set_detail (Scheduler.metrics s) true)
    (Runtime.shard_scheds world);
  if capture_trace then Trace.enable (Scheduler.trace sched);
  let endpoints =
    Array.init 2 (fun rank ->
        let tp = Runtime.transport_of_rank world rank in
        match p.backend with
        | `Portals -> Mpi.create_portals tp ~ranks:world.Runtime.ranks ~rank ()
        | `Gm -> Mpi.create_gm tp ~ranks:world.Runtime.ranks ~rank ())
  in
  let worker = 1 in
  (* The measured quantities live in the worker's shard registry
     alongside the fabric's own instruments, so one merged snapshot
     carries the whole run. *)
  let worker_registry = Scheduler.metrics (Runtime.sched_of_rank world worker) in
  let wait_stats = Metrics.summary worker_registry "fig.wait_us" in
  let work_stats = Metrics.summary worker_registry "fig.work_us" in
  Runtime.spawn_ranks world (fun ~rank ->
      let ep = endpoints.(rank) in
      let peer = 1 - rank in
      (* All in-fiber clock reads go to this rank's own shard. *)
      let sched = Runtime.sched_of_rank world rank in
      let cpu = Runtime.host_cpu_of_rank world rank in
      for _iter = 1 to p.iterations do
        (* pre-post several non-blocking receives *)
        let recvs =
          List.init p.batch (fun i ->
              Mpi.irecv ep ~source:peer ~tag:i (Bytes.create p.message_size))
        in
        (* barrier *)
        Mpi.barrier ep;
        (* post a batch of sends *)
        let sends =
          List.init p.batch (fun i ->
              Mpi.isend ep ~dst:peer ~tag:i (Bytes.create p.message_size))
        in
        (* work (fixed loop iterations) — only the working node *)
        if rank = worker && Time_ns.compare p.work Time_ns.zero > 0 then begin
          let started = Scheduler.now sched in
          if p.tests_during_work > 0 then begin
            let slices = p.tests_during_work + 1 in
            let slice = Time_ns.ns (p.work / slices) in
            for s = 1 to slices do
              Cpu.compute cpu slice;
              if s < slices then Mpi.progress ep
            done
          end
          else Cpu.compute cpu p.work;
          Metrics.observe work_stats
            (Time_ns.to_us (Time_ns.sub (Scheduler.now sched) started))
        end;
        (* time A; wait for the batch; time B *)
        let time_a = Scheduler.now sched in
        ignore (Mpi.waitall ep (sends @ recvs));
        let time_b = Scheduler.now sched in
        if rank = worker then
          Metrics.observe wait_stats (Time_ns.to_us (Time_ns.sub time_b time_a))
      done;
      Mpi.barrier ep;
      Mpi.finalize ep);
  Runtime.run world;
  let metrics =
    if Runtime.domains world = 1 then Metrics.snapshot registry
    else begin
      (* Merge the per-shard registries: counters and summaries
         accumulate, so job-wide totals match the sequential run. *)
      let merged = Metrics.create ~detail:true () in
      Array.iter
        (fun s -> Metrics.absorb merged (Metrics.snapshot (Scheduler.metrics s)))
        (Runtime.shard_scheds world);
      Metrics.snapshot merged
    end
  in
  let summary_of name =
    match Metrics.Snapshot.find metrics name with
    | Some (Metrics.Snapshot.Summary { mean; max; _ }) -> (mean, max)
    | _ -> (0., 0.)
  in
  let mean_wait, max_wait = summary_of "fig.wait_us" in
  let mean_work_elapsed, _ = summary_of "fig.work_us" in
  {
    mean_wait;
    max_wait;
    mean_work_elapsed;
    metrics;
    spans = Trace.spans (Scheduler.trace sched);
  }
