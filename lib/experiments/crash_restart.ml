open Sim_engine

(* Crash–restart recovery, Portals vs GM.

   Two nodes. Rank 0 (node 0, the survivor) streams small eager messages
   to rank 1 (node 1, the victim) at a fixed cadence. Mid-run, node 1
   crash-stops — its rank fiber is killed, its procs deregister, its
   in-flight traffic is lost — and later restarts in a fresh incarnation,
   whereupon the restarted process re-creates its endpoint and resumes
   receiving. Both backends face the {e identical} schedule; a liveness
   monitor (heartbeats over the same fabric) runs in both worlds so the
   environments match.

   The asymmetry under test (§3's argument for connectionless protocol
   building blocks): the Portals survivor holds no per-peer connection
   state, so the moment the victim is back, traffic flows — zero action
   at rank 0. The GM survivor's token/handshake state for the victim died
   with it: sends raise [Mpi.Peer_failed] until the liveness monitor
   notices the recovery and the survivor reconnects, and everything
   attempted in between is lost. *)

type backend_result = {
  backend : string;
  sent : int;  (** Send attempts at rank 0 (including failed ones). *)
  delivered : int;  (** Received by rank 1, both incarnations. *)
  lost : int;
  send_errors : int;  (** [Mpi.Peer_failed] raised at the sender. *)
  reconnects : int;
  recovery_us : float;
      (** First delivery to the restarted rank 1, relative to the
          restart; negative if nothing arrived after the restart. *)
  stale_fenced : int;  (** NI drops with reason [stale_incarnation]. *)
  drops_crashed : int;  (** Fabric drops from down nodes / crash epochs. *)
}

type config = {
  msgs : int;
  interval : Time_ns.t;
  size : int;
  down_at : Time_ns.t;
  up_at : Time_ns.t;
  horizon : Time_ns.t;
}

let default_config =
  {
    msgs = 80;
    interval = Time_ns.us 50.;
    size = 256;
    down_at = Time_ns.us 1000.;
    up_at = Time_ns.us 2200.;
    horizon = Time_ns.us 6000.;
  }

let victim_nid = 1

let sum_stale_drops sched =
  let slug = Portals.Ni.drop_reason_slug Portals.Ni.Stale_incarnation in
  let snap = Metrics.snapshot (Scheduler.metrics sched) in
  List.fold_left
    (fun acc (e : Metrics.Snapshot.entry) ->
      match e.Metrics.Snapshot.value with
      | Metrics.Snapshot.Gauge v
        when List.mem ("reason", slug) e.Metrics.Snapshot.labels ->
        acc + int_of_float v
      | _ -> acc)
    0
    (Metrics.Snapshot.filter snap "ni.drops")

let run_backend ~(cfg : config) ~seed backend =
  let world = Runtime.create_world ~nodes:2 ~seed () in
  let sched = world.Runtime.sched in
  let fabric = world.Runtime.fabric in
  let tp = world.Runtime.transport in
  let ranks = world.Runtime.ranks in
  Simnet.Fabric.apply_crash_schedule fabric
    (Simnet.Fault.crash_schedule
       [ (victim_nid, cfg.down_at, Some cfg.up_at) ]);
  let make_ep rank =
    match backend with
    | `Portals -> Mpi.create_portals tp ~ranks ~rank ()
    | `Gm -> Mpi.create_gm tp ~ranks ~rank ()
  in
  let sent = ref 0 in
  let send_errors = ref 0 in
  let reconnects = ref 0 in
  let delivered = ref 0 in
  let recovery = ref (-1.) in
  (* The victim's receive loop; run by both of its incarnations. Blocks
     in recv between arrivals — the crash kills it there. *)
  let rank1_main ~second_life ep =
    let buf = Bytes.create cfg.size in
    let rec loop () =
      let _st = Mpi.recv ep ~source:0 buf in
      delivered := !delivered + 1;
      if second_life && !recovery < 0. then
        recovery :=
          Time_ns.to_us (Time_ns.sub (Scheduler.now sched) cfg.up_at);
      loop ()
    in
    (try loop () with Mpi.Peer_failed _ -> ())
  in
  let ep0 = make_ep 0 in
  let ep1 = make_ep 1 in
  Scheduler.spawn sched ~name:"rank0" ~domain:0 (fun () ->
      let payload = Bytes.create cfg.size in
      for i = 1 to cfg.msgs do
        Scheduler.delay sched cfg.interval;
        incr sent;
        try Mpi.send ep0 ~dst:1 ~tag:i payload
        with Mpi.Peer_failed _ -> incr send_errors
      done);
  Scheduler.spawn sched ~name:"rank1" ~domain:victim_nid (fun () ->
      rank1_main ~second_life:false ep1);
  (* The restarted node boots its process back up: a fresh endpoint, a
     fresh fiber — the victim's side of recovery, common to both
     backends. *)
  Scheduler.at sched (Time_ns.add cfg.up_at (Time_ns.ns 1)) (fun () ->
      let ep1' = make_ep 1 in
      Scheduler.spawn sched ~name:"rank1-restarted" ~domain:victim_nid
        (fun () -> rank1_main ~second_life:true ep1'));
  (* Identical liveness monitor in both worlds. Only the GM survivor acts
     on it: recovery detection triggers the reconnection its dead
     connection state demands. The Portals survivor needs no hook. *)
  let liveness =
    Runtime.Liveness.start ~period:(Time_ns.us 100.) ~timeout:(Time_ns.us 350.)
      ~until:cfg.horizon world
  in
  (match backend with
  | `Portals -> ()
  | `Gm ->
    Runtime.Liveness.on_up liveness (fun nid ->
        if nid = victim_nid then begin
          incr reconnects;
          Mpi.reconnect ep0 ~rank:1
        end));
  Runtime.run ~until:cfg.horizon world;
  let fstats = Simnet.Fabric.stats fabric in
  {
    backend = (match backend with `Portals -> "portals" | `Gm -> "gm");
    sent = !sent;
    delivered = !delivered;
    lost = !sent - !delivered;
    send_errors = !send_errors;
    reconnects = !reconnects;
    recovery_us = !recovery;
    stale_fenced = sum_stale_drops sched;
    drops_crashed = fstats.Simnet.Fabric.drops_crashed;
  }

let run ?(config = default_config) ?(seed = 0) () =
  [ run_backend ~cfg:config ~seed `Portals; run_backend ~cfg:config ~seed `Gm ]

let pp_config ppf (cfg : config) =
  Format.fprintf ppf
    "%d messages of %d B every %a; node %d down at %a, restarted at %a"
    cfg.msgs cfg.size Time_ns.pp cfg.interval victim_nid Time_ns.pp cfg.down_at
    Time_ns.pp cfg.up_at

let pp ppf rows =
  Format.fprintf ppf
    "Crash-restart recovery (one mid-run node restart, identical schedule):@.";
  Format.fprintf ppf "%-9s %-5s %-9s %-5s %-8s %-10s %-11s %-6s %s@." "backend"
    "sent" "delivered" "lost" "senderr" "reconnects" "recovery_us" "stale"
    "crashdrops";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-9s %-5d %-9d %-5d %-8d %-10d %-11.1f %-6d %d@."
        r.backend r.sent r.delivered r.lost r.send_errors r.reconnects
        r.recovery_us r.stale_fenced r.drops_crashed)
    rows
