open Sim_engine
module P = Portals

type row = { reason : string; count : int }

let pt_bench = 9

let bind_payload ni payload =
  P.Errors.ok_exn ~op:"bind"
    (P.Ni.md_bind ni
       (P.Ni.md_spec
          ~options:{ P.Md.default_options with P.Md.ack_disable = true }
          ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink payload))

let put ni ~target ~portal_index ~cookie payload =
  let mdh = bind_payload ni payload in
  P.Errors.ok_exn ~op:"put"
    (P.Ni.put ni ~md:mdh ~ack:false (P.Ni.op ~target ~portal_index ~cookie ()))

let run () =
  let world = Runtime.create_world ~nodes:2 () in
  let tp = world.Runtime.transport in
  let r0 = world.Runtime.ranks.(0) and r1 = world.Runtime.ranks.(1) in
  let ni0 = P.Ni.create tp ~id:r0 () in
  let ni1 = P.Ni.create tp ~id:r1 () in
  (* A small target region so over-long sends have somewhere to fail. *)
  let meh =
    P.Errors.ok_exn ~op:"me"
      (P.Ni.me_attach ni1 ~portal_index:pt_bench ~match_id:P.Match_id.any
         ~match_bits:P.Match_bits.zero ~ignore_bits:P.Match_bits.all_ones ())
  in
  let _ =
    P.Errors.ok_exn ~op:"md"
      (P.Ni.md_attach ni1 ~me:meh (P.Ni.md_spec (Bytes.create 16)))
  in
  (* ACL entry 3 on ni1: only process 9:9 may use it; entry 4: portal 5 only. *)
  (match
     P.Acl.set (P.Ni.acl ni1) 3
       {
         P.Acl.allowed_id = P.Match_id.of_proc (Simnet.Proc_id.make ~nid:9 ~pid:9);
         allowed_portal = None;
       }
   with
  | Ok () -> ()
  | Error _ -> failwith "acl set");
  (match
     P.Acl.set (P.Ni.acl ni1) 4
       { P.Acl.allowed_id = P.Match_id.any; allowed_portal = Some 5 }
   with
  | Ok () -> ()
  | Error _ -> failwith "acl set");
  (* 1. malformed *)
  tp.Simnet.Transport.send ~src:r0 ~dst:r1 (Bytes.of_string "not a portals msg");
  (* 2. invalid portal index *)
  put ni0 ~target:r1 ~portal_index:4999 ~cookie:0 (Bytes.create 1);
  (* 3. bad cookie *)
  put ni0 ~target:r1 ~portal_index:pt_bench ~cookie:14 (Bytes.create 1);
  (* 4. acl id mismatch *)
  put ni0 ~target:r1 ~portal_index:pt_bench ~cookie:3 (Bytes.create 1);
  (* 5. acl portal mismatch *)
  put ni0 ~target:r1 ~portal_index:pt_bench ~cookie:4 (Bytes.create 1);
  (* 6. no match: too long for the 16-byte descriptor, no truncate *)
  put ni0 ~target:r1 ~portal_index:pt_bench ~cookie:0 (Bytes.create 64);
  (* 7. stray ack to a dead event queue *)
  let stray_put =
    P.Wire.put_request ~initiator:r1 ~target:r0 ~portal_index:0 ~cookie:0
      ~match_bits:P.Match_bits.zero ~offset:0 ~md_handle:P.Handle.none
      ~eq_handle:(P.Handle.of_wire 0x4242L) ~data:Bytes.empty ()
  in
  tp.Simnet.Transport.send ~src:r1 ~dst:r0
    (P.Wire.encode (P.Wire.ack_of_put stray_put ~mlength:0));
  (* 8. stray reply to a dead descriptor *)
  let stray_get =
    P.Wire.get_request ~initiator:r1 ~target:r0 ~portal_index:0 ~cookie:0
      ~match_bits:P.Match_bits.zero ~offset:0
      ~md_handle:(P.Handle.of_wire 0x2424L) ~rlength:0 ()
  in
  tp.Simnet.Transport.send ~src:r1 ~dst:r0
    (P.Wire.encode (P.Wire.reply_of_get stray_get ~mlength:0 ~data:Bytes.empty));
  (* 9. reply to a full event queue *)
  let full_eqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni0 ~capacity:1) in
  let full_eqq = P.Errors.ok_exn ~op:"eq" (P.Ni.eq ni0 full_eqh) in
  let gmd =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni0 (P.Ni.md_spec ~eq:full_eqh (Bytes.create 8)))
  in
  P.Errors.ok_exn ~op:"get"
    (P.Ni.get ni0 ~md:gmd (P.Ni.op ~target:r1 ~portal_index:pt_bench ()));
  ignore
    (P.Event.Queue.post full_eqq
       {
         P.Event.kind = P.Event.Put;
         initiator = r1;
         portal_index = 0;
         match_bits = P.Match_bits.zero;
         rlength = 0;
         mlength = 0;
         offset = 0;
         md_handle = P.Handle.none;
         md_user_ptr = 0;
         time = Time_ns.zero;
       });
  (* 10. stale incarnation: a put stamped by a previous life of its
     sender — as if node 0 sent it, crashed and restarted while the
     message was queued behind a slow wire. *)
  let stale_put =
    P.Wire.put_request ~incarnation:7 ~initiator:r0 ~target:r1 ~portal_index:pt_bench
      ~cookie:0 ~match_bits:P.Match_bits.zero ~offset:0
      ~md_handle:P.Handle.none ~eq_handle:P.Handle.none ~data:Bytes.empty ()
  in
  tp.Simnet.Transport.send ~src:r0 ~dst:r1 (P.Wire.encode stale_put);
  (* 11. atomic on a word that isn't word-aligned *)
  let amd =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni0 (P.Ni.md_spec (Bytes.create 8)))
  in
  P.Errors.ok_exn ~op:"atomic"
    (P.Ni.atomic ni0 ~md:amd ~aop:P.Wire.Fetch_add ~operand:1L
       (P.Ni.op ~target:r1 ~portal_index:pt_bench ~offset:4 ()));
  (* 12. stray fetched-value reply to a dead descriptor *)
  let stray_atomic =
    P.Wire.atomic_request ~aop:P.Wire.Fetch_add ~operand:1L ~initiator:r0
      ~target:r1 ~portal_index:0 ~cookie:0 ~match_bits:P.Match_bits.zero
      ~offset:0
      ~md_handle:(P.Handle.of_wire 0x4224L)
      ()
  in
  tp.Simnet.Transport.send ~src:r1 ~dst:r0
    (P.Wire.encode (P.Wire.atomic_reply_of_request stray_atomic ~fetched:0L));
  (* 13. fetched-value reply to a full event queue *)
  let afull_eqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni0 ~capacity:1) in
  let afull_eqq = P.Errors.ok_exn ~op:"eq" (P.Ni.eq ni0 afull_eqh) in
  let afmd =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni0 (P.Ni.md_spec ~eq:afull_eqh (Bytes.create 8)))
  in
  P.Errors.ok_exn ~op:"atomic"
    (P.Ni.atomic ni0 ~md:afmd ~aop:P.Wire.Fetch_add ~operand:1L
       (P.Ni.op ~target:r1 ~portal_index:pt_bench ()));
  ignore
    (P.Event.Queue.post afull_eqq
       {
         P.Event.kind = P.Event.Put;
         initiator = r1;
         portal_index = 0;
         match_bits = P.Match_bits.zero;
         rlength = 0;
         mlength = 0;
         offset = 0;
         md_handle = P.Handle.none;
         md_user_ptr = 0;
         time = Time_ns.zero;
       });
  (* 14. corrupted checksummed frame: encode under integrity, flip a
     payload bit in flight. The 0x31 frame self-describes, so the CRC is
     verified at the receiver even though the process-wide switch is back
     off by the time it lands. *)
  let corrupted =
    Simnet.Integrity.with_enabled true (fun () ->
        let put =
          P.Wire.put_request ~initiator:r0 ~target:r1 ~portal_index:pt_bench
            ~cookie:0 ~match_bits:P.Match_bits.zero ~offset:0
            ~md_handle:P.Handle.none ~eq_handle:P.Handle.none
            ~data:(Bytes.make 4 'x') ()
        in
        P.Wire.encode put)
  in
  Bytes.set_uint8 corrupted P.Wire.header_size
    (Bytes.get_uint8 corrupted P.Wire.header_size lxor 0x01);
  tp.Simnet.Transport.send ~src:r0 ~dst:r1 corrupted;
  (* 15. triggered chain firing into a vanished handle: the armed
     action's counter is freed before the trigger arrives. *)
  let tct = P.Errors.ok_exn ~op:"ct" (P.Ni.ct_alloc ni0) in
  let victim_ct = P.Errors.ok_exn ~op:"ct" (P.Ni.ct_alloc ni0) in
  P.Errors.ok_exn ~op:"arm"
    (P.Ni.ct_arm ni0 ~ct:tct ~threshold:1
       [ P.Ni.Triggered_ct_inc { ct = victim_ct; amount = 1 } ]);
  P.Errors.ok_exn ~op:"ct_free" (P.Ni.ct_free ni0 victim_ct);
  P.Errors.ok_exn ~op:"ct_inc" (P.Ni.ct_inc ni0 tct 1);
  (* 16. triggered put whose descriptor went inactive before the fire:
     threshold 0 exhausts the MD immediately. *)
  let dead_md =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni0
         (P.Ni.md_spec ~threshold:(P.Md.Count 0) ~unlink:P.Md.Retain
            (Bytes.create 8)))
  in
  let mct = P.Errors.ok_exn ~op:"ct" (P.Ni.ct_alloc ni0) in
  P.Errors.ok_exn ~op:"arm"
    (P.Ni.ct_arm ni0 ~ct:mct ~threshold:1
       [
         P.Ni.Triggered_put
           {
             md = dead_md;
             ack = false;
             length = None;
             op = P.Ni.op ~target:r1 ~portal_index:pt_bench ();
           };
       ]);
  P.Errors.ok_exn ~op:"ct_inc" (P.Ni.ct_inc ni0 mct 1);
  (* 17. chain completion into a full event queue: two chains on one
     counter share a 1-deep EQ; both fire on the same bump, the second
     completion event finds the queue full. *)
  let ch_eqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni0 ~capacity:1) in
  let ect = P.Errors.ok_exn ~op:"ct" (P.Ni.ct_alloc ni0) in
  let other_ct = P.Errors.ok_exn ~op:"ct" (P.Ni.ct_alloc ni0) in
  let inc = [ P.Ni.Triggered_ct_inc { ct = other_ct; amount = 1 } ] in
  P.Errors.ok_exn ~op:"arm" (P.Ni.ct_arm ni0 ~ct:ect ~eq:ch_eqh ~threshold:1 inc);
  P.Errors.ok_exn ~op:"arm" (P.Ni.ct_arm ni0 ~ct:ect ~eq:ch_eqh ~threshold:1 inc);
  P.Errors.ok_exn ~op:"ct_inc" (P.Ni.ct_inc ni0 ect 1);
  Runtime.run world;
  (* The table is read back out of the registry: each NI publishes an
     ["ni.drops"] probe per (proc, reason); summing over procs recovers
     the fabric-wide count per reason. *)
  let snap = Metrics.snapshot (Scheduler.metrics world.Runtime.sched) in
  let count_of reason =
    let slug = P.Ni.drop_reason_slug reason in
    List.fold_left
      (fun acc (e : Metrics.Snapshot.entry) ->
        match e.Metrics.Snapshot.value with
        | Metrics.Snapshot.Gauge v
          when List.mem ("reason", slug) e.Metrics.Snapshot.labels ->
          acc + int_of_float v
        | _ -> acc)
      0
      (Metrics.Snapshot.filter snap "ni.drops")
  in
  List.map
    (fun reason ->
      {
        reason = Format.asprintf "%a" P.Ni.pp_drop_reason reason;
        count = count_of reason;
      })
    P.Ni.all_drop_reasons

let pp ppf rows =
  Format.fprintf ppf "Dropped message accounting (section 4.8):@.";
  Format.fprintf ppf "%-44s %s@." "reason" "count";
  List.iter (fun r -> Format.fprintf ppf "%-44s %d@." r.reason r.count) rows
