(** PAR: the parallel-engine workload and determinism witness.

    A nearest-neighbour halo exchange on a 2-D torus, runnable at any
    domain count. Every delivery folds (src, dst, step, arrival time)
    into an order-insensitive digest, so the {!canonical} line is a pure
    function of the simulated history — identical across [--domains]
    values by the engine's determinism contract ({!Sim_engine.Shard}),
    and diffed by the CI parallel-determinism gate. The same workload is
    metered as [PAR.seq] / [PAR.par4] for the multicore speedup gate. *)

type result = {
  nodes : int;
  dims : int list;  (** Torus dimensions actually used. *)
  steps : int;
  domains : int;  (** Shards actually used (capped at [nodes]). *)
  delivered : int;
  expected : int;
  errors : int;  (** Damaged or misattributed payloads accepted. *)
  digest : int;  (** Order-insensitive fold of every delivery. *)
  sim_time_us : float;
  window_rounds : int;  (** 0 when sequential. *)
  lookahead_us : float;  (** 0 when sequential. *)
  wall_s : float;
}

val run :
  ?nodes:int -> ?steps:int -> ?domains:int -> ?seed:int -> unit -> result
(** One exchange: [nodes] (default 256, >= 9) on the fitted 2-D torus,
    [steps] send rounds (default 8) to each torus neighbour. [domains]
    and [seed] default to the {!Runtime.set_run_env} values. The run
    honours the process-wide fault environment, so a faulty world
    exercises the sharded reliability shim too. *)

val ok : result -> bool
(** Every expected payload arrived, none damaged. *)

val canonical : result -> string
(** The determinism line: nodes, steps, deliveries, digest, final sim
    time — everything in it independent of the domain count. *)

val pp : Format.formatter -> result -> unit

val selfcheck :
  ?nodes:int ->
  ?steps:int ->
  ?domains:int ->
  ?seed:int ->
  unit ->
  (result * result, string) Result.t
(** Run the identical world at [--domains 1] and [domains] (default 4)
    and compare canonical lines; [Error] describes any divergence or
    incomplete delivery. *)

(** {1 Perf records} *)

val record_seq : string
(** ["PAR.seq"] — the workload at 1 domain. *)

val record_par4 : string
(** ["PAR.par4"] — the workload at 4 domains. *)

val perf_records : ?quick:bool -> ?seed:int -> unit -> Perf.record list

val speedup : Perf.record list -> float option
(** [events_per_sec] of [PAR.par4] over [PAR.seq], when both are present
    with non-zero rates. The multicore CI lane gates this at >= 2x; on
    one hardware core it is expectedly < 1. *)
