(** Congestion experiment (N1): traffic patterns across interconnect
    topologies.

    The paper's scalability argument (§2) is that connectionless Portals
    survives machines the size of Cplant — an 1800-node {e mesh}, where
    messages share links and contend. This experiment quantifies what
    the fully-connected seed fabric hides: it drives the same two
    traffic patterns over several {!Simnet.Topology} shapes and reports
    aggregate goodput, the peak hop-link queue depth, and congestion
    drops.

    {ul
    {- {e all-to-all}: every node streams to every other node — the
       bisection-limited worst case (an FFT transpose, or MPI_Alltoall).}
    {- {e nearest-neighbor}: every node streams only to its topology
       neighbours — the halo-exchange pattern
       ([examples/halo_exchange.ml]) that meshes are built for. On
       shapes without a grid (full, fat-tree), "neighbour" means the
       ±1 ring peers.}}

    On a shared-link topology all-to-all goodput collapses (each byte
    crosses ~√n links, all contended) while nearest-neighbor keeps every
    link private to one flow; on the seed's full topology the two are
    indistinguishable. That gap is the experiment's headline number. *)

type pattern = All_to_all | Nearest_neighbor

val pattern_name : pattern -> string

type row = {
  c_topology : string;  (** {!Simnet.Topology.describe} of the shape. *)
  c_pattern : string;
  c_messages : int;  (** Messages delivered. *)
  c_bytes : int;  (** Payload bytes delivered. *)
  c_elapsed_us : float;  (** First injection to last delivery. *)
  c_goodput_mbs : float;  (** Delivered payload / elapsed, MB/s. *)
  c_peak_queue : int;  (** Deepest hop-link queue seen anywhere. *)
  c_drops : int;  (** Congestion drops (only with a queue limit). *)
}

val default_topologies : string list
(** [["full"; "ring"; "torus2d"; "fattree"]]. *)

val run :
  ?nodes:int ->
  ?topologies:string list ->
  ?patterns:pattern list ->
  ?msgs_per_peer:int ->
  ?size:int ->
  ?queue_limit:int ->
  ?seed:int ->
  ?registry:Sim_engine.Metrics.t ->
  unit ->
  row list
(** [run ()] sweeps every (topology, pattern) pair on a fresh
    [nodes]-node world (default 16 nodes, 8 messages of 4096 B per
    peer). Each world's metrics — including the per-link
    ["link.queue_depth"] / ["link.flows"] instruments — are absorbed
    into [registry] (when given) under [("topology", _)] and
    [("pattern", _)] labels. Deterministic in [seed]. *)

val pp : Format.formatter -> row list -> unit
