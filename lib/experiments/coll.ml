open Sim_engine
module C = Collectives
module P = Portals

type cell = {
  c_impl : C.impl;
  c_topology : string;
  c_nodes : int;
  c_busy : bool;
  c_barrier_us : float;
  c_bcast_us : float;
  c_allreduce_us : float;
}

type t = { cells : cell list; metrics : Metrics.Snapshot.t }

let default_plan =
  [ ("torus2d", [ 16; 32; 64 ]); ("fattree", [ 16; 54 ]); ("ring", [ 8; 16; 32 ]) ]

let quick_plan = [ ("torus2d", [ 16 ]); ("ring", [ 8 ]) ]

(* The compute loop's slice length. Long against the host engine's
   per-hop charge (2 us), so a tree hop landing on a busy CPU waits a
   substantial fraction of a slice before its protocol work runs. *)
let busy_slice = Time_ns.us 50.

(* One world: [nodes] ranks over [topology], each rank running [f] over
   an endpoint of [impl]. With [busy], every node's host CPU also runs a
   compute fiber in [busy_slice] pieces until its rank's main returns —
   the application the paper's §5.1 bypass argument protects. The host
   engine always charges its per-hop cost to the rank's CPU; the NIC
   engine never touches it, which is the measured contrast. *)
let with_world ~impl ~topology ~nodes ~busy ~seed f =
  let kind = Simnet.Topology.of_spec ~nodes topology in
  let world = Runtime.create_world ~nodes ~topology:kind ~seed () in
  let ranks = world.Runtime.ranks in
  let quit = Array.make (Array.length ranks) false in
  if busy then
    Array.iteri
      (fun r _ ->
        let sched = Runtime.sched_of_rank world r in
        let cpu = Runtime.host_cpu_of_rank world r in
        Scheduler.spawn sched (fun () ->
            while not quit.(r) do
              Cpu.compute cpu busy_slice;
              (* Let a queued protocol charge take the CPU between
                 slices — without this the loop re-acquires at the same
                 instant and starves the host engine's hops forever. *)
              Scheduler.yield sched
            done))
      ranks;
  Runtime.spawn_ranks world (fun ~rank ->
      let ni =
        P.Ni.create (Runtime.transport_of_rank world rank) ~id:ranks.(rank) ()
      in
      let coll =
        C.create_impl impl ni ~ranks ~rank
          ~host_cpu:(Runtime.host_cpu_of_rank world rank) ()
      in
      f world coll ~rank;
      quit.(rank) <- true);
  Runtime.run world;
  world

(* Mean per-call latency of the three tree collectives in one world:
   a sync barrier, rank 0 stamps the start, [iters] back-to-back calls,
   every rank stamps its own finish; the cell's number is
   (latest finish - start) / iters. The sync run is outside the window,
   so a busy host pays only for the measured calls. *)
let measure ?(iters = 8) ~impl ~topology ~nodes ~busy ~seed () =
  let starts = Array.make 3 Time_ns.zero in
  let finishes = Array.init 3 (fun _ -> Array.make nodes Time_ns.zero) in
  let world =
    with_world ~impl ~topology ~nodes ~busy ~seed (fun world coll ~rank ->
        let sched = Runtime.sched_of_rank world rank in
        let payload =
          C.bytes_of_floats (Array.init 8 (fun i -> float_of_int (rank + i)))
        in
        let timed op f =
          C.any_barrier coll;
          if rank = 0 then starts.(op) <- Scheduler.now sched;
          for _ = 1 to iters do
            f ()
          done;
          finishes.(op).(rank) <- Scheduler.now sched
        in
        timed 0 (fun () -> C.any_barrier coll);
        timed 1 (fun () -> ignore (C.any_bcast coll ~root:0 payload));
        timed 2 (fun () ->
            ignore (C.any_allreduce coll ~op:C.sum_floats payload)))
  in
  ignore world;
  let lat op =
    let finish =
      Array.fold_left
        (fun acc t -> if Time_ns.compare t acc > 0 then t else acc)
        Time_ns.zero finishes.(op)
    in
    Time_ns.to_us (Time_ns.sub finish starts.(op)) /. float_of_int iters
  in
  {
    c_impl = impl;
    c_topology = topology;
    c_nodes = nodes;
    c_busy = busy;
    c_barrier_us = lat 0;
    c_bcast_us = lat 1;
    c_allreduce_us = lat 2;
  }

let run ?(iters = 8) ?(quick = false) ?(seed = 0) ?plan () =
  let plan =
    match plan with
    | Some p -> p
    | None -> if quick then quick_plan else default_plan
  in
  let registry = Metrics.create ~detail:true () in
  let cells =
    List.concat_map
      (fun (topology, node_counts) ->
        List.concat_map
          (fun nodes ->
            List.concat_map
              (fun busy ->
                List.map
                  (fun impl ->
                    let cell =
                      measure ~iters ~impl ~topology ~nodes ~busy ~seed ()
                    in
                    let labels =
                      [
                        ("impl", C.impl_name impl);
                        ("topology", topology);
                        ("host", if busy then "busy" else "idle");
                      ]
                    in
                    List.iter
                      (fun (name, y) ->
                        Metrics.push
                          (Metrics.series registry ~labels name)
                          ~x:(float_of_int nodes) ~y)
                      [
                        ("coll.barrier_us", cell.c_barrier_us);
                        ("coll.bcast_us", cell.c_bcast_us);
                        ("coll.allreduce_us", cell.c_allreduce_us);
                      ];
                    cell)
                  [ C.Host; C.Nic_offload ])
              [ false; true ])
          node_counts)
      plan
  in
  { cells; metrics = Metrics.snapshot registry }

let pp ppf t =
  Format.fprintf ppf
    "NIC-offloaded vs host-driven collectives: mean per-call latency (us)@.";
  Format.fprintf ppf "%-10s %-7s %-5s %-6s %-12s %-12s %-12s@." "topology"
    "nodes" "host" "impl" "barrier" "bcast" "allreduce";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-10s %-7d %-5s %-6s %-12.2f %-12.2f %-12.2f@."
        c.c_topology c.c_nodes
        (if c.c_busy then "busy" else "idle")
        (C.impl_name c.c_impl) c.c_barrier_us c.c_bcast_us c.c_allreduce_us)
    t.cells

(* Cross-engine equality: the mixed workload of the conformance suite in
   miniature — every rank's concatenated observable bytes must agree
   between engines on the same world. *)
let workload_bytes impl ~nodes ~topology ~seed =
  let out = Array.make nodes "" in
  let _ =
    with_world ~impl ~topology ~nodes ~busy:false ~seed
      (fun _ coll ~rank ->
        let n = nodes in
        let buf = Buffer.create 128 in
        for round = 1 to 4 do
          let mine =
            C.bytes_of_floats
              [| float_of_int ((rank + 1) * round); 0.5 *. float_of_int round |]
          in
          Buffer.add_bytes buf (C.any_allreduce coll ~op:C.sum_floats mine);
          let root = round mod n in
          let payload =
            if rank = root then
              Bytes.of_string (Printf.sprintf "coll-%d" round)
            else Bytes.empty
          in
          Buffer.add_bytes buf (C.any_bcast coll ~root payload);
          C.any_barrier coll;
          (match
             C.any_reduce coll ~root ~op:C.sum_floats
               (C.bytes_of_floats [| float_of_int rank |])
           with
          | Some b -> Buffer.add_bytes buf b
          | None -> ())
        done;
        out.(rank) <- Buffer.contents buf)
  in
  out

let check ?(nodes = 16) ?(topology = "torus2d:4x4") ?(seed = 7) () =
  workload_bytes C.Host ~nodes ~topology ~seed
  = workload_bytes C.Nic_offload ~nodes ~topology ~seed

(* Perf records: each id meters one collective hammered on a 16-node
   torus with busy host CPUs — the regime the offload exists for. *)
let record_id impl op = Printf.sprintf "COLL.%s.%s" (C.impl_name impl) op

let perf_records ?(quick = false) ?(seed = 0) () =
  let iters = if quick then 8 else 32 in
  let drive impl f =
    ignore
      (with_world ~impl ~topology:"torus2d" ~nodes:16 ~busy:true ~seed
         (fun _ coll ~rank ->
           ignore rank;
           for _ = 1 to iters do
             f coll
           done))
  in
  let payload = C.bytes_of_floats (Array.init 8 float_of_int) in
  List.concat_map
    (fun impl ->
      [
        Perf.meter ~id:(record_id impl "barrier") (fun () ->
            drive impl (fun coll -> C.any_barrier coll));
        Perf.meter ~id:(record_id impl "allreduce") (fun () ->
            drive impl (fun coll ->
                ignore (C.any_allreduce coll ~op:C.sum_floats payload)));
      ])
    [ C.Host; C.Nic_offload ]
