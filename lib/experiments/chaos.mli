(** Invariant-checked chaos campaigns (CH).

    Every cell of a corruption x delay x partition x crash x loss grid
    ({!Reliability.Chaos}) runs two seeded worlds and asserts what must
    survive the abuse:

    {ul
    {- {e stream} — per-pair message streams over the reliability shim:
       delivered exactly once, in order, byte-identical (corruption must
       degrade to loss, never silent damage), with a liveness monitor
       asserting a partitioned-but-alive peer is reported partitioned,
       not crashed, and that suspicion converges after the heal;}
    {- {e rma} — concurrent one-sided fetch_adds and CAS slot claims
       that must stay linearizable under the same faults.}}

    A cell passes when its violation list is empty; the campaign passes
    when every cell does. Deterministic per seed. *)

type report = {
  cell : Reliability.Chaos.cell;
  violations : string list;  (** Empty iff the cell passed. *)
  delivered : int;  (** Stream payloads accepted exactly once. *)
  corrupts_injected : int;
  delays_injected : int;
  drops_partitioned : int;
  rel_corrupt_drops : int;  (** Shim frames discarded on bad CRC. *)
  checksum_drops : int;  (** NI-level [Checksum_failed] drops (§4.8). *)
  sim_time_us : float;
}

type t = { reports : report list }

val axis_cells : seed:int -> (string * Reliability.Chaos.cell) list
(** One named cell per fault axis (clean control, corrupt, delay,
    partition, crash, loss) plus a mixed cell. *)

val default_cells :
  ?quick:bool -> seed:int -> unit -> Reliability.Chaos.cell list
(** [quick]: the {!axis_cells}; otherwise the full 2x2x2x2x2 grid. *)

val run_cell : ?quick:bool -> Reliability.Chaos.cell -> report
(** Run both worlds for one cell. Frames travel checksummed exactly when
    the cell injects faults, so the clean control cell also pins the
    byte-identical legacy encoding. *)

val run : ?cells:Reliability.Chaos.cell list -> ?quick:bool -> ?seed:int ->
  unit -> t

val zero_violations : t -> bool
val total_violations : t -> int
val pp : Format.formatter -> t -> unit

val perf_records : ?quick:bool -> ?seed:int -> unit -> Perf.record list
(** One portals-bench/1 record per {!axis_cells} entry (ids [CH.<axis>]);
    raises [Failure] if any metered cell violates an invariant. *)
