open Sim_engine

(* PAR: the parallel-engine workload — a nearest-neighbour halo exchange
   on a 2-D torus, sized so the shard map cuts it into contiguous stripes
   and every stripe boundary carries cross-shard traffic each step.

   The workload is the determinism witness for the window-barrier engine:
   every delivery folds (src, dst, step, arrival time) into a per-node
   digest, and the digests are summed into one order-insensitive value.
   Same seed, same world => the canonical line (nodes, steps, deliveries,
   digest, final sim time) is identical at any domain count; [selfcheck]
   asserts exactly that, and the smoke script diffs the printed lines
   across --domains values. The same run doubles as the speedup workload
   the multicore CI lane meters (PAR.seq vs PAR.par4). *)

type result = {
  nodes : int;
  dims : int list;  (** Torus dimensions actually used. *)
  steps : int;
  domains : int;  (** Shards actually used (capped at [nodes]). *)
  delivered : int;
  expected : int;
  errors : int;  (** Damaged or misattributed payloads accepted. *)
  digest : int;  (** Order-insensitive fold of every delivery. *)
  sim_time_us : float;
  window_rounds : int;  (** 0 when sequential. *)
  lookahead_us : float;  (** 0 when sequential. *)
  wall_s : float;
}

let step_interval = Time_ns.us 50.

(* splitmix64's finalizer over the int domain. Per-delivery contributions
   are mixed then {e summed}, so the order shards accumulate them in
   cannot show through the digest. *)
let mix v =
  let z = Int64.of_int v in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31))

let payload_len = 32

let payload ~src ~step =
  let b = Bytes.create payload_len in
  Bytes.set_int32_le b 0 (Int32.of_int src);
  Bytes.set_int32_le b 4 (Int32.of_int step);
  for j = 8 to payload_len - 1 do
    Bytes.set_uint8 b j (((src * 131) + (step * 17) + j) land 0xFF)
  done;
  b

let payload_ok ~src ~step b =
  Bytes.length b = payload_len
  &&
  let ok = ref true in
  for j = 8 to payload_len - 1 do
    if Bytes.get_uint8 b j <> ((src * 131) + (step * 17) + j) land 0xFF then
      ok := false
  done;
  !ok

let run ?(nodes = 256) ?(steps = 8) ?domains ?seed () =
  if nodes < 9 then invalid_arg "Par.run: need at least a 3x3 torus";
  let seed =
    match seed with Some s -> s | None -> snd (Runtime.run_env ())
  in
  let domains =
    match domains with Some d -> d | None -> Runtime.run_domains_env ()
  in
  let topology = Simnet.Topology.of_spec ~nodes "torus2d" in
  let t0 = Unix.gettimeofday () in
  let world = Runtime.create_world ~seed ~topology ~domains ~nodes () in
  let topo = Simnet.Fabric.topology world.Runtime.fabric in
  (* Torus links are node-to-node; keep the guard in case a switch-based
     shape is ever substituted. *)
  let neighbors nid =
    List.filter (fun v -> v < nodes) (Simnet.Topology.neighbors topo nid)
  in
  let counts = Array.make nodes 0 in
  let digests = Array.make nodes 0 in
  let bad = Array.make nodes 0 in
  let expected = ref 0 in
  let proc nid = world.Runtime.ranks.(nid) in
  for nid = 0 to nodes - 1 do
    (* Both the receive handler and the step sends live on the node's
       owner shard; only that domain ever touches slot [nid]. *)
    let sched = Runtime.sched_of_nid world nid in
    let fabric = Runtime.fabric_of_nid world nid in
    Simnet.Fabric.register fabric (proc nid) (fun ~src buf ->
        let s = Int32.to_int (Bytes.get_int32_le buf 0) in
        let step = Int32.to_int (Bytes.get_int32_le buf 4) in
        if s <> src.Simnet.Proc_id.nid || not (payload_ok ~src:s ~step buf)
        then bad.(nid) <- bad.(nid) + 1
        else begin
          counts.(nid) <- counts.(nid) + 1;
          let c = mix ((s * nodes) + nid) in
          let c = mix (c lxor step) in
          let c = mix (c lxor Scheduler.now sched) in
          digests.(nid) <- digests.(nid) + c
        end);
    List.iter
      (fun dst ->
        expected := !expected + steps;
        for step = 0 to steps - 1 do
          Scheduler.at sched
            (step_interval * (step + 1))
            (fun () ->
              Simnet.Fabric.send fabric ~src:(proc nid) ~dst:(proc dst)
                (payload ~src:nid ~step))
        done)
      (neighbors nid)
  done;
  Runtime.run world;
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum a = Array.fold_left ( + ) 0 a in
  let sim_time_us =
    Array.fold_left
      (fun acc s -> Float.max acc (Time_ns.to_us (Scheduler.now s)))
      0.
      (Runtime.shard_scheds world)
  in
  {
    nodes;
    dims = Simnet.Topology.dims topo;
    steps;
    domains = Runtime.domains world;
    delivered = sum counts;
    expected = !expected;
    errors = sum bad;
    digest = sum digests land max_int;
    sim_time_us;
    window_rounds = Runtime.window_rounds world;
    lookahead_us =
      (match Runtime.lookahead world with
      | None -> 0.
      | Some l -> Time_ns.to_us l);
    wall_s;
  }

let ok r = r.errors = 0 && r.delivered = r.expected

(* The line the CI determinism diff compares: everything in it must be a
   pure function of (seed, world) — never of the domain count. *)
let canonical r =
  Printf.sprintf "PAR nodes=%d steps=%d delivered=%d digest=%016x sim_us=%.1f"
    r.nodes r.steps r.delivered r.digest r.sim_time_us

let pp ppf r =
  Format.fprintf ppf
    "parallel engine: halo exchange on a %s torus, %d nodes, %d steps@."
    (String.concat "x" (List.map string_of_int r.dims))
    r.nodes r.steps;
  Format.fprintf ppf
    "  domains=%d lookahead=%.1fus window_rounds=%d wall=%.3fs%s@." r.domains
    r.lookahead_us r.window_rounds r.wall_s
    (if ok r then ""
     else
       Printf.sprintf "  [%d/%d delivered, %d errors]" r.delivered r.expected
         r.errors);
  Format.fprintf ppf "  %s@." (canonical r)

(* Run the identical world sequentially and at [domains]; any divergence
   in the canonical line is an engine determinism bug. *)
let selfcheck ?nodes ?steps ?(domains = 4) ?seed () =
  let seq = run ?nodes ?steps ~domains:1 ?seed () in
  let par = run ?nodes ?steps ~domains ?seed () in
  let problems =
    List.concat
      [
        (if ok seq then []
         else [ Printf.sprintf "sequential run incomplete: %s" (canonical seq) ]);
        (if ok par then []
         else [ Printf.sprintf "parallel run incomplete: %s" (canonical par) ]);
        (if canonical seq = canonical par then []
         else
           [
             Printf.sprintf "domains=1 and domains=%d diverge:@.  %s@.  %s"
               par.domains (canonical seq) (canonical par);
           ]);
      ]
  in
  match problems with
  | [] -> Ok (seq, par)
  | ps -> Error (String.concat "; " ps)

(* --- perf records ------------------------------------------------------- *)

let record_seq = "PAR.seq"
let record_par4 = "PAR.par4"

let perf_records ?(quick = false) ?(seed = 0) () =
  let nodes = if quick then 64 else 256 in
  let steps = if quick then 4 else 8 in
  [
    Perf.meter ~id:record_seq (fun () ->
        ignore (run ~nodes ~steps ~domains:1 ~seed ()));
    Perf.meter ~id:record_par4 (fun () ->
        ignore (run ~nodes ~steps ~domains:4 ~seed ()));
  ]

(* Aggregate events/sec ratio of the 4-domain run over the sequential
   one — the number the multicore CI lane gates at >= 2x. On a single
   hardware core the barrier overhead makes this < 1; meaningful only
   where domains actually run in parallel. *)
let speedup records =
  let rate id =
    List.find_map
      (fun r ->
        if r.Perf.id = id && r.Perf.events_per_sec > 0. then
          Some r.Perf.events_per_sec
        else None)
      records
  in
  match (rate record_seq, rate record_par4) with
  | Some seq, Some par -> Some (par /. seq)
  | _ -> None
