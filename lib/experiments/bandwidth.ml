open Sim_engine
module P = Portals

type row = { size : int; mb_per_s : float }

type t = { placement : string; rows : row list }

let default_sizes = [ 1_024; 4_096; 16_384; 65_536; 262_144; 1_048_576 ]

let pt_bench = 8

let measure ~transport ~size ~count =
  let world = Runtime.create_world ~transport ~nodes:2 () in
  let ni0 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(0) () in
  let ni1 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(1) () in
  let eqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni1 ~capacity:(count * 2)) in
  let eqq = P.Errors.ok_exn ~op:"eq" (P.Ni.eq ni1 eqh) in
  let meh =
    P.Errors.ok_exn ~op:"me"
      (P.Ni.me_attach ni1 ~portal_index:pt_bench ~match_id:P.Match_id.any
         ~match_bits:P.Match_bits.zero ~ignore_bits:P.Match_bits.all_ones ())
  in
  let _ =
    P.Errors.ok_exn ~op:"md"
      (P.Ni.md_attach ni1 ~me:meh
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:P.Md.Infinite ~eq:eqh (Bytes.create size)))
  in
  let finished = ref Time_ns.zero in
  Scheduler.spawn world.Runtime.sched ~name:"sink" (fun () ->
      for _ = 1 to count do
        ignore (P.Event.Queue.wait eqq)
      done;
      finished := Scheduler.now world.Runtime.sched);
  Scheduler.spawn world.Runtime.sched ~name:"source" (fun () ->
      let payload = Bytes.create size in
      for _ = 1 to count do
        let mdh =
          P.Errors.ok_exn ~op:"bind"
            (P.Ni.md_bind ni0
               (P.Ni.md_spec
                  ~options:{ P.Md.default_options with P.Md.ack_disable = true }
                  ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink payload))
        in
        P.Errors.ok_exn ~op:"put"
          (P.Ni.put ni0 ~md:mdh ~ack:false
             (P.Ni.op ~target:world.Runtime.ranks.(1) ~portal_index:pt_bench ()))
      done);
  Runtime.run world;
  (* Read the byte count off the sink NI's registry probe rather than
     recomputing size * count: the curve reflects what actually landed. *)
  let snap = Metrics.snapshot (Scheduler.metrics world.Runtime.sched) in
  let sink = Format.asprintf "%a" Simnet.Proc_id.pp world.Runtime.ranks.(1) in
  let bytes =
    match Metrics.Snapshot.find snap ~labels:[ ("proc", sink) ] "ni.rx_bytes" with
    | Some (Metrics.Snapshot.Gauge b) -> b
    | _ -> 0.
  in
  let elapsed = Time_ns.to_s !finished in
  if elapsed <= 0. then 0. else bytes /. elapsed /. 1e6

let run_one ?(sizes = default_sizes) ?(count = 16) transport =
  {
    placement = Runtime.transport_kind_name transport;
    rows =
      List.map (fun size -> { size; mb_per_s = measure ~transport ~size ~count })
        sizes;
  }

let run ?sizes ?count () =
  List.map (fun transport -> run_one ?sizes ?count transport)
    [ Runtime.Offload; Runtime.Rtscts ]

let pp ppf ts =
  Format.fprintf ppf "Streaming bandwidth (MB/s) vs message size:@.";
  Format.fprintf ppf "%-12s" "size(B)";
  List.iter (fun t -> Format.fprintf ppf "%-18s" t.placement) ts;
  Format.fprintf ppf "@.";
  match ts with
  | [] -> ()
  | first :: _ ->
    List.iteri
      (fun i row ->
        Format.fprintf ppf "%-12d" row.size;
        List.iter
          (fun t -> Format.fprintf ppf "%-18.1f" (List.nth t.rows i).mb_per_s)
          ts;
        Format.fprintf ppf "@.")
      first.rows
