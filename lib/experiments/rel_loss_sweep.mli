(** Goodput and completion time versus wire loss, reliable vs raw.

    For each loss rate in the sweep a fixed message stream is pushed
    through two fabrics built from the same seed: one with the
    {!Reliability} protocol shimmed under the wire, one raw. The reliable
    fabric must deliver every message (zero application-visible loss as
    long as the retry budget holds) at the price of retransmissions and
    completion time; the raw fabric keeps its speed and silently loses a
    matching fraction of the stream. Campaign points replay bit-exactly
    from [(loss, seed)]. *)

type mode_result = {
  delivered : int;  (** Messages the application actually received. *)
  completion_us : float;  (** Time of the last delivery (quiescence). *)
  goodput_mbps : float;
      (** Delivered payload bytes over completion time, in MB/s. *)
  retransmits : int;  (** Always 0 for the raw fabric. *)
  retries_exhausted : int;
}

type row = { loss : float; reliable : mode_result; raw : mode_result }

val default_losses : float list
(** [0; 0.01; 0.02; 0.05; 0.1] — up to the 10% the acceptance sweep
    demands. *)

val run :
  ?losses:float list ->
  ?seeds:int list ->
  ?msgs:int ->
  ?size:int ->
  ?registry:Sim_engine.Metrics.t ->
  unit ->
  row list
(** One row per loss rate, seed axis averaged out. Defaults: the
    {!default_losses} grid, seeds [[1; 2; 3]], 200 messages of 1 KiB.
    When [registry] is given, each point's full metrics snapshot is
    absorbed into it labelled with [loss], [seed] and [mode] so the
    retransmit counters, ack-RTT summaries and window series of every run
    survive into the caller's [--metrics] output. *)

val pp : Format.formatter -> row list -> unit
