open Sim_engine
module Campaign = Reliability.Campaign

type mode_result = {
  delivered : int;
  completion_us : float;
  goodput_mbps : float;
  retransmits : int;
  retries_exhausted : int;
}

type row = { loss : float; reliable : mode_result; raw : mode_result }

let default_losses = [ 0.; 0.01; 0.02; 0.05; 0.1 ]

(* One fixed point-to-point stream over a fresh 2-node fabric; the only
   variables are the fault model and whether the reliability protocol is
   shimmed underneath the wire. *)
let stream ?registry ~loss ~seed ~reliable ~msgs ~size () =
  let sched = Scheduler.create ~seed () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:2
  in
  Simnet.Fabric.set_fault_model fabric
    (Campaign.fault { Campaign.loss; seed });
  let rel = if reliable then Some (Reliability.attach fabric) else None in
  let src = Simnet.Proc_id.make ~nid:0 ~pid:0 in
  let dst = Simnet.Proc_id.make ~nid:1 ~pid:0 in
  let delivered = ref 0 and last = ref Time_ns.zero in
  Simnet.Fabric.register fabric dst (fun ~src:_ _payload ->
      incr delivered;
      last := Scheduler.now sched);
  Simnet.Fabric.register fabric src (fun ~src:_ _ -> ());
  for _ = 1 to msgs do
    Simnet.Fabric.send fabric ~src ~dst (Bytes.create size)
  done;
  Scheduler.run sched;
  (match registry with
  | Some reg ->
    Metrics.absorb reg
      ~labels:
        [
          ("experiment", "rel_loss_sweep");
          ("loss", Printf.sprintf "%g" loss);
          ("seed", string_of_int seed);
          ("mode", if reliable then "reliable" else "raw");
        ]
      (Metrics.snapshot (Scheduler.metrics sched))
  | None -> ());
  let completion_us = Time_ns.to_us !last in
  let goodput_mbps =
    (* payload bytes per microsecond = MB/s (decimal). *)
    if completion_us <= 0. then 0.
    else float_of_int (!delivered * size) /. completion_us
  in
  let retransmits, retries_exhausted =
    match rel with
    | None -> (0, 0)
    | Some r ->
      let st = Reliability.stats r in
      (st.Reliability.retransmits, st.Reliability.retries_exhausted)
  in
  { delivered = !delivered; completion_us; goodput_mbps; retransmits;
    retries_exhausted }

let mean l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l))
let meani f l = List.map (fun r -> float_of_int (f r)) l |> mean
let meanf f l = List.map f l |> mean

let average results =
  {
    delivered = int_of_float (Float.round (meani (fun r -> r.delivered) results));
    completion_us = meanf (fun r -> r.completion_us) results;
    goodput_mbps = meanf (fun r -> r.goodput_mbps) results;
    retransmits = int_of_float (Float.round (meani (fun r -> r.retransmits) results));
    retries_exhausted =
      int_of_float (Float.round (meani (fun r -> r.retries_exhausted) results));
  }

let run ?(losses = default_losses) ?(seeds = [ 1; 2; 3 ]) ?(msgs = 200)
    ?(size = 1024) ?registry () =
  let outcomes =
    Campaign.run ~losses ~seeds ~f:(fun ~loss ~seed ->
        ( stream ?registry ~loss ~seed ~reliable:true ~msgs ~size (),
          stream ?registry ~loss ~seed ~reliable:false ~msgs ~size () ))
  in
  List.map
    (fun loss ->
      let at_loss =
        List.filter_map
          (fun o ->
            if o.Campaign.point.Campaign.loss = loss then
              Some o.Campaign.value
            else None)
          outcomes
      in
      {
        loss;
        reliable = average (List.map fst at_loss);
        raw = average (List.map snd at_loss);
      })
    losses

let pp ppf rows =
  Format.fprintf ppf
    "Goodput and completion vs wire loss (reliable vs raw fabric):@.";
  Format.fprintf ppf "%-6s | %-10s %-12s %-8s %-7s | %-10s %-12s %s@." "loss"
    "rel MB/s" "rel done us" "rel dlv" "rexmit" "raw MB/s" "raw done us"
    "raw dlv";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-6.3f | %-10.1f %-12.1f %-8d %-7d | %-10.1f %-12.1f %d@." r.loss
        r.reliable.goodput_mbps r.reliable.completion_us r.reliable.delivered
        r.reliable.retransmits r.raw.goodput_mbps r.raw.completion_us
        r.raw.delivered)
    rows
