module P = Portals

type table = {
  number : int;
  title : string;
  fields : (string * string) list;
  encoded_bytes : int;
  payload_bytes : int;
}

let sample_initiator = Simnet.Proc_id.make ~nid:0 ~pid:0
let sample_target = Simnet.Proc_id.make ~nid:1 ~pid:0

let sample_put ~payload =
  P.Wire.put_request ~initiator:sample_initiator ~target:sample_target
    ~portal_index:4 ~cookie:0
    ~match_bits:(P.Match_bits.of_int 0xBEEF)
    ~offset:0 ~md_handle:P.Handle.none ~eq_handle:P.Handle.none
    ~data:(Bytes.create payload) ()

let sample_get ~rlength =
  P.Wire.get_request ~initiator:sample_initiator ~target:sample_target
    ~portal_index:4 ~cookie:0
    ~match_bits:(P.Match_bits.of_int 0xBEEF)
    ~offset:0 ~md_handle:P.Handle.none ~rlength ()

let sample_atomic () =
  P.Wire.atomic_request ~aop:P.Wire.Fetch_add ~operand:1L
    ~initiator:sample_initiator ~target:sample_target ~portal_index:4 ~cookie:0
    ~match_bits:(P.Match_bits.of_int 0xBEEF)
    ~offset:0 ~md_handle:P.Handle.none ()

let run () =
  let payload = 1_024 in
  let put = sample_put ~payload in
  let ack = P.Wire.ack_of_put put ~mlength:payload in
  let get = sample_get ~rlength:payload in
  let reply = P.Wire.reply_of_get get ~mlength:payload ~data:(Bytes.create payload) in
  let table number title op msg payload_bytes =
    {
      number;
      title;
      fields = P.Wire.field_inventory op;
      encoded_bytes = Bytes.length (P.Wire.encode msg);
      payload_bytes;
    }
  in
  let atomic = sample_atomic () in
  let atomic_reply = P.Wire.atomic_reply_of_request atomic ~fetched:41L in
  [
    table 1 "Information Passed in a Put Request" P.Wire.Put_request put payload;
    table 2 "Information Passed in an Acknowledgment" P.Wire.Ack ack 0;
    table 3 "Information Passed in a Get Request" P.Wire.Get_request get 0;
    table 4 "Information Passed in a Reply" P.Wire.Reply reply payload;
    (* Beyond the paper's four: the atomic extension's wire formats,
       regenerated from the same field inventory. *)
    table 5 "Information Passed in an Atomic Request" P.Wire.Atomic_request
      atomic 0;
    table 6 "Information Passed in an Atomic Reply" P.Wire.Atomic_reply
      atomic_reply 0;
  ]

let pp ppf tables =
  List.iter
    (fun t ->
      Format.fprintf ppf "Table %d. %s@." t.number t.title;
      Format.fprintf ppf "  %-22s %s@." "Information" "Description";
      List.iter
        (fun (field, description) ->
          Format.fprintf ppf "  %-22s %s@." field description)
        t.fields;
      Format.fprintf ppf
        "  (encoded: %d bytes on the wire for a %d-byte payload; header %d)@.@."
        t.encoded_bytes t.payload_bytes P.Wire.header_size)
    tables
