(** The cross-stack benchmark matrix (MX):
    {e transports} {b ×} {e axes} = [{portals, gm, rtscts, ibverbs}] ×
    [{latency, bandwidth, overlap, loss-goodput, congestion-goodput}].

    Every cell runs the {e same} MPI-level workload, built over a
    different stack through the one {!Transport.S} seam
    ({!Runtime.Stack}) — the API-redesign payoff in one grid: the
    paper's application-bypass argument shows up in the [overlap]
    column, Liu et al.'s fast path in the [latency] row gap, and the
    degraded-fabric axes exercise every stack over the reliability shim
    and a contended torus.

    Workloads: small-message ping-pong (mean RTT, µs); one-way 256 KiB
    stream (payload MB/s); fig6-style overlap availability (% of the
    cheaper leg hidden); a fixed eager stream over a 2%-Bernoulli lossy
    fabric with the reliability shim (MB/s); all-to-all on a 2D torus
    (aggregate MB/s). All deterministic for a fixed seed. *)

type cell = {
  transport : string;
  axis : string;
  value : float;
  unit_ : string;
  sim_time_us : float;
}

type t = { cells : cell list }

val axis_names : string list
val transport_names : string list
(** = {!Runtime.Stack.names}. *)

val run :
  ?transports:string list ->
  ?axes:string list ->
  ?quick:bool ->
  ?seed:int ->
  unit ->
  t
(** Run the selected cells (default: the full grid). Raises
    [Invalid_argument] on an unknown transport or axis name — CLIs
    should pre-validate with {!Runtime.Cli.pick_list}. [quick] shrinks
    every workload to smoke-test size. *)

val find_cell : t -> transport:string -> axis:string -> cell option
val pp : Format.formatter -> t -> unit

val record_id : transport:string -> axis:string -> string
(** ["MX.<transport>.<axis>"], the perf-record id of one cell. *)

val perf_records :
  ?transports:string list ->
  ?axes:string list ->
  ?quick:bool ->
  ?seed:int ->
  unit ->
  Perf.record list
(** Meter every selected cell as a {!Perf.record} (portals-bench/1), id
    {!record_id} — what the bench harness appends to its report and the
    CI gate compares against [bench/baseline.json]. *)
