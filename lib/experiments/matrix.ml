open Sim_engine

(* The cross-stack benchmark matrix: {portals, gm, rtscts, ibverbs} x
   {latency, bandwidth, overlap, loss-goodput, congestion-goodput},
   every cell the same MPI-level workload built over a different stack
   through the one Transport.S seam. This is the repo's summary
   artifact: the paper's Figure 6 argument (who progresses without the
   application), Liu et al.'s fast-path numbers and the
   degraded-fabric behaviour, all in one grid. *)

type cell = {
  transport : string;
  axis : string;
  value : float;
  unit_ : string;
  sim_time_us : float; (* simulated span the measurement covered *)
}

type t = { cells : cell list }

let axis_names =
  [ "latency"; "bandwidth"; "overlap"; "loss-goodput"; "congestion-goodput" ]

let transport_names = Runtime.Stack.names

(* --- workload parameters (full / --quick) ------------------------------ *)

type params = {
  lat_iters : int;
  lat_size : int;
  bw_msgs : int;
  bw_size : int;
  ov_size : int;
  ov_work_us : float;
  loss_msgs : int;
  loss_size : int;
  loss_p : float;
  cg_nodes : int;
  cg_msgs : int; (* per (src, dst) pair *)
  cg_size : int;
}

let full_params =
  {
    lat_iters = 60;
    lat_size = 64;
    bw_msgs = 48;
    bw_size = 262_144;
    ov_size = 262_144;
    ov_work_us = 2_000.;
    loss_msgs = 200;
    loss_size = 4096;
    loss_p = 0.02;
    cg_nodes = 8;
    cg_msgs = 4;
    cg_size = 4096;
  }

let quick_params =
  {
    lat_iters = 10;
    lat_size = 64;
    bw_msgs = 8;
    bw_size = 65_536;
    ov_size = 65_536;
    ov_work_us = 500.;
    loss_msgs = 50;
    loss_size = 4096;
    loss_p = 0.02;
    cg_nodes = 4;
    cg_msgs = 2;
    cg_size = 4096;
  }

(* --- the five workloads ------------------------------------------------ *)

(* Small-message ping-pong; mean round trip in us. *)
let run_latency ~seed ~p stack =
  let rtts = ref [] in
  let world = Runtime.create_world ~transport:stack.Runtime.Stack.kind ~seed ~nodes:2 () in
  let sched = world.Runtime.sched in
  ignore
    (Runtime.Stack.launch_on world stack (fun ep ->
         let buf = Bytes.create p.lat_size in
         let msg = Bytes.create p.lat_size in
         if Mpi.rank ep = 0 then
           for i = 0 to p.lat_iters do
             (* One warmup round trip, then the measured ones. *)
             let start = Scheduler.now sched in
             Mpi.send ep ~dst:1 ~tag:1 msg;
             ignore (Mpi.recv ep ~source:1 ~tag:2 buf);
             if i > 0 then
               rtts :=
                 Time_ns.to_us (Time_ns.sub (Scheduler.now sched) start)
                 :: !rtts
           done
         else
           for _ = 0 to p.lat_iters do
             ignore (Mpi.recv ep ~source:0 ~tag:1 buf);
             Mpi.send ep ~dst:0 ~tag:2 msg
           done));
  let n = List.length !rtts in
  let mean = if n = 0 then 0. else List.fold_left ( +. ) 0. !rtts /. float_of_int n in
  (mean, "us-rtt", Time_ns.to_us (Scheduler.now sched))

(* One-way stream; payload MB/s over the span from first send posted to
   last receive complete. *)
let run_bandwidth ~seed ~p stack =
  let t_start = ref Time_ns.zero and t_end = ref Time_ns.zero in
  let world = Runtime.create_world ~transport:stack.Runtime.Stack.kind ~seed ~nodes:2 () in
  let sched = world.Runtime.sched in
  ignore
    (Runtime.Stack.launch_on world stack (fun ep ->
         if Mpi.rank ep = 0 then begin
           let msg = Bytes.create p.bw_size in
           t_start := Scheduler.now sched;
           let reqs =
             List.init p.bw_msgs (fun _ -> Mpi.isend ep ~dst:1 ~tag:1 msg)
           in
           ignore (Mpi.waitall ep reqs)
         end
         else begin
           let bufs = List.init p.bw_msgs (fun _ -> Bytes.create p.bw_size) in
           let reqs =
             List.map (fun b -> Mpi.irecv ep ~source:0 ~tag:1 b) bufs
           in
           ignore (Mpi.waitall ep reqs);
           t_end := Scheduler.now sched
         end));
  let span_us = Time_ns.to_us (Time_ns.sub !t_end !t_start) in
  let mbps =
    if span_us <= 0. then 0.
    else float_of_int (p.bw_msgs * p.bw_size) /. span_us
  in
  (mbps, "MB/s", Time_ns.to_us (Scheduler.now sched))

(* Communication/computation overlap availability, fig6-style: elapse a
   large transfer alone (t_comm), then the same transfer with [work] of
   application compute between post and wait (t_both). Overlap% =
   (t_comm + work - t_both) / min(t_comm, work) — 100 means the whole
   cheaper leg hid behind the other, 0 means full serialisation. *)
let run_overlap ~seed ~p stack =
  let elapse ~work_us =
    let t0 = ref Time_ns.zero and t1 = ref Time_ns.zero in
    let world = Runtime.create_world ~transport:stack.Runtime.Stack.kind ~seed ~nodes:2 () in
    let sched = world.Runtime.sched in
    ignore
      (Runtime.Stack.launch_on world stack (fun ep ->
           if Mpi.rank ep = 0 then begin
             let msg = Bytes.create p.ov_size in
             t0 := Scheduler.now sched;
             let r = Mpi.isend ep ~dst:1 ~tag:1 msg in
             if work_us > 0. then Scheduler.delay sched (Time_ns.us work_us);
             ignore (Mpi.wait ep r);
             (* The transfer is done only when the receiver has it; the
                reply bounds the far end. *)
             ignore (Mpi.recv ep ~source:1 ~tag:2 (Bytes.create 1));
             t1 := Scheduler.now sched
           end
           else begin
             let buf = Bytes.create p.ov_size in
             ignore (Mpi.recv ep ~source:0 ~tag:1 buf);
             Mpi.send ep ~dst:0 ~tag:2 (Bytes.create 1)
           end));
    Time_ns.to_us (Time_ns.sub !t1 !t0)
  in
  let t_comm = elapse ~work_us:0. in
  let t_both = elapse ~work_us:p.ov_work_us in
  let hidden = t_comm +. p.ov_work_us -. t_both in
  let denom = Float.min t_comm p.ov_work_us in
  let pct = if denom <= 0. then 0. else 100. *. hidden /. denom in
  let pct = Float.max 0. (Float.min 100. pct) in
  (pct, "%overlap", t_comm +. t_both)

(* Goodput of a fixed eager stream over a Bernoulli-lossy fabric with
   the reliability shim underneath — the world is assembled by hand so
   the process-wide run env is untouched. *)
let run_loss_goodput ~seed ~p stack =
  let sched = Scheduler.create ~seed () in
  let profile =
    match stack.Runtime.Stack.kind with
    | Runtime.Offload -> Simnet.Profile.myrinet_mcp
    | Runtime.Kernel_interrupt | Runtime.Rtscts -> Simnet.Profile.myrinet_kernel
  in
  let fabric = Simnet.Fabric.create sched ~profile ~nodes:2 in
  Simnet.Fabric.set_fault_model fabric
    (Some (Simnet.Fault.bernoulli ~seed ~p:p.loss_p ()));
  ignore (Reliability.attach fabric);
  let tp =
    match stack.Runtime.Stack.kind with
    | Runtime.Offload -> Simnet.Transport.offload fabric
    | Runtime.Kernel_interrupt -> Simnet.Transport.kernel_interrupt fabric
    | Runtime.Rtscts -> Rtscts.transport (Rtscts.create fabric)
  in
  let ranks =
    [| Simnet.Proc_id.make ~nid:0 ~pid:0; Simnet.Proc_id.make ~nid:1 ~pid:0 |]
  in
  let world = { Runtime.sched; fabric; transport = tp; ranks; par = None } in
  let t_start = ref Time_ns.zero and t_end = ref Time_ns.zero in
  ignore
    (Runtime.Stack.launch_on world stack (fun ep ->
         if Mpi.rank ep = 0 then begin
           let msg = Bytes.create p.loss_size in
           t_start := Scheduler.now sched;
           for _ = 1 to p.loss_msgs do
             Mpi.send ep ~dst:1 ~tag:1 msg
           done
         end
         else begin
           let buf = Bytes.create p.loss_size in
           for _ = 1 to p.loss_msgs do
             ignore (Mpi.recv ep ~source:0 ~tag:1 buf)
           done;
           t_end := Scheduler.now sched
         end));
  let span_us = Time_ns.to_us (Time_ns.sub !t_end !t_start) in
  let mbps =
    if span_us <= 0. then 0.
    else float_of_int (p.loss_msgs * p.loss_size) /. span_us
  in
  (mbps, "MB/s", Time_ns.to_us (Scheduler.now sched))

(* Aggregate all-to-all goodput on a 2D-torus interconnect: every rank
   streams to every peer, so messages contend on shared hop links. *)
let run_congestion_goodput ~seed ~p stack =
  let nodes = p.cg_nodes in
  let topology = Simnet.Topology.of_spec ~nodes "torus2d" in
  let world =
    Runtime.create_world ~transport:stack.Runtime.Stack.kind ~seed ~topology
      ~nodes ()
  in
  let sched = world.Runtime.sched in
  let t_end = ref Time_ns.zero in
  ignore
    (Runtime.Stack.launch_on world stack (fun ep ->
         let me = Mpi.rank ep and n = Mpi.size ep in
         let recvs = ref [] in
         for peer = 0 to n - 1 do
           if peer <> me then
             for _ = 1 to p.cg_msgs do
               recvs :=
                 Mpi.irecv ep ~source:peer ~tag:1 (Bytes.create p.cg_size)
                 :: !recvs
             done
         done;
         let sends = ref [] in
         let msg = Bytes.create p.cg_size in
         for peer = 0 to n - 1 do
           if peer <> me then
             for _ = 1 to p.cg_msgs do
               sends := Mpi.isend ep ~dst:peer ~tag:1 msg :: !sends
             done
         done;
         ignore (Mpi.waitall ep !sends);
         ignore (Mpi.waitall ep !recvs);
         let now = Scheduler.now sched in
         if Time_ns.compare now !t_end > 0 then t_end := now));
  let span_us = Time_ns.to_us !t_end in
  let total_bytes = nodes * (nodes - 1) * p.cg_msgs * p.cg_size in
  let mbps =
    if span_us <= 0. then 0. else float_of_int total_bytes /. span_us
  in
  (mbps, "MB/s-agg", Time_ns.to_us (Scheduler.now sched))

let run_axis ~seed ~p stack axis =
  let value, unit_, sim_time_us =
    match axis with
    | "latency" -> run_latency ~seed ~p stack
    | "bandwidth" -> run_bandwidth ~seed ~p stack
    | "overlap" -> run_overlap ~seed ~p stack
    | "loss-goodput" -> run_loss_goodput ~seed ~p stack
    | "congestion-goodput" -> run_congestion_goodput ~seed ~p stack
    | other -> invalid_arg (Printf.sprintf "Matrix: unknown axis %S" other)
  in
  { transport = stack.Runtime.Stack.name; axis; value; unit_; sim_time_us }

let resolve_stacks transports =
  List.map Runtime.Stack.find_exn transports

let run ?(transports = transport_names) ?(axes = axis_names) ?(quick = false)
    ?(seed = 0) () =
  let p = if quick then quick_params else full_params in
  let stacks = resolve_stacks transports in
  List.iter
    (fun a ->
      if not (List.mem a axis_names) then
        invalid_arg
          (Printf.sprintf "Matrix: unknown axis %S (valid: %s)" a
             (String.concat ", " axis_names)))
    axes;
  let cells =
    List.concat_map
      (fun stack -> List.map (fun axis -> run_axis ~seed ~p stack axis) axes)
      stacks
  in
  { cells }

(* --- output ------------------------------------------------------------ *)

let find_cell t ~transport ~axis =
  List.find_opt (fun c -> c.transport = transport && c.axis = axis) t.cells

let pp ppf t =
  let transports =
    List.filter
      (fun name -> List.exists (fun c -> c.transport = name) t.cells)
      transport_names
  in
  let axes =
    List.filter (fun a -> List.exists (fun c -> c.axis = a) t.cells) axis_names
  in
  Format.fprintf ppf "benchmark matrix (value per transport x axis)@.";
  Format.fprintf ppf "%-10s" "";
  List.iter (fun a -> Format.fprintf ppf " %-20s" a) axes;
  Format.fprintf ppf "@.";
  List.iter
    (fun name ->
      Format.fprintf ppf "%-10s" name;
      List.iter
        (fun axis ->
          match find_cell t ~transport:name ~axis with
          | Some c ->
            Format.fprintf ppf " %-20s"
              (Printf.sprintf "%.1f %s" c.value c.unit_)
          | None -> Format.fprintf ppf " %-20s" "-")
        axes;
      Format.fprintf ppf "@.")
    transports

(* --- perf records ------------------------------------------------------ *)

(* One portals-bench/1 record per cell, id MX.<transport>.<axis>; the
   committed bench/baseline.json carries the ibverbs latency/bandwidth
   rows so CI gates the new stack's hot paths like any other
   experiment. *)
let record_id ~transport ~axis = Printf.sprintf "MX.%s.%s" transport axis

let perf_records ?(transports = transport_names) ?(axes = axis_names)
    ?(quick = false) ?(seed = 0) () =
  let p = if quick then quick_params else full_params in
  let stacks = resolve_stacks transports in
  List.concat_map
    (fun stack ->
      List.map
        (fun axis ->
          Perf.meter
            ~id:(record_id ~transport:stack.Runtime.Stack.name ~axis)
            (fun () -> run_axis ~seed ~p stack axis))
        axes)
    stacks
