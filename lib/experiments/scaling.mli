(** The scalability arguments of §4.1.

    {b Memory scaling} — "Portals allow for the amount of memory used for
    unexpected message buffers to be based on the needs and behavior of
    the application rather than based simply on the number of processes
    in a parallel job. For many message passing systems, such as VIA, the
    amount of memory required grows linearly with the number of
    connections." We measure the Portals MPI's slab reservation and
    unexpected high-water mark while the job size grows with a fixed
    communication pattern, against the per-peer buffer requirement of a
    connection-oriented (VIA/GM-credit) design.

    {b Collective scaling} — barrier and allreduce completion time as
    node count grows, on the connectionless Portals collectives
    (logarithmic rounds, no per-peer state). *)

type memory_row = {
  job_size : int;
  portals_reserved : int;  (** Slab bytes allocated (configuration). *)
  portals_highwater : int;  (** Peak unexpected bytes actually held. *)
  via_like_bytes : int;
      (** Per-connection buffering a VIA/GM-credit design dedicates:
          (n-1) peers x credits x eager buffer. *)
}

val run_memory :
  ?job_sizes:int list -> ?credits:int -> ?eager:int -> unit -> memory_row list
(** Pattern: every rank sends 4 unexpected 1 KB messages to rank 0, which
    claims them afterwards. Defaults: jobs 4..64, 8 credits, 16 KB eager
    buffers for the VIA-like model. *)

val pp_memory : Format.formatter -> memory_row list -> unit

type coll_row = { nodes : int; barrier_us : float; allreduce_us : float }

val run_collectives :
  ?impl:Collectives.impl -> ?node_counts:int list -> unit -> coll_row list
(** Defaults: 2..256 nodes; allreduce of 8 float64s. [impl] (default:
    the {!Runtime.run_collectives_env} / [--collectives] selection)
    picks the engine the ranks build — host-driven trees or the
    NIC-offloaded triggered chains. *)

val pp_collectives : Format.formatter -> coll_row list -> unit

type perf_row = {
  p_nodes : int;
  p_sim_events : int;  (** Scheduler events processed in the timed phase. *)
  p_wall_s : float;  (** Wall-clock seconds for the timed phase. *)
  p_events_per_sec : float;
}

val run_perf :
  ?node_counts:int list -> ?rounds:int -> ?frags:int -> unit -> perf_row list
(** Simulator-throughput sweep: per node count, [rounds] timed rounds of
    a segmented gather to rank 0 ([frags] 8-byte fragments per rank,
    claimed per-sender by match bits after an allreduce has let them all
    arrive unexpected) plus an 8-float allreduce. World setup and a
    warmup barrier are excluded from the measurement. Defaults: 64, 128,
    256, 512 and 1024 nodes, 4 rounds, 4 fragments. *)

val pp_perf : Format.formatter -> perf_row list -> unit
