open Sim_engine

type pattern = All_to_all | Nearest_neighbor

let pattern_name = function
  | All_to_all -> "all-to-all"
  | Nearest_neighbor -> "nearest-neighbor"

type row = {
  c_topology : string;
  c_pattern : string;
  c_messages : int;
  c_bytes : int;
  c_elapsed_us : float;
  c_goodput_mbs : float;
  c_peak_queue : int;
  c_drops : int;
}

let default_topologies = [ "full"; "ring"; "torus2d"; "fattree" ]

(* The halo partners of a node: its grid neighbours where the topology
   has a grid, else the ±1 ring peers (full and fat-tree have no
   meaningful node-to-node adjacency — hosts only neighbour switches). *)
let halo_peers topo nid =
  let n = Simnet.Topology.nodes topo in
  match Simnet.Topology.dims topo with
  | [] ->
    List.sort_uniq compare
      (List.filter (fun p -> p <> nid) [ (nid + 1) mod n; (nid + n - 1) mod n ])
  | _ -> Simnet.Topology.neighbors topo nid

let peers_of topo pattern nid =
  match pattern with
  | All_to_all ->
    List.filter (fun p -> p <> nid)
      (List.init (Simnet.Topology.nodes topo) Fun.id)
  | Nearest_neighbor -> halo_peers topo nid

let run_one ~kind ~pattern ~nodes ~msgs_per_peer ~size ?queue_limit ~seed () =
  let sched = Scheduler.create ~seed () in
  let profile = Simnet.Profile.myrinet_mcp in
  let fabric =
    Simnet.Fabric.create ~topology:kind ?queue_limit sched ~profile ~nodes
  in
  let topo = Simnet.Fabric.topology fabric in
  let delivered = ref 0 and delivered_bytes = ref 0 in
  let last_arrival = ref Time_ns.zero in
  for nid = 0 to nodes - 1 do
    Simnet.Fabric.register fabric
      (Simnet.Proc_id.make ~nid ~pid:0)
      (fun ~src:_ payload ->
        incr delivered;
        delivered_bytes := !delivered_bytes + Bytes.length payload;
        last_arrival := Time_ns.max !last_arrival (Scheduler.now sched))
  done;
  (* Every node injects its whole demand at t=0: the interconnect, not
     the injection schedule, decides how the flows interleave. Senders
     round-robin over their peers so no destination sees its traffic in
     one monolithic burst. *)
  let payload = Bytes.create size in
  for round = 1 to msgs_per_peer do
    ignore round;
    for nid = 0 to nodes - 1 do
      List.iter
        (fun peer ->
          Simnet.Fabric.send fabric
            ~src:(Simnet.Proc_id.make ~nid ~pid:0)
            ~dst:(Simnet.Proc_id.make ~nid:peer ~pid:0)
            payload)
        (peers_of topo pattern nid)
    done
  done;
  Scheduler.run sched;
  let stats = Simnet.Fabric.stats fabric in
  let elapsed_us = Time_ns.to_us !last_arrival in
  ( {
      c_topology = Simnet.Topology.describe kind;
      c_pattern = pattern_name pattern;
      c_messages = !delivered;
      c_bytes = !delivered_bytes;
      c_elapsed_us = elapsed_us;
      c_goodput_mbs =
        (if elapsed_us > 0. then float_of_int !delivered_bytes /. elapsed_us
         else 0.);
      c_peak_queue = Simnet.Fabric.peak_link_queue_depth fabric;
      c_drops = stats.Simnet.Fabric.drops_congested;
    },
    Metrics.snapshot (Scheduler.metrics sched) )

let run ?(nodes = 16) ?(topologies = default_topologies)
    ?(patterns = [ Nearest_neighbor; All_to_all ]) ?(msgs_per_peer = 8)
    ?(size = 4096) ?queue_limit ?(seed = 0) ?registry () =
  List.concat_map
    (fun spec ->
      let kind = Simnet.Topology.of_spec ~nodes spec in
      List.map
        (fun pattern ->
          let row, snapshot =
            run_one ~kind ~pattern ~nodes ~msgs_per_peer ~size ?queue_limit
              ~seed ()
          in
          Option.iter
            (fun registry ->
              Metrics.absorb registry
                ~labels:
                  [
                    ("topology", row.c_topology); ("pattern", row.c_pattern);
                  ]
                snapshot)
            registry;
          row)
        patterns)
    topologies

let pp ppf rows =
  Format.fprintf ppf
    "Traffic patterns across interconnect topologies (contended shared \
     links):@.";
  Format.fprintf ppf "%-16s %-18s %-10s %-12s %-14s %-11s %-8s@." "topology"
    "pattern" "delivered" "elapsed(us)" "goodput(MB/s)" "peak-queue" "drops";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %-18s %-10d %-12.1f %-14.1f %-11d %-8d@."
        r.c_topology r.c_pattern r.c_messages r.c_elapsed_us r.c_goodput_mbs
        r.c_peak_queue r.c_drops)
    rows
