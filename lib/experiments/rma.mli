(** One-sided RMA workloads (ids [RMA.<workload>]) over the MPI-3-style windows of
    [lib/onesided] and the Portals atomics under them:

    {ul
    {- [latency] — 8-byte [put]+[flush] and [fetch_and_add] round trips
       against a send/recv ping-pong RTT on the same fabric;}
    {- [passive] — passive-target progress: the target rank computes in
       long slices and never calls the library, while the initiator's
       fetch-adds are served by the target {e interface} (the paper's
       Figure 6 application-bypass argument generalized to
       read-modify-write). The send/recv yardstick only answers between
       compute slices; the row's value is its mean echo latency over the
       RMA mean — large when bypass works;}
    {- [halo] — the halo-exchange stencil run twice, over send/recv and
       over RMA windows (double-buffered ghost slots, flag-byte
       synchronisation), and the two results compared {e bit for bit};}
    {- [hashtable] — a distributed hash table: CAS-insert with linear
       probing, slot [s] owned by rank [s mod n], plus a fetch-add
       occupancy counter on rank 0, verified against the slots actually
       filled.}}

    All workloads are deterministic for a fixed seed. *)

type row = {
  workload : string;
  value : float;
  unit_ : string;
  detail : string;  (** Human-readable numbers behind [value]. *)
  sim_time_us : float;  (** Simulated span the workload's worlds covered. *)
}

type t = { rows : row list }

val workload_names : string list
(** = {!Runtime.Cli.rma_workload_names}. *)

val run : ?workloads:string list -> ?quick:bool -> ?seed:int -> unit -> t
(** Run the selected workloads (default all). Raises [Invalid_argument]
    on an unknown name — CLIs should pre-validate with
    {!Runtime.Cli.pick_list}. [quick] shrinks every workload to
    smoke-test size. *)

val find_row : t -> workload:string -> row option
val pp : Format.formatter -> t -> unit

val record_id : string -> string
(** ["RMA.<workload>"], the perf-record id of one workload. *)

val perf_records :
  ?workloads:string list -> ?quick:bool -> ?seed:int -> unit -> Perf.record list
(** Meter every selected workload as a {!Perf.record} (portals-bench/1),
    id {!record_id} — appended to the bench report and gated against
    [bench/baseline.json] like any other experiment. *)
