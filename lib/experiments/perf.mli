(** Machine-readable performance records for the bench harness.

    One {!record} per experiment id (T1–T4 wire tables, F1–F6 figures,
    L1 latency, B1 bandwidth, S1–S3 scaling, A1/A2 accounting and
    ablations, R1 reliability, C1 crash-restart), metered as a delta of
    {!Sim_engine.Scheduler.global_totals} around the experiment's run.

    The sim-side fields — [sim_events], [fibers], [sim_time_us] — are
    deterministic for a fixed seed: two runs of the same build must agree
    on them exactly. [wall_s], [events_per_sec] and [peak_heap_words]
    describe the host and vary run to run; regression gating applies a
    tolerance to [events_per_sec] only. *)

type record = {
  id : string;
  wall_s : float;  (** Wall-clock seconds for this experiment's run. *)
  sim_events : int;  (** Scheduler events the run processed. *)
  fibers : int;  (** Fibers the run spawned. *)
  sim_time_us : float;  (** Simulated time the run advanced through. *)
  events_per_sec : float;  (** [sim_events /. wall_s]; 0 for instant runs. *)
  peak_heap_words : int;
      (** GC [top_heap_words] after the run. Monotone across the process:
          peak heap so far, not a per-experiment figure. *)
}

val ids : string list
(** Every experiment id, in report order. *)

val meter : id:string -> (unit -> 'a) -> record
(** Meter one runner as a delta of the process-wide scheduler totals:
    best of three repeats (after a [Gc.compact] each), so host noise
    does not masquerade as a regression. Other experiment families
    (e.g. the benchmark matrix) build their records with this. *)

val all : ?quick:bool -> unit -> record list
(** Run and meter every experiment; each is run three times (after a
    [Gc.compact]) and the fastest repeat kept, so host-side noise does
    not masquerade as a regression. [quick] (default false) shrinks each
    experiment's parameters to smoke-test size. *)

val pp : Format.formatter -> record list -> unit

(** {1 JSON} *)

val to_json : record list -> string
(** [{"schema": "portals-bench/1", "records": [{...}, ...]}] *)

val of_json_string : string -> (record list, string) result

val write_json : path:string -> record list -> unit
val read_json : path:string -> (record list, string) result

(** {1 Regression gating} *)

type regression = {
  r_id : string;
  r_baseline : float;  (** Baseline events/sec. *)
  r_current : float;  (** Current events/sec. *)
  r_ratio : float;  (** current / baseline. *)
}

val compare_baseline :
  baseline:record list ->
  current:record list ->
  tolerance_pct:float ->
  regression list
(** Ids whose current events/sec fell more than [tolerance_pct] percent
    below baseline. Ids missing from either side, and records processing
    fewer than 1000 events (their events/sec is timer noise), are
    skipped. Empty means the gate passes. *)

val pp_regressions : Format.formatter -> regression list -> unit
