open Sim_engine
module P = Portals

type row = {
  depth : int;
  entries_walked : int;
  nic_walk_us : float;
  host_walk_us : float;
  host_stolen_us : float;
}

let default_depths = [ 0; 1; 8; 64; 512 ]

let pt_bench = 9

(* Attach [depth] entries that match nothing, then one catch-all. *)
let build_list ni ~depth buffer =
  for _ = 1 to depth do
    ignore
      (P.Errors.ok_exn ~op:"decoy me"
         (P.Ni.me_attach ni ~portal_index:pt_bench ~match_id:P.Match_id.any
            ~match_bits:(P.Match_bits.of_int 0x5151)
            ~ignore_bits:P.Match_bits.zero ()))
  done;
  let meh =
    P.Errors.ok_exn ~op:"accepting me"
      (P.Ni.me_attach ni ~portal_index:pt_bench ~match_id:P.Match_id.any
         ~match_bits:P.Match_bits.zero ~ignore_bits:P.Match_bits.all_ones ())
  in
  let eqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni ~capacity:16) in
  let _ =
    P.Errors.ok_exn ~op:"md"
      (P.Ni.md_attach ni ~me:meh
         (P.Ni.md_spec ~threshold:P.Md.Infinite ~eq:eqh buffer))
  in
  ()

let walk_entries ~transport ~depth =
  let world = Runtime.create_world ~transport ~nodes:2 () in
  let ni0 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(0) () in
  let ni1 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(1) () in
  build_list ni1 ~depth (Bytes.create 64);
  let mdh =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni0
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink (Bytes.create 8)))
  in
  P.Errors.ok_exn ~op:"put"
    (P.Ni.put ni0 ~md:mdh ~ack:false
       (P.Ni.op ~target:world.Runtime.ranks.(1) ~portal_index:pt_bench ()));
  Runtime.run world;
  let counters = P.Ni.counters ni1 in
  let cpu = Simnet.Node.host_cpu (Simnet.Fabric.node world.Runtime.fabric 1) in
  (counters.P.Ni.entries_walked, Time_ns.to_us (Cpu.stolen_total cpu))

let run ?(depths = default_depths) () =
  let nic = Simnet.Profile.myrinet_mcp.Simnet.Profile.nic_match_cost in
  let host = Simnet.Profile.myrinet_kernel.Simnet.Profile.host_match_cost in
  List.map
    (fun depth ->
      let entries_walked, _ = walk_entries ~transport:Runtime.Offload ~depth in
      let _, host_stolen_us =
        walk_entries ~transport:Runtime.Kernel_interrupt ~depth
      in
      {
        depth;
        entries_walked;
        nic_walk_us = float_of_int (entries_walked * nic) /. 1000.;
        host_walk_us = float_of_int (entries_walked * host) /. 1000.;
        host_stolen_us;
      })
    depths

let pp ppf rows =
  Format.fprintf ppf
    "Address translation (Figs 3-4): match-list walk cost vs depth:@.";
  Format.fprintf ppf "%-8s %-10s %-14s %-14s %-16s@." "depth" "walked"
    "nic-walk(us)" "host-walk(us)" "host-stolen(us)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8d %-10d %-14.3f %-14.3f %-16.3f@." r.depth
        r.entries_walked r.nic_walk_us r.host_walk_us r.host_stolen_us)
    rows
