open Sim_engine

type memory_row = {
  job_size : int;
  portals_reserved : int;
  portals_highwater : int;
  via_like_bytes : int;
}

module MP = Mpi.Mpi_portals

let run_memory ?(job_sizes = [ 4; 8; 16; 32; 64 ]) ?(credits = 8)
    ?(eager = 16_384) () =
  let measure n =
    let world = Runtime.create_world ~nodes:n () in
    let config = MP.default_config in
    let endpoints =
      Array.init n (fun rank ->
          MP.create world.Runtime.transport ~ranks:world.Runtime.ranks ~rank
            ~config ())
    in
    Runtime.spawn_ranks world (fun ~rank ->
        let ep = endpoints.(rank) in
        if rank <> 0 then
          for i = 0 to 3 do
            ignore (MP.wait ep (MP.isend ep ~dst:0 ~tag:((rank * 10) + i) (Bytes.create 1_024)))
          done
        else begin
          (* Let everything arrive unexpected, then claim it. *)
          Scheduler.delay world.Runtime.sched (Time_ns.ms 50.0);
          for src = 1 to n - 1 do
            for i = 0 to 3 do
              ignore
                (MP.wait ep
                   (MP.irecv ep ~source:src ~tag:((src * 10) + i)
                      (Bytes.create 1_024)))
            done
          done
        end);
    Runtime.run world;
    {
      job_size = n;
      portals_reserved = config.MP.slab_size * config.MP.slab_count;
      portals_highwater = MP.unexpected_bytes_highwater endpoints.(0);
      via_like_bytes = (n - 1) * credits * eager;
    }
  in
  List.map measure job_sizes

let pp_memory ppf rows =
  Format.fprintf ppf
    "Receive-buffer memory vs job size (section 4.1):@.";
  Format.fprintf ppf "%-10s %-20s %-20s %-20s@." "job" "portals-reserved"
    "portals-highwater" "via-like-per-conn";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10d %-20d %-20d %-20d@." r.job_size
        r.portals_reserved r.portals_highwater r.via_like_bytes)
    rows

type coll_row = { nodes : int; barrier_us : float; allreduce_us : float }

let run_collectives ?impl ?(node_counts = [ 2; 4; 8; 16; 32; 64; 128; 256 ]) () =
  (* The engine follows the CLI's [--collectives] default unless the
     caller picks one; both give the same results, only the timing of a
     busy host differs (Experiments.Coll measures that contrast). *)
  let impl =
    match impl with
    | Some i -> i
    | None -> (
      match Collectives.impl_of_string (Runtime.run_collectives_env ()) with
      | Some i -> i
      | None -> Collectives.Host)
  in
  let measure n =
    let world = Runtime.create_world ~nodes:n () in
    let colls =
      Array.mapi
        (fun rank pid ->
          let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
          Collectives.create_impl impl ni ~ranks:world.Runtime.ranks ~rank ())
        world.Runtime.ranks
    in
    let barrier_done = ref Time_ns.zero in
    let allreduce_done = ref Time_ns.zero in
    let barrier_start = ref Time_ns.zero in
    let allreduce_start = ref Time_ns.zero in
    Array.iteri
      (fun rank coll ->
        Scheduler.spawn world.Runtime.sched (fun () ->
            let payload = Collectives.bytes_of_floats (Array.make 8 1.0) in
            (* Warmup to hide first-touch effects, then measured rounds. *)
            Collectives.any_barrier coll;
            if rank = 0 then barrier_start := Scheduler.now world.Runtime.sched;
            Collectives.any_barrier coll;
            let now = Scheduler.now world.Runtime.sched in
            if Time_ns.compare now !barrier_done > 0 then barrier_done := now;
            Collectives.any_barrier coll;
            if rank = 0 then allreduce_start := Scheduler.now world.Runtime.sched;
            ignore
              (Collectives.any_allreduce coll ~op:Collectives.sum_floats payload);
            let now = Scheduler.now world.Runtime.sched in
            if Time_ns.compare now !allreduce_done > 0 then allreduce_done := now))
      colls;
    Runtime.run world;
    {
      nodes = n;
      barrier_us = Time_ns.to_us (Time_ns.sub !barrier_done !barrier_start);
      allreduce_us = Time_ns.to_us (Time_ns.sub !allreduce_done !allreduce_start);
    }
  in
  List.map measure node_counts

let pp_collectives ppf rows =
  Format.fprintf ppf "Collective completion time vs nodes:@.";
  Format.fprintf ppf "%-10s %-16s %-16s@." "nodes" "barrier(us)" "allreduce(us)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10d %-16.2f %-16.2f@." r.nodes r.barrier_us
        r.allreduce_us)
    rows

type perf_row = {
  p_nodes : int;
  p_sim_events : int;
  p_wall_s : float;
  p_events_per_sec : float;
}

(* The simulator-throughput sweep: how fast the discrete-event engine
   chews through a communication-heavy workload as the world grows. Each
   round is a segmented gather (every rank sends [frags] small fragments
   to rank 0, which claims them per-sender after the round's allreduce
   has synchronised everyone) followed by an 8-float allreduce. The
   gather leaves rank 0 with a deep unexpected-message queue claimed by
   match bits, so the sweep is sensitive to both raw event cost and the
   pool's claim-path complexity. Only the timed rounds are metered; world
   construction and one warmup barrier run before the clock starts. *)
let run_perf ?(node_counts = [ 64; 128; 256; 512; 1024 ]) ?(rounds = 4)
    ?(frags = 4) () =
  let root = 0 in
  let measure n =
    let world = Runtime.create_world ~nodes:n () in
    let nis =
      Array.map
        (fun pid -> Portals.Ni.create world.Runtime.transport ~id:pid ())
        world.Runtime.ranks
    in
    let colls =
      Array.mapi
        (fun rank ni -> Collectives.create ni ~ranks:world.Runtime.ranks ~rank ())
        nis
    in
    (* The gather pool lives on its own portal entry, away from the
       collectives' (default entry 6). *)
    let pools =
      Array.map (fun ni -> Collectives.Pool.create ni ~portal_index:7 ()) nis
    in
    Array.iter
      (fun coll ->
        Scheduler.spawn world.Runtime.sched (fun () -> Collectives.barrier coll))
      colls;
    Runtime.run world;
    let payload = Bytes.create 8 in
    Array.iteri
      (fun rank coll ->
        Scheduler.spawn world.Runtime.sched (fun () ->
            for _ = 1 to rounds do
              if rank <> root then
                for _frag = 1 to frags do
                  Collectives.Pool.send pools.(rank)
                    ~dst:world.Runtime.ranks.(root)
                    ~bits:(Portals.Match_bits.of_int rank)
                    payload
                done;
              ignore (Collectives.allreduce_float_sum coll (Array.make 8 1.0));
              if rank = root then
                for k = 0 to n - 1 do
                  if k <> root then
                    for _frag = 1 to frags do
                      ignore
                        (Collectives.Pool.recv pools.(root)
                           ~bits:(Portals.Match_bits.of_int k))
                    done
                done
            done))
      colls;
    let e0 = (Scheduler.global_totals ()).Scheduler.t_events in
    let t0 = Unix.gettimeofday () in
    Runtime.run world;
    let t1 = Unix.gettimeofday () in
    let e1 = (Scheduler.global_totals ()).Scheduler.t_events in
    let wall = t1 -. t0 and events = e1 - e0 in
    {
      p_nodes = n;
      p_sim_events = events;
      p_wall_s = wall;
      p_events_per_sec =
        (if wall > 0. then float_of_int events /. wall else 0.);
    }
  in
  List.map measure node_counts

let pp_perf ppf rows =
  Format.fprintf ppf
    "Simulator throughput (timed gather+allreduce rounds):@.";
  Format.fprintf ppf "%-10s %-14s %-12s %-14s@." "nodes" "sim-events"
    "wall(s)" "events/sec";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10d %-14d %-12.4f %-14.0f@." r.p_nodes
        r.p_sim_events r.p_wall_s r.p_events_per_sec)
    rows
