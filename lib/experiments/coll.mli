(** NIC-offloaded vs host-driven collectives (ids [COLL.*]).

    The experiment behind the triggered-operation engine
    ({!Collectives.Nic}): measure the three tree collectives — barrier,
    bcast, allreduce — under both engines, across topologies and node
    counts, with the host CPUs idle and with them running a compute
    loop. The host-driven tree charges per-hop protocol work to each
    rank's CPU, so on a busy host every hop queues behind an in-flight
    compute slice and the tree's latency grows with its depth; the
    NIC-resident chains never touch the host CPU, so their latency is
    the wire time of the same tree — flat whether the host is idle or
    busy. This is the paper's §2 / Figure 6 application-bypass argument
    applied to collective progress.

    All numbers are deterministic for a fixed seed. *)

type cell = {
  c_impl : Collectives.impl;
  c_topology : string;  (** {!Simnet.Topology.of_spec} spec. *)
  c_nodes : int;
  c_busy : bool;  (** Host CPUs running a compute loop during the calls. *)
  c_barrier_us : float;  (** Mean per-call latency, start to last rank. *)
  c_bcast_us : float;
  c_allreduce_us : float;
}

type t = {
  cells : cell list;
  metrics : Sim_engine.Metrics.Snapshot.t;
      (** [coll.barrier_us] / [coll.bcast_us] / [coll.allreduce_us]
          series, x = nodes, labelled by (impl, topology, host). *)
}

val default_plan : (string * int list) list
(** Topology spec → node counts: torus2d at 16/32/64, fattree at 16/54
    (the k = 4 and k = 6 shapes), ring at 8/16/32. *)

val run :
  ?iters:int -> ?quick:bool -> ?seed:int -> ?plan:(string * int list) list ->
  unit -> t
(** Measure every (topology, nodes, idle|busy, host|nic) cell of the
    plan (default {!default_plan}; [quick] shrinks to two cells'
    worth). [iters] (default 8) back-to-back calls are averaged per
    cell. *)

val pp : Format.formatter -> t -> unit

val check : ?nodes:int -> ?topology:string -> ?seed:int -> unit -> bool
(** Byte-identity spot check, the smoke-test entry: a mixed
    allreduce/bcast/barrier/reduce workload on a 4×4 torus (by default)
    run under both engines; [true] iff every rank's observable bytes
    agree. *)

val record_id : Collectives.impl -> string -> string
(** ["COLL.<impl>.<op>"]. *)

val perf_records :
  ?quick:bool -> ?seed:int -> unit -> Perf.record list
(** Meter [COLL.{host,nic}.{barrier,allreduce}] — each op hammered on a
    busy-host 16-node torus — as perf records gated against
    [bench/baseline.json]. *)
