open Sim_engine
module P = Portals

type entry = {
  time_us : float;
  side : [ `Initiator | `Target ];
  kind : string;
  mlength : int;
}

type timeline = { figure : int; operation : string; entries : entry list }

let pt_bench = 9

let setup ?(transport = Runtime.Offload) () =
  let world = Runtime.create_world ~transport ~nodes:2 () in
  let ni0 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(0) () in
  let ni1 = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(1) () in
  (world, ni0, ni1)

let attach_target ni buffer =
  let eqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni ~capacity:16) in
  let meh =
    P.Errors.ok_exn ~op:"me"
      (P.Ni.me_attach ni ~portal_index:pt_bench ~match_id:P.Match_id.any
         ~match_bits:P.Match_bits.zero ~ignore_bits:P.Match_bits.all_ones ())
  in
  let _ =
    P.Errors.ok_exn ~op:"md"
      (P.Ni.md_attach ni ~me:meh
         (P.Ni.md_spec ~threshold:P.Md.Infinite ~eq:eqh buffer))
  in
  P.Errors.ok_exn ~op:"eq resolve" (P.Ni.eq ni eqh)

let collect entries side eqq =
  let rec go () =
    match P.Event.Queue.get eqq with
    | None -> ()
    | Some ev ->
      entries :=
        {
          time_us = Time_ns.to_us ev.P.Event.time;
          side;
          kind = P.Event.kind_to_string ev.P.Event.kind;
          mlength = ev.P.Event.mlength;
        }
        :: !entries;
      go ()
  in
  go ()

let finish entries =
  List.sort (fun a b -> compare (a.time_us, a.kind) (b.time_us, b.kind)) !entries

let run_put ?(message_size = 4096) ?transport () =
  let world, ni0, ni1 = setup ?transport () in
  let target_eq = attach_target ni1 (Bytes.create message_size) in
  let ieqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni0 ~capacity:16) in
  let ieqq = P.Errors.ok_exn ~op:"eq" (P.Ni.eq ni0 ieqh) in
  let mdh =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni0
         (P.Ni.md_spec ~threshold:(P.Md.Count 2) ~unlink:P.Md.Unlink ~eq:ieqh
            (Bytes.create message_size)))
  in
  P.Errors.ok_exn ~op:"put"
    (P.Ni.put ni0 ~md:mdh ~ack:true
       (P.Ni.op ~target:world.Runtime.ranks.(1) ~portal_index:pt_bench ()));
  Runtime.run world;
  let entries = ref [] in
  collect entries `Initiator ieqq;
  collect entries `Target target_eq;
  { figure = 1; operation = "put (send)"; entries = finish entries }

let run_get ?(message_size = 4096) ?transport () =
  let world, ni0, ni1 = setup ?transport () in
  let target_eq = attach_target ni1 (Bytes.create message_size) in
  let ieqh = P.Errors.ok_exn ~op:"eq" (P.Ni.eq_alloc ni0 ~capacity:16) in
  let ieqq = P.Errors.ok_exn ~op:"eq" (P.Ni.eq ni0 ieqh) in
  let mdh =
    P.Errors.ok_exn ~op:"bind"
      (P.Ni.md_bind ni0
         (P.Ni.md_spec ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink ~eq:ieqh
            (Bytes.create message_size)))
  in
  P.Errors.ok_exn ~op:"get"
    (P.Ni.get ni0 ~md:mdh
       (P.Ni.op ~target:world.Runtime.ranks.(1) ~portal_index:pt_bench ()));
  Runtime.run world;
  let entries = ref [] in
  collect entries `Initiator ieqq;
  collect entries `Target target_eq;
  { figure = 2; operation = "get"; entries = finish entries }

let pp ppf t =
  Format.fprintf ppf "Figure %d: Portal %s protocol@." t.figure t.operation;
  List.iter
    (fun e ->
      Format.fprintf ppf "  t=%-10.2fus %-10s %-6s mlength=%d@." e.time_us
        (match e.side with `Initiator -> "initiator" | `Target -> "target")
        e.kind e.mlength)
    t.entries
