(** Figure 6: duration of waiting for messages as a function of the work
    interval, for MPICH/GM and MPICH over Portals 3.0, with 50 KB
    messages.

    The paper's result: MPICH/GM makes essentially no progress until the
    application re-enters the library (a flat curve at the full transfer
    cost), while the Portals implementation completes virtually all
    message handling inside a large enough work interval (a curve
    declining to near zero). A third series reproduces the side
    experiment: three MPI test calls inside the work loop let MPICH/GM
    recover most of the progress. *)

type series = {
  label : string;
  points : (float * float) list;
      (** (work interval ms, mean remaining wait ms) *)
}

type t = {
  message_size : int;
  batch : int;
  series : series list;
  metrics : Sim_engine.Metrics.Snapshot.t;
      (** Aggregate registry snapshot: a ["fig6.wait_ms"] series per
          configuration (labelled [("config", label)]) mirroring
          [series], plus each configuration's full world registry —
          NI drop counters, CPU occupancy, link utilisation, EQ-depth
          series, protocol counters — absorbed from the largest work
          interval's run under the same configuration label. *)
  traces : (string * Sim_engine.Trace.span list) list;
      (** Per-configuration trace spans from the largest work interval's
          run; empty unless [capture_trace]. Feed to
          {!Sim_engine.Trace.Chrome.to_string} for chrome://tracing. *)
}

val work_intervals_ms : float list
(** The default sweep: 0 to 50 ms. *)

val run :
  ?message_size:int ->
  ?batch:int ->
  ?iterations:int ->
  ?work_ms:float list ->
  ?capture_trace:bool ->
  unit ->
  t
(** Regenerate the figure's data: MPICH/GM (offload transport, as GM ran
    on the NIC), MPICH/Portals 3.0 on the interrupt-driven kernel path
    (the implementation the paper measured), MPICH/GM with three test
    calls, and — beyond the paper — MPICH/Portals on the NIC-offload
    placement. *)

val pp : Format.formatter -> t -> unit
(** Render all series as aligned columns, one row per work interval. *)
