open Sim_engine

(* One-sided RMA workloads over the MPI-3-style windows in lib/onesided
   (put/get/accumulate plus the Portals atomics of §4.4's one-sided
   addressing, executed at match time on the target interface):

     latency    put+flush and fetch_add round trips vs a send/recv RTT
     passive    passive-target progress while the target CPU computes —
                the paper's Figure 6 argument generalized to RMA: the
                target never calls the library, yet atomics complete
     halo       the halo-exchange stencil written twice, send/recv and
                RMA windows, and the results compared bit for bit
     hashtable  a distributed hash table built on CAS-insert linear
                probing and a fetch_add occupancy counter

   Every workload is deterministic for a fixed seed; the bench harness
   meters each as an RMA.<workload> portals-bench/1 record. *)

type row = {
  workload : string;
  value : float;
  unit_ : string;
  detail : string;
  sim_time_us : float; (* simulated span the workload's worlds covered *)
}

type t = { rows : row list }

let workload_names = Runtime.Cli.rma_workload_names

(* --- workload parameters (full / --quick) ------------------------------ *)

type params = {
  lat_iters : int;
  passive_ops : int;
  passive_busy_us : float; (* one target compute slice *)
  halo_ranks : int;
  halo_cells : int;
  halo_iters : int;
  ht_ranks : int;
  ht_slots : int;
  ht_keys_per_rank : int;
}

(* The halo and hashtable worlds are sized 16 nodes in both profiles so
   the smoke suite can pin them onto a 4x4 torus (--topology torus2d:4x4
   applies to every world a workload builds). *)
let full_params =
  {
    lat_iters = 40;
    passive_ops = 24;
    passive_busy_us = 2_000.;
    halo_ranks = 16;
    halo_cells = 16;
    halo_iters = 10;
    ht_ranks = 16;
    ht_slots = 192;
    ht_keys_per_rank = 8;
  }

let quick_params =
  {
    lat_iters = 8;
    passive_ops = 6;
    passive_busy_us = 500.;
    halo_ranks = 16;
    halo_cells = 8;
    halo_iters = 4;
    ht_ranks = 16;
    ht_slots = 64;
    ht_keys_per_rank = 2;
  }

(* --- shared plumbing --------------------------------------------------- *)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* One Onesided endpoint per rank, created before any fiber runs (the
   symmetric-heap discipline: every subsequent alloc/win_create must be
   issued in the same order on every rank). *)
let make_pes world =
  Array.mapi
    (fun rank pid ->
      let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
      Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank ())
    world.Runtime.ranks

let make_mpi world =
  Array.init
    (Array.length world.Runtime.ranks)
    (fun rank ->
      Mpi.create_portals world.Runtime.transport ~ranks:world.Runtime.ranks
        ~rank ())

let pack1 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  b

let unpack1 b = Int64.float_of_bits (Bytes.get_int64_le b 0)

(* --- latency: put+flush / fetch_add vs send/recv ----------------------- *)

let run_latency ~seed ~p =
  let put_us = ref [] and faa_us = ref [] in
  let world = Runtime.create_world ~seed ~nodes:2 () in
  let sched = world.Runtime.sched in
  let oss = make_pes world in
  let wins = Array.map (fun os -> Onesided.win_create os ~size:16) oss in
  Scheduler.spawn sched ~name:"rma-initiator" (fun () ->
      let w = wins.(0) in
      let payload = Bytes.make 8 '\x2a' in
      for i = 0 to p.lat_iters do
        (* One warmup, then the measured iterations. *)
        let t0 = Scheduler.now sched in
        Onesided.Win.put w ~rank:1 ~offset:0 payload;
        Onesided.Win.flush w ~rank:1;
        if i > 0 then
          put_us :=
            Time_ns.to_us (Time_ns.sub (Scheduler.now sched) t0) :: !put_us
      done;
      for i = 0 to p.lat_iters do
        let t0 = Scheduler.now sched in
        ignore (Onesided.Win.fetch_and_add w ~rank:1 ~offset:8 1L);
        if i > 0 then
          faa_us :=
            Time_ns.to_us (Time_ns.sub (Scheduler.now sched) t0) :: !faa_us
      done);
  Runtime.run world;
  let t_rma = Time_ns.to_us (Scheduler.now sched) in
  (* The two-sided yardstick: an 8-byte ping-pong over MPI. *)
  let rtts = ref [] in
  let world2 = Runtime.create_world ~seed ~nodes:2 () in
  let sched2 = world2.Runtime.sched in
  let eps = make_mpi world2 in
  Runtime.spawn_ranks world2 (fun ~rank ->
      let ep = eps.(rank) in
      let buf = Bytes.create 8 and msg = Bytes.create 8 in
      if rank = 0 then
        for i = 0 to p.lat_iters do
          let t0 = Scheduler.now sched2 in
          Mpi.send ep ~dst:1 ~tag:1 msg;
          ignore (Mpi.recv ep ~source:1 ~tag:2 buf);
          if i > 0 then
            rtts :=
              Time_ns.to_us (Time_ns.sub (Scheduler.now sched2) t0) :: !rtts
        done
      else
        for _ = 0 to p.lat_iters do
          ignore (Mpi.recv ep ~source:0 ~tag:1 buf);
          Mpi.send ep ~dst:0 ~tag:2 msg
        done;
      Mpi.barrier ep;
      Mpi.finalize ep);
  Runtime.run world2;
  let pm = mean !put_us and fm = mean !faa_us and rm = mean !rtts in
  {
    workload = "latency";
    value = pm;
    unit_ = "us";
    detail =
      Printf.sprintf
        "put+flush %.1fus, fetch_add %.1fus vs send/recv rtt %.1fus" pm fm rm;
    sim_time_us = t_rma +. Time_ns.to_us (Scheduler.now sched2);
  }

(* --- passive: progress while the target CPU is busy -------------------- *)

(* The target rank computes in long slices and never touches the
   library; the initiator's fetch_adds are served entirely by the target
   interface (application bypass extended to read-modify-write). *)
let rma_busy_leg ~seed ~p kind =
  let world = Runtime.create_world ~transport:kind ~seed ~nodes:2 () in
  let sched = world.Runtime.sched in
  let oss = make_pes world in
  let wins = Array.map (fun os -> Onesided.win_create os ~size:8) oss in
  let lats = ref [] in
  Runtime.spawn_ranks world (fun ~rank ->
      if rank = 1 then begin
        let cpu = Runtime.host_cpu_of_rank world 1 in
        for _ = 1 to p.passive_ops do
          Cpu.compute cpu (Time_ns.us p.passive_busy_us)
        done
      end
      else begin
        let w = wins.(0) in
        for i = 0 to p.passive_ops do
          let t0 = Scheduler.now sched in
          ignore (Onesided.Win.fetch_and_add w ~rank:1 ~offset:0 1L);
          if i > 0 then
            lats :=
              Time_ns.to_us (Time_ns.sub (Scheduler.now sched) t0) :: !lats
        done
      end);
  Runtime.run world;
  (mean !lats, Time_ns.to_us (Scheduler.now sched))

(* The same shape over send/recv: the target only enters the library
   between compute slices, so every echo waits out the current slice. *)
let mpi_busy_leg ~seed ~p =
  let world = Runtime.create_world ~seed ~nodes:2 () in
  let sched = world.Runtime.sched in
  let eps = make_mpi world in
  let lats = ref [] in
  Runtime.spawn_ranks world (fun ~rank ->
      let ep = eps.(rank) in
      if rank = 1 then begin
        let cpu = Runtime.host_cpu_of_rank world 1 in
        let b = Bytes.create 8 in
        for _ = 0 to p.passive_ops do
          let r = Mpi.irecv ep ~source:0 ~tag:1 b in
          Cpu.compute cpu (Time_ns.us p.passive_busy_us);
          ignore (Mpi.waitall ep [ r ]);
          Mpi.send ep ~dst:0 ~tag:2 b
        done
      end
      else begin
        let b = Bytes.create 8 and msg = Bytes.create 8 in
        for i = 0 to p.passive_ops do
          let t0 = Scheduler.now sched in
          Mpi.send ep ~dst:1 ~tag:1 msg;
          ignore (Mpi.recv ep ~source:1 ~tag:2 b);
          if i > 0 then
            lats :=
              Time_ns.to_us (Time_ns.sub (Scheduler.now sched) t0) :: !lats
        done
      end;
      Mpi.barrier ep;
      Mpi.finalize ep);
  Runtime.run world;
  (mean !lats, Time_ns.to_us (Scheduler.now sched))

let run_passive ~seed ~p =
  let off, t1 = rma_busy_leg ~seed ~p Runtime.Offload in
  let kern, t2 = rma_busy_leg ~seed ~p Runtime.Kernel_interrupt in
  let mpi, t3 = mpi_busy_leg ~seed ~p in
  let ratio = if off <= 0. then 0. else mpi /. off in
  {
    workload = "passive";
    value = ratio;
    unit_ = "x";
    detail =
      Printf.sprintf
        "target busy %.0fus/slice: fetch_add offload %.1fus, kernel %.1fus; \
         send/recv echo %.1fus"
        p.passive_busy_us off kern mpi;
    sim_time_us = t1 +. t2 +. t3;
  }

(* --- halo: RMA vs send/recv, compared bit for bit ---------------------- *)

let halo_init ~rank ~n i = float_of_int (((rank * n) + i) mod 17)

(* The 1-D diffusion stencil of examples/halo_exchange.ml, shrunk, with
   the exchange over pre-posted receives. *)
let halo_sendrecv ~seed ~p =
  let ranks = p.halo_ranks and n = p.halo_cells in
  let result = Array.make ranks [||] in
  let world = Runtime.create_world ~seed ~nodes:ranks () in
  let eps = make_mpi world in
  Runtime.spawn_ranks world (fun ~rank ->
      let ep = eps.(rank) in
      let left = (rank + ranks - 1) mod ranks
      and right = (rank + 1) mod ranks in
      let cur = Array.make (n + 2) 0.0 and next = Array.make (n + 2) 0.0 in
      for i = 0 to n - 1 do
        cur.(i + 1) <- halo_init ~rank ~n i
      done;
      for _iter = 1 to p.halo_iters do
        let lb = Bytes.create 8 and rb = Bytes.create 8 in
        let recvs =
          [
            Mpi.irecv ep ~source:left ~tag:1 lb;
            Mpi.irecv ep ~source:right ~tag:2 rb;
          ]
        in
        let sends =
          [
            Mpi.isend ep ~dst:left ~tag:2 (pack1 cur.(1));
            Mpi.isend ep ~dst:right ~tag:1 (pack1 cur.(n));
          ]
        in
        ignore (Mpi.waitall ep (sends @ recvs));
        cur.(0) <- unpack1 lb;
        cur.(n + 1) <- unpack1 rb;
        for i = 1 to n do
          next.(i) <- (cur.(i - 1) +. cur.(i) +. cur.(i + 1)) /. 3.0
        done;
        Array.blit next 1 cur 1 n
      done;
      result.(rank) <- Array.sub cur 1 n;
      Mpi.barrier ep;
      Mpi.finalize ep);
  Runtime.run world;
  (result, Time_ns.to_us (Scheduler.now world.Runtime.sched))

(* The same stencil over RMA windows. Each rank's window holds its two
   ghost slots, double-buffered by iteration parity so a neighbour
   running one iteration ahead writes the other slot pair; flag bytes in
   a symmetric side region carry the iteration number, so the wait is
   the shmem wait_until idiom and the target never receives. *)
let halo_rma ~seed ~p =
  let ranks = p.halo_ranks and n = p.halo_cells in
  let result = Array.make ranks [||] in
  let world = Runtime.create_world ~seed ~nodes:ranks () in
  let oss = make_pes world in
  (* 2 parities x (left ghost, right ghost). *)
  let wins = Array.map (fun os -> Onesided.win_create os ~size:32) oss in
  (* 2 parities x (flag from left, flag from right). *)
  let flags = Array.map (fun os -> Onesided.alloc os 4) oss in
  Runtime.spawn_ranks world (fun ~rank ->
      let os = oss.(rank) and w = wins.(rank) in
      let left = (rank + ranks - 1) mod ranks
      and right = (rank + 1) mod ranks in
      let cur = Array.make (n + 2) 0.0 and next = Array.make (n + 2) 0.0 in
      for i = 0 to n - 1 do
        cur.(i + 1) <- halo_init ~rank ~n i
      done;
      Onesided.Win.lock_all w;
      for iter = 1 to p.halo_iters do
        let par = iter mod 2 in
        let fv = Char.chr (iter mod 256) in
        (* My first cell is the right ghost of my left neighbour; my
           last cell the left ghost of my right neighbour. *)
        Onesided.Win.put w ~rank:left ~offset:((par * 16) + 8) (pack1 cur.(1));
        Onesided.Win.put w ~rank:right ~offset:(par * 16) (pack1 cur.(n));
        Onesided.Win.flush w ~rank:left;
        Onesided.Win.flush w ~rank:right;
        (* Data is remotely complete; now raise the iteration flags. *)
        Onesided.put os flags.(rank) ~pe:right ~offset:par (Bytes.make 1 fv);
        Onesided.put os flags.(rank) ~pe:left ~offset:(2 + par)
          (Bytes.make 1 fv);
        Onesided.wait_until os flags.(rank) ~offset:par ~value:fv;
        Onesided.wait_until os flags.(rank) ~offset:(2 + par) ~value:fv;
        let data = Onesided.Win.local_data w in
        cur.(0) <- Int64.float_of_bits (Bytes.get_int64_le data (par * 16));
        cur.(n + 1) <-
          Int64.float_of_bits (Bytes.get_int64_le data ((par * 16) + 8));
        for i = 1 to n do
          next.(i) <- (cur.(i - 1) +. cur.(i) +. cur.(i + 1)) /. 3.0
        done;
        Array.blit next 1 cur 1 n
      done;
      Onesided.Win.unlock_all w;
      Onesided.quiet os;
      result.(rank) <- Array.sub cur 1 n);
  Runtime.run world;
  (result, Time_ns.to_us (Scheduler.now world.Runtime.sched))

let run_halo ~seed ~p =
  let mpi_result, t_mpi = halo_sendrecv ~seed ~p in
  let rma_result, t_rma = halo_rma ~seed ~p in
  let mismatched = ref 0 and total = ref 0 in
  Array.iteri
    (fun r a ->
      Array.iteri
        (fun i v ->
          incr total;
          if Int64.bits_of_float v <> Int64.bits_of_float mpi_result.(r).(i)
          then incr mismatched)
        a)
    rma_result;
  let ok = !mismatched = 0 && !total = p.halo_ranks * p.halo_cells in
  {
    workload = "halo";
    value = (if ok then 1.0 else 0.0);
    unit_ = "ok";
    detail =
      Printf.sprintf "%d ranks x %d cells x %d iters: %s" p.halo_ranks
        p.halo_cells p.halo_iters
        (if ok then "RMA result byte-identical to send/recv"
         else Printf.sprintf "%d/%d cells differ" !mismatched !total);
    sim_time_us = t_mpi +. t_rma;
  }

(* --- hashtable: CAS-insert linear probing ------------------------------ *)

(* Slot s lives on rank [s mod n]; each rank's window is [occupancy
   word | slot words], the occupancy counter used on rank 0 only. A key
   claims a slot with compare-and-swap against the empty word and walks
   forward on failure — no locks, no target involvement. *)
let run_hashtable ~seed ~p =
  let n = p.ht_ranks and slots = p.ht_slots in
  let per_rank = (slots + n - 1) / n in
  let world = Runtime.create_world ~seed ~nodes:n () in
  let oss = make_pes world in
  let wins =
    Array.map (fun os -> Onesided.win_create os ~size:(8 + (per_rank * 8))) oss
  in
  let max_probes = ref 0 in
  Runtime.spawn_ranks world (fun ~rank ->
      let w = wins.(rank) in
      for i = 0 to p.ht_keys_per_rank - 1 do
        let key = Int64.of_int ((rank * p.ht_keys_per_rank) + i + 1) in
        (* Low bits of a wide multiply, folded once — deliberately not a
           permutation of the key space, so consecutive keys do collide
           and the probe loop is exercised. *)
        let mixed = Int64.mul key 0x9E3779B97F4A7C15L in
        let mixed = Int64.logxor mixed (Int64.shift_right_logical mixed 17) in
        let h = Int64.to_int (Int64.logand mixed 0x3FFFFFFFL) mod slots in
        let rec probe tries =
          if tries >= slots then failwith "Rma.hashtable: table full"
          else begin
            let slot = (h + tries) mod slots in
            let owner = slot mod n and off = 8 + (slot / n * 8) in
            let old =
              Onesided.Win.compare_and_swap w ~rank:owner ~offset:off
                ~expected:0L ~desired:key
            in
            if old = 0L then tries + 1 else probe (tries + 1)
          end
        in
        let probes = probe 0 in
        if probes > !max_probes then max_probes := probes;
        ignore (Onesided.Win.fetch_and_add w ~rank:0 ~offset:0 1L)
      done);
  Runtime.run world;
  let occupancy = Bytes.get_int64_le (Onesided.Win.local_data wins.(0)) 0 in
  let found = ref 0 in
  Array.iter
    (fun w ->
      let d = Onesided.Win.local_data w in
      for s = 0 to per_rank - 1 do
        if Bytes.get_int64_le d (8 + (s * 8)) <> 0L then incr found
      done)
    wins;
  let expect = n * p.ht_keys_per_rank in
  let ok = !found = expect && Int64.to_int occupancy = expect in
  {
    workload = "hashtable";
    value = Int64.to_float occupancy;
    unit_ = "keys";
    detail =
      Printf.sprintf
        "%d CAS inserts over %d slots on %d ranks: occupancy %Ld, %d slots \
         filled, max probes %d%s"
        expect slots n occupancy !found !max_probes
        (if ok then "" else " (MISMATCH)");
    sim_time_us = Time_ns.to_us (Scheduler.now world.Runtime.sched);
  }

(* --- driver ------------------------------------------------------------ *)

let run_workload ~seed ~p = function
  | "latency" -> run_latency ~seed ~p
  | "passive" -> run_passive ~seed ~p
  | "halo" -> run_halo ~seed ~p
  | "hashtable" -> run_hashtable ~seed ~p
  | other -> invalid_arg (Printf.sprintf "Rma: unknown workload %S" other)

let run ?(workloads = workload_names) ?(quick = false) ?(seed = 0) () =
  let p = if quick then quick_params else full_params in
  List.iter
    (fun w ->
      if not (List.mem w workload_names) then
        invalid_arg
          (Printf.sprintf "Rma: unknown workload %S (valid: %s)" w
             (String.concat ", " workload_names)))
    workloads;
  { rows = List.map (run_workload ~seed ~p) workloads }

let find_row t ~workload = List.find_opt (fun r -> r.workload = workload) t.rows

let pp ppf t =
  Format.fprintf ppf
    "one-sided RMA (windows + Portals atomics; see EXPERIMENTS.md)@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %10.1f %-4s %s@." r.workload r.value r.unit_
        r.detail)
    t.rows

(* --- perf records ------------------------------------------------------ *)

let record_id workload = "RMA." ^ workload

let perf_records ?(workloads = workload_names) ?(quick = false) ?(seed = 0) ()
    =
  let p = if quick then quick_params else full_params in
  List.map
    (fun w ->
      Perf.meter ~id:(record_id w) (fun () -> ignore (run_workload ~seed ~p w)))
    workloads
