(** The application-bypass experiment of Table 5 / Figure 5.

    Two nodes iterate:
    {v
    pre-post several non-blocking receives;
    barrier;
    post a batch of sends;
    work (fixed loop iterations);
    get time A;
    wait for the batch of messages;
    get time B;
    repeat;
    v}

    Both nodes run the loop; only one performs work. The measurement is
    B - A on the working node: how much message handling {e remained} to
    be done after the work interval. A batch is ten equal-sized messages
    (the paper used 50 KB) exchanged in both directions. *)

type params = {
  backend : [ `Portals | `Gm ];
  transport : Runtime.transport_kind;
  message_size : int;  (** Bytes per message (paper: 50_000). *)
  batch : int;  (** Messages per direction per iteration (paper: 10). *)
  iterations : int;  (** Repetitions averaged over. *)
  work : Sim_engine.Time_ns.t;  (** The work interval. *)
  tests_during_work : int;
      (** MPI test calls sprinkled into the work loop (the paper's side
          experiment used 3; 0 = none). *)
}

val default_params : params
(** Portals backend on the kernel (RTS/CTS) transport — the configuration
    the paper actually measured — 10 x 50 KB, 4 iterations, no work, no
    sprinkled tests. *)

type result = {
  mean_wait : float;  (** Mean B - A on the working node, microseconds. *)
  max_wait : float;
  mean_work_elapsed : float;
      (** Wall time the work interval actually took on the working node,
          microseconds — exceeds the nominal interval when receive
          processing steals host cycles. *)
  metrics : Sim_engine.Metrics.Snapshot.t;
      (** The world's full registry after the run: the measured
          ["fig.wait_us"]/["fig.work_us"] summaries plus every fabric
          instrument (NI drops, CPU occupancy, link utilisation, EQ
          depth, protocol counters). *)
  spans : Sim_engine.Trace.span list;
      (** Structured trace spans; empty unless [capture_trace]. *)
}

val run : ?capture_trace:bool -> params -> result
(** Execute the experiment in a fresh simulated world. With
    [capture_trace:true] the world's trace is enabled and the retained
    spans are returned in the result (default [false]: tracing stays a
    single disabled branch per event). *)
