(** Tables 1–4: the information passed on the wire for each message type,
    regenerated from the implementation's own {!Portals.Wire.field_inventory}
    plus a measured encoding of a representative message. Tables 5–6
    extend the set with the atomic request/reply formats (the
    read-modify-write extension of §4.4's one-sided addressing). *)

type table = {
  number : int;  (** 1..4 as in the paper; 5..6 the atomic extension. *)
  title : string;
  fields : (string * string) list;
  encoded_bytes : int;  (** Size of a representative encoded message. *)
  payload_bytes : int;  (** Payload portion of that message. *)
}

val run : unit -> table list

val pp : Format.formatter -> table list -> unit
