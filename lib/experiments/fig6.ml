open Sim_engine

type series = { label : string; points : (float * float) list }

type t = {
  message_size : int;
  batch : int;
  series : series list;
  metrics : Metrics.Snapshot.t;
  traces : (string * Trace.span list) list;
}

let work_intervals_ms = [ 0.; 2.; 5.; 10.; 15.; 20.; 25.; 30.; 40.; 50. ]

(* One configuration's sweep. Each (work interval, mean wait) point goes
   both into a plain [Stats.Series] — the original output path — and into
   the aggregate registry as a ["fig6.wait_ms"] series labelled with the
   configuration, so consumers can read the figure straight out of a
   metrics snapshot. The final (largest-work) run of each sweep donates
   its full world registry, labelled by configuration, and optionally its
   trace spans. *)
let sweep ~registry ~capture_trace ~label ~message_size ~batch ~iterations
    ~work_ms ~backend ~transport ~tests_during_work =
  let labels = [ ("config", label) ] in
  let curve = Metrics.series registry ~labels "fig6.wait_ms" in
  let legacy = Stats.Series.create ~name:label () in
  let last = List.length work_ms - 1 in
  let spans = ref [] in
  List.iteri
    (fun i ms ->
      let donor = i = last in
      let result =
        Fig5.run
          ~capture_trace:(capture_trace && donor)
          {
            Fig5.backend;
            transport;
            message_size;
            batch;
            iterations;
            work = Time_ns.ms ms;
            tests_during_work;
          }
      in
      let y = result.Fig5.mean_wait /. 1000. in
      Stats.Series.push legacy ~x:ms ~y;
      Metrics.push curve ~x:ms ~y;
      if donor then begin
        Metrics.absorb registry ~labels result.Fig5.metrics;
        spans := result.Fig5.spans
      end)
    work_ms;
  ({ label; points = Stats.Series.points legacy }, (label, !spans))

let run ?(message_size = 50_000) ?(batch = 10) ?(iterations = 3)
    ?(work_ms = work_intervals_ms) ?(capture_trace = false) () =
  let registry = Metrics.create ~detail:true () in
  let sweep ~label ~backend ~transport ~tests_during_work =
    sweep ~registry ~capture_trace ~label ~message_size ~batch ~iterations
      ~work_ms ~backend ~transport ~tests_during_work
  in
  let runs =
    [
      sweep ~label:"MPICH/GM" ~backend:`Gm ~transport:Runtime.Offload
        ~tests_during_work:0;
      sweep ~label:"MPICH/Portals3.0" ~backend:`Portals ~transport:Runtime.Rtscts
        ~tests_during_work:0;
      sweep ~label:"MPICH/GM+3tests" ~backend:`Gm ~transport:Runtime.Offload
        ~tests_during_work:3;
      sweep ~label:"Portals3.0-MCP" ~backend:`Portals ~transport:Runtime.Offload
        ~tests_during_work:0;
    ]
  in
  {
    message_size;
    batch;
    series = List.map fst runs;
    metrics = Metrics.snapshot registry;
    traces = (if capture_trace then List.map snd runs else []);
  }

let pp ppf t =
  Format.fprintf ppf
    "Figure 6: wait duration vs work interval (%d x %d-byte messages)@."
    t.batch t.message_size;
  Format.fprintf ppf "%-14s" "work(ms)";
  List.iter (fun s -> Format.fprintf ppf "%-20s" s.label) t.series;
  Format.fprintf ppf "@.";
  match t.series with
  | [] -> ()
  | first :: _ ->
    List.iteri
      (fun i (x, _) ->
        Format.fprintf ppf "%-14.1f" x;
        List.iter
          (fun s ->
            let _, y = List.nth s.points i in
            Format.fprintf ppf "%-20.3f" y)
          t.series;
        Format.fprintf ppf "@.")
      first.points
