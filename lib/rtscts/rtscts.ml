open Sim_engine
module Frame = Frame

type config = { eager_threshold : int; per_packet_interrupt : bool }

let default_config = { eager_threshold = 4096; per_packet_interrupt = true }

type stats = {
  eager_messages : int;
  rendezvous_messages : int;
  rts_sent : int;
  cts_sent : int;
  data_packets : int;
  bytes_carried : int;
  failed_handshakes : int;
}

type queued = { q_dst : Simnet.Proc_id.t; q_payload : bytes }

(* Per-(src,dst) ordered sender pipeline. *)
type pair = {
  src : Simnet.Proc_id.t;
  dst : Simnet.Proc_id.t;
  waiting : queued Queue.t;
  mutable busy : bool;
  mutable next_msg_id : int;
  awaiting_cts : (int, bytes) Hashtbl.t;
}

(* Receive-side reassembly of one streamed message. *)
type assembly = { buffer : bytes; mutable received : int }

type mstats = {
  mutable s_eager : int;
  mutable s_rendezvous : int;
  mutable s_rts : int;
  mutable s_cts : int;
  mutable s_data : int;
  mutable s_bytes : int;
  mutable s_failed : int;
}

type t = {
  fabric : Simnet.Fabric.t;
  cfg : config;
  sched : Scheduler.t;
  pairs : (Simnet.Proc_id.t * Simnet.Proc_id.t, pair) Hashtbl.t;
  kcopy : Simnet.Link.t array; (* per-node kernel copy engine *)
  uppers : (Simnet.Proc_id.t, src:Simnet.Proc_id.t -> bytes -> unit) Hashtbl.t;
  assemblies : (Simnet.Proc_id.t * Simnet.Proc_id.t * int, assembly) Hashtbl.t;
  st : mstats;
  mutable send_error :
    src:Simnet.Proc_id.t -> dst:Simnet.Proc_id.t -> len:int -> unit;
}

let profile t = Simnet.Fabric.profile t.fabric
let chunk_payload t = (profile t).Simnet.Profile.mtu - Frame.header_size

let create ?config fabric =
  let profile = Simnet.Fabric.profile fabric in
  let cfg =
    match config with
    | Some c -> c
    | None ->
      { eager_threshold = profile.Simnet.Profile.mtu; per_packet_interrupt = true }
  in
  let sched = Simnet.Fabric.sched fabric in
  let t =
    {
      fabric;
      cfg;
      sched;
      pairs = Hashtbl.create 64;
      kcopy =
        Array.init (Simnet.Fabric.node_count fabric) (fun nid ->
            Simnet.Link.create ~name:(Printf.sprintf "kcopy%d" nid) sched);
      uppers = Hashtbl.create 64;
      assemblies = Hashtbl.create 64;
      st =
        {
          s_eager = 0;
          s_rendezvous = 0;
          s_rts = 0;
          s_cts = 0;
          s_data = 0;
          s_bytes = 0;
          s_failed = 0;
        };
      send_error = (fun ~src:_ ~dst:_ ~len:_ -> ());
    }
  in
  let m = Scheduler.metrics sched in
  let labels = [ ("protocol", "rtscts") ] in
  let probe name f = Metrics.probe m ~labels name (fun () -> float_of_int (f ())) in
  probe "rtscts.eager_messages" (fun () -> t.st.s_eager);
  probe "rtscts.rendezvous_messages" (fun () -> t.st.s_rendezvous);
  probe "rtscts.rts_sent" (fun () -> t.st.s_rts);
  probe "rtscts.cts_sent" (fun () -> t.st.s_cts);
  probe "rtscts.data_packets" (fun () -> t.st.s_data);
  probe "rtscts.bytes_carried" (fun () -> t.st.s_bytes);
  probe "rtscts.failed_handshakes" (fun () -> t.st.s_failed);
  (* A node crash kills every handshake touching it: transfers parked in
     [awaiting_cts] toward the dead node (their CTS will never come),
     everything queued behind them, and partial reassemblies of the dead
     node's streams. Failing them now un-stalls the pair pipeline and
     surfaces the loss through [on_send_error]. *)
  Simnet.Fabric.on_crash fabric (fun nid ->
      Hashtbl.iter
        (fun (_, dst) pair ->
          if dst.Simnet.Proc_id.nid = nid then begin
            let stalled = Hashtbl.length pair.awaiting_cts > 0 in
            Hashtbl.iter
              (fun _ payload ->
                t.st.s_failed <- t.st.s_failed + 1;
                t.send_error ~src:pair.src ~dst:pair.dst
                  ~len:(Bytes.length payload))
              pair.awaiting_cts;
            Hashtbl.reset pair.awaiting_cts;
            Queue.iter
              (fun q ->
                t.st.s_failed <- t.st.s_failed + 1;
                t.send_error ~src:pair.src ~dst:q.q_dst
                  ~len:(Bytes.length q.q_payload))
              pair.waiting;
            Queue.clear pair.waiting;
            if stalled then pair.busy <- false
          end)
        t.pairs;
      let dead =
        Hashtbl.fold
          (fun ((s, _, _) as key) _ acc ->
            if s.Simnet.Proc_id.nid = nid then key :: acc else acc)
          t.assemblies []
      in
      List.iter (Hashtbl.remove t.assemblies) dead);
  t

let on_send_error t f = t.send_error <- f

let stats t =
  {
    eager_messages = t.st.s_eager;
    rendezvous_messages = t.st.s_rendezvous;
    rts_sent = t.st.s_rts;
    cts_sent = t.st.s_cts;
    data_packets = t.st.s_data;
    bytes_carried = t.st.s_bytes;
    failed_handshakes = t.st.s_failed;
  }

let host_cpu t nid = Simnet.Node.host_cpu (Simnet.Fabric.node t.fabric nid)
let steal t nid cost = Cpu.steal (host_cpu t nid) cost

let pair_of t ~src ~dst =
  match Hashtbl.find_opt t.pairs (src, dst) with
  | Some p -> p
  | None ->
    let p =
      {
        src;
        dst;
        waiting = Queue.create ();
        busy = false;
        next_msg_id = 0;
        awaiting_cts = Hashtbl.create 4;
      }
    in
    Hashtbl.replace t.pairs (src, dst) p;
    p

let send_frame t ~src ~dst frame =
  Simnet.Fabric.send t.fabric ~src ~dst (Frame.encode frame)

(* --- sender side ------------------------------------------------------ *)

(* Stream the packets of a granted transfer. Each packet occupies the
   sender's kernel copy engine, then enters the wire; copies and wire
   serialisation overlap across packets (the paper's pipelining). *)
let stream_packets t pair msg_id payload ~on_done =
  let profile = profile t in
  let chunk = chunk_payload t in
  let len = Bytes.length payload in
  let copy_link = t.kcopy.(pair.src.Simnet.Proc_id.nid) in
  let rec go offset =
    if offset >= len then on_done ()
    else begin
      let n = min chunk (len - offset) in
      let copy_done =
        Simnet.Link.occupy copy_link (Simnet.Profile.copy_time profile n)
      in
      t.st.s_data <- t.st.s_data + 1;
      Scheduler.at t.sched copy_done (fun () ->
          steal t pair.src.Simnet.Proc_id.nid (Simnet.Profile.copy_time profile n);
          send_frame t ~src:pair.src ~dst:pair.dst
            {
              Frame.kind = Frame.Data;
              msg_id;
              total_len = len;
              offset;
              payload = Bytes.sub payload offset n;
            };
          if offset + n >= len then on_done ());
      if offset + n < len then go (offset + n)
    end
  in
  if len = 0 then on_done () else go 0

let rec pump t pair =
  match Queue.take_opt pair.waiting with
  | None -> pair.busy <- false
  | Some { q_dst = dst; q_payload = payload } ->
    pair.busy <- true;
    let profile = profile t in
    let len = Bytes.length payload in
    let syscall = profile.Simnet.Profile.host_syscall_cost in
    steal t pair.src.Simnet.Proc_id.nid syscall;
    if len <= t.cfg.eager_threshold then begin
      t.st.s_bytes <- t.st.s_bytes + len;
      t.st.s_eager <- t.st.s_eager + 1;
      let copy_link = t.kcopy.(pair.src.Simnet.Proc_id.nid) in
      let copy_done =
        Simnet.Link.occupy copy_link (Simnet.Profile.copy_time profile len)
      in
      let msg_id = pair.next_msg_id in
      pair.next_msg_id <- pair.next_msg_id + 1;
      Scheduler.at t.sched copy_done (fun () ->
          steal t pair.src.Simnet.Proc_id.nid (Simnet.Profile.copy_time profile len);
          send_frame t ~src:pair.src ~dst
            { Frame.kind = Frame.Eager; msg_id; total_len = len; offset = 0; payload };
          pump t pair)
    end
    else if
      (* A rendezvous needs both ends live: the RTS must reach [dst] and
         the CTS must find its way back to [pair.src]. If either endpoint
         is unregistered the handshake can never complete — fail the send
         to the sender now instead of parking it in [awaiting_cts]
         forever (and stalling everything queued behind it). *)
      not
        (Simnet.Fabric.endpoint_live t.fabric pair.src
        && Simnet.Fabric.endpoint_live t.fabric dst)
    then begin
      t.st.s_failed <- t.st.s_failed + 1;
      t.send_error ~src:pair.src ~dst ~len;
      pump t pair
    end
    else begin
      t.st.s_bytes <- t.st.s_bytes + len;
      t.st.s_rendezvous <- t.st.s_rendezvous + 1;
      t.st.s_rts <- t.st.s_rts + 1;
      let msg_id = pair.next_msg_id in
      pair.next_msg_id <- pair.next_msg_id + 1;
      Hashtbl.replace pair.awaiting_cts msg_id payload;
      Scheduler.after t.sched syscall (fun () ->
          send_frame t ~src:pair.src ~dst
            {
              Frame.kind = Frame.Rts;
              msg_id;
              total_len = len;
              offset = 0;
              payload = Bytes.empty;
            })
      (* The pump stalls here; the CTS handler resumes it. *)
    end

let enqueue t ~src ~dst payload =
  let pair = pair_of t ~src ~dst in
  Queue.add { q_dst = dst; q_payload = payload } pair.waiting;
  if not pair.busy then pump t pair

let handle_cts t ~me ~from msg_id =
  let pair = pair_of t ~src:me ~dst:from in
  match Hashtbl.find_opt pair.awaiting_cts msg_id with
  | None -> () (* stale grant: the transfer no longer exists *)
  | Some payload ->
    Hashtbl.remove pair.awaiting_cts msg_id;
    stream_packets t pair msg_id payload ~on_done:(fun () -> pump t pair)

(* --- receiver side ---------------------------------------------------- *)

let deliver_up t ~me ~src payload =
  match Hashtbl.find_opt t.uppers me with
  | None -> () (* upper layer unregistered mid-flight *)
  | Some handler -> handler ~src payload

let handle_frame t ~me ~src frame =
  let profile = profile t in
  let nid = me.Simnet.Proc_id.nid in
  let interrupt () = steal t nid profile.Simnet.Profile.host_interrupt_cost in
  match frame.Frame.kind with
  | Frame.Eager ->
    interrupt ();
    let cost =
      Time_ns.add profile.Simnet.Profile.host_interrupt_cost
        (Simnet.Profile.copy_time profile frame.Frame.total_len)
    in
    let copy_done = Simnet.Link.occupy t.kcopy.(nid) cost in
    Scheduler.at t.sched copy_done (fun () ->
        steal t nid (Simnet.Profile.copy_time profile frame.Frame.total_len);
        deliver_up t ~me ~src frame.Frame.payload)
  | Frame.Rts ->
    interrupt ();
    t.st.s_cts <- t.st.s_cts + 1;
    send_frame t ~src:me ~dst:src
      {
        Frame.kind = Frame.Cts;
        msg_id = frame.Frame.msg_id;
        total_len = frame.Frame.total_len;
        offset = 0;
        payload = Bytes.empty;
      }
  | Frame.Cts ->
    interrupt ();
    handle_cts t ~me ~from:src frame.Frame.msg_id
  | Frame.Data ->
    if t.cfg.per_packet_interrupt then interrupt ();
    let key = (src, me, frame.Frame.msg_id) in
    let assembly =
      match Hashtbl.find_opt t.assemblies key with
      | Some a -> a
      | None ->
        let a = { buffer = Bytes.create frame.Frame.total_len; received = 0 } in
        Hashtbl.replace t.assemblies key a;
        a
    in
    let n = Bytes.length frame.Frame.payload in
    Bytes.blit frame.Frame.payload 0 assembly.buffer frame.Frame.offset n;
    assembly.received <- assembly.received + n;
    let copy_done =
      Simnet.Link.occupy t.kcopy.(nid) (Simnet.Profile.copy_time profile n)
    in
    let complete = assembly.received >= frame.Frame.total_len in
    Scheduler.at t.sched copy_done (fun () ->
        steal t nid (Simnet.Profile.copy_time profile n);
        if complete then begin
          Hashtbl.remove t.assemblies key;
          deliver_up t ~me ~src assembly.buffer
        end)

(* --- the transport record -------------------------------------------- *)

let transport t =
  let profile = profile t in
  {
    Simnet.Transport.sched = t.sched;
    name = profile.Simnet.Profile.name ^ "/rtscts";
    send = (fun ~src ~dst payload -> enqueue t ~src ~dst payload);
    register =
      (fun pid handler ->
        Hashtbl.replace t.uppers pid handler;
        Simnet.Fabric.register t.fabric pid (fun ~src payload ->
            match Frame.decode payload with
            | Error _ -> () (* not ours: drop silently at this layer *)
            | Ok frame -> handle_frame t ~me:pid ~src frame));
    unregister =
      (fun pid ->
        Hashtbl.remove t.uppers pid;
        Simnet.Fabric.unregister t.fabric pid);
    host_cpu = (fun nid -> host_cpu t nid);
    charge_rx = (fun nid cost -> steal t nid cost);
    rx_track = (fun nid -> Printf.sprintf "cpu%d" nid);
    match_entry_cost = profile.Simnet.Profile.host_match_cost;
    rx_fixed_cost = profile.Simnet.Profile.host_interrupt_cost;
    data_in_time = (fun len -> Simnet.Profile.copy_time profile len);
    host_copy_time = (fun len -> Simnet.Profile.copy_time profile len);
    send_overhead = profile.Simnet.Profile.host_syscall_cost;
    node_incarnation = (fun nid -> Simnet.Fabric.incarnation t.fabric nid);
    on_crash = (fun f -> Simnet.Fabric.on_crash t.fabric f);
    on_restart = (fun f -> Simnet.Fabric.on_restart t.fabric f);
  }
