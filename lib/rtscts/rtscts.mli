(** The RTS/CTS packetization and flow-control module of §3.

    This reproduces the production Cplant data path: "The Portals module
    communicates information about message delivery to the RTS/CTS module,
    which is responsible for packetization and flow control. ... Outgoing
    message data is copied into kernel memory, then copied into the
    Myrinet NIC. On the receive side, packets are copied from the Myrinet
    NIC into kernel memory, and then from kernel memory into the
    application's memory. All of these memory copies are overlapping, so
    we are able to achieve reasonable bandwidth due to packet pipelining."

    Concretely:
    {ul
    {- Messages at or below the eager threshold are sent as one frame
       after a syscall + user-to-kernel copy.}
    {- Larger messages perform an RTS/CTS handshake, then stream MTU-sized
       packets. Each packet is copied user-to-kernel on a dedicated copy
       engine that overlaps the wire — the pipeline bottleneck is
       min(copy bandwidth, wire bandwidth), not their sum.}
    {- Receive-side packets are copied NIC-to-kernel, stealing host CPU
       (this is the interrupt-driven implementation whose drawbacks §5.3
       concedes), and the assembled message is handed up.}
    {- Messages between one (src, dst) pair are strictly ordered: a large
       transfer's handshake stalls everything queued behind it.}}

    The result is a {!Simnet.Transport.t}, so a Portals {!Portals.Ni} (or
    anything else) can run unchanged over either this kernel path or the
    NIC-offload path. *)

module Frame = Frame
(** The module's wire framing, re-exported for tests and benches. *)

type config = {
  eager_threshold : int;
      (** Messages up to this many bytes skip the handshake. *)
  per_packet_interrupt : bool;
      (** Charge the host an interrupt per received packet (true matches
          the "MCP as packet delivery device" of §3); false models ideal
          interrupt coalescing — an ablation knob. *)
}

val default_config : config
(** Eager at or below 4096 bytes; per-packet interrupts on. {!create}
    without an explicit config instead uses the fabric profile's MTU as
    the threshold. *)

type stats = {
  eager_messages : int;
  rendezvous_messages : int;
  rts_sent : int;
  cts_sent : int;
  data_packets : int;
  bytes_carried : int;
  failed_handshakes : int;
      (** Rendezvous sends refused because an endpoint was unregistered
          (see {!on_send_error}). *)
}

type t

val create : ?config:config -> Simnet.Fabric.t -> t
(** Build the module over a fabric. With no [config], the eager threshold
    is the fabric profile's MTU. *)

val transport : t -> Simnet.Transport.t
(** The transport interface: [send] enqueues into the per-destination
    ordered pipeline; registered handlers receive fully reassembled
    messages in kernel context (host CPU charged).

    A process that sends messages above the eager threshold must itself be
    registered — the clear-to-send comes back addressed to it. A
    rendezvous whose sender or destination is unregistered at handshake
    time is refused immediately: the message is dropped, counted in
    [failed_handshakes] (and the [rtscts.failed_handshakes] metric), the
    {!on_send_error} callback fires, and the per-pair pipeline moves on to
    the next queued message instead of stalling forever on a CTS that can
    never arrive. *)

val on_send_error :
  t -> (src:Simnet.Proc_id.t -> dst:Simnet.Proc_id.t -> len:int -> unit) -> unit
(** Called when a rendezvous send is refused because an endpoint was
    unregistered. Default: nothing (the failure is still counted). *)

val stats : t -> stats

val chunk_payload : t -> int
(** Bytes of message payload carried per data packet. *)
