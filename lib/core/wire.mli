(** Wire format of the Portals message types (§4.6, Tables 1–4, plus the
    atomic extension).

    {ul
    {- {b Put request} (Table 1): operation, initiator, target, portal
       index, cookie, match bits, offset, the initiator's memory-descriptor
       handle ("transmitted even though this value cannot be interpreted by
       the target" — it routes the acknowledgment), length, and data. A
       flag signifies that no acknowledgment is requested.}
    {- {b Acknowledgment} (Table 2): the put request echoed with initiator
       and target swapped; the only new information is the manipulated
       length. Carries the event-queue handle so the initiator-side
       runtime "only needs to confirm that the event queue still exists"
       (§4.8).}
    {- {b Get request} (Table 3): like a put request without data, and
       {e without} an event queue handle — the reply routes through the
       memory descriptor, which must stay linked until the reply arrives.}
    {- {b Reply} (Table 4): the get request echoed with the pair swapped,
       plus manipulated length and the data.}
    {- {b Atomic request} (beyond the paper's tables; the foMPI-style
       one-sided extension): a get request carrying an atomic opcode
       ({!aop}) plus a 64-bit operand and compare value in a 17-byte
       extension block after the header. The target NI reads, modifies and
       writes the matched 64-bit word at match time — application bypass
       (§5.1) extended to read-modify-write.}
    {- {b Atomic reply}: the atomic request echoed with the pair swapped;
       the operand slot carries the word's pre-operation (fetched) value,
       so no payload is needed. Routes through the memory descriptor like
       a get reply.}}

    Beyond the paper's tables, every message carries the sender node's
    monotonic {e incarnation} number so a receiver can fence traffic from a
    sender's previous life after a crash–restart (the connectionless
    analogue of tearing down a stale connection; see [Ni]).

    The encoding is little-endian with a fixed 72-byte header, an optional
    17-byte atomic extension block, then payload. Decoding validates
    magic, version, operation, atomic opcode and lengths so a corrupt
    message surfaces as an error, not an exception.

    {b Integrity.} While [Simnet.Integrity] is enabled the encoder emits
    version-[0x31] frames: the version-[0x30] image plus a 4-byte
    {!Simnet.Crc32c} trailer over header, extension block and payload.
    Decoders verify the trailer ({!decode_error.Bad_checksum}) and, while
    the switch is on, reject unprotected [0x30] frames so a bit flip in
    the version byte cannot downgrade a frame out of coverage. With the
    switch off (the default) the format is byte-identical to the
    pre-integrity encoding. *)

type op =
  | Put_request
  | Ack
  | Get_request
  | Reply
  | Atomic_request
  | Atomic_reply

val op_to_string : op -> string
val pp_op : Format.formatter -> op -> unit

type aop =
  | Fetch_add  (** Deposit [old + operand]; fetch [old]. *)
  | Swap  (** Deposit [operand]; fetch [old]. *)
  | Cas
      (** Deposit [operand] iff [old = compare], else leave unchanged;
          fetch [old] either way (success is [fetched = compare]). *)

val aop_to_string : aop -> string
val pp_aop : Format.formatter -> aop -> unit
val all_aops : aop list

type atomic = {
  aop : aop;
  operand : int64;
      (** Request: addend / new value. Reply: the fetched value. *)
  compare : int64;  (** CAS expected value; 0 for other opcodes. *)
}

type t = {
  op : op;
  ack_requested : bool;  (** Put requests only; false elsewhere. *)
  triggered : bool;
      (** Provenance bit (bit 1 of the flags byte): the message was fired
          by a pre-armed triggered chain on the initiator's NI rather
          than by a host fiber. Targets log such deposits as
          {!Event.kind.Triggered} instead of [Put], making NIC-resident
          forwarding wire-visible. Untriggered frames stay byte-identical
          to the pre-extension format. *)
  initiator : Simnet.Proc_id.t;
  target : Simnet.Proc_id.t;
  portal_index : int;
  cookie : int;  (** Access control entry index (§4.5). *)
  match_bits : Match_bits.t;
  offset : int;
  md_handle : Handle.md;
      (** Initiator-side MD: for the ack (put) or the reply (get/atomic). *)
  eq_handle : Handle.eq;
      (** Initiator-side EQ for the ack event; {!Handle.none} on get and
          atomic requests and on replies. *)
  incarnation : int;
      (** Sender node's incarnation at send time (0 until a restart). *)
  length : int;
      (** Requested length; manipulated length in ack/reply; the operated
          word width (8) on atomic messages. *)
  data : bytes;  (** Payload (put request and reply); else empty. *)
  atomic : atomic option;  (** Present iff [op] is atomic. *)
}

val header_size : int

val atomic_block_size : int
(** Size of the atomic extension block that follows the header on atomic
    messages: 1 opcode byte + 8 operand bytes + 8 compare bytes. *)

val atomic_word_size : int
(** Width in bytes of the word atomics operate on (8). *)

val checksum_size : int
(** Size of the CRC-32C trailer a version-[0x31] frame carries (4). *)

val frame_checksum_size : unit -> int
(** {!checksum_size} if [Simnet.Integrity] is currently enabled, else 0 —
    the per-frame byte overhead the current encoding mode adds. *)

val put_request :
  ?ack_requested:bool ->
  ?triggered:bool ->
  ?incarnation:int ->
  ?length:int ->
  initiator:Simnet.Proc_id.t ->
  target:Simnet.Proc_id.t ->
  portal_index:int ->
  cookie:int ->
  match_bits:Match_bits.t ->
  offset:int ->
  md_handle:Handle.md ->
  eq_handle:Handle.eq ->
  data:bytes ->
  unit ->
  t
(** [length] overrides the wire length field (default
    [Bytes.length data]) — used with {!encode_with}, where the payload is
    supplied by a blit instead of [data]. *)

val ack_of_put : ?incarnation:int -> t -> mlength:int -> t
(** Build the acknowledgment for a put request: fields echoed, initiator
    and target swapped, data dropped, length replaced by [mlength].
    [incarnation] (default: echo the request's) stamps the responder's own
    incarnation. Raises [Invalid_argument] on a non-put message. *)

val get_request :
  ?incarnation:int ->
  initiator:Simnet.Proc_id.t ->
  target:Simnet.Proc_id.t ->
  portal_index:int ->
  cookie:int ->
  match_bits:Match_bits.t ->
  offset:int ->
  md_handle:Handle.md ->
  rlength:int ->
  unit ->
  t

val reply_of_get : ?incarnation:int -> t -> mlength:int -> data:bytes -> t
(** Build the reply for a get request: fields echoed, pair swapped, data
    attached. [incarnation] as in {!ack_of_put}. Raises
    [Invalid_argument] on a non-get message. *)

val atomic_request :
  ?incarnation:int ->
  aop:aop ->
  operand:int64 ->
  ?compare:int64 ->
  initiator:Simnet.Proc_id.t ->
  target:Simnet.Proc_id.t ->
  portal_index:int ->
  cookie:int ->
  match_bits:Match_bits.t ->
  offset:int ->
  md_handle:Handle.md ->
  unit ->
  t
(** An atomic request on the 64-bit word at [offset] in the matched
    region. [compare] (default [0L]) only matters for {!Cas}. Like a get
    request it carries no event-queue handle: the fetched-value reply
    routes through [md_handle]. [length] is fixed at
    {!atomic_word_size}. *)

val atomic_reply_of_request : ?incarnation:int -> t -> fetched:int64 -> t
(** Build the fetched-value reply for an atomic request: fields echoed,
    pair swapped, [fetched] placed in the operand slot. [incarnation] as
    in {!ack_of_put}. Raises [Invalid_argument] on a non-atomic-request
    message. *)

val fetched_value : t -> int64 option
(** The fetched value of an atomic reply; [None] on any other message. *)

val encode : t -> bytes
(** Raises [Invalid_argument] when [op] and [atomic] disagree — an
    atomic operation without its extension block, or a block attached to
    an operation whose frame has no room for one (it would overwrite the
    start of the payload). *)

val encode_with : t -> fill:(bytes -> int -> unit) -> bytes
(** [encode_with t ~fill] allocates the wire image, writes the header
    from [t], and calls [fill buf off] exactly once to deposit
    [t.length] payload bytes at [off]; [t.data] is ignored. Initiators
    use this to blit payload straight from MD memory into the image,
    skipping the intermediate copy an [Md.read] + {!encode} pair would
    make. *)

type decode_error =
  | Bad_magic
  | Bad_version of int
      (** Unknown version byte — or an unprotected [0x30] frame while
          [Simnet.Integrity] is enabled. *)
  | Bad_operation of int
  | Bad_atomic_op of int
      (** An atomic message whose extension block carries an opcode
          outside {!all_aops}. *)
  | Truncated of { expected : int; got : int }
  | Bad_checksum of { expected : int; got : int }
      (** The CRC-32C trailer of a version-[0x31] frame does not match
          the bytes ([expected] computed, [got] stored) — in-flight
          corruption. NIs count these under the [Checksum_failed] drop
          reason (§4.8). *)

val pp_decode_error : Format.formatter -> decode_error -> unit

val decode : bytes -> (t, decode_error) result

val decode_view : bytes -> (t, decode_error) result
(** Like {!decode}, but without copying the payload: the returned [data]
    is the {e whole} wire image, with payload bytes at
    [\[header_size, header_size + length)]. The receive hot path uses
    this to blit payload straight into the matched memory descriptor.
    (Atomic messages carry no payload, so the extension block never
    shifts a viewed payload.) Do not re-{!encode} a viewed message. *)

val field_inventory : op -> (string * string) list
(** The (field, description) rows of the paper's corresponding table —
    what this implementation actually places on the wire. Tables 1–4 for
    the paper's four operations; the atomic request/reply inventories
    extend the set in the paper's format. Used by the bench harness to
    regenerate the tables. *)

val pp : Format.formatter -> t -> unit
