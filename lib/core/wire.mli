(** Wire format of the four Portals message types (§4.6, Tables 1–4).

    {ul
    {- {b Put request} (Table 1): operation, initiator, target, portal
       index, cookie, match bits, offset, the initiator's memory-descriptor
       handle ("transmitted even though this value cannot be interpreted by
       the target" — it routes the acknowledgment), length, and data. A
       flag signifies that no acknowledgment is requested.}
    {- {b Acknowledgment} (Table 2): the put request echoed with initiator
       and target swapped; the only new information is the manipulated
       length. Carries the event-queue handle so the initiator-side
       runtime "only needs to confirm that the event queue still exists"
       (§4.8).}
    {- {b Get request} (Table 3): like a put request without data, and
       {e without} an event queue handle — the reply routes through the
       memory descriptor, which must stay linked until the reply arrives.}
    {- {b Reply} (Table 4): the get request echoed with the pair swapped,
       plus manipulated length and the data.}}

    Beyond the paper's tables, every message carries the sender node's
    monotonic {e incarnation} number so a receiver can fence traffic from a
    sender's previous life after a crash–restart (the connectionless
    analogue of tearing down a stale connection; see [Ni]).

    The encoding is little-endian with a fixed 72-byte header followed by
    payload. Decoding validates magic, version, operation and lengths so a
    corrupt message surfaces as an error, not an exception. *)

type op = Put_request | Ack | Get_request | Reply

val op_to_string : op -> string
val pp_op : Format.formatter -> op -> unit

type t = {
  op : op;
  ack_requested : bool;  (** Put requests only; false elsewhere. *)
  initiator : Simnet.Proc_id.t;
  target : Simnet.Proc_id.t;
  portal_index : int;
  cookie : int;  (** Access control entry index (§4.5). *)
  match_bits : Match_bits.t;
  offset : int;
  md_handle : Handle.md;
      (** Initiator-side MD: for the ack (put) or the reply (get). *)
  eq_handle : Handle.eq;
      (** Initiator-side EQ for the ack event; {!Handle.none} on get
          requests and replies. *)
  incarnation : int;
      (** Sender node's incarnation at send time (0 until a restart). *)
  length : int;  (** Requested length; manipulated length in ack/reply. *)
  data : bytes;  (** Payload (put request and reply); else empty. *)
}

val header_size : int

val put_request :
  ?ack_requested:bool ->
  ?incarnation:int ->
  ?length:int ->
  initiator:Simnet.Proc_id.t ->
  target:Simnet.Proc_id.t ->
  portal_index:int ->
  cookie:int ->
  match_bits:Match_bits.t ->
  offset:int ->
  md_handle:Handle.md ->
  eq_handle:Handle.eq ->
  data:bytes ->
  unit ->
  t
(** [length] overrides the wire length field (default
    [Bytes.length data]) — used with {!encode_with}, where the payload is
    supplied by a blit instead of [data]. *)

val ack_of_put : ?incarnation:int -> t -> mlength:int -> t
(** Build the acknowledgment for a put request: fields echoed, initiator
    and target swapped, data dropped, length replaced by [mlength].
    [incarnation] (default: echo the request's) stamps the responder's own
    incarnation. Raises [Invalid_argument] on a non-put message. *)

val get_request :
  ?incarnation:int ->
  initiator:Simnet.Proc_id.t ->
  target:Simnet.Proc_id.t ->
  portal_index:int ->
  cookie:int ->
  match_bits:Match_bits.t ->
  offset:int ->
  md_handle:Handle.md ->
  rlength:int ->
  unit ->
  t

val reply_of_get : ?incarnation:int -> t -> mlength:int -> data:bytes -> t
(** Build the reply for a get request: fields echoed, pair swapped, data
    attached. [incarnation] as in {!ack_of_put}. Raises
    [Invalid_argument] on a non-get message. *)

val encode : t -> bytes

val encode_with : t -> fill:(bytes -> int -> unit) -> bytes
(** [encode_with t ~fill] allocates the wire image, writes the header
    from [t], and calls [fill buf off] exactly once to deposit
    [t.length] payload bytes at [off]; [t.data] is ignored. Initiators
    use this to blit payload straight from MD memory into the image,
    skipping the intermediate copy an [Md.read] + {!encode} pair would
    make. *)

type decode_error =
  | Bad_magic
  | Bad_version of int
  | Bad_operation of int
  | Truncated of { expected : int; got : int }

val pp_decode_error : Format.formatter -> decode_error -> unit

val decode : bytes -> (t, decode_error) result

val decode_view : bytes -> (t, decode_error) result
(** Like {!decode}, but without copying the payload: the returned [data]
    is the {e whole} wire image, with payload bytes at
    [\[header_size, header_size + length)]. The receive hot path uses
    this to blit payload straight into the matched memory descriptor.
    Do not re-{!encode} a viewed message. *)

val field_inventory : op -> (string * string) list
(** The (field, description) rows of the paper's corresponding table —
    what this implementation actually places on the wire. Used by the
    bench harness to regenerate Tables 1–4. *)

val pp : Format.formatter -> t -> unit
