(** Return codes of the Portals 3.0 API.

    Mirrors the [PTL_*] constants of the C interface; API functions return
    [('a, Errors.t) result] instead of an integer code. *)

type t =
  | No_init  (** The interface was not initialised ([PTL_NOINIT]). *)
  | Init_dup  (** Duplicate initialisation ([PTL_INIT_DUP]). *)
  | Invalid_handle  (** Stale or foreign object handle. *)
  | Invalid_arg  (** Malformed argument (range, flag combination). *)
  | No_space  (** Out of resources (tables full, EQ capacity). *)
  | Invalid_ni  (** Unknown network interface. *)
  | Invalid_pt_index  (** Portal table index out of range. *)
  | Invalid_ac_index  (** Access control table index out of range. *)
  | Invalid_md  (** Memory descriptor handle does not resolve. *)
  | Invalid_me  (** Match entry handle does not resolve. *)
  | Invalid_eq  (** Event queue handle does not resolve. *)
  | Invalid_ct  (** Counting-event handle does not resolve. *)
  | Md_in_use  (** Memory descriptor busy (pending reply). *)
  | Eq_empty  (** Non-blocking event read found no event. *)
  | Eq_dropped  (** Events were lost since the last read. *)
  | Process_invalid  (** Target process identifier is not valid. *)
  | Segv  (** Memory region outside the process's address space. *)

val to_string : t -> string
(** The corresponding [PTL_*] constant name. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

exception Portals_error of t * string
(** Raised by the [_exn] convenience wrappers; carries the failing
    operation's name. *)

val ok_exn : op:string -> ('a, t) result -> 'a
(** [ok_exn ~op r] unwraps [r] or raises {!Portals_error}. *)
