(** Completion events and circular event queues (§4.4, §4.8).

    Every memory descriptor may name an event queue; operations on the
    descriptor are logged there. Queues are circular with a fixed capacity
    chosen at allocation — "the higher level protocol needs to ensure that
    there are enough event slots and the rate of event consumption is able
    to keep up with the rate of event production to avoid missing events"
    (§4.8). A post to a full queue is counted as dropped; readers observe
    the loss through {!Queue.dropped} (the [PTL_EQ_DROPPED] condition). *)

type kind =
  | Sent  (** Initiator: an outgoing put left the local interface. *)
  | Ack  (** Initiator: the target acknowledged a put. *)
  | Put  (** Target: an incoming put was deposited. *)
  | Get  (** Target: an incoming get read this descriptor. *)
  | Atomic
      (** Target: an incoming atomic read-modified-wrote a word of this
          descriptor. *)
  | Reply
      (** Initiator: the data for a get — or the fetched value of an
          atomic — arrived. *)
  | Triggered
      (** Either side of the triggered-operation extension: at the target,
          a deposit whose put was fired by a pre-armed chain (the wire
          frame carries the provenance flag); at the arming side, a chain
          armed with an event queue reached its counter threshold and ran.
          In both cases no host fiber was scheduled to make it happen. *)

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

type t = {
  kind : kind;
  initiator : Simnet.Proc_id.t;
      (** The process that initiated the operation (for target-side events)
          or the remote party (echoed back, for initiator-side events). *)
  portal_index : int;
  match_bits : Match_bits.t;
  rlength : int;  (** Length requested on the wire. *)
  mlength : int;  (** Manipulated length: bytes actually moved (§4.6). *)
  offset : int;  (** Offset within the memory descriptor actually used. *)
  md_handle : Handle.md;  (** The descriptor the event concerns. *)
  md_user_ptr : int;  (** The descriptor's opaque user tag. *)
  time : Sim_engine.Time_ns.t;  (** Simulated time the event was logged. *)
}

val pp : Format.formatter -> t -> unit

module Queue : sig
  type event := t
  type t

  val create : ?name:string -> Sim_engine.Scheduler.t -> capacity:int -> t
  (** Raises [Invalid_argument] if capacity is not positive. With [name],
      the queue registers an ["eq.depth"] time-series (µs, depth) and
      ["eq.posted"]/["eq.dropped"] probes labelled [("eq", name)] in the
      scheduler's metrics registry. *)

  val capacity : t -> int
  val count : t -> int
  (** Events currently queued. *)

  val is_full : t -> bool

  val post : t -> event -> bool
  (** Append an event; false (and the dropped counter ticks) when full.
      Wakes blocked {!wait}ers. *)

  val get : t -> event option
  (** Non-blocking read in arrival order ([PtlEQGet]). *)

  val wait : t -> event
  (** Fiber-only blocking read ([PtlEQWait]). *)

  val wait_opt : t -> event option
  (** Like {!wait}, but also returns — with [None] — when a {!wake}
      issued after the call began interrupts it. Callers re-check
      whatever condition they were waiting for. *)

  val wake : t -> unit
  (** Interrupt every fiber blocked in {!wait_opt} even though no event
      was posted. Used to surface out-of-band conditions (a peer node
      crash) to blocked waiters. *)

  val dropped : t -> int
  (** Events lost to overflow since creation. *)

  val posted : t -> int
  (** Events successfully posted since creation. *)
end
