(** Match entries and match lists (Figure 3).

    Each portal table entry identifies a match list. A match entry (ME)
    carries the match criteria — a source process pattern and 64 match
    bits with an ignore mask — plus a list of memory descriptors. During
    translation only the {e first} descriptor of a matching entry is
    considered (Figure 4); if it rejects, the walk moves to the next match
    entry. *)

type t

val create :
  ?unlink:Md.unlink_policy ->
  match_id:Match_id.t ->
  match_bits:Match_bits.t ->
  ignore_bits:Match_bits.t ->
  unit ->
  t
(** A fresh, empty match entry. [unlink] (default [Retain]) controls
    whether the entry is removed from the match list when its MD list
    empties (Figure 4's cascade). *)

val match_id : t -> Match_id.t
val match_bits : t -> Match_bits.t
val ignore_bits : t -> Match_bits.t
val unlink_policy : t -> Md.unlink_policy

val criteria_match : t -> src:Simnet.Proc_id.t -> mbits:Match_bits.t -> bool
(** Do the source process and match bits satisfy this entry? *)

val md_handles : t -> Handle.md list
(** Attached memory descriptors, first (head) to last. *)

val first_md : t -> Handle.md option

val attach_md : t -> Handle.md -> unit
(** Append a descriptor at the tail of the MD list. *)

val remove_md : t -> Handle.md -> bool
(** Remove a descriptor; false if absent. *)

val md_count : t -> int
val is_empty : t -> bool
