(** A Portals 3.0 network interface: one process's view of the network.

    Owns the portal table, the access control list, and the handle tables
    for match entries, memory descriptors and event queues. Incoming
    messages are processed exactly as §4.8 prescribes — including every
    documented reason for dropping a message, each with its own counter —
    and outgoing operations follow §4.6/4.7.

    {b Where processing happens.} The interface is bound to a
    {!Simnet.Transport.t}, which decides whether receive-side protocol
    work (matching, data landing) executes on a NIC processor or in the
    host's interrupt context. Either way it runs when the message
    {e arrives}, with no involvement of the application process —
    application bypass (§5.1). State transitions (matching, threshold and
    offset updates) commit at arrival time so back-to-back messages see a
    consistent match list; completion events, acknowledgments and replies
    are emitted after the modelled processing cost.

    {b Threshold accounting.} Target-side put/get operations consume one
    threshold unit of the memory descriptor they use. Initiator-side
    descriptors consume one unit per local completion event (SENT, ACK,
    REPLY), so the canonical MPI pattern — bind an MD with threshold 2 for
    a put expecting SENT then ACK — self-cleans when its traffic
    completes (with [Unlink] policy). *)

type t

type md_region =
  | Flat of { buffer : bytes; length : int option }
  | Iovec of (bytes * int * int) list
      (** Gather/scatter pieces (§7's planned extension). *)

type md_spec = {
  region : md_region;
  options : Md.options;
  threshold : Md.threshold;
  unlink : Md.unlink_policy;
  eq : Handle.eq;  (** Event queue handle, or {!Handle.none}. *)
  user_ptr : int;
}

val md_spec :
  ?options:Md.options ->
  ?threshold:Md.threshold ->
  ?unlink:Md.unlink_policy ->
  ?eq:Handle.eq ->
  ?user_ptr:int ->
  ?length:int ->
  bytes ->
  md_spec
(** Spec with the {!Md.default_options}, infinite threshold, [Retain];
    [length] restricts the descriptor to a prefix of the buffer. *)

val md_spec_iovec :
  ?options:Md.options ->
  ?threshold:Md.threshold ->
  ?unlink:Md.unlink_policy ->
  ?eq:Handle.eq ->
  ?user_ptr:int ->
  (bytes * int * int) list ->
  md_spec
(** Gather/scatter spec over [(buffer, off, len)] pieces. *)

type drop_reason =
  | Malformed  (** Undecodable wire image. *)
  | Invalid_portal_index  (** Portal index outside the table (§4.8). *)
  | Acl_bad_cookie  (** Cookie is not a valid AC entry (§4.8). *)
  | Acl_id_mismatch  (** AC entry rejects the requesting process (§4.8). *)
  | Acl_portal_mismatch  (** AC entry rejects the portal index (§4.8). *)
  | No_match
      (** End of match list reached with no accepting entry (§4.4/4.8). *)
  | Ack_no_eq  (** Ack's event queue no longer exists (§4.8). *)
  | Reply_no_md  (** Reply's memory descriptor no longer exists (§4.8). *)
  | Reply_eq_full
      (** Reply's event queue has no space and is not null (§4.8). *)
  | Stale_incarnation
      (** Message stamped by a previous incarnation of its sender node —
          the sender crashed (and possibly restarted) after sending. The
          fence keeps a dead process's traffic from resurrecting state,
          without any per-peer connection to tear down (§3). *)
  | Atomic_misaligned
      (** Atomic request whose length is not the 64-bit word size or whose
          target offset is not word-aligned — a read-modify-write of a
          partial or straddled word has no sensible semantics (§4.8
          extended for atomics). *)
  | Atomic_reply_no_md
      (** Atomic reply's memory descriptor no longer exists (the atomic
          analogue of [Reply_no_md], §4.8). *)
  | Atomic_reply_eq_full
      (** Atomic reply's event queue has no space and is not null (the
          atomic analogue of [Reply_eq_full], §4.8). *)
  | Checksum_failed
      (** The frame's CRC-32C trailer did not match its bytes — the wire
          corrupted it in flight. The NI discards it like any other
          malformed message (§4.8); with the reliability shim installed
          the sender retransmits, so corruption degrades to loss and
          never reaches a memory descriptor. *)
  | Triggered_target_gone
      (** A fired chain named a handle (memory descriptor, counter or
          completion event queue) that no longer exists — the chain was
          armed against resources that were since unlinked. The action is
          skipped; the rest of the chain still runs (§4.8 extended to the
          triggered path). *)
  | Triggered_md_inactive
      (** A fired chain's put/atomic found its descriptor with an
          exhausted threshold (or otherwise refusing the operation) — a
          mis-armed chain whose descriptor ran out of sends. *)
  | Triggered_eq_full
      (** A chain's completion TRIGGERED event found its queue full; the
          queue's [PTL_EQ_DROPPED] counter ticks as well (§4.8). *)

val pp_drop_reason : Format.formatter -> drop_reason -> unit

val drop_reason_slug : drop_reason -> string
(** Stable snake_case identifier used as the ["reason"] metrics label. *)

val all_drop_reasons : drop_reason list

type counters = {
  puts_initiated : int;
  gets_initiated : int;
  atomics_initiated : int;
  acks_sent : int;
  replies_sent : int;
  atomics_executed : int;
      (** Incoming atomics executed at match time (each also sends a
          fetched-value reply). *)
  messages_received : int;
  bytes_received : int;
  translations : int;  (** Match-list walks performed. *)
  entries_walked : int;  (** Total match entries examined. *)
  triggered_fired : int;  (** Armed chains fired at a counter threshold. *)
}

val create :
  Simnet.Transport.t ->
  id:Simnet.Proc_id.t ->
  ?portal_table_size:int ->
  ?acl_size:int ->
  unit ->
  t
(** Bring up an interface for process [id] ([PtlNIInit]): registers with
    the transport and installs the §4.5 default ACL entries scoped to
    node-local wildcards (the runtime normally re-scopes entry 0 to the
    job). Default 64 portal entries, 16 ACL entries. *)

val shutdown : t -> unit
(** [PtlNIFini]: unregister from the transport; incoming messages then
    drop at the fabric. *)

val id : t -> Simnet.Proc_id.t
val sched : t -> Sim_engine.Scheduler.t
val transport : t -> Simnet.Transport.t
val acl : t -> Acl.t
val portal_table_size : t -> int

(** {1 Event queues} *)

val eq_alloc : t -> capacity:int -> (Handle.eq, Errors.t) result
(** Allocate an event queue ([PtlEQAlloc]). The queue registers an
    ["eq.depth"] series in the scheduler's metrics registry, labelled
    with this interface's process id. *)

val eq_free : t -> Handle.eq -> (unit, Errors.t) result
val eq : t -> Handle.eq -> (Event.Queue.t, Errors.t) result
(** Resolve a handle for direct [get]/[wait] access. *)

(** {1 Match entries} *)

val me_attach :
  t ->
  portal_index:int ->
  match_id:Match_id.t ->
  match_bits:Match_bits.t ->
  ignore_bits:Match_bits.t ->
  ?unlink:Md.unlink_policy ->
  ?pos:[ `Head | `Tail ] ->
  unit ->
  (Handle.me, Errors.t) result
(** Attach a match entry to a portal table entry's match list
    ([PtlMEAttach]); [pos] (default [`Tail]) selects which end. *)

val me_insert :
  t ->
  base:Handle.me ->
  match_id:Match_id.t ->
  match_bits:Match_bits.t ->
  ignore_bits:Match_bits.t ->
  ?unlink:Md.unlink_policy ->
  pos:[ `Before | `After ] ->
  unit ->
  (Handle.me, Errors.t) result
(** Insert relative to an existing entry ([PtlMEInsert]). *)

val me_unlink : t -> Handle.me -> (unit, Errors.t) result
(** Remove a match entry and its attached descriptors ([PtlMEUnlink]).
    Fails with [Md_in_use] if any attached descriptor has outstanding
    operations. *)

val me_md_count : t -> Handle.me -> (int, Errors.t) result
(** Number of descriptors attached to the entry. *)

(** {1 Memory descriptors} *)

val md_attach : t -> me:Handle.me -> md_spec -> (Handle.md, Errors.t) result
(** Attach a descriptor at the tail of a match entry's MD list
    ([PtlMDAttach]). *)

val md_bind : t -> md_spec -> (Handle.md, Errors.t) result
(** Create a free-floating descriptor for initiating operations
    ([PtlMDBind]). *)

val md_unlink : t -> Handle.md -> (unit, Errors.t) result
(** [PtlMDUnlink]; [Md_in_use] while operations are outstanding. *)

val md_local_offset : t -> Handle.md -> (int, Errors.t) result
(** Current locally managed offset — how much of a slab MD is consumed. *)

val md_update :
  t -> Handle.md -> md_spec -> test_eq:Handle.eq -> (bool, Errors.t) result
(** [PtlMDUpdate]: atomically replace the descriptor behind the handle
    with one built from the spec, {e provided} the event queue [test_eq]
    is empty; returns [Ok false] (no update) otherwise. This is the
    conditional-update primitive higher-level libraries use to close the
    race between posting a receive and concurrent unexpected arrivals.
    Fails with [Md_in_use] while operations are outstanding. *)

val md_active : t -> Handle.md -> (bool, Errors.t) result

(** {1 Data movement (§4.3)} *)

type op = {
  target : Simnet.Proc_id.t;
  portal_index : int;
  cookie : int;  (** Access control entry index (§4.5). *)
  match_bits : Match_bits.t;
  offset : int;
}
(** Addressing for one put/get operation, mirroring {!md_spec}: the
    target process, its portal table entry, the access-control cookie,
    the matching criteria and the remote offset. *)

val op :
  ?cookie:int ->
  ?match_bits:Match_bits.t ->
  ?offset:int ->
  target:Simnet.Proc_id.t ->
  portal_index:int ->
  unit ->
  op
(** Spec with cookie {!Acl.default_cookie_job}, zero match bits and zero
    offset. *)

val put :
  t ->
  md:Handle.md ->
  ?ack:bool ->
  ?triggered:bool ->
  ?length:int ->
  op ->
  (unit, Errors.t) result
(** [PtlPut]: send the descriptor's region to the operation's target.
    With [ack] (default true) and an ack-enabled descriptor, the target
    acknowledges with the manipulated length (Table 2). A SENT event is
    logged locally once the message has left; when nothing can observe
    it — no event queue on the descriptor and an infinite threshold —
    the local completion is elided entirely, so fire-and-forget senders
    pay no extra simulation event per put.

    [length] (default: the whole region) sends only the region's first
    [length] bytes — the later Portals "put region" refinement; it lets
    a sender reuse one descriptor over a scratch buffer for variable
    sized messages instead of binding a fresh descriptor per send.

    [triggered] (default false) stamps the wire frame's provenance bit:
    the put was fired by a pre-armed chain, so the target logs the
    deposit as a TRIGGERED event rather than PUT. Chains set it
    automatically; host callers normally leave it off. *)

val get : t -> md:Handle.md -> op -> (unit, Errors.t) result
(** [PtlGet]: request the descriptor's length from the target; the reply
    deposits into the descriptor and logs a REPLY event. The descriptor
    cannot be unlinked until the reply arrives (§4.7). *)

val atomic :
  t ->
  md:Handle.md ->
  aop:Wire.aop ->
  operand:int64 ->
  ?compare:int64 ->
  op ->
  (unit, Errors.t) result
(** Atomically read-modify-write the 64-bit word at the operation's
    offset in the matched remote region — fetch-add, swap or
    compare-and-swap ({!Wire.aop}). The operation executes on the target
    interface at ME-match time with no target host fiber involvement
    (the §5.1 bypass path extended to read-modify-write); the matched
    descriptor must enable both put and get, the offset must be
    word-aligned and within range, and the op never truncates.

    Like a get, the fetched-value reply routes through [md] — the
    pre-operation value lands in the descriptor's first 8 bytes
    (little-endian) and logs a REPLY event; the target logs an ATOMIC
    event. [md] must describe at least 8 bytes and cannot be unlinked
    until the reply arrives. [compare] (default [0L]) is only consulted
    by {!Wire.Cas}. *)

(** {1 Counting events and triggered chains}

    The primitives NIC-resident collectives are built from (the
    Portals-4-style triggered-operation extension, motivated by the
    paper's §2/Fig. 6 bypass argument and the Yu et al. NIC-based
    collective protocol): a {e counting event} ({!Handle.ct}) attached to
    a match entry is bumped by the NI each time a deposit commits through
    that entry, and a chain of pre-described actions ({!ct_arm}) fires the
    moment the counter crosses the chain's threshold — inside the receive
    path, with no host fiber scheduled. Chains compose: a fired put lands
    on a peer's counted entry and fires the next hop, so a whole
    collective tree advances NIC-to-NIC while the hosts compute. *)

type triggered_action =
  | Triggered_put of { md : Handle.md; ack : bool; length : int option; op : op }
      (** Fire {!put} on [md] towards [op] (with the wire provenance bit
          set, so the target logs TRIGGERED). The payload is whatever the
          descriptor's region holds {e at fire time} — a forwarding hop
          re-sends the very bytes the triggering deposit just landed. *)
  | Triggered_atomic of {
      md : Handle.md;
      aop : Wire.aop;
      operand : int64;
      compare : int64;
      op : op;
    }  (** Fire {!atomic} on [md] towards [op]. *)
  | Triggered_combine of {
      dst : Handle.md;
      src : Handle.md;
      f : bytes -> bytes -> unit;
    }
      (** NIC-local reduction step: read both regions, run [f dst src]
          (which folds [src] into [dst] in place), write [dst] back — the
          combine a programmable NIC performs on a tree packet before
          forwarding it (Yu et al.'s MCP). No message is sent; pair with a
          trailing {!Triggered_put} of [dst] to forward the result. *)
  | Triggered_ct_inc of { ct : Handle.ct; amount : int }
      (** Bump another counter — fan-in accumulation ("all children
          arrived") and chain-completion flags. May cascade: the bump
          fires any chain the target counter now satisfies. *)

val ct_alloc : t -> (Handle.ct, Errors.t) result
(** Allocate a counting event, initially 0 ([PtlCTAlloc]-style). *)

val ct_free : t -> Handle.ct -> (unit, Errors.t) result
(** Release a counter. Chains still armed on it are discarded; a match
    entry still pointing at it bumps into {!drop_reason.Triggered_target_gone}. *)

val ct_get : t -> Handle.ct -> (int, Errors.t) result
(** Current value ([PtlCTGet]). *)

val ct_inc : t -> Handle.ct -> int -> (unit, Errors.t) result
(** Host-side bump by a positive amount ([PtlCTInc]): fires newly
    eligible chains and wakes {!ct_wait}ers, exactly like a match-time
    bump. *)

val ct_wait : t -> Handle.ct -> threshold:int -> (int, Errors.t) result
(** Fiber-only: block until the counter reaches [threshold]; returns the
    value observed ([PtlCTWait]). This is the {e only} blocking point a
    NIC-offloaded collective uses — everything between the host's first
    send and this wake happens in receive paths. Fails with [Invalid_ct]
    if the counter is freed while waiting. *)

val me_set_ct : t -> me:Handle.me -> ct:Handle.ct -> (unit, Errors.t) result
(** Attach a counter to a match entry: every put/get/atomic that commits
    through the entry bumps the counter by one, after the deposit's
    events and responses are issued. *)

val ct_arm :
  t ->
  ct:Handle.ct ->
  ?eq:Handle.eq ->
  ?user_ptr:int ->
  threshold:int ->
  triggered_action list ->
  (unit, Errors.t) result
(** Arm a chain: when [ct] reaches [threshold] (now or later — arming at
    or below the current value fires immediately, closing the race with
    deposits that land before the host arms), run the actions in order,
    then post a TRIGGERED event to [eq] if given (tagged [user_ptr]; the
    event's [offset] carries the threshold, [rlength] the action count).
    Chains on one counter fire in arming order; each fired chain is
    charged one match-entry cost per action on the receive processor.
    Mis-armed chains — vanished handles, inactive descriptors, full
    completion queues — drop into the dedicated §4.8 reasons instead of
    raising. *)

(** {1 Introspection} *)

val dropped : t -> drop_reason -> int
val dropped_total : t -> int
(** The interface's dropped message count (§4.8). *)

val counters : t -> counters
