(** Memory descriptors (§4.4).

    A memory descriptor (MD) identifies a region of the process's memory
    and how operations may use it: which operations are enabled, whether
    over-long transfers truncate, whether the {e remote} offset from the
    wire or a {e locally managed} offset selects the deposit position, how
    many operations the descriptor survives (its threshold), and the event
    queue where completions are logged.

    Locally managed offsets are the mechanism behind scalable unexpected-
    message buffering (§4.1): successive messages land back-to-back in a
    slab MD, so buffer memory is sized by application behaviour rather
    than by job size. *)

type options = {
  op_put : bool;  (** Incoming put operations may use this MD. *)
  op_get : bool;  (** Incoming get operations may use this MD. *)
  manage_remote : bool;
      (** Use the offset carried in the request ([PTL_MD_MANAGE_REMOTE]);
          otherwise the MD's locally managed offset is used and advances
          past each deposit. *)
  truncate : bool;
      (** Accept over-long requests by truncating ([PTL_MD_TRUNCATE]);
          otherwise such requests are rejected (§4.8). *)
  ack_disable : bool;
      (** Never generate acknowledgments from this MD
          ([PTL_MD_ACK_DISABLE]). *)
}

val default_options : options
(** put+get enabled, remote-managed offset, no truncation, acks enabled. *)

type threshold = Infinite | Count of int

type unlink_policy = Unlink | Retain
(** Whether exhausting the threshold removes the MD from its match entry
    ([PTL_UNLINK]) or leaves it linked but inactive ([PTL_RETAIN]). *)

type t

val create :
  ?options:options ->
  ?threshold:threshold ->
  ?unlink:unlink_policy ->
  ?eq:Event.Queue.t ->
  ?eq_handle:Handle.eq ->
  ?user_ptr:int ->
  ?length:int ->
  bytes ->
  t
(** [create buffer] describes all of [buffer], or its first [length]
    bytes when given. [user_ptr] (default 0) is an opaque tag echoed in
    events. *)

val create_iovec :
  ?options:options ->
  ?threshold:threshold ->
  ?unlink:unlink_policy ->
  ?eq:Event.Queue.t ->
  ?eq_handle:Handle.eq ->
  ?user_ptr:int ->
  (bytes * int * int) list ->
  t
(** Gather/scatter descriptor — the extension §7 of the paper plans ("we
    would like to extend the API to support gather/scatter operations
    more efficiently"). Each [(buffer, off, len)] names one piece;
    operations address the logical concatenation, so a put sourced from
    the descriptor gathers and an incoming put scatters. Raises
    [Invalid_argument] on an empty vector or an out-of-range piece. *)

val buffer : t -> bytes
(** Backing buffer of a single-segment descriptor; raises
    [Invalid_argument] for gather/scatter descriptors. *)

val segment_count : t -> int

val length : t -> int
(** Length of the described region (at most the buffer length). *)

val options : t -> options
val threshold : t -> threshold
val unlink_policy : t -> unlink_policy
val eq : t -> Event.Queue.t option
val eq_handle : t -> Handle.eq
val user_ptr : t -> int
val local_offset : t -> int
(** Current locally managed offset (0 for remote-managed MDs). *)

val active : t -> bool
(** Threshold not exhausted. *)

val pending : t -> int
(** Outstanding operations (unreceived replies/acks) — such an MD must not
    be unlinked ([PTL_MD_INUSE], §4.7: "the memory descriptor must not be
    unlinked until the reply is received"). *)

val incr_pending : t -> unit
val decr_pending : t -> unit

type operation =
  | Op_put
  | Op_get
  | Op_atomic
      (** Read-modify-write of a 64-bit word: requires both [op_put] and
          [op_get] enabled, never truncates. *)

type reject_reason =
  | Inactive  (** Threshold exhausted but MD retained. *)
  | Op_disabled  (** MD not enabled for this operation (§4.8). *)
  | Too_long  (** Request longer than available space, no truncate (§4.8). *)

val pp_reject : Format.formatter -> reject_reason -> unit

type acceptance = { offset : int; mlength : int }
(** Where the operation lands and how many bytes move — [mlength] is the
    manipulated length reported in acks/replies (§4.6). *)

val accepts :
  t -> op:operation -> rlength:int -> roffset:int -> (acceptance, reject_reason) result
(** Pure check: would this MD accept the request? Does not mutate. *)

val consume : t -> acceptance -> unit
(** Commit an accepted operation: decrement a finite threshold and advance
    the locally managed offset. *)

val consume_threshold : t -> unit
(** Decrement a finite, non-exhausted threshold without touching the
    locally managed offset — initiator-side completions (SENT/ACK/REPLY)
    use this. No effect when the threshold is already zero or infinite. *)

val write : t -> offset:int -> src:bytes -> src_off:int -> len:int -> unit
(** Deposit payload bytes (put/reply data landing). *)

val read : t -> offset:int -> len:int -> bytes
(** Extract payload bytes (get servicing, put sourcing). *)

val blit_to : t -> offset:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** Copy payload bytes into a caller buffer without the intermediate
    allocation of {!read} — put sourcing on the hot path blits MD memory
    straight into the wire image ({!Wire.encode_with}). *)
