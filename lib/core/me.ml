type t = {
  mid : Match_id.t;
  mbits : Match_bits.t;
  ibits : Match_bits.t;
  unlink : Md.unlink_policy;
  mutable mds : Handle.md list; (* head = first considered *)
}

let create ?(unlink = Md.Retain) ~match_id ~match_bits ~ignore_bits () =
  { mid = match_id; mbits = match_bits; ibits = ignore_bits; unlink; mds = [] }

let match_id t = t.mid
let match_bits t = t.mbits
let ignore_bits t = t.ibits
let unlink_policy t = t.unlink

let criteria_match t ~src ~mbits =
  Match_id.matches t.mid src
  && Match_bits.matches ~mbits ~match_bits:t.mbits ~ignore_bits:t.ibits

let md_handles t = t.mds
let first_md t = match t.mds with [] -> None | h :: _ -> Some h
let attach_md t h = t.mds <- t.mds @ [ h ]

let remove_md t h =
  let found = List.exists (Handle.equal h) t.mds in
  if found then t.mds <- List.filter (fun x -> not (Handle.equal x h)) t.mds;
  found

let md_count t = List.length t.mds
let is_empty t = t.mds = []
