open Sim_engine

type md_entry = {
  mutable md : Md.t;
  mutable owner : Handle.me option; (* attached ME, none for bound MDs *)
}

type me_entry = {
  me : Me.t;
  pt_index : int;
  mutable me_ct : Handle.ct;
      (* Counting event bumped at match time ({!me_set_ct});
         [Handle.none] when the entry has no counter attached. *)
}

type drop_reason =
  | Malformed
  | Invalid_portal_index
  | Acl_bad_cookie
  | Acl_id_mismatch
  | Acl_portal_mismatch
  | No_match
  | Ack_no_eq
  | Reply_no_md
  | Reply_eq_full
  | Stale_incarnation
  | Atomic_misaligned
  | Atomic_reply_no_md
  | Atomic_reply_eq_full
  | Checksum_failed
  | Triggered_target_gone
  | Triggered_md_inactive
  | Triggered_eq_full

let all_drop_reasons =
  [
    Malformed; Invalid_portal_index; Acl_bad_cookie; Acl_id_mismatch;
    Acl_portal_mismatch; No_match; Ack_no_eq; Reply_no_md; Reply_eq_full;
    Stale_incarnation; Atomic_misaligned; Atomic_reply_no_md;
    Atomic_reply_eq_full; Checksum_failed; Triggered_target_gone;
    Triggered_md_inactive; Triggered_eq_full;
  ]

let drop_reason_index = function
  | Malformed -> 0
  | Invalid_portal_index -> 1
  | Acl_bad_cookie -> 2
  | Acl_id_mismatch -> 3
  | Acl_portal_mismatch -> 4
  | No_match -> 5
  | Ack_no_eq -> 6
  | Reply_no_md -> 7
  | Reply_eq_full -> 8
  | Stale_incarnation -> 9
  | Atomic_misaligned -> 10
  | Atomic_reply_no_md -> 11
  | Atomic_reply_eq_full -> 12
  | Checksum_failed -> 13
  | Triggered_target_gone -> 14
  | Triggered_md_inactive -> 15
  | Triggered_eq_full -> 16

let drop_reason_slug = function
  | Malformed -> "malformed"
  | Invalid_portal_index -> "invalid_portal_index"
  | Acl_bad_cookie -> "acl_bad_cookie"
  | Acl_id_mismatch -> "acl_id_mismatch"
  | Acl_portal_mismatch -> "acl_portal_mismatch"
  | No_match -> "no_match"
  | Ack_no_eq -> "ack_no_eq"
  | Reply_no_md -> "reply_no_md"
  | Reply_eq_full -> "reply_eq_full"
  | Stale_incarnation -> "stale_incarnation"
  | Atomic_misaligned -> "atomic_misaligned"
  | Atomic_reply_no_md -> "atomic_reply_no_md"
  | Atomic_reply_eq_full -> "atomic_reply_eq_full"
  | Checksum_failed -> "checksum_failed"
  | Triggered_target_gone -> "triggered_target_gone"
  | Triggered_md_inactive -> "triggered_md_inactive"
  | Triggered_eq_full -> "triggered_eq_full"

let pp_drop_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Malformed -> "malformed message"
    | Invalid_portal_index -> "invalid portal index"
    | Acl_bad_cookie -> "invalid access control entry"
    | Acl_id_mismatch -> "access control id mismatch"
    | Acl_portal_mismatch -> "access control portal mismatch"
    | No_match -> "no matching entry accepted the request"
    | Ack_no_eq -> "acknowledgment event queue gone"
    | Reply_no_md -> "reply memory descriptor gone"
    | Reply_eq_full -> "reply event queue full"
    | Stale_incarnation -> "sender incarnation is stale"
    | Atomic_misaligned -> "atomic word misaligned or mis-sized"
    | Atomic_reply_no_md -> "atomic reply memory descriptor gone"
    | Atomic_reply_eq_full -> "atomic reply event queue full"
    | Checksum_failed -> "frame checksum mismatch"
    | Triggered_target_gone -> "triggered chain names a vanished handle"
    | Triggered_md_inactive -> "triggered chain memory descriptor inactive"
    | Triggered_eq_full -> "triggered completion event queue full")

type counters = {
  puts_initiated : int;
  gets_initiated : int;
  atomics_initiated : int;
  acks_sent : int;
  replies_sent : int;
  atomics_executed : int;
  messages_received : int;
  bytes_received : int;
  translations : int;
  entries_walked : int;
  triggered_fired : int;
}

type mutable_counters = {
  mutable c_puts : int;
  mutable c_gets : int;
  mutable c_atomics : int;
  mutable c_acks : int;
  mutable c_replies : int;
  mutable c_atomics_exec : int;
  mutable c_rx : int;
  mutable c_rx_bytes : int;
  mutable c_translations : int;
  mutable c_entries : int;
  mutable c_triggered : int;
}

type op = {
  target : Simnet.Proc_id.t;
  portal_index : int;
  cookie : int;
  match_bits : Match_bits.t;
  offset : int;
}

(* Triggered operations (the Portals-4-style extension the NIC-resident
   collectives build on): a chain of pre-described actions deposited with
   the NI, fired — without any host fiber — when a counting event crosses
   the chain's threshold. *)
type triggered_action =
  | Triggered_put of { md : Handle.md; ack : bool; length : int option; op : op }
  | Triggered_atomic of {
      md : Handle.md;
      aop : Wire.aop;
      operand : int64;
      compare : int64;
      op : op;
    }
  | Triggered_combine of {
      dst : Handle.md;
      src : Handle.md;
      f : bytes -> bytes -> unit;
    }
  | Triggered_ct_inc of { ct : Handle.ct; amount : int }

type armed = {
  a_threshold : int;
  a_actions : triggered_action list;
  a_eq : Handle.eq; (* completion TRIGGERED event, none to elide *)
  a_user_ptr : int;
}

type ct_entry = {
  mutable ct_value : int;
  mutable ct_armed : armed list; (* pending chains, in arming order *)
  ct_waitq : Sync.Waitq.t;
}

type t = {
  tp : Simnet.Transport.t;
  self : Simnet.Proc_id.t;
  pt : Handle.me list array; (* match lists, head searched first *)
  ni_acl : Acl.t;
  mds : (Handle.md_kind, md_entry) Handle.Table.t;
  mes : (Handle.me_kind, me_entry) Handle.Table.t;
  eqs : (Handle.eq_kind, Event.Queue.t) Handle.Table.t;
  cts : (Handle.ct_kind, ct_entry) Handle.Table.t;
  drops : int array;
  c : mutable_counters;
  mutable eq_seq : int;
  mutable live : bool;
}

type md_region =
  | Flat of { buffer : bytes; length : int option }
  | Iovec of (bytes * int * int) list

type md_spec = {
  region : md_region;
  options : Md.options;
  threshold : Md.threshold;
  unlink : Md.unlink_policy;
  eq : Handle.eq;
  user_ptr : int;
}

let md_spec ?(options = Md.default_options) ?(threshold = Md.Infinite)
    ?(unlink = Md.Retain) ?(eq = Handle.none) ?(user_ptr = 0) ?length buffer =
  { region = Flat { buffer; length }; options; threshold; unlink; eq; user_ptr }

let md_spec_iovec ?(options = Md.default_options) ?(threshold = Md.Infinite)
    ?(unlink = Md.Retain) ?(eq = Handle.none) ?(user_ptr = 0) segments =
  { region = Iovec segments; options; threshold; unlink; eq; user_ptr }

let op ?(cookie = Acl.default_cookie_job) ?(match_bits = Match_bits.zero)
    ?(offset = 0) ~target ~portal_index () =
  { target; portal_index; cookie; match_bits; offset }

let id t = t.self
let sched t = t.tp.Simnet.Transport.sched
let transport t = t.tp
let acl t = t.ni_acl
let portal_table_size t = Array.length t.pt

let self_incarnation t =
  t.tp.Simnet.Transport.node_incarnation t.self.Simnet.Proc_id.nid

let drop t reason = t.drops.(drop_reason_index reason) <- t.drops.(drop_reason_index reason) + 1
let dropped t reason = t.drops.(drop_reason_index reason)
let dropped_total t = Array.fold_left ( + ) 0 t.drops

let counters t =
  {
    puts_initiated = t.c.c_puts;
    gets_initiated = t.c.c_gets;
    atomics_initiated = t.c.c_atomics;
    acks_sent = t.c.c_acks;
    replies_sent = t.c.c_replies;
    atomics_executed = t.c.c_atomics_exec;
    messages_received = t.c.c_rx;
    bytes_received = t.c.c_rx_bytes;
    translations = t.c.c_translations;
    entries_walked = t.c.c_entries;
    triggered_fired = t.c.c_triggered;
  }

(* ------------------------------------------------------------------ *)
(* Event queues *)

let eq_alloc t ~capacity =
  if capacity <= 0 then Error Errors.Invalid_arg
  else begin
    let name = Format.asprintf "%a#%d" Simnet.Proc_id.pp t.self t.eq_seq in
    t.eq_seq <- t.eq_seq + 1;
    Ok (Handle.Table.alloc t.eqs (Event.Queue.create ~name (sched t) ~capacity))
  end

let eq t h =
  match Handle.Table.find t.eqs h with
  | Some q -> Ok q
  | None -> Error Errors.Invalid_eq

let eq_free t h =
  if Handle.Table.free t.eqs h then Ok () else Error Errors.Invalid_eq

(* ------------------------------------------------------------------ *)
(* Match entries *)

let me_attach t ~portal_index ~match_id ~match_bits ~ignore_bits
    ?(unlink = Md.Retain) ?(pos = `Tail) () =
  if portal_index < 0 || portal_index >= Array.length t.pt then
    Error Errors.Invalid_pt_index
  else begin
    let me = Me.create ~unlink ~match_id ~match_bits ~ignore_bits () in
    let h =
      Handle.Table.alloc t.mes
        { me; pt_index = portal_index; me_ct = Handle.none }
    in
    (match pos with
    | `Head -> t.pt.(portal_index) <- h :: t.pt.(portal_index)
    | `Tail -> t.pt.(portal_index) <- t.pt.(portal_index) @ [ h ]);
    Ok h
  end

let me_insert t ~base ~match_id ~match_bits ~ignore_bits ?(unlink = Md.Retain)
    ~pos () =
  match Handle.Table.find t.mes base with
  | None -> Error Errors.Invalid_me
  | Some base_entry ->
    let me = Me.create ~unlink ~match_id ~match_bits ~ignore_bits () in
    let h =
      Handle.Table.alloc t.mes
        { me; pt_index = base_entry.pt_index; me_ct = Handle.none }
    in
    let rec insert = function
      | [] -> [ h ] (* base vanished concurrently: append *)
      | x :: rest when Handle.equal x base ->
        (match pos with `Before -> h :: x :: rest | `After -> x :: h :: rest)
      | x :: rest -> x :: insert rest
    in
    t.pt.(base_entry.pt_index) <- insert t.pt.(base_entry.pt_index);
    Ok h

let remove_me_from_pt t h pt_index =
  t.pt.(pt_index) <- List.filter (fun x -> not (Handle.equal x h)) t.pt.(pt_index)

let me_unlink t h =
  match Handle.Table.find t.mes h with
  | None -> Error Errors.Invalid_me
  | Some entry ->
    let md_busy mdh =
      match Handle.Table.find t.mds mdh with
      | None -> false
      | Some { md; _ } -> Md.pending md > 0
    in
    if List.exists md_busy (Me.md_handles entry.me) then Error Errors.Md_in_use
    else begin
      List.iter (fun mdh -> ignore (Handle.Table.free t.mds mdh))
        (Me.md_handles entry.me);
      remove_me_from_pt t h entry.pt_index;
      ignore (Handle.Table.free t.mes h);
      Ok ()
    end

let me_md_count t h =
  match Handle.Table.find t.mes h with
  | None -> Error Errors.Invalid_me
  | Some entry -> Ok (Me.md_count entry.me)

(* ------------------------------------------------------------------ *)
(* Memory descriptors *)

let md_of_spec t (spec : md_spec) =
  let build ?eq ?eq_handle () =
    match spec.region with
    | Flat { buffer; length } ->
      Md.create ~options:spec.options ~threshold:spec.threshold
        ~unlink:spec.unlink ?eq ?eq_handle ~user_ptr:spec.user_ptr ?length
        buffer
    | Iovec segments ->
      Md.create_iovec ~options:spec.options ~threshold:spec.threshold
        ~unlink:spec.unlink ?eq ?eq_handle ~user_ptr:spec.user_ptr segments
  in
  if Handle.is_none spec.eq then Ok (build ())
  else begin
    match Handle.Table.find t.eqs spec.eq with
    | None -> Error Errors.Invalid_eq
    | Some q -> Ok (build ~eq:q ~eq_handle:spec.eq ())
  end

let md_attach t ~me spec =
  match Handle.Table.find t.mes me with
  | None -> Error Errors.Invalid_me
  | Some entry ->
    (match md_of_spec t spec with
    | Error _ as e -> e |> Result.map (fun _ -> Handle.none)
    | Ok md ->
      let h = Handle.Table.alloc t.mds { md; owner = Some me } in
      Me.attach_md entry.me h;
      Ok h)

let md_bind t spec =
  match md_of_spec t spec with
  | Error e -> Error e
  | Ok md -> Ok (Handle.Table.alloc t.mds { md; owner = None })

let find_md t h =
  match Handle.Table.find t.mds h with
  | None -> Error Errors.Invalid_md
  | Some entry -> Ok entry

(* Remove an MD whose threshold has been exhausted (Unlink policy),
   cascading to its match entry per Figure 4. *)
let auto_unlink_md t h (entry : md_entry) =
  if (not (Md.active entry.md)) && Md.unlink_policy entry.md = Md.Unlink then begin
    (match entry.owner with
    | None -> ()
    | Some meh ->
      (match Handle.Table.find t.mes meh with
      | None -> ()
      | Some me_entry ->
        ignore (Me.remove_md me_entry.me h);
        if Me.is_empty me_entry.me && Me.unlink_policy me_entry.me = Md.Unlink
        then begin
          remove_me_from_pt t meh me_entry.pt_index;
          ignore (Handle.Table.free t.mes meh)
        end));
    ignore (Handle.Table.free t.mds h)
  end

(* Initiator-side completions (SENT/ACK/REPLY) also consume threshold. *)
let consume_initiator t h (entry : md_entry) =
  Md.consume_threshold entry.md;
  auto_unlink_md t h entry

let md_unlink t h =
  match find_md t h with
  | Error _ as e -> e |> Result.map ignore
  | Ok entry ->
    if Md.pending entry.md > 0 then Error Errors.Md_in_use
    else begin
      (match entry.owner with
      | None -> ()
      | Some meh ->
        (match Handle.Table.find t.mes meh with
        | None -> ()
        | Some me_entry -> ignore (Me.remove_md me_entry.me h)));
      ignore (Handle.Table.free t.mds h);
      Ok ()
    end

let md_local_offset t h =
  Result.map (fun e -> Md.local_offset e.md) (find_md t h)

(* PtlMDUpdate: atomically replace a descriptor, but only when [test_eq]
   is empty — the primitive that lets a library check "nothing happened
   yet" and commit a new descriptor in one indivisible step (e.g. MPI
   arming a posted receive against racing unexpected arrivals). In the
   simulation the whole call executes at one instant, which is exactly
   the atomicity the semantics require. *)
let md_update t h spec ~test_eq =
  match find_md t h with
  | Error e -> Error e
  | Ok entry ->
    if Md.pending entry.md > 0 then Error Errors.Md_in_use
    else begin
      match Handle.Table.find t.eqs test_eq with
      | None -> Error Errors.Invalid_eq
      | Some q ->
        if Event.Queue.count q > 0 then Ok false
        else begin
          match md_of_spec t spec with
          | Error e -> Error e
          | Ok md ->
            entry.md <- md;
            Ok true
        end
    end

let md_active t h = Result.map (fun e -> Md.active e.md) (find_md t h)

(* ------------------------------------------------------------------ *)
(* Initiating operations (§4.7) *)

let put t ~md:mdh ?(ack = true) ?(triggered = false) ?length (o : op) =
  match find_md t mdh with
  | Error e -> Error e
  | Ok entry ->
    if not (Md.active entry.md) then Error Errors.Invalid_md
    else if
      match length with None -> false | Some l -> l < 0 || l > Md.length entry.md
    then Error Errors.Invalid_arg
    else begin
      let md = entry.md in
      let len = Option.value length ~default:(Md.length md) in
      let ack_requested = ack && not (Md.options md).Md.ack_disable in
      (* The payload is blitted from MD memory straight into the wire
         image ([encode_with]), skipping the intermediate copy an
         [Md.read] would make — one allocation per put, not two. *)
      let msg =
        Wire.put_request ~ack_requested ~triggered
          ~incarnation:(self_incarnation t) ~length:len ~initiator:t.self
          ~target:o.target ~portal_index:o.portal_index ~cookie:o.cookie
          ~match_bits:o.match_bits ~offset:o.offset ~md_handle:mdh
          ~eq_handle:(Md.eq_handle md) ~data:Bytes.empty ()
      in
      t.c.c_puts <- t.c.c_puts + 1;
      if ack_requested then Md.incr_pending md;
      t.tp.Simnet.Transport.send ~src:t.self ~dst:o.target
        (Wire.encode_with msg ~fill:(fun buf off ->
             Md.blit_to md ~offset:0 ~len ~dst:buf ~dst_off:off));
      (* SENT once the message has left the local interface. When the
         descriptor has no event queue and an infinite threshold the
         completion has no observable effect (no event to post, nothing
         to consume or unlink), so it is elided — fire-and-forget senders
         reusing a persistent descriptor pay no extra simulation event. *)
      let md_eq = Md.eq md in
      if md_eq = None && Md.threshold md = Md.Infinite then Ok ()
      else begin
      Scheduler.after (sched t) t.tp.Simnet.Transport.send_overhead (fun () ->
          (match md_eq with
          | None -> ()
          | Some queue ->
            let ev =
              {
                Event.kind = Event.Sent;
                initiator = o.target;
                portal_index = o.portal_index;
                match_bits = o.match_bits;
                rlength = len;
                mlength = len;
                offset = o.offset;
                md_handle = mdh;
                md_user_ptr = Md.user_ptr md;
                time = Scheduler.now (sched t);
              }
            in
            ignore (Event.Queue.post queue ev));
          match Handle.Table.find t.mds mdh with
          | None -> ()
          | Some entry -> consume_initiator t mdh entry);
        Ok ()
      end
    end

let get t ~md:mdh (o : op) =
  match find_md t mdh with
  | Error e -> Error e
  | Ok entry ->
    if not (Md.active entry.md) then Error Errors.Invalid_md
    else begin
      let md = entry.md in
      let msg =
        Wire.get_request ~incarnation:(self_incarnation t) ~initiator:t.self
          ~target:o.target ~portal_index:o.portal_index ~cookie:o.cookie
          ~match_bits:o.match_bits ~offset:o.offset ~md_handle:mdh
          ~rlength:(Md.length md) ()
      in
      t.c.c_gets <- t.c.c_gets + 1;
      Md.incr_pending md;
      t.tp.Simnet.Transport.send ~src:t.self ~dst:o.target (Wire.encode msg);
      Ok ()
    end

let atomic t ~md:mdh ~aop ~operand ?(compare = 0L) (o : op) =
  match find_md t mdh with
  | Error e -> Error e
  | Ok entry ->
    if not (Md.active entry.md) then Error Errors.Invalid_md
    else if Md.length entry.md < Wire.atomic_word_size then
      Error Errors.Invalid_arg
    else begin
      let md = entry.md in
      let msg =
        Wire.atomic_request ~incarnation:(self_incarnation t) ~aop ~operand
          ~compare ~initiator:t.self ~target:o.target
          ~portal_index:o.portal_index ~cookie:o.cookie
          ~match_bits:o.match_bits ~offset:o.offset ~md_handle:mdh ()
      in
      t.c.c_atomics <- t.c.c_atomics + 1;
      Md.incr_pending md;
      t.tp.Simnet.Transport.send ~src:t.self ~dst:o.target (Wire.encode msg);
      Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Counting events and triggered chains *)

let find_ct t h =
  match Handle.Table.find t.cts h with
  | Some e -> Ok e
  | None -> Error Errors.Invalid_ct

let ct_alloc t =
  Ok
    (Handle.Table.alloc t.cts
       {
         ct_value = 0;
         ct_armed = [];
         ct_waitq = Sync.Waitq.create ~name:"ct" (sched t);
       })

let ct_free t h =
  if Handle.Table.free t.cts h then Ok () else Error Errors.Invalid_ct

let ct_get t h = Result.map (fun e -> e.ct_value) (find_ct t h)

let me_set_ct t ~me ~ct =
  match Handle.Table.find t.mes me with
  | None -> Error Errors.Invalid_me
  | Some entry ->
    (match Handle.Table.find t.cts ct with
    | None -> Error Errors.Invalid_ct
    | Some _ ->
      entry.me_ct <- ct;
      Ok ())

(* Run one armed chain. Every action resolves its handles at fire time —
   the §4.8 discipline extended to the triggered path: a chain whose
   descriptor or counter vanished (or whose descriptor exhausted its
   threshold) mis-fires into a dedicated drop reason instead of raising,
   and the fabric stays consistent. Each fired action is charged like one
   match-list entry: the chain runs on the NI, so its cost lands on the
   receive processor, never on a host fiber. *)
let rec run_chain t (a : armed) =
  t.c.c_triggered <- t.c.c_triggered + 1;
  t.tp.Simnet.Transport.charge_rx t.self.Simnet.Proc_id.nid
    (Time_ns.ns
       (List.length a.a_actions * t.tp.Simnet.Transport.match_entry_cost));
  List.iter
    (fun action ->
      match action with
      | Triggered_put { md; ack; length; op } ->
        (match Handle.Table.find t.mds md with
        | None -> drop t Triggered_target_gone
        | Some entry when not (Md.active entry.md) ->
          drop t Triggered_md_inactive
        | Some _ ->
          (match put t ~md ~ack ~triggered:true ?length op with
          | Ok () -> ()
          | Error _ -> drop t Triggered_md_inactive))
      | Triggered_atomic { md; aop; operand; compare; op } ->
        (match Handle.Table.find t.mds md with
        | None -> drop t Triggered_target_gone
        | Some entry when not (Md.active entry.md) ->
          drop t Triggered_md_inactive
        | Some _ ->
          (match atomic t ~md ~aop ~operand ~compare op with
          | Ok () -> ()
          | Error _ -> drop t Triggered_md_inactive))
      | Triggered_combine { dst; src; f } ->
        (match (Handle.Table.find t.mds dst, Handle.Table.find t.mds src) with
        | None, _ | _, None -> drop t Triggered_target_gone
        | Some d, Some s ->
          (* The NIC-resident combine (the programmable-NIC reduction of
             Yu et al.): read both regions, fold [src] into [dst] in
             place, write back. *)
          let db = Md.read d.md ~offset:0 ~len:(Md.length d.md) in
          let sb = Md.read s.md ~offset:0 ~len:(Md.length s.md) in
          f db sb;
          Md.write d.md ~offset:0 ~src:db ~src_off:0 ~len:(Bytes.length db))
      | Triggered_ct_inc { ct; amount } ->
        (match Handle.Table.find t.cts ct with
        | None -> drop t Triggered_target_gone
        | Some e -> ct_bump t e amount))
    a.a_actions;
  if not (Handle.is_none a.a_eq) then begin
    match Handle.Table.find t.eqs a.a_eq with
    | None -> drop t Triggered_target_gone
    | Some queue ->
      let ev =
        {
          Event.kind = Event.Triggered;
          initiator = t.self;
          portal_index = 0;
          match_bits = Match_bits.zero;
          rlength = List.length a.a_actions;
          mlength = 0;
          offset = a.a_threshold;
          md_handle = Handle.none;
          md_user_ptr = a.a_user_ptr;
          time = Scheduler.now (sched t);
        }
      in
      if not (Event.Queue.post queue ev) then drop t Triggered_eq_full
  end

(* Bump a counter and fire every chain whose threshold is now met, in
   arming order. Chains are removed before running, so a chain that bumps
   its own counter (fan-in accumulation) re-enters cleanly. *)
and ct_bump t (e : ct_entry) n =
  e.ct_value <- e.ct_value + n;
  fire_eligible t e;
  Sync.Waitq.broadcast e.ct_waitq

and fire_eligible t (e : ct_entry) =
  match
    List.find_opt (fun a -> a.a_threshold <= e.ct_value) e.ct_armed
  with
  | None -> ()
  | Some a ->
    e.ct_armed <- List.filter (fun x -> x != a) e.ct_armed;
    run_chain t a;
    fire_eligible t e

let ct_inc t h n =
  if n <= 0 then Error Errors.Invalid_arg
  else
    Result.map
      (fun e -> ct_bump t e n)
      (find_ct t h)

let ct_arm t ~ct ?(eq = Handle.none) ?(user_ptr = 0) ~threshold actions =
  if threshold < 0 then Error Errors.Invalid_arg
  else begin
    match find_ct t ct with
    | Error e -> Error e
    | Ok entry ->
      let a =
        { a_threshold = threshold; a_actions = actions; a_eq = eq; a_user_ptr = user_ptr }
      in
      entry.ct_armed <- entry.ct_armed @ [ a ];
      (* Fire-immediately semantics: arming below or at the current value
         runs the chain now. Without this, a deposit that lands before the
         host arms the next round would hang the chain forever. *)
      fire_eligible t entry;
      Ok ()
  end

let ct_wait t h ~threshold =
  let rec loop () =
    match Handle.Table.find t.cts h with
    | None -> Error Errors.Invalid_ct
    | Some e ->
      if e.ct_value >= threshold then Ok e.ct_value
      else begin
        Sync.Waitq.wait e.ct_waitq;
        loop ()
      end
  in
  loop ()

(* Match-time counter bump: the hook the receive path calls once a
   deposit (put/get/atomic) has committed through a counted match entry. *)
let bump_match_ct t cth =
  if not (Handle.is_none cth) then begin
    match Handle.Table.find t.cts cth with
    | None -> drop t Triggered_target_gone
    | Some e -> ct_bump t e 1
  end

(* ------------------------------------------------------------------ *)
(* Receive path (§4.8) *)

let post_event t ?md ~kind ~(msg : Wire.t) ~mlength ~offset queue =
  let ev =
    {
      Event.kind;
      initiator = msg.Wire.initiator;
      portal_index = msg.Wire.portal_index;
      match_bits = msg.Wire.match_bits;
      rlength = msg.Wire.length;
      mlength;
      offset;
      md_handle = msg.Wire.md_handle;
      md_user_ptr = (match md with None -> 0 | Some m -> Md.user_ptr m);
      time = Scheduler.now (sched t);
    }
  in
  ignore (Event.Queue.post queue ev)

(* Walk the match list of a portal table entry (Figure 4). Returns the
   number of entries examined together with the outcome. *)
let translate t ~portal_index ~src ~mbits ~op ~rlength ~roffset =
  let rec walk examined = function
    | [] -> (examined, Error ())
    | meh :: rest ->
      (match Handle.Table.find t.mes meh with
      | None -> walk (examined + 1) rest
      | Some me_entry ->
        let examined = examined + 1 in
        if not (Me.criteria_match me_entry.me ~src ~mbits) then walk examined rest
        else begin
          (* Only the first memory descriptor is considered. *)
          match Me.first_md me_entry.me with
          | None -> walk examined rest
          | Some mdh ->
            (match Handle.Table.find t.mds mdh with
            | None -> walk examined rest
            | Some md_entry ->
              (match Md.accepts md_entry.md ~op ~rlength ~roffset with
              | Error _ -> walk examined rest
              | Ok acc -> (examined, Ok (me_entry, mdh, md_entry, acc))))
        end)
  in
  let result = walk 0 t.pt.(portal_index) in
  t.c.c_translations <- t.c.c_translations + 1;
  t.c.c_entries <- t.c.c_entries + fst result;
  result

let match_walk_cost t ~entries =
  Time_ns.ns (entries * t.tp.Simnet.Transport.match_entry_cost)

let handle_put_or_get t (msg : Wire.t) ~op =
  let src = msg.Wire.initiator in
  if msg.Wire.portal_index < 0 || msg.Wire.portal_index >= Array.length t.pt then
    drop t Invalid_portal_index
  else begin
    match
      Acl.check t.ni_acl ~cookie:msg.Wire.cookie ~src
        ~portal_index:msg.Wire.portal_index
    with
    | Error Acl.Bad_cookie -> drop t Acl_bad_cookie
    | Error Acl.Id_mismatch -> drop t Acl_id_mismatch
    | Error Acl.Portal_mismatch -> drop t Acl_portal_mismatch
    | Ok () ->
      let entries, outcome =
        translate t ~portal_index:msg.Wire.portal_index ~src
          ~mbits:msg.Wire.match_bits ~op ~rlength:msg.Wire.length
          ~roffset:msg.Wire.offset
      in
      (match outcome with
      | Error () -> drop t No_match
      | Ok (me_entry, mdh, md_entry, acc) ->
        let md = md_entry.md in
        (* Capture before unlinking can free the match entry. *)
        let matched_ct = me_entry.me_ct in
        let mlength = acc.Md.mlength in
        let offset = acc.Md.offset in
        (* Commit state at arrival so the next message sees consistent
           matching structures; emit observable effects after the cost. *)
        Md.consume md acc;
        let reply_data =
          match op with
          | Md.Op_put ->
            (* [msg] is a [decode_view]: payload bytes sit in the wire
               image after the header. *)
            Md.write md ~offset ~src:msg.Wire.data ~src_off:Wire.header_size
              ~len:mlength;
            Bytes.empty
          | Md.Op_get -> Md.read md ~offset ~len:mlength
          | Md.Op_atomic -> assert false (* handled by [handle_atomic] *)
        in
        let md_eq = Md.eq md in
        let ack_wanted =
          op = Md.Op_put && msg.Wire.ack_requested
          && (not (Md.options md).Md.ack_disable)
          && not (Handle.is_none msg.Wire.eq_handle)
        in
        auto_unlink_md t mdh md_entry;
        (* The transport already carried the data-landing time; only the
           match-list walk is charged here (it perturbs the host when the
           placement is kernel-space). Events and responses are emitted at
           delivery time so the structures and the event queues always
           agree — the atomicity higher-level libraries rely on. *)
        let walk_cost = match_walk_cost t ~entries in
        t.tp.Simnet.Transport.charge_rx t.self.Simnet.Proc_id.nid walk_cost;
        let tr = Scheduler.trace (sched t) in
        if Trace.enabled tr then begin
          let start = Scheduler.now (sched t) in
          Trace.complete tr ~subsys:"ni"
            ~proc:(t.tp.Simnet.Transport.rx_track t.self.Simnet.Proc_id.nid)
            ~msg_id:t.c.c_rx ~start
            ~finish:(Time_ns.add start walk_cost)
            (Printf.sprintf "match pt=%d" msg.Wire.portal_index)
        end;
        (match md_eq with
        | None -> ()
        | Some queue ->
          let kind =
            match op with
            (* A chain-fired put is logged as TRIGGERED: the provenance
               bit on the wire makes NIC-resident forwarding observable
               at the target. *)
            | Md.Op_put -> if msg.Wire.triggered then Event.Triggered else Event.Put
            | Md.Op_get -> Event.Get
            | Md.Op_atomic -> assert false
          in
          post_event t ~md ~kind ~msg ~mlength ~offset queue);
        (match op with
        | Md.Op_put ->
          if ack_wanted then begin
            t.c.c_acks <- t.c.c_acks + 1;
            t.tp.Simnet.Transport.send ~src:t.self ~dst:src
              (Wire.encode
                 (Wire.ack_of_put ~incarnation:(self_incarnation t) msg
                    ~mlength))
          end
        | Md.Op_get ->
          t.c.c_replies <- t.c.c_replies + 1;
          t.tp.Simnet.Transport.send ~src:t.self ~dst:src
            (Wire.encode
               (Wire.reply_of_get ~incarnation:(self_incarnation t) msg
                  ~mlength ~data:reply_data))
        | Md.Op_atomic -> assert false);
        (* Counter bump last: acknowledgments and events for this deposit
           are already issued when a chain it triggers starts sending, so
           a fired chain observes — and extends — a consistent NI. *)
        bump_match_ct t matched_ct)
  end

(* Execute a read-modify-write at ME-match time — the bypass path of
   [handle_put_or_get] extended to atomics (§5.1 generalized): the target
   host fiber is never involved, only the match-list walk is charged. *)
let handle_atomic t (msg : Wire.t) =
  let src = msg.Wire.initiator in
  match msg.Wire.atomic with
  | None -> drop t Malformed
  | Some a ->
    if msg.Wire.portal_index < 0 || msg.Wire.portal_index >= Array.length t.pt
    then drop t Invalid_portal_index
    else begin
      match
        Acl.check t.ni_acl ~cookie:msg.Wire.cookie ~src
          ~portal_index:msg.Wire.portal_index
      with
      | Error Acl.Bad_cookie -> drop t Acl_bad_cookie
      | Error Acl.Id_mismatch -> drop t Acl_id_mismatch
      | Error Acl.Portal_mismatch -> drop t Acl_portal_mismatch
      | Ok () ->
        if
          msg.Wire.length <> Wire.atomic_word_size
          || msg.Wire.offset < 0
          || msg.Wire.offset mod Wire.atomic_word_size <> 0
        then drop t Atomic_misaligned
        else begin
          let entries, outcome =
            translate t ~portal_index:msg.Wire.portal_index ~src
              ~mbits:msg.Wire.match_bits ~op:Md.Op_atomic
              ~rlength:msg.Wire.length ~roffset:msg.Wire.offset
          in
          match outcome with
          | Error () -> drop t No_match
          | Ok (me_entry, mdh, md_entry, acc) ->
            let md = md_entry.md in
            let matched_ct = me_entry.me_ct in
            let offset = acc.Md.offset in
            let word = Md.read md ~offset ~len:Wire.atomic_word_size in
            let old = Bytes.get_int64_le word 0 in
            let next =
              match a.Wire.aop with
              | Wire.Fetch_add -> Int64.add old a.Wire.operand
              | Wire.Swap -> a.Wire.operand
              | Wire.Cas ->
                if Int64.equal old a.Wire.compare then a.Wire.operand else old
            in
            Md.consume md acc;
            Bytes.set_int64_le word 0 next;
            Md.write md ~offset ~src:word ~src_off:0
              ~len:Wire.atomic_word_size;
            let md_eq = Md.eq md in
            auto_unlink_md t mdh md_entry;
            let walk_cost = match_walk_cost t ~entries in
            t.tp.Simnet.Transport.charge_rx t.self.Simnet.Proc_id.nid walk_cost;
            let tr = Scheduler.trace (sched t) in
            if Trace.enabled tr then begin
              let start = Scheduler.now (sched t) in
              Trace.complete tr ~subsys:"ni"
                ~proc:(t.tp.Simnet.Transport.rx_track t.self.Simnet.Proc_id.nid)
                ~msg_id:t.c.c_rx ~start
                ~finish:(Time_ns.add start walk_cost)
                (Printf.sprintf "atomic %s pt=%d"
                   (Wire.aop_to_string a.Wire.aop)
                   msg.Wire.portal_index)
            end;
            (match md_eq with
            | None -> ()
            | Some queue ->
              post_event t ~md ~kind:Event.Atomic ~msg
                ~mlength:acc.Md.mlength ~offset queue);
            t.c.c_atomics_exec <- t.c.c_atomics_exec + 1;
            t.tp.Simnet.Transport.send ~src:t.self ~dst:src
              (Wire.encode
                 (Wire.atomic_reply_of_request
                    ~incarnation:(self_incarnation t) msg ~fetched:old));
            bump_match_ct t matched_ct
        end
    end

(* The fetched value lands like a get reply: through the initiator's MD,
   no event-queue handle on the wire (§4.8 semantics extended — the
   dedicated drop reasons keep the table exact). *)
let handle_atomic_reply t (msg : Wire.t) =
  match Handle.Table.find t.mds msg.Wire.md_handle with
  | None -> drop t Atomic_reply_no_md
  | Some entry ->
    let md = entry.md in
    (match Md.eq md with
    | Some queue when Event.Queue.is_full queue ->
      (* §4.8: the fetched value is discarded when the queue has no
         space — but the loss must stay observable, so the failing post
         ticks the queue's PTL_EQ_DROPPED counter, which completion
         waiters (e.g. Onesided.check_tx_overflow) turn into a typed
         overflow error instead of a silent hang. *)
      post_event t ~md ~kind:Event.Reply ~msg
        ~mlength:(min Wire.atomic_word_size (Md.length md))
        ~offset:0 queue;
      drop t Atomic_reply_eq_full
    | Some _ | None ->
      let fetched =
        match msg.Wire.atomic with Some a -> a.Wire.operand | None -> 0L
      in
      let mlength = min Wire.atomic_word_size (Md.length md) in
      let word = Bytes.create Wire.atomic_word_size in
      Bytes.set_int64_le word 0 fetched;
      Md.write md ~offset:0 ~src:word ~src_off:0 ~len:mlength;
      if Md.pending md > 0 then Md.decr_pending md;
      (match Md.eq md with
      | None -> ()
      | Some queue ->
        post_event t ~md ~kind:Event.Reply ~msg ~mlength ~offset:0 queue);
      consume_initiator t msg.Wire.md_handle entry)

let handle_ack t (msg : Wire.t) =
  (* §4.8: only confirm the event queue still exists; then record the
     event. The MD, if still present, sees its ACK completion. *)
  match Handle.Table.find t.eqs msg.Wire.eq_handle with
  | None -> drop t Ack_no_eq
  | Some queue ->
    let md_entry = Handle.Table.find t.mds msg.Wire.md_handle in
    (match md_entry with
    | None -> ()
    | Some entry -> if Md.pending entry.md > 0 then Md.decr_pending entry.md);
    post_event t
      ?md:(Option.map (fun e -> e.md) md_entry)
      ~kind:Event.Ack ~msg ~mlength:msg.Wire.length ~offset:msg.Wire.offset queue;
    (match md_entry with
    | None -> ()
    | Some entry -> consume_initiator t msg.Wire.md_handle entry)

let handle_reply t (msg : Wire.t) =
  match Handle.Table.find t.mds msg.Wire.md_handle with
  | None -> drop t Reply_no_md
  | Some entry ->
    let md = entry.md in
    (match Md.eq md with
    | Some queue when Event.Queue.is_full queue ->
      (* §4.8: a reply is dropped if the event queue has no space and is
         not null. The failing post keeps the loss observable through
         the queue's PTL_EQ_DROPPED counter. *)
      post_event t ~md ~kind:Event.Reply ~msg ~mlength:0
        ~offset:msg.Wire.offset queue;
      drop t Reply_eq_full
    | Some _ | None ->
      (* Every memory descriptor accepts and truncates replies (§4.8). *)
      let mlength = min msg.Wire.length (Md.length md) in
      Md.write md ~offset:0 ~src:msg.Wire.data ~src_off:Wire.header_size
        ~len:mlength;
      if Md.pending md > 0 then Md.decr_pending md;
      (match Md.eq md with
      | None -> ()
      | Some queue -> post_event t ~md ~kind:Event.Reply ~msg ~mlength ~offset:0 queue);
      consume_initiator t msg.Wire.md_handle entry)

let handle_incoming t ~src:_ payload =
  if t.live then begin
    t.c.c_rx <- t.c.c_rx + 1;
    t.c.c_rx_bytes <- t.c.c_rx_bytes + Bytes.length payload;
    match Wire.decode_view payload with
    | Error (Wire.Bad_checksum _) -> drop t Checksum_failed
    | Error _ -> drop t Malformed
    | Ok msg ->
      (* Incarnation fence: a message stamped by a previous life of its
         sender node is from a process that no longer exists; accepting it
         would resurrect pre-crash state (§3's connectionless argument —
         the fence replaces a connection teardown). *)
      let sender_nid = msg.Wire.initiator.Simnet.Proc_id.nid in
      if
        msg.Wire.incarnation
        <> t.tp.Simnet.Transport.node_incarnation sender_nid
      then drop t Stale_incarnation
      else (
        match msg.Wire.op with
        | Wire.Put_request -> handle_put_or_get t msg ~op:Md.Op_put
        | Wire.Get_request -> handle_put_or_get t msg ~op:Md.Op_get
        | Wire.Atomic_request -> handle_atomic t msg
        | Wire.Ack -> handle_ack t msg
        | Wire.Reply -> handle_reply t msg
        | Wire.Atomic_reply -> handle_atomic_reply t msg)
  end

(* ------------------------------------------------------------------ *)

let create tp ~id:self ?(portal_table_size = 64) ?(acl_size = 16) () =
  if portal_table_size <= 0 then invalid_arg "Ni.create: empty portal table";
  let t =
    {
      tp;
      self;
      pt = Array.make portal_table_size [];
      ni_acl = Acl.create ~size:acl_size;
      mds = Handle.Table.create ();
      mes = Handle.Table.create ();
      eqs = Handle.Table.create ();
      cts = Handle.Table.create ();
      drops = Array.make (List.length all_drop_reasons) 0;
      c =
        {
          c_puts = 0;
          c_gets = 0;
          c_atomics = 0;
          c_acks = 0;
          c_replies = 0;
          c_atomics_exec = 0;
          c_rx = 0;
          c_rx_bytes = 0;
          c_translations = 0;
          c_entries = 0;
          c_triggered = 0;
        };
      eq_seq = 0;
      live = true;
    }
  in
  Acl.install_defaults t.ni_acl ~job_id:Match_id.any;
  tp.Simnet.Transport.register self (fun ~src payload ->
      handle_incoming t ~src payload);
  (* Publish the §4.8 drop counters (by reason) and the interface counters
     as probes: the receive path keeps its plain integer bumps, and the
     registry polls them only at snapshot time. *)
  let m = Scheduler.metrics (sched t) in
  let proc = Format.asprintf "%a" Simnet.Proc_id.pp self in
  List.iter
    (fun reason ->
      Metrics.probe m
        ~labels:[ ("proc", proc); ("reason", drop_reason_slug reason) ]
        "ni.drops"
        (fun () -> float_of_int t.drops.(drop_reason_index reason)))
    all_drop_reasons;
  let labels = [ ("proc", proc) ] in
  List.iter
    (fun (name, read) -> Metrics.probe m ~labels name read)
    [
      ("ni.puts", fun () -> float_of_int t.c.c_puts);
      ("ni.gets", fun () -> float_of_int t.c.c_gets);
      ("ni.atomics", fun () -> float_of_int t.c.c_atomics);
      ("ni.acks", fun () -> float_of_int t.c.c_acks);
      ("ni.replies", fun () -> float_of_int t.c.c_replies);
      ("ni.atomics_executed", fun () -> float_of_int t.c.c_atomics_exec);
      ("ni.rx_messages", fun () -> float_of_int t.c.c_rx);
      ("ni.rx_bytes", fun () -> float_of_int t.c.c_rx_bytes);
      ("ni.translations", fun () -> float_of_int t.c.c_translations);
      ("ni.entries_walked", fun () -> float_of_int t.c.c_entries);
      ("ni.triggered_fired", fun () -> float_of_int t.c.c_triggered);
      ("ni.drops_total", fun () -> float_of_int (dropped_total t));
    ];
  t

let shutdown t =
  if t.live then begin
    t.live <- false;
    t.tp.Simnet.Transport.unregister t.self
  end
