type op = Put_request | Ack | Get_request | Reply

let op_to_string = function
  | Put_request -> "PUT_REQUEST"
  | Ack -> "ACK"
  | Get_request -> "GET_REQUEST"
  | Reply -> "REPLY"

let pp_op ppf op = Format.pp_print_string ppf (op_to_string op)

type t = {
  op : op;
  ack_requested : bool;
  initiator : Simnet.Proc_id.t;
  target : Simnet.Proc_id.t;
  portal_index : int;
  cookie : int;
  match_bits : Match_bits.t;
  offset : int;
  md_handle : Handle.md;
  eq_handle : Handle.eq;
  incarnation : int;
  length : int;
  data : bytes;
}

let magic = 0xB3
let version = 0x30
let header_size = 72

let op_code = function Put_request -> 0 | Ack -> 1 | Get_request -> 2 | Reply -> 3

let op_of_code = function
  | 0 -> Some Put_request
  | 1 -> Some Ack
  | 2 -> Some Get_request
  | 3 -> Some Reply
  | _ -> None

let put_request ?(ack_requested = true) ?(incarnation = 0) ?length ~initiator
    ~target ~portal_index ~cookie ~match_bits ~offset ~md_handle ~eq_handle
    ~data () =
  {
    op = Put_request;
    ack_requested;
    initiator;
    target;
    portal_index;
    cookie;
    match_bits;
    offset;
    md_handle;
    eq_handle;
    incarnation;
    length = Option.value length ~default:(Bytes.length data);
    data;
  }

let ack_of_put ?incarnation t ~mlength =
  if t.op <> Put_request then invalid_arg "Wire.ack_of_put: not a put request";
  {
    t with
    op = Ack;
    ack_requested = false;
    initiator = t.target;
    target = t.initiator;
    incarnation = Option.value incarnation ~default:t.incarnation;
    length = mlength;
    data = Bytes.empty;
  }

let get_request ?(incarnation = 0) ~initiator ~target ~portal_index ~cookie
    ~match_bits ~offset ~md_handle ~rlength () =
  {
    op = Get_request;
    ack_requested = false;
    initiator;
    target;
    portal_index;
    cookie;
    match_bits;
    offset;
    md_handle;
    eq_handle = Handle.none;
    incarnation;
    length = rlength;
    data = Bytes.empty;
  }

let reply_of_get ?incarnation t ~mlength ~data =
  if t.op <> Get_request then invalid_arg "Wire.reply_of_get: not a get request";
  if Bytes.length data <> mlength then
    invalid_arg "Wire.reply_of_get: data length disagrees with mlength";
  {
    t with
    op = Reply;
    initiator = t.target;
    target = t.initiator;
    incarnation = Option.value incarnation ~default:t.incarnation;
    length = mlength;
    data;
  }

let write_header buf t =
  Bytes.set_uint8 buf 0 magic;
  Bytes.set_uint8 buf 1 version;
  Bytes.set_uint8 buf 2 (op_code t.op);
  Bytes.set_uint8 buf 3 (if t.ack_requested then 1 else 0);
  Bytes.set_int32_le buf 4 (Int32.of_int t.initiator.Simnet.Proc_id.nid);
  Bytes.set_int32_le buf 8 (Int32.of_int t.initiator.Simnet.Proc_id.pid);
  Bytes.set_int32_le buf 12 (Int32.of_int t.target.Simnet.Proc_id.nid);
  Bytes.set_int32_le buf 16 (Int32.of_int t.target.Simnet.Proc_id.pid);
  Bytes.set_int32_le buf 20 (Int32.of_int t.portal_index);
  Bytes.set_int32_le buf 24 (Int32.of_int t.cookie);
  Bytes.set_int64_le buf 28 (Match_bits.to_int64 t.match_bits);
  Bytes.set_int64_le buf 36 (Int64.of_int t.offset);
  Bytes.set_int64_le buf 44 (Handle.to_wire t.md_handle);
  Bytes.set_int64_le buf 52 (Handle.to_wire t.eq_handle);
  Bytes.set_int32_le buf 60 (Int32.of_int t.incarnation);
  Bytes.set_int64_le buf 64 (Int64.of_int t.length)

let encode t =
  let buf = Bytes.create (header_size + Bytes.length t.data) in
  write_header buf t;
  Bytes.blit t.data 0 buf header_size (Bytes.length t.data);
  buf

let encode_with t ~fill =
  let buf = Bytes.create (header_size + t.length) in
  write_header buf t;
  fill buf header_size;
  buf

type decode_error =
  | Bad_magic
  | Bad_version of int
  | Bad_operation of int
  | Truncated of { expected : int; got : int }

let pp_decode_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic byte"
  | Bad_version v -> Format.fprintf ppf "unsupported version 0x%02x" v
  | Bad_operation op -> Format.fprintf ppf "unknown operation code %d" op
  | Truncated { expected; got } ->
    Format.fprintf ppf "truncated message: need %d bytes, have %d" expected got

let decode_gen ~extract_data buf =
  let got = Bytes.length buf in
  if got < header_size then Error (Truncated { expected = header_size; got })
  else if Bytes.get_uint8 buf 0 <> magic then Error Bad_magic
  else begin
    let v = Bytes.get_uint8 buf 1 in
    if v <> version then Error (Bad_version v)
    else begin
      match op_of_code (Bytes.get_uint8 buf 2) with
      | None -> Error (Bad_operation (Bytes.get_uint8 buf 2))
      | Some op ->
        let i32 pos = Int32.to_int (Bytes.get_int32_le buf pos) in
        let i64 pos = Int64.to_int (Bytes.get_int64_le buf pos) in
        let length = i64 64 in
        let data_len =
          match op with Put_request | Reply -> length | Ack | Get_request -> 0
        in
        if got < header_size + data_len then
          Error (Truncated { expected = header_size + data_len; got })
        else
          Ok
            {
              op;
              ack_requested = Bytes.get_uint8 buf 3 = 1;
              initiator = Simnet.Proc_id.make ~nid:(i32 4) ~pid:(i32 8);
              target = Simnet.Proc_id.make ~nid:(i32 12) ~pid:(i32 16);
              portal_index = i32 20;
              cookie = i32 24;
              match_bits = Match_bits.of_int64 (Bytes.get_int64_le buf 28);
              offset = i64 36;
              md_handle = Handle.of_wire (Bytes.get_int64_le buf 44);
              eq_handle = Handle.of_wire (Bytes.get_int64_le buf 52);
              incarnation = i32 60;
              length;
              data = extract_data buf data_len;
            }
    end
  end

let decode buf =
  decode_gen ~extract_data:(fun buf data_len -> Bytes.sub buf header_size data_len) buf

(* The receive hot path blits payload straight from the wire image into
   the matched memory descriptor, so [decode]'s per-message [Bytes.sub]
   is pure overhead there. A viewed message aliases the whole image as
   [data]; its payload bytes live at [header_size ..]. *)
let decode_view buf = decode_gen ~extract_data:(fun buf _ -> buf) buf

let field_inventory = function
  | Put_request ->
    [
      ("operation", "Indicates a put request");
      ("initiator", "Local process id");
      ("incarnation", "Initiator's incarnation (fences stale senders)");
      ("target", "Target process id");
      ("portal index", "Target Portal table entry");
      ("cookie", "Access control table entry");
      ("match bits", "Matching criteria");
      ("offset", "Offset within the target memory");
      ("memory desc", "Local memory region for an ack");
      ("event queue", "Local event queue for the ack event");
      ("length", "Length of the data");
      ("data", "Payload");
    ]
  | Ack ->
    [
      ("operation", "Indicates an acknowledgment");
      ("initiator", "Echoed from the put request (swapped)");
      ("target", "Echoed from the put request (swapped)");
      ("portal index", "Echoed from the put request");
      ("match bits", "Echoed from the put request");
      ("offset", "Echoed from the put request");
      ("memory desc", "Echoed from the put request");
      ("event queue", "Echoed: where to record the ack event");
      ("manipulated length", "Bytes actually deposited by the put");
    ]
  | Get_request ->
    [
      ("operation", "Indicates a get request");
      ("initiator", "Local process id");
      ("incarnation", "Initiator's incarnation (fences stale senders)");
      ("target", "Target process id");
      ("portal index", "Target Portal table entry");
      ("cookie", "Access control table entry");
      ("match bits", "Matching criteria");
      ("offset", "Offset within the target memory");
      ("memory desc", "Local memory region for the reply (no event queue \
                       handle: the reply routes via the memory descriptor)");
      ("length", "Length of the data requested");
    ]
  | Reply ->
    [
      ("operation", "Indicates a reply");
      ("initiator", "Echoed from the get request (swapped)");
      ("target", "Echoed from the get request (swapped)");
      ("memory desc", "Echoed from the get request");
      ("manipulated length", "Bytes actually read by the get");
      ("data", "Payload");
    ]

let pp ppf t =
  Format.fprintf ppf
    "%a %a->%a pt=%d ck=%d bits=%a off=%d md=%a eq=%a inc=%d len=%d%s" pp_op
    t.op Simnet.Proc_id.pp t.initiator Simnet.Proc_id.pp t.target
    t.portal_index t.cookie Match_bits.pp t.match_bits t.offset Handle.pp
    t.md_handle Handle.pp t.eq_handle t.incarnation t.length
    (if t.ack_requested then " +ack" else "")
