type op =
  | Put_request
  | Ack
  | Get_request
  | Reply
  | Atomic_request
  | Atomic_reply

let op_to_string = function
  | Put_request -> "PUT_REQUEST"
  | Ack -> "ACK"
  | Get_request -> "GET_REQUEST"
  | Reply -> "REPLY"
  | Atomic_request -> "ATOMIC_REQUEST"
  | Atomic_reply -> "ATOMIC_REPLY"

let pp_op ppf op = Format.pp_print_string ppf (op_to_string op)

type aop = Fetch_add | Swap | Cas

let aop_to_string = function
  | Fetch_add -> "FETCH_ADD"
  | Swap -> "SWAP"
  | Cas -> "CAS"

let pp_aop ppf a = Format.pp_print_string ppf (aop_to_string a)
let aop_code = function Fetch_add -> 0 | Swap -> 1 | Cas -> 2

let aop_of_code = function
  | 0 -> Some Fetch_add
  | 1 -> Some Swap
  | 2 -> Some Cas
  | _ -> None

let all_aops = [ Fetch_add; Swap; Cas ]

type atomic = { aop : aop; operand : int64; compare : int64 }

type t = {
  op : op;
  ack_requested : bool;
  triggered : bool;
      (* Provenance: the message was emitted by a pre-armed triggered
         chain on the initiator's NI, not by a host fiber. Travels in bit
         1 of the flags byte; untriggered frames are byte-identical to the
         pre-extension format. *)
  initiator : Simnet.Proc_id.t;
  target : Simnet.Proc_id.t;
  portal_index : int;
  cookie : int;
  match_bits : Match_bits.t;
  offset : int;
  md_handle : Handle.md;
  eq_handle : Handle.eq;
  incarnation : int;
  length : int;
  data : bytes;
  atomic : atomic option;
}

let magic = 0xB3
let version = 0x30
let header_size = 72

(* Version 0x31 frames are version 0x30 frames plus a CRC-32C trailer
   over everything before it (header, extension block, payload). The
   version byte keeps the format self-describing — a decoder accepts
   either — while the process-wide [Simnet.Integrity] switch decides
   what encoders emit, so fault-free runs stay byte-identical to the
   pre-integrity format. While the switch is on, decoders also {e
   reject} unprotected 0x30 frames: otherwise one bit flip in the
   version byte would downgrade a protected frame out of coverage. *)
let version_checksummed = 0x31
let checksum_size = 4
let frame_checksum_size () =
  if Simnet.Integrity.is_enabled () then checksum_size else 0

(* Atomic messages carry an extension block after the fixed header:
   1 byte atomic opcode, 8 bytes operand, 8 bytes compare value. In a
   reply the operand slot carries the fetched (pre-operation) value, so
   atomics never need a payload — the manipulated word always fits the
   block. *)
let atomic_block_size = 17
let atomic_word_size = 8

let ext_size = function
  | Atomic_request | Atomic_reply -> atomic_block_size
  | Put_request | Ack | Get_request | Reply -> 0

let op_code = function
  | Put_request -> 0
  | Ack -> 1
  | Get_request -> 2
  | Reply -> 3
  | Atomic_request -> 4
  | Atomic_reply -> 5

let op_of_code = function
  | 0 -> Some Put_request
  | 1 -> Some Ack
  | 2 -> Some Get_request
  | 3 -> Some Reply
  | 4 -> Some Atomic_request
  | 5 -> Some Atomic_reply
  | _ -> None

let put_request ?(ack_requested = true) ?(triggered = false) ?(incarnation = 0)
    ?length ~initiator ~target ~portal_index ~cookie ~match_bits ~offset
    ~md_handle ~eq_handle ~data () =
  {
    op = Put_request;
    ack_requested;
    triggered;
    initiator;
    target;
    portal_index;
    cookie;
    match_bits;
    offset;
    md_handle;
    eq_handle;
    incarnation;
    length = Option.value length ~default:(Bytes.length data);
    data;
    atomic = None;
  }

let ack_of_put ?incarnation t ~mlength =
  if t.op <> Put_request then invalid_arg "Wire.ack_of_put: not a put request";
  {
    t with
    op = Ack;
    ack_requested = false;
    triggered = false;
    initiator = t.target;
    target = t.initiator;
    incarnation = Option.value incarnation ~default:t.incarnation;
    length = mlength;
    data = Bytes.empty;
  }

let get_request ?(incarnation = 0) ~initiator ~target ~portal_index ~cookie
    ~match_bits ~offset ~md_handle ~rlength () =
  {
    op = Get_request;
    ack_requested = false;
    triggered = false;
    initiator;
    target;
    portal_index;
    cookie;
    match_bits;
    offset;
    md_handle;
    eq_handle = Handle.none;
    incarnation;
    length = rlength;
    data = Bytes.empty;
    atomic = None;
  }

let reply_of_get ?incarnation t ~mlength ~data =
  if t.op <> Get_request then invalid_arg "Wire.reply_of_get: not a get request";
  if Bytes.length data <> mlength then
    invalid_arg "Wire.reply_of_get: data length disagrees with mlength";
  {
    t with
    op = Reply;
    initiator = t.target;
    target = t.initiator;
    incarnation = Option.value incarnation ~default:t.incarnation;
    length = mlength;
    data;
  }

let atomic_request ?(incarnation = 0) ~aop ~operand ?(compare = 0L) ~initiator
    ~target ~portal_index ~cookie ~match_bits ~offset ~md_handle () =
  {
    op = Atomic_request;
    ack_requested = false;
    triggered = false;
    initiator;
    target;
    portal_index;
    cookie;
    match_bits;
    offset;
    md_handle;
    eq_handle = Handle.none;
    incarnation;
    length = atomic_word_size;
    data = Bytes.empty;
    atomic = Some { aop; operand; compare };
  }

let atomic_reply_of_request ?incarnation t ~fetched =
  if t.op <> Atomic_request then
    invalid_arg "Wire.atomic_reply_of_request: not an atomic request";
  let a =
    match t.atomic with
    | Some a -> a
    | None -> invalid_arg "Wire.atomic_reply_of_request: missing atomic block"
  in
  {
    t with
    op = Atomic_reply;
    initiator = t.target;
    target = t.initiator;
    incarnation = Option.value incarnation ~default:t.incarnation;
    (* The request may be a [decode_view] whose [data] aliases the whole
       wire image; the reply carries its value in the atomic block, so
       the payload must be dropped or [encode] would append the alias. *)
    data = Bytes.empty;
    atomic = Some { a with operand = fetched };
  }

let fetched_value t =
  match (t.op, t.atomic) with
  | Atomic_reply, Some a -> Some a.operand
  | _ -> None

let write_header buf t =
  Bytes.set_uint8 buf 0 magic;
  Bytes.set_uint8 buf 1 version;
  Bytes.set_uint8 buf 2 (op_code t.op);
  Bytes.set_uint8 buf 3
    ((if t.ack_requested then 1 else 0) lor if t.triggered then 2 else 0);
  Bytes.set_int32_le buf 4 (Int32.of_int t.initiator.Simnet.Proc_id.nid);
  Bytes.set_int32_le buf 8 (Int32.of_int t.initiator.Simnet.Proc_id.pid);
  Bytes.set_int32_le buf 12 (Int32.of_int t.target.Simnet.Proc_id.nid);
  Bytes.set_int32_le buf 16 (Int32.of_int t.target.Simnet.Proc_id.pid);
  Bytes.set_int32_le buf 20 (Int32.of_int t.portal_index);
  Bytes.set_int32_le buf 24 (Int32.of_int t.cookie);
  Bytes.set_int64_le buf 28 (Match_bits.to_int64 t.match_bits);
  Bytes.set_int64_le buf 36 (Int64.of_int t.offset);
  Bytes.set_int64_le buf 44 (Handle.to_wire t.md_handle);
  Bytes.set_int64_le buf 52 (Handle.to_wire t.eq_handle);
  Bytes.set_int32_le buf 60 (Int32.of_int t.incarnation);
  Bytes.set_int64_le buf 64 (Int64.of_int t.length);
  match t.atomic with
  | None ->
    if ext_size t.op <> 0 then
      invalid_arg "Wire.encode: atomic operation without an atomic block"
  | Some a ->
    if ext_size t.op = 0 then
      invalid_arg "Wire.encode: atomic block on a non-atomic operation";
    Bytes.set_uint8 buf header_size (aop_code a.aop);
    Bytes.set_int64_le buf (header_size + 1) a.operand;
    Bytes.set_int64_le buf (header_size + 9) a.compare

(* Seal a fully written 0x31 frame: CRC the body into the trailer. *)
let seal buf =
  let body = Bytes.length buf - checksum_size in
  Bytes.set_int32_le buf body
    (Int32.of_int (Simnet.Crc32c.digest ~pos:0 ~len:body buf))

let encode t =
  let ext = ext_size t.op in
  let ck = frame_checksum_size () in
  let buf = Bytes.create (header_size + ext + Bytes.length t.data + ck) in
  write_header buf t;
  Bytes.blit t.data 0 buf (header_size + ext) (Bytes.length t.data);
  if ck > 0 then begin
    Bytes.set_uint8 buf 1 version_checksummed;
    seal buf
  end;
  buf

let encode_with t ~fill =
  let ext = ext_size t.op in
  let ck = frame_checksum_size () in
  let buf = Bytes.create (header_size + ext + t.length + ck) in
  write_header buf t;
  fill buf (header_size + ext);
  if ck > 0 then begin
    Bytes.set_uint8 buf 1 version_checksummed;
    seal buf
  end;
  buf

type decode_error =
  | Bad_magic
  | Bad_version of int
  | Bad_operation of int
  | Bad_atomic_op of int
  | Truncated of { expected : int; got : int }
  | Bad_checksum of { expected : int; got : int }

let pp_decode_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic byte"
  | Bad_version v -> Format.fprintf ppf "unsupported version 0x%02x" v
  | Bad_operation op -> Format.fprintf ppf "unknown operation code %d" op
  | Bad_atomic_op c -> Format.fprintf ppf "unknown atomic opcode %d" c
  | Truncated { expected; got } ->
    Format.fprintf ppf "truncated message: need %d bytes, have %d" expected got
  | Bad_checksum { expected; got } ->
    Format.fprintf ppf "checksum mismatch: computed 0x%08x, frame says 0x%08x"
      expected got

let decode_gen ~extract_data buf =
  let got = Bytes.length buf in
  if got < header_size then Error (Truncated { expected = header_size; got })
  else if Bytes.get_uint8 buf 0 <> magic then Error Bad_magic
  else begin
    let v = Bytes.get_uint8 buf 1 in
    if
      (not (v = version || v = version_checksummed))
      || (v = version && Simnet.Integrity.is_enabled ())
    then Error (Bad_version v)
    else begin
      match op_of_code (Bytes.get_uint8 buf 2) with
      | None -> Error (Bad_operation (Bytes.get_uint8 buf 2))
      | Some op ->
        let i32 pos = Int32.to_int (Bytes.get_int32_le buf pos) in
        let i64 pos = Int64.to_int (Bytes.get_int64_le buf pos) in
        let length = i64 64 in
        let ext = ext_size op in
        let data_len =
          match op with
          | Put_request | Reply -> length
          | Ack | Get_request | Atomic_request | Atomic_reply -> 0
        in
        let ck = if v = version_checksummed then checksum_size else 0 in
        (* [data_len] comes off the wire, so guard the arithmetic: a
           corrupted length must surface as an error, not an overflow or
           a [Bytes.sub] exception. *)
        if data_len < 0 || data_len > got || got < header_size + ext + data_len + ck
        then
          Error
            (Truncated
               { expected = header_size + ext + max data_len 0 + ck; got })
        else begin
          let crc =
            if v <> version_checksummed then Ok ()
            else begin
              let body = header_size + ext + data_len in
              let computed = Simnet.Crc32c.digest ~pos:0 ~len:body buf in
              let stored =
                Int32.to_int (Bytes.get_int32_le buf body) land 0xFFFFFFFF
              in
              if computed = stored then Ok ()
              else Error (Bad_checksum { expected = computed; got = stored })
            end
          in
          match crc with
          | Error e -> Error e
          | Ok () ->
          let atomic =
            if ext = 0 then Ok None
            else begin
              match aop_of_code (Bytes.get_uint8 buf header_size) with
              | None -> Error (Bad_atomic_op (Bytes.get_uint8 buf header_size))
              | Some aop ->
                Ok
                  (Some
                     {
                       aop;
                       operand = Bytes.get_int64_le buf (header_size + 1);
                       compare = Bytes.get_int64_le buf (header_size + 9);
                     })
            end
          in
          match atomic with
          | Error e -> Error e
          | Ok atomic ->
            Ok
              {
                op;
                ack_requested = Bytes.get_uint8 buf 3 land 1 = 1;
                triggered = Bytes.get_uint8 buf 3 land 2 <> 0;
                initiator = Simnet.Proc_id.make ~nid:(i32 4) ~pid:(i32 8);
                target = Simnet.Proc_id.make ~nid:(i32 12) ~pid:(i32 16);
                portal_index = i32 20;
                cookie = i32 24;
                match_bits = Match_bits.of_int64 (Bytes.get_int64_le buf 28);
                offset = i64 36;
                md_handle = Handle.of_wire (Bytes.get_int64_le buf 44);
                eq_handle = Handle.of_wire (Bytes.get_int64_le buf 52);
                incarnation = i32 60;
                length;
                data = extract_data buf ~off:(header_size + ext) ~len:data_len;
                atomic;
              }
        end
    end
  end

let decode buf =
  decode_gen ~extract_data:(fun buf ~off ~len -> Bytes.sub buf off len) buf

(* The receive hot path blits payload straight from the wire image into
   the matched memory descriptor, so [decode]'s per-message [Bytes.sub]
   is pure overhead there. A viewed message aliases the whole image as
   [data]; its payload bytes live at [header_size ..] (all payload-
   carrying operations have no extension block). *)
let decode_view buf = decode_gen ~extract_data:(fun buf ~off:_ ~len:_ -> buf) buf

let field_inventory = function
  | Put_request ->
    [
      ("operation", "Indicates a put request");
      ("flags", "Ack-requested bit and triggered-provenance bit");
      ("initiator", "Local process id");
      ("incarnation", "Initiator's incarnation (fences stale senders)");
      ("target", "Target process id");
      ("portal index", "Target Portal table entry");
      ("cookie", "Access control table entry");
      ("match bits", "Matching criteria");
      ("offset", "Offset within the target memory");
      ("memory desc", "Local memory region for an ack");
      ("event queue", "Local event queue for the ack event");
      ("length", "Length of the data");
      ("data", "Payload");
    ]
  | Ack ->
    [
      ("operation", "Indicates an acknowledgment");
      ("initiator", "Echoed from the put request (swapped)");
      ("target", "Echoed from the put request (swapped)");
      ("portal index", "Echoed from the put request");
      ("match bits", "Echoed from the put request");
      ("offset", "Echoed from the put request");
      ("memory desc", "Echoed from the put request");
      ("event queue", "Echoed: where to record the ack event");
      ("manipulated length", "Bytes actually deposited by the put");
    ]
  | Get_request ->
    [
      ("operation", "Indicates a get request");
      ("initiator", "Local process id");
      ("incarnation", "Initiator's incarnation (fences stale senders)");
      ("target", "Target process id");
      ("portal index", "Target Portal table entry");
      ("cookie", "Access control table entry");
      ("match bits", "Matching criteria");
      ("offset", "Offset within the target memory");
      ("memory desc", "Local memory region for the reply (no event queue \
                       handle: the reply routes via the memory descriptor)");
      ("length", "Length of the data requested");
    ]
  | Reply ->
    [
      ("operation", "Indicates a reply");
      ("initiator", "Echoed from the get request (swapped)");
      ("target", "Echoed from the get request (swapped)");
      ("memory desc", "Echoed from the get request");
      ("manipulated length", "Bytes actually read by the get");
      ("data", "Payload");
    ]
  | Atomic_request ->
    [
      ("operation", "Indicates an atomic request");
      ("atomic opcode", "FETCH_ADD, SWAP or CAS");
      ("initiator", "Local process id");
      ("incarnation", "Initiator's incarnation (fences stale senders)");
      ("target", "Target process id");
      ("portal index", "Target Portal table entry");
      ("cookie", "Access control table entry");
      ("match bits", "Matching criteria");
      ("offset", "Offset of the 64-bit word within the target memory");
      ("memory desc", "Local memory region for the fetched-value reply \
                       (routes like a get reply)");
      ("operand", "Addend (FETCH_ADD) or new value (SWAP/CAS)");
      ("compare", "Expected value (CAS only)");
      ("length", "Width of the operated word (always 8)");
    ]
  | Atomic_reply ->
    [
      ("operation", "Indicates a fetched-value reply");
      ("atomic opcode", "Echoed from the atomic request");
      ("initiator", "Echoed from the atomic request (swapped)");
      ("target", "Echoed from the atomic request (swapped)");
      ("memory desc", "Echoed from the atomic request");
      ("fetched value", "The word's value before the operation, in the \
                         operand slot");
      ("length", "Width of the fetched word (always 8)");
    ]

let pp ppf t =
  Format.fprintf ppf
    "%a %a->%a pt=%d ck=%d bits=%a off=%d md=%a eq=%a inc=%d len=%d%s" pp_op
    t.op Simnet.Proc_id.pp t.initiator Simnet.Proc_id.pp t.target
    t.portal_index t.cookie Match_bits.pp t.match_bits t.offset Handle.pp
    t.md_handle Handle.pp t.eq_handle t.incarnation t.length
    ((if t.ack_requested then " +ack" else "")
    ^ if t.triggered then " +trig" else "");
  match t.atomic with
  | None -> ()
  | Some a ->
    Format.fprintf ppf " %a operand=%Ld compare=%Ld" pp_aop a.aop a.operand
      a.compare
