type kind = Sent | Ack | Put | Get | Atomic | Reply | Triggered

let kind_to_string = function
  | Sent -> "SENT"
  | Ack -> "ACK"
  | Put -> "PUT"
  | Get -> "GET"
  | Atomic -> "ATOMIC"
  | Reply -> "REPLY"
  | Triggered -> "TRIGGERED"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

type t = {
  kind : kind;
  initiator : Simnet.Proc_id.t;
  portal_index : int;
  match_bits : Match_bits.t;
  rlength : int;
  mlength : int;
  offset : int;
  md_handle : Handle.md;
  md_user_ptr : int;
  time : Sim_engine.Time_ns.t;
}

let pp ppf t =
  Format.fprintf ppf "%a from %a pt=%d bits=%a rlen=%d mlen=%d off=%d at %a"
    pp_kind t.kind Simnet.Proc_id.pp t.initiator t.portal_index Match_bits.pp
    t.match_bits t.rlength t.mlength t.offset Sim_engine.Time_ns.pp t.time

module Queue = struct
  type event = t

  type t = {
    sched : Sim_engine.Scheduler.t;
    ring : event option array;
    mutable head : int; (* next read position *)
    mutable len : int;
    mutable dropped : int;
    mutable posted : int;
    mutable depth_series : Sim_engine.Metrics.series option;
    mutable interrupts : int;
    nonempty : Sim_engine.Sync.Waitq.t;
  }

  let create ?name sched ~capacity =
    if capacity <= 0 then invalid_arg "Event.Queue.create: capacity must be positive";
    let t =
      {
        sched;
        ring = Array.make capacity None;
        head = 0;
        len = 0;
        dropped = 0;
        posted = 0;
        depth_series = None;
        interrupts = 0;
        nonempty = Sim_engine.Sync.Waitq.create ~name:"eq" sched;
      }
    in
    (match name with
    | None -> ()
    | Some n ->
      (* Named queues publish a depth time-series plus posted/dropped
         probes under the "eq" label; anonymous queues cost nothing. *)
      let m = Sim_engine.Scheduler.metrics sched in
      let labels = [ ("eq", n) ] in
      t.depth_series <- Some (Sim_engine.Metrics.series m ~labels "eq.depth");
      Sim_engine.Metrics.probe m ~labels "eq.posted" (fun () ->
          float_of_int t.posted);
      Sim_engine.Metrics.probe m ~labels "eq.dropped" (fun () ->
          float_of_int t.dropped));
    t

  let capacity t = Array.length t.ring
  let count t = t.len
  let is_full t = t.len = Array.length t.ring

  let record_depth t =
    match t.depth_series with
    | None -> ()
    | Some s ->
      Sim_engine.Metrics.push s
        ~x:(Sim_engine.Time_ns.to_us (Sim_engine.Scheduler.now t.sched))
        ~y:(float_of_int t.len)

  let post t ev =
    if is_full t then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      let tail = (t.head + t.len) mod Array.length t.ring in
      t.ring.(tail) <- Some ev;
      t.len <- t.len + 1;
      t.posted <- t.posted + 1;
      record_depth t;
      Sim_engine.Sync.Waitq.broadcast t.nonempty;
      true
    end

  let get t =
    if t.len = 0 then None
    else begin
      let ev = t.ring.(t.head) in
      t.ring.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.len <- t.len - 1;
      record_depth t;
      ev
    end

  let rec wait t =
    match get t with
    | Some ev -> ev
    | None ->
      Sim_engine.Sync.Waitq.wait t.nonempty;
      wait t

  let wake t =
    t.interrupts <- t.interrupts + 1;
    Sim_engine.Sync.Waitq.broadcast t.nonempty

  let wait_opt t =
    let mark = t.interrupts in
    let rec loop () =
      match get t with
      | Some ev -> Some ev
      | None ->
        if t.interrupts <> mark then None
        else begin
          Sim_engine.Sync.Waitq.wait t.nonempty;
          loop ()
        end
    in
    loop ()

  let dropped t = t.dropped
  let posted t = t.posted
end
