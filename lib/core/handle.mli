(** Object handles and generation-checked handle tables.

    The Portals API never exposes pointers: memory descriptors, match
    entries and event queues are referred to by handles, and handles
    travel on the wire (a put request carries the initiator's MD handle so
    the acknowledgment can route back to it, Table 1). A handle is an index
    plus a generation counter; resolving a stale handle — the object was
    unlinked and its slot reused — fails cleanly, which is exactly the
    "memory descriptor identified in the request doesn't exist" check of
    §4.8.

    Handles are {e kinded} by a phantom parameter: {!eq}, {!md} and {!me}
    are incompatible types, so passing an event-queue handle where a
    memory-descriptor handle is expected is a compile-time error rather
    than a runtime [Invalid_md]. The representation is unchanged — the
    phantom erases at runtime and on the wire. *)

type eq_kind
type md_kind
type me_kind
type ct_kind

type +'k t
(** An opaque handle of kind ['k]. Each table still checks generations, so
    a forged or stale handle resolves as invalid. *)

type eq = eq_kind t
(** Event queue handles ([PtlEQAlloc]). *)

type md = md_kind t
(** Memory descriptor handles ([PtlMDBind]/[PtlMDAttach]). *)

type me = me_kind t
(** Match entry handles ([PtlMEAttach]/[PtlMEInsert]). *)

type ct = ct_kind t
(** Counting-event handles ([PtlCTAlloc]-style). Counters are the
    triggered-operation extension: a counter attached to a match entry is
    bumped by the NI at match time, and chains armed with {!Ni.ct_arm}
    fire when it crosses their threshold — without a host fiber. *)

val none : 'k t
(** The distinguished null handle ([PTL_HANDLE_NONE]): never resolves. *)

val is_none : 'k t -> bool
val equal : 'k t -> 'k t -> bool
val pp : Format.formatter -> 'k t -> unit

val to_wire : 'k t -> int64
(** Wire image of a handle (index and generation packed). The kind does
    not travel — the wire format is unchanged. *)

val of_wire : int64 -> 'k t

module Table : sig
  (** A slot table with free-list reuse and per-slot generations,
      producing handles of a fixed kind. *)

  type 'k handle := 'k t
  type ('k, 'a) t

  val create : ?initial_capacity:int -> unit -> ('k, 'a) t

  val alloc : ('k, 'a) t -> 'a -> 'k handle
  (** Store a value, returning its handle. The table grows as needed. *)

  val find : ('k, 'a) t -> 'k handle -> 'a option
  (** [None] if the handle is null, stale, or out of range. *)

  val free : ('k, 'a) t -> 'k handle -> bool
  (** Release a slot; subsequent {!find}s of the same handle fail. Returns
      false if the handle did not resolve. *)

  val live_count : ('k, 'a) t -> int

  val iter : ('k, 'a) t -> ('k handle -> 'a -> unit) -> unit
  (** Visit every live entry. *)
end
