type eq_kind = |
type md_kind = |
type me_kind = |
type ct_kind = |

type 'k t = { idx : int; gen : int }

type eq = eq_kind t
type md = md_kind t
type me = me_kind t
type ct = ct_kind t

let none = { idx = -1; gen = -1 }
let is_none t = t.idx < 0
let equal a b = a.idx = b.idx && a.gen = b.gen

let pp ppf t =
  if is_none t then Format.pp_print_string ppf "<none>"
  else Format.fprintf ppf "h%d.%d" t.idx t.gen

(* 32 bits of index, 31 bits of generation; [none] maps to all-ones. *)
let to_wire t =
  if is_none t then -1L
  else Int64.logor (Int64.of_int t.idx) (Int64.shift_left (Int64.of_int t.gen) 32)

let of_wire w =
  if Int64.equal w (-1L) then none
  else
    {
      idx = Int64.to_int (Int64.logand w 0xFFFFFFFFL);
      gen = Int64.to_int (Int64.shift_right_logical w 32);
    }

module Table = struct
  type 'a slot = { mutable value : 'a option; mutable gen : int }

  type ('k, 'a) t = {
    mutable slots : 'a slot array;
    mutable free : int list;
    mutable live : int;
  }

  let create ?(initial_capacity = 16) () =
    ignore initial_capacity;
    { slots = [||]; free = []; live = 0 }

  let grow t =
    let old = Array.length t.slots in
    let cap = if old = 0 then 16 else old * 2 in
    let slots = Array.init cap (fun i ->
        if i < old then t.slots.(i) else { value = None; gen = 0 })
    in
    t.slots <- slots;
    for i = cap - 1 downto old do
      t.free <- i :: t.free
    done

  let alloc t v =
    (match t.free with [] -> grow t | _ :: _ -> ());
    match t.free with
    | [] -> assert false
    | idx :: rest ->
      t.free <- rest;
      let slot = t.slots.(idx) in
      slot.value <- Some v;
      t.live <- t.live + 1;
      { idx; gen = slot.gen }

  let find t h =
    if h.idx < 0 || h.idx >= Array.length t.slots then None
    else
      let slot = t.slots.(h.idx) in
      if slot.gen <> h.gen then None else slot.value

  let free t h =
    match find t h with
    | None -> false
    | Some _ ->
      let slot = t.slots.(h.idx) in
      slot.value <- None;
      slot.gen <- slot.gen + 1;
      t.free <- h.idx :: t.free;
      t.live <- t.live - 1;
      true

  let live_count t = t.live

  let iter t f =
    Array.iteri
      (fun idx slot ->
        match slot.value with
        | None -> ()
        | Some v -> f { idx; gen = slot.gen } v)
      t.slots
end
