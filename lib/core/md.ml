type options = {
  op_put : bool;
  op_get : bool;
  manage_remote : bool;
  truncate : bool;
  ack_disable : bool;
}

let default_options =
  { op_put = true; op_get = true; manage_remote = true; truncate = false;
    ack_disable = false }

type threshold = Infinite | Count of int
type unlink_policy = Unlink | Retain

(* One piece of the described region: [seg_len] bytes of [seg_buf]
   starting at [seg_off]. A plain descriptor has one segment; a
   gather/scatter descriptor (the paper's §7 extension) has several, and
   operations see their logical concatenation. *)
type segment = { seg_buf : bytes; seg_off : int; seg_len : int }

type t = {
  iov : segment array;
  md_len : int; (* sum of segment lengths *)
  opts : options;
  mutable thresh : threshold;
  unlink : unlink_policy;
  md_eq : Event.Queue.t option;
  md_eq_handle : Handle.eq;
  md_user_ptr : int;
  mutable loc_offset : int;
  mutable pending_ops : int;
}

let check_threshold = function
  | Count n when n < 0 -> invalid_arg "Md.create: negative threshold"
  | Count _ | Infinite -> ()

let make ~options ~threshold ~unlink ~eq ~eq_handle ~user_ptr iov =
  check_threshold threshold;
  let md_len = Array.fold_left (fun acc s -> acc + s.seg_len) 0 iov in
  {
    iov;
    md_len;
    opts = options;
    thresh = threshold;
    unlink;
    md_eq = eq;
    md_eq_handle = eq_handle;
    md_user_ptr = user_ptr;
    loc_offset = 0;
    pending_ops = 0;
  }

let create ?(options = default_options) ?(threshold = Infinite) ?(unlink = Retain)
    ?eq ?(eq_handle = Handle.none) ?(user_ptr = 0) ?length buffer =
  let seg_len =
    match length with
    | None -> Bytes.length buffer
    | Some l ->
      if l < 0 || l > Bytes.length buffer then
        invalid_arg "Md.create: length outside the buffer";
      l
  in
  make ~options ~threshold ~unlink ~eq ~eq_handle ~user_ptr
    [| { seg_buf = buffer; seg_off = 0; seg_len } |]

let create_iovec ?(options = default_options) ?(threshold = Infinite)
    ?(unlink = Retain) ?eq ?(eq_handle = Handle.none) ?(user_ptr = 0) segments =
  if segments = [] then invalid_arg "Md.create_iovec: empty vector";
  let validate (buffer, off, len) =
    if off < 0 || len < 0 || off + len > Bytes.length buffer then
      invalid_arg "Md.create_iovec: segment outside its buffer";
    { seg_buf = buffer; seg_off = off; seg_len = len }
  in
  make ~options ~threshold ~unlink ~eq ~eq_handle ~user_ptr
    (Array.of_list (List.map validate segments))

let buffer t =
  match t.iov with
  | [| { seg_buf; _ } |] -> seg_buf
  | _ -> invalid_arg "Md.buffer: gather/scatter descriptor (use read)"

let segment_count t = Array.length t.iov
let length t = t.md_len
let options t = t.opts
let threshold t = t.thresh
let unlink_policy t = t.unlink
let eq t = t.md_eq
let eq_handle t = t.md_eq_handle
let user_ptr t = t.md_user_ptr
let local_offset t = t.loc_offset
let active t = match t.thresh with Infinite -> true | Count n -> n > 0
let pending t = t.pending_ops
let incr_pending t = t.pending_ops <- t.pending_ops + 1

let decr_pending t =
  if t.pending_ops <= 0 then invalid_arg "Md.decr_pending: no pending operation";
  t.pending_ops <- t.pending_ops - 1

type operation = Op_put | Op_get | Op_atomic

type reject_reason = Inactive | Op_disabled | Too_long

let pp_reject ppf r =
  Format.pp_print_string ppf
    (match r with
    | Inactive -> "inactive"
    | Op_disabled -> "operation disabled"
    | Too_long -> "too long without truncate")

type acceptance = { offset : int; mlength : int }

let accepts t ~op ~rlength ~roffset =
  if not (active t) then Error Inactive
  else if
    match op with
    | Op_put -> not t.opts.op_put
    | Op_get -> not t.opts.op_get
    (* An atomic both reads and writes the word, so the region must
       permit both operation classes. *)
    | Op_atomic -> not (t.opts.op_put && t.opts.op_get)
  then Error Op_disabled
  else begin
    let offset = if t.opts.manage_remote then roffset else t.loc_offset in
    let avail = t.md_len - offset in
    if rlength <= avail then Ok { offset; mlength = rlength }
    else if op = Op_atomic then
      (* Read-modify-write of a partial word is meaningless: atomics
         never truncate. *)
      Error Too_long
    else if t.opts.truncate then
      (* An offset past the end truncates to an empty transfer at the
         region's end, keeping offset + mlength within bounds. *)
      if avail <= 0 then Ok { offset = t.md_len; mlength = 0 }
      else Ok { offset; mlength = avail }
    else Error Too_long
  end

let consume_threshold t =
  match t.thresh with
  | Infinite -> ()
  | Count 0 -> ()
  | Count n -> t.thresh <- Count (n - 1)

let consume t (acc : acceptance) =
  consume_threshold t;
  if not t.opts.manage_remote then t.loc_offset <- acc.offset + acc.mlength

(* Visit the segment pieces overlapping the logical range
   [offset, offset+len): calls [f seg_buf byte_pos piece_len logical_pos]. *)
let iter_range t ~offset ~len f =
  if len > 0 then begin
    if offset < 0 || offset + len > t.md_len then
      invalid_arg "Md: range outside the described region";
    let remaining = ref len in
    let logical = ref offset in
    let seg_start = ref 0 in
    Array.iter
      (fun seg ->
        if !remaining > 0 then begin
          let seg_end = !seg_start + seg.seg_len in
          if !logical < seg_end && !logical >= !seg_start then begin
            let within = !logical - !seg_start in
            let piece = min !remaining (seg.seg_len - within) in
            f seg.seg_buf (seg.seg_off + within) piece (!logical - offset);
            logical := !logical + piece;
            remaining := !remaining - piece
          end;
          seg_start := seg_end
        end)
      t.iov
  end

let write t ~offset ~src ~src_off ~len =
  iter_range t ~offset ~len (fun buf pos piece logical ->
      Bytes.blit src (src_off + logical) buf pos piece)

let read t ~offset ~len =
  let out = Bytes.create len in
  iter_range t ~offset ~len (fun buf pos piece logical ->
      Bytes.blit buf pos out logical piece);
  out

let blit_to t ~offset ~len ~dst ~dst_off =
  iter_range t ~offset ~len (fun buf pos piece logical ->
      Bytes.blit buf pos dst (dst_off + logical) piece)
