type t =
  | No_init
  | Init_dup
  | Invalid_handle
  | Invalid_arg
  | No_space
  | Invalid_ni
  | Invalid_pt_index
  | Invalid_ac_index
  | Invalid_md
  | Invalid_me
  | Invalid_eq
  | Invalid_ct
  | Md_in_use
  | Eq_empty
  | Eq_dropped
  | Process_invalid
  | Segv

let to_string = function
  | No_init -> "PTL_NOINIT"
  | Init_dup -> "PTL_INIT_DUP"
  | Invalid_handle -> "PTL_INV_HANDLE"
  | Invalid_arg -> "PTL_INV_ARG"
  | No_space -> "PTL_NOSPACE"
  | Invalid_ni -> "PTL_INV_NI"
  | Invalid_pt_index -> "PTL_INV_PTINDEX"
  | Invalid_ac_index -> "PTL_INV_ACINDEX"
  | Invalid_md -> "PTL_INV_MD"
  | Invalid_me -> "PTL_INV_ME"
  | Invalid_eq -> "PTL_INV_EQ"
  | Invalid_ct -> "PTL_INV_CT"
  | Md_in_use -> "PTL_MD_INUSE"
  | Eq_empty -> "PTL_EQ_EMPTY"
  | Eq_dropped -> "PTL_EQ_DROPPED"
  | Process_invalid -> "PTL_PROCESS_INVALID"
  | Segv -> "PTL_SEGV"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (a : t) b = a = b

exception Portals_error of t * string

let () =
  Printexc.register_printer (function
    | Portals_error (e, op) -> Some (Printf.sprintf "%s in %s" (to_string e) op)
    | _ -> None)

let ok_exn ~op = function Ok v -> v | Error e -> raise (Portals_error (e, op))
