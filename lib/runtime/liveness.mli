(** Peer-liveness monitoring: heartbeats, timeouts, and suspicion.

    Portals itself is connectionless and keeps no per-peer state (§3), so
    node death is invisible to it — a message to a dead node just
    vanishes. Detecting death is a {e runtime} job on Cplant: this module
    reproduces that split. One node is the monitor; every other node
    emits a 1-byte heartbeat over the real fabric each period (so beats
    share fate with application traffic: fault models, crash drops, wire
    occupancy) — but as {e raw datagrams}, below any reliability shim:
    only the freshest beat matters, and an ordered-reliable channel
    would let one dropped beat head-of-line-block all later ones into
    false suspicion. A node silent for longer than the timeout is {e
    suspected} and the [on_down] callbacks fire; a beat from a suspected
    node (it restarted) fires [on_up].

    Metrics, labelled with the monitor node:
    [liveness.heartbeats_sent], [liveness.heartbeats_received],
    [liveness.suspects], [liveness.recoveries], and the
    [liveness.suspected_now] gauge. *)

type t

type verdict =
  | Alive  (** Beating within the timeout. *)
  | Suspected_crashed
      (** Silent too long and the node really is down (or the world has
          no partition machinery to blame — e.g. a false positive under
          extreme loss). *)
  | Suspected_partitioned
      (** Silent too long but demonstrably {e up}: an active cut severs
          its heartbeat path — or the world schedules partitions and the
          first post-heal beat has not landed yet. Expect recovery, not
          a funeral: once the heal's first beat arrives the node
          transitions back through [on_up] with no restart. *)

val start :
  ?period:Sim_engine.Time_ns.t ->
  ?timeout:Sim_engine.Time_ns.t ->
  ?monitor:Simnet.Proc_id.nid ->
  until:Sim_engine.Time_ns.t ->
  World.world ->
  t
(** Install the monitor on [monitor] (default node 0) and start every
    other node's emitter. [period] defaults to 200 us, [timeout] (which
    must be at least the period) to 700 us. Emitters and the checker
    self-terminate at [until] — a bound the simulation needs to quiesce.
    Raises [Invalid_argument] on a timeout below the period or a monitor
    node outside the world. *)

val stop : t -> unit
(** Stop emitting and checking now (idempotent). *)

val suspected : t -> Simnet.Proc_id.nid list
(** Nodes currently suspected dead, ascending. *)

val verdict : t -> Simnet.Proc_id.nid -> verdict
(** What the monitor believes about a node {e right now}, refining raw
    suspicion with fabric ground truth (node up/down, active cuts) so a
    partitioned-but-alive peer is not reported as crashed. Raises
    [Invalid_argument] on a node outside the world. *)

val pp_verdict : Format.formatter -> verdict -> unit

val on_down : t -> (Simnet.Proc_id.nid -> unit) -> unit
(** Called (with the node id) when a node transitions to suspected. *)

val on_up : t -> (Simnet.Proc_id.nid -> unit) -> unit
(** Called when a suspected node's heartbeat is seen again. *)
