(* The benchmark-stack registry: one row per named MPI-over-wire
   combination the paper's comparison covers. A stack pairs a wire
   placement (World.transport_kind) with the Transport.S instance that
   runs over it, so experiment code can iterate "for every stack" and
   build identical workloads over each. *)

type t = {
  name : string;
  kind : World.transport_kind;
  create :
    Simnet.Transport.t -> ranks:Simnet.Proc_id.t array -> rank:int -> Mpi.t;
}

let all =
  [
    {
      name = "portals";
      kind = World.Offload;
      create = (fun tp ~ranks ~rank -> Mpi.create_portals tp ~ranks ~rank ());
    };
    {
      name = "gm";
      kind = World.Offload;
      create = (fun tp ~ranks ~rank -> Mpi.create_gm tp ~ranks ~rank ());
    };
    {
      name = "rtscts";
      kind = World.Rtscts;
      create = (fun tp ~ranks ~rank -> Mpi.create_rtscts tp ~ranks ~rank ());
    };
    {
      name = "ibverbs";
      kind = World.Offload;
      create = (fun tp ~ranks ~rank -> Mpi.create_ibverbs tp ~ranks ~rank ());
    };
  ]

let names = List.map (fun s -> s.name) all
let find name = List.find_opt (fun s -> s.name = name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Runtime.Stack: unknown stack %S (valid: %s)" name
         (String.concat ", " names))

(* Mirror of World.launch_mpi, driven by a stack row: endpoints exist
   before any rank runs; finalize is collective behind a tolerant
   barrier (see World.launch_mpi for why). *)
let launch ?profile ?procs_per_node ?seed ?topology ?queue_limit ~nodes stack
    main =
  let world =
    World.create_world ?profile ~transport:stack.kind ?procs_per_node ?seed
      ?topology ?queue_limit ~nodes ()
  in
  let endpoints =
    Array.init (World.job_size world)
      (fun rank -> stack.create world.World.transport ~ranks:world.World.ranks ~rank)
  in
  World.spawn_ranks world (fun ~rank ->
      let ep = endpoints.(rank) in
      main ep;
      Mpi.barrier ~tolerant:true ep;
      Mpi.finalize ep);
  World.run world;
  world

(* Same launch over a caller-assembled world (a lossy fabric, a custom
   profile): the stack only contributes its endpoints. The world's
   transport must match [stack.kind]'s placement for the name to mean
   what it says. *)
let launch_on world stack main =
  let endpoints =
    Array.init (World.job_size world)
      (fun rank -> stack.create world.World.transport ~ranks:world.World.ranks ~rank)
  in
  World.spawn_ranks world (fun ~rank ->
      let ep = endpoints.(rank) in
      main ep;
      Mpi.barrier ~tolerant:true ep;
      Mpi.finalize ep);
  World.run world;
  world
