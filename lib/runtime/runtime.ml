(** The parallel job runtime: machine construction and rank fibers
    ({!World}, included here) plus the Portals job-control protocol
    ({!Control}). *)

include World
module Control = Control
module Liveness = Liveness
module Stack = Stack
module Cli = Cli
