open Sim_engine

(* Reserved pids for the monitor plumbing, far above any application
   rank's pid (ranks get pid = rank / nodes, tiny numbers). *)
let beat_pid = 0xBEA7
let monitor_pid = 0xD0C

type state = Beating | Silent

type verdict = Alive | Suspected_crashed | Suspected_partitioned

type t = {
  fabric : Simnet.Fabric.t;  (* The monitor node's owner-shard replica. *)
  sched : Scheduler.t;  (* The monitor node's owner-shard scheduler. *)
  period : Time_ns.t;
  timeout : Time_ns.t;
  monitor : Simnet.Proc_id.nid;
  until : Time_ns.t;
  last_seen : Time_ns.t array;
  states : state array;
  stopped : bool Atomic.t;
      (* Read by emitters on every shard's domain, hence atomic. *)
  mutable down_cbs : (Simnet.Proc_id.nid -> unit) list;
  mutable up_cbs : (Simnet.Proc_id.nid -> unit) list;
  emit_sched : Scheduler.t array;  (* Per nid: its owner shard. *)
  emit_fabric : Simnet.Fabric.t array;
  m_sent : Metrics.counter array;
      (* Per nid, registered on the owner shard's registry so emitters
         never mutate another domain's counter; per-shard registration
         is idempotent, so shard totals sum to the job-wide count. *)
  m_received : Metrics.counter;
  m_suspects : Metrics.counter;
  m_recoveries : Metrics.counter;
}

let default_period = Time_ns.us 200.
let default_timeout = Time_ns.us 700.

let monitor_proc t = Simnet.Proc_id.make ~nid:t.monitor ~pid:monitor_pid

let suspected t =
  let acc = ref [] in
  Array.iteri
    (fun nid st -> if st = Silent then acc := nid :: !acc)
    t.states;
  List.rev !acc

(* Suspicion is one bit — "silent too long" — but what it {e means}
   depends on ground truth only the fabric has: a down node is crashed;
   an up-but-silent node behind an active (or just-healed) cut is
   partitioned, not dead. Classify at query time so a heal or restart
   reflects immediately. *)
let verdict t nid =
  if nid < 0 || nid >= Array.length t.states then
    invalid_arg "Liveness.verdict: node out of range";
  if t.states.(nid) = Beating then Alive
  else if not (Simnet.Fabric.is_node_up t.fabric nid) then Suspected_crashed
  else if
    Simnet.Fabric.partitioned_now t.fabric ~src:nid ~dst:t.monitor
    || Simnet.Fabric.partitioned_now t.fabric ~src:t.monitor ~dst:nid
  then Suspected_partitioned
  else if Simnet.Fabric.has_partitions t.fabric then
    (* No cut active right now, but this world schedules them: an
       up-but-silent node is a heal whose first beat has not landed
       yet, not a death. *)
    Suspected_partitioned
  else Suspected_crashed

let pp_verdict ppf = function
  | Alive -> Format.pp_print_string ppf "alive"
  | Suspected_crashed -> Format.pp_print_string ppf "suspected-crashed"
  | Suspected_partitioned -> Format.pp_print_string ppf "suspected-partitioned"

let on_down t cb = t.down_cbs <- t.down_cbs @ [ cb ]
let on_up t cb = t.up_cbs <- t.up_cbs @ [ cb ]
let stop t = Atomic.set t.stopped true

let handle_beat t ~src (_ : bytes) =
  let nid = src.Simnet.Proc_id.nid in
  Metrics.incr t.m_received;
  t.last_seen.(nid) <- Scheduler.now t.sched;
  if t.states.(nid) = Silent then begin
    (* The node is beating again: it restarted, a partition healed, or
       the verdict was a false positive under heavy loss. *)
    t.states.(nid) <- Beating;
    Metrics.incr t.m_recoveries;
    List.iter (fun cb -> cb nid) t.up_cbs
  end

(* One emitter per node: while the node is up, a heartbeat goes over the
   real fabric — subject to the same fault models, crash drops and wire
   occupancy as application traffic — every period. A down node simply
   misses beats; when it restarts, the emitter picks back up unchanged.

   Beats are raw datagrams ([send_raw]), never shim traffic: only the
   freshest beat matters, so ordered-reliable delivery is exactly wrong
   for them — one corrupt-dropped beat would head-of-line-block every
   later beat behind an escalating RTO and manufacture false suspicion
   of a healthy peer. Losing a beat outright is fine; five in a row is
   what the timeout is for.

   Each emitter runs on its node's owner shard (scheduler and fabric
   replica): in a parallel world the beat enters the wire where the
   node lives and crosses to the monitor's shard like any message. *)
let rec emit t nid =
  let sched = t.emit_sched.(nid) and fabric = t.emit_fabric.(nid) in
  if
    (not (Atomic.get t.stopped))
    && Time_ns.compare (Scheduler.now sched) t.until < 0
  then begin
    if Simnet.Fabric.is_node_up fabric nid && nid <> t.monitor then begin
      Metrics.incr t.m_sent.(nid);
      Simnet.Fabric.send_raw fabric
        ~src:(Simnet.Proc_id.make ~nid ~pid:beat_pid)
        ~dst:(monitor_proc t) (Bytes.create 1)
    end;
    Scheduler.after sched t.period (fun () -> emit t nid)
  end

let rec check t =
  if
    (not (Atomic.get t.stopped))
    && Time_ns.compare (Scheduler.now t.sched) t.until < 0
  then begin
    let now = Scheduler.now t.sched in
    Array.iteri
      (fun nid st ->
        if
          nid <> t.monitor && st = Beating
          && Time_ns.compare (Time_ns.sub now t.last_seen.(nid)) t.timeout > 0
        then begin
          t.states.(nid) <- Silent;
          Metrics.incr t.m_suspects;
          List.iter (fun cb -> cb nid) t.down_cbs
        end)
      t.states;
    (* If the monitor node itself crashed, its receive handler went away
       with the crash; re-register once the node is back. *)
    if
      Simnet.Fabric.is_node_up t.fabric t.monitor
      && not (Simnet.Fabric.is_registered t.fabric (monitor_proc t))
    then
      Simnet.Fabric.register t.fabric (monitor_proc t) (fun ~src payload ->
          handle_beat t ~src payload);
    Scheduler.after t.sched t.period (fun () -> check t)
  end

let start ?(period = default_period) ?(timeout = default_timeout)
    ?(monitor = 0) ~until (world : World.world) =
  if Time_ns.compare timeout period < 0 then
    invalid_arg "Liveness.start: timeout must be at least the period";
  let nodes = Simnet.Fabric.node_count world.World.fabric in
  if monitor < 0 || monitor >= nodes then
    invalid_arg "Liveness.start: monitor node out of range";
  let fabric = World.fabric_of_nid world monitor in
  let sched = World.sched_of_nid world monitor in
  let m = Scheduler.metrics sched in
  let labels = [ ("monitor", string_of_int monitor) ] in
  let t =
    {
      fabric;
      sched;
      period;
      timeout;
      monitor;
      until;
      last_seen = Array.make nodes (Scheduler.now sched);
      states = Array.make nodes Beating;
      stopped = Atomic.make false;
      down_cbs = [];
      up_cbs = [];
      emit_sched = Array.init nodes (World.sched_of_nid world);
      emit_fabric = Array.init nodes (World.fabric_of_nid world);
      m_sent =
        Array.init nodes (fun nid ->
            Metrics.counter
              (Scheduler.metrics (World.sched_of_nid world nid))
              ~labels "liveness.heartbeats_sent");
      m_received = Metrics.counter m ~labels "liveness.heartbeats_received";
      m_suspects = Metrics.counter m ~labels "liveness.suspects";
      m_recoveries = Metrics.counter m ~labels "liveness.recoveries";
    }
  in
  Metrics.probe m ~labels "liveness.suspected_now" (fun () ->
      float_of_int (List.length (suspected t)));
  Simnet.Fabric.register fabric (monitor_proc t) (fun ~src payload ->
      handle_beat t ~src payload);
  for nid = 0 to nodes - 1 do
    if nid <> monitor then emit t nid
  done;
  check t;
  t
