open Sim_engine

type transport_kind = Offload | Kernel_interrupt | Rtscts

let transport_kind_name = function
  | Offload -> "offload"
  | Kernel_interrupt -> "kernel-interrupt"
  | Rtscts -> "rtscts"

type world = {
  sched : Scheduler.t;
  fabric : Simnet.Fabric.t;
  transport : Simnet.Transport.t;
  ranks : Simnet.Proc_id.t array;
}

(* Process-wide run environment, set once by the front-ends (--loss /
   --seed) so every experiment inherits the lossy fabric and the seed
   without threading parameters through each call site. *)
let env_loss = ref 0.
let env_seed = ref 0

let set_run_env ?loss ?seed () =
  (match loss with
  | Some l ->
    if l < 0. || l >= 1. then
      invalid_arg "Runtime.set_run_env: loss must be in [0, 1)";
    env_loss := l
  | None -> ());
  match seed with Some s -> env_seed := s | None -> ()

let run_env () = (!env_loss, !env_seed)

let create_world ?profile ?(transport = Offload) ?(procs_per_node = 1) ?seed
    ~nodes () =
  if nodes <= 0 then invalid_arg "Runtime.create_world: need at least one node";
  if procs_per_node <= 0 then
    invalid_arg "Runtime.create_world: need at least one process per node";
  let seed = match seed with Some s -> s | None -> !env_seed in
  let profile =
    match profile with
    | Some p -> p
    | None -> (
      match transport with
      | Offload -> Simnet.Profile.myrinet_mcp
      | Kernel_interrupt | Rtscts -> Simnet.Profile.myrinet_kernel)
  in
  let sched = Scheduler.create ~seed () in
  let fabric = Simnet.Fabric.create sched ~profile ~nodes in
  (* Lossy mode: inject the configured wire loss and install the
     reliability shim so the transports above still see the in-order
     exactly-once fabric they were written against. *)
  if !env_loss > 0. then begin
    Simnet.Fabric.set_fault_model fabric
      (Some (Simnet.Fault.bernoulli ~seed ~p:!env_loss ()));
    ignore (Reliability.attach fabric)
  end;
  let tp =
    match transport with
    | Offload -> Simnet.Transport.offload fabric
    | Kernel_interrupt -> Simnet.Transport.kernel_interrupt fabric
    | Rtscts -> Rtscts.transport (Rtscts.create fabric)
  in
  let ranks =
    Array.init (nodes * procs_per_node) (fun rank ->
        Simnet.Proc_id.make ~nid:(rank mod nodes) ~pid:(rank / nodes))
  in
  { sched; fabric; transport = tp; ranks }

let job_size world = Array.length world.ranks

let host_cpu_of_rank world rank =
  if rank < 0 || rank >= Array.length world.ranks then
    invalid_arg "Runtime.host_cpu_of_rank: rank out of range";
  Simnet.Node.host_cpu
    (Simnet.Fabric.node world.fabric world.ranks.(rank).Simnet.Proc_id.nid)

let spawn_ranks world main =
  Array.iteri
    (fun rank _pid ->
      Scheduler.spawn world.sched ~name:(Printf.sprintf "rank%d" rank) (fun () ->
          main ~rank))
    world.ranks

let run ?until world =
  match until with
  | None -> Scheduler.run world.sched
  | Some limit -> Scheduler.run ~until:limit world.sched

let launch ?profile ?transport ?procs_per_node ?seed ~nodes main =
  let world = create_world ?profile ?transport ?procs_per_node ?seed ~nodes () in
  spawn_ranks world (fun ~rank -> main world ~rank);
  run world;
  world

let launch_mpi ?profile ?transport ?procs_per_node ?seed ?(backend = `Portals)
    ?portals_config ?gm_config ~nodes main =
  let world = create_world ?profile ?transport ?procs_per_node ?seed ~nodes () in
  (* Endpoints exist before any rank runs: no early message can find its
     destination unregistered. *)
  let endpoints =
    Array.init (job_size world) (fun rank ->
        match backend with
        | `Portals ->
          Mpi.create_portals world.transport ~ranks:world.ranks ~rank
            ?config:portals_config ()
        | `Gm ->
          Mpi.create_gm world.transport ~ranks:world.ranks ~rank
            ?config:gm_config ())
  in
  spawn_ranks world (fun ~rank ->
      let ep = endpoints.(rank) in
      main ep;
      (* Finalize is collective (as in MPI): without the barrier, a rank
         that finished early would unregister while a peer's transfer is
         still mid-protocol (e.g. an RTS/CTS handshake), dropping it. *)
      Mpi.barrier ep;
      Mpi.finalize ep);
  run world;
  world
