open Sim_engine

type transport_kind = Offload | Kernel_interrupt | Rtscts

let transport_kind_name = function
  | Offload -> "offload"
  | Kernel_interrupt -> "kernel-interrupt"
  | Rtscts -> "rtscts"

(* Everything a parallel world carries beyond shard 0's view: the
   node-to-shard map, the window runtime, and shards 1..N-1's
   scheduler/fabric/transport instances. *)
type par = {
  par_map : Simnet.Shard_map.t;
  par_shard : Simnet.Fabric.remote Shard.t;
  par_scheds : Scheduler.t array;
  par_fabrics : Simnet.Fabric.t array;
  par_transports : Simnet.Transport.t array;
}

type world = {
  sched : Scheduler.t;
  fabric : Simnet.Fabric.t;
  transport : Simnet.Transport.t;
  ranks : Simnet.Proc_id.t array;
  par : par option;
}

(* Process-wide run environment, set once by the front-ends (--loss /
   --seed / --fault / --crash) so every experiment inherits the lossy
   fabric, the fault model, the crash schedule and the seed without
   threading parameters through each call site. *)
let env_loss = ref 0.
let env_seed = ref 0
let env_fault : string option ref = ref None
let env_crashes : Simnet.Fault.crash_schedule option ref = ref None
let env_topology : string option ref = ref None
let env_queue_limit : int option ref = ref None
let env_domains = ref 1
let env_collectives = ref "host"

(* A topology spec with explicit dimensions implies its own node count;
   validate against that so "--topology torus2d:4x3" is rejected up
   front if malformed, while dimension-less specs ("torus2d") stay
   polymorphic in the world size. *)
let validate_topology_spec spec =
  let implied_nodes =
    match String.split_on_char ':' (String.trim (String.lowercase_ascii spec)) with
    | [ _; dims ] -> (
      match
        List.map int_of_string_opt (String.split_on_char 'x' dims)
      with
      | parts when List.for_all (function Some d -> d > 0 | None -> false) parts
        ->
        let ds = List.map Option.get parts in
        if List.length ds = 1 then
          (* fattree:K implies K^3/4 hosts. *)
          let k = List.hd ds in
          Some (k * k * k / 4)
        else Some (List.fold_left ( * ) 1 ds)
      | _ -> None)
    | _ -> None
  in
  ignore
    (Simnet.Topology.of_spec
       ~nodes:(Option.value ~default:16 implied_nodes)
       spec)

(* "bernoulli:P" | "gilbert:P_ENTER:P_EXIT" | "duplicate:P"
   | "corrupt:P" | "delay:MEAN_US[:JITTER_US]" | "flap:PERIOD_US:DOWN_US"
   | "partition:A.B|C.D@CUT_US[:HEAL_US]" | "none", composable with "+"
   (e.g. "bernoulli:0.02+corrupt:0.01"). Partition elements describe
   scheduled group cuts (nids '.'-joined; '|' severs both directions,
   '>' only A → B traffic) rather than per-message models, so parsing
   returns both halves. *)
let faults_of_spec ~seed spec =
  let bad reason =
    invalid_arg
      (Printf.sprintf
         "Runtime: bad fault spec %S (%s); expected \
          bernoulli:P|gilbert:P_ENTER:P_EXIT|duplicate:P|corrupt:P|\
          delay:MEAN_US[:JITTER_US]|flap:PERIOD_US:DOWN_US|\
          partition:A.B|C.D@CUT_US[:HEAL_US]|none, joined with '+'"
         spec reason)
  in
  let float_field s =
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> bad (Printf.sprintf "%S is not a number" s)
  in
  (* The models clamp out-of-range probabilities; a CLI spec should be
     told it is wrong instead. *)
  let prob_field s =
    let p = float_field s in
    if p < 0. || p > 1. then
      bad (Printf.sprintf "probability %S outside [0, 1]" s);
    p
  in
  let time_field s =
    let us = float_field s in
    if us < 0. then bad (Printf.sprintf "time %S is negative" s);
    Sim_engine.Time_ns.us us
  in
  (* "A.B|C.D@CUT_US[:HEAL_US]" ('>' instead of '|' for a one-way cut). *)
  let parse_partition body =
    let nids_of s =
      let parts = String.split_on_char '.' (String.trim s) in
      if parts = [ "" ] then bad "empty partition group";
      List.map
        (fun n ->
          match int_of_string_opt (String.trim n) with
          | Some nid when nid >= 0 -> nid
          | Some _ | None ->
            bad (Printf.sprintf "%S: node ids are nonnegative integers" body))
        parts
    in
    match String.index_opt body '@' with
    | None -> bad (Printf.sprintf "partition %S has no '@'" body)
    | Some at ->
      let groups = String.sub body 0 at in
      let times = String.sub body (at + 1) (String.length body - at - 1) in
      let one_way, sep =
        match (String.index_opt groups '>', String.index_opt groups '|') with
        | Some i, None -> (true, i)
        | None, Some i -> (false, i)
        | _ ->
          bad
            (Printf.sprintf "partition %S needs exactly one '|' or '>'" body)
      in
      let group_a = nids_of (String.sub groups 0 sep) in
      let group_b =
        nids_of (String.sub groups (sep + 1) (String.length groups - sep - 1))
      in
      let cut_at, heal_at =
        match String.split_on_char ':' times with
        | [ cut ] -> (time_field cut, None)
        | [ cut; heal ] -> (time_field cut, Some (time_field heal))
        | _ -> bad (Printf.sprintf "partition %S: too many times" body)
      in
      { Simnet.Fault.group_a; group_b; one_way; cut_at; heal_at }
  in
  let parse_one s =
    match String.split_on_char ':' (String.trim s) with
    | "partition" :: rest -> `Partition (parse_partition (String.concat ":" rest))
    | [ "none" ] -> `Model Simnet.Fault.none
    | [ "bernoulli"; p ] ->
      `Model (Simnet.Fault.bernoulli ~seed ~p:(prob_field p) ())
    | [ "gilbert"; p_enter; p_exit ] ->
      `Model
        (Simnet.Fault.gilbert ~seed ~p_enter:(prob_field p_enter)
           ~p_exit:(prob_field p_exit) ())
    | [ "duplicate"; p ] ->
      `Model (Simnet.Fault.duplicator ~seed ~p:(prob_field p) ())
    | [ "corrupt"; p ] -> `Model (Simnet.Fault.corrupt ~seed ~p:(prob_field p) ())
    | [ "delay"; mean ] ->
      `Model (Simnet.Fault.delay ~seed ~mean:(time_field mean) ())
    | [ "delay"; mean; jitter ] ->
      let mean = time_field mean and jitter = time_field jitter in
      if Sim_engine.Time_ns.compare jitter mean > 0 then
        bad "delay jitter exceeds mean";
      `Model (Simnet.Fault.delay ~seed ~jitter ~mean ())
    | [ "flap"; period; down ] ->
      let period = Sim_engine.Time_ns.us (float_field period) in
      let downtime = Sim_engine.Time_ns.us (float_field down) in
      if Sim_engine.Time_ns.compare downtime period > 0 then
        bad "downtime exceeds period";
      `Model (Simnet.Fault.link_flap ~period ~downtime ())
    | _ -> bad (Printf.sprintf "unknown model %S" s)
  in
  let parts = List.map parse_one (String.split_on_char '+' spec) in
  if parts = [] then bad "empty";
  let models =
    List.filter_map (function `Model m -> Some m | `Partition _ -> None) parts
  in
  let events =
    List.filter_map (function `Partition e -> Some e | `Model _ -> None) parts
  in
  let partitions =
    try Simnet.Fault.partition_schedule events
    with Invalid_argument reason -> bad reason
  in
  (models, partitions)

(* "NID@DOWN_US[:UP_US]" elements joined with ',': node NID crash-stops
   at DOWN_US microseconds and, with the optional UP_US, restarts then. *)
let crashes_of_spec spec =
  let bad reason =
    invalid_arg
      (Printf.sprintf
         "Runtime: bad crash spec %S (%s); expected NID@DOWN_US[:UP_US], \
          joined with ','"
         spec reason)
  in
  let parse_one s =
    let s = String.trim s in
    match String.index_opt s '@' with
    | None -> bad (Printf.sprintf "%S has no '@'" s)
    | Some i ->
      let nid =
        match int_of_string_opt (String.sub s 0 i) with
        | Some n when n >= 0 -> n
        | Some _ | None ->
          bad (Printf.sprintf "%S: node id must be a nonnegative integer" s)
      in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let time_of f =
        match float_of_string_opt f with
        | Some us when us >= 0. -> Sim_engine.Time_ns.us us
        | Some _ | None ->
          bad (Printf.sprintf "%S: times are nonnegative microseconds" s)
      in
      (match String.index_opt rest ':' with
      | None -> (nid, time_of rest, None)
      | Some j ->
        let down = String.sub rest 0 j in
        let up = String.sub rest (j + 1) (String.length rest - j - 1) in
        (nid, time_of down, Some (time_of up)))
  in
  if String.trim spec = "" then bad "empty";
  try Simnet.Fault.crash_schedule (List.map parse_one (String.split_on_char ',' spec))
  with Invalid_argument reason when not (String.length reason > 7 && String.sub reason 0 8 = "Runtime:") ->
    bad reason

let set_run_env ?loss ?seed ?fault ?crashes ?topology ?queue_limit ?domains
    ?collectives () =
  (match collectives with
  | Some (("host" | "nic" | "nic_offload" | "nic-offload") as s) ->
    env_collectives := s
  | Some other ->
    invalid_arg
      (Printf.sprintf
         "Runtime.set_run_env: unknown collectives engine %S (host|nic)" other)
  | None -> ());
  (match domains with
  | Some d ->
    if d < 1 then
      invalid_arg "Runtime.set_run_env: need at least one domain";
    env_domains := d
  | None -> ());
  (match topology with
  | Some "" -> env_topology := None
  | Some spec ->
    validate_topology_spec spec;
    env_topology := Some spec
  | None -> ());
  (match queue_limit with
  | Some l ->
    if l <= 0 then
      invalid_arg "Runtime.set_run_env: queue limit must be positive";
    env_queue_limit := Some l
  | None -> ());
  (match loss with
  | Some l ->
    if l < 0. || l >= 1. then
      invalid_arg "Runtime.set_run_env: loss must be in [0, 1)";
    env_loss := l
  | None -> ());
  (match fault with
  | Some "" -> env_fault := None
  | Some spec ->
    ignore (faults_of_spec ~seed:0 spec);
    env_fault := Some spec
  | None -> ());
  (match crashes with
  | Some "" -> env_crashes := None
  | Some spec -> env_crashes := Some (crashes_of_spec spec)
  | None -> ());
  match seed with Some s -> env_seed := s | None -> ()

let run_env () = (!env_loss, !env_seed)
let run_crash_env () = !env_crashes
let run_topology_env () = (!env_topology, !env_queue_limit)
let run_domains_env () = !env_domains
let run_collectives_env () = !env_collectives

let create_world ?profile ?(transport = Offload) ?(procs_per_node = 1) ?seed
    ?topology ?queue_limit ?domains ?(env_faults = true) ~nodes () =
  if nodes <= 0 then invalid_arg "Runtime.create_world: need at least one node";
  if procs_per_node <= 0 then
    invalid_arg "Runtime.create_world: need at least one process per node";
  let domains = match domains with Some d -> d | None -> !env_domains in
  if domains < 1 then
    invalid_arg "Runtime.create_world: need at least one domain";
  (* The CLI's --domains applies to every world an experiment builds,
     including small helper worlds: cap at one shard per node instead of
     rejecting them. *)
  let shards = min domains nodes in
  let seed = match seed with Some s -> s | None -> !env_seed in
  let profile =
    match profile with
    | Some p -> p
    | None -> (
      match transport with
      | Offload -> Simnet.Profile.myrinet_mcp
      | Kernel_interrupt | Rtscts -> Simnet.Profile.myrinet_kernel)
  in
  (* An explicit topology wins; otherwise the CLI-set spec (if any) is
     fitted to this world's node count; otherwise the seed's
     fully-connected fabric. *)
  let topology =
    match topology with
    | Some k -> k
    | None -> (
      match !env_topology with
      | Some spec -> Simnet.Topology.of_spec ~nodes spec
      | None -> Simnet.Topology.Full)
  in
  let queue_limit =
    match queue_limit with Some _ as l -> l | None -> !env_queue_limit
  in
  (* Faulty mode: inject the configured wire loss, fault model and/or
     partition schedule and install the reliability shim so the
     transports above still see the in-order exactly-once fabric they
     were written against. Frames travel checksummed exactly when the
     world is faulty, so a corrupted frame degrades to a loss the shim
     recovers — and a clean world's encodings stay byte-identical to the
     pre-integrity format.

     Each shard gets its own freshly built model instances: models carry
     mutable per-pair PRNG tables that must not be shared across
     domains. Same spec + same seed ⇒ identical per-pair streams, so the
     replicas agree with the sequential reference. *)
  let fresh_faults () =
    if not env_faults then ([], [])
    else
      let spec_models, partitions =
        match !env_fault with
        | None -> ([], [])
        | Some spec -> faults_of_spec ~seed spec
      in
      let models =
        (if !env_loss > 0. then [ Simnet.Fault.bernoulli ~seed ~p:!env_loss () ]
         else [])
        @ spec_models
      in
      (models, partitions)
  in
  let faulty =
    let models, partitions = fresh_faults () in
    models <> [] || partitions <> []
  in
  if env_faults then Simnet.Integrity.set_enabled faulty;
  let configure fabric =
    let fault_models, partitions = fresh_faults () in
    (match fault_models with
    | [] -> ()
    | models ->
      let model =
        match models with [ m ] -> m | ms -> Simnet.Fault.compose ms
      in
      Simnet.Fabric.set_fault_model fabric (Some model));
    (match partitions with
    | [] -> ()
    | schedule -> Simnet.Fabric.apply_partition_schedule fabric schedule);
    if faulty then ignore (Reliability.attach fabric);
    (* Scripted node failures apply to every world, so an experiment that
       builds one world per transport subjects each to the identical
       schedule — and, in a parallel world, to every shard, keeping the
       shadow replicas' crash state in lockstep with the owners. *)
    match !env_crashes with
    | Some schedule when env_faults ->
      Simnet.Fabric.apply_crash_schedule fabric schedule
    | Some _ | None -> ()
  in
  let transport_over fabric =
    match transport with
    | Offload -> Simnet.Transport.offload fabric
    | Kernel_interrupt -> Simnet.Transport.kernel_interrupt fabric
    | Rtscts -> Rtscts.transport (Rtscts.create fabric)
  in
  let ranks =
    Array.init (nodes * procs_per_node) (fun rank ->
        Simnet.Proc_id.make ~nid:(rank mod nodes) ~pid:(rank / nodes))
  in
  if shards = 1 then begin
    let sched = Scheduler.create ~seed () in
    let fabric =
      Simnet.Fabric.create ~topology ?queue_limit sched ~profile ~nodes
    in
    configure fabric;
    { sched; fabric; transport = transport_over fabric; ranks; par = None }
  end
  else begin
    (* Shard 0 keeps the caller's seed so single-shard-visible streams
       match the sequential world; the rest get decorrelated derived
       streams (nothing deterministic may depend on them). *)
    let scheds =
      Array.init shards (fun k ->
          Scheduler.create
            ~seed:(if k = 0 then seed else Prng.derived_seed ~seed ~index:k)
            ())
    in
    let fabrics =
      Array.map
        (fun s -> Simnet.Fabric.create ~topology ?queue_limit s ~profile ~nodes)
        scheds
    in
    let par_map =
      Simnet.Shard_map.build
        (Simnet.Fabric.topology fabrics.(0))
        ~profile ~shards
    in
    let par_shard =
      Shard.create ~scheds ~lookahead:(Simnet.Shard_map.lookahead par_map) ()
    in
    Array.iteri
      (fun k fabric ->
        Simnet.Fabric.set_par fabric ~self:k
          ~owner:(Simnet.Shard_map.owner par_map)
          ~post:(fun ~dst_shard ~time msg ->
            Shard.post par_shard ~src:k ~dst:dst_shard ~time msg))
      fabrics;
    Array.iter configure fabrics;
    let par_transports = Array.map transport_over fabrics in
    {
      sched = scheds.(0);
      fabric = fabrics.(0);
      transport = par_transports.(0);
      ranks;
      par =
        Some
          { par_map; par_shard; par_scheds = scheds; par_fabrics = fabrics;
            par_transports };
    }
  end

let job_size world = Array.length world.ranks
let domains world = match world.par with None -> 1 | Some p -> Array.length p.par_scheds

let shard_of_nid world nid =
  if nid < 0 || nid >= Simnet.Fabric.node_count world.fabric then
    invalid_arg "Runtime.shard_of_nid: node out of range";
  match world.par with
  | None -> 0
  | Some p -> Simnet.Shard_map.owner p.par_map nid

let sched_of_nid world nid =
  let shard = shard_of_nid world nid in
  match world.par with None -> world.sched | Some p -> p.par_scheds.(shard)

let fabric_of_nid world nid =
  let shard = shard_of_nid world nid in
  match world.par with None -> world.fabric | Some p -> p.par_fabrics.(shard)

let nid_of_rank world ~what rank =
  if rank < 0 || rank >= Array.length world.ranks then
    invalid_arg (Printf.sprintf "Runtime.%s: rank out of range" what);
  world.ranks.(rank).Simnet.Proc_id.nid

let sched_of_rank world rank =
  sched_of_nid world (nid_of_rank world ~what:"sched_of_rank" rank)

let fabric_of_rank world rank =
  fabric_of_nid world (nid_of_rank world ~what:"fabric_of_rank" rank)

let transport_of_rank world rank =
  let shard =
    shard_of_nid world (nid_of_rank world ~what:"transport_of_rank" rank)
  in
  match world.par with
  | None -> world.transport
  | Some p -> p.par_transports.(shard)

let shard_scheds world =
  match world.par with
  | None -> [| world.sched |]
  | Some p -> Array.copy p.par_scheds

let shard_fabrics world =
  match world.par with
  | None -> [| world.fabric |]
  | Some p -> Array.copy p.par_fabrics

let window_rounds world =
  match world.par with None -> 0 | Some p -> Shard.rounds p.par_shard

let lookahead world =
  match world.par with None -> None | Some p -> Some (Shard.lookahead p.par_shard)

let host_cpu_of_rank world rank =
  let nid = nid_of_rank world ~what:"host_cpu_of_rank" rank in
  Simnet.Node.host_cpu (Simnet.Fabric.node (fabric_of_nid world nid) nid)

let spawn_ranks world main =
  Array.iteri
    (fun rank pid ->
      (* Each rank fiber lives in its node's fault domain: a node crash
         kills it mid-flight ([Scheduler.kill_domain]) — and, in a
         parallel world, on its node's owner shard. *)
      Scheduler.spawn
        (sched_of_nid world pid.Simnet.Proc_id.nid)
        ~name:(Printf.sprintf "rank%d" rank)
        ~domain:pid.Simnet.Proc_id.nid
        (fun () -> main ~rank))
    world.ranks

let run ?until world =
  match world.par with
  | Some p ->
    Shard.run ?until p.par_shard ~deliver:(fun ~shard ~time msg ->
        Simnet.Fabric.receive_remote p.par_fabrics.(shard) ~time msg)
  | None -> (
    match until with
    | None -> Scheduler.run world.sched
    | Some limit -> Scheduler.run ~until:limit world.sched)

let launch ?profile ?transport ?procs_per_node ?seed ?domains ~nodes main =
  let world =
    create_world ?profile ?transport ?procs_per_node ?seed ?domains ~nodes ()
  in
  spawn_ranks world (fun ~rank -> main world ~rank);
  run world;
  world

let launch_mpi ?profile ?transport ?procs_per_node ?seed ?domains
    ?(backend = `Portals) ?portals_config ?gm_config ~nodes main =
  let world =
    create_world ?profile ?transport ?procs_per_node ?seed ?domains ~nodes ()
  in
  (* Endpoints exist before any rank runs: no early message can find its
     destination unregistered. *)
  let endpoints =
    Array.init (job_size world) (fun rank ->
        (* Each rank's endpoint lives over its node's owner-shard
           transport (= [world.transport] sequentially). *)
        let tp = transport_of_rank world rank in
        match backend with
        | `Portals ->
          Mpi.create_portals tp ~ranks:world.ranks ~rank
            ?config:portals_config ()
        | `Gm ->
          Mpi.create_gm tp ~ranks:world.ranks ~rank ?config:gm_config ())
  in
  spawn_ranks world (fun ~rank ->
      let ep = endpoints.(rank) in
      main ep;
      (* Finalize is collective (as in MPI): without the barrier, a rank
         that finished early would unregister while a peer's transfer is
         still mid-protocol (e.g. an RTS/CTS handshake), dropping it.
         Tolerant: ranks whose node crashed are skipped, so survivors
         still shut down cleanly instead of deadlocking. *)
      Mpi.barrier ~tolerant:true ep;
      Mpi.finalize ep);
  run world;
  world
