(** Parallel job runtime — the Cplant launcher ("yod") analogue.

    Builds the simulated machine (fabric + transport placement), assigns
    process ids to ranks (round-robin over nodes, multiple processes per
    node supported, §2), runs one fiber per rank, and tears the world
    down. Everything the examples and benches would otherwise repeat. *)

type transport_kind =
  | Offload  (** Portals processing on the NIC (the MCP). *)
  | Kernel_interrupt  (** Kernel-module placement, whole-message costs. *)
  | Rtscts  (** Kernel placement with full RTS/CTS packetization. *)

val transport_kind_name : transport_kind -> string

type par
(** Parallel-run machinery (shard map, per-shard schedulers/fabrics/
    transports and the window runtime); present only when the world was
    created with more than one domain. *)

type world = {
  sched : Sim_engine.Scheduler.t;
  fabric : Simnet.Fabric.t;
  transport : Simnet.Transport.t;
  ranks : Simnet.Proc_id.t array;
  par : par option;
      (** [None] for sequential worlds. In a parallel world [sched] /
          [fabric] / [transport] are shard 0's — correct for global
          queries (crash/partition state is replicated) but {e not} for
          per-rank work: use {!sched_of_rank} / {!transport_of_rank} /
          {!fabric_of_nid} instead. *)
}

val set_run_env :
  ?loss:float ->
  ?seed:int ->
  ?fault:string ->
  ?crashes:string ->
  ?topology:string ->
  ?queue_limit:int ->
  ?domains:int ->
  ?collectives:string ->
  unit ->
  unit
(** Process-wide defaults applied by {!create_world}, set once by the CLI
    front-ends ([--loss] / [--seed] / [--fault] / [--crash]):

    {ul
    {- [loss] — Bernoulli wire loss probability in [0, 1) (0 disables;
       anything above it makes every subsequent world a lossy fabric with
       the reliability shim attached);}
    {- [seed] — the scheduler seed used when a call site passes none;}
    {- [fault] — a wire fault-model spec:
       ["bernoulli:P"], ["gilbert:P_ENTER:P_EXIT"], ["duplicate:P"],
       ["corrupt:P"] (seeded bit-flip/truncation of the wire image),
       ["delay:MEAN_US\[:JITTER_US\]"] (extra seeded latency, FIFO per
       src/dst pair), ["flap:PERIOD_US:DOWN_US"],
       ["partition:A.B|C.D@CUT_US\[:HEAL_US\]"] (scheduled group cut —
       nids joined with ['.'], ['|'] severs both directions, ['>'] only
       A → B; heals at [HEAL_US] if given) or ["none"], joined with
       ['+'] to compose (drop wins over corrupt, corrupt over delay,
       delay over duplicate). [""] clears. Any model or partition
       attaches the reliability shim, like [loss], and switches
       [Simnet.Integrity] on so frames travel with CRC-32C trailers —
       corruption then degrades to loss and is retransmitted;}
    {- [crashes] — a scripted node-failure schedule
       ["NID@DOWN_US[:UP_US]"] joined with [',']: node [NID] crash-stops
       at [DOWN_US] microseconds of simulated time and, when [:UP_US] is
       given, restarts then in a fresh incarnation. [""] clears.}
    {- [topology] — an interconnect spec ({!Simnet.Topology.of_spec}):
       ["full"], ["ring"], ["torus2d\[:AxB\]"], ["torus3d\[:AxBxC\]"] or
       ["fattree\[:K\]"]. Dimension-less specs are fitted to each
       world's node count; explicit dimensions must match it exactly.
       [""] clears (back to the seed's fully-connected fabric).}
    {- [queue_limit] — per-hop-link outstanding-transmission bound;
       overload beyond it becomes congestion drops (recovered by the
       reliability shim when one is attached).}
    {- [domains] — number of OCaml domains to shard each world across
       (default 1 = the sequential reference scheduler). Worlds with
       fewer nodes than domains fall back to one shard per node. Same
       seed, same world ⇒ same simulated history at any domain count
       (see {!Sim_engine.Shard}).}
    {- [collectives] — which collective engine workloads should build:
       ["host"] (the host-driven reference) or ["nic"] (triggered-chain
       NIC offload). Kept as a string so the runtime does not depend on
       the collectives library; consumers resolve it with
       [Collectives.impl_of_string]. Both engines give byte-identical
       results — the choice only moves where tree hops execute.}}

    Raises [Invalid_argument] on an out-of-range loss or a malformed
    fault/crash spec (bad syntax, negative times, restart not after its
    crash, a node crashing again while still down). *)

val run_env : unit -> float * int
(** Current [(loss, seed)] defaults. *)

val run_crash_env : unit -> Simnet.Fault.crash_schedule option
(** The crash schedule {!create_world} will apply to new worlds, if any. *)

val run_topology_env : unit -> string option * int option
(** The (topology spec, queue limit) defaults new worlds inherit. *)

val run_domains_env : unit -> int
(** The domain-count default new worlds inherit (1 = sequential). *)

val run_collectives_env : unit -> string
(** The collective-engine default (["host"] unless [--collectives]
    changed it); feed to [Collectives.impl_of_string]. *)

val create_world :
  ?profile:Simnet.Profile.t ->
  ?transport:transport_kind ->
  ?procs_per_node:int ->
  ?seed:int ->
  ?topology:Simnet.Topology.kind ->
  ?queue_limit:int ->
  ?domains:int ->
  ?env_faults:bool ->
  nodes:int ->
  unit ->
  world
(** A fresh machine. Default profile matches the transport kind
    ([Offload] → {!Simnet.Profile.myrinet_mcp}, otherwise
    {!Simnet.Profile.myrinet_kernel}); default one process per node. The
    job's ranks are [0 .. nodes*procs_per_node - 1]. Seed defaults to the
    {!set_run_env} value (initially 0); if a wire loss has been set
    there, the fabric is created lossy with the {!Reliability} protocol
    shimmed underneath the transport.

    [topology] (default: the {!set_run_env} spec fitted to [nodes], else
    fully connected) selects the interconnect; [queue_limit] bounds each
    shared hop link's queue (see {!Simnet.Fabric.create}).

    [domains] (default: the {!set_run_env} value, initially 1) shards
    the world across that many OCaml domains: compute nodes are split
    into contiguous blocks ({!Simnet.Shard_map}), each shard gets its
    own scheduler, fabric replica, fault-model instance and transport,
    and {!run} drives them under the conservative window barrier
    ({!Sim_engine.Shard}). Capped at [nodes]; 1 means the plain
    sequential world with [par = None].

    [env_faults:false] makes the world ignore the process-wide loss /
    fault / crash environment (and leave {!Simnet.Integrity} alone) —
    for experiments that script their own fault injection per shard
    fabric, like the chaos campaigns. Seed, topology, queue-limit and
    domain defaults still apply. *)

val job_size : world -> int

(** {1 Shard placement}

    All of these collapse to the single scheduler/fabric/transport on a
    sequential world, so callers can use them unconditionally. *)

val domains : world -> int
(** Shards actually used (1 = sequential). *)

val shard_of_nid : world -> Simnet.Proc_id.nid -> int
(** The shard owning a compute node. Raises [Invalid_argument] out of
    range. *)

val sched_of_nid : world -> Simnet.Proc_id.nid -> Sim_engine.Scheduler.t
val fabric_of_nid : world -> Simnet.Proc_id.nid -> Simnet.Fabric.t
(** The scheduler / authoritative fabric replica of a node's owner
    shard. *)

val sched_of_rank : world -> int -> Sim_engine.Scheduler.t
val fabric_of_rank : world -> int -> Simnet.Fabric.t

val transport_of_rank : world -> int -> Simnet.Transport.t
(** The transport instance a rank's endpoints must be built over — the
    one bound to its node's owner fabric. *)

val shard_scheds : world -> Sim_engine.Scheduler.t array
(** One scheduler per shard ([[|sched|]] sequentially) — e.g. to merge
    per-shard metrics registries with {!Sim_engine.Metrics.absorb}. *)

val shard_fabrics : world -> Simnet.Fabric.t array
(** One fabric replica per shard ([[|fabric|]] sequentially). *)

val window_rounds : world -> int
(** Window-barrier rounds completed by the last {!run}; 0 on a
    sequential world. *)

val lookahead : world -> Sim_engine.Time_ns.t option
(** The conservative window width, if parallel. *)

val host_cpu_of_rank : world -> int -> Sim_engine.Cpu.t
(** The host processor a rank's compute runs on. *)

val spawn_ranks : world -> (rank:int -> unit) -> unit
(** Start one named fiber per rank running the given main. *)

val run : ?until:Sim_engine.Time_ns.t -> world -> unit
(** Drive the simulation to quiescence ({!Sim_engine.Scheduler.run});
    deadlocks (e.g. a rank blocked on a message that never comes) raise
    {!Sim_engine.Scheduler.Deadlock}. On a parallel world this runs the
    window barrier ({!Sim_engine.Shard.run}): shard 0 on the calling
    domain, the rest on spawned domains, deadlock detection aggregated
    across shards. *)

val launch :
  ?profile:Simnet.Profile.t ->
  ?transport:transport_kind ->
  ?procs_per_node:int ->
  ?seed:int ->
  ?domains:int ->
  nodes:int ->
  (world -> rank:int -> unit) ->
  world
(** [launch ~nodes main] is {!create_world}, {!spawn_ranks} with
    [main world ~rank], then {!run}; returns the world for inspection. *)

(** {1 MPI jobs} *)

val launch_mpi :
  ?profile:Simnet.Profile.t ->
  ?transport:transport_kind ->
  ?procs_per_node:int ->
  ?seed:int ->
  ?domains:int ->
  ?backend:[ `Portals | `Gm ] ->
  ?portals_config:Mpi.Mpi_portals.config ->
  ?gm_config:Mpi.Mpi_gm.config ->
  nodes:int ->
  (Mpi.t -> unit) ->
  world
(** Launch an MPI job: endpoints are created for every rank before any
    rank's main runs (so no early message is lost), each main gets its
    endpoint, and endpoints are finalized — after a job-wide barrier, as
    MPI_Finalize requires — when mains return. Default backend
    [`Portals]. *)
