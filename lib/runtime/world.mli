(** Parallel job runtime — the Cplant launcher ("yod") analogue.

    Builds the simulated machine (fabric + transport placement), assigns
    process ids to ranks (round-robin over nodes, multiple processes per
    node supported, §2), runs one fiber per rank, and tears the world
    down. Everything the examples and benches would otherwise repeat. *)

type transport_kind =
  | Offload  (** Portals processing on the NIC (the MCP). *)
  | Kernel_interrupt  (** Kernel-module placement, whole-message costs. *)
  | Rtscts  (** Kernel placement with full RTS/CTS packetization. *)

val transport_kind_name : transport_kind -> string

type world = {
  sched : Sim_engine.Scheduler.t;
  fabric : Simnet.Fabric.t;
  transport : Simnet.Transport.t;
  ranks : Simnet.Proc_id.t array;
}

val set_run_env :
  ?loss:float ->
  ?seed:int ->
  ?fault:string ->
  ?crashes:string ->
  ?topology:string ->
  ?queue_limit:int ->
  unit ->
  unit
(** Process-wide defaults applied by {!create_world}, set once by the CLI
    front-ends ([--loss] / [--seed] / [--fault] / [--crash]):

    {ul
    {- [loss] — Bernoulli wire loss probability in [0, 1) (0 disables;
       anything above it makes every subsequent world a lossy fabric with
       the reliability shim attached);}
    {- [seed] — the scheduler seed used when a call site passes none;}
    {- [fault] — a wire fault-model spec:
       ["bernoulli:P"], ["gilbert:P_ENTER:P_EXIT"], ["duplicate:P"],
       ["corrupt:P"] (seeded bit-flip/truncation of the wire image),
       ["delay:MEAN_US\[:JITTER_US\]"] (extra seeded latency, FIFO per
       src/dst pair), ["flap:PERIOD_US:DOWN_US"],
       ["partition:A.B|C.D@CUT_US\[:HEAL_US\]"] (scheduled group cut —
       nids joined with ['.'], ['|'] severs both directions, ['>'] only
       A → B; heals at [HEAL_US] if given) or ["none"], joined with
       ['+'] to compose (drop wins over corrupt, corrupt over delay,
       delay over duplicate). [""] clears. Any model or partition
       attaches the reliability shim, like [loss], and switches
       [Simnet.Integrity] on so frames travel with CRC-32C trailers —
       corruption then degrades to loss and is retransmitted;}
    {- [crashes] — a scripted node-failure schedule
       ["NID@DOWN_US[:UP_US]"] joined with [',']: node [NID] crash-stops
       at [DOWN_US] microseconds of simulated time and, when [:UP_US] is
       given, restarts then in a fresh incarnation. [""] clears.}
    {- [topology] — an interconnect spec ({!Simnet.Topology.of_spec}):
       ["full"], ["ring"], ["torus2d\[:AxB\]"], ["torus3d\[:AxBxC\]"] or
       ["fattree\[:K\]"]. Dimension-less specs are fitted to each
       world's node count; explicit dimensions must match it exactly.
       [""] clears (back to the seed's fully-connected fabric).}
    {- [queue_limit] — per-hop-link outstanding-transmission bound;
       overload beyond it becomes congestion drops (recovered by the
       reliability shim when one is attached).}}

    Raises [Invalid_argument] on an out-of-range loss or a malformed
    fault/crash spec (bad syntax, negative times, restart not after its
    crash, a node crashing again while still down). *)

val run_env : unit -> float * int
(** Current [(loss, seed)] defaults. *)

val run_crash_env : unit -> Simnet.Fault.crash_schedule option
(** The crash schedule {!create_world} will apply to new worlds, if any. *)

val run_topology_env : unit -> string option * int option
(** The (topology spec, queue limit) defaults new worlds inherit. *)

val create_world :
  ?profile:Simnet.Profile.t ->
  ?transport:transport_kind ->
  ?procs_per_node:int ->
  ?seed:int ->
  ?topology:Simnet.Topology.kind ->
  ?queue_limit:int ->
  nodes:int ->
  unit ->
  world
(** A fresh machine. Default profile matches the transport kind
    ([Offload] → {!Simnet.Profile.myrinet_mcp}, otherwise
    {!Simnet.Profile.myrinet_kernel}); default one process per node. The
    job's ranks are [0 .. nodes*procs_per_node - 1]. Seed defaults to the
    {!set_run_env} value (initially 0); if a wire loss has been set
    there, the fabric is created lossy with the {!Reliability} protocol
    shimmed underneath the transport.

    [topology] (default: the {!set_run_env} spec fitted to [nodes], else
    fully connected) selects the interconnect; [queue_limit] bounds each
    shared hop link's queue (see {!Simnet.Fabric.create}). *)

val job_size : world -> int

val host_cpu_of_rank : world -> int -> Sim_engine.Cpu.t
(** The host processor a rank's compute runs on. *)

val spawn_ranks : world -> (rank:int -> unit) -> unit
(** Start one named fiber per rank running the given main. *)

val run : ?until:Sim_engine.Time_ns.t -> world -> unit
(** Drive the simulation to quiescence ({!Sim_engine.Scheduler.run});
    deadlocks (e.g. a rank blocked on a message that never comes) raise
    {!Sim_engine.Scheduler.Deadlock}. *)

val launch :
  ?profile:Simnet.Profile.t ->
  ?transport:transport_kind ->
  ?procs_per_node:int ->
  ?seed:int ->
  nodes:int ->
  (world -> rank:int -> unit) ->
  world
(** [launch ~nodes main] is {!create_world}, {!spawn_ranks} with
    [main world ~rank], then {!run}; returns the world for inspection. *)

(** {1 MPI jobs} *)

val launch_mpi :
  ?profile:Simnet.Profile.t ->
  ?transport:transport_kind ->
  ?procs_per_node:int ->
  ?seed:int ->
  ?backend:[ `Portals | `Gm ] ->
  ?portals_config:Mpi.Mpi_portals.config ->
  ?gm_config:Mpi.Mpi_gm.config ->
  nodes:int ->
  (Mpi.t -> unit) ->
  world
(** Launch an MPI job: endpoints are created for every rank before any
    rank's main runs (so no early message is lost), each main gets its
    endpoint, and endpoints are finalized — after a job-wide barrier, as
    MPI_Finalize requires — when mains return. Default backend
    [`Portals]. *)
