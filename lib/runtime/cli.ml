(* Shared CLI plumbing for the two front-ends (bin/portals_repro and
   bench/main): one implementation of name-list parsing and validation,
   so "--transports gm,bogus" dies with the same clean usage error on
   both, and one table of wire-placement names. *)

let split_csv s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let transport_kinds =
  [
    ("offload", World.Offload);
    ("mcp", World.Offload);
    ("kernel", World.Kernel_interrupt);
    ("rtscts", World.Rtscts);
  ]

let transport_kind_of_string s =
  match List.assoc_opt s transport_kinds with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown transport %S (valid: offload|kernel|rtscts)" s)

(* The one-sided RMA workload names (Experiments.Rma); the canonical
   list lives here so both CLIs validate "--workloads" against the same
   closed set. *)
let rma_workload_names = [ "latency"; "passive"; "halo"; "hashtable" ]

(* Validate one name against a closed set, with the set spelled out in
   the error — what a usage error should look like. *)
let pick ~what ~valid s =
  if List.mem s valid then Ok s
  else
    Error
      (Printf.sprintf "unknown %s %S (valid: %s)" what s
         (String.concat ", " valid))

(* Parse a comma-separated name list: every element validated against
   [valid], duplicates removed (first occurrence wins), order preserved.
   [""] and ["all"] select the whole set. *)
let pick_list ~what ~valid s =
  match s with
  | "" | "all" -> Ok valid
  | s ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match pick ~what ~valid x with
        | Error _ as e -> e
        | Ok x -> go (if List.mem x acc then acc else x :: acc) rest
      )
    in
    (match split_csv s with
    | [] -> Error (Printf.sprintf "empty %s list" what)
    | xs -> go [] xs)

(* The collective-engine names both CLIs accept for "--collectives";
   resolved by Collectives.impl_of_string downstream. *)
let collectives_impl_names = [ "host"; "nic" ]
