(** Shared CLI plumbing for the front-ends ([bin/portals_repro],
    [bench/main]): name-list parsing and validation implemented once, so
    a malformed [--transports] or [--axes] list produces the same clean
    usage error from either binary. *)

val split_csv : string -> string list
(** Split on [','], trim, drop empties. *)

val transport_kinds : (string * World.transport_kind) list
(** The wire-placement names both CLIs accept for [--transport]
    ([offload]/[mcp], [kernel], [rtscts]). *)

val transport_kind_of_string :
  string -> (World.transport_kind, string) result

val rma_workload_names : string list
(** The one-sided RMA workloads ([latency], [passive], [halo],
    [hashtable]) both CLIs accept for [--workloads]; the canonical list
    behind [Experiments.Rma]. *)

val pick : what:string -> valid:string list -> string -> (string, string) result
(** Validate one name against a closed set; the error spells the set
    out ("unknown transport "bogus" (valid: portals, gm, ...)"). *)

val pick_list :
  what:string -> valid:string list -> string -> (string list, string) result
(** Parse a comma-separated name list: each element validated with
    {!pick}, duplicates dropped (first wins), order preserved. [""] and
    ["all"] select the full set in [valid]'s order. *)

val collectives_impl_names : string list
(** The collective-engine names ([host], [nic]) both CLIs accept for
    [--collectives]. *)
