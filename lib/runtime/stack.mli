(** The benchmark-stack registry: every named MPI-over-wire combination
    the cross-stack comparison covers, in one table.

    A stack is a wire placement plus the {!Transport.S} instance layered
    over it: ["portals"] (NIC-offload Portals, §5.2), ["gm"]
    (MPICH/GM-style ports and tokens), ["rtscts"] (the kernel RTS/CTS
    production stack of §3) and ["ibverbs"] (RDMA-write rings and
    rendezvous, Liu et al.). [Experiments.Matrix] iterates this table;
    the CLIs validate [--transports] lists against {!names}. *)

type t = {
  name : string;  (** The [--transports] / matrix-row name. *)
  kind : World.transport_kind;  (** Wire placement the stack runs over. *)
  create :
    Simnet.Transport.t -> ranks:Simnet.Proc_id.t array -> rank:int -> Mpi.t;
      (** Endpoint constructor with the stack's default configuration. *)
}

val all : t list
(** Every stack, in canonical report order. *)

val names : string list
(** [List.map name all]. *)

val find : string -> t option
val find_exn : string -> t
(** Raises [Invalid_argument] naming the valid stacks. *)

val launch :
  ?profile:Simnet.Profile.t ->
  ?procs_per_node:int ->
  ?seed:int ->
  ?topology:Simnet.Topology.kind ->
  ?queue_limit:int ->
  nodes:int ->
  t ->
  (Mpi.t -> unit) ->
  World.world
(** {!World.launch_mpi} driven by a stack row: build the world for the
    stack's placement, create one endpoint per rank (before any rank
    runs), run [main] on each, finalize collectively. *)

val launch_on : World.world -> t -> (Mpi.t -> unit) -> World.world
(** Same, over a caller-assembled world (lossy fabric, custom profile);
    the world's transport should match the stack's placement. *)
