(** One-sided operations on Portals: a shmem-style layer (§4.4 cites
    shmem as the canonical one-sided model Portals addressing supports,
    and §2 notes the Puma MPI carried preliminary MPI-2 one-sided
    functions), grown into foMPI-shaped MPI-3 RMA windows ({!Win}).

    Every process exposes {e symmetric regions}: allocation [k] on one
    rank names the same region on every rank (all ranks must allocate in
    the same order, as in shmem's symmetric heap). Remote [put]/[get]
    address a region by id and offset — the (process, buffer id, offset)
    triple of §4.4 — with no involvement of the target application:
    delivery, acknowledgment, replies and atomics are all Portals
    processing (application bypass, §5.1, extended to read-modify-write).

    Blocking calls are fiber-only. *)

type t

type eq_side = Rx | Tx

type error =
  | Eq_alloc_failed of { side : eq_side; capacity : int; cause : Portals.Errors.t }
      (** {!create} could not allocate the endpoint's event queue. *)
  | Eq_overflow of { side : eq_side; dropped : int }
      (** An event queue dropped events (the [PTL_EQ_DROPPED] condition,
          §4.8). A dropped tx event is a completion the endpoint will
          never observe, so completion-dependent calls ({!quiet},
          {!get}, the atomics, {!Win.flush}) raise instead of hanging; a
          dropped rx event during a {!wait_until} is a possibly-lost
          wakeup and is surfaced the same way. *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

val create :
  Portals.Ni.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?portal_index:int ->
  ?eq_capacity:int ->
  unit ->
  (t, error) result
(** One endpoint per rank over an existing interface; [portal_index]
    defaults to 7, [eq_capacity] (the capacity of both the rx and tx
    event queues) to 4096. EQ allocation failure — e.g. a non-positive
    [eq_capacity] — is returned as {!Eq_alloc_failed}. *)

val create_exn :
  Portals.Ni.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?portal_index:int ->
  ?eq_capacity:int ->
  unit ->
  t
(** {!create}, raising {!Error} on failure. *)

val rank : t -> int
val size : t -> int

type sym
(** A symmetric region id. *)

val alloc : t -> int -> sym
(** Expose a fresh zero-initialised region of the given size. Must be
    called in the same order with the same size on every rank. *)

val region_bytes : t -> sym -> bytes
(** The local backing store of a region (reading it sees remote puts;
    writing it feeds remote gets). *)

val put : t -> sym -> pe:int -> offset:int -> bytes -> unit
(** Asynchronous remote write into [pe]'s region at [offset]. Completion
    is tracked by the Portals acknowledgment (Table 2); {!quiet} drains
    it. Raises [Invalid_argument] if the write would overrun the region
    (the target would reject it, §4.8). *)

val get : t -> sym -> pe:int -> offset:int -> len:int -> bytes
(** Blocking remote read of [len] bytes from [pe]'s region at [offset]
    (the reply routes back through the bound descriptor, Table 4).
    Raises [Invalid_argument] if the read would overrun the region. *)

val fetch_and_add : t -> sym -> pe:int -> offset:int -> int64 -> int64
(** Blocking atomic fetch-and-add on the 64-bit little-endian word at
    [offset] in [pe]'s region: deposits [old + delta], returns [old].
    Executes on the target interface at match time ({!Portals.Ni.atomic});
    the target application is never involved. Raises [Invalid_argument]
    if [offset, offset+8) overruns the region. *)

val swap : t -> sym -> pe:int -> offset:int -> int64 -> int64
(** Blocking atomic swap: deposits the given value, returns the old. *)

val compare_and_swap :
  t -> sym -> pe:int -> offset:int -> expected:int64 -> desired:int64 -> int64
(** Blocking atomic compare-and-swap: deposits [desired] iff the word
    equals [expected]; returns the old value either way (success is
    [old = expected]). *)

val quiet : t -> unit
(** Block until every outstanding {!put} has been acknowledged and every
    outstanding atomic has replied — shmem_quiet. *)

val outstanding_puts : t -> int

val wait_until : t -> sym -> offset:int -> value:char -> unit
(** Block until the local region's byte at [offset] equals [value] — the
    shmem point-to-point synchronisation idiom. Wakes on each incoming
    one-sided operation (a PUT event on the region, §4.4). *)

val barrier_value : char
(** Conventional flag value (\x01) for {!wait_until}-based signalling. *)

(** {1 MPI-3 RMA windows (foMPI-shaped)} *)

type lock_kind = Shared | Exclusive

type win
(** An MPI-3-style window: a symmetric region holding a 64-bit lock word
    followed by [size] data bytes on every rank. All window offsets are
    relative to the data area. *)

module Win : sig
  val create : t -> size:int -> win
  (** Collective (same order on every rank, like {!alloc}): expose a
      window of [size] data bytes per rank. *)

  val free : win -> unit
  (** Collective: drain outstanding operations and retire the window's
      region. *)

  val size : win -> int

  val local_data : win -> bytes
  (** Copy of this rank's window data area (excluding the lock word). *)

  val lock : win -> rank:int -> lock_kind -> unit
  (** MPI_Win_lock: passive-target lock on [rank]'s window copy, taken
      with Portals atomics on [rank]'s lock word — CAS for [Exclusive],
      fetch-add on the shared count for [Shared] — with exponential
      backoff between attempts. The exclusive tag embeds the holder's
      rank and node incarnation, so if the holder crashes, survivors
      detect the stale tag (crash notification or incarnation mismatch)
      and recover the lock instead of deadlocking. *)

  val unlock : win -> rank:int -> unit
  (** MPI_Win_unlock: release; implicitly a {!flush} is {e not}
      performed — call {!flush} first if remote completion must precede
      the release (foMPI's unlock does flush; composing the two calls
      keeps the primitives separable for measurement). *)

  val lock_all : win -> unit
  (** MPI_Win_lock_all: shared lock on every rank. *)

  val unlock_all : win -> unit

  val put : win -> rank:int -> offset:int -> bytes -> unit
  (** Nonblocking remote write at [offset] in [rank]'s data area;
      completes at {!flush}/{!flush_all}/{!quiet}. *)

  val get : win -> rank:int -> offset:int -> len:int -> bytes
  (** Blocking remote read. *)

  val accumulate : win -> rank:int -> offset:int -> int64 -> unit
  (** Nonblocking atomic add to the 64-bit word at [offset] (8-aligned);
      completes at {!flush}. MPI_Accumulate(MPI_SUM) on one element. *)

  val fetch_and_add : win -> rank:int -> offset:int -> int64 -> int64
  (** Blocking MPI_Fetch_and_op(MPI_SUM): returns the old value. *)

  val compare_and_swap :
    win -> rank:int -> offset:int -> expected:int64 -> desired:int64 -> int64
  (** Blocking MPI_Compare_and_swap: returns the old value. *)

  val flush : win -> rank:int -> unit
  (** MPI_Win_flush: block until every put/accumulate this endpoint
      issued to [rank] (on any window) has completed remotely — the
      foMPI ordering point. *)

  val flush_all : win -> unit
  (** MPI_Win_flush_all: {!flush} to every rank. *)

  val quiet : win -> unit
  (** Alias for {!flush_all} (shmem_quiet over the window's endpoint). *)
end

val win_create : t -> size:int -> win
(** {!Win.create}. *)

val win_free : win -> unit
(** {!Win.free}. *)
